module taq

go 1.22
