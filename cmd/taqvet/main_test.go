package main

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// TestExitCodes pins the driver contract: 0 clean, 1 findings, 2 for
// usage errors and load/type-check failures — never 1 for a broken
// package, so CI can tell "code has findings" from "tool could not run".
func TestExitCodes(t *testing.T) {
	cases := []struct {
		name   string
		args   []string
		want   int
		stderr string // required substring of stderr, "" for none
	}{
		{"clean package", []string{"../../internal/sim"}, 0, ""},
		{"findings", []string{"../../internal/analysis/testdata/src/simtime"}, 1, "finding(s)"},
		{"broken package exits 2 and names it", []string{"../../internal/analysis/testdata/src/broken"}, 2, "testdata/src/broken"},
		{"unknown format", []string{"-format", "xml", "./..."}, 2, "unknown format"},
		{"unknown analyzer", []string{"-only", "nosuch", "./..."}, 2, "unknown analyzer"},
		{"audit with only", []string{"-audit", "-only", "wallclock", "./..."}, 2, "-audit needs the full suite"},
		{"malformed directives fail -audit", []string{"-audit", "../../internal/analysis/testdata/src/malformed"}, 1, "finding(s)"},
		{"malformed directives pass without -audit", []string{"../../internal/analysis/testdata/src/malformed"}, 0, ""},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var stdout, stderr bytes.Buffer
			got := run(tc.args, &stdout, &stderr)
			if got != tc.want {
				t.Errorf("run(%v) = %d, want %d (stderr: %s)", tc.args, got, tc.want, stderr.String())
			}
			if tc.stderr != "" && !strings.Contains(stderr.String(), tc.stderr) {
				t.Errorf("stderr %q does not contain %q", stderr.String(), tc.stderr)
			}
		})
	}
}

// TestRootsOutput pins the -roots contract CI's baseline cmp relies
// on: "root <name>" lines for each declared //taq:hotpath function,
// per-package closure counts, a total line, exit 0 even though the
// fixture has findings, and byte-identical output across runs.
func TestRootsOutput(t *testing.T) {
	const fixture = "../../internal/analysis/testdata/src/hotpath"
	var first string
	for i := 0; i < 2; i++ {
		var stdout, stderr bytes.Buffer
		if code := run([]string{"-roots", fixture}, &stdout, &stderr); code != 0 {
			t.Fatalf("exit = %d, want 0; stderr: %s", code, stderr.String())
		}
		if i == 0 {
			first = stdout.String()
			continue
		}
		if stdout.String() != first {
			t.Fatalf("-roots output not byte-stable:\n%s\nvs\n%s", first, stdout.String())
		}
	}
	for _, want := range []string{"root ", "hotpath.Root", "package ", "total ", "from 1 roots"} {
		if !strings.Contains(first, want) {
			t.Errorf("-roots output missing %q:\n%s", want, first)
		}
	}
}

// TestAnnotationsOutput pins the -annotations contract CI's baseline
// cmp relies on: one line per contract annotation in fixed order, a
// total line, exit 0 regardless of findings, and byte-identical output
// across runs.
func TestAnnotationsOutput(t *testing.T) {
	fixtures := []string{
		"-annotations",
		"../../internal/analysis/testdata/src/shardown",
		"../../internal/analysis/testdata/src/shardown/shardsub",
		"../../internal/analysis/testdata/src/atomicfield",
		"../../internal/analysis/testdata/src/layout",
	}
	var first string
	for i := 0; i < 2; i++ {
		var stdout, stderr bytes.Buffer
		if code := run(fixtures, &stdout, &stderr); code != 0 {
			t.Fatalf("exit = %d, want 0; stderr: %s", code, stderr.String())
		}
		if i == 0 {
			first = stdout.String()
			continue
		}
		if stdout.String() != first {
			t.Fatalf("-annotations output not byte-stable:\n%s\nvs\n%s", first, stdout.String())
		}
	}
	for _, want := range []string{
		"shardowned taq/internal/analysis/testdata/src/shardown.Owned",
		"crossshard taq/internal/analysis/testdata/src/shardown.Handoff",
		"atomic taq/internal/analysis/testdata/src/atomicfield.shared.hits",
		"layout taq/internal/analysis/testdata/src/layout.rec size=24 align=8 hotbytes=0..16",
		"total 2 shardowned, 2 crossshard, 3 atomic, 5 layout",
	} {
		if !strings.Contains(first, want) {
			t.Errorf("-annotations output missing %q:\n%s", want, first)
		}
	}
}

// TestSARIFShape validates the 2.1.0 envelope of -format sarif: schema,
// version, one run with driver name and rules, and results whose
// locations carry file/line.
func TestSARIFShape(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{"-format", "sarif", "../../internal/analysis/testdata/src/simtime"}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("exit = %d, want 1 (fixture has findings); stderr: %s", code, stderr.String())
	}
	var log struct {
		Schema  string `json:"$schema"`
		Version string `json:"version"`
		Runs    []struct {
			Tool struct {
				Driver struct {
					Name  string `json:"name"`
					Rules []struct {
						ID string `json:"id"`
					} `json:"rules"`
				} `json:"driver"`
			} `json:"tool"`
			Results []struct {
				RuleID    string `json:"ruleId"`
				Level     string `json:"level"`
				Message   struct{ Text string }
				Locations []struct {
					PhysicalLocation struct {
						ArtifactLocation struct {
							URI string `json:"uri"`
						} `json:"artifactLocation"`
						Region struct {
							StartLine int `json:"startLine"`
						} `json:"region"`
					} `json:"physicalLocation"`
				} `json:"locations"`
			} `json:"results"`
		} `json:"runs"`
	}
	if err := json.Unmarshal(stdout.Bytes(), &log); err != nil {
		t.Fatalf("SARIF output is not JSON: %v", err)
	}
	if log.Version != "2.1.0" || !strings.Contains(log.Schema, "sarif-schema-2.1.0") {
		t.Errorf("version = %q, $schema = %q; want SARIF 2.1.0", log.Version, log.Schema)
	}
	if len(log.Runs) != 1 {
		t.Fatalf("got %d runs, want 1", len(log.Runs))
	}
	r := log.Runs[0]
	if r.Tool.Driver.Name != "taqvet" {
		t.Errorf("driver name = %q, want taqvet", r.Tool.Driver.Name)
	}
	if len(r.Tool.Driver.Rules) == 0 || len(r.Results) == 0 {
		t.Fatalf("rules = %d, results = %d; want both non-empty", len(r.Tool.Driver.Rules), len(r.Results))
	}
	for _, res := range r.Results {
		if res.RuleID == "" || res.Level != "error" || len(res.Locations) != 1 {
			t.Errorf("malformed result: %+v", res)
			continue
		}
		loc := res.Locations[0].PhysicalLocation
		if loc.ArtifactLocation.URI == "" || loc.Region.StartLine == 0 {
			t.Errorf("result lacks file/line: %+v", res)
		}
	}
}

// TestGitHubFormat checks the workflow-command annotation grammar.
func TestGitHubFormat(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{"-format", "github", "../../internal/analysis/testdata/src/simtime"}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("exit = %d, want 1; stderr: %s", code, stderr.String())
	}
	for _, line := range strings.Split(strings.TrimSpace(stdout.String()), "\n") {
		if !strings.HasPrefix(line, "::error file=") || !strings.Contains(line, "title=taqvet/") {
			t.Errorf("not a workflow annotation: %q", line)
		}
	}
}
