// Command taqvet runs the repo-specific determinism, concurrency, and
// hot-path analyzers over the module (see docs/static-analysis.md):
//
//	go run ./cmd/taqvet ./...
//	go run ./cmd/taqvet -format sarif -out taqvet.sarif ./...
//	go run ./cmd/taqvet -audit ./...
//	go run ./cmd/taqvet -roots ./...
//	go run ./cmd/taqvet -annotations ./...
//
// The default format prints "file:line:col: message [analyzer]" per
// finding; -format json/sarif/github emit machine-readable output.
// -audit additionally reports stale //taq:allow directives and
// malformed //taq: directives (unknown directive word, missing or
// unknown analyzer names, //taq:hotpath on anything but a function
// declaration with a body). -roots prints the declared //taq:hotpath
// roots and the per-package closure sizes — CI diffs this against the
// committed docs/hotpath-closure.txt baseline. -annotations prints the
// //taq:shardowned, //taq:crossshard, //taq:atomic, and //taq:layout
// contract inventory the same way — CI diffs it against
// docs/taq-annotations.txt.
//
// Exit status: 0 clean, 1 findings, 2 on usage errors or when any
// package fails to load or type-check (the failing package is named).
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"taq/internal/analysis"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("taqvet", flag.ContinueOnError)
	fs.SetOutput(stderr)
	list := fs.Bool("list", false, "list analyzers and exit")
	only := fs.String("only", "", "comma-separated analyzer names to run (default all)")
	format := fs.String("format", "text", "output format: text, json, sarif, or github")
	out := fs.String("out", "", "write output to this file instead of stdout")
	audit := fs.Bool("audit", false, "also report stale //taq:allow and malformed //taq: directives (requires the full suite)")
	roots := fs.Bool("roots", false, "print the //taq:hotpath roots and closure size per package, then exit")
	annotations := fs.Bool("annotations", false, "print the shardowned/crossshard/atomic/layout annotation inventory, then exit")
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: taqvet [-list] [-roots] [-annotations] [-only a,b] [-format text|json|sarif|github] [-out file] [-audit] [packages]\n\n")
		fmt.Fprintf(stderr, "Runs TAQ's determinism & concurrency analyzers (default ./...).\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}

	cfg := analysis.DefaultConfig()
	if *list {
		for _, a := range analysis.All() {
			fmt.Fprintf(stdout, "%-16s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	switch *format {
	case "text", "json", "sarif", "github":
	default:
		fmt.Fprintf(stderr, "taqvet: unknown format %q (want text, json, sarif, or github)\n", *format)
		return 2
	}
	if *only != "" {
		if *audit {
			fmt.Fprintf(stderr, "taqvet: -audit needs the full suite; drop -only\n")
			return 2
		}
		var sel []*analysis.Analyzer
		for _, name := range strings.Split(*only, ",") {
			found := false
			for _, a := range analysis.All() {
				if a.Name == name {
					sel = append(sel, a)
					found = true
				}
			}
			if !found {
				fmt.Fprintf(stderr, "taqvet: unknown analyzer %q (try -list)\n", name)
				return 2
			}
		}
		cfg.Analyzers = sel
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := analysis.Load(".", patterns...)
	if err != nil {
		// Load and type-check failures are always exit 2 — never 1,
		// which is reserved for findings — and name the package.
		var le *analysis.LoadError
		if errors.As(err, &le) && le.Pkg != "" {
			fmt.Fprintf(stderr, "taqvet: load: %v\n", le)
		} else {
			fmt.Fprintf(stderr, "taqvet: load: %v\n", err)
		}
		return 2
	}

	if *roots {
		if err := analysis.WriteRoots(stdout, pkgs); err != nil {
			fmt.Fprintf(stderr, "taqvet: writing roots: %v\n", err)
			return 2
		}
		return 0
	}
	if *annotations {
		if err := analysis.WriteAnnotations(stdout, pkgs); err != nil {
			fmt.Fprintf(stderr, "taqvet: writing annotations: %v\n", err)
			return 2
		}
		return 0
	}

	diags, stale := analysis.RunAudit(pkgs, cfg)
	if *audit {
		diags = append(diags, stale...)
	}
	cwd, _ := os.Getwd()
	for i := range diags {
		diags[i].Pos.Filename = relativize(cwd, diags[i].Pos.Filename)
	}
	// Re-sort after merging the audit findings and relativizing paths:
	// every format's output must be byte-stable for CI's determinism
	// cmp, and the merged list is otherwise only sorted per source.
	analysis.SortDiagnostics(diags)

	dst := stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintf(stderr, "taqvet: %v\n", err)
			return 2
		}
		defer f.Close()
		dst = f
	}
	var werr error
	switch *format {
	case "json":
		werr = analysis.WriteJSON(dst, diags)
	case "sarif":
		werr = analysis.WriteSARIF(dst, diags)
	case "github":
		werr = analysis.WriteGitHub(dst, diags)
	default:
		for _, d := range diags {
			fmt.Fprintln(dst, d)
		}
	}
	if werr != nil {
		fmt.Fprintf(stderr, "taqvet: writing output: %v\n", werr)
		return 2
	}
	if len(diags) > 0 {
		fmt.Fprintf(stderr, "taqvet: %d finding(s) in %d package(s)\n", len(diags), len(pkgs))
		return 1
	}
	return 0
}

// relativize rewrites an absolute filename under cwd to a relative
// one, which both humans and SARIF consumers want.
func relativize(cwd, filename string) string {
	if cwd == "" {
		return filename
	}
	rel, err := filepath.Rel(cwd, filename)
	if err != nil || strings.HasPrefix(rel, "..") {
		return filename
	}
	return rel
}
