// Command taqvet runs the repo-specific determinism and concurrency
// analyzers over the module (see docs/static-analysis.md):
//
//	go run ./cmd/taqvet ./...
//
// It prints "file:line:col: message [analyzer]" per finding and exits
// non-zero when any finding survives //taq:allow suppressions.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"taq/internal/analysis"
)

func main() {
	list := flag.Bool("list", false, "list analyzers and exit")
	only := flag.String("only", "", "comma-separated analyzer names to run (default all)")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: taqvet [-list] [-only a,b] [packages]\n\n")
		fmt.Fprintf(os.Stderr, "Runs TAQ's determinism & concurrency analyzers (default ./...).\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	cfg := analysis.DefaultConfig()
	if *list {
		for _, a := range analysis.All() {
			fmt.Printf("%-16s %s\n", a.Name, a.Doc)
		}
		return
	}
	if *only != "" {
		var sel []*analysis.Analyzer
		for _, name := range strings.Split(*only, ",") {
			found := false
			for _, a := range analysis.All() {
				if a.Name == name {
					sel = append(sel, a)
					found = true
				}
			}
			if !found {
				fmt.Fprintf(os.Stderr, "taqvet: unknown analyzer %q (try -list)\n", name)
				os.Exit(2)
			}
		}
		cfg.Analyzers = sel
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := analysis.Load(".", patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "taqvet: %v\n", err)
		os.Exit(2)
	}

	diags := analysis.Run(pkgs, cfg)
	cwd, _ := os.Getwd()
	for _, d := range diags {
		if cwd != "" {
			if rel, err := filepath.Rel(cwd, d.Pos.Filename); err == nil && !strings.HasPrefix(rel, "..") {
				d.Pos.Filename = rel
			}
		}
		fmt.Println(d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "taqvet: %d finding(s) in %d package(s)\n", len(diags), len(pkgs))
		os.Exit(1)
	}
}
