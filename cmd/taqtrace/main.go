// Command taqtrace generates, inspects and windows synthetic access
// logs in the text format used by the trace-driven experiments
// (Figs 1 and 12). Real proxy logs converted to the same
// "seconds client bytes" format can be substituted anywhere the
// experiments take a trace.
//
// Examples:
//
//	taqtrace -gen -clients 221 -hours 2 > peak.log
//	taqtrace -stat < peak.log
//	taqtrace -from 600 -to 1200 < peak.log > window.log
package main

import (
	"flag"
	"fmt"
	"math"
	"os"

	"taq/internal/sim"
	"taq/internal/trace"
)

func main() {
	var (
		gen     = flag.Bool("gen", false, "generate a synthetic log to stdout")
		stat    = flag.Bool("stat", false, "summarize a log from stdin")
		clients = flag.Int("clients", 221, "gen: number of clients")
		hours   = flag.Float64("hours", 2, "gen: log duration in hours")
		rate    = flag.Float64("rate", 1.5, "gen: requests per client per minute")
		seed    = flag.Int64("seed", 1, "gen: random seed")
		from    = flag.Float64("from", -1, "window: start seconds (stdin→stdout)")
		to      = flag.Float64("to", math.MaxFloat64, "window: end seconds")
	)
	flag.Parse()

	switch {
	case *gen:
		cfg := trace.DefaultGenConfig()
		cfg.Seed = *seed
		cfg.Clients = *clients
		cfg.Duration = sim.FromSeconds(*hours * 3600)
		cfg.RequestsPerClientPerMin = *rate
		if err := trace.Write(os.Stdout, trace.Generate(cfg)); err != nil {
			fail(err)
		}
	case *stat:
		recs, err := trace.Parse(os.Stdin)
		if err != nil {
			fail(err)
		}
		summarize(recs)
	case *from >= 0:
		recs, err := trace.Parse(os.Stdin)
		if err != nil {
			fail(err)
		}
		out := trace.Window(recs, sim.FromSeconds(*from), sim.FromSeconds(*to))
		if err := trace.Write(os.Stdout, out); err != nil {
			fail(err)
		}
	default:
		flag.Usage()
		os.Exit(2)
	}
}

func summarize(recs []trace.Record) {
	if len(recs) == 0 {
		fmt.Println("empty log")
		return
	}
	total := trace.TotalBytes(recs)
	minS, maxS := recs[0].Size, recs[0].Size
	var last sim.Time
	for _, r := range recs {
		if r.Size < minS {
			minS = r.Size
		}
		if r.Size > maxS {
			maxS = r.Size
		}
		if r.Time > last {
			last = r.Time
		}
	}
	fmt.Printf("records : %d\n", len(recs))
	fmt.Printf("clients : %d\n", trace.Clients(recs))
	fmt.Printf("span    : %.0f seconds\n", last.Seconds())
	fmt.Printf("volume  : %.2f GB\n", float64(total)/(1<<30))
	fmt.Printf("sizes   : %d B .. %d B (mean %.0f B)\n", minS, maxS, float64(total)/float64(len(recs)))
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "taqtrace:", err)
	os.Exit(1)
}
