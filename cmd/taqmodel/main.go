// Command taqmodel prints the idealized Markov models of §3.1: the
// stationary distribution of the partial (Fig 4) or full (Fig 5) chain
// at given loss probabilities, the closed-form expected idle time, and
// the timeout tipping point that motivates TAQ's admission threshold.
//
// Example:
//
//	taqmodel -p 0.05,0.1,0.2,0.3 -wmax 6 -full -stages 4
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"taq/internal/markov"
)

func main() {
	var (
		pList  = flag.String("p", "0.05,0.1,0.15,0.2,0.25,0.3", "comma-separated loss probabilities")
		wmax   = flag.Int("wmax", 6, "maximum congestion window in the model")
		full   = flag.Bool("full", false, "use the full model with explicit backoff stages")
		stages = flag.Int("stages", 4, "backoff stages in the full model")
		dot    = flag.Bool("dot", false, "emit the chain as Graphviz DOT (first -p value only)")
	)
	flag.Parse()

	var ps []float64
	for _, s := range strings.Split(*pList, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
		if err != nil {
			fmt.Fprintln(os.Stderr, "taqmodel: bad probability:", s)
			os.Exit(1)
		}
		ps = append(ps, v)
	}

	for _, p := range ps {
		var (
			chain *markov.Chain
			err   error
		)
		if *full {
			chain, err = markov.FullModel(p, *wmax, *stages)
		} else {
			chain, err = markov.PartialModel(p, *wmax)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "taqmodel:", err)
			os.Exit(1)
		}
		if *dot {
			fmt.Print(chain.DOT(fmt.Sprintf("taq_p%.3f", p)))
			return
		}
		pi, err := chain.Stationary()
		if err != nil {
			fmt.Fprintln(os.Stderr, "taqmodel:", err)
			os.Exit(1)
		}
		fmt.Printf("p = %.3f\n", p)
		for i, label := range chain.Labels {
			fmt.Printf("  %-6s %.4f\n", label, pi[i])
		}
		dist := chain.SentDistribution(pi)
		fmt.Printf("  packets-sent classes:")
		for k := 0; k <= *wmax; k++ {
			fmt.Printf(" %d:%.3f", k, dist[k])
		}
		fmt.Printf("\n  timeout mass: %.3f   E[idle epochs]: %.2f\n\n",
			chain.TimeoutMass(pi), markov.ExpectedIdleEpochs(p))
	}

	tp, err := markov.TippingPoint(0.5, *wmax)
	if err != nil {
		fmt.Fprintln(os.Stderr, "taqmodel:", err)
		os.Exit(1)
	}
	fmt.Printf("tipping point (timeout mass ≥ 0.5): p = %.3f\n", tp)
}
