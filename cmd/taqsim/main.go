// Command taqsim runs a single dumbbell scenario — N TCP flows through
// a bottleneck under a chosen queue discipline — and reports the
// fairness, loss, utilization and flow-evolution metrics the paper
// uses.
//
// Example:
//
//	taqsim -bw 600e3 -flows 120 -queue taq -duration 400
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"taq/internal/core"
	"taq/internal/link"
	"taq/internal/obs"
	"taq/internal/sim"
	"taq/internal/tcp"
	"taq/internal/topology"
	"taq/internal/workload"
)

// newEventRecorder opens path and returns a streaming recorder writing
// JSONL events to it with human-readable class/state labels.
func newEventRecorder(path string) (*obs.Recorder, func() error) {
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "taqsim:", err)
		os.Exit(1)
	}
	bw := bufio.NewWriter(f)
	sink := obs.NewJSONLSink(bw)
	sink.ClassName = func(c int8) string { return core.Class(c).String() }
	sink.StateName = func(s int8) string { return core.FlowState(s).String() }
	rec := obs.NewRecorder(sink, 0)
	return rec, func() error {
		if err := rec.Close(); err != nil {
			return err
		}
		if err := bw.Flush(); err != nil {
			return err
		}
		return f.Close()
	}
}

func main() {
	var (
		bw       = flag.Float64("bw", 600e3, "bottleneck bandwidth (bits/second)")
		flows    = flag.Int("flows", 60, "number of long-running flows")
		queue    = flag.String("queue", "droptail", "queue discipline: droptail|red|sfq|taq")
		duration = flag.Float64("duration", 400, "simulated seconds")
		slice    = flag.Float64("slice", 20, "fairness slice width (seconds)")
		rtt      = flag.Float64("rtt", 0.2, "propagation RTT (seconds)")
		jitter   = flag.Float64("jitter", 0.25, "per-flow RTT jitter fraction")
		buffer   = flag.Int("buffer", 0, "bottleneck buffer (packets, 0 = one RTT)")
		seed     = flag.Int64("seed", 1, "random seed")
		sack     = flag.Bool("sack", false, "use SACK recovery instead of NewReno")
		iw       = flag.Float64("iw", 2, "initial congestion window (segments)")

		events   = flag.String("events", "", "write the JSONL event trace to this file")
		gauges   = flag.String("gauges", "", "write the CSV gauge time series to this file")
		gaugeInt = flag.Float64("gauge-interval", 1, "gauge sampling cadence (simulated seconds)")

		metricsOut = flag.String("metrics-out", "", "write the final Prometheus-format metrics snapshot to this file")
		intervals  = flag.Int("intervals", 0, "print per-interval middlebox stats deltas this many times over the run")

		flightDir  = flag.String("flight-dir", "", "dump the event ring here on anomaly triggers (incompatible with -events)")
		flightRep  = flag.Float64("flight-rep", 50, "flight trigger: repetitive-timeout count")
		flightLoss = flag.Float64("flight-loss", 0.25, "flight trigger: loss-rate EWMA")
		flightP99  = flag.Float64("flight-p99", 0, "flight trigger: FCT p99 seconds (0 = off)")
	)
	flag.Parse()

	tcpCfg := tcp.DefaultConfig()
	tcpCfg.SACK = *sack
	tcpCfg.InitialCwnd = *iw
	net, err := topology.New(topology.Config{
		Seed:          *seed,
		Bandwidth:     link.Bps(*bw),
		PropRTT:       sim.FromSeconds(*rtt),
		RTTJitter:     *jitter,
		BufferPackets: *buffer,
		Queue:         topology.QueueKind(*queue),
		TCP:           tcpCfg,
		SliceWidth:    sim.FromSeconds(*slice),
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "taqsim:", err)
		os.Exit(1)
	}
	if *events != "" {
		rec, closeEvents := newEventRecorder(*events)
		net.EnableObservability(rec)
		defer func() {
			if err := closeEvents(); err != nil {
				fmt.Fprintln(os.Stderr, "taqsim: events:", err)
				os.Exit(1)
			}
		}()
	}
	if *gauges != "" {
		f, err := os.Create(*gauges)
		if err != nil {
			fmt.Fprintln(os.Stderr, "taqsim:", err)
			os.Exit(1)
		}
		bw := bufio.NewWriter(f)
		net.EnableGauges(sim.FromSeconds(*gaugeInt), obs.NewCSVSeries(bw))
		defer func() {
			if err := net.Gauges.Stop(); err != nil {
				fmt.Fprintln(os.Stderr, "taqsim: gauges:", err)
				os.Exit(1)
			}
			if err := bw.Flush(); err != nil {
				fmt.Fprintln(os.Stderr, "taqsim: gauges:", err)
				os.Exit(1)
			}
			f.Close()
		}()
	}

	if *metricsOut != "" || *flightDir != "" {
		net.EnableMetrics()
	}
	var flight *obs.FlightRecorder
	if *flightDir != "" {
		if *events != "" {
			fmt.Fprintln(os.Stderr, "taqsim: -flight-dir needs the retained event ring and cannot be combined with -events streaming")
			os.Exit(1)
		}
		if err := os.MkdirAll(*flightDir, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, "taqsim:", err)
			os.Exit(1)
		}
		ring := obs.NewRecorder(nil, 0)
		net.EnableObservability(ring)
		dir := *flightDir
		flight = obs.NewFlightRecorder(net.Engine, ring, sim.Second, func(name string, seq int) (io.WriteCloser, error) {
			return os.Create(filepath.Join(dir, fmt.Sprintf("flight-%03d-%s.jsonl", seq, name)))
		})
		flight.ClassName = func(c int8) string { return core.Class(c).String() }
		flight.StateName = func(s int8) string { return core.FlowState(s).String() }
		if cm := net.CoreMetrics; cm != nil {
			flight.Watch(obs.Trigger{Name: "rep_timeouts", Threshold: *flightRep,
				Value: func() float64 { return float64(cm.RepTimeouts.Value()) }})
		}
		if mb := net.Middlebox; mb != nil {
			flight.Watch(obs.Trigger{Name: "loss_ewma", Threshold: *flightLoss, Value: mb.LossEWMA})
		}
		if *flightP99 > 0 {
			fct := net.FCT
			flight.Watch(obs.Trigger{Name: "fct_p99", Threshold: *flightP99,
				Value: func() float64 { return fct.Quantile(0.99).Seconds() }})
		}
		flight.Start()
	}

	workload.AddBulkFlows(net, *flows, 50*sim.Millisecond)

	// Per-interval middlebox stats via Stats.Delta — the same
	// cumulative-to-interval convention taqmbox prints.
	if *intervals > 0 && net.Middlebox != nil {
		step := sim.FromSeconds(*duration) / sim.Time(*intervals)
		prev := net.Middlebox.Stats.Snapshot()
		for i := 1; i <= *intervals; i++ {
			at := step * sim.Time(i)
			net.Engine.ScheduleAt(at, func() {
				cur := net.Middlebox.Stats.Snapshot()
				fmt.Printf("interval @%-6s : %s\n", at, cur.Delta(prev))
				prev = cur
			})
		}
	}

	net.Run(sim.FromSeconds(*duration))

	if flight != nil {
		flight.Stop()
		if flight.Err != nil {
			fmt.Fprintln(os.Stderr, "taqsim: flight:", flight.Err)
			os.Exit(1)
		}
		fmt.Printf("flight dumps     : %d\n", flight.Dumps)
	}
	if *metricsOut != "" {
		f, err := os.Create(*metricsOut)
		if err != nil {
			fmt.Fprintln(os.Stderr, "taqsim:", err)
			os.Exit(1)
		}
		if err := net.Metrics.Snapshot().WriteText(f); err != nil {
			fmt.Fprintln(os.Stderr, "taqsim: metrics:", err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "taqsim: metrics:", err)
			os.Exit(1)
		}
	}

	slices := int(sim.FromSeconds(*duration) / net.Slicer.Width())
	to, rep := net.AggregateTimeouts()
	fmt.Printf("queue=%s bandwidth=%.0fbps flows=%d duration=%.0fs\n", *queue, *bw, *flows, *duration)
	fmt.Printf("fair share       : %.0f bps (%.2f pkts/RTT)\n",
		net.FairSharePerFlow(), net.FairSharePerFlow()**rtt/8/float64(tcpCfg.MSS))
	fmt.Printf("short-term JFI   : %.3f (%.0fs slices)\n", net.Slicer.MeanSliceJFI(1, slices), *slice)
	fmt.Printf("long-term JFI    : %.3f\n", net.Slicer.TotalJFI(1, slices))
	fmt.Printf("utilization      : %.3f\n", net.Utilization())
	fmt.Printf("queue loss rate  : %.3f\n", net.LossRate())
	fmt.Printf("timeouts         : %d (%d repetitive)\n", to, rep)
	ev := net.Slicer.Evolution(1, slices)
	fmt.Printf("flow evolution   : maintained=%.1f stalled=%.1f (mean/slice)\n",
		ev.MeanMaintained(), ev.MeanStalled())
	if net.Middlebox != nil {
		fmt.Printf("middlebox        : lossRate=%.3f activeFlows=%d\n",
			net.Middlebox.LossRate(), net.Middlebox.ActiveFlows())
		fmt.Printf("middlebox stats  : %s\n", net.Middlebox.Stats.Snapshot())
		fmt.Printf("state census     : %v\n", net.Middlebox.StateCensus())
	}
}
