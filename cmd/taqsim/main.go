// Command taqsim runs a single dumbbell scenario — N TCP flows through
// a bottleneck under a chosen queue discipline — and reports the
// fairness, loss, utilization and flow-evolution metrics the paper
// uses.
//
// Example:
//
//	taqsim -bw 600e3 -flows 120 -queue taq -duration 400
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"

	"taq/internal/core"
	"taq/internal/link"
	"taq/internal/obs"
	"taq/internal/sim"
	"taq/internal/tcp"
	"taq/internal/topology"
	"taq/internal/workload"
)

// newEventRecorder opens path and returns a streaming recorder writing
// JSONL events to it with human-readable class/state labels.
func newEventRecorder(path string) (*obs.Recorder, func() error) {
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "taqsim:", err)
		os.Exit(1)
	}
	bw := bufio.NewWriter(f)
	sink := obs.NewJSONLSink(bw)
	sink.ClassName = func(c int8) string { return core.Class(c).String() }
	sink.StateName = func(s int8) string { return core.FlowState(s).String() }
	rec := obs.NewRecorder(sink, 0)
	return rec, func() error {
		if err := rec.Close(); err != nil {
			return err
		}
		if err := bw.Flush(); err != nil {
			return err
		}
		return f.Close()
	}
}

func main() {
	var (
		bw       = flag.Float64("bw", 600e3, "bottleneck bandwidth (bits/second)")
		flows    = flag.Int("flows", 60, "number of long-running flows")
		queue    = flag.String("queue", "droptail", "queue discipline: droptail|red|sfq|taq")
		duration = flag.Float64("duration", 400, "simulated seconds")
		slice    = flag.Float64("slice", 20, "fairness slice width (seconds)")
		rtt      = flag.Float64("rtt", 0.2, "propagation RTT (seconds)")
		jitter   = flag.Float64("jitter", 0.25, "per-flow RTT jitter fraction")
		buffer   = flag.Int("buffer", 0, "bottleneck buffer (packets, 0 = one RTT)")
		seed     = flag.Int64("seed", 1, "random seed")
		sack     = flag.Bool("sack", false, "use SACK recovery instead of NewReno")
		iw       = flag.Float64("iw", 2, "initial congestion window (segments)")

		events   = flag.String("events", "", "write the JSONL event trace to this file")
		gauges   = flag.String("gauges", "", "write the CSV gauge time series to this file")
		gaugeInt = flag.Float64("gauge-interval", 1, "gauge sampling cadence (simulated seconds)")
	)
	flag.Parse()

	tcpCfg := tcp.DefaultConfig()
	tcpCfg.SACK = *sack
	tcpCfg.InitialCwnd = *iw
	net, err := topology.New(topology.Config{
		Seed:          *seed,
		Bandwidth:     link.Bps(*bw),
		PropRTT:       sim.FromSeconds(*rtt),
		RTTJitter:     *jitter,
		BufferPackets: *buffer,
		Queue:         topology.QueueKind(*queue),
		TCP:           tcpCfg,
		SliceWidth:    sim.FromSeconds(*slice),
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "taqsim:", err)
		os.Exit(1)
	}
	if *events != "" {
		rec, closeEvents := newEventRecorder(*events)
		net.EnableObservability(rec)
		defer func() {
			if err := closeEvents(); err != nil {
				fmt.Fprintln(os.Stderr, "taqsim: events:", err)
				os.Exit(1)
			}
		}()
	}
	if *gauges != "" {
		f, err := os.Create(*gauges)
		if err != nil {
			fmt.Fprintln(os.Stderr, "taqsim:", err)
			os.Exit(1)
		}
		bw := bufio.NewWriter(f)
		net.EnableGauges(sim.FromSeconds(*gaugeInt), obs.NewCSVSeries(bw))
		defer func() {
			if err := net.Gauges.Stop(); err != nil {
				fmt.Fprintln(os.Stderr, "taqsim: gauges:", err)
				os.Exit(1)
			}
			if err := bw.Flush(); err != nil {
				fmt.Fprintln(os.Stderr, "taqsim: gauges:", err)
				os.Exit(1)
			}
			f.Close()
		}()
	}

	workload.AddBulkFlows(net, *flows, 50*sim.Millisecond)
	net.Run(sim.FromSeconds(*duration))

	slices := int(sim.FromSeconds(*duration) / net.Slicer.Width())
	to, rep := net.AggregateTimeouts()
	fmt.Printf("queue=%s bandwidth=%.0fbps flows=%d duration=%.0fs\n", *queue, *bw, *flows, *duration)
	fmt.Printf("fair share       : %.0f bps (%.2f pkts/RTT)\n",
		net.FairSharePerFlow(), net.FairSharePerFlow()**rtt/8/float64(tcpCfg.MSS))
	fmt.Printf("short-term JFI   : %.3f (%.0fs slices)\n", net.Slicer.MeanSliceJFI(1, slices), *slice)
	fmt.Printf("long-term JFI    : %.3f\n", net.Slicer.TotalJFI(1, slices))
	fmt.Printf("utilization      : %.3f\n", net.Utilization())
	fmt.Printf("queue loss rate  : %.3f\n", net.LossRate())
	fmt.Printf("timeouts         : %d (%d repetitive)\n", to, rep)
	ev := net.Slicer.Evolution(1, slices)
	fmt.Printf("flow evolution   : maintained=%.1f stalled=%.1f (mean/slice)\n",
		ev.MeanMaintained(), ev.MeanStalled())
	if net.Middlebox != nil {
		fmt.Printf("middlebox        : lossRate=%.3f activeFlows=%d\n",
			net.Middlebox.LossRate(), net.Middlebox.ActiveFlows())
		fmt.Printf("middlebox stats  : %s\n", net.Middlebox.Stats.Snapshot())
		fmt.Printf("state census     : %v\n", net.Middlebox.StateCensus())
	}
}
