// Command taqsim runs a single dumbbell scenario — N TCP flows through
// a bottleneck under a chosen queue discipline — and reports the
// fairness, loss, utilization and flow-evolution metrics the paper
// uses.
//
// Example:
//
//	taqsim -bw 600e3 -flows 120 -queue taq -duration 400
package main

import (
	"flag"
	"fmt"
	"os"

	"taq/internal/link"
	"taq/internal/sim"
	"taq/internal/tcp"
	"taq/internal/topology"
	"taq/internal/workload"
)

func main() {
	var (
		bw       = flag.Float64("bw", 600e3, "bottleneck bandwidth (bits/second)")
		flows    = flag.Int("flows", 60, "number of long-running flows")
		queue    = flag.String("queue", "droptail", "queue discipline: droptail|red|sfq|taq")
		duration = flag.Float64("duration", 400, "simulated seconds")
		slice    = flag.Float64("slice", 20, "fairness slice width (seconds)")
		rtt      = flag.Float64("rtt", 0.2, "propagation RTT (seconds)")
		jitter   = flag.Float64("jitter", 0.25, "per-flow RTT jitter fraction")
		buffer   = flag.Int("buffer", 0, "bottleneck buffer (packets, 0 = one RTT)")
		seed     = flag.Int64("seed", 1, "random seed")
		sack     = flag.Bool("sack", false, "use SACK recovery instead of NewReno")
		iw       = flag.Float64("iw", 2, "initial congestion window (segments)")
	)
	flag.Parse()

	tcpCfg := tcp.DefaultConfig()
	tcpCfg.SACK = *sack
	tcpCfg.InitialCwnd = *iw
	net, err := topology.New(topology.Config{
		Seed:          *seed,
		Bandwidth:     link.Bps(*bw),
		PropRTT:       sim.FromSeconds(*rtt),
		RTTJitter:     *jitter,
		BufferPackets: *buffer,
		Queue:         topology.QueueKind(*queue),
		TCP:           tcpCfg,
		SliceWidth:    sim.FromSeconds(*slice),
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "taqsim:", err)
		os.Exit(1)
	}
	workload.AddBulkFlows(net, *flows, 50*sim.Millisecond)
	net.Run(sim.FromSeconds(*duration))

	slices := int(sim.FromSeconds(*duration) / net.Slicer.Width())
	to, rep := net.AggregateTimeouts()
	fmt.Printf("queue=%s bandwidth=%.0fbps flows=%d duration=%.0fs\n", *queue, *bw, *flows, *duration)
	fmt.Printf("fair share       : %.0f bps (%.2f pkts/RTT)\n",
		net.FairSharePerFlow(), net.FairSharePerFlow()**rtt/8/float64(tcpCfg.MSS))
	fmt.Printf("short-term JFI   : %.3f (%.0fs slices)\n", net.Slicer.MeanSliceJFI(1, slices), *slice)
	fmt.Printf("long-term JFI    : %.3f\n", net.Slicer.TotalJFI(1, slices))
	fmt.Printf("utilization      : %.3f\n", net.Utilization())
	fmt.Printf("queue loss rate  : %.3f\n", net.LossRate())
	fmt.Printf("timeouts         : %d (%d repetitive)\n", to, rep)
	ev := net.Slicer.Evolution(1, slices)
	fmt.Printf("flow evolution   : maintained=%.1f stalled=%.1f (mean/slice)\n",
		ev.MeanMaintained(), ev.MeanStalled())
	if net.Middlebox != nil {
		fmt.Printf("middlebox        : lossRate=%.3f activeFlows=%d\n",
			net.Middlebox.LossRate(), net.Middlebox.ActiveFlows())
		fmt.Printf("state census     : %v\n", net.Middlebox.StateCensus())
	}
}
