package main

// compare.go is taqbench's regression gate: -compare diffs the current
// run's report against a committed baseline (BENCH_baseline.json) and
// exits non-zero when it drifts beyond -tolerance.
//
// The two halves of the report get different treatment. Experiment
// metrics are deterministic for a fixed seed and scale, so a deviation
// in either direction is a behavior change and is flagged — the
// tolerance only absorbs float formatting jitter and intentional small
// recalibrations. Wall times are noisy, so they are flagged only when
// the current run is slower than baseline by more than the tolerance;
// getting faster is never a regression.

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"sort"
)

// loadReport reads a -json report written by a previous taqbench run.
func loadReport(path string) (*report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r report
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("%s: %v", path, err)
	}
	return &r, nil
}

// wallSlackSecs is the absolute slack on wall-time comparisons: at
// smoke scale an experiment finishes in well under a second, where a
// percentage tolerance is indistinguishable from scheduler noise. A
// slowdown must exceed both the relative tolerance and this floor.
const wallSlackSecs = 1.0

// compareReports returns one line per regression of cur against base.
// tolerancePct is a percentage (15 means ±15% on metrics, +15% on
// wall time).
func compareReports(cur, base *report, tolerancePct float64) []string {
	tol := tolerancePct / 100
	var regs []string

	byName := make(map[string]*expReport, len(cur.Experiments))
	for i := range cur.Experiments {
		byName[cur.Experiments[i].Name] = &cur.Experiments[i]
	}
	for _, b := range base.Experiments {
		c, ok := byName[b.Name]
		if !ok {
			regs = append(regs, fmt.Sprintf("experiment %s: in baseline but missing from this run", b.Name))
			continue
		}
		keys := make([]string, 0, len(b.Metrics))
		for k := range b.Metrics {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			bv := b.Metrics[k]
			cv, ok := c.Metrics[k]
			if !ok {
				regs = append(regs, fmt.Sprintf("%s %s: in baseline but missing from this run", b.Name, k))
				continue
			}
			if bv == 0 {
				if math.Abs(cv) > 1e-9 {
					regs = append(regs, fmt.Sprintf("%s %s: %g, baseline 0", b.Name, k, cv))
				}
				continue
			}
			if d := (cv - bv) / math.Abs(bv); math.Abs(d) > tol {
				regs = append(regs, fmt.Sprintf("%s %s: %g, baseline %g (%+.1f%%, tolerance ±%.0f%%)",
					b.Name, k, cv, bv, 100*d, tolerancePct))
			}
		}
		if b.WallSecs > 0 && c.WallSecs > b.WallSecs*(1+tol) && c.WallSecs-b.WallSecs > wallSlackSecs {
			regs = append(regs, fmt.Sprintf("%s wall time: %.2fs, baseline %.2fs (+%.1f%%, tolerance +%.0f%%)",
				b.Name, c.WallSecs, b.WallSecs, 100*(c.WallSecs-b.WallSecs)/b.WallSecs, tolerancePct))
		}
	}
	if base.TotalWallSecs > 0 && cur.TotalWallSecs > base.TotalWallSecs*(1+tol) && cur.TotalWallSecs-base.TotalWallSecs > wallSlackSecs {
		regs = append(regs, fmt.Sprintf("total wall time: %.2fs, baseline %.2fs (+%.1f%%, tolerance +%.0f%%)",
			cur.TotalWallSecs, base.TotalWallSecs, 100*(cur.TotalWallSecs-base.TotalWallSecs)/base.TotalWallSecs, tolerancePct))
	}
	return regs
}
