package main

// report.go is the "report" experiment: a canonical TAQ dumbbell run
// with the metrics registry enabled, summarized as histogram
// percentiles. The rendered table is the per-run artifact written
// alongside BENCH_results.json (-report-out), and the headline
// percentiles feed the -compare regression gate like any other
// experiment's metrics.

import (
	"fmt"
	"strings"

	"taq/internal/sim"
	"taq/internal/topology"
	"taq/internal/workload"
)

// reportQuantiles are the percentiles every histogram row reports.
var reportQuantiles = []float64{0.50, 0.90, 0.99}

// runReport runs the canonical mixed workload (bulk flows plus a
// spread of short transfers) under TAQ with metrics on, and renders
// each registry histogram as one percentile row per label.
//
// Percentiles are nearest-rank over the shared log-bucket bounds, so
// for a fixed seed the table is deterministic down to the byte.
func runReport(scale float64, seed int64) result {
	duration := sim.Time(float64(scale) * float64(240*sim.Second))
	if duration < 20*sim.Second {
		duration = 20 * sim.Second
	}
	bulk := int(scale * 40)
	if bulk < 8 {
		bulk = 8
	}
	shorts := int(scale * 80)
	if shorts < 12 {
		shorts = 12
	}

	net := topology.MustNew(topology.Config{
		Seed:       seed,
		Queue:      topology.TAQ,
		SliceWidth: duration / 4,
	})
	net.EnableMetrics()
	workload.AddBulkFlows(net, bulk, 50*sim.Millisecond)
	// Short transfers spread over the middle of the run, cycling
	// through sizes that land in all three FCT size classes.
	for i := 0; i < shorts; i++ {
		at := duration * sim.Time(i+1) / sim.Time(shorts+2)
		workload.AddShortFlow(net, 2+(i%3)*12, at)
	}
	net.Run(duration)

	snap := net.Metrics.Snapshot()
	var out strings.Builder
	fmt.Fprintf(&out, "histogram percentiles (TAQ, %d bulk + %d short flows, %s):\n",
		bulk, shorts, duration)
	m := map[string]float64{}
	for i := range snap.Histograms {
		h := &snap.Histograms[i]
		for li := range h.Counts {
			series := h.Name
			if h.Label != "" {
				series = fmt.Sprintf("%s{%s=%q}", h.Name, h.Label, h.LabelVals[li])
			}
			fmt.Fprintf(&out, "  %-44s n=%-6d", series, h.Counts[li])
			for _, q := range reportQuantiles {
				fmt.Fprintf(&out, "  p%02.0f=%-12s", q*100, h.Quantile(li, q))
			}
			out.WriteString("\n")
		}
	}
	// Headline metrics for the -compare gate: FCT percentiles per size
	// class plus total completions — the numbers the paper's latency
	// claims rest on.
	for i := range snap.Histograms {
		h := &snap.Histograms[i]
		if h.Name != "taq_fct_seconds" {
			continue
		}
		var total uint64
		for li := range h.Counts {
			total += h.Counts[li]
			key := "fct_" + h.LabelVals[li]
			m[key+"_count"] = float64(h.Counts[li])
			if h.Counts[li] > 0 {
				m[key+"_p50"] = h.Quantile(li, 0.50).Seconds()
				m[key+"_p99"] = h.Quantile(li, 0.99).Seconds()
			}
		}
		m["fct_completions"] = float64(total)
	}
	for i := range snap.Counters {
		c := &snap.Counters[i]
		if c.Name != "taq_served_total" && c.Name != "taq_drops_total" {
			continue
		}
		var total uint64
		for _, v := range c.Values {
			total += v
		}
		m[strings.TrimSuffix(strings.TrimPrefix(c.Name, "taq_"), "_total")] = float64(total)
	}
	return result{out.String(), m}
}
