// Command taqbench runs the paper's evaluation suite (one experiment
// per table/figure; see DESIGN.md §3) at a chosen scale and prints the
// same rows/series the paper reports.
//
// Sweep-shaped experiments fan their points out over a worker pool
// (-parallel, default GOMAXPROCS); results are collected by index, so
// stdout is byte-identical whatever the worker count. Timing lines go
// to stderr for the same reason. -json emits a machine-readable report
// (per-experiment metrics, wall time, optional serial-baseline speedup)
// for the perf trajectory tracked in BENCH_results.json.
//
// Example:
//
//	taqbench -experiment fig2,fig8 -scale 0.3
//	taqbench -experiment all -scale 1        # paper scale (slow)
//	taqbench -experiment fig2 -parallel 8 -baseline
//	taqbench -json -scale 0.05 -out BENCH_results.json
//	taqbench -json -scale 0.05 -compare BENCH_baseline.json -tolerance 15
//
// -compare gates on regressions against a committed baseline report
// (see compare.go): deterministic experiment metrics may drift at most
// -tolerance percent in either direction, wall time may only be that
// much slower. Non-zero exit on any regression.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"runtime/trace"
	"strings"
	"time"

	"taq/experiments"
	"taq/internal/sim"
	"taq/internal/topology"
)

// result is what each experiment runner hands back: the rendered
// human output plus headline metrics for the JSON report.
type result struct {
	output  string
	metrics map[string]float64
}

// expReport is one experiment's entry in the -json report.
type expReport struct {
	Name     string  `json:"name"`
	WallSecs float64 `json:"wall_secs"`
	// SerialWallSecs and Speedup are present only with -baseline.
	SerialWallSecs float64            `json:"serial_wall_secs,omitempty"`
	Speedup        float64            `json:"speedup,omitempty"`
	Metrics        map[string]float64 `json:"metrics,omitempty"`
	Output         string             `json:"output,omitempty"`
}

// report is the full -json document.
type report struct {
	Scale         float64     `json:"scale"`
	Seed          int64       `json:"seed"`
	Parallel      int         `json:"parallel"`
	Experiments   []expReport `json:"experiments"`
	TotalWallSecs float64     `json:"total_wall_secs"`
}

func main() {
	var (
		list      = flag.String("experiment", "all", "comma-separated: fig1,fig2,fig3,fig6,fig8,fig9,fig10,fig11,fig12,hang,redsfq,model,tfrc,ablation,iw,subpacket,scale,shard,pcap,tbweb,report or all")
		scale     = flag.Float64("scale", 0.25, "experiment scale (1 = paper scale)")
		seed      = flag.Int64("seed", 1, "random seed")
		csv       = flag.Bool("csv", false, "emit CSV instead of tables where supported (fig2, fig8, fig9)")
		parallel  = flag.Int("parallel", 0, "sweep worker count (0 = GOMAXPROCS, 1 = serial)")
		jsonOut   = flag.Bool("json", false, "emit a machine-readable JSON report instead of tables")
		outPath   = flag.String("out", "", "write the JSON report to this file (default stdout)")
		baseline  = flag.Bool("baseline", false, "also run each experiment serially and report the parallel speedup")
		compare   = flag.String("compare", "", "compare this run against a baseline JSON report (e.g. BENCH_baseline.json) and exit non-zero on regression")
		reportOut = flag.String("report-out", "", "write the report experiment's percentile table to this file (forces the report experiment to run)")
		tolPct    = flag.Float64("tolerance", 15, "regression tolerance for -compare, in percent (metrics ±, wall time +)")

		cpuProf  = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProf  = flag.String("memprofile", "", "write a heap profile to this file at exit")
		traceOut = flag.String("trace", "", "write a runtime/trace to this file")
	)
	flag.Parse()
	s := experiments.Scale(*scale)
	experiments.SetParallelism(*parallel)

	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			fail(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fail(err)
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			fail(err)
		}
		if err := trace.Start(f); err != nil {
			fail(err)
		}
		defer func() {
			trace.Stop()
			f.Close()
		}()
	}
	if *memProf != "" {
		path := *memProf
		defer func() {
			f, err := os.Create(path)
			if err != nil {
				fail(err)
			}
			runtime.GC() // flush recently-freed objects out of the profile
			if err := pprof.WriteHeapProfile(f); err != nil {
				fail(err)
			}
			f.Close()
		}()
	}

	runners := map[string]func() result{
		"model": func() result {
			m, err := experiments.RunModelTables()
			if err != nil {
				fail(err)
			}
			return result{m.Table(), map[string]float64{
				"tipping_point": m.TippingPoint,
			}}
		},
		"fig1": func() result {
			r := experiments.RunDownloadScatter(s, *seed)
			return result{r.Table(), nil}
		},
		"fig2": func() result {
			r := experiments.RunFairness(experiments.FairnessConfig{Queue: topology.DropTail, Seed: *seed}, s)
			lt := experiments.RunLongTermFairness(topology.DropTail, s)
			out := render(r, *csv) + "\nlong-term slices:\n" + render(lt, *csv) + "\n"
			return result{out, map[string]float64{
				"points":              float64(len(r.Points)),
				"subpacket_short_jfi": experiments.MeanShortJFI(r.PointsBelow(10000)),
				"long_term_points":    float64(len(lt.Points)),
				"long_term_short_jfi": experiments.MeanShortJFI(lt.PointsBelow(10000)),
			}}
		},
		"fig3": func() result {
			r := experiments.RunBufferTradeoff(s, *seed)
			out := r.Table() + fmt.Sprintf("buffer (RTTs) required for JFI ≥ 0.8: %v\n", r.RequiredBuffer(0.8))
			return result{out, map[string]float64{
				"points": float64(len(r.Points)),
			}}
		},
		"hang": func() result {
			r := experiments.RunHangTimes(topology.DropTail, s, *seed)
			m := map[string]float64{"points": float64(len(r.Points))}
			for _, p := range r.Points {
				m[fmt.Sprintf("users%d_frac_over20s", p.Users)] = p.FracOver20s
			}
			return result{r.Table(), m}
		},
		"redsfq": func() result {
			r := experiments.RunRedSfqEquivalence(s, *seed)
			return result{r.Table(), map[string]float64{
				"points": float64(len(r.Points)),
			}}
		},
		"fig6": func() result {
			r := experiments.RunModelValidation(s, *seed)
			return result{r.Table(), nil}
		},
		"fig8": func() result {
			r := experiments.RunFairness(experiments.FairnessConfig{Queue: topology.TAQ, Seed: *seed}, s)
			return result{render(r, *csv) + "\n", map[string]float64{
				"points":              float64(len(r.Points)),
				"subpacket_short_jfi": experiments.MeanShortJFI(r.PointsBelow(10000)),
			}}
		},
		"fig9": func() result {
			rs := experiments.RunFlowEvolutionSweep([]topology.QueueKind{topology.DropTail, topology.TAQ}, s, *seed)
			var out strings.Builder
			m := map[string]float64{}
			for _, r := range rs {
				out.WriteString(render(r, *csv) + "\n")
				m[string(r.Queue)+"_mean_stalled"] = r.MeanStalled
				m[string(r.Queue)+"_mean_maintained"] = r.MeanMaintained
			}
			return result{out.String(), m}
		},
		"fig10": func() result {
			r := experiments.RunShortFlows(topology.TAQ, s, *seed)
			out := r.Table() + fmt.Sprintf("completed: %.2f  size/time correlation: %.2f\n\n",
				r.CompletedFraction(), r.Correlation())
			return result{out, map[string]float64{
				"completed_fraction": r.CompletedFraction(),
				"size_correlation":   r.Correlation(),
			}}
		},
		"fig11": func() result {
			r := experiments.RunTestbedFairness(experiments.TestbedOptions{
				Speedup:         40,
				VirtualDuration: sim.Time(float64(*scale) * float64(240*sim.Second)),
				Seed:            *seed,
			})
			return result{r.Table(), nil}
		},
		"fig12": func() result {
			r := experiments.RunAdmissionWeb(s, *seed)
			out := r.Table() + fmt.Sprintf("median speedup: small objects %.1fx, large objects %.1fx\n\n",
				r.SmallObjectSpeedup(), r.LargeObjectSpeedup())
			return result{out, map[string]float64{
				"small_object_speedup": r.SmallObjectSpeedup(),
				"large_object_speedup": r.LargeObjectSpeedup(),
			}}
		},
		"tfrc": func() result {
			r := experiments.RunTFRCComparison(s, *seed)
			return result{r.Table(), map[string]float64{
				"points": float64(len(r.Points)),
			}}
		},
		"ablation": func() result {
			r := experiments.RunAblation(s, *seed)
			m := map[string]float64{"points": float64(len(r.Points))}
			if p, ok := r.Point("taq-full"); ok {
				m["taq_full_short_jfi"] = p.ShortJFI
			}
			if p, ok := r.Point("droptail"); ok {
				m["droptail_short_jfi"] = p.ShortJFI
			}
			return result{r.Table(), m}
		},
		"iw": func() result {
			r := experiments.RunInitialWindow(s, *seed)
			return result{r.Table(), map[string]float64{
				"points": float64(len(r.Points)),
			}}
		},
		"subpacket": func() result {
			r := experiments.RunSubPacketTCP(s, *seed)
			return result{r.Table(), map[string]float64{
				"points": float64(len(r.Points)),
			}}
		},
		"scale": func() result {
			r := experiments.RunTrackerScale(s, *seed)
			m := map[string]float64{"points": float64(len(r.Points))}
			for _, p := range r.Points {
				m[fmt.Sprintf("flows%d_tracked_end", p.Flows)] = float64(p.TrackedEnd)
				m[fmt.Sprintf("flows%d_active_end", p.Flows)] = float64(p.ActiveEnd)
			}
			return result{r.Table(), m}
		},
		"shard": func() result {
			r := experiments.RunShardScaling(s, *seed)
			m := map[string]float64{"points": float64(len(r.Points))}
			for _, p := range r.Points {
				// Deterministic counters only: wall time and pkts/s are
				// machine-dependent and must not gate -compare.
				m[fmt.Sprintf("shards%d_arrivals", p.Shards)] = float64(p.Arrivals)
				m[fmt.Sprintf("shards%d_served", p.Shards)] = float64(p.Served)
				m[fmt.Sprintf("shards%d_drops", p.Shards)] = float64(p.Drops)
			}
			return result{r.Table(), m}
		},
		"pcap": func() result {
			a := experiments.RunPcapAnalysis(topology.DropTail, s, *seed)
			b := experiments.RunPcapAnalysis(topology.TAQ, s, *seed)
			return result{a.Table() + "\n" + b.Table() + "\n", nil}
		},
		"tbweb": func() result {
			r := experiments.RunTestbedWeb(experiments.TestbedWebOptions{
				Speedup:         30,
				VirtualDuration: sim.Time(float64(*scale) * float64(600*sim.Second)),
				Seed:            *seed,
			})
			return result{r.Table(), nil}
		},
		"report": func() result {
			return runReport(*scale, *seed)
		},
	}
	order := []string{"model", "fig1", "fig2", "fig3", "hang", "redsfq", "fig6", "fig8", "fig9", "fig10", "fig11", "fig12", "tfrc", "ablation", "iw", "subpacket", "scale", "shard", "pcap", "tbweb", "report"}

	want := map[string]bool{}
	if *list == "all" {
		for _, k := range order {
			want[k] = true
		}
	} else {
		for _, k := range strings.Split(*list, ",") {
			k = strings.TrimSpace(k)
			if _, ok := runners[k]; !ok {
				fail(fmt.Errorf("unknown experiment %q", k))
			}
			want[k] = true
		}
	}
	if *reportOut != "" {
		want["report"] = true
	}

	rep := report{Scale: *scale, Seed: *seed, Parallel: experiments.Parallelism()}
	total := time.Now()
	for _, k := range order {
		if !want[k] {
			continue
		}
		er := expReport{Name: k}
		if *baseline {
			// Serial reference first so the parallel timing below is
			// what the user-facing run costs.
			experiments.SetParallelism(1)
			st := time.Now()
			runners[k]()
			er.SerialWallSecs = time.Since(st).Seconds()
			experiments.SetParallelism(*parallel)
		}
		start := time.Now()
		res := runners[k]()
		er.WallSecs = time.Since(start).Seconds()
		er.Metrics = res.metrics
		if *baseline && er.WallSecs > 0 {
			er.Speedup = er.SerialWallSecs / er.WallSecs
		}
		if k == "report" && *reportOut != "" {
			if err := os.WriteFile(*reportOut, []byte(res.output), 0o644); err != nil {
				fail(err)
			}
			fmt.Fprintf(os.Stderr, "[wrote %s]\n", *reportOut)
		}
		if *jsonOut {
			er.Output = res.output
		} else {
			fmt.Printf("=== %s (scale %.2f) ===\n", k, *scale)
			fmt.Println(res.output)
		}
		// Timing is nondeterministic, so it goes to stderr: stdout must
		// stay byte-identical across -parallel values.
		if *baseline {
			fmt.Fprintf(os.Stderr, "[%s took %.1fs; serial %.1fs; speedup %.2fx]\n",
				k, er.WallSecs, er.SerialWallSecs, er.Speedup)
		} else {
			fmt.Fprintf(os.Stderr, "[%s took %.1fs]\n", k, er.WallSecs)
		}
		rep.Experiments = append(rep.Experiments, er)
	}
	rep.TotalWallSecs = time.Since(total).Seconds()
	fmt.Fprintf(os.Stderr, "[total wall time %.1fs over %d experiments, parallel=%d]\n",
		rep.TotalWallSecs, len(rep.Experiments), rep.Parallel)

	if *jsonOut {
		enc, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			fail(err)
		}
		enc = append(enc, '\n')
		if *outPath != "" {
			if err := os.WriteFile(*outPath, enc, 0o644); err != nil {
				fail(err)
			}
			fmt.Fprintf(os.Stderr, "[wrote %s]\n", *outPath)
		} else {
			os.Stdout.Write(enc)
		}
	}

	if *compare != "" {
		base, err := loadReport(*compare)
		if err != nil {
			fail(err)
		}
		regs := compareReports(&rep, base, *tolPct)
		for _, r := range regs {
			fmt.Fprintln(os.Stderr, "taqbench: regression:", r)
		}
		if len(regs) > 0 {
			fmt.Fprintf(os.Stderr, "taqbench: %d regression(s) vs %s (tolerance %.0f%%)\n", len(regs), *compare, *tolPct)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "[no regressions vs %s at %.0f%% tolerance]\n", *compare, *tolPct)
	}
}

// renderable is any result offering both renderings.
type renderable interface {
	Table() string
	CSV() string
}

func render(r renderable, csv bool) string {
	if csv {
		return r.CSV()
	}
	return r.Table()
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "taqbench:", err)
	os.Exit(1)
}
