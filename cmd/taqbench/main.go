// Command taqbench runs the paper's evaluation suite (one experiment
// per table/figure; see DESIGN.md §3) at a chosen scale and prints the
// same rows/series the paper reports.
//
// Example:
//
//	taqbench -experiment fig2,fig8 -scale 0.3
//	taqbench -experiment all -scale 1        # paper scale (slow)
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"taq/experiments"
	"taq/internal/sim"
	"taq/internal/topology"
)

func main() {
	var (
		list  = flag.String("experiment", "all", "comma-separated: fig1,fig2,fig3,fig6,fig8,fig9,fig10,fig11,fig12,hang,redsfq,model,tfrc,ablation,iw,subpacket,pcap,tbweb or all")
		scale = flag.Float64("scale", 0.25, "experiment scale (1 = paper scale)")
		seed  = flag.Int64("seed", 1, "random seed")
		csv   = flag.Bool("csv", false, "emit CSV instead of tables where supported (fig2, fig8, fig9)")
	)
	flag.Parse()
	s := experiments.Scale(*scale)

	runners := map[string]func(){
		"model": func() {
			m, err := experiments.RunModelTables()
			if err != nil {
				fail(err)
			}
			fmt.Println(m.Table())
		},
		"fig1": func() {
			fmt.Println(experiments.RunDownloadScatter(s, *seed).Table())
		},
		"fig2": func() {
			r := experiments.RunFairness(experiments.FairnessConfig{Queue: topology.DropTail, Seed: *seed}, s)
			fmt.Println(render(r, *csv))
			lt := experiments.RunLongTermFairness(topology.DropTail, s)
			fmt.Println("long-term slices:")
			fmt.Println(render(lt, *csv))
		},
		"fig3": func() {
			r := experiments.RunBufferTradeoff(s, *seed)
			fmt.Println(r.Table())
			fmt.Println("buffer (RTTs) required for JFI ≥ 0.8:", r.RequiredBuffer(0.8))
		},
		"hang": func() {
			fmt.Println(experiments.RunHangTimes(topology.DropTail, s, *seed).Table())
		},
		"redsfq": func() {
			fmt.Println(experiments.RunRedSfqEquivalence(s, *seed).Table())
		},
		"fig6": func() {
			fmt.Println(experiments.RunModelValidation(s, *seed).Table())
		},
		"fig8": func() {
			r := experiments.RunFairness(experiments.FairnessConfig{Queue: topology.TAQ, Seed: *seed}, s)
			fmt.Println(render(r, *csv))
		},
		"fig9": func() {
			fmt.Println(render(experiments.RunFlowEvolution(topology.DropTail, s, *seed), *csv))
			fmt.Println(render(experiments.RunFlowEvolution(topology.TAQ, s, *seed), *csv))
		},
		"fig10": func() {
			r := experiments.RunShortFlows(topology.TAQ, s, *seed)
			fmt.Println(r.Table())
			fmt.Printf("completed: %.2f  size/time correlation: %.2f\n\n",
				r.CompletedFraction(), r.Correlation())
		},
		"fig11": func() {
			r := experiments.RunTestbedFairness(experiments.TestbedOptions{
				Speedup:         40,
				VirtualDuration: sim.Time(float64(*scale) * float64(240*sim.Second)),
				Seed:            *seed,
			})
			fmt.Println(r.Table())
		},
		"fig12": func() {
			r := experiments.RunAdmissionWeb(s, *seed)
			fmt.Println(r.Table())
			fmt.Printf("median speedup: small objects %.1fx, large objects %.1fx\n\n",
				r.SmallObjectSpeedup(), r.LargeObjectSpeedup())
		},
		"tfrc": func() {
			fmt.Println(experiments.RunTFRCComparison(s, *seed).Table())
		},
		"ablation": func() {
			fmt.Println(experiments.RunAblation(s, *seed).Table())
		},
		"iw": func() {
			fmt.Println(experiments.RunInitialWindow(s, *seed).Table())
		},
		"subpacket": func() {
			fmt.Println(experiments.RunSubPacketTCP(s, *seed).Table())
		},
		"pcap": func() {
			fmt.Println(experiments.RunPcapAnalysis(topology.DropTail, s, *seed).Table())
			fmt.Println(experiments.RunPcapAnalysis(topology.TAQ, s, *seed).Table())
		},
		"tbweb": func() {
			r := experiments.RunTestbedWeb(experiments.TestbedWebOptions{
				Speedup:         30,
				VirtualDuration: sim.Time(float64(*scale) * float64(600*sim.Second)),
				Seed:            *seed,
			})
			fmt.Println(r.Table())
		},
	}
	order := []string{"model", "fig1", "fig2", "fig3", "hang", "redsfq", "fig6", "fig8", "fig9", "fig10", "fig11", "fig12", "tfrc", "ablation", "iw", "subpacket", "pcap", "tbweb"}

	want := map[string]bool{}
	if *list == "all" {
		for _, k := range order {
			want[k] = true
		}
	} else {
		for _, k := range strings.Split(*list, ",") {
			k = strings.TrimSpace(k)
			if _, ok := runners[k]; !ok {
				fail(fmt.Errorf("unknown experiment %q", k))
			}
			want[k] = true
		}
	}
	for _, k := range order {
		if !want[k] {
			continue
		}
		fmt.Printf("=== %s (scale %.2f) ===\n", k, *scale)
		start := time.Now()
		runners[k]()
		fmt.Printf("[%s took %.1fs]\n\n", k, time.Since(start).Seconds())
	}
}

// renderable is any result offering both renderings.
type renderable interface {
	Table() string
	CSV() string
}

func render(r renderable, csv bool) string {
	if csv {
		return r.CSV()
	}
	return r.Table()
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "taqbench:", err)
	os.Exit(1)
}
