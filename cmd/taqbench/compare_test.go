package main

import (
	"strings"
	"testing"
)

func benchReport(jfi, wall, total float64) *report {
	return &report{
		Experiments: []expReport{{
			Name:     "fig8",
			WallSecs: wall,
			Metrics:  map[string]float64{"subpacket_short_jfi": jfi, "points": 40},
		}},
		TotalWallSecs: total,
	}
}

func TestCompareReports(t *testing.T) {
	base := benchReport(0.80, 10, 12)
	cases := []struct {
		name string
		cur  *report
		tol  float64
		want string // required substring of some regression line; "" = no regressions
	}{
		{"identical", benchReport(0.80, 10, 12), 15, ""},
		{"metric drift inside tolerance", benchReport(0.74, 10, 12), 15, ""},
		{"metric drop beyond tolerance", benchReport(0.60, 10, 12), 15, "subpacket_short_jfi"},
		{"metric rise beyond tolerance is also drift", benchReport(1.00, 10, 12), 15, "subpacket_short_jfi"},
		{"faster is never a regression", benchReport(0.80, 2, 3), 15, ""},
		{"slower beyond tolerance", benchReport(0.80, 13, 12), 15, "fig8 wall time"},
		{"sub-second jitter is ignored", benchReport(0.80, 10.9, 12), 15, ""},
		{"total slower beyond tolerance", benchReport(0.80, 10, 20), 15, "total wall time"},
		{"tolerance widens the gate", benchReport(0.60, 10, 12), 50, ""},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			regs := compareReports(tc.cur, base, tc.tol)
			if tc.want == "" {
				if len(regs) != 0 {
					t.Fatalf("want no regressions, got %v", regs)
				}
				return
			}
			for _, r := range regs {
				if strings.Contains(r, tc.want) {
					return
				}
			}
			t.Fatalf("no regression line contains %q in %v", tc.want, regs)
		})
	}
}

func TestCompareReportsMissing(t *testing.T) {
	base := benchReport(0.80, 10, 12)
	base.Experiments[0].Metrics["extra_metric"] = 1

	t.Run("missing metric", func(t *testing.T) {
		regs := compareReports(benchReport(0.80, 10, 12), base, 15)
		if len(regs) != 1 || !strings.Contains(regs[0], "extra_metric") {
			t.Fatalf("want one missing-metric regression, got %v", regs)
		}
	})
	t.Run("missing experiment", func(t *testing.T) {
		regs := compareReports(&report{}, base, 15)
		if len(regs) != 1 || !strings.Contains(regs[0], "experiment fig8") {
			t.Fatalf("want one missing-experiment regression, got %v", regs)
		}
	})
	t.Run("zero baseline metric", func(t *testing.T) {
		b := benchReport(0.80, 10, 12)
		b.Experiments[0].Metrics["zeroed"] = 0
		cur := benchReport(0.80, 10, 12)
		cur.Experiments[0].Metrics["zeroed"] = 0.5
		regs := compareReports(cur, b, 15)
		if len(regs) != 1 || !strings.Contains(regs[0], "zeroed") {
			t.Fatalf("want one zero-baseline regression, got %v", regs)
		}
	})
}
