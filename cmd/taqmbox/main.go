// Command taqmbox runs the real-time middlebox prototype: the same TAQ
// implementation that runs in the simulator, driven by wall-clock
// timers over an emulated constrained link (the paper's §5.4 testbed
// configuration), and reports fairness live.
//
// Example:
//
//	taqmbox -bw 600e3 -flows 40 -taq -duration 30 -speedup 10
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"

	"taq/internal/core"
	"taq/internal/emu"
	"taq/internal/link"
	"taq/internal/obs"
	"taq/internal/sim"
)

func main() {
	var (
		bw       = flag.Float64("bw", 600e3, "emulated bottleneck bandwidth (bits/second)")
		flows    = flag.Int("flows", 40, "number of long-lived downloads")
		useTAQ   = flag.Bool("taq", false, "use the TAQ middlebox instead of DropTail")
		duration = flag.Float64("duration", 60, "virtual seconds to run")
		speedup  = flag.Float64("speedup", 10, "virtual-to-wall time ratio")
		seed     = flag.Int64("seed", 1, "random seed")
		httpAddr = flag.String("http", "", "serve live gauges + /metrics + pprof on this address (e.g. 127.0.0.1:6060)")
		events   = flag.String("events", "", "write the JSONL event trace to this file")

		metricsOut = flag.String("metrics-out", "", "write the final Prometheus-format metrics snapshot to this file")
	)
	flag.Parse()

	var rec *obs.Recorder
	var closeEvents func() error
	if *events != "" {
		f, err := os.Create(*events)
		if err != nil {
			fmt.Fprintln(os.Stderr, "taqmbox:", err)
			os.Exit(1)
		}
		w := bufio.NewWriter(f)
		sink := obs.NewJSONLSink(w)
		sink.ClassName = func(c int8) string { return core.Class(c).String() }
		sink.StateName = func(s int8) string { return core.FlowState(s).String() }
		rec = obs.NewRecorder(sink, 0)
		closeEvents = func() error {
			if err := w.Flush(); err != nil {
				return err
			}
			return f.Close()
		}
	}

	virtual := sim.FromSeconds(*duration)
	tb := emu.NewTestbed(emu.TestbedConfig{
		Seed:          *seed,
		Speedup:       *speedup,
		Bandwidth:     link.Bps(*bw),
		UseTAQ:        *useTAQ,
		SliceWidth:    virtual / 4,
		Events:        rec,
		HTTPAddr:      *httpAddr,
		EnableMetrics: *metricsOut != "",
	})
	if tb.HTTPErr != nil {
		fmt.Fprintln(os.Stderr, "taqmbox: http:", tb.HTTPErr)
		os.Exit(1)
	}
	if tb.HTTP != nil {
		fmt.Printf("live endpoint: http://%s/vars (pprof under /debug/pprof/)\n", tb.HTTP.Addr())
	}
	for i := 0; i < *flows; i++ {
		tb.AddBulkFlow()
	}
	queue := "droptail"
	if *useTAQ {
		queue = "taq"
	}
	fmt.Printf("middlebox=%s bandwidth=%.0fbps flows=%d (%.0fx speedup, %.1fs wall)\n",
		queue, *bw, *flows, *speedup, *duration / *speedup)

	step := virtual / 4
	var prev core.Stats
	for i := 1; i <= 4; i++ {
		tb.RunFor(step)
		tb.Snapshot(func() {
			slices := i
			loss := 0.0
			if tb.QueueArrivals > 0 {
				loss = float64(tb.QueueDrops) / float64(tb.QueueArrivals)
			}
			fmt.Printf("t=%4.0fs  shortJFI=%.3f  loss=%.3f  arrivals=%d\n",
				(sim.Time(i) * step).Seconds(), tb.Slicer.MeanSliceJFI(0, slices), loss, tb.QueueArrivals)
			if tb.Middlebox != nil {
				cur := tb.Middlebox.Stats.Snapshot()
				fmt.Printf("         interval: %s\n", cur.Delta(prev))
				prev = cur
			}
		})
	}
	tb.Stop()
	if *metricsOut != "" {
		f, err := os.Create(*metricsOut)
		if err != nil {
			fmt.Fprintln(os.Stderr, "taqmbox:", err)
			os.Exit(1)
		}
		if err := tb.Metrics.Snapshot().WriteText(f); err != nil {
			fmt.Fprintln(os.Stderr, "taqmbox: metrics:", err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "taqmbox: metrics:", err)
			os.Exit(1)
		}
	}
	if closeEvents != nil {
		if err := closeEvents(); err != nil {
			fmt.Fprintln(os.Stderr, "taqmbox: events:", err)
			os.Exit(1)
		}
	}
}
