// Command taqmbox runs the real-time middlebox prototype: the same TAQ
// implementation that runs in the simulator, driven by wall-clock
// timers over an emulated constrained link (the paper's §5.4 testbed
// configuration), and reports fairness live.
//
// Example:
//
//	taqmbox -bw 600e3 -flows 40 -taq -duration 30 -speedup 10
package main

import (
	"flag"
	"fmt"

	"taq/internal/emu"
	"taq/internal/link"
	"taq/internal/sim"
)

func main() {
	var (
		bw       = flag.Float64("bw", 600e3, "emulated bottleneck bandwidth (bits/second)")
		flows    = flag.Int("flows", 40, "number of long-lived downloads")
		useTAQ   = flag.Bool("taq", false, "use the TAQ middlebox instead of DropTail")
		duration = flag.Float64("duration", 60, "virtual seconds to run")
		speedup  = flag.Float64("speedup", 10, "virtual-to-wall time ratio")
		seed     = flag.Int64("seed", 1, "random seed")
	)
	flag.Parse()

	virtual := sim.FromSeconds(*duration)
	tb := emu.NewTestbed(emu.TestbedConfig{
		Seed:       *seed,
		Speedup:    *speedup,
		Bandwidth:  link.Bps(*bw),
		UseTAQ:     *useTAQ,
		SliceWidth: virtual / 4,
	})
	for i := 0; i < *flows; i++ {
		tb.AddBulkFlow()
	}
	queue := "droptail"
	if *useTAQ {
		queue = "taq"
	}
	fmt.Printf("middlebox=%s bandwidth=%.0fbps flows=%d (%.0fx speedup, %.1fs wall)\n",
		queue, *bw, *flows, *speedup, *duration / *speedup)

	step := virtual / 4
	for i := 1; i <= 4; i++ {
		tb.RunFor(step)
		tb.Snapshot(func() {
			slices := i
			loss := 0.0
			if tb.QueueArrivals > 0 {
				loss = float64(tb.QueueDrops) / float64(tb.QueueArrivals)
			}
			fmt.Printf("t=%4.0fs  shortJFI=%.3f  loss=%.3f  arrivals=%d\n",
				(sim.Time(i) * step).Seconds(), tb.Slicer.MeanSliceJFI(0, slices), loss, tb.QueueArrivals)
		})
	}
	tb.Stop()
}
