// Package taq is the public API of the TAQ reproduction: Timeout Aware
// Queuing (Chen, Subramanian, Iyengar, Ford — EuroSys 2014), an
// in-network middlebox queuing discipline that tracks per-flow TCP
// state to minimize timeouts and repetitive timeouts in small packet
// regimes, together with the full evaluation substrate the paper used:
// a discrete-event network simulator with a packet-level TCP
// (NewReno/SACK), DropTail/RED/SFQ baselines, the idealized Markov
// models of §3.1, workload and trace generators, metrics, and a
// real-time prototype engine.
//
// Quick start — compare DropTail and TAQ on the paper's dumbbell:
//
//	net := taq.NewNetwork(taq.NetworkConfig{Bandwidth: 600 * taq.Kbps, Queue: taq.QueueTAQ})
//	taq.AddBulkFlows(net, 60, 50*taq.Millisecond)
//	net.Run(200 * taq.Second)
//	fmt.Println(net.Slicer.MeanSliceJFI(1, 10))
//
// The experiments package (taq/experiments) reproduces every figure of
// the paper's evaluation; cmd/taqbench runs the whole suite.
package taq

import (
	"taq/internal/core"
	"taq/internal/emu"
	"taq/internal/link"
	"taq/internal/markov"
	"taq/internal/metrics"
	"taq/internal/packet"
	"taq/internal/sim"
	"taq/internal/tcp"
	"taq/internal/tfrc"
	"taq/internal/topology"
	"taq/internal/trace"
	"taq/internal/workload"
)

// Virtual time.
type (
	// Time is a virtual time instant or duration in nanoseconds.
	Time = sim.Time
	// Runner is the clock/scheduler abstraction shared by the
	// discrete-event engine and the real-time engine.
	Runner = sim.Runner
	// Engine is the deterministic discrete-event engine.
	Engine = sim.Engine
)

// Time units.
const (
	Nanosecond  = sim.Nanosecond
	Microsecond = sim.Microsecond
	Millisecond = sim.Millisecond
	Second      = sim.Second
)

// FromSeconds converts seconds to Time.
func FromSeconds(s float64) Time { return sim.FromSeconds(s) }

// NewEngine returns a discrete-event engine seeded for reproducibility.
func NewEngine(seed int64) *Engine { return sim.NewEngine(seed) }

// Link rates.
type (
	// Bps is a link rate in bits per second.
	Bps = link.Bps
)

// Common rates.
const (
	Kbps = link.Kbps
	Mbps = link.Mbps
)

// Identifiers.
type (
	// FlowID identifies a TCP flow.
	FlowID = packet.FlowID
	// PoolID identifies a flow pool (user session) for hang tracking
	// and admission control.
	PoolID = packet.PoolID
	// Packet is the simulated on-the-wire unit.
	Packet = packet.Packet
)

// PoolNone marks flows outside any pool.
const PoolNone = packet.PoolNone

// PacketKind discriminates packet roles on the wire.
type PacketKind = packet.Kind

// Packet kinds.
const (
	KindData     = packet.Data
	KindAck      = packet.Ack
	KindSyn      = packet.Syn
	KindSynAck   = packet.SynAck
	KindFin      = packet.Fin
	KindFeedback = packet.Feedback
)

// TCP endpoints.
type (
	// TCPConfig parameterizes senders and receivers.
	TCPConfig = tcp.Config
	// Sender is the TCP sender half of a flow.
	Sender = tcp.Sender
	// Receiver is the TCP receiver half of a flow.
	Receiver = tcp.Receiver
	// App supplies data to a sender.
	App = tcp.App
	// BulkApp is an unbounded data source.
	BulkApp = tcp.BulkApp
	// SizedApp transfers a fixed number of segments.
	SizedApp = tcp.SizedApp
	// ObjectApp pipelines multiple objects over one connection.
	ObjectApp = tcp.ObjectApp
)

// DefaultTCPConfig returns the paper's TCP parameters (500-byte
// packets, initial window 2, 1 s minimum RTO).
func DefaultTCPConfig() TCPConfig { return tcp.DefaultConfig() }

// TCPVariant selects the congestion-avoidance algorithm.
type TCPVariant = tcp.Variant

// TCP variants.
const (
	// VariantNewReno is AIMD with NewReno recovery (default).
	VariantNewReno = tcp.VariantNewReno
	// VariantCubic grows along the CUBIC curve with IW10-era defaults.
	VariantCubic = tcp.VariantCubic
	// VariantSubPacket is the §7 future-work sender: fractional paced
	// windows instead of exponential RTO backoff.
	VariantSubPacket = tcp.VariantSubPacket
)

// TFRC (RFC 5348) baseline endpoints — the equation-rate transport the
// paper's introduction rules out for sub-packet regimes.
type (
	// TFRCConfig parameterizes the TFRC endpoints.
	TFRCConfig = tfrc.Config
	// TFRCSender is a rate-paced TFRC data sender.
	TFRCSender = tfrc.Sender
	// TFRCReceiver measures loss events and reports once per RTT.
	TFRCReceiver = tfrc.Receiver
)

// DefaultTFRCConfig returns RFC-flavored TFRC defaults.
func DefaultTFRCConfig() TFRCConfig { return tfrc.DefaultConfig() }

// The TAQ middlebox (the paper's contribution).
type (
	// Middlebox is the Timeout Aware Queuing discipline; it
	// implements the same Discipline interface as the baselines and
	// can front any bottleneck link.
	Middlebox = core.TAQ
	// MiddleboxConfig parameterizes TAQ.
	MiddleboxConfig = core.Config
	// FlowState is the middlebox's approximate per-flow state (Fig 7).
	FlowState = core.FlowState
	// QueueClass identifies TAQ's five packet classes.
	QueueClass = core.Class
)

// Middlebox flow states (Fig 7).
const (
	StateNew             = core.StateNew
	StateSlowStart       = core.StateSlowStart
	StateNormal          = core.StateNormal
	StateLossRecovery    = core.StateLossRecovery
	StateTimeoutSilence  = core.StateTimeoutSilence
	StateTimeoutRecovery = core.StateTimeoutRecovery
	StateExtendedSilence = core.StateExtendedSilence
	StateIdleSilence     = core.StateIdleSilence
)

// DefaultMiddleboxConfig returns TAQ defaults for a bottleneck of the
// given rate and buffer capacity in packets.
func DefaultMiddleboxConfig(rate Bps, capacity int) MiddleboxConfig {
	return core.DefaultConfig(rate, capacity)
}

// NewMiddlebox constructs a TAQ middlebox on the given runner. Call
// Start on the result to activate its periodic scan.
func NewMiddlebox(run Runner, cfg MiddleboxConfig) *Middlebox { return core.New(run, cfg) }

// Scenario building.
type (
	// NetworkConfig describes a dumbbell scenario.
	NetworkConfig = topology.Config
	// Network is an instantiated scenario.
	Network = topology.Network
	// Flow bundles one connection's endpoints.
	Flow = topology.Flow
	// QueueKind selects the bottleneck discipline.
	QueueKind = topology.QueueKind
)

// Queue kinds.
const (
	QueueDropTail = topology.DropTail
	QueueRED      = topology.RED
	QueueSFQ      = topology.SFQ
	QueueTAQ      = topology.TAQ
)

// NewNetwork builds a dumbbell network (panics on invalid config; use
// topology.New via the internal package for error returns).
func NewNetwork(cfg NetworkConfig) *Network { return topology.MustNew(cfg) }

// Workloads.
type (
	// Session models a multi-connection web user.
	Session = workload.Session
	// ObjectResult records one object download.
	ObjectResult = workload.ObjectResult
	// ReplayMode selects trace replay scheduling.
	ReplayMode = workload.ReplayMode
	// TraceRecord is one access-log entry.
	TraceRecord = trace.Record
	// TraceGenConfig parameterizes the synthetic log generator.
	TraceGenConfig = trace.GenConfig
)

// Replay modes.
const (
	ReplayTimed = workload.ReplayTimed
	ReplayASAP  = workload.ReplayASAP
)

// AddBulkFlows adds n long-running flows with staggered starts.
func AddBulkFlows(net *Network, n int, stagger Time) []*Flow {
	return workload.AddBulkFlows(net, n, stagger)
}

// NewSession creates a web session with up to maxConns connections.
func NewSession(net *Network, client, maxConns int) *Session {
	return workload.NewSession(net, client, maxConns)
}

// Replay drives an access log through per-client sessions.
func Replay(net *Network, recs []TraceRecord, maxConns int, mode ReplayMode) map[int]*Session {
	return workload.Replay(net, recs, maxConns, mode)
}

// GenerateTrace produces a synthetic heavy-tailed access log.
func GenerateTrace(cfg TraceGenConfig) []TraceRecord { return trace.Generate(cfg) }

// DefaultTraceConfig matches the paper's proxy-log aggregates.
func DefaultTraceConfig() TraceGenConfig { return trace.DefaultGenConfig() }

// Metrics.
type (
	// CDF accumulates samples for percentile queries.
	CDF = metrics.CDF
	// Slicer computes time-sliced per-flow goodput and fairness.
	Slicer = metrics.Slicer
	// HangTracker measures user-perceived hangs.
	HangTracker = metrics.HangTracker
)

// JainIndex computes the Jain Fairness Index of the allocations.
func JainIndex(xs []float64) float64 { return metrics.JainIndex(xs) }

// Markov models (§3.1).
type (
	// MarkovChain is a labeled discrete-time chain.
	MarkovChain = markov.Chain
)

// PartialModel builds the Fig 4 chain for loss probability p.
func PartialModel(p float64, wmax int) (*MarkovChain, error) { return markov.PartialModel(p, wmax) }

// FullModel builds the Fig 5 chain with explicit backoff stages.
func FullModel(p float64, wmax, stages int) (*MarkovChain, error) {
	return markov.FullModel(p, wmax, stages)
}

// ExpectedIdleEpochs returns the closed-form 1/(1−2p) expected silent
// epochs in the aggregated timeout state.
func ExpectedIdleEpochs(p float64) float64 { return markov.ExpectedIdleEpochs(p) }

// TippingPoint returns the loss rate at which the stationary timeout
// mass reaches frac (the basis of TAQ's admission threshold).
func TippingPoint(frac float64, wmax int) (float64, error) { return markov.TippingPoint(frac, wmax) }

// Real-time prototype (the paper's testbed substrate).
type (
	// Testbed is a wall-clock scenario running the same TCP and TAQ
	// code under real timers.
	Testbed = emu.Testbed
	// TestbedConfig parameterizes a testbed run.
	TestbedConfig = emu.TestbedConfig
)

// NewTestbed builds a real-time scenario.
func NewTestbed(cfg TestbedConfig) *Testbed { return emu.NewTestbed(cfg) }
