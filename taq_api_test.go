package taq_test

import (
	"math"
	"testing"

	"taq"
)

// These tests exercise the public facade exactly as a downstream user
// would: only identifiers exported by package taq.

func TestFacadeQuickstartFlow(t *testing.T) {
	net := taq.NewNetwork(taq.NetworkConfig{
		Seed:      1,
		Bandwidth: 600 * taq.Kbps,
		Queue:     taq.QueueTAQ,
		RTTJitter: 0.25,
	})
	taq.AddBulkFlows(net, 30, 50*taq.Millisecond)
	net.Run(100 * taq.Second)
	if net.Middlebox == nil {
		t.Fatal("middlebox missing")
	}
	slices := int(100 * taq.Second / net.Slicer.Width())
	if j := net.Slicer.MeanSliceJFI(1, slices); j <= 0 || j > 1 {
		t.Errorf("JFI = %v", j)
	}
	if u := net.Utilization(); u < 0.9 {
		t.Errorf("utilization = %v", u)
	}
}

func TestFacadeMarkovModel(t *testing.T) {
	chain, err := taq.PartialModel(0.1, 6)
	if err != nil {
		t.Fatal(err)
	}
	pi, err := chain.Stationary()
	if err != nil {
		t.Fatal(err)
	}
	sum := 0.0
	for _, v := range pi {
		sum += v
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("stationary sums to %v", sum)
	}
	if got := taq.ExpectedIdleEpochs(0.25); math.Abs(got-2) > 1e-12 {
		t.Errorf("ExpectedIdleEpochs(0.25) = %v, want 2", got)
	}
	tp, err := taq.TippingPoint(0.5, 6)
	if err != nil || tp <= 0 {
		t.Errorf("TippingPoint = %v, %v", tp, err)
	}
	if _, err := taq.FullModel(0.1, 6, 3); err != nil {
		t.Errorf("FullModel: %v", err)
	}
}

func TestFacadeStandaloneMiddlebox(t *testing.T) {
	e := taq.NewEngine(1)
	mb := taq.NewMiddlebox(e, taq.DefaultMiddleboxConfig(600*taq.Kbps, 30))
	mb.Start()
	mb.Enqueue(&taq.Packet{Flow: 1, Kind: taq.KindSyn, Size: 40})
	if mb.Len() != 1 {
		t.Errorf("Len = %d", mb.Len())
	}
	if p := mb.Dequeue(); p == nil || p.Flow != 1 {
		t.Errorf("Dequeue = %v", p)
	}
	if st, ok := mb.FlowStateOf(1); !ok || st != taq.StateNew {
		t.Errorf("state = %v ok=%v, want New", st, ok)
	}
	mb.Stop()
}

func TestFacadeTraceAndSessions(t *testing.T) {
	gen := taq.DefaultTraceConfig()
	gen.Clients = 5
	gen.Duration = 60 * taq.Second
	recs := taq.GenerateTrace(gen)
	if len(recs) == 0 {
		t.Fatal("no trace records")
	}
	net := taq.NewNetwork(taq.NetworkConfig{Seed: 2, Bandwidth: 1 * taq.Mbps})
	sessions := taq.Replay(net, recs, 4, taq.ReplayASAP)
	net.Run(300 * taq.Second)
	if len(sessions) == 0 {
		t.Fatal("no sessions")
	}
	done := 0
	for _, s := range sessions {
		for _, r := range s.Results {
			if r.Done {
				done++
				if r.DownloadTime() <= 0 {
					t.Error("non-positive download time")
				}
			}
		}
	}
	if done == 0 {
		t.Error("no objects completed")
	}
}

func TestFacadeJainIndex(t *testing.T) {
	if j := taq.JainIndex([]float64{1, 1, 1}); math.Abs(j-1) > 1e-12 {
		t.Errorf("JFI = %v", j)
	}
}

func TestFacadeSessionAPI(t *testing.T) {
	net := taq.NewNetwork(taq.NetworkConfig{Seed: 3, Bandwidth: 1 * taq.Mbps})
	s := taq.NewSession(net, 1, 2)
	res := s.Request(10*1024, taq.Second)
	net.Run(60 * taq.Second)
	if !res.Done {
		t.Fatal("object incomplete")
	}
	if s.Outstanding() != 0 {
		t.Errorf("outstanding = %d", s.Outstanding())
	}
}

func TestFacadeTestbed(t *testing.T) {
	tb := taq.NewTestbed(taq.TestbedConfig{Seed: 4, Speedup: 100, Bandwidth: 200 * taq.Kbps, UseTAQ: true})
	tb.AddBulkFlow()
	tb.RunFor(5 * taq.Second)
	tb.Stop()
	var total float64
	tb.Snapshot(func() { total = tb.Slicer.FlowTotal(0) })
	if total == 0 {
		t.Error("testbed flow delivered nothing")
	}
}

func TestFacadeTFRC(t *testing.T) {
	cfg := taq.DefaultTFRCConfig()
	if cfg.MSS != 500 {
		t.Errorf("MSS = %d", cfg.MSS)
	}
	net := taq.NewNetwork(taq.NetworkConfig{Seed: 5, Bandwidth: 400 * taq.Kbps})
	f := net.AddTFRCFlow(taq.PoolNone, 0)
	net.Run(30 * taq.Second)
	if f.TFRCSender.Rate() <= 0 {
		t.Error("TFRC sender rate not positive")
	}
	if net.Slicer.FlowTotal(f.ID) == 0 {
		t.Error("TFRC delivered nothing")
	}
}
