GO ?= go
FUZZTIME ?= 10s

.PHONY: build vet taqvet test race fuzz check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# taqvet is the repo's own determinism & concurrency analyzer suite
# (docs/static-analysis.md). It exits non-zero on any finding.
taqvet:
	$(GO) run ./cmd/taqvet ./...

test:
	$(GO) test ./...

# The race detector only matters where real goroutines run: the
# emulation layer and the pcap-style capture pipeline.
race:
	$(GO) test -race ./internal/emu/... ./internal/capture/...

fuzz:
	$(GO) test -run='^$$' -fuzz=FuzzTrackerTransitions -fuzztime=$(FUZZTIME) ./internal/core

check: build vet taqvet test race
