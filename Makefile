GO ?= go
FUZZTIME ?= 10s
BENCHSCALE ?= 0.05

.PHONY: build vet taqvet taqvet-sarif taqvet-roots taqvet-annotations test race fuzz bench check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# taqvet is the repo's own determinism & concurrency analyzer suite
# (docs/static-analysis.md). It exits non-zero on any finding.
taqvet:
	$(GO) run ./cmd/taqvet ./...

# taqvet-sarif is the CI form: SARIF 2.1.0 to taqvet.sarif for code
# scanning upload, with -audit so stale //taq:allow directives fail too.
taqvet-sarif:
	$(GO) run ./cmd/taqvet -audit -format sarif -out taqvet.sarif ./...

# taqvet-roots regenerates the committed hotpath-closure baseline.
# Run it after annotating (or retiring) a //taq:hotpath root and commit
# the result; CI diffs the live closure against this file, so a root
# that silently loses its annotation fails the build.
taqvet-roots:
	$(GO) run ./cmd/taqvet -roots ./... > docs/hotpath-closure.txt

# taqvet-annotations regenerates the committed contract-annotation
# inventory (//taq:shardowned, //taq:crossshard, //taq:atomic,
# //taq:layout). Run it after annotating (or un-annotating) a type,
# field, or function and commit the result; CI diffs the live
# inventory against this file, so a contract silently added or dropped
# fails the build.
taqvet-annotations:
	$(GO) run ./cmd/taqvet -annotations ./... > docs/taq-annotations.txt

test:
	$(GO) test ./...

# The race detector only matters where real goroutines run: the
# emulation layer (including the obs recorder + live endpoint under
# concurrent timers), the pcap-style capture pipeline, and the
# experiment sweep worker pool.
race:
	$(GO) test -race ./internal/emu/... ./internal/capture/... ./internal/obs/...
	$(GO) test -race -run 'TestRunPoints|TestParallelSweep' ./experiments

fuzz:
	$(GO) test -run='^$$' -fuzz=FuzzTrackerTransitions -fuzztime=$(FUZZTIME) ./internal/core

# bench records the perf trajectory: engine/discipline micro-benchmarks
# to stderr, and the full experiment suite's metrics + wall times to
# BENCH_results.json (see EXPERIMENTS.md's benchmark section).
bench:
	$(GO) test -run='^$$' -bench 'Engine|Discipline' -benchmem ./internal/sim .
	$(GO) test -run='^$$' -bench 'TrackerScan|FlowLookup|FlowMemory|GaugeSample' -benchmem ./internal/core
	$(GO) test -run='^$$' -bench 'HistogramRecord|RegistrySnapshot' -benchmem ./internal/obs
	$(GO) test -run='^$$' -bench 'ShardDispatch' -benchmem ./internal/emu
	$(GO) run ./cmd/taqbench -json -scale $(BENCHSCALE) -out BENCH_results.json -report-out BENCH_report.txt

check: build vet taqvet-sarif test race
