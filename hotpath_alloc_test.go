// Zero-allocation proofs for every declared //taq:hotpath root. The
// table below is keyed by the same root names taqvet's call-graph pass
// discovers (`go run ./cmd/taqvet -roots ./...`), and the test fails
// if the two lists drift: a new annotated root must bring an
// AllocsPerRun harness, and a retired one must take its row along.
// Several roots share one exercise — a warmed enqueue/dequeue cycle
// drives Enqueue, Dequeue and the tracker's catchUp at once — but
// every root must be claimed by exactly one row.
package taq_test

import (
	"testing"

	"taq/internal/analysis"
	"taq/internal/core"
	"taq/internal/link"
	"taq/internal/obs"
	"taq/internal/packet"
	"taq/internal/queue"
	"taq/internal/sim"
)

// hotRootCase exercises one or more hotpath roots at steady state and
// reports the AllocsPerRun observed.
type hotRootCase struct {
	// roots are the exact root names (types.Func.FullName form) this
	// case claims from the analysis closure.
	roots []string
	run   func(t *testing.T) float64
}

// mkPackets returns count warmup packets spread over eight flows.
func mkPackets(count int) []*packet.Packet {
	pkts := make([]*packet.Packet, count)
	for i := range pkts {
		pkts[i] = &packet.Packet{
			Flow: packet.FlowID(i % 8), Kind: packet.Data,
			Seq: i, Size: 500,
		}
	}
	return pkts
}

// cycleDiscipline warms disc and measures a steady-state
// enqueue/dequeue cycle.
func cycleDiscipline(disc queue.Discipline, pkts []*packet.Packet) float64 {
	for _, p := range pkts {
		disc.Enqueue(p)
	}
	for disc.Dequeue() != nil {
	}
	i := 0
	return testing.AllocsPerRun(1000, func() {
		disc.Enqueue(pkts[i%len(pkts)])
		disc.Dequeue()
		i++
	})
}

var hotRootCases = []hotRootCase{
	{
		roots: []string{
			"(*taq/internal/queue.DropTail).Enqueue",
			"(*taq/internal/queue.DropTail).Dequeue",
		},
		run: func(t *testing.T) float64 {
			return cycleDiscipline(queue.NewDropTail(64), mkPackets(64))
		},
	},
	{
		roots: []string{
			"(*taq/internal/queue.RED).Enqueue",
			"(*taq/internal/queue.RED).Dequeue",
		},
		run: func(t *testing.T) float64 {
			e := sim.NewEngine(1)
			red := queue.NewRED(queue.REDConfig{Capacity: 64, MeanPktTime: sim.Millisecond}, e.Now, e.Rand())
			return cycleDiscipline(red, mkPackets(64))
		},
	},
	{
		roots: []string{
			"(*taq/internal/queue.SFQ).Enqueue",
			"(*taq/internal/queue.SFQ).Dequeue",
		},
		run: func(t *testing.T) float64 {
			return cycleDiscipline(queue.NewSFQ(64, 64), mkPackets(64))
		},
	},
	{
		// The warmed TAQ cycle drives the whole per-packet path:
		// classify, admission, class queues, and the tracker's lazy
		// epoch roll (catchUp) on every observed packet.
		roots: []string{
			"(*taq/internal/core.TAQ).Enqueue",
			"(*taq/internal/core.TAQ).Dequeue",
			"(*taq/internal/core.flowInfo).catchUp",
		},
		run: func(t *testing.T) float64 {
			e := sim.NewEngine(1)
			mb := core.New(e, core.DefaultConfig(1000*link.Kbps, 64))
			return cycleDiscipline(mb, mkPackets(64))
		},
	},
	{
		// One probe of the open-addressed flow index, hit and miss: no
		// Go map access, no allocation.
		roots: []string{"(*taq/internal/core.TAQ).FlowStateOf"},
		run: func(t *testing.T) float64 {
			e := sim.NewEngine(1)
			mb := core.New(e, core.DefaultConfig(1000*link.Kbps, 64))
			for _, p := range mkPackets(64) {
				mb.Enqueue(p)
			}
			for mb.Dequeue() != nil {
			}
			var sink int
			allocs := testing.AllocsPerRun(1000, func() {
				if s, ok := mb.FlowStateOf(3); ok {
					sink += int(s)
				}
				if _, ok := mb.FlowStateOf(9999); ok {
					sink++
				}
			})
			_ = sink
			return allocs
		},
	},
	{
		roots: []string{"(*taq/internal/core.TAQ).ObserveReverse"},
		run: func(t *testing.T) float64 {
			e := sim.NewEngine(1)
			mb := core.New(e, core.DefaultConfig(1000*link.Kbps, 64))
			pkts := mkPackets(64)
			for _, p := range pkts {
				mb.Enqueue(p)
			}
			for mb.Dequeue() != nil {
			}
			ack := &packet.Packet{Flow: 1, Kind: packet.Ack, Seq: 1, Size: 40}
			return testing.AllocsPerRun(1000, func() {
				mb.ObserveReverse(ack)
			})
		},
	},
	{
		// The O(1) control-loop gauges, sampled together the way the
		// scan (and an operator poll) reads them.
		roots: []string{
			"(*taq/internal/core.TAQ).ActiveFlows",
			"(*taq/internal/core.TAQ).RecoveringFlows",
			"(*taq/internal/core.TAQ).StateCensus",
			"(*taq/internal/core.TAQ).FairShare",
			"(*taq/internal/core.TAQ).LossRate",
		},
		run: func(t *testing.T) float64 {
			e := sim.NewEngine(1)
			mb := core.New(e, core.DefaultConfig(1000*link.Kbps, 64))
			for _, p := range mkPackets(64) {
				mb.Enqueue(p)
			}
			for mb.Dequeue() != nil {
			}
			var sink int
			var sinkF float64
			allocs := testing.AllocsPerRun(100, func() {
				sink += mb.ActiveFlows()
				sink += mb.RecoveringFlows()
				c := mb.StateCensus()
				sink += c[core.StateNormal]
				sinkF += mb.FairShare()
				sinkF += mb.LossRate()
			})
			_, _ = sink, sinkF
			return allocs
		},
	},
	{
		roots: []string{"(*taq/internal/link.Link).Enqueue"},
		run: func(t *testing.T) float64 {
			e := sim.NewEngine(1)
			var got *packet.Packet
			l := link.New(e, 1000*link.Kbps, sim.Millisecond, queue.NewDropTail(64), func(p *packet.Packet) { got = p })
			pkts := mkPackets(8)
			for _, p := range pkts {
				l.Enqueue(p)
			}
			e.Run()
			i := 0
			allocs := testing.AllocsPerRun(1000, func() {
				l.Enqueue(pkts[i%len(pkts)])
				e.Run()
				i++
			})
			_ = got
			return allocs
		},
	},
	{
		roots: []string{"(*taq/internal/link.Pipe).Send"},
		run: func(t *testing.T) float64 {
			e := sim.NewEngine(1)
			var got *packet.Packet
			pipe := link.NewPipe(e, sim.Millisecond, func(p *packet.Packet) { got = p })
			pkts := mkPackets(8)
			for _, p := range pkts {
				pipe.Send(p)
			}
			e.Run()
			i := 0
			allocs := testing.AllocsPerRun(1000, func() {
				pipe.Send(pkts[i%len(pkts)])
				e.Run()
				i++
			})
			_ = got
			return allocs
		},
	},
	{
		// The engine's recycled fire-and-forget path: After allocates a
		// timer only while the free list grows; at steady state each
		// fired event returns its timer.
		roots: []string{
			"taq/internal/sim.After",
			"(*taq/internal/sim.Engine).After",
		},
		run: func(t *testing.T) float64 {
			e := sim.NewEngine(1)
			fn := func() {}
			for i := 0; i < 64; i++ {
				sim.After(e, sim.Millisecond, fn)
			}
			e.Run()
			return testing.AllocsPerRun(1000, func() {
				sim.After(e, sim.Millisecond, fn)
				e.Run()
			})
		},
	},
	{
		// The cancel-then-rearm churn of RTO and pacing timers: the
		// handle is reused in place, so rearming never allocates.
		roots: []string{
			"taq/internal/sim.Reschedule",
			"(*taq/internal/sim.Engine).Reschedule",
		},
		run: func(t *testing.T) float64 {
			e := sim.NewEngine(1)
			fn := func() {}
			tm := e.Schedule(sim.Second, fn)
			return testing.AllocsPerRun(1000, func() {
				tm = sim.Reschedule(e, tm, sim.Second, fn)
			})
		},
	},
	{
		// The "zero overhead when off" contract: every tracing hook on
		// a nil recorder must reduce to a branch.
		roots: []string{
			"(*taq/internal/obs.Recorder).Enqueue",
			"(*taq/internal/obs.Recorder).Dequeue",
			"(*taq/internal/obs.Recorder).Drop",
			"(*taq/internal/obs.Recorder).TrackerTransition",
			"(*taq/internal/obs.Recorder).TimeoutDetected",
			"(*taq/internal/obs.Recorder).AdmissionDecision",
			"(*taq/internal/obs.Recorder).ClassChange",
		},
		run: func(t *testing.T) float64 {
			var r *obs.Recorder
			p := &packet.Packet{Flow: 3, Kind: packet.Data, Seq: 7, Size: 500}
			return testing.AllocsPerRun(1000, func() {
				r.Enqueue(1, p, 0)
				r.Dequeue(2, p, 0)
				r.Drop(3, p, 0, false)
				r.TrackerTransition(4, p.Flow, p.Pool, 0, 1)
				r.TimeoutDetected(5, p.Flow, p.Pool, 1, 2)
				r.AdmissionDecision(6, p.Pool, obs.AdmissionAdmitted)
				r.ClassChange(7, p, 0, 1)
			})
		},
	},
	{
		// The metrics record path, enabled AND disabled: a live counter
		// bump is one atomic add, a live histogram observation a bounds
		// search plus three; on nil instruments every method reduces to
		// a branch. Both states must be allocation-free.
		roots: []string{
			"(*taq/internal/obs.Counter).Inc",
			"(*taq/internal/obs.Counter).Add",
			"(*taq/internal/obs.Counter).IncAt",
			"(*taq/internal/obs.Counter).AddAt",
			"(*taq/internal/obs.Histogram).Observe",
			"(*taq/internal/obs.Histogram).ObserveAt",
		},
		run: func(t *testing.T) float64 {
			reg := obs.NewRegistry()
			c := reg.Counter("c_total", "plain")
			cv := reg.CounterVec("cv_total", "vec", "class", []string{"a", "b", "c"})
			h := reg.Histogram("h_seconds", "plain", obs.DelayBuckets())
			hv := reg.HistogramVec("hv_seconds", "vec", obs.FCTBuckets(), "size", obs.FCTSizeLabels)
			var nc *obs.Counter
			var nh *obs.Histogram
			i := 0
			live := testing.AllocsPerRun(1000, func() {
				c.Inc()
				c.Add(3)
				cv.IncAt(i % 3)
				cv.AddAt(i%3, 2)
				h.Observe(sim.Time(i) * sim.Microsecond)
				hv.ObserveAt(i%3, sim.Time(i)*sim.Millisecond)
				i++
			})
			off := testing.AllocsPerRun(1000, func() {
				nc.Inc()
				nc.Add(3)
				nc.IncAt(1)
				nc.AddAt(1, 2)
				nh.Observe(sim.Second)
				nh.ObserveAt(1, sim.Second)
			})
			return live + off
		},
	},
	{
		// The middlebox metrics hooks, driven through a warmed TAQ
		// cycle with a live registry attached: every served and dropped
		// packet records class, sojourn and transitions in-line.
		roots: []string{
			"(*taq/internal/core.Metrics).observeServe",
			"(*taq/internal/core.Metrics).observeDrop",
			"(*taq/internal/core.Metrics).observeTransition",
			"(*taq/internal/core.Metrics).observeAdmission",
		},
		run: func(t *testing.T) float64 {
			e := sim.NewEngine(1)
			mb := core.New(e, core.DefaultConfig(1000*link.Kbps, 64))
			mb.SetMetrics(core.NewMetrics(obs.NewRegistry()))
			return cycleDiscipline(mb, mkPackets(64))
		},
	},
	{
		// The link metrics hooks: per-dequeue sojourn and per-transmit
		// byte accounting on a metered bottleneck.
		roots: []string{
			"(*taq/internal/link.Metrics).observeDequeue",
			"(*taq/internal/link.Metrics).observeTx",
		},
		run: func(t *testing.T) float64 {
			e := sim.NewEngine(1)
			var got *packet.Packet
			l := link.New(e, 1000*link.Kbps, sim.Millisecond, queue.NewDropTail(64), func(p *packet.Packet) { got = p })
			l.SetMetrics(link.NewMetrics(obs.NewRegistry()))
			pkts := mkPackets(8)
			for _, p := range pkts {
				l.Enqueue(p)
			}
			e.Run()
			i := 0
			allocs := testing.AllocsPerRun(1000, func() {
				l.Enqueue(pkts[i%len(pkts)])
				e.Run()
				i++
			})
			_ = got
			return allocs
		},
	},
}

// TestHotpathRootsZeroAlloc runs every case and requires zero
// allocations at steady state.
func TestHotpathRootsZeroAlloc(t *testing.T) {
	for _, tc := range hotRootCases {
		tc := tc
		t.Run(tc.roots[0], func(t *testing.T) {
			if allocs := tc.run(t); allocs != 0 {
				t.Fatalf("%v: %v allocs/op at steady state, want 0", tc.roots, allocs)
			}
		})
	}
}

// TestFlowStoreZeroAlloc churns the flat flow store at steady state:
// every iteration creates a brand-new flow — exercising getOrCreate's
// free-list recycle path and the open-addressed insert — while a fast
// scan cadence expires old flows, so slots and index buckets are
// recycled rather than grown. Creation, the lookup hit and miss
// probes, expiry eviction, and the deadline-heap traffic they generate
// must all run allocation-free.
func TestFlowStoreZeroAlloc(t *testing.T) {
	e := sim.NewEngine(1)
	cfg := core.DefaultConfig(1000*link.Kbps, 64)
	cfg.DefaultEpoch = 5 * sim.Millisecond
	cfg.ScanInterval = 10 * sim.Millisecond
	cfg.FlowExpiry = 40 * sim.Millisecond
	mb := core.New(e, cfg)
	mb.Start()
	defer mb.Stop()

	const warmup, runs = 1500, 1000
	pkts := make([]*packet.Packet, warmup+runs+2)
	for i := range pkts {
		pkts[i] = &packet.Packet{Flow: packet.FlowID(i + 1), Kind: packet.Data, Size: 500}
	}
	i := 0
	step := func() {
		mb.Enqueue(pkts[i])
		mb.Dequeue()
		if _, ok := mb.FlowStateOf(pkts[i].Flow); !ok {
			t.Fatal("freshly created flow is not tracked")
		}
		mb.FlowStateOf(packet.FlowID(-1)) // miss probe
		i++
		e.RunUntil(e.Now() + sim.Millisecond)
	}
	for i < warmup {
		step()
	}
	if allocs := testing.AllocsPerRun(runs, step); allocs != 0 {
		t.Fatalf("flow churn: %v allocs/op at steady state, want 0", allocs)
	}
}

// TestHotpathTableMatchesClosure pins the table to the annotations:
// the set of roots the analyzer discovers must equal the set the table
// claims, so annotating a new hot path without a zero-alloc proof (or
// deleting one and leaving a dead row) fails here.
func TestHotpathTableMatchesClosure(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the whole module")
	}
	pkgs, err := analysis.Load(".", "./...")
	if err != nil {
		t.Fatalf("loading module: %v", err)
	}
	prog := analysis.NewProgram(pkgs)
	declared := make(map[string]bool)
	for _, r := range prog.Roots() {
		declared[r.Name()] = true
	}
	claimed := make(map[string]bool)
	for _, tc := range hotRootCases {
		for _, name := range tc.roots {
			if claimed[name] {
				t.Errorf("root %s claimed by two table rows", name)
			}
			claimed[name] = true
			if !declared[name] {
				t.Errorf("table row claims %s, but no //taq:hotpath declares it", name)
			}
		}
	}
	for name := range declared {
		if !claimed[name] {
			t.Errorf("root %s is annotated but has no zero-alloc table row", name)
		}
	}
}
