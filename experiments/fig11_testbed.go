package experiments

import (
	"fmt"

	"taq/internal/emu"
	"taq/internal/link"
	"taq/internal/sim"
)

// TestbedPoint is one prototype run of Fig 11: the real-time
// middlebox serving long-lived flows at a given contention level.
type TestbedPoint struct {
	UseTAQ       bool
	Bandwidth    link.Bps
	Flows        int
	FairShareBps float64
	ShortJFI     float64
	LossRate     float64
}

// TestbedResult is the Fig 11 sweep.
type TestbedResult struct {
	Points []TestbedPoint
}

// TestbedOptions tunes the real-time runs (they consume wall time!).
type TestbedOptions struct {
	// Speedup compresses wall time; keep virtualPktRate/Speedup well
	// under the OS timer capacity (~50k/s).
	Speedup float64
	// VirtualDuration per run.
	VirtualDuration sim.Time
	// SliceWidth for the short-term JFI.
	SliceWidth sim.Time
	// FlowCounts per bandwidth; zero → defaults.
	FlowCounts []int
	Seed       int64
}

// RunTestbedFairness reproduces Fig 11: the same TAQ implementation,
// running under the wall-clock engine (the prototype substrate), is
// compared against DropTail at 600 Kbps and 1 Mbps. The paper's
// reading: even on basic hardware TAQ handles these packet rates and
// improves the short-term Jain index.
func RunTestbedFairness(opt TestbedOptions) TestbedResult {
	if opt.Speedup == 0 {
		opt.Speedup = 40
	}
	if opt.VirtualDuration == 0 {
		opt.VirtualDuration = 60 * sim.Second
	}
	if opt.SliceWidth == 0 {
		opt.SliceWidth = 10 * sim.Second
	}
	if opt.FlowCounts == nil {
		opt.FlowCounts = []int{30, 60}
	}
	if opt.Seed == 0 {
		opt.Seed = 1
	}
	var res TestbedResult
	for _, bw := range []link.Bps{600 * link.Kbps, 1000 * link.Kbps} {
		for _, n := range opt.FlowCounts {
			for _, useTAQ := range []bool{false, true} {
				res.Points = append(res.Points, testbedPoint(bw, n, useTAQ, opt))
			}
		}
	}
	return res
}

func testbedPoint(bw link.Bps, n int, useTAQ bool, opt TestbedOptions) TestbedPoint {
	tb := emu.NewTestbed(emu.TestbedConfig{
		Seed:       opt.Seed,
		Speedup:    opt.Speedup,
		Bandwidth:  bw,
		UseTAQ:     useTAQ,
		SliceWidth: opt.SliceWidth,
	})
	for i := 0; i < n; i++ {
		tb.AddBulkFlow()
	}
	tb.RunFor(opt.VirtualDuration)
	tb.Stop()
	pt := TestbedPoint{
		UseTAQ:       useTAQ,
		Bandwidth:    bw,
		Flows:        n,
		FairShareBps: float64(bw) / float64(n),
	}
	tb.Snapshot(func() {
		slices := int(opt.VirtualDuration / opt.SliceWidth)
		pt.ShortJFI = tb.Slicer.MeanSliceJFI(1, slices)
		if tb.QueueArrivals > 0 {
			pt.LossRate = float64(tb.QueueDrops) / float64(tb.QueueArrivals)
		}
	})
	return pt
}

// Table renders the testbed comparison.
func (r TestbedResult) Table() string {
	rows := make([][]string, 0, len(r.Points))
	for _, p := range r.Points {
		q := "DT"
		if p.UseTAQ {
			q = "TAQ"
		}
		rows = append(rows, []string{
			q,
			fmt.Sprintf("%.0fKbps", float64(p.Bandwidth)/1e3),
			fmt.Sprintf("%d", p.Flows),
			fmt.Sprintf("%.0f", p.FairShareBps),
			f3(p.ShortJFI),
			f3(p.LossRate),
		})
	}
	return table([]string{"queue", "bandwidth", "flows", "fairshare(bps)", "shortJFI", "loss"}, rows)
}

// Compare returns, for each (bandwidth, flows) pair, the TAQ-minus-DT
// short-term JFI difference.
func (r TestbedResult) Compare() map[string]float64 {
	dt := map[string]float64{}
	taq := map[string]float64{}
	for _, p := range r.Points {
		key := fmt.Sprintf("%.0f/%d", float64(p.Bandwidth), p.Flows)
		if p.UseTAQ {
			taq[key] = p.ShortJFI
		} else {
			dt[key] = p.ShortJFI
		}
	}
	out := map[string]float64{}
	for k, v := range taq {
		out[k] = v - dt[k]
	}
	return out
}
