package experiments

import (
	"reflect"
	"testing"

	"taq/internal/link"
	"taq/internal/topology"
)

func TestRunPointsIndexing(t *testing.T) {
	points := make([]int, 257) // deliberately not a multiple of workers
	for i := range points {
		points[i] = i * 3
	}
	want := make([]int, len(points))
	for i, p := range points {
		want[i] = p + 1
	}
	for _, workers := range []int{0, 1, 2, 8, 500} {
		got := RunPoints(points, workers, func(i int, p int) int {
			if points[i] != p {
				t.Errorf("workers=%d: fn(%d, %d) got mismatched index/point", workers, i, p)
			}
			return p + 1
		})
		if !reflect.DeepEqual(got, want) {
			t.Errorf("workers=%d: results not in input order", workers)
		}
	}
}

func TestRunPointsEmpty(t *testing.T) {
	got := RunPoints(nil, 4, func(int, struct{}) int { return 1 })
	if len(got) != 0 {
		t.Errorf("RunPoints(nil) returned %d results", len(got))
	}
}

func TestSetParallelism(t *testing.T) {
	defer SetParallelism(0)
	SetParallelism(3)
	if got := Parallelism(); got != 3 {
		t.Errorf("Parallelism() = %d after SetParallelism(3)", got)
	}
	SetParallelism(0)
	if got := Parallelism(); got < 1 {
		t.Errorf("Parallelism() = %d with default, want >= 1", got)
	}
}

// TestParallelSweepMatchesSerial is the determinism contract for the
// sweep layer: because every point builds its own seeded engine, the
// fig2/fig8 fairness results must be deep-equal no matter how many
// workers evaluate them.
func TestParallelSweepMatchesSerial(t *testing.T) {
	defer SetParallelism(0)
	cfg := FairnessConfig{
		Bandwidths: []link.Bps{200 * link.Kbps},
		FairShares: []float64{5000, 10000},
		Seed:       1,
	}
	for _, qk := range []topology.QueueKind{topology.DropTail, topology.TAQ} {
		cfg.Queue = qk
		SetParallelism(1)
		serial := RunFairness(cfg, Scale(0.05))
		SetParallelism(8)
		parallel := RunFairness(cfg, Scale(0.05))
		if !reflect.DeepEqual(serial, parallel) {
			t.Errorf("%s: workers=1 and workers=8 diverged:\nserial:   %+v\nparallel: %+v",
				qk, serial, parallel)
		}
	}
}
