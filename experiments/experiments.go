// Package experiments contains one runner per table/figure of the
// paper's evaluation, each reproducing the corresponding workload,
// parameter sweep and measurement, and printing the same rows/series
// the paper reports. Every runner takes a scale factor that shrinks
// run durations (and, where safe, sweep sizes) so the suite doubles as
// a fast regression test; cmd/taqbench runs it at any scale, and
// bench_test.go pins one benchmark per figure.
//
// The experiment-to-module map lives in DESIGN.md §3; paper-vs-measured
// results are recorded in EXPERIMENTS.md.
package experiments

import (
	"fmt"
	"strings"

	"taq/internal/sim"
)

// Scale shrinks experiment durations and sweep sizes. 1.0 is paper
// scale; the test suite and benches run around 0.02–0.1.
type Scale float64

// duration scales d, enforcing a floor.
func (s Scale) duration(d, floor sim.Time) sim.Time {
	scaled := sim.Time(float64(d) * float64(s))
	if scaled < floor {
		return floor
	}
	return scaled
}

// count scales an integer count with a floor.
func (s Scale) count(n, floor int) int {
	scaled := int(float64(n) * float64(s))
	if scaled < floor {
		return floor
	}
	return scaled
}

// table renders rows as a fixed-width text table.
func table(header []string, rows [][]string) string {
	widths := make([]int, len(header))
	for i, h := range header {
		widths[i] = len(h)
	}
	for _, r := range rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(header)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, r := range rows {
		writeRow(r)
	}
	return b.String()
}

// csvTable renders rows as RFC-4180-ish CSV (fields here never contain
// commas or quotes).
func csvTable(header []string, rows [][]string) string {
	var b strings.Builder
	b.WriteString(strings.Join(header, ","))
	b.WriteByte('\n')
	for _, r := range rows {
		b.WriteString(strings.Join(r, ","))
		b.WriteByte('\n')
	}
	return b.String()
}

func f2(v float64) string { return fmt.Sprintf("%.2f", v) }
func f3(v float64) string { return fmt.Sprintf("%.3f", v) }
func f1(v float64) string { return fmt.Sprintf("%.1f", v) }
