package experiments

import (
	"taq/internal/link"
	"taq/internal/sim"
	"taq/internal/tcp"
	"taq/internal/topology"
	"taq/internal/workload"
)

// IWPoint measures one (variant, initial window, queue) combination in
// the flow-initiation experiment.
type IWPoint struct {
	Label        string
	Queue        topology.QueueKind
	MedianSecs   float64
	P90Secs      float64
	TimeoutFrac  float64 // fraction of short flows that hit ≥1 RTO
	CompleteFrac float64
}

// IWResult is the §2.1 initial-window experiment.
type IWResult struct {
	Points []IWPoint
}

// RunInitialWindow probes §2.1's observation that with modern stacks
// (CUBIC, initial window 10) the congestion effect of SPK(k<10)
// regimes "is typically observed at flow initiation time due to packet
// losses": short flows opening with IW10 into a busy link blast a
// window the fair share cannot absorb. We compare IW2 NewReno against
// IW10 CUBIC short flows joining 40 background flows on 1 Mbps
// (≈1.25 pkt/RTT fair share), under DropTail and TAQ.
func RunInitialWindow(scale Scale, seed int64) IWResult {
	if seed == 0 {
		seed = 1
	}
	warm := scale.duration(100*sim.Second, 40*sim.Second)
	type variant struct {
		label   string
		variant tcp.Variant
		iw      float64
	}
	variants := []variant{
		{"newreno-iw2", tcp.VariantNewReno, 2},
		{"cubic-iw10", tcp.VariantCubic, 10},
	}
	type job struct {
		qk topology.QueueKind
		v  variant
	}
	var jobs []job
	for _, qk := range []topology.QueueKind{topology.DropTail, topology.TAQ} {
		for _, v := range variants {
			jobs = append(jobs, job{qk: qk, v: v})
		}
	}
	points := runSweep(jobs, func(_ int, j job) IWPoint {
		tcpCfg := tcp.DefaultConfig()
		tcpCfg.Variant = j.v.variant
		tcpCfg.InitialCwnd = j.v.iw
		net := topology.MustNew(topology.Config{
			Seed:      seed,
			Bandwidth: 1000 * link.Kbps,
			Queue:     j.qk,
			RTTJitter: 0.25,
			TCP:       tcpCfg,
		})
		workload.AddBulkFlows(net, 40, 50*sim.Millisecond)
		var shorts []*workload.ShortFlowResult
		for i := 0; i < 24; i++ {
			at := warm + sim.Time(i)*4*sim.Second
			shorts = append(shorts, workload.AddShortFlow(net, 20, at))
		}
		net.Run(warm + 24*4*sim.Second + 120*sim.Second)

		pt := IWPoint{Label: j.v.label, Queue: j.qk}
		var times []float64
		timeouts := 0
		for _, r := range shorts {
			f := net.Flow(r.Flow)
			if f.Sender.Stats.Timeouts > 0 {
				timeouts++
			}
			if r.Done {
				times = append(times, r.Duration().Seconds())
			}
		}
		pt.TimeoutFrac = float64(timeouts) / float64(len(shorts))
		pt.CompleteFrac = float64(len(times)) / float64(len(shorts))
		if len(times) > 0 {
			var c cdfOf
			for _, v := range times {
				c.add(v)
			}
			pt.MedianSecs = c.pct(50)
			pt.P90Secs = c.pct(90)
		}
		return pt
	})
	return IWResult{Points: points}
}

// cdfOf is a tiny local percentile helper (avoids importing metrics
// for two numbers).
type cdfOf struct{ v []float64 }

func (c *cdfOf) add(x float64) {
	i := 0
	for i < len(c.v) && c.v[i] < x {
		i++
	}
	c.v = append(c.v, 0)
	copy(c.v[i+1:], c.v[i:])
	c.v[i] = x
}

func (c *cdfOf) pct(p float64) float64 {
	if len(c.v) == 0 {
		return 0
	}
	i := int(p / 100 * float64(len(c.v)-1))
	return c.v[i]
}

// Table renders the experiment.
func (r IWResult) Table() string {
	rows := make([][]string, 0, len(r.Points))
	for _, p := range r.Points {
		rows = append(rows, []string{
			string(p.Queue), p.Label,
			f2(p.MedianSecs), f2(p.P90Secs),
			f2(p.TimeoutFrac), f2(p.CompleteFrac),
		})
	}
	return table([]string{"queue", "variant", "median(s)", "p90(s)", "timeout frac", "completed"}, rows)
}

// Point returns the named (queue, label) measurement.
func (r IWResult) Point(qk topology.QueueKind, label string) (IWPoint, bool) {
	for _, p := range r.Points {
		if p.Queue == qk && p.Label == label {
			return p, true
		}
	}
	return IWPoint{}, false
}
