package experiments

import (
	"fmt"

	"taq/internal/core"
	"taq/internal/link"
	"taq/internal/sim"
	"taq/internal/topology"
	"taq/internal/workload"
)

// AblationPoint measures one TAQ variant on the Fig 9 scenario.
type AblationPoint struct {
	Variant        string
	ShortJFI       float64
	MeanStalled    float64
	MeanMaintained float64
	RepetitiveTOs  uint64
	LossRate       float64
}

// AblationResult compares full TAQ against variants with one design
// element removed (the design choices DESIGN.md calls out), plus the
// DropTail floor.
type AblationResult struct {
	Points []AblationPoint
}

// RunAblation runs 120 flows over 600 Kbps under each variant.
func RunAblation(scale Scale, seed int64) AblationResult {
	if seed == 0 {
		seed = 1
	}
	duration := scale.duration(800*sim.Second, 200*sim.Second)
	const bw = 600 * link.Kbps
	type variant struct {
		name   string
		mut    func(*core.Config)
		qk     topology.QueueKind
		twoWay bool
	}
	variants := []variant{
		{"taq-full", func(*core.Config) {}, topology.TAQ, false},
		{"no-recovery-priority", func(c *core.Config) { c.NoRecoveryPriority = true }, topology.TAQ, false},
		{"no-occupancy-drops", func(c *core.Config) { c.NoOccupancyDrops = true }, topology.TAQ, false},
		{"no-recovery-protection", func(c *core.Config) { c.NoRecoveryProtection = true }, topology.TAQ, false},
		{"proportional-fairness", func(c *core.Config) { c.Fairness = core.Proportional }, topology.TAQ, false},
		{"two-way-observation", func(*core.Config) {}, topology.TAQ, true},
		{"droptail", nil, topology.DropTail, false},
	}

	points := runSweep(variants, func(_ int, v variant) AblationPoint {
		cfg := topology.Config{
			Seed:              seed,
			Bandwidth:         bw,
			Queue:             v.qk,
			RTTJitter:         0.25,
			TwoWayObservation: v.twoWay,
		}
		if v.mut != nil {
			tcfg := core.DefaultConfig(bw, 0)
			v.mut(&tcfg)
			cfg.TAQ = &tcfg
		}
		net := topology.MustNew(cfg)
		workload.AddBulkFlows(net, 120, 50*sim.Millisecond)
		net.Run(duration)

		slices := int(duration / net.Slicer.Width())
		ev := net.Slicer.Evolution(2, slices)
		_, rep := net.AggregateTimeouts()
		return AblationPoint{
			Variant:        v.name,
			ShortJFI:       net.Slicer.MeanSliceJFI(2, slices),
			MeanStalled:    ev.MeanStalled(),
			MeanMaintained: ev.MeanMaintained(),
			RepetitiveTOs:  rep,
			LossRate:       net.LossRate(),
		}
	})
	return AblationResult{Points: points}
}

// Table renders the ablation.
func (r AblationResult) Table() string {
	rows := make([][]string, 0, len(r.Points))
	for _, p := range r.Points {
		rows = append(rows, []string{
			p.Variant,
			f3(p.ShortJFI),
			f1(p.MeanStalled),
			f1(p.MeanMaintained),
			fmt.Sprintf("%d", p.RepetitiveTOs),
			f3(p.LossRate),
		})
	}
	return table([]string{"variant", "shortJFI", "stalled", "maintained", "repetitiveTO", "loss"}, rows)
}

// Point returns the named variant's measurements.
func (r AblationResult) Point(variant string) (AblationPoint, bool) {
	for _, p := range r.Points {
		if p.Variant == variant {
			return p, true
		}
	}
	return AblationPoint{}, false
}
