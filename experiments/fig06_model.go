package experiments

import (
	"fmt"

	"taq/internal/link"
	"taq/internal/markov"
	"taq/internal/sim"
	"taq/internal/tcp"
	"taq/internal/topology"
	"taq/internal/workload"
)

// ValidationPoint compares the empirical per-epoch packets-sent
// distribution against the Markov model's stationary distribution at
// the measured loss rate (Fig 6).
type ValidationPoint struct {
	Bandwidth link.Bps
	Flows     int
	LossRate  float64
	// Sim[k] and Model[k] are the probabilities of sending k packets
	// in an epoch, k = 0..Wmax (class Wmax clamps larger windows).
	Sim, Model map[int]float64
	// MeanAbsError averages |Sim−Model| over the classes.
	MeanAbsError float64
}

// ValidationResult is the Fig 6 sweep.
type ValidationResult struct {
	Wmax   int
	Points []ValidationPoint
}

// RunModelValidation reproduces Fig 6: flows with variable RTTs and
// TCP SACK share bottlenecks of 200/750/1000 Kbps; contention (N) is
// swept to cover loss probabilities up to ~0.3; for each run the
// per-epoch packets-sent census is compared to the partial model's
// stationary distribution at the measured p.
func RunModelValidation(scale Scale, seed int64) ValidationResult {
	if seed == 0 {
		seed = 1
	}
	const wmax = 6
	duration := scale.duration(2000*sim.Second, 200*sim.Second)
	res := ValidationResult{Wmax: wmax}
	for _, bw := range []link.Bps{200 * link.Kbps, 750 * link.Kbps, 1000 * link.Kbps} {
		// Sweep contention: fair shares from ~4 pkts/RTT down to deep
		// sub-packet, producing a range of loss rates.
		for _, perFlowPkts := range []float64{4, 2, 1, 0.5, 0.25} {
			pktsPerRTT := float64(bw) * 0.2 / 8 / 500
			n := int(pktsPerRTT / perFlowPkts)
			if n < 4 {
				continue
			}
			res.Points = append(res.Points, validationPoint(bw, n, wmax, duration, seed))
		}
	}
	return res
}

func validationPoint(bw link.Bps, n, wmax int, duration sim.Time, seed int64) ValidationPoint {
	tcpCfg := tcp.DefaultConfig()
	tcpCfg.SACK = true // the paper validates against TCP SACK
	// The model's base timeout is T0 = 2×RTT (§3.1.1): pin the
	// senders' base RTO to that constant so a simple timeout spans
	// about one silent epoch, as in the chain.
	tcpCfg.FixedRTO = 400 * sim.Millisecond
	net := topology.MustNew(topology.Config{
		Seed:      seed,
		Bandwidth: bw,
		Queue:     topology.DropTail,
		RTTJitter: 0.25,
		TCP:       tcpCfg,
	})
	net.EnableCensus(wmax, 400*sim.Millisecond) // ≈ RTT incl. queueing
	workload.AddBulkFlows(net, n, 50*sim.Millisecond)
	net.Run(duration)

	point := ValidationPoint{
		Bandwidth: bw,
		Flows:     n,
		LossRate:  net.LossRate(),
		Sim:       net.Census.Distribution(),
		Model:     map[int]float64{},
	}
	p := point.LossRate
	if p <= 0.005 {
		p = 0.005
	}
	if p >= markov.MaxLoss {
		p = markov.MaxLoss - 0.01
	}
	chain, err := markov.PartialModel(p, wmax)
	if err == nil {
		if pi, err := chain.Stationary(); err == nil {
			point.Model = chain.SentDistribution(pi)
		}
	}
	sum, classes := 0.0, 0
	for k := 0; k <= wmax; k++ {
		d := point.Sim[k] - point.Model[k]
		if d < 0 {
			d = -d
		}
		sum += d
		classes++
	}
	point.MeanAbsError = sum / float64(classes)
	return point
}

// Table renders per-class sim-vs-model probabilities.
func (r ValidationResult) Table() string {
	header := []string{"bandwidth", "flows", "p(meas)"}
	for k := 0; k <= r.Wmax; k++ {
		header = append(header, fmt.Sprintf("sim%d", k), fmt.Sprintf("mod%d", k))
	}
	header = append(header, "MAE")
	rows := make([][]string, 0, len(r.Points))
	for _, pt := range r.Points {
		row := []string{
			fmt.Sprintf("%.0fKbps", float64(pt.Bandwidth)/1e3),
			fmt.Sprintf("%d", pt.Flows),
			f3(pt.LossRate),
		}
		for k := 0; k <= r.Wmax; k++ {
			row = append(row, f3(pt.Sim[k]), f3(pt.Model[k]))
		}
		row = append(row, f3(pt.MeanAbsError))
		rows = append(rows, row)
	}
	return table(header, rows)
}

// WorstError returns the largest mean absolute error across points
// within the model's scope: measured p > minP (the paper notes
// agreement is best for p > 0.05) and most of the empirical mass below
// the Wmax truncation (§3.1.2: "many flows have higher window sizes,
// but for small packet regimes we are only interested in small cwnd").
func (r ValidationResult) WorstError(minP float64) float64 {
	worst := 0.0
	for _, pt := range r.Points {
		if pt.LossRate <= minP || pt.Sim[r.Wmax] > 0.3 {
			continue
		}
		if pt.MeanAbsError > worst {
			worst = pt.MeanAbsError
		}
	}
	return worst
}
