package experiments

import (
	"taq/internal/emu"
	"taq/internal/link"
	"taq/internal/metrics"
	"taq/internal/sim"
	"taq/internal/trace"
	"taq/internal/workload"
)

// TestbedWebPoint is one real-time web replay (§5.5 on the prototype
// substrate): per-object download-time statistics for one middlebox.
type TestbedWebPoint struct {
	UseTAQ    bool
	MedianS   float64
	P90S      float64
	WorstS    float64
	Completed float64
}

// TestbedWebResult compares DropTail and TAQ on the testbed.
type TestbedWebResult struct {
	Points []TestbedWebPoint
}

// TestbedWebOptions tunes the wall-clock web replay.
type TestbedWebOptions struct {
	Speedup         float64
	Bandwidth       link.Bps
	Clients         int
	ObjectsPerHost  int
	VirtualDuration sim.Time
	Seed            int64
}

// RunTestbedWeb replays a small web workload through the real-time
// middlebox (the paper's §5.4–5.5 testbed methodology: client scripts
// opening up to four connections against a server behind the
// middlebox). Each client fetches a queue of small objects ASAP.
func RunTestbedWeb(opt TestbedWebOptions) TestbedWebResult {
	if opt.Speedup == 0 {
		opt.Speedup = 50
	}
	if opt.Bandwidth == 0 {
		opt.Bandwidth = 600 * link.Kbps
	}
	if opt.Clients == 0 {
		opt.Clients = 6
	}
	if opt.ObjectsPerHost == 0 {
		opt.ObjectsPerHost = 8
	}
	if opt.VirtualDuration == 0 {
		opt.VirtualDuration = 120 * sim.Second
	}
	if opt.Seed == 0 {
		opt.Seed = 1
	}
	// One request list shared by both runs.
	var recs []trace.Record
	for c := 0; c < opt.Clients; c++ {
		for i := 0; i < opt.ObjectsPerHost; i++ {
			size := 10*1024 + (i%5)*2048
			recs = append(recs, trace.Record{Client: c, Size: size})
		}
	}

	var res TestbedWebResult
	for _, useTAQ := range []bool{false, true} {
		tb := emu.NewTestbed(emu.TestbedConfig{
			Seed:      opt.Seed,
			Speedup:   opt.Speedup,
			Bandwidth: opt.Bandwidth,
			UseTAQ:    useTAQ,
		})
		var sessions map[int]*workload.Session
		tb.Engine.Post(func() {
			sessions = workload.ReplayOn(workload.TestbedHost(tb), recs, 4, workload.ReplayASAP)
		})
		tb.RunFor(opt.VirtualDuration)
		tb.Stop()
		var times metrics.CDF
		total, done := 0, 0
		tb.Snapshot(func() {
			for _, s := range sessions {
				for _, r := range s.Results {
					total++
					if r.Done {
						done++
						times.Add(r.DownloadTime().Seconds())
					}
				}
			}
		})
		pt := TestbedWebPoint{UseTAQ: useTAQ}
		if total > 0 {
			pt.Completed = float64(done) / float64(total)
		}
		if times.N() > 0 {
			pt.MedianS = times.Median()
			pt.P90S = times.Percentile(90)
			pt.WorstS = times.Max()
		}
		res.Points = append(res.Points, pt)
	}
	return res
}

// Table renders the comparison.
func (r TestbedWebResult) Table() string {
	rows := make([][]string, 0, len(r.Points))
	for _, p := range r.Points {
		q := "DT"
		if p.UseTAQ {
			q = "TAQ"
		}
		rows = append(rows, []string{
			q, f2(p.MedianS), f2(p.P90S), f2(p.WorstS), f2(p.Completed),
		})
	}
	return table([]string{"queue", "median(s)", "p90(s)", "worst(s)", "completed"}, rows)
}

// Point returns the DT or TAQ measurement.
func (r TestbedWebResult) Point(useTAQ bool) (TestbedWebPoint, bool) {
	for _, p := range r.Points {
		if p.UseTAQ == useTAQ {
			return p, true
		}
	}
	return TestbedWebPoint{}, false
}
