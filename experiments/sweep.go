package experiments

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// This file is the only place experiment code touches goroutines, and
// the concurrency lives strictly *above* the simulation: every sweep
// point constructs its own seeded sim.Engine inside fn, and no engine,
// topology, or metric sink is ever shared across workers. That is what
// keeps the taqvet determinism contract intact for the simulation-path
// packages — parallelism changes wall time, never results.

// parallelism is the process-wide worker count for experiment sweeps:
// 0 means GOMAXPROCS, 1 means serial. Set from taqbench's -parallel
// flag; read by every figure runner through runSweep — which races
// with nothing only because every access goes through sync/atomic.
//
//taq:atomic set by the CLI goroutine, read by sweep workers
var parallelism atomic.Int64

// SetParallelism sets the default worker count used by the figure
// runners. n <= 0 restores the default (GOMAXPROCS).
func SetParallelism(n int) {
	if n < 0 {
		n = 0
	}
	parallelism.Store(int64(n))
}

// Parallelism returns the effective default worker count.
func Parallelism() int {
	if n := int(parallelism.Load()); n > 0 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// RunPoints evaluates fn over points on a pool of workers and returns
// the results indexed exactly like points, so output ordering — and
// therefore every table, CSV, and test expectation — is byte-identical
// to a serial run. fn must be self-contained: it receives the point and
// its index, builds its own seeded engine, and returns the measurement.
// workers <= 0 means GOMAXPROCS; workers == 1 runs serially on the
// calling goroutine (no pool, no nondeterministic scheduling at all).
func RunPoints[P, R any](points []P, workers int, fn func(index int, point P) R) []R {
	out := make([]R, len(points))
	if len(points) == 0 {
		return out
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(points) {
		workers = len(points)
	}
	if workers == 1 {
		for i, p := range points {
			out[i] = fn(i, p)
		}
		return out
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(points) {
					return
				}
				out[i] = fn(i, points[i])
			}
		}()
	}
	wg.Wait()
	return out
}

// runSweep is RunPoints at the process-wide default parallelism — the
// form the figure runners use.
func runSweep[P, R any](points []P, fn func(index int, point P) R) []R {
	return RunPoints(points, Parallelism(), fn)
}
