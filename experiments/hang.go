package experiments

import (
	"fmt"

	"taq/internal/link"
	"taq/internal/packet"
	"taq/internal/sim"
	"taq/internal/topology"
	"taq/internal/workload"
)

// HangPoint summarizes user-perceived hangs for one population size
// (§2.3's in-text experiment: 1 Mbps, RTT 200 ms, 50-packet buffer,
// 4 connections per user).
type HangPoint struct {
	Users        int
	ConnsPerUser int
	FracOver20s  float64
	FracOver60s  float64
	MaxHang      sim.Time
}

// HangResult holds the §2.3 hang experiment for several populations.
type HangResult struct {
	Queue  topology.QueueKind
	Points []HangPoint
}

// RunHangTimes reproduces §2.3: users each spawn a pool of TCP
// connections sharing a 1 Mbps bottleneck; a user-perceived hang is an
// interval in which none of the user's connections delivers data.
// Paper: with 200 users all users hang >20 s at least once; with 400
// users ~50% hang >1 minute.
func RunHangTimes(qk topology.QueueKind, scale Scale, seed int64) HangResult {
	if seed == 0 {
		seed = 1
	}
	duration := scale.duration(1000*sim.Second, 400*sim.Second)
	points := runSweep([]int{200, 400}, func(_ int, users int) HangPoint {
		n := topology.MustNew(topology.Config{
			Seed:      seed,
			Bandwidth: 1000 * link.Kbps,
			PropRTT:   200 * sim.Millisecond,
			Queue:     qk,
			RTTJitter: 0.25,
		})
		workload.WebUserPool(n, users, 4, 5*sim.Second)
		n.Run(duration)
		n.Hangs.Finish(n.Engine.Now())
		var maxHang sim.Time
		for u := 0; u < users; u++ {
			if h := n.Hangs.MaxHang(packet.PoolID(u)); h > maxHang {
				maxHang = h
			}
		}
		return HangPoint{
			Users:        users,
			ConnsPerUser: 4,
			FracOver20s:  n.Hangs.FractionExceeding(20 * sim.Second),
			FracOver60s:  n.Hangs.FractionExceeding(60 * sim.Second),
			MaxHang:      maxHang,
		}
	})
	return HangResult{Queue: qk, Points: points}
}

// Table renders the hang summary.
func (r HangResult) Table() string {
	rows := make([][]string, 0, len(r.Points))
	for _, p := range r.Points {
		rows = append(rows, []string{
			fmt.Sprintf("%d", p.Users),
			fmt.Sprintf("%d", p.ConnsPerUser),
			f2(p.FracOver20s),
			f2(p.FracOver60s),
			fmt.Sprintf("%.0fs", p.MaxHang.Seconds()),
		})
	}
	return fmt.Sprintf("Queue: %s\n", r.Queue) +
		table([]string{"users", "conns", ">20s hang", ">60s hang", "max hang"}, rows)
}
