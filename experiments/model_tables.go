package experiments

import (
	"fmt"

	"taq/internal/link"
	"taq/internal/markov"
	"taq/internal/topology"
)

// ModelTables summarizes the §3.1 analytical results: the stationary
// distribution of the partial model across loss rates, the expected
// idle time, and the tipping point behind TAQ's p_thresh.
type ModelTables struct {
	Wmax         int
	LossRates    []float64
	TimeoutMass  []float64
	IdleEpochs   []float64
	TippingPoint float64
}

// RunModelTables computes the model summary (pure computation; no
// simulation).
func RunModelTables() (ModelTables, error) {
	const wmax = 6
	ps := []float64{0.02, 0.05, 0.08, 0.1, 0.12, 0.15, 0.2, 0.25, 0.3, 0.35, 0.4}
	out := ModelTables{Wmax: wmax, LossRates: ps}
	masses, err := markov.TimeoutCurve(ps, wmax)
	if err != nil {
		return out, err
	}
	out.TimeoutMass = masses
	for _, p := range ps {
		out.IdleEpochs = append(out.IdleEpochs, markov.ExpectedIdleEpochs(p))
	}
	tp, err := markov.TippingPoint(0.5, wmax)
	if err != nil {
		return out, err
	}
	out.TippingPoint = tp
	return out, nil
}

// Table renders the summary.
func (m ModelTables) Table() string {
	rows := make([][]string, 0, len(m.LossRates))
	for i, p := range m.LossRates {
		rows = append(rows, []string{f3(p), f3(m.TimeoutMass[i]), f2(m.IdleEpochs[i])})
	}
	return table([]string{"p", "timeout mass", "E[idle epochs]"}, rows) +
		fmt.Sprintf("tipping point (mass ≥ 0.5): p = %.3f\n", m.TippingPoint)
}

// RedSfqPoint compares a baseline AQM against DropTail at one
// contention level (§2.4's in-text claim: RED and SFQ behave like
// DropTail in small packet regimes).
type RedSfqPoint struct {
	Queue        topology.QueueKind
	FairShareBps float64
	ShortJFI     float64
	Utilization  float64
}

// RedSfqResult is the §2.4 equivalence check.
type RedSfqResult struct {
	Points []RedSfqPoint
}

// RunRedSfqEquivalence runs the Fig 2 configuration under DropTail,
// RED and SFQ at two contention levels in the sub-packet regime and
// reports the short-term JFI of each.
func RunRedSfqEquivalence(scale Scale, seed int64) RedSfqResult {
	// Deep sub-packet regime only: with ≲0.25 pkt/RTT per flow, each
	// flow holds at most one buffered packet, the granularity at which
	// §2.4 says AQM choices stop mattering. The (queue, share) grid is
	// flattened so all six runs share the worker pool.
	type job struct {
		qk    topology.QueueKind
		share float64
	}
	var jobs []job
	for _, qk := range []topology.QueueKind{topology.DropTail, topology.RED, topology.SFQ} {
		for _, share := range []float64{2500, 5000} {
			jobs = append(jobs, job{qk: qk, share: share})
		}
	}
	points := runSweep(jobs, func(_ int, j job) RedSfqPoint {
		sweep := RunFairness(FairnessConfig{
			Queue:      j.qk,
			Bandwidths: []link.Bps{200 * link.Kbps},
			FairShares: []float64{j.share},
			Seed:       seed,
		}, scale)
		p := sweep.Points[0]
		return RedSfqPoint{
			Queue:        j.qk,
			FairShareBps: p.FairShareBps,
			ShortJFI:     p.ShortJFI,
			Utilization:  p.Utilization,
		}
	})
	return RedSfqResult{Points: points}
}

// Table renders the equivalence check.
func (r RedSfqResult) Table() string {
	rows := make([][]string, 0, len(r.Points))
	for _, p := range r.Points {
		rows = append(rows, []string{
			string(p.Queue),
			fmt.Sprintf("%.0f", p.FairShareBps),
			f3(p.ShortJFI),
			f2(p.Utilization),
		})
	}
	return table([]string{"queue", "fairshare(bps)", "shortJFI", "util"}, rows)
}
