package experiments

import (
	"fmt"

	"taq/internal/core"
	"taq/internal/link"
	"taq/internal/metrics"
	"taq/internal/sim"
	"taq/internal/tcp"
	"taq/internal/topology"
	"taq/internal/trace"
	"taq/internal/workload"
)

// AdmissionCDFs holds download-time CDFs for the two object-size
// buckets Fig 12 plots, for one queue configuration.
type AdmissionCDFs struct {
	Label       string
	SmallCDF    *metrics.CDF // 10–20 KB objects
	LargeCDF    *metrics.CDF // 100–110 KB objects
	Completed   float64      // fraction of requested objects finished
	PoolsWaited uint64       // pools that waited for admission (TAQ only)
}

// AdmissionResult is the Fig 12 comparison: DropTail vs TAQ with
// admission control.
type AdmissionResult struct {
	Droptail, TAQ AdmissionCDFs
}

// RunAdmissionWeb reproduces Fig 12: clients replay a peak-load access
// log over a 1 Mbps bottleneck, each with up to four connections,
// requesting objects as soon as possible (simulating request
// dependencies); non-admitted flows retry until admitted, and their
// waiting time counts toward the download time. TAQ with admission
// control is compared against DropTail via download-time CDFs of
// 10–20 KB and 100–110 KB objects.
func RunAdmissionWeb(scale Scale, seed int64) AdmissionResult {
	if seed == 0 {
		seed = 1
	}
	// Synthesize the peak-load log: many clients, sizes constrained
	// to the two buckets of interest plus filler traffic.
	// The §5.5 testbed replays the whole peak log through a small
	// number of client machines, each keeping up to four connections
	// busy from a deep request backlog — so the regime comes from the
	// backlog pressure (ASAP requests), not from thousands of client
	// machines. Admission control engages during the transient bursts.
	gen := trace.DefaultGenConfig()
	gen.Seed = seed
	gen.Clients = scale.count(16, 8)
	gen.Duration = scale.duration(2*3600*sim.Second, 600*sim.Second)
	gen.RequestsPerClientPerMin = 12
	gen.MaxSize = 200 * 1024
	recs := trace.Generate(gen)
	// Guarantee sample mass in the two Fig 12 buckets by pinning a
	// fraction of requests to them.
	for i := range recs {
		switch i % 4 {
		case 0:
			recs[i].Size = 10*1024 + (i%10)*1024 // 10–20 KB
		case 1:
			recs[i].Size = 100*1024 + (i%10)*1024 // 100–110 KB
		}
	}

	run := func(qk topology.QueueKind, label string, withAC bool) AdmissionCDFs {
		tcpCfg := tcp.DefaultConfig()
		tcpCfg.MaxSynRetries = -1             // clients retry until admitted (Fig 12)
		tcpCfg.MaxSynTimeout = 4 * sim.Second // …"constantly", per §4.3
		cfg := topology.Config{
			Seed:      seed,
			Bandwidth: 1000 * link.Kbps,
			Queue:     qk,
			RTTJitter: 0.25,
			TCP:       tcpCfg,
		}
		if withAC {
			taqCfg := core.DefaultConfig(cfg.Bandwidth, 0)
			taqCfg.AdmissionControl = true
			cfg.TAQ = &taqCfg
		}
		net := topology.MustNew(cfg)
		sessions := workload.Replay(net, recs, 4, workload.ReplayASAP)
		// Drain long enough that stragglers (including pools that
		// waited for admission) finish; unfinished objects would
		// censor the CDFs.
		net.Run(gen.Duration + scale.duration(1800*sim.Second, 1200*sim.Second))
		out := AdmissionCDFs{
			Label:     label,
			SmallCDF:  workload.DownloadCDF(sessions, 10*1024, 20*1024),
			LargeCDF:  workload.DownloadCDF(sessions, 100*1024, 110*1024),
			Completed: workload.CompletedFraction(sessions),
		}
		if net.Middlebox != nil {
			out.PoolsWaited = net.Middlebox.Stats.PoolsWaited
		}
		return out
	}

	return AdmissionResult{
		Droptail: run(topology.DropTail, "DropTail", false),
		TAQ:      run(topology.TAQ, "TAQ+AC", true),
	}
}

// Table renders median/p90/worst download times per bucket.
func (r AdmissionResult) Table() string {
	row := func(c AdmissionCDFs, bucket string, cdf *metrics.CDF) []string {
		return []string{
			c.Label, bucket,
			fmt.Sprintf("%d", cdf.N()),
			f2(cdf.Median()), f2(cdf.Percentile(90)), f2(cdf.Max()),
			f2(c.Completed),
		}
	}
	rows := [][]string{
		row(r.Droptail, "10-20KB", r.Droptail.SmallCDF),
		row(r.TAQ, "10-20KB", r.TAQ.SmallCDF),
		row(r.Droptail, "100-110KB", r.Droptail.LargeCDF),
		row(r.TAQ, "100-110KB", r.TAQ.LargeCDF),
	}
	return table([]string{"queue", "objects", "n", "median(s)", "p90(s)", "worst(s)", "completed"}, rows) +
		fmt.Sprintf("pools that waited for admission: %d\n", r.TAQ.PoolsWaited)
}

// SmallObjectSpeedup returns DropTail-median / TAQ-median for the
// 10–20 KB bucket (paper: ≈5×).
func (r AdmissionResult) SmallObjectSpeedup() float64 {
	t := r.TAQ.SmallCDF.Median()
	if t <= 0 {
		return 0
	}
	return r.Droptail.SmallCDF.Median() / t
}

// LargeObjectSpeedup returns the same ratio for 100–110 KB objects
// (paper: ≈2×). In this reproduction large-object medians do not
// improve — TAQ's strict Level-3 deprioritization of above-fair-share
// flows trades large-object medians for their (much better) tails;
// see WorstCaseSpeedup and EXPERIMENTS.md.
func (r AdmissionResult) LargeObjectSpeedup() float64 {
	t := r.TAQ.LargeCDF.Median()
	if t <= 0 {
		return 0
	}
	return r.Droptail.LargeCDF.Median() / t
}

// WorstCaseSpeedup returns the DropTail/TAQ ratio of worst-case
// download times for the given bucket CDFs — the predictability axis
// ("the overall variance in the download times [is] significantly
// reduced across the board", §5.5).
func WorstCaseSpeedup(dt, taq *metrics.CDF) float64 {
	t := taq.Max()
	if !(t > 0) {
		return 0
	}
	return dt.Max() / t
}

// P90Speedup returns the DropTail/TAQ ratio of 90th-percentile
// download times for the given bucket CDFs.
func P90Speedup(dt, taq *metrics.CDF) float64 {
	t := taq.Percentile(90)
	if !(t > 0) {
		return 0
	}
	return dt.Percentile(90) / t
}
