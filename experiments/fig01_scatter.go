package experiments

import (
	"fmt"

	"taq/internal/link"
	"taq/internal/metrics"
	"taq/internal/sim"
	"taq/internal/topology"
	"taq/internal/trace"
	"taq/internal/workload"
)

// ScatterResult is the Fig 1 reproduction: per-log-size-bucket
// download-time statistics from replaying a proxy access log through a
// pathologically shared access link.
type ScatterResult struct {
	Buckets   []metrics.BucketStat
	Requested int
	Completed int
	LossRate  float64
}

// RunDownloadScatter reproduces Fig 1: a 2 Mbps access link shared by
// ~220 clients replaying a (synthetic) 2-hour Squid log; each object
// download is timed and bucketed by size. The paper's observation: the
// per-bucket spread exceeds two orders of magnitude across the web
// object size range. Scale shrinks the replay window.
func RunDownloadScatter(scale Scale, seed int64) ScatterResult {
	if seed == 0 {
		seed = 1
	}
	gen := trace.DefaultGenConfig()
	gen.Seed = seed
	gen.Duration = scale.duration(gen.Duration, 120*sim.Second)
	// Cap replayable object size to keep scaled runs finite: the
	// biggest objects cannot finish within a shrunken window anyway.
	if scale < 1 {
		gen.MaxSize = 2 << 20
	}
	recs := trace.Generate(gen)

	net := topology.MustNew(topology.Config{
		Seed:      seed,
		Bandwidth: 2000 * link.Kbps,
		Queue:     topology.DropTail,
		RTTJitter: 0.25,
	})
	sessions := workload.Replay(net, recs, 4, workload.ReplayTimed)
	// Let stragglers finish past the log window.
	net.Run(gen.Duration + 60*sim.Second)

	samples := workload.CollectObjectSamples(sessions)
	res := ScatterResult{
		Buckets:  metrics.BucketStats(samples, 1),
		LossRate: net.LossRate(),
	}
	for _, s := range sessions {
		for _, r := range s.Results {
			res.Requested++
			if r.Done {
				res.Completed++
			}
		}
	}
	return res
}

// Table renders the bucket statistics (Fig 1's plotted series).
func (r ScatterResult) Table() string {
	rows := make([][]string, 0, len(r.Buckets))
	for _, b := range r.Buckets {
		rows = append(rows, []string{
			fmt.Sprintf("%.0fB-%.0fB", b.Lo, b.Hi),
			fmt.Sprintf("%d", b.N),
			f2(b.Min), f2(b.P10), f2(b.Avg), f2(b.P90), f2(b.Max),
			f1(b.SpreadOrders()),
		})
	}
	head := fmt.Sprintf("objects: %d requested, %d completed, queue loss %.3f\n",
		r.Requested, r.Completed, r.LossRate)
	return head + table(
		[]string{"size bucket", "n", "min(s)", "p10(s)", "avg(s)", "p90(s)", "max(s)", "spread(oom)"},
		rows)
}

// MaxSpreadOrders returns the widest per-bucket min-to-max spread in
// orders of magnitude (the paper reads >2 off Fig 1).
func (r ScatterResult) MaxSpreadOrders() float64 {
	m := 0.0
	for _, b := range r.Buckets {
		if b.N >= 5 && b.SpreadOrders() > m {
			m = b.SpreadOrders()
		}
	}
	return m
}
