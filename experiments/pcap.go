package experiments

import (
	"fmt"

	"taq/internal/capture"
	"taq/internal/link"
	"taq/internal/sim"
	"taq/internal/topology"
	"taq/internal/workload"
)

// PcapResult reproduces §2.3's trace examination: "over 20-second time
// slices roughly 30% of the flows are completely shut down and roughly
// 40% of the flows consume more than 80% of the link bandwidth" — the
// emergent arbitrary admission control of DropTail.
type PcapResult struct {
	Queue            topology.QueueKind
	Flows            int
	MeanShutdownFrac float64
	MeanTop80Frac    float64
	Slices           []capture.SliceStat
}

// RunPcapAnalysis records a packet trace of the Fig 2 sub-packet
// configuration (fair share ≈ 5 Kbps) and computes the per-20 s-slice
// shutdown and concentration fractions, for DropTail and TAQ.
func RunPcapAnalysis(qk topology.QueueKind, scale Scale, seed int64) PcapResult {
	if seed == 0 {
		seed = 1
	}
	const (
		bw    = 600 * link.Kbps
		flows = 120 // 5 Kbps ≈ 0.25 pkt/RTT each
	)
	duration := scale.duration(600*sim.Second, 200*sim.Second)
	net := topology.MustNew(topology.Config{
		Seed:      seed,
		Bandwidth: bw,
		Queue:     qk,
		RTTJitter: 0.25,
	})
	net.EnableCapture()
	workload.AddBulkFlows(net, flows, 50*sim.Millisecond)
	net.Run(duration)

	stats := capture.Analyze(net.Capture.Events, 20*sim.Second, flows, duration)
	// Skip the first slice (startup transient).
	if len(stats) > 1 {
		stats = stats[1:]
	}
	return PcapResult{
		Queue:            qk,
		Flows:            flows,
		MeanShutdownFrac: capture.MeanShutdownFrac(stats),
		MeanTop80Frac:    capture.MeanTop80Frac(stats),
		Slices:           stats,
	}
}

// Table renders the per-slice statistics.
func (r PcapResult) Table() string {
	head := fmt.Sprintf("Queue: %s, %d flows (20s slices)\n", r.Queue, r.Flows)
	head += fmt.Sprintf("means: shutdown=%.2f top80=%.2f\n", r.MeanShutdownFrac, r.MeanTop80Frac)
	rows := make([][]string, 0, len(r.Slices))
	for _, s := range r.Slices {
		rows = append(rows, []string{
			fmt.Sprintf("%d", s.Slice),
			f2(s.ShutdownFrac),
			f2(s.Top80Frac),
			fmt.Sprintf("%d", s.DeliveredBytes),
		})
	}
	return head + table([]string{"slice", "shutdown frac", "top-80%% frac", "bytes"}, rows)
}
