package experiments

import (
	"fmt"

	"taq/internal/link"
	"taq/internal/sim"
	"taq/internal/tcp"
	"taq/internal/topology"
	"taq/internal/workload"
)

// SubPacketPoint measures one (variant, queue) pair in the future-work
// experiment.
type SubPacketPoint struct {
	Variant       string
	Queue         topology.QueueKind
	ShortJFI      float64
	LossRate      float64
	Utilization   float64
	RepetitiveTOs uint64
	MeanStalled   float64
}

// SubPacketResult is the §7 future-work comparison.
type SubPacketResult struct {
	Points []SubPacketPoint
}

// RunSubPacketTCP evaluates the paper's future-work direction (§7:
// "end-host congestion control mechanisms for small packet regimes"):
// a sender variant that keeps a fractional paced window instead of
// exponential RTO backoff, run against standard NewReno in the deep
// sub-packet regime (80 flows on 200 Kbps ≈ 0.125 pkt/RTT each),
// under both DropTail and TAQ.
func RunSubPacketTCP(scale Scale, seed int64) SubPacketResult {
	if seed == 0 {
		seed = 1
	}
	duration := scale.duration(600*sim.Second, 150*sim.Second)
	const (
		bw    = 200 * link.Kbps
		flows = 80
	)
	type job struct {
		qk      topology.QueueKind
		name    string
		variant tcp.Variant
	}
	var jobs []job
	for _, qk := range []topology.QueueKind{topology.DropTail, topology.TAQ} {
		jobs = append(jobs,
			job{qk, "newreno", tcp.VariantNewReno},
			job{qk, "subpacket", tcp.VariantSubPacket},
		)
	}
	points := runSweep(jobs, func(_ int, j job) SubPacketPoint {
		tcpCfg := tcp.DefaultConfig()
		tcpCfg.Variant = j.variant
		net := topology.MustNew(topology.Config{
			Seed:      seed,
			Bandwidth: bw,
			Queue:     j.qk,
			RTTJitter: 0.25,
			TCP:       tcpCfg,
		})
		workload.AddBulkFlows(net, flows, 50*sim.Millisecond)
		net.Run(duration)
		slices := int(duration / net.Slicer.Width())
		ev := net.Slicer.Evolution(1, slices)
		_, rep := net.AggregateTimeouts()
		return SubPacketPoint{
			Variant:       j.name,
			Queue:         j.qk,
			ShortJFI:      net.Slicer.MeanSliceJFI(1, slices),
			LossRate:      net.LossRate(),
			Utilization:   net.Utilization(),
			RepetitiveTOs: rep,
			MeanStalled:   ev.MeanStalled(),
		}
	})
	return SubPacketResult{Points: points}
}

// Table renders the comparison.
func (r SubPacketResult) Table() string {
	rows := make([][]string, 0, len(r.Points))
	for _, p := range r.Points {
		rows = append(rows, []string{
			string(p.Queue), p.Variant,
			f3(p.ShortJFI), f3(p.LossRate), f2(p.Utilization),
			fmt.Sprintf("%d", p.RepetitiveTOs), f1(p.MeanStalled),
		})
	}
	return table([]string{"queue", "variant", "shortJFI", "loss", "util", "repetitiveTO", "stalled"}, rows)
}

// Point returns the named (queue, variant) measurement.
func (r SubPacketResult) Point(qk topology.QueueKind, variant string) (SubPacketPoint, bool) {
	for _, p := range r.Points {
		if p.Queue == qk && p.Variant == variant {
			return p, true
		}
	}
	return SubPacketPoint{}, false
}
