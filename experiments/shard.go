package experiments

import (
	"fmt"
	"hash/fnv"
	"math/rand"
	"sync"
	"time"

	"taq/internal/core"
	"taq/internal/link"
	"taq/internal/packet"
	"taq/internal/sim"
)

// ShardPoint summarizes one shard count of the sharded-middlebox
// scaling sweep: the same flow population churned through a
// core.Sharded built on one sim engine per shard, each shard driven by
// its own goroutine — the deterministic stand-in for the emu shard
// bank's per-engine concurrency (DESIGN.md §12).
type ShardPoint struct {
	Shards   int
	Flows    int
	Ops      uint64 // middlebox operations driven across all shards
	Arrivals uint64 // packets offered (sum of shard arrivals)
	Served   uint64
	Drops    uint64
	// Checksum folds every shard's periodic shard-local read-outs, in
	// shard order, so two same-seed runs must agree exactly whatever
	// the goroutine interleaving — only the shared loss window and
	// admission state are cross-shard, and the workload keeps admission
	// off and the read-outs shard-local.
	Checksum uint64
	// WallSecs and PktsPerSec report measured wall throughput. They
	// are machine- and core-count-dependent, so they appear in the
	// human table but never in the compared metrics.
	WallSecs   float64
	PktsPerSec float64
}

// ShardResult holds the shard-scaling sweep.
type ShardResult struct {
	Points []ShardPoint
}

// RunShardScaling drives the flow-hash-partitioned middlebox at 1, 2,
// 4 and 8 shards over the same workload: flows are partitioned by
// core.ShardOf, each shard's slice of the churn runs on its own sim
// engine in its own goroutine, and only the Aggregator's loss window
// is shared. Deterministic counters gate CI (-compare); the throughput
// columns document scaling on the machine at hand (near-linear only
// when GOMAXPROCS covers the shard count).
func RunShardScaling(scale Scale, seed int64) ShardResult {
	if seed == 0 {
		seed = 1
	}
	flows := int(1_000_000 * float64(scale))
	if flows < 20_000 {
		flows = 20_000
	}
	duration := scale.duration(120*sim.Second, 30*sim.Second)
	counts := []int{1, 2, 4, 8}
	points := make([]ShardPoint, len(counts))
	// Shard counts run sequentially — each point is internally
	// parallel, and sharing the machine across points would corrupt
	// the throughput columns.
	for i, n := range counts {
		points[i] = runShardPoint(n, flows, duration, seed)
	}
	return ShardResult{Points: points}
}

func runShardPoint(shards, flows int, duration sim.Time, seed int64) ShardPoint {
	cfg := core.DefaultConfig(10_000*link.Kbps, 256)
	cfg.PoolFairShare = true
	// Admission stays off: it is the one decision that couples a
	// shard's packet fate to cross-shard state (the shared loss rate),
	// and this sweep's counters must be interleaving-independent.

	engines := make([]*sim.Engine, shards)
	runs := make([]sim.Runner, shards)
	for i := range engines {
		engines[i] = sim.NewEngine(seed + int64(i))
		runs[i] = engines[i]
	}
	sh := core.NewShardedOn(runs, cfg)
	sh.Start()

	// Partition the id space by ownership, exactly as the emu bank
	// does: each driver feeds only the flows its shard owns.
	owned := make([][]packet.FlowID, shards)
	for f := 1; f <= flows; f++ {
		id := packet.FlowID(f)
		s := core.ShardOf(id, shards)
		owned[s] = append(owned[s], id)
	}

	const step = 10 * sim.Millisecond
	steps := int(duration / step)
	sums := make([]uint64, shards)
	ops := make([]uint64, shards)

	start := time.Now()
	var wg sync.WaitGroup
	for s := 0; s < shards; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			ids := owned[s]
			if len(ids) == 0 {
				sums[s] = fnv.New64a().Sum64()
				return
			}
			eng := engines[s]
			q := sh.Shard(s)
			rng := rand.New(rand.NewSource(seed + 1000*int64(s)))
			seqs := make([]int, len(ids))
			sum := fnv.New64a()
			window := 256
			if window > len(ids) {
				window = len(ids)
			}
			perStep := 2*len(ids)/steps + 2
			var n uint64
			for sn := 0; sn < steps; sn++ {
				now := sim.Time(sn) * step
				eng.RunUntil(now)
				lo := (len(ids) - window) * sn / steps
				for k := 0; k < perStep; k++ {
					j := lo + rng.Intn(window)
					fl := ids[j]
					pool := packet.PoolID(int(fl) / 8)
					switch rng.Intn(10) {
					case 0:
						q.Enqueue(&packet.Packet{Flow: fl, Pool: pool, Kind: packet.Syn, Size: 40})
					case 1, 2, 3, 4, 5:
						q.Enqueue(&packet.Packet{Flow: fl, Pool: pool, Kind: packet.Data, Seq: seqs[j], Size: 500})
						seqs[j]++
					case 6:
						sq := seqs[j] - 1
						if sq < 0 {
							sq = 0
						}
						q.Enqueue(&packet.Packet{
							Flow: fl, Pool: pool, Kind: packet.Data, Seq: sq,
							Size: 500, Retransmit: true,
						})
					case 7:
						q.ObserveReverse(&packet.Packet{Flow: fl, Pool: pool, Kind: packet.Ack, CumAck: seqs[j], Size: 40})
					case 8:
						q.Dequeue()
						q.Dequeue()
					case 9:
						// Silence.
					}
					n++
				}
				q.Dequeue()
				if sn%50 == 0 {
					// Shard-local read-outs only: census, fair share
					// and queue state never cross the shard boundary.
					fmt.Fprintf(sum, "%d,%d,%d,%v,%g\n",
						now, q.ActiveFlows(), q.RecoveringFlows(), q.StateCensus(), q.FairShare())
				}
			}
			ops[s] = n
			sums[s] = sum.Sum64()
		}(s)
	}
	wg.Wait()
	wall := time.Since(start).Seconds()
	sh.Stop()

	agg := fnv.New64a()
	var totalOps uint64
	for s := 0; s < shards; s++ {
		fmt.Fprintf(agg, "%d:%016x\n", s, sums[s])
		totalOps += ops[s]
	}
	stats := sh.Stats()
	p := ShardPoint{
		Shards:   shards,
		Flows:    flows,
		Ops:      totalOps,
		Arrivals: stats.Arrivals,
		Served:   stats.Served,
		Drops:    stats.Drops,
		Checksum: agg.Sum64(),
		WallSecs: wall,
	}
	if wall > 0 {
		p.PktsPerSec = float64(stats.Arrivals) / wall
	}
	return p
}

// Table renders the shard sweep. The wall and pkts/s columns are
// machine-dependent (near-linear scaling needs one core per shard);
// everything else is deterministic for a given seed and scale.
func (r ShardResult) Table() string {
	rows := make([][]string, 0, len(r.Points))
	for _, p := range r.Points {
		rows = append(rows, []string{
			fmt.Sprintf("%d", p.Shards),
			fmt.Sprintf("%d", p.Flows),
			fmt.Sprintf("%d", p.Arrivals),
			fmt.Sprintf("%d", p.Served),
			fmt.Sprintf("%d", p.Drops),
			fmt.Sprintf("%016x", p.Checksum),
			fmt.Sprintf("%.2f", p.WallSecs),
			fmt.Sprintf("%.0f", p.PktsPerSec),
		})
	}
	return table([]string{"shards", "flows", "arrivals", "served", "drops", "readout checksum", "wall s", "pkts/s"}, rows)
}
