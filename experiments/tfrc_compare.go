package experiments

import (
	"fmt"

	"taq/internal/link"
	"taq/internal/sim"
	"taq/internal/topology"
	"taq/internal/workload"
)

// TFRCPoint compares TCP and TFRC populations at one contention level
// (the §1 claim: TFRC's equation rate is at least √(3/2) packets per
// RTT, so it cannot adapt to sub-packet fair shares any better than
// TCP — "the only way to reduce the rate further is by adding
// timeouts").
type TFRCPoint struct {
	Transport    string // "tcp" or "tfrc"
	FairShareBps float64
	Flows        int
	ShortJFI     float64
	LossRate     float64
	Utilization  float64
}

// TFRCResult is the comparison sweep.
type TFRCResult struct {
	Points []TFRCPoint
}

// RunTFRCComparison runs homogeneous TCP and TFRC populations through
// the same droptail bottleneck at sub-packet fair shares.
func RunTFRCComparison(scale Scale, seed int64) TFRCResult {
	if seed == 0 {
		seed = 1
	}
	duration := scale.duration(400*sim.Second, 80*sim.Second)
	const bw = 200 * link.Kbps
	type job struct {
		transport string
		n         int
	}
	var jobs []job
	for _, share := range []float64{2500, 5000, 10000} {
		n := int(float64(bw) / share)
		if n < 2 {
			continue
		}
		for _, transport := range []string{"tcp", "tfrc"} {
			jobs = append(jobs, job{transport: transport, n: n})
		}
	}
	points := runSweep(jobs, func(_ int, j job) TFRCPoint {
		net := topology.MustNew(topology.Config{
			Seed:      seed,
			Bandwidth: bw,
			Queue:     topology.DropTail,
			RTTJitter: 0.25,
		})
		if j.transport == "tcp" {
			workload.AddBulkFlows(net, j.n, 50*sim.Millisecond)
		} else {
			for i := 0; i < j.n; i++ {
				net.AddTFRCFlow(-1, sim.Time(i)*50*sim.Millisecond)
			}
		}
		net.Run(duration)
		slices := int(duration / net.Slicer.Width())
		return TFRCPoint{
			Transport:    j.transport,
			FairShareBps: float64(bw) / float64(j.n),
			Flows:        j.n,
			ShortJFI:     net.Slicer.MeanSliceJFI(1, slices),
			LossRate:     net.LossRate(),
			Utilization:  net.Utilization(),
		}
	})
	return TFRCResult{Points: points}
}

// Table renders the comparison.
func (r TFRCResult) Table() string {
	rows := make([][]string, 0, len(r.Points))
	for _, p := range r.Points {
		rows = append(rows, []string{
			p.Transport,
			fmt.Sprintf("%.0f", p.FairShareBps),
			fmt.Sprintf("%d", p.Flows),
			f3(p.ShortJFI),
			f3(p.LossRate),
			f2(p.Utilization),
		})
	}
	return table([]string{"transport", "fairshare(bps)", "flows", "shortJFI", "loss", "util"}, rows)
}
