package experiments

import (
	"fmt"

	"taq/internal/link"
	"taq/internal/sim"
	"taq/internal/topology"
	"taq/internal/workload"
)

// BufferPoint is one point of Fig 3: the short-term fairness achieved
// by a DropTail buffer of the given size (in RTTs) at a given per-flow
// fair share (in packets per RTT).
type BufferPoint struct {
	FairSharePktsPerRTT float64
	BufferRTTs          float64
	ShortJFI            float64
	QueueDelayMax       sim.Time // worst-case queueing delay this buffer implies
	// MeasuredDelayP90 is the observed 90th-percentile queueing delay
	// in seconds — the latency actually paid for the buffer.
	MeasuredDelayP90 float64
}

// BufferResult is the Fig 3 sweep.
type BufferResult struct {
	Points []BufferPoint
}

// RunBufferTradeoff reproduces Fig 3: for fair shares of 0.25, 0.5, 1
// and 1.25 packets/RTT, sweep the DropTail buffer from 1 to 5 RTTs and
// measure the 20 s-slice Jain index. The paper's reading: restoring
// fairness by buffering alone needs multi-RTT buffers whose queueing
// delay is unacceptable (§2.4).
func RunBufferTradeoff(scale Scale, seed int64) BufferResult {
	const (
		bw      = 1000 * link.Kbps
		rtt     = 200 * sim.Millisecond
		mss     = 500
		pktsRTT = float64(bw) * 0.2 / 8 / mss // packets per RTT at capacity
	)
	if seed == 0 {
		seed = 1
	}
	duration := scale.duration(400*sim.Second, 80*sim.Second)
	shareUnit := float64(mss) * 8 / rtt.Seconds() // bps per pkt/RTT
	type job struct {
		share   float64
		bufRTTs float64
	}
	var jobs []job
	for _, share := range []float64{0.25, 0.5, 1.0, 1.25} {
		for _, bufRTTs := range []float64{1, 2, 3, 4, 5} {
			jobs = append(jobs, job{share: share, bufRTTs: bufRTTs})
		}
	}
	points := runSweep(jobs, func(_ int, j job) BufferPoint {
		n := int(float64(bw) / (j.share * shareUnit))
		bufPkts := int(j.bufRTTs * pktsRTT)
		net := topology.MustNew(topology.Config{
			Seed:          seed,
			Bandwidth:     bw,
			PropRTT:       rtt,
			Queue:         topology.DropTail,
			BufferPackets: bufPkts,
			RTTJitter:     0.25,
		})
		workload.AddBulkFlows(net, n, 50*sim.Millisecond)
		net.Run(duration)
		slices := int(duration / net.Slicer.Width())
		return BufferPoint{
			FairSharePktsPerRTT: j.share,
			BufferRTTs:          j.bufRTTs,
			ShortJFI:            net.Slicer.MeanSliceJFI(1, slices),
			QueueDelayMax:       bw.TxTime(mss * bufPkts),
			MeasuredDelayP90:    net.QueueDelays.Percentile(90),
		}
	})
	return BufferResult{Points: points}
}

// Table renders the sweep.
func (r BufferResult) Table() string {
	rows := make([][]string, 0, len(r.Points))
	for _, p := range r.Points {
		rows = append(rows, []string{
			f2(p.FairSharePktsPerRTT),
			f1(p.BufferRTTs),
			f3(p.ShortJFI),
			fmt.Sprintf("%.1fs", p.QueueDelayMax.Seconds()),
			fmt.Sprintf("%.2fs", p.MeasuredDelayP90),
		})
	}
	return table([]string{"fairshare(pkt/RTT)", "buffer(RTTs)", "shortJFI", "maxQdelay", "p90Qdelay"}, rows)
}

// RequiredBuffer returns, for each fair share, the smallest buffer (in
// RTTs) achieving the target JFI, or -1 if none did — Fig 3's y-axis.
func (r BufferResult) RequiredBuffer(targetJFI float64) map[float64]float64 {
	out := make(map[float64]float64)
	for _, p := range r.Points {
		if _, ok := out[p.FairSharePktsPerRTT]; !ok {
			out[p.FairSharePktsPerRTT] = -1
		}
		if p.ShortJFI >= targetJFI {
			if cur := out[p.FairSharePktsPerRTT]; cur < 0 || p.BufferRTTs < cur {
				out[p.FairSharePktsPerRTT] = p.BufferRTTs
			}
		}
	}
	return out
}
