package experiments

import (
	"fmt"
	"hash/fnv"
	"math/rand"

	"taq/internal/core"
	"taq/internal/link"
	"taq/internal/packet"
	"taq/internal/sim"
)

// ScalePoint summarizes one flow-count point of the tracker-scale
// stress: a synthetic flow population far beyond the paper's testbed
// (the dial-up concentrator regime, §2.1, scaled up) churned through
// the middlebox so creation, classification, silence detection, expiry
// eviction and record recycling all run at population size.
type ScalePoint struct {
	Flows      int    // flows offered over the run
	TrackedEnd int    // flows still tracked at the end
	ActiveEnd  int    // tracker's active count at the end
	RecovEnd   int    // recovering flows at the end
	Drops      uint64 // congestion drops over the run
	Served     uint64 // packets served over the run
	Checksum   uint64 // FNV-1a over the periodic control read-outs
}

// ScaleResult holds the tracker-scale sweep.
type ScaleResult struct {
	Points []ScalePoint
}

// RunTrackerScale churns n flows through a TAQ middlebox for each
// population size: a window of concurrently active flows slides across
// the whole id space, so early flows fall silent, expire and are
// evicted while later ones are still being created. The per-point
// checksum folds every periodic control read-out (active, recovering,
// census, fair share, loss rate) into one value, so two same-seed runs
// must agree exactly — CI compares the printed tables byte for byte as
// the large-population determinism gate.
func RunTrackerScale(scale Scale, seed int64) ScaleResult {
	if seed == 0 {
		seed = 1
	}
	counts := []int{1_000, 10_000}
	if scale >= 0.5 {
		counts = append(counts, 100_000)
	}
	if scale >= 1 {
		counts = append(counts, 1_000_000)
	}
	duration := scale.duration(300*sim.Second, 90*sim.Second)
	points := runSweep(counts, func(_ int, flows int) ScalePoint {
		return runScalePoint(flows, duration, seed)
	})
	return ScaleResult{Points: points}
}

func runScalePoint(flows int, duration sim.Time, seed int64) ScalePoint {
	eng := sim.NewEngine(1)
	cfg := core.DefaultConfig(10_000*link.Kbps, 256)
	cfg.PoolFairShare = true
	q := core.New(eng, cfg)
	q.Start()

	rng := rand.New(rand.NewSource(seed))
	seqs := make([]int, flows)
	sum := fnv.New64a()

	const step = 10 * sim.Millisecond
	steps := int(duration / step)
	window := 256
	if window > flows {
		window = flows
	}
	// Enough operations per step that every flow id is touched as the
	// window passes over it.
	ops := 2*flows/steps + 2

	for sn := 0; sn < steps; sn++ {
		now := sim.Time(sn) * step
		eng.RunUntil(now)
		lo := (flows - window) * sn / steps
		for k := 0; k < ops; k++ {
			i := lo + rng.Intn(window)
			fl := packet.FlowID(i + 1)
			pool := packet.PoolID(i / 8)
			switch rng.Intn(10) {
			case 0:
				q.Enqueue(&packet.Packet{Flow: fl, Pool: pool, Kind: packet.Syn, Size: 40})
			case 1, 2, 3, 4, 5:
				q.Enqueue(&packet.Packet{Flow: fl, Pool: pool, Kind: packet.Data, Seq: seqs[i], Size: 500})
				seqs[i]++
			case 6:
				s := seqs[i] - 1
				if s < 0 {
					s = 0
				}
				q.Enqueue(&packet.Packet{
					Flow: fl, Pool: pool, Kind: packet.Data, Seq: s,
					Size: 500, Retransmit: true,
				})
			case 7:
				q.ObserveReverse(&packet.Packet{Flow: fl, Pool: pool, Kind: packet.Ack, CumAck: seqs[i], Size: 40})
			case 8:
				q.Dequeue()
				q.Dequeue()
			case 9:
				// Silence.
			}
		}
		q.Dequeue()
		if sn%50 == 0 {
			fmt.Fprintf(sum, "%d,%d,%d,%v,%g,%g\n",
				now, q.ActiveFlows(), q.RecoveringFlows(), q.StateCensus(),
				q.FairShare(), q.LossRate())
		}
	}
	q.Stop()

	tracked := 0
	for _, n := range q.StateCensus() {
		tracked += n
	}
	return ScalePoint{
		Flows:      flows,
		TrackedEnd: tracked,
		ActiveEnd:  q.ActiveFlows(),
		RecovEnd:   q.RecoveringFlows(),
		Drops:      q.Stats.Drops,
		Served:     q.Stats.Served,
		Checksum:   sum.Sum64(),
	}
}

// Table renders the scale sweep.
func (r ScaleResult) Table() string {
	rows := make([][]string, 0, len(r.Points))
	for _, p := range r.Points {
		rows = append(rows, []string{
			fmt.Sprintf("%d", p.Flows),
			fmt.Sprintf("%d", p.TrackedEnd),
			fmt.Sprintf("%d", p.ActiveEnd),
			fmt.Sprintf("%d", p.RecovEnd),
			fmt.Sprintf("%d", p.Drops),
			fmt.Sprintf("%d", p.Served),
			fmt.Sprintf("%016x", p.Checksum),
		})
	}
	return table([]string{"flows", "tracked", "active", "recovering", "drops", "served", "readout checksum"}, rows)
}
