package experiments

import (
	"fmt"
	"math"
	"sort"

	"taq/internal/link"
	"taq/internal/sim"
	"taq/internal/topology"
	"taq/internal/workload"
)

// ShortFlowPoint is one short flow's outcome (Fig 10).
type ShortFlowPoint struct {
	Packets      int
	DownloadSecs float64
	Done         bool
}

// ShortFlowResult is the Fig 10 reproduction.
type ShortFlowResult struct {
	Queue  topology.QueueKind
	Points []ShortFlowPoint
}

// RunShortFlows reproduces Fig 10: 32 short flows of 2–80 packets
// injected against 50 long-running background flows on a 1 Mbps
// bottleneck (20 Kbps fair share). Under TAQ the NewFlow queue gives
// short flows predictable, roughly size-linear download times.
func RunShortFlows(qk topology.QueueKind, scale Scale, seed int64) ShortFlowResult {
	if seed == 0 {
		seed = 1
	}
	warm := scale.duration(100*sim.Second, 40*sim.Second)
	net := topology.MustNew(topology.Config{
		Seed:      seed,
		Bandwidth: 1000 * link.Kbps,
		Queue:     qk,
		RTTJitter: 0.25,
	})
	workload.AddBulkFlows(net, 50, 50*sim.Millisecond)

	// 32 short flows with sizes spread across 2..80 packets, injected
	// one per 5 seconds once the background is warm.
	var results []*workload.ShortFlowResult
	for i := 0; i < 32; i++ {
		size := 2 + (78*i)/31
		at := warm + sim.Time(i)*5*sim.Second
		results = append(results, workload.AddShortFlow(net, size, at))
	}
	endOfInjection := warm + 32*5*sim.Second
	net.Run(endOfInjection + 120*sim.Second)

	res := ShortFlowResult{Queue: qk}
	for _, r := range results {
		p := ShortFlowPoint{Packets: r.Segments, Done: r.Done}
		if r.Done {
			p.DownloadSecs = r.Duration().Seconds()
		}
		res.Points = append(res.Points, p)
	}
	sort.Slice(res.Points, func(i, j int) bool { return res.Points[i].Packets < res.Points[j].Packets })
	return res
}

// RunShortFlowsSweep runs Fig 10 for each queue kind through the
// worker pool, preserving the order of qks in the result.
func RunShortFlowsSweep(qks []topology.QueueKind, scale Scale, seed int64) []ShortFlowResult {
	return runSweep(qks, func(_ int, qk topology.QueueKind) ShortFlowResult {
		return RunShortFlows(qk, scale, seed)
	})
}

// Table renders size vs download time.
func (r ShortFlowResult) Table() string {
	rows := make([][]string, 0, len(r.Points))
	for _, p := range r.Points {
		d := "DNF"
		if p.Done {
			d = f2(p.DownloadSecs)
		}
		rows = append(rows, []string{fmt.Sprintf("%d", p.Packets), d})
	}
	return fmt.Sprintf("Queue: %s\n", r.Queue) +
		table([]string{"packets", "download(s)"}, rows)
}

// CompletedFraction returns the fraction of short flows that finished.
func (r ShortFlowResult) CompletedFraction() float64 {
	done := 0
	for _, p := range r.Points {
		if p.Done {
			done++
		}
	}
	if len(r.Points) == 0 {
		return 0
	}
	return float64(done) / float64(len(r.Points))
}

// Correlation returns the Pearson correlation between flow size and
// download time over completed flows — Fig 10's "roughly linear"
// reading implies a strong positive correlation under TAQ.
func (r ShortFlowResult) Correlation() float64 {
	var xs, ys []float64
	for _, p := range r.Points {
		if p.Done {
			xs = append(xs, float64(p.Packets))
			ys = append(ys, p.DownloadSecs)
		}
	}
	n := float64(len(xs))
	if n < 3 {
		return 0
	}
	var mx, my float64
	for i := range xs {
		mx += xs[i]
		my += ys[i]
	}
	mx /= n
	my /= n
	var sxy, sxx, syy float64
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0
	}
	return sxy / math.Sqrt(sxx*syy)
}
