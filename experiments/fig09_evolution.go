package experiments

import (
	"fmt"

	"taq/internal/link"
	"taq/internal/metrics"
	"taq/internal/sim"
	"taq/internal/topology"
	"taq/internal/workload"
)

// EvolutionResult is the Fig 9 reproduction: per-slice counts of
// arriving / dropped / maintained / stalled flows for one queue
// discipline.
type EvolutionResult struct {
	Queue          topology.QueueKind
	Flows          int
	SliceWidth     sim.Time
	Counts         metrics.EvolutionCounts
	MeanStalled    float64
	MeanMaintained float64
	MeanDropped    float64
	MeanArriving   float64
}

// RunFlowEvolution reproduces Fig 9: 180 long-running flows over a
// 600 Kbps bottleneck; each slice, flows are classified by their
// progress transition. Under DropTail a large population stalls in
// repetitive timeouts; under TAQ the stalled count is near zero and
// more flows stay in the maintained state.
func RunFlowEvolution(qk topology.QueueKind, scale Scale, seed int64) EvolutionResult {
	if seed == 0 {
		seed = 1
	}
	// 20 s slices, as in the paper's other short-term analyses: with
	// 180 flows on 600 Kbps (≈150 pkt/s aggregate), no discipline can
	// serve every flow within a couple of RTTs; "stalled" is a flow
	// silent across two consecutive slices, i.e. stuck in the deep
	// (≥ tens of seconds) backoff stages.
	const flows = 180
	slice := 20 * sim.Second
	duration := scale.duration(1100*sim.Second, 240*sim.Second)
	net := topology.MustNew(topology.Config{
		Seed:       seed,
		Bandwidth:  600 * link.Kbps,
		Queue:      qk,
		RTTJitter:  0.25,
		SliceWidth: slice,
	})
	workload.AddBulkFlows(net, flows, 50*sim.Millisecond)
	net.Run(duration)

	warmup := int(100 * sim.Second / slice) // paper plots from t=200s
	slices := int(duration / slice)
	ev := net.Slicer.Evolution(warmup, slices)
	res := EvolutionResult{
		Queue:          qk,
		Flows:          flows,
		SliceWidth:     slice,
		Counts:         ev,
		MeanStalled:    ev.MeanStalled(),
		MeanMaintained: ev.MeanMaintained(),
	}
	res.MeanDropped = meanOf(ev.Dropped)
	res.MeanArriving = meanOf(ev.Arriving)
	return res
}

// RunFlowEvolutionSweep runs Fig 9 for each queue kind through the
// worker pool (one independent engine per discipline), preserving the
// order of qks in the result.
func RunFlowEvolutionSweep(qks []topology.QueueKind, scale Scale, seed int64) []EvolutionResult {
	return runSweep(qks, func(_ int, qk topology.QueueKind) EvolutionResult {
		return RunFlowEvolution(qk, scale, seed)
	})
}

func meanOf(xs []int) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0
	for _, x := range xs {
		s += x
	}
	return float64(s) / float64(len(xs))
}

func (r EvolutionResult) rows(step int) (header []string, rows [][]string) {
	header = []string{"t", "arriving", "dropped", "maintained", "stalled"}
	if step < 1 {
		step = 1
	}
	for i := 0; i < len(r.Counts.Slices); i += step {
		rows = append(rows, []string{
			fmt.Sprintf("%.0fs", (sim.Time(r.Counts.Slices[i]) * r.SliceWidth).Seconds()),
			fmt.Sprintf("%d", r.Counts.Arriving[i]),
			fmt.Sprintf("%d", r.Counts.Dropped[i]),
			fmt.Sprintf("%d", r.Counts.Maintained[i]),
			fmt.Sprintf("%d", r.Counts.Stalled[i]),
		})
	}
	return
}

// Table renders the mean counts plus a few sample slices.
func (r EvolutionResult) Table() string {
	head := fmt.Sprintf("Queue: %s, %d flows, %s slices\n", r.Queue, r.Flows, r.SliceWidth)
	head += fmt.Sprintf("means: maintained=%.1f dropped=%.1f arriving=%.1f stalled=%.1f\n",
		r.MeanMaintained, r.MeanDropped, r.MeanArriving, r.MeanStalled)
	h, rows := r.rows(len(r.Counts.Slices) / 10)
	return head + table(h, rows)
}

// CSV renders the full per-slice series (every slice, Fig 9's plotted
// data) as comma-separated values.
func (r EvolutionResult) CSV() string {
	h, rows := r.rows(1)
	return csvTable(h, rows)
}
