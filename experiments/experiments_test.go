package experiments

import (
	"strings"
	"testing"

	"taq/internal/link"
	"taq/internal/sim"
	"taq/internal/topology"
)

// The experiment tests run at small scale and assert the paper's
// qualitative shapes: who wins, roughly by how much, where the
// transitions fall. Exact numbers live in EXPERIMENTS.md.

const testScale Scale = 0.12

func TestScaleHelpers(t *testing.T) {
	s := Scale(0.1)
	if d := s.duration(1000*sim.Second, 50*sim.Second); d != 100*sim.Second {
		t.Errorf("duration = %v", d)
	}
	if d := s.duration(100*sim.Second, 50*sim.Second); d != 50*sim.Second {
		t.Errorf("floor not applied: %v", d)
	}
	if n := s.count(100, 5); n != 10 {
		t.Errorf("count = %d", n)
	}
	if n := s.count(10, 5); n != 5 {
		t.Errorf("count floor = %d", n)
	}
}

func TestTableRendering(t *testing.T) {
	out := table([]string{"a", "bb"}, [][]string{{"1", "2"}, {"333", "4"}})
	if !strings.Contains(out, "a") || !strings.Contains(out, "333") {
		t.Errorf("table output:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 {
		t.Errorf("table has %d lines, want 4", len(lines))
	}
}

func TestFig2DroptailShortTermCollapse(t *testing.T) {
	r := RunFairness(FairnessConfig{
		Queue:      topology.DropTail,
		Bandwidths: []link.Bps{600 * link.Kbps},
		FairShares: []float64{2500, 10000, 50000},
	}, testScale)
	if len(r.Points) != 3 {
		t.Fatalf("points = %d", len(r.Points))
	}
	// Short-term fairness worsens as fair share shrinks (Fig 2).
	if !(r.Points[0].ShortJFI < r.Points[2].ShortJFI) {
		t.Errorf("JFI not decreasing with contention: %.3f vs %.3f",
			r.Points[0].ShortJFI, r.Points[2].ShortJFI)
	}
	// Deep sub-packet regime: short-term JFI collapses below 0.5
	// while utilization stays high (>90%).
	if r.Points[0].ShortJFI > 0.5 {
		t.Errorf("sub-packet short JFI = %.3f, want < 0.5", r.Points[0].ShortJFI)
	}
	for _, p := range r.Points {
		if p.Utilization < 0.9 {
			t.Errorf("utilization %.2f at fairshare %.0f, want ≥0.9", p.Utilization, p.FairShareBps)
		}
	}
	// Long-term fairness exceeds short-term (the §2.3 observation).
	if r.Points[0].LongJFI <= r.Points[0].ShortJFI {
		t.Errorf("long-term JFI %.3f not better than short-term %.3f",
			r.Points[0].LongJFI, r.Points[0].ShortJFI)
	}
	if r.Table() == "" {
		t.Error("empty table")
	}
}

func TestFig8TAQBeatsDroptail(t *testing.T) {
	cfg := FairnessConfig{
		Bandwidths: []link.Bps{600 * link.Kbps},
		FairShares: []float64{5000, 10000, 30000},
	}
	cfg.Queue = topology.DropTail
	dt := RunFairness(cfg, testScale)
	cfg.Queue = topology.TAQ
	taq := RunFairness(cfg, testScale)
	for i := range dt.Points {
		d, q := dt.Points[i], taq.Points[i]
		if q.ShortJFI <= d.ShortJFI {
			t.Errorf("fairshare %.0f: TAQ JFI %.3f ≤ DT %.3f",
				d.FairShareBps, q.ShortJFI, d.ShortJFI)
		}
		if q.Utilization < 0.9 {
			t.Errorf("TAQ utilization %.2f, want ≈1 (§5.1)", q.Utilization)
		}
	}
	// "In many cases the fairness achieved by TAQ is higher than 0.8":
	// at the moderate-contention points it must clear 0.7 even at
	// test scale.
	if taq.Points[2].ShortJFI < 0.7 {
		t.Errorf("TAQ JFI at 30Kbps fair share = %.3f, want ≥ 0.7", taq.Points[2].ShortJFI)
	}
}

func TestFig3BufferTradeoff(t *testing.T) {
	r := RunBufferTradeoff(testScale, 1)
	if len(r.Points) != 20 {
		t.Fatalf("points = %d, want 4 shares × 5 buffers", len(r.Points))
	}
	// Larger buffers must not hurt fairness dramatically, and the
	// worst-case queueing delay must grow with the buffer (the Fig 3
	// tradeoff). Check delay monotonicity within one share series.
	var prevDelay sim.Time
	for i, p := range r.Points[:5] {
		if i > 0 && p.QueueDelayMax <= prevDelay {
			t.Errorf("queue delay not increasing with buffer: %v after %v",
				p.QueueDelayMax, prevDelay)
		}
		prevDelay = p.QueueDelayMax
	}
	// At the most extreme contention (0.25 pkt/RTT) even 5 RTT of
	// buffer must not reach near-perfect fairness — that is the
	// paper's "increasing buffers is infeasible" point.
	req := r.RequiredBuffer(0.95)
	if b, ok := req[0.25]; ok && b >= 0 && b <= 2 {
		t.Errorf("0.25 pkt/RTT reached JFI 0.95 with only %v RTTs of buffer", b)
	}
	if r.Table() == "" {
		t.Error("empty table")
	}
}

func TestHangTimesWorsenWithUsers(t *testing.T) {
	r := RunHangTimes(topology.DropTail, testScale, 1)
	if len(r.Points) != 2 {
		t.Fatalf("points = %d", len(r.Points))
	}
	p200, p400 := r.Points[0], r.Points[1]
	// §2.3: with 200 users, hangs over 20 s are pervasive.
	if p200.FracOver20s < 0.5 {
		t.Errorf("200 users: frac >20s hang = %.2f, want ≥0.5", p200.FracOver20s)
	}
	// With 400 users, a meaningful fraction hang over a minute
	// (paper: ~50% at full duration; the scaled window sees far
	// fewer chances — see EXPERIMENTS.md for full-scale numbers).
	if p400.FracOver60s < 0.08 {
		t.Errorf("400 users: frac >60s hang = %.2f, want ≥0.08", p400.FracOver60s)
	}
	// More users ⇒ longer hangs.
	if p400.FracOver60s < p200.FracOver60s {
		t.Errorf("hangs did not worsen with users: %.2f vs %.2f",
			p400.FracOver60s, p200.FracOver60s)
	}
	if r.Table() == "" {
		t.Error("empty table")
	}
}

func TestRedSfqBehaveLikeDroptail(t *testing.T) {
	r := RunRedSfqEquivalence(testScale, 1)
	if len(r.Points) != 6 {
		t.Fatalf("points = %d", len(r.Points))
	}
	// §2.4: in the sub-packet regime RED and SFQ offer only marginal
	// gains over DropTail — neither restores fairness (all baselines
	// stay collapsed, far below the ≥0.8 TAQ reaches), and RED in
	// particular tracks DropTail closely because the average queue
	// sits pinned near the limit.
	byQueue := map[topology.QueueKind][]float64{}
	for _, p := range r.Points {
		byQueue[p.Queue] = append(byQueue[p.Queue], p.ShortJFI)
		if p.Utilization < 0.9 {
			t.Errorf("%s utilization %.2f, want ≥0.9", p.Queue, p.Utilization)
		}
	}
	dt := byQueue[topology.DropTail]
	for _, qk := range []topology.QueueKind{topology.RED, topology.SFQ} {
		for i, j := range byQueue[qk] {
			if j > 0.65 {
				t.Errorf("%s JFI %.3f — no baseline AQM should restore fairness here", qk, j)
			}
			if qk == topology.RED && j > dt[i]+0.2 {
				t.Errorf("RED JFI %.3f far above droptail %.3f — should be marginal", j, dt[i])
			}
		}
	}
	if r.Table() == "" {
		t.Error("empty table")
	}
}

func TestFig6ModelMatchesSimulation(t *testing.T) {
	r := RunModelValidation(testScale, 1)
	if len(r.Points) == 0 {
		t.Fatal("no validation points")
	}
	// Fig 6: "simulation results agree well with our model, especially
	// for p > 0.05". Mean absolute per-class error stays small.
	if worst := r.WorstError(0.05); worst > 0.12 {
		t.Errorf("worst per-class MAE = %.3f at p>0.05, want ≤ 0.12", worst)
	}
	// Higher contention ⇒ more mass in the silent classes: check the
	// "0 sent" empirical probability grows with measured loss within
	// one bandwidth series.
	series := map[link.Bps][]ValidationPoint{}
	for _, p := range r.Points {
		series[p.Bandwidth] = append(series[p.Bandwidth], p)
	}
	for bw, pts := range series {
		for i := 1; i < len(pts); i++ {
			if pts[i].LossRate > pts[i-1].LossRate+0.02 &&
				pts[i].Sim[0] < pts[i-1].Sim[0]-0.1 {
				t.Errorf("%v: silent-class mass dropped sharply despite higher loss", bw)
			}
		}
	}
	if r.Table() == "" {
		t.Error("empty table")
	}
}

func TestFig9TAQNearlyEliminatesStalls(t *testing.T) {
	dt := RunFlowEvolution(topology.DropTail, testScale, 1)
	taq := RunFlowEvolution(topology.TAQ, testScale, 1)
	if taq.MeanStalled >= dt.MeanStalled/2 {
		t.Errorf("TAQ stalled %.1f not ≪ DT stalled %.1f", taq.MeanStalled, dt.MeanStalled)
	}
	if taq.MeanMaintained <= dt.MeanMaintained {
		t.Errorf("TAQ maintained %.1f ≤ DT %.1f", taq.MeanMaintained, dt.MeanMaintained)
	}
	if dt.Table() == "" || taq.Table() == "" {
		t.Error("empty table")
	}
}

func TestFig10ShortFlowPredictability(t *testing.T) {
	taq := RunShortFlows(topology.TAQ, testScale, 1)
	if taq.CompletedFraction() < 0.95 {
		t.Fatalf("TAQ short flows completed %.2f, want ≈1", taq.CompletedFraction())
	}
	// Download time roughly linear in flow size ⇒ strong positive
	// correlation.
	if c := taq.Correlation(); c < 0.5 {
		t.Errorf("TAQ size/time correlation = %.2f, want ≥ 0.5", c)
	}
	dt := RunShortFlows(topology.DropTail, testScale, 1)
	if dt.Correlation() >= taq.Correlation() {
		t.Errorf("DT correlation %.2f ≥ TAQ %.2f — TAQ should be more predictable",
			dt.Correlation(), taq.Correlation())
	}
	if taq.Table() == "" {
		t.Error("empty table")
	}
}

func TestFig12AdmissionImprovesDownloads(t *testing.T) {
	r := RunAdmissionWeb(testScale, 1)
	if r.TAQ.SmallCDF.N() < 10 || r.Droptail.SmallCDF.N() < 10 {
		t.Fatalf("too few samples: taq=%d dt=%d", r.TAQ.SmallCDF.N(), r.Droptail.SmallCDF.N())
	}
	// Fig 12: TAQ+AC reduces small-object download times (paper: 5×
	// median and worst at their peak load; the scaled load has a mild
	// DropTail baseline, so the median win is modest while the tail
	// wins — the predictability story — remain large).
	if s := r.SmallObjectSpeedup(); s < 1.02 {
		t.Errorf("small-object median speedup = %.2f, want ≥ 1.02", s)
	}
	if s := P90Speedup(r.Droptail.SmallCDF, r.TAQ.SmallCDF); s < 1.1 {
		t.Errorf("small-object p90 speedup = %.2f, want ≥ 1.1", s)
	}
	if s := WorstCaseSpeedup(r.Droptail.SmallCDF, r.TAQ.SmallCDF); s < 1.5 {
		t.Errorf("small-object worst-case speedup = %.2f, want ≥ 1.5", s)
	}
	if s := WorstCaseSpeedup(r.Droptail.LargeCDF, r.TAQ.LargeCDF); s < 1.2 {
		t.Errorf("large-object worst-case speedup = %.2f, want ≥ 1.2", s)
	}
	if r.Droptail.Completed < 0.99 || r.TAQ.Completed < 0.99 {
		t.Errorf("incomplete replay: dt=%.2f taq=%.2f", r.Droptail.Completed, r.TAQ.Completed)
	}
	if r.Table() == "" {
		t.Error("empty table")
	}
}

func TestModelTables(t *testing.T) {
	m, err := RunModelTables()
	if err != nil {
		t.Fatal(err)
	}
	if m.TippingPoint < 0.05 || m.TippingPoint > 0.2 {
		t.Errorf("tipping point %.3f outside [0.05, 0.2]", m.TippingPoint)
	}
	// Timeout mass strictly grows with p.
	for i := 1; i < len(m.TimeoutMass); i++ {
		if m.TimeoutMass[i] < m.TimeoutMass[i-1] {
			t.Errorf("timeout mass not monotone at p=%v", m.LossRates[i])
		}
	}
	if m.Table() == "" {
		t.Error("empty table")
	}
}

func TestFig11TestbedTAQImproves(t *testing.T) {
	if testing.Short() {
		t.Skip("real-time testbed run")
	}
	// The TAQ advantage needs a few slices to develop (flows must
	// cycle through losses and recoveries); short runs are dominated
	// by slow-start and wall-clock jitter — and when the rest of the
	// test suite runs in parallel, timer starvation can sink a whole
	// attempt, so allow one retry.
	for attempt := 1; ; attempt++ {
		r := RunTestbedFairness(TestbedOptions{
			Speedup:         30,
			VirtualDuration: 120 * sim.Second,
			SliceWidth:      20 * sim.Second,
			FlowCounts:      []int{40},
			Seed:            int64(attempt),
		})
		if len(r.Points) != 4 {
			t.Fatalf("points = %d", len(r.Points))
		}
		wins := 0
		for key, diff := range r.Compare() {
			if diff > 0 {
				wins++
			} else {
				t.Logf("attempt %d, config %s: TAQ-DT JFI diff %.3f", attempt, key, diff)
			}
		}
		if wins >= 1 {
			if r.Table() == "" {
				t.Error("empty table")
			}
			return
		}
		if attempt >= 2 {
			t.Fatalf("TAQ won 0 of 2 testbed configs in %d attempts", attempt)
		}
	}
}

func TestFig1DownloadSpread(t *testing.T) {
	r := RunDownloadScatter(testScale, 1)
	if len(r.Buckets) < 3 {
		t.Fatalf("buckets = %d", len(r.Buckets))
	}
	if r.Completed == 0 {
		t.Fatal("no objects completed")
	}
	// Fig 1's headline: download times for comparable sizes vary
	// hugely. At test scale require at least ~1.5 orders of magnitude
	// in some populated bucket (paper: >2 at full scale).
	if s := r.MaxSpreadOrders(); s < 1.0 {
		t.Errorf("max per-bucket spread = %.2f orders, want ≥ 1", s)
	}
	if r.Table() == "" {
		t.Error("empty table")
	}
}

func TestTFRCAlsoFailsInSubPacketRegime(t *testing.T) {
	r := RunTFRCComparison(testScale, 1)
	if len(r.Points) != 6 {
		t.Fatalf("points = %d", len(r.Points))
	}
	// §1: TFRC's rate floor is ≈√(3/2) packets per RTT, so in the
	// sub-packet regime it fares no better than TCP — its short-term
	// fairness stays collapsed too.
	for _, p := range r.Points {
		if p.Transport == "tfrc" && p.FairShareBps <= 5000 && p.ShortJFI > 0.5 {
			t.Errorf("TFRC JFI %.3f at fair share %.0f — should collapse like TCP",
				p.ShortJFI, p.FairShareBps)
		}
	}
	if r.Table() == "" {
		t.Error("empty table")
	}
}

func TestAblationEachComponentContributes(t *testing.T) {
	r := RunAblation(testScale, 1)
	full, ok := r.Point("taq-full")
	if !ok {
		t.Fatal("missing taq-full variant")
	}
	dt, _ := r.Point("droptail")
	// Full TAQ must beat the DropTail floor decisively.
	if full.ShortJFI < dt.ShortJFI+0.1 {
		t.Errorf("full TAQ JFI %.3f not clearly above droptail %.3f", full.ShortJFI, dt.ShortJFI)
	}
	if full.MeanStalled > dt.MeanStalled/2 {
		t.Errorf("full TAQ stalled %.1f not ≪ droptail %.1f", full.MeanStalled, dt.MeanStalled)
	}
	// Removing occupancy-based drop control must cost fairness, and
	// removing recovery protection must cost repetitive timeouts.
	if p, ok := r.Point("no-occupancy-drops"); ok && p.ShortJFI > full.ShortJFI+0.05 {
		t.Errorf("no-occupancy-drops JFI %.3f better than full %.3f", p.ShortJFI, full.ShortJFI)
	}
	if p, ok := r.Point("no-recovery-protection"); ok && p.RepetitiveTOs < full.RepetitiveTOs {
		t.Errorf("removing recovery protection reduced repetitive timeouts (%d < %d)",
			p.RepetitiveTOs, full.RepetitiveTOs)
	}
	if r.Table() == "" {
		t.Error("empty table")
	}
}

func TestInitialWindowPenaltyUnderDroptail(t *testing.T) {
	r := RunInitialWindow(testScale, 1)
	if len(r.Points) != 4 {
		t.Fatalf("points = %d", len(r.Points))
	}
	dtIW10, ok1 := r.Point(topology.DropTail, "cubic-iw10")
	dtIW2, ok2 := r.Point(topology.DropTail, "newreno-iw2")
	taqIW10, ok3 := r.Point(topology.TAQ, "cubic-iw10")
	if !ok1 || !ok2 || !ok3 {
		t.Fatal("missing points")
	}
	// §2.1: with IW10 the congestion effect appears at flow
	// initiation — more short flows take a timeout under DropTail.
	if dtIW10.TimeoutFrac < dtIW2.TimeoutFrac-0.05 {
		t.Errorf("IW10 timeout frac %.2f < IW2 %.2f under droptail",
			dtIW10.TimeoutFrac, dtIW2.TimeoutFrac)
	}
	// TAQ removes most of the initiation penalty (same noise
	// tolerance as above: at miniature scale the fraction moves in
	// steps of one flow).
	if taqIW10.TimeoutFrac > dtIW10.TimeoutFrac+0.05 {
		t.Errorf("TAQ IW10 timeout frac %.2f not below droptail %.2f",
			taqIW10.TimeoutFrac, dtIW10.TimeoutFrac)
	}
	if taqIW10.P90Secs > dtIW10.P90Secs {
		t.Errorf("TAQ IW10 p90 %.2f not below droptail %.2f",
			taqIW10.P90Secs, dtIW10.P90Secs)
	}
	if r.Table() == "" {
		t.Error("empty table")
	}
}

func TestTestbedWebReplay(t *testing.T) {
	if testing.Short() {
		t.Skip("real-time testbed run")
	}
	// Keep virtualPktRate/speedup well under wall-clock timer
	// capacity: 600 Kbps ≈ 150 pkt/s virtual × 30 = 4.5k timer
	// events/s wall.
	r := RunTestbedWeb(TestbedWebOptions{
		Speedup:         30,
		VirtualDuration: 120 * sim.Second,
		Clients:         4,
		ObjectsPerHost:  6,
	})
	dt, ok1 := r.Point(false)
	taq, ok2 := r.Point(true)
	if !ok1 || !ok2 {
		t.Fatal("missing points")
	}
	if dt.Completed < 0.9 || taq.Completed < 0.9 {
		t.Fatalf("low completion: dt=%.2f taq=%.2f", dt.Completed, taq.Completed)
	}
	// Real-time noise tolerated: TAQ's worst case must not be wildly
	// worse than DropTail's (it is typically much better).
	if taq.WorstS > 2*dt.WorstS {
		t.Errorf("TAQ worst %.1fs ≫ DT worst %.1fs", taq.WorstS, dt.WorstS)
	}
	if r.Table() == "" {
		t.Error("empty table")
	}
}

func TestCSVExports(t *testing.T) {
	fr := RunFairness(FairnessConfig{
		Queue:      topology.DropTail,
		Bandwidths: []link.Bps{200 * link.Kbps},
		FairShares: []float64{10000},
	}, testScale)
	csv := fr.CSV()
	lines := strings.Split(strings.TrimSpace(csv), "\n")
	if len(lines) != 2 {
		t.Fatalf("fairness CSV lines = %d, want header+1", len(lines))
	}
	if !strings.HasPrefix(lines[0], "bandwidth,flows,") {
		t.Errorf("CSV header = %q", lines[0])
	}
	if strings.Count(lines[1], ",") != strings.Count(lines[0], ",") {
		t.Error("CSV row width mismatch")
	}
	ev := RunFlowEvolution(topology.DropTail, testScale, 1)
	evCSV := ev.CSV()
	if len(strings.Split(strings.TrimSpace(evCSV), "\n")) != len(ev.Counts.Slices)+1 {
		t.Error("evolution CSV should have one line per slice plus header")
	}
}

func TestPcapShutdownAndHogs(t *testing.T) {
	dt := RunPcapAnalysis(topology.DropTail, testScale, 1)
	// §2.3: ≈30% of flows completely shut down per 20 s slice, and a
	// minority of flows holds ≥80% of the bandwidth.
	if dt.MeanShutdownFrac < 0.15 || dt.MeanShutdownFrac > 0.5 {
		t.Errorf("droptail shutdown frac = %.2f, want ≈0.3", dt.MeanShutdownFrac)
	}
	if dt.MeanTop80Frac > 0.5 {
		t.Errorf("droptail top-80 frac = %.2f, want a minority (<0.5)", dt.MeanTop80Frac)
	}
	taq := RunPcapAnalysis(topology.TAQ, testScale, 1)
	// TAQ: almost nobody shut down, bandwidth spread across many more
	// flows.
	if taq.MeanShutdownFrac > dt.MeanShutdownFrac/2 {
		t.Errorf("TAQ shutdown frac %.2f not ≪ droptail %.2f",
			taq.MeanShutdownFrac, dt.MeanShutdownFrac)
	}
	if taq.MeanTop80Frac < dt.MeanTop80Frac {
		t.Errorf("TAQ top-80 frac %.2f not more even than droptail %.2f",
			taq.MeanTop80Frac, dt.MeanTop80Frac)
	}
	if dt.Table() == "" {
		t.Error("empty table")
	}
}

func TestSubPacketFutureWork(t *testing.T) {
	r := RunSubPacketTCP(testScale, 1)
	if len(r.Points) != 4 {
		t.Fatalf("points = %d", len(r.Points))
	}
	dtReno, _ := r.Point(topology.DropTail, "newreno")
	dtSub, _ := r.Point(topology.DropTail, "subpacket")
	// §7 future work: the paced fractional-window sender eliminates
	// repetitive timeouts entirely and improves fairness over plain
	// NewReno on an unmodified droptail bottleneck.
	if dtSub.RepetitiveTOs != 0 {
		t.Errorf("subpacket repetitive timeouts = %d, want 0", dtSub.RepetitiveTOs)
	}
	if dtSub.ShortJFI <= dtReno.ShortJFI {
		t.Errorf("subpacket JFI %.3f not above newreno %.3f", dtSub.ShortJFI, dtReno.ShortJFI)
	}
	if dtSub.MeanStalled >= dtReno.MeanStalled {
		t.Errorf("subpacket stalled %.1f not below newreno %.1f", dtSub.MeanStalled, dtReno.MeanStalled)
	}
	if dtSub.Utilization < 0.9 {
		t.Errorf("subpacket utilization %.2f", dtSub.Utilization)
	}
	if r.Table() == "" {
		t.Error("empty table")
	}
}

// TestTrackerScaleDeterministicChurn checks the tracker-scale stress:
// the sliding window must actually retire flows (eviction exercised),
// the tracker must never hold more flows than were offered, and two
// same-seed runs must produce identical read-out checksums — the
// in-process form of CI's large-population determinism gate.
func TestTrackerScaleDeterministicChurn(t *testing.T) {
	a := RunTrackerScale(0.05, 3)
	b := RunTrackerScale(0.05, 3)
	if len(a.Points) == 0 {
		t.Fatal("no scale points")
	}
	for i, p := range a.Points {
		if p.TrackedEnd > p.Flows {
			t.Errorf("flows=%d: tracked %d exceeds offered %d", p.Flows, p.TrackedEnd, p.Flows)
		}
		if p.TrackedEnd >= p.Flows {
			t.Errorf("flows=%d: no flow was ever evicted", p.Flows)
		}
		if p.Served == 0 {
			t.Errorf("flows=%d: nothing served", p.Flows)
		}
		if q := b.Points[i]; p != q {
			t.Errorf("flows=%d: same-seed runs diverged:\n%+v\n%+v", p.Flows, p, q)
		}
	}
}
