package experiments

import (
	"fmt"

	"taq/internal/link"
	"taq/internal/sim"
	"taq/internal/tcp"
	"taq/internal/topology"
	"taq/internal/workload"
)

// FairnessPoint is one point of the JFI-vs-fair-share curves in
// Figs 2, 8 and 11.
type FairnessPoint struct {
	Bandwidth    link.Bps
	Flows        int
	FairShareBps float64
	ShortJFI     float64 // mean Jain index over 20 s slices
	LongJFI      float64 // Jain index of whole-run totals
	Utilization  float64
	LossRate     float64
}

// FairnessResult is a full sweep.
type FairnessResult struct {
	Queue  topology.QueueKind
	Points []FairnessPoint
}

// FairnessConfig controls the sweep shared by Figs 2 and 8.
type FairnessConfig struct {
	Queue topology.QueueKind
	// Bandwidths to sweep (default: the paper's 200..1000 Kbps).
	Bandwidths []link.Bps
	// FairShares are the target per-flow shares (bps) that set N.
	FairShares []float64
	Seed       int64
}

func defaultFairnessConfig(qk topology.QueueKind) FairnessConfig {
	return FairnessConfig{
		Queue:      qk,
		Bandwidths: []link.Bps{200 * link.Kbps, 400 * link.Kbps, 600 * link.Kbps, 800 * link.Kbps, 1000 * link.Kbps},
		FairShares: []float64{2500, 5000, 10000, 20000, 30000, 40000, 50000},
		Seed:       1,
	}
}

// RunFairness runs the JFI-vs-fair-share sweep (Fig 2 with DropTail /
// RED / SFQ, Fig 8 with TAQ). Scale 1 uses 400-second runs per point
// (the paper slices long steady-state runs into 20 s windows).
func RunFairness(cfg FairnessConfig, scale Scale) FairnessResult {
	if cfg.Bandwidths == nil || cfg.FairShares == nil {
		d := defaultFairnessConfig(cfg.Queue)
		if cfg.Bandwidths == nil {
			cfg.Bandwidths = d.Bandwidths
		}
		if cfg.FairShares == nil {
			cfg.FairShares = d.FairShares
		}
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	duration := scale.duration(400*sim.Second, 80*sim.Second)
	return FairnessResult{
		Queue:  cfg.Queue,
		Points: fairnessSweep(cfg, cfg.Bandwidths, duration),
	}
}

// fairnessJob is one (bandwidth, flow count) cell of the fairness grid.
type fairnessJob struct {
	bw link.Bps
	n  int
}

// fairnessSweep enumerates the grid in bandwidth-major order (the order
// the serial loops always produced) and evaluates the points through
// the worker pool; each point builds its own seeded engine.
func fairnessSweep(cfg FairnessConfig, bandwidths []link.Bps, duration sim.Time) []FairnessPoint {
	var jobs []fairnessJob
	for _, bw := range bandwidths {
		for _, share := range cfg.FairShares {
			n := int(float64(bw) / share)
			if n < 2 {
				continue
			}
			jobs = append(jobs, fairnessJob{bw: bw, n: n})
		}
	}
	return runSweep(jobs, func(_ int, j fairnessJob) FairnessPoint {
		return fairnessPoint(cfg, j.bw, j.n, duration)
	})
}

func fairnessPoint(cfg FairnessConfig, bw link.Bps, n int, duration sim.Time) FairnessPoint {
	tcpCfg := tcp.DefaultConfig()
	net := topology.MustNew(topology.Config{
		Seed:      cfg.Seed,
		Bandwidth: bw,
		Queue:     cfg.Queue,
		RTTJitter: 0.25, // variable RTTs, as in the paper's validation runs
		TCP:       tcpCfg,
	})
	workload.AddBulkFlows(net, n, 50*sim.Millisecond)
	net.Run(duration)

	warmup := 1 // skip the first slice (slow-start transient)
	slices := int(duration / net.Slicer.Width())
	return FairnessPoint{
		Bandwidth:    bw,
		Flows:        n,
		FairShareBps: float64(bw) / float64(n),
		ShortJFI:     net.Slicer.MeanSliceJFI(warmup, slices),
		LongJFI:      net.Slicer.TotalJFI(warmup, slices),
		Utilization:  net.Utilization(),
		LossRate:     net.LossRate(),
	}
}

// RunLongTermFairness reproduces Fig 2's long-slice curves: the same
// contention levels measured over one long window (paper: 10000 s at
// 200 and 1000 Kbps).
func RunLongTermFairness(qk topology.QueueKind, scale Scale) FairnessResult {
	cfg := defaultFairnessConfig(qk)
	duration := scale.duration(10000*sim.Second, 200*sim.Second)
	return FairnessResult{
		Queue:  qk,
		Points: fairnessSweep(cfg, []link.Bps{200 * link.Kbps, 1000 * link.Kbps}, duration),
	}
}

func (r FairnessResult) rows() (header []string, rows [][]string) {
	header = []string{"bandwidth", "flows", "fairshare(bps)", "shortJFI", "longJFI", "util", "loss"}
	for _, p := range r.Points {
		rows = append(rows, []string{
			fmt.Sprintf("%.0fKbps", float64(p.Bandwidth)/1e3),
			fmt.Sprintf("%d", p.Flows),
			fmt.Sprintf("%.0f", p.FairShareBps),
			f3(p.ShortJFI),
			f3(p.LongJFI),
			f2(p.Utilization),
			f3(p.LossRate),
		})
	}
	return
}

// Table renders the sweep in the paper's axes.
func (r FairnessResult) Table() string {
	h, rows := r.rows()
	return fmt.Sprintf("Queue: %s\n", r.Queue) + table(h, rows)
}

// CSV renders the sweep as comma-separated values for plotting.
func (r FairnessResult) CSV() string {
	h, rows := r.rows()
	return csvTable(h, rows)
}

// PointsBelow returns the points whose fair share is below the given
// bps (e.g. the sub-3-packet regime where short-term fairness
// collapses).
func (r FairnessResult) PointsBelow(bps float64) []FairnessPoint {
	var out []FairnessPoint
	for _, p := range r.Points {
		if p.FairShareBps < bps {
			out = append(out, p)
		}
	}
	return out
}

// MeanShortJFI averages the short-term JFI over the given points.
func MeanShortJFI(pts []FairnessPoint) float64 {
	if len(pts) == 0 {
		return 0
	}
	s := 0.0
	for _, p := range pts {
		s += p.ShortJFI
	}
	return s / float64(len(pts))
}
