// Benchmarks: one per table/figure of the paper's evaluation (see the
// experiment index in DESIGN.md §3). Each benchmark iteration runs the
// corresponding experiment at a reduced scale and reports, via custom
// metrics, the headline quantity the paper reads off that figure —
// so `go test -bench=. -benchmem` regenerates the whole evaluation in
// miniature. cmd/taqbench runs the same experiments at any scale.
package taq_test

import (
	"testing"

	"taq/experiments"
	"taq/internal/core"
	"taq/internal/link"
	"taq/internal/obs"
	"taq/internal/packet"
	"taq/internal/queue"
	"taq/internal/sim"
	"taq/internal/topology"
)

// benchScale keeps each iteration around a second.
const benchScale experiments.Scale = 0.05

func BenchmarkFig01DownloadScatter(b *testing.B) {
	var spread float64
	for i := 0; i < b.N; i++ {
		r := experiments.RunDownloadScatter(benchScale, int64(i+1))
		spread = r.MaxSpreadOrders()
	}
	b.ReportMetric(spread, "spread-orders")
}

func BenchmarkFig02DroptailFairness(b *testing.B) {
	cfg := experiments.FairnessConfig{
		Queue:      topology.DropTail,
		Bandwidths: []link.Bps{200 * link.Kbps, 1000 * link.Kbps},
		FairShares: []float64{2500, 10000, 50000},
	}
	var jfi float64
	for i := 0; i < b.N; i++ {
		cfg.Seed = int64(i + 1)
		r := experiments.RunFairness(cfg, benchScale)
		jfi = experiments.MeanShortJFI(r.PointsBelow(30000))
	}
	b.ReportMetric(jfi, "subpacket-shortJFI")
}

func BenchmarkFig03BufferTradeoff(b *testing.B) {
	var needed float64
	for i := 0; i < b.N; i++ {
		r := experiments.RunBufferTradeoff(benchScale, int64(i+1))
		needed = r.RequiredBuffer(0.8)[1.25]
	}
	b.ReportMetric(needed, "RTTs-for-JFI0.8@1.25pkt")
}

func BenchmarkHangTimes(b *testing.B) {
	var frac float64
	for i := 0; i < b.N; i++ {
		r := experiments.RunHangTimes(topology.DropTail, benchScale, int64(i+1))
		frac = r.Points[0].FracOver20s
	}
	b.ReportMetric(frac, "200users-frac>20s")
}

func BenchmarkRedSfqEquivalence(b *testing.B) {
	var worst float64
	for i := 0; i < b.N; i++ {
		r := experiments.RunRedSfqEquivalence(benchScale, int64(i+1))
		worst = 0
		for _, p := range r.Points {
			if p.ShortJFI > worst {
				worst = p.ShortJFI
			}
		}
	}
	b.ReportMetric(worst, "best-baseline-JFI")
}

func BenchmarkFig06ModelValidation(b *testing.B) {
	var mae float64
	for i := 0; i < b.N; i++ {
		r := experiments.RunModelValidation(benchScale, int64(i+1))
		mae = r.WorstError(0.05)
	}
	b.ReportMetric(mae, "worst-MAE")
}

func BenchmarkFig08TAQFairness(b *testing.B) {
	cfg := experiments.FairnessConfig{
		Queue:      topology.TAQ,
		Bandwidths: []link.Bps{200 * link.Kbps, 1000 * link.Kbps},
		FairShares: []float64{2500, 10000, 50000},
	}
	var jfi float64
	for i := 0; i < b.N; i++ {
		cfg.Seed = int64(i + 1)
		r := experiments.RunFairness(cfg, benchScale)
		jfi = experiments.MeanShortJFI(r.PointsBelow(30000))
	}
	b.ReportMetric(jfi, "subpacket-shortJFI")
}

func BenchmarkFig09FlowEvolution(b *testing.B) {
	var stalled float64
	for i := 0; i < b.N; i++ {
		r := experiments.RunFlowEvolution(topology.TAQ, benchScale, int64(i+1))
		stalled = r.MeanStalled
	}
	b.ReportMetric(stalled, "taq-mean-stalled")
}

func BenchmarkFig10ShortFlows(b *testing.B) {
	var corr float64
	for i := 0; i < b.N; i++ {
		r := experiments.RunShortFlows(topology.TAQ, benchScale, int64(i+1))
		corr = r.Correlation()
	}
	b.ReportMetric(corr, "size-time-corr")
}

func BenchmarkFig11TestbedFairness(b *testing.B) {
	// Real time: each iteration costs ~2 wall seconds regardless of
	// simulated load (wall-clock engine).
	var taqJFI float64
	for i := 0; i < b.N; i++ {
		r := experiments.RunTestbedFairness(experiments.TestbedOptions{
			Speedup:         40,
			VirtualDuration: 20 * sim.Second,
			SliceWidth:      5 * sim.Second,
			FlowCounts:      []int{40},
			Seed:            int64(i + 1),
		})
		for _, p := range r.Points {
			if p.UseTAQ && p.Bandwidth == 600*link.Kbps {
				taqJFI = p.ShortJFI
			}
		}
	}
	b.ReportMetric(taqJFI, "taq-600k-shortJFI")
}

func BenchmarkFig12AdmissionCDF(b *testing.B) {
	var speedup float64
	for i := 0; i < b.N; i++ {
		r := experiments.RunAdmissionWeb(benchScale, int64(i+1))
		speedup = r.SmallObjectSpeedup()
	}
	b.ReportMetric(speedup, "small-obj-median-speedup")
}

func BenchmarkModelStationary(b *testing.B) {
	var tp float64
	for i := 0; i < b.N; i++ {
		m, err := experiments.RunModelTables()
		if err != nil {
			b.Fatal(err)
		}
		tp = m.TippingPoint
	}
	b.ReportMetric(tp, "tipping-point-p")
}

func BenchmarkTFRCComparison(b *testing.B) {
	var worstTFRC float64
	for i := 0; i < b.N; i++ {
		r := experiments.RunTFRCComparison(benchScale, int64(i+1))
		worstTFRC = 1
		for _, p := range r.Points {
			if p.Transport == "tfrc" && p.ShortJFI < worstTFRC {
				worstTFRC = p.ShortJFI
			}
		}
	}
	b.ReportMetric(worstTFRC, "tfrc-worst-JFI")
}

func BenchmarkAblation(b *testing.B) {
	var gap float64
	for i := 0; i < b.N; i++ {
		r := experiments.RunAblation(benchScale, int64(i+1))
		full, _ := r.Point("taq-full")
		dt, _ := r.Point("droptail")
		gap = full.ShortJFI - dt.ShortJFI
	}
	b.ReportMetric(gap, "full-vs-droptail-JFI-gap")
}

// Micro-benchmarks: the §5.4 claim that "even on realistically basic
// hardware TAQ is able to easily handle these flow rates" rests on the
// middlebox's per-packet cost. These measure raw enqueue+dequeue
// throughput of TAQ against DropTail.

func benchmarkDiscipline(b *testing.B, disc queue.Discipline) {
	pkts := make([]*packet.Packet, 256)
	for i := range pkts {
		pkts[i] = &packet.Packet{
			Flow: packet.FlowID(i % 64), Kind: packet.Data,
			Seq: i, Size: 500,
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		disc.Enqueue(pkts[i%len(pkts)])
		if i%2 == 0 {
			disc.Dequeue()
		}
	}
}

func BenchmarkDisciplineDropTail(b *testing.B) {
	benchmarkDiscipline(b, queue.NewDropTail(64))
}

func BenchmarkDisciplineSFQ(b *testing.B) {
	benchmarkDiscipline(b, queue.NewSFQ(64, 64))
}

func BenchmarkDisciplineRED(b *testing.B) {
	e := sim.NewEngine(1)
	benchmarkDiscipline(b, queue.NewRED(queue.REDConfig{Capacity: 64, MeanPktTime: sim.Millisecond}, e.Now, e.Rand()))
}

func BenchmarkDisciplineTAQ(b *testing.B) {
	e := sim.NewEngine(1)
	mb := core.New(e, core.DefaultConfig(1000*link.Kbps, 64))
	benchmarkDiscipline(b, mb)
}

// BenchmarkDisciplineTAQObsOn is the tracing-overhead companion of
// BenchmarkDisciplineTAQ: the same workload with a flight recorder
// attached, so the delta between the two is the per-packet cost of the
// obs layer when enabled (EXPERIMENTS.md quotes both).
func BenchmarkDisciplineTAQObsOn(b *testing.B) {
	e := sim.NewEngine(1)
	mb := core.New(e, core.DefaultConfig(1000*link.Kbps, 64))
	mb.SetRecorder(obs.NewRecorder(nil, obs.DefaultRingSize))
	benchmarkDiscipline(b, mb)
}

// The "zero overhead when off" proof at the middlebox level lives in
// hotpath_alloc_test.go now, table-driven over every declared
// //taq:hotpath root.

func BenchmarkInitialWindow(b *testing.B) {
	var penalty float64
	for i := 0; i < b.N; i++ {
		r := experiments.RunInitialWindow(benchScale, int64(i+1))
		dt10, _ := r.Point(topology.DropTail, "cubic-iw10")
		taq10, _ := r.Point(topology.TAQ, "cubic-iw10")
		penalty = dt10.TimeoutFrac - taq10.TimeoutFrac
	}
	b.ReportMetric(penalty, "dt-minus-taq-timeout-frac")
}

// BenchmarkTrackerScaleSweep runs the tracker-scale churn experiment:
// flow populations far beyond the testbed driven through creation,
// silence detection, expiry eviction and record recycling. The ns/op
// trend across repo history tracks the cost of the control loop at
// scale (the per-operation breakdown lives in internal/core's
// BenchmarkTrackerScan and BenchmarkGaugeSample).
func BenchmarkTrackerScaleSweep(b *testing.B) {
	var tracked float64
	for i := 0; i < b.N; i++ {
		r := experiments.RunTrackerScale(benchScale, int64(i+1))
		tracked = float64(r.Points[len(r.Points)-1].TrackedEnd)
	}
	b.ReportMetric(tracked, "tracked-end")
}

func BenchmarkSubPacketTCP(b *testing.B) {
	var gain float64
	for i := 0; i < b.N; i++ {
		r := experiments.RunSubPacketTCP(benchScale, int64(i+1))
		reno, _ := r.Point(topology.DropTail, "newreno")
		sub, _ := r.Point(topology.DropTail, "subpacket")
		gain = sub.ShortJFI - reno.ShortJFI
	}
	b.ReportMetric(gain, "subpacket-minus-newreno-JFI")
}
