// Shortflows demonstrates Fig 10: short flows (small web objects)
// injected against 50 long-running background flows on a 1 Mbps link.
// Under TAQ the NewFlow queue gives short flows download times that
// grow roughly linearly with their size — predictability — while under
// DropTail the same flows see lottery-like completion times.
package main

import (
	"fmt"

	"taq"
)

func main() {
	for _, queue := range []taq.QueueKind{taq.QueueDropTail, taq.QueueTAQ} {
		net := taq.NewNetwork(taq.NetworkConfig{
			Seed:      3,
			Bandwidth: 1000 * taq.Kbps,
			Queue:     queue,
			RTTJitter: 0.25,
		})
		taq.AddBulkFlows(net, 50, 50*taq.Millisecond)

		// Inject short flows of 4..64 packets after a warmup.
		type result struct {
			packets int
			app     *taq.SizedApp
			start   taq.Time
			end     taq.Time
		}
		var shorts []*result
		for i := 0; i < 16; i++ {
			r := &result{packets: 4 + i*4, start: 60*taq.Second + taq.Time(i)*8*taq.Second}
			r.app = &taq.SizedApp{Total: r.packets}
			f := net.AddFlow(taq.PoolNone, r.app, r.start)
			id := f.ID
			r.app.OnComplete = func() {
				r.end = net.Engine.Now()
				net.Slicer.Finish(id, r.end)
			}
			shorts = append(shorts, r)
		}
		net.Run(400 * taq.Second)

		fmt.Printf("%s:\n  pkts  download\n", queue)
		for _, r := range shorts {
			if r.app.Done() {
				fmt.Printf("  %4d  %6.1fs\n", r.packets, (r.end - r.start).Seconds())
			} else {
				fmt.Printf("  %4d     DNF\n", r.packets)
			}
		}
	}
}
