// Model explores the paper's idealized Markov models (§3.1) through
// the public API: stationary distributions over window and timeout
// states, the packets-per-epoch classes of Fig 6, expected idle time
// in repetitive timeouts, model throughput, and the loss tipping point
// that sets TAQ's admission threshold.
package main

import (
	"fmt"

	"taq"
)

func main() {
	fmt.Println("Idealized TCP model in small packet regimes (Wmax = 6)")
	fmt.Println()
	fmt.Printf("%-6s  %-12s  %-12s  %-14s  %s\n",
		"p", "timeout mass", "E[idle epoch]", "pkts/epoch", "top states")
	for _, p := range []float64{0.02, 0.05, 0.1, 0.15, 0.2, 0.3, 0.4} {
		chain, err := taq.PartialModel(p, 6)
		if err != nil {
			panic(err)
		}
		pi, err := chain.Stationary()
		if err != nil {
			panic(err)
		}
		// The two most likely states tell the story at a glance.
		best, second := 0, 0
		for i := range pi {
			if pi[i] > pi[best] {
				second = best
				best = i
			} else if pi[i] > pi[second] || second == best {
				second = i
			}
		}
		fmt.Printf("%-6.2f  %-12.3f  %-13.2f  %-14.2f  %s %.2f, %s %.2f\n",
			p, chain.TimeoutMass(pi), taq.ExpectedIdleEpochs(p),
			chain.ExpectedThroughput(pi),
			chain.Labels[best], pi[best], chain.Labels[second], pi[second])
	}

	tp, err := taq.TippingPoint(0.5, 6)
	if err != nil {
		panic(err)
	}
	fmt.Printf("\nhalf the stationary mass sits in timeout states beyond p = %.3f\n", tp)
	fmt.Println("(the knee behind TAQ's admission threshold p_thresh ≈ 0.1, §4.3)")

	// The full model separates backoff stages; show how deep-backoff
	// occupancy grows with p.
	fmt.Println("\nFull model: probability of being ≥2 backoffs deep")
	for _, p := range []float64{0.1, 0.2, 0.3} {
		chain, err := taq.FullModel(p, 6, 4)
		if err != nil {
			panic(err)
		}
		pi, err := chain.Stationary()
		if err != nil {
			panic(err)
		}
		deep := 0.0
		for i, label := range chain.Labels {
			if label == "B2" || label == "B3" || label == "B4" {
				deep += pi[i]
			}
		}
		fmt.Printf("  p=%.2f: %.3f\n", p, deep)
	}
}
