// Admission demonstrates §4.3: when the loss rate at the middlebox
// crosses the Markov model's tipping point (p_thresh ≈ 0.1), TAQ stops
// admitting new flow pools, queues them FIFO, and guarantees admission
// within Twait — trading a short, predictable wait for fast downloads
// once admitted. Clients replay a synthetic web log as fast as their
// four connections allow; compare per-object download times under
// DropTail and TAQ with admission control.
package main

import (
	"fmt"

	"taq"
)

func main() {
	// A synthetic peak-load access log: 30 clients, web-sized objects.
	gen := taq.DefaultTraceConfig()
	gen.Clients = 30
	gen.Duration = 300 * taq.Second
	gen.RequestsPerClientPerMin = 3
	gen.MaxSize = 128 * 1024
	recs := taq.GenerateTrace(gen)
	fmt.Printf("replaying %d objects from %d clients over 1 Mbps\n\n", len(recs), gen.Clients)

	run := func(queue taq.QueueKind, admission bool) {
		tcpCfg := taq.DefaultTCPConfig()
		tcpCfg.MaxSynRetries = -1 // retry until admitted
		cfg := taq.NetworkConfig{
			Seed:      1,
			Bandwidth: 1000 * taq.Kbps,
			Queue:     queue,
			RTTJitter: 0.25,
			TCP:       tcpCfg,
		}
		if admission {
			mb := taq.DefaultMiddleboxConfig(cfg.Bandwidth, 0)
			mb.AdmissionControl = true
			cfg.TAQ = &mb
		}
		net := taq.NewNetwork(cfg)
		sessions := taq.Replay(net, recs, 4, taq.ReplayASAP)
		net.Run(gen.Duration + 120*taq.Second)

		var times taq.CDF
		done, total := 0, 0
		for _, s := range sessions {
			for _, r := range s.Results {
				total++
				if r.Done {
					done++
					times.Add(r.DownloadTime().Seconds())
				}
			}
		}
		label := string(queue)
		if admission {
			label += "+AC"
		}
		fmt.Printf("%-12s completed %d/%d  median=%.1fs  p90=%.1fs  worst=%.1fs\n",
			label, done, total, times.Median(), times.Percentile(90), times.Max())
		if net.Middlebox != nil {
			fmt.Printf("%-12s pools admitted=%d, of which waited=%d\n",
				"", net.Middlebox.Stats.PoolsAdmitted, net.Middlebox.Stats.PoolsWaited)
		}
	}

	run(taq.QueueDropTail, false)
	run(taq.QueueTAQ, true)
}
