// Quickstart: 60 TCP flows share a 600 Kbps bottleneck — a fair share
// of 10 Kbps, or half a packet per RTT: a small packet regime. The
// same scenario runs under DropTail and under the TAQ middlebox, and
// the short-term Jain Fairness Index shows the difference the paper's
// Figs 2 and 8 report.
package main

import (
	"fmt"

	"taq"
)

func main() {
	const (
		bandwidth = 600 * taq.Kbps
		flows     = 60
		duration  = 200 * taq.Second
	)
	for _, queue := range []taq.QueueKind{taq.QueueDropTail, taq.QueueTAQ} {
		net := taq.NewNetwork(taq.NetworkConfig{
			Seed:      1,
			Bandwidth: bandwidth,
			Queue:     queue,
			RTTJitter: 0.25,
		})
		taq.AddBulkFlows(net, flows, 50*taq.Millisecond)
		net.Run(duration)

		slices := int(duration / net.Slicer.Width())
		timeouts, repetitive := net.AggregateTimeouts()
		fmt.Printf("%-9s shortJFI=%.3f longJFI=%.3f util=%.2f loss=%.3f timeouts=%d (repetitive %d)\n",
			queue,
			net.Slicer.MeanSliceJFI(1, slices),
			net.Slicer.TotalJFI(1, slices),
			net.Utilization(),
			net.LossRate(),
			timeouts, repetitive)
	}
}
