// Websession reproduces the §2.3 user experience analysis: 200 users,
// each with a pool of 4 browser connections, share a 1 Mbps link. A
// "user-perceived hang" is an interval in which none of a user's
// connections delivers a byte. DropTail leaves most users staring at a
// frozen page for tens of seconds; TAQ nearly eliminates long hangs.
package main

import (
	"fmt"

	"taq"
)

func main() {
	const (
		users    = 200
		conns    = 4
		duration = 400 * taq.Second
	)
	for _, queue := range []taq.QueueKind{taq.QueueDropTail, taq.QueueTAQ} {
		net := taq.NewNetwork(taq.NetworkConfig{
			Seed:      7,
			Bandwidth: 1000 * taq.Kbps,
			Queue:     queue,
			RTTJitter: 0.25,
		})
		// Each user opens `conns` long-running connections, like a
		// browser loading a heavy page.
		for u := 0; u < users; u++ {
			for c := 0; c < conns; c++ {
				net.AddFlow(taq.PoolID(u), taq.BulkApp{}, taq.Time(u)*25*taq.Millisecond)
			}
		}
		net.Run(duration)
		net.Hangs.Finish(duration)

		fmt.Printf("%-9s users with a >5s hang: %4.0f%%   >20s: %4.0f%%   >60s: %4.0f%%\n",
			queue,
			100*net.Hangs.FractionExceeding(5*taq.Second),
			100*net.Hangs.FractionExceeding(20*taq.Second),
			100*net.Hangs.FractionExceeding(60*taq.Second))
	}
}
