package topology

import (
	"testing"

	"taq/internal/link"
	"taq/internal/packet"
	"taq/internal/sim"
	"taq/internal/tcp"
)

func TestSingleFlowSaturatesLink(t *testing.T) {
	n := MustNew(Config{Seed: 1, Bandwidth: 1000 * link.Kbps})
	n.AddFlow(packet.PoolNone, tcp.BulkApp{}, 0)
	n.Run(60 * sim.Second)
	// One bulk flow should keep the link busy: ≥80% utilization after
	// slow start, and deliver roughly rate*time of data.
	if u := n.Utilization(); u < 0.8 {
		t.Errorf("utilization = %f, want ≥0.8", u)
	}
	got := n.Slicer.FlowTotal(0)
	want := 1000e3 / 8 * 60 // bytes at full rate
	if got < 0.7*want {
		t.Errorf("delivered %v bytes, want ≥70%% of %v", got, want)
	}
}

func TestTwoFlowsShareFairlyLongTerm(t *testing.T) {
	// A little RTT jitter avoids the classic droptail phase-locking of
	// two identical flows, and a large max window keeps both flows
	// probing via AIMD instead of one parking at the receiver-window
	// cap and never seeing a loss.
	tcpCfg := tcp.DefaultConfig()
	tcpCfg.MaxWindow = 10000
	tcpCfg.InitialSsthresh = 10000
	n := MustNew(Config{Seed: 1, Bandwidth: 1000 * link.Kbps, RTTJitter: 0.1, TCP: tcpCfg})
	n.AddFlow(packet.PoolNone, tcp.BulkApp{}, 0)
	n.AddFlow(packet.PoolNone, tcp.BulkApp{}, 0)
	n.Run(120 * sim.Second)
	jfi := n.Slicer.TotalJFI(0, int(120/20))
	if jfi < 0.9 {
		t.Errorf("2-flow long-term JFI = %f, want ≥0.9", jfi)
	}
}

func TestManyFlowsHighLossAndTimeouts(t *testing.T) {
	// 60 flows on 200 Kbps: fair share ≈ 3.3 Kbps ≈ 0.17 pkt/RTT —
	// deep sub-packet regime. Expect heavy loss and timeouts.
	cfg := Config{Seed: 2, Bandwidth: 200 * link.Kbps}
	n := MustNew(cfg)
	for i := 0; i < 60; i++ {
		n.AddFlow(packet.PoolNone, tcp.BulkApp{}, sim.Time(i)*50*sim.Millisecond)
	}
	n.Run(200 * sim.Second)
	if lr := n.LossRate(); lr < 0.05 {
		t.Errorf("loss rate = %f, want ≥0.05 in sub-packet regime", lr)
	}
	to, rep := n.AggregateTimeouts()
	if to == 0 || rep == 0 {
		t.Errorf("timeouts=%d repetitive=%d, want both > 0", to, rep)
	}
	// Utilization stays high despite the chaos (paper §2.3: goodput
	// remains >90%; allow slack at this scale).
	if u := n.Utilization(); u < 0.85 {
		t.Errorf("utilization = %f, want ≥0.85", u)
	}
}

func TestSizedFlowCompletes(t *testing.T) {
	n := MustNew(Config{Seed: 3, Bandwidth: 1000 * link.Kbps})
	done := false
	app := &tcp.SizedApp{Total: 50, OnComplete: func() { done = true }}
	n.AddFlow(packet.PoolNone, app, sim.Second)
	n.Run(30 * sim.Second)
	if !done {
		t.Fatal("sized transfer did not complete")
	}
}

func TestAllQueueKindsRun(t *testing.T) {
	for _, k := range []QueueKind{DropTail, RED, SFQ, TAQ} {
		n := MustNew(Config{Seed: 4, Bandwidth: 400 * link.Kbps, Queue: k})
		for i := 0; i < 10; i++ {
			n.AddFlow(packet.PoolNone, tcp.BulkApp{}, 0)
		}
		n.Run(40 * sim.Second)
		if u := n.Utilization(); u < 0.5 {
			t.Errorf("%s: utilization = %f, want ≥0.5", k, u)
		}
		if k == TAQ && n.Middlebox == nil {
			t.Error("TAQ scenario missing middlebox handle")
		}
	}
}

func TestUnknownQueueKind(t *testing.T) {
	if _, err := New(Config{Queue: "fifo9000"}); err == nil {
		t.Error("unknown queue kind accepted")
	}
}

func TestRTTJitterSpreadsRTTs(t *testing.T) {
	n := MustNew(Config{Seed: 5, RTTJitter: 0.5})
	a := n.AddFlow(packet.PoolNone, tcp.BulkApp{}, 0)
	b := n.AddFlow(packet.PoolNone, tcp.BulkApp{}, 0)
	c := n.AddFlow(packet.PoolNone, tcp.BulkApp{}, 0)
	if a.RTT == b.RTT && b.RTT == c.RTT {
		t.Error("jittered RTTs all identical")
	}
	for _, f := range []*Flow{a, b, c} {
		if f.RTT < 100*sim.Millisecond || f.RTT > 300*sim.Millisecond {
			t.Errorf("RTT %v outside ±50%% of 200ms", f.RTT)
		}
	}
}

func TestCensusCountsPackets(t *testing.T) {
	n := MustNew(Config{Seed: 6, Bandwidth: 1000 * link.Kbps})
	n.EnableCensus(6, 200*sim.Millisecond)
	n.AddFlow(packet.PoolNone, tcp.BulkApp{}, 0)
	n.Run(20 * sim.Second)
	if n.Census.Epochs() == 0 {
		t.Fatal("census recorded no epochs")
	}
	d := n.Census.Distribution()
	// A lone bulk flow at 1 Mbps (≈250 pkt/s, 50/epoch) should spend
	// nearly all epochs in the clamped top class.
	if d[6] < 0.8 {
		t.Errorf("top-class fraction = %v, want ≥0.8 (dist=%v)", d[6], d)
	}
}

func TestHangTrackerWiredToPools(t *testing.T) {
	n := MustNew(Config{Seed: 7, Bandwidth: 1000 * link.Kbps})
	n.AddFlow(7, tcp.BulkApp{}, 0)
	n.Run(10 * sim.Second)
	n.Hangs.Finish(n.Engine.Now())
	if n.Hangs.NumPools() != 1 {
		t.Fatalf("pools tracked = %d", n.Hangs.NumPools())
	}
	// A healthy lone flow should never hang for seconds.
	if h := n.Hangs.MaxHang(7); h > 2*sim.Second {
		t.Errorf("max hang = %v for uncontended flow", h)
	}
}

func TestDeterministicRuns(t *testing.T) {
	run := func() (uint64, float64) {
		n := MustNew(Config{Seed: 42, Bandwidth: 300 * link.Kbps, RTTJitter: 0.3})
		for i := 0; i < 20; i++ {
			n.AddFlow(packet.PoolNone, tcp.BulkApp{}, 0)
		}
		n.Run(60 * sim.Second)
		return n.QueueDrops, n.Slicer.MeanSliceJFI(0, 3)
	}
	d1, j1 := run()
	d2, j2 := run()
	if d1 != d2 || j1 != j2 {
		t.Errorf("same seed diverged: drops %d/%d JFI %v/%v", d1, d2, j1, j2)
	}
}

func TestOnQueueDropHook(t *testing.T) {
	n := MustNew(Config{Seed: 8, Bandwidth: 200 * link.Kbps})
	var dropped []*packet.Packet
	n.OnQueueDrop = func(p *packet.Packet) { dropped = append(dropped, p) }
	for i := 0; i < 30; i++ {
		n.AddFlow(packet.PoolNone, tcp.BulkApp{}, 0)
	}
	n.Run(30 * sim.Second)
	if uint64(len(dropped)) != n.QueueDrops {
		t.Errorf("hook saw %d drops, counter %d", len(dropped), n.QueueDrops)
	}
	if n.QueueDrops == 0 {
		t.Error("expected drops in overloaded scenario")
	}
}

func TestFairSharePerFlow(t *testing.T) {
	n := MustNew(Config{Seed: 9, Bandwidth: 1000 * link.Kbps})
	if n.FairSharePerFlow() != 1000e3 {
		t.Error("empty network fair share should be full bandwidth")
	}
	for i := 0; i < 4; i++ {
		n.AddFlow(packet.PoolNone, tcp.BulkApp{}, 0)
	}
	if fs := n.FairSharePerFlow(); fs != 250e3 {
		t.Errorf("fair share = %v, want 250k", fs)
	}
	if n.NumFlows() != 4 {
		t.Errorf("NumFlows = %d", n.NumFlows())
	}
	if n.Flow(0) == nil || n.Flow(99) != nil {
		t.Error("Flow lookup wrong")
	}
}

func TestTFRCFlowDelivers(t *testing.T) {
	n := MustNew(Config{Seed: 11, Bandwidth: 400 * link.Kbps})
	f := n.AddTFRCFlow(packet.PoolNone, 0)
	if f.TFRCSender == nil || f.TFRCReceiver == nil || f.Sender != nil {
		t.Fatal("TFRC flow endpoints wrong")
	}
	n.Run(60 * sim.Second)
	if n.Slicer.FlowTotal(f.ID) == 0 {
		t.Error("TFRC flow delivered nothing")
	}
	// A lone TFRC flow on 400 Kbps should reach a healthy fraction of
	// the link (rate-based, capped by 2×recv-rate).
	if got := n.Slicer.FlowTotal(f.ID); got < 0.3*400e3/8*60 {
		t.Errorf("TFRC delivered %v bytes of ~%v", got, 400e3/8*60)
	}
}

func TestMixedTCPAndTFRC(t *testing.T) {
	n := MustNew(Config{Seed: 12, Bandwidth: 400 * link.Kbps, RTTJitter: 0.2})
	n.AddFlow(packet.PoolNone, tcp.BulkApp{}, 0)
	n.AddTFRCFlow(packet.PoolNone, 0)
	n.Run(120 * sim.Second)
	a, b := n.Slicer.FlowTotal(0), n.Slicer.FlowTotal(1)
	if a == 0 || b == 0 {
		t.Fatalf("starvation: tcp=%v tfrc=%v", a, b)
	}
	// TCP-friendliness: neither transport takes more than ~6x the
	// other over two minutes.
	if a > 6*b || b > 6*a {
		t.Errorf("gross unfairness between TCP (%v) and TFRC (%v)", a, b)
	}
}

func TestExternalLossHandled(t *testing.T) {
	n := MustNew(Config{Seed: 13, Bandwidth: 400 * link.Kbps, Queue: TAQ, ExternalLoss: 0.02, RTTJitter: 0.2})
	for i := 0; i < 10; i++ {
		n.AddFlow(packet.PoolNone, tcp.BulkApp{}, 0)
	}
	n.Run(120 * sim.Second)
	if n.ExternalDrops == 0 {
		t.Fatal("no external drops despite ExternalLoss")
	}
	// Flows still progress and stay reasonably fair despite losses
	// TAQ cannot see.
	slices := int(120 * sim.Second / n.Slicer.Width())
	if j := n.Slicer.MeanSliceJFI(1, slices); j < 0.6 {
		t.Errorf("JFI = %.3f with 2%% external loss, want ≥ 0.6", j)
	}
}

func TestGoodputHighUnderContention(t *testing.T) {
	// §2.3: goodput stays above 90% even in the collapse regime.
	n := MustNew(Config{Seed: 14, Bandwidth: 200 * link.Kbps, RTTJitter: 0.25})
	for i := 0; i < 40; i++ {
		n.AddFlow(packet.PoolNone, tcp.BulkApp{}, 0)
	}
	n.Run(200 * sim.Second)
	if g := n.Goodput(); g < 0.85 {
		t.Errorf("goodput = %.3f, want ≥ 0.85", g)
	}
	if g, u := n.Goodput(), n.Utilization(); g > u {
		t.Errorf("goodput %.3f exceeds utilization %.3f", g, u)
	}
}

func TestTwoWayObservationImprovesEpochs(t *testing.T) {
	run := func(twoWay bool) (sum float64, count int) {
		n := MustNew(Config{
			Seed: 15, Bandwidth: 600 * link.Kbps, Queue: TAQ,
			RTTJitter: 0.3, TwoWayObservation: twoWay,
		})
		for i := 0; i < 20; i++ {
			n.AddFlow(packet.PoolNone, tcp.BulkApp{}, 0)
		}
		n.Run(60 * sim.Second)
		for i := 0; i < 20; i++ {
			f := n.Flow(packet.FlowID(i))
			epoch, ok := n.Middlebox.FlowEpoch(f.ID)
			if !ok {
				continue
			}
			// Relative error against the flow's true propagation RTT
			// (queueing adds some legitimate inflation).
			err := (epoch - f.RTT).Seconds() / f.RTT.Seconds()
			if err < 0 {
				err = -err
			}
			sum += err
			count++
		}
		return
	}
	oneErr, n1 := run(false)
	twoErr, n2 := run(true)
	if n1 == 0 || n2 == 0 {
		t.Fatal("no epochs sampled")
	}
	if twoErr/float64(n2) > oneErr/float64(n1)+0.1 {
		t.Errorf("two-way epoch error %.2f worse than one-way %.2f",
			twoErr/float64(n2), oneErr/float64(n1))
	}
}
