package topology

import (
	"bytes"
	"strings"
	"testing"

	"taq/internal/core"
	"taq/internal/obs"
	"taq/internal/packet"
	"taq/internal/sim"
	"taq/internal/tcp"
)

// runTraced runs a small TAQ dumbbell with tracing and gauges enabled
// and returns the raw JSONL event stream and CSV gauge series.
func runTraced(t *testing.T, seed int64) (events, gauges []byte) {
	t.Helper()
	return runTracedShards(t, seed, 0)
}

// runTracedShards is runTraced with the middlebox built as a
// core.Sharded of the given shard count (0 = the classic single TAQ);
// the golden-equivalence test runs both forms against the same pinned
// hashes.
func runTracedShards(t *testing.T, seed int64, shards int) (events, gauges []byte) {
	t.Helper()
	n := MustNew(Config{
		Seed:              seed,
		Queue:             TAQ,
		TwoWayObservation: true,
		TAQShards:         shards,
	})

	var evBuf bytes.Buffer
	sink := obs.NewJSONLSink(&evBuf)
	sink.ClassName = func(c int8) string { return core.Class(c).String() }
	sink.StateName = func(s int8) string { return core.FlowState(s).String() }
	rec := obs.NewRecorder(sink, 0)
	n.EnableObservability(rec)

	var gBuf bytes.Buffer
	g := n.EnableGauges(2*sim.Second, obs.NewCSVSeries(&gBuf))

	for i := 0; i < 4; i++ {
		n.AddFlow(packet.PoolNone, tcp.BulkApp{}, sim.Time(i)*sim.Second)
	}
	n.Run(40 * sim.Second)

	if err := rec.Close(); err != nil {
		t.Fatalf("recorder close: %v", err)
	}
	if err := g.Stop(); err != nil {
		t.Fatalf("gauges stop: %v", err)
	}
	return evBuf.Bytes(), gBuf.Bytes()
}

// TestObservabilityDeterministicTrace is the tracing determinism gate:
// two same-seed runs must produce byte-identical JSONL event streams
// and gauge series. Any wall-clock or map-order leakage into the obs
// path diverges here.
func TestObservabilityDeterministicTrace(t *testing.T) {
	ev1, g1 := runTraced(t, 7)
	ev2, g2 := runTraced(t, 7)

	if !bytes.Equal(ev1, ev2) {
		t.Errorf("event streams diverged: %d vs %d bytes", len(ev1), len(ev2))
	}
	if !bytes.Equal(g1, g2) {
		t.Errorf("gauge series diverged:\n%s\nvs\n%s", g1, g2)
	}

	// The trace must actually cover the lifecycle: generic link events,
	// TAQ classification, and at least one drop with a victim class on
	// this deliberately tight scenario.
	trace := string(ev1)
	for _, want := range []string{`"ev":"enqueue"`, `"ev":"dequeue"`, `"ev":"class_change"`, `"ev":"drop"`, `"ev":"tracker_transition"`} {
		if !strings.Contains(trace, want) {
			t.Errorf("trace missing %s", want)
		}
	}
	lines := strings.Count(trace, "\n")
	if lines < 100 {
		t.Errorf("suspiciously short trace: %d lines", lines)
	}

	gauge := string(g1)
	if !strings.HasPrefix(gauge, "t_ns,qlen,qbytes,arrivals,drops,utilization,") {
		t.Errorf("gauge header = %q", strings.SplitN(gauge, "\n", 2)[0])
	}
	if rows := strings.Count(gauge, "\n"); rows < 10 {
		t.Errorf("gauge series too short: %d rows", rows)
	}
}

// TestObservabilityIsPassive verifies tracing does not perturb the
// simulation: the same seed with and without the obs layer yields
// identical traffic counters. (Engine.Processed is excluded — gauge
// ticks are themselves events.)
func TestObservabilityIsPassive(t *testing.T) {
	run := func(withObs bool) (arrivals, drops uint64) {
		n := MustNew(Config{Seed: 11, Queue: TAQ, TwoWayObservation: true})
		if withObs {
			n.EnableObservability(obs.NewRecorder(&obs.NullSink{}, 0))
			n.EnableGauges(sim.Second, &obs.MemorySeries{})
		}
		for i := 0; i < 4; i++ {
			n.AddFlow(packet.PoolNone, tcp.BulkApp{}, sim.Time(i)*sim.Second)
		}
		n.Run(30 * sim.Second)
		if withObs {
			n.Gauges.Stop()
		}
		return n.QueueArrivals, n.QueueDrops
	}

	aOn, dOn := run(true)
	aOff, dOff := run(false)
	if aOn != aOff || dOn != dOff {
		t.Errorf("obs perturbed the run: arrivals %d/%d drops %d/%d", aOn, aOff, dOn, dOff)
	}
}

// runMetered runs a small TAQ dumbbell with the metrics registry on
// and returns the final Prometheus exposition plus the middlebox
// stats.
func runMetered(t *testing.T, seed int64) ([]byte, core.Stats) {
	t.Helper()
	n := MustNew(Config{Seed: seed, Queue: TAQ, TwoWayObservation: true})
	reg := n.EnableMetrics()
	for i := 0; i < 4; i++ {
		n.AddFlow(packet.PoolNone, tcp.BulkApp{}, sim.Time(i)*sim.Second)
	}
	for i := 0; i < 8; i++ {
		workloadShortFlow(n, 3, sim.Time(10+i)*sim.Second)
	}
	n.Run(40 * sim.Second)
	return reg.Snapshot().AppendText(nil), n.Middlebox.Stats
}

// workloadShortFlow starts a sized transfer feeding the FCT histogram
// (a local stand-in for workload.AddShortFlow, which lives a package
// up and cannot be imported here).
func workloadShortFlow(n *Network, segments int, at sim.Time) {
	app := &tcp.SizedApp{Total: segments}
	f := n.AddFlow(packet.PoolNone, app, at)
	id, started := f.ID, f.Started
	app.OnComplete = func() {
		n.Slicer.Finish(id, n.Engine.Now())
		n.ObserveFCT(started, segments*n.Cfg.TCP.MSS)
	}
}

// TestMetricsRegistryMatchesStats cross-checks the registry against
// the Stats counters the middlebox already keeps, and gates snapshot
// determinism: same-seed runs must produce byte-identical expositions.
func TestMetricsRegistryMatchesStats(t *testing.T) {
	text1, stats := runMetered(t, 7)
	text2, _ := runMetered(t, 7)
	if !bytes.Equal(text1, text2) {
		t.Errorf("same-seed expositions diverged:\n%s\nvs\n%s", text1, text2)
	}

	n := MustNew(Config{Seed: 7, Queue: TAQ, TwoWayObservation: true})
	reg := n.EnableMetrics()
	for i := 0; i < 4; i++ {
		n.AddFlow(packet.PoolNone, tcp.BulkApp{}, sim.Time(i)*sim.Second)
	}
	for i := 0; i < 8; i++ {
		workloadShortFlow(n, 3, sim.Time(10+i)*sim.Second)
	}
	n.Run(40 * sim.Second)
	snap := reg.Snapshot()
	var drops, served uint64
	var fct uint64
	for i := range snap.Counters {
		switch snap.Counters[i].Name {
		case "taq_drops_total":
			for _, v := range snap.Counters[i].Values {
				drops += v
			}
		case "taq_served_total":
			for _, v := range snap.Counters[i].Values {
				served += v
			}
		}
	}
	for i := range snap.Histograms {
		if snap.Histograms[i].Name == "taq_fct_seconds" {
			for _, c := range snap.Histograms[i].Counts {
				fct += c
			}
		}
	}
	if drops != stats.Drops {
		t.Errorf("registry drops = %d, Stats.Drops = %d", drops, stats.Drops)
	}
	if served != stats.Served {
		t.Errorf("registry served = %d, Stats.Served = %d", served, stats.Served)
	}
	if fct == 0 {
		t.Error("FCT histogram recorded no completions")
	}
	if !strings.Contains(string(text1), "taq_link_tx_packets_total") {
		t.Error("exposition missing link metrics")
	}
}

// TestMetricsArePassive verifies the registry does not perturb the
// simulation, mirroring TestObservabilityIsPassive.
func TestMetricsArePassive(t *testing.T) {
	run := func(withMetrics bool) (arrivals, drops uint64) {
		n := MustNew(Config{Seed: 11, Queue: TAQ, TwoWayObservation: true})
		if withMetrics {
			n.EnableMetrics()
		}
		for i := 0; i < 4; i++ {
			n.AddFlow(packet.PoolNone, tcp.BulkApp{}, sim.Time(i)*sim.Second)
		}
		n.Run(30 * sim.Second)
		return n.QueueArrivals, n.QueueDrops
	}
	aOn, dOn := run(true)
	aOff, dOff := run(false)
	if aOn != aOff || dOn != dOff {
		t.Errorf("metrics perturbed the run: arrivals %d/%d drops %d/%d", aOn, aOff, dOn, dOff)
	}
}
