package topology

import (
	"bufio"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
)

// End-to-end golden traces: full dumbbell runs (real TCP senders, link
// delays, gauges) hashed and pinned, complementing the synthetic
// core-level goldens in internal/core. A tracker-internals change that
// shifts any admission, classification, drop, or gauge sample by one
// bit fails here. Re-pin with TAQ_UPDATE_GOLDEN=1 after an intentional
// behavior change.

const goldenTraceFile = "testdata/golden_traces.txt"

func goldenHash(b []byte) string {
	h := sha256.Sum256(b)
	return hex.EncodeToString(h[:])
}

func TestGoldenDumbbellTraces(t *testing.T) {
	seeds := []int64{7, 23}
	update := os.Getenv("TAQ_UPDATE_GOLDEN") != ""

	got := map[string][2]string{}
	for _, seed := range seeds {
		events, gauges := runTraced(t, seed)
		if len(events) == 0 || len(gauges) == 0 {
			t.Fatalf("seed %d produced an empty trace", seed)
		}
		got[fmt.Sprintf("dumbbell-seed%d", seed)] = [2]string{goldenHash(events), goldenHash(gauges)}
	}

	if update {
		if err := os.MkdirAll(filepath.Dir(goldenTraceFile), 0o755); err != nil {
			t.Fatal(err)
		}
		names := make([]string, 0, len(got))
		for n := range got {
			names = append(names, n)
		}
		sort.Strings(names)
		var b strings.Builder
		for _, n := range names {
			fmt.Fprintf(&b, "%s %s %s\n", n, got[n][0], got[n][1])
		}
		if err := os.WriteFile(goldenTraceFile, []byte(b.String()), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("updated %s", goldenTraceFile)
		return
	}

	f, err := os.Open(goldenTraceFile)
	if err != nil {
		t.Fatalf("no golden hashes (%v); run with TAQ_UPDATE_GOLDEN=1 to create them", err)
	}
	defer f.Close()
	want := map[string][2]string{}
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) == 3 {
			want[fields[0]] = [2]string{fields[1], fields[2]}
		}
	}
	for name, g := range got {
		w, ok := want[name]
		if !ok {
			t.Errorf("no golden hash for %q; run with TAQ_UPDATE_GOLDEN=1", name)
			continue
		}
		if g != w {
			t.Errorf("%s: trace diverged from golden:\n events %s (want %s)\n gauges %s (want %s)",
				name, g[0], w[0], g[1], w[1])
		}
	}
}
