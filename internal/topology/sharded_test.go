package topology

import (
	"bufio"
	"bytes"
	"fmt"
	"os"
	"strings"
	"testing"

	"taq/internal/packet"
	"taq/internal/sim"
	"taq/internal/tcp"
)

// readGoldenTraces loads the committed trace hashes.
func readGoldenTraces(t *testing.T) map[string][2]string {
	t.Helper()
	f, err := os.Open(goldenTraceFile)
	if err != nil {
		t.Fatalf("no golden hashes (%v); run TestGoldenDumbbellTraces with TAQ_UPDATE_GOLDEN=1 first", err)
	}
	defer f.Close()
	want := map[string][2]string{}
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) == 3 {
			want[fields[0]] = [2]string{fields[1], fields[2]}
		}
	}
	return want
}

// TestShardedOneShardMatchesGolden is the sharding refactor's
// no-regression gate: a Sharded middlebox with exactly one shard must
// reproduce the committed single-TAQ golden traces byte for byte —
// same events, same gauge samples, down to the hash. Any divergence
// means the shard path (NewShard + shared Aggregator) is not the
// identity refactoring it claims to be.
func TestShardedOneShardMatchesGolden(t *testing.T) {
	want := readGoldenTraces(t)
	for _, seed := range []int64{7, 23} {
		events, gauges := runTracedShards(t, seed, 1)
		name := fmt.Sprintf("dumbbell-seed%d", seed)
		w, ok := want[name]
		if !ok {
			t.Fatalf("no golden hash for %q", name)
		}
		if g := goldenHash(events); g != w[0] {
			t.Errorf("%s: one-shard event trace diverged from the single-TAQ golden:\n got  %s\n want %s", name, g, w[0])
		}
		if g := goldenHash(gauges); g != w[1] {
			t.Errorf("%s: one-shard gauge series diverged from the single-TAQ golden:\n got  %s\n want %s", name, g, w[1])
		}
	}
}

// TestShardedDeterministicTrace: on the sim path all shards run on one
// engine, so a multi-shard middlebox must stay fully deterministic —
// two same-seed runs produce byte-identical event and gauge streams.
func TestShardedDeterministicTrace(t *testing.T) {
	ev1, g1 := runTracedShards(t, 7, 4)
	ev2, g2 := runTracedShards(t, 7, 4)
	if !bytes.Equal(ev1, ev2) {
		t.Errorf("4-shard event streams diverged: %d vs %d bytes", len(ev1), len(ev2))
	}
	if !bytes.Equal(g1, g2) {
		t.Errorf("4-shard gauge series diverged")
	}
	if len(ev1) == 0 {
		t.Fatal("4-shard run produced no events")
	}
}

// TestShardedAggregateAccounting runs a 4-shard dumbbell and checks
// the cross-shard reductions: every packet offered to the bottleneck
// is an arrival on exactly one shard, and the aggregate gauges see all
// flows.
func TestShardedAggregateAccounting(t *testing.T) {
	n := MustNew(Config{Seed: 11, Queue: TAQ, TAQShards: 4})
	const flows = 8
	for i := 0; i < flows; i++ {
		n.AddFlow(packet.PoolNone, tcp.BulkApp{}, sim.Time(i)*sim.Second)
	}
	n.Run(40 * sim.Second)

	if n.Sharded == nil || n.Middlebox != nil {
		t.Fatal("TAQShards=4 must wire Sharded, not Middlebox")
	}
	stats := n.Sharded.Stats()
	if stats.Arrivals != n.QueueArrivals {
		t.Errorf("summed shard arrivals = %d, queue offered %d", stats.Arrivals, n.QueueArrivals)
	}
	if stats.Drops != n.QueueDrops {
		t.Errorf("summed shard drops = %d, drop hook counted %d", stats.Drops, n.QueueDrops)
	}
	if got := n.Sharded.ActiveFlows(); got == 0 || got > flows {
		t.Errorf("aggregate active flows = %d, want in (0,%d]", got, flows)
	}
	// The flows must actually be spread: with 8 bulk flows and the
	// Fibonacci shard hash, more than one shard sees traffic.
	busy := 0
	for i := 0; i < n.Sharded.NumShards(); i++ {
		if n.Sharded.Shard(i).Stats.Arrivals > 0 {
			busy++
		}
	}
	if busy < 2 {
		t.Errorf("only %d of 4 shards saw traffic; flows are not partitioned", busy)
	}
}
