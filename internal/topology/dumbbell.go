// Package topology wires simulated TCP flows into the paper's dumbbell
// topology: N senders share one bottleneck link (with a configurable
// queue discipline — DropTail, RED, SFQ, or TAQ) toward N receivers;
// all traffic is one-way data with uncongested, lossless ACK return
// paths, exactly the §2.3 setup.
package topology

import (
	"fmt"
	"sort"

	"taq/internal/capture"
	"taq/internal/core"
	"taq/internal/link"
	"taq/internal/metrics"
	"taq/internal/obs"
	"taq/internal/packet"
	"taq/internal/queue"
	"taq/internal/sim"
	"taq/internal/tcp"
	"taq/internal/tfrc"
)

// QueueKind selects the bottleneck discipline.
type QueueKind string

// Supported disciplines.
const (
	DropTail QueueKind = "droptail"
	RED      QueueKind = "red"
	SFQ      QueueKind = "sfq"
	TAQ      QueueKind = "taq"
)

// Config describes a dumbbell scenario.
type Config struct {
	// Seed makes the run reproducible.
	Seed int64
	// Bandwidth is the bottleneck capacity.
	Bandwidth link.Bps
	// PropRTT is the base propagation round-trip time (paper: 200 ms).
	PropRTT sim.Time
	// RTTJitter spreads per-flow RTTs uniformly within ±jitter
	// fraction of PropRTT (0 = identical RTTs).
	RTTJitter float64
	// BufferPackets is the bottleneck buffer size; 0 means one
	// PropRTT's worth of packets at Bandwidth (the paper's default).
	BufferPackets int
	// Queue picks the discipline (default DropTail).
	Queue QueueKind
	// TCP is the endpoint configuration (zero value → tcp.DefaultConfig).
	TCP tcp.Config
	// TAQ optionally overrides the TAQ middlebox configuration; nil
	// uses core.DefaultConfig(Bandwidth, BufferPackets).
	TAQ *core.Config
	// TAQShards, when ≥ 1, builds the middlebox as a flow-hash-
	// partitioned core.Sharded with that many shards (Network.Sharded;
	// one shared admission controller and loss window). 0 keeps the
	// classic single-TAQ wiring (Network.Middlebox). Only meaningful
	// with Queue == TAQ; one shard reproduces the single middlebox's
	// behavior exactly (TestShardedOneShardMatchesGolden).
	TAQShards int
	// SFQBuckets sets the SFQ bucket count (default 64).
	SFQBuckets int
	// SliceWidth is the metrics slice width (default 20 s, §2.3).
	SliceWidth sim.Time
	// ExternalLoss drops each packet after the bottleneck with this
	// probability, modeling overlay cross-traffic losses beyond the
	// middlebox's control (the §4.4 OverQoS discussion: TAQ assumes a
	// low-loss underlay; this knob measures its sensitivity).
	ExternalLoss float64
	// AccessJitter adds a uniform random delay in [0, AccessJitter)
	// to each packet's access path, breaking the deterministic
	// ack-clock phase effects that otherwise let a winner flow keep a
	// droptail queue exactly full forever (the ns2 "overhead_"
	// randomization; Floyd & Jacobson's phase-effect fix). Default
	// 4 ms; set negative to disable.
	AccessJitter sim.Time
	// TwoWayObservation routes ack-path packets past the TAQ
	// middlebox for observation (§3.3's conventional two-way mode,
	// which makes RTT estimation "relatively easy"); without it TAQ
	// falls back to the one-way SYN/burst heuristics.
	TwoWayObservation bool
}

func (c *Config) fillDefaults() {
	if c.Bandwidth == 0 {
		c.Bandwidth = 1000 * link.Kbps
	}
	if c.PropRTT == 0 {
		c.PropRTT = 200 * sim.Millisecond
	}
	if c.TCP.MSS == 0 {
		c.TCP = tcp.DefaultConfig()
	}
	if c.BufferPackets == 0 {
		bdp := float64(c.Bandwidth) * c.PropRTT.Seconds() / 8 / float64(c.TCP.MSS)
		c.BufferPackets = int(bdp)
		if c.BufferPackets < 2 {
			c.BufferPackets = 2
		}
	}
	if c.Queue == "" {
		c.Queue = DropTail
	}
	if c.SFQBuckets == 0 {
		c.SFQBuckets = 64
	}
	if c.SliceWidth == 0 {
		c.SliceWidth = 20 * sim.Second
	}
	switch {
	case c.AccessJitter == 0:
		// The jitter must exceed one bottleneck serialization time or
		// ack-clocked flows stay phase-locked to queue departures
		// (arriving just as a slot frees) while competitors always
		// find the queue full.
		c.AccessJitter = 2 * c.Bandwidth.TxTime(c.TCP.MSS)
	case c.AccessJitter < 0:
		c.AccessJitter = 0
	}
}

// Flow bundles the endpoints of one connection in the network. For
// TCP flows Sender/Receiver are set; for TFRC flows (AddTFRCFlow)
// TFRCSender/TFRCReceiver are set instead.
type Flow struct {
	ID           packet.FlowID
	Pool         packet.PoolID
	Sender       *tcp.Sender
	Receiver     *tcp.Receiver
	TFRCSender   *tfrc.Sender
	TFRCReceiver *tfrc.Receiver
	RTT          sim.Time
	Started      sim.Time

	// deliver hands forward-path packets to the flow's receiver half.
	deliver func(*packet.Packet)
	// lastFwdArrival enforces per-flow FIFO ordering on the jittered
	// access path (jitter shifts arrivals but must not reorder a
	// flow's own packets).
	lastFwdArrival sim.Time
}

// Network is an instantiated dumbbell scenario.
type Network struct {
	Cfg    Config
	Engine *sim.Engine
	Link   *link.Link
	// Middlebox is non-nil when the queue discipline is TAQ and
	// Cfg.TAQShards is 0 (the classic single-middlebox wiring).
	Middlebox *core.TAQ
	// Sharded is non-nil when the queue discipline is TAQ and
	// Cfg.TAQShards ≥ 1: the flow-hash-partitioned middlebox. Its
	// Stats() includes the shared admission counters, which the
	// per-shard TAQ Stats do not carry.
	Sharded *core.Sharded
	// Slicer accumulates per-flow delivered bytes for fairness and
	// evolution analyses.
	Slicer *metrics.Slicer
	// Hangs tracks user-perceived hang times per pool.
	Hangs *metrics.HangTracker
	// Census, when non-nil (EnableCensus), tallies per-epoch packets
	// sent per flow at the bottleneck output.
	Census *metrics.Census
	// QueueDelays samples the queueing+serialization delay of every
	// 16th packet leaving the bottleneck (seconds).
	QueueDelays metrics.CDF
	delaySample uint64
	// Capture, when non-nil (EnableCapture), records per-packet
	// bottleneck events — the simulator's pcap (§2.3).
	Capture *capture.Recorder
	// Events, when non-nil (EnableObservability), receives the
	// structured trace of bottleneck activity.
	Events *obs.Recorder
	// Gauges, when non-nil (EnableGauges), samples the bottleneck
	// time series; callers Stop it (or Close the network) to flush.
	Gauges *obs.GaugeSet
	// Metrics, when non-nil (EnableMetrics), is the registry holding
	// the bottleneck's counters and histograms; FCT is its
	// flow-completion-time histogram, fed through ObserveFCT.
	Metrics *obs.Registry
	// FCT is nil until EnableMetrics.
	FCT *obs.Histogram
	// CoreMetrics is the TAQ middlebox's instrument bundle (nil until
	// EnableMetrics, or when the discipline is not TAQ); exposed so
	// callers can read counters for flight-recorder triggers.
	CoreMetrics *core.Metrics

	flows  map[packet.FlowID]*Flow
	nextID packet.FlowID

	// QueueArrivals and QueueDrops count packets offered to and
	// dropped at the bottleneck queue; ExternalDrops counts losses on
	// the post-bottleneck underlay (Config.ExternalLoss).
	QueueArrivals, QueueDrops, ExternalDrops uint64

	// OnQueueDrop, if set, observes every bottleneck drop.
	OnQueueDrop func(*packet.Packet)
}

// New builds a network from cfg.
func New(cfg Config) (*Network, error) {
	cfg.fillDefaults()
	n := &Network{
		Cfg:    cfg,
		Engine: sim.NewEngine(cfg.Seed),
		Slicer: metrics.NewSlicer(cfg.SliceWidth),
		Hangs:  metrics.NewHangTracker(),
		flows:  make(map[packet.FlowID]*Flow),
	}

	var disc queue.Discipline
	switch cfg.Queue {
	case DropTail:
		disc = queue.NewDropTail(cfg.BufferPackets)
	case RED:
		disc = queue.NewRED(queue.REDConfig{
			Capacity:    cfg.BufferPackets,
			MeanPktTime: cfg.Bandwidth.TxTime(cfg.TCP.MSS),
		}, n.Engine.Now, n.Engine.Rand())
	case SFQ:
		disc = queue.NewSFQ(cfg.SFQBuckets, cfg.BufferPackets)
	case TAQ:
		tcfg := core.DefaultConfig(cfg.Bandwidth, cfg.BufferPackets)
		if cfg.TAQ != nil {
			tcfg = *cfg.TAQ
			if tcfg.Rate == 0 {
				tcfg.Rate = cfg.Bandwidth
			}
			tcfg.FillDerived(cfg.BufferPackets)
		}
		if cfg.TAQShards >= 1 {
			sh := core.NewSharded(n.Engine, tcfg, cfg.TAQShards)
			sh.Start()
			n.Sharded = sh
			disc = sh
		} else {
			mb := core.New(n.Engine, tcfg)
			mb.Start()
			n.Middlebox = mb
			disc = mb
		}
	default:
		return nil, fmt.Errorf("topology: unknown queue kind %q", cfg.Queue)
	}
	disc.AddDropHook(func(p *packet.Packet) {
		n.QueueDrops++
		if n.Capture != nil {
			n.Capture.Record(n.Engine.Now(), capture.Drop, p)
		}
		if n.OnQueueDrop != nil {
			n.OnQueueDrop(p)
		}
	})

	// The bottleneck link's propagation delay is folded into per-flow
	// paths, so the link itself adds none.
	n.Link = link.New(n.Engine, cfg.Bandwidth, 0, disc, n.deliverForward)
	return n, nil
}

// MustNew is New for callers with static configs (panics on error).
func MustNew(cfg Config) *Network {
	n, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return n
}

// EnableCensus attaches a per-epoch packets-sent census at the
// bottleneck output, rolling every epoch (use the flows' RTT).
func (n *Network) EnableCensus(maxClass int, epoch sim.Time) {
	n.Census = metrics.NewCensus(maxClass)
	n.Census.ScheduleRolls(n.Engine, epoch)
}

// EnableCapture starts recording per-packet bottleneck events (drops
// and deliveries) — heavy for long runs; meant for trace analyses.
func (n *Network) EnableCapture() {
	n.Capture = &capture.Recorder{}
}

// EnableObservability attaches a trace recorder to the bottleneck: the
// link records the generic enqueue/dequeue lifecycle, the TAQ
// middlebox (when present) its class-specific drop/transition/admission
// events; for baseline disciplines a chained drop hook records the
// drops instead. Call before the run starts; rec may be nil to leave
// tracing off.
func (n *Network) EnableObservability(rec *obs.Recorder) {
	n.Events = rec
	if rec == nil {
		return
	}
	n.Link.SetRecorder(rec)
	if n.Sharded != nil {
		n.Sharded.SetRecorder(rec)
		return
	}
	if n.Middlebox != nil {
		n.Middlebox.SetRecorder(rec)
		return
	}
	n.Link.Discipline().AddDropHook(func(p *packet.Packet) {
		rec.Drop(n.Engine.Now(), p, -1, p.Retransmit)
	})
}

// EnableMetrics creates the network's metrics registry and installs
// the full schema: link transmit/sojourn instruments, the
// flow-completion-time histogram, and — with a TAQ middlebox — the
// per-class drop/serve/delay and tracker/admission instruments. Call
// before the run starts; the returned registry snapshots at any time
// (obs.MetricsSnapshot), typically once at run end for the
// -metrics-out artifact.
func (n *Network) EnableMetrics() *obs.Registry {
	if n.Metrics != nil {
		return n.Metrics
	}
	reg := obs.NewRegistry()
	n.Link.SetMetrics(link.NewMetrics(reg))
	n.FCT = obs.FCTHistogram(reg)
	switch {
	case n.Sharded != nil:
		// One shared registry: its cells are atomics, and the sim path
		// drives every shard from one engine anyway.
		n.CoreMetrics = core.NewMetrics(reg)
		n.Sharded.SetMetrics(n.CoreMetrics)
	case n.Middlebox != nil:
		n.CoreMetrics = core.NewMetrics(reg)
		n.Middlebox.SetMetrics(n.CoreMetrics)
	}
	n.Metrics = reg
	return reg
}

// ObserveFCT records a completed transfer into the FCT histogram,
// classed by size. A no-op until EnableMetrics.
func (n *Network) ObserveFCT(started sim.Time, sizeBytes int) {
	if n.FCT == nil {
		return
	}
	n.FCT.ObserveAt(obs.FCTSizeClass(sizeBytes), n.Engine.Now()-started)
}

// EnableGauges starts periodic sampling of the bottleneck time series
// onto sink: queue depth and bytes, cumulative arrivals/drops, link
// utilization, and — with a TAQ middlebox — per-class queue depths,
// active/recovering flow counts, the loss-rate EWMA, and the admission
// backlog. Returns the running gauge set (also kept in n.Gauges);
// Stop it after the run to flush the sink.
func (n *Network) EnableGauges(interval sim.Time, sink obs.SeriesSink) *obs.GaugeSet {
	g := obs.NewGaugeSet(n.Engine, interval, sink)
	disc := n.Link.Discipline()
	g.RegisterInt("qlen", disc.Len)
	g.RegisterInt("qbytes", disc.Bytes)
	g.Register("arrivals", func() float64 { return float64(n.QueueArrivals) })
	g.Register("drops", func() float64 { return float64(n.QueueDrops) })
	g.Register("utilization", n.Utilization)
	if mb := n.taqGauges(); mb != nil {
		g.RegisterInt("qlen_recovery", func() int { return mb.QueueLen(core.ClassRecovery) })
		g.RegisterInt("qlen_newflow", func() int { return mb.QueueLen(core.ClassNewFlow) })
		g.RegisterInt("qlen_overpenalized", func() int { return mb.QueueLen(core.ClassOverPenalized) })
		g.RegisterInt("qlen_belowfair", func() int { return mb.QueueLen(core.ClassBelowFair) })
		g.RegisterInt("qlen_abovefair", func() int { return mb.QueueLen(core.ClassAboveFair) })
		g.RegisterInt("active_flows", mb.ActiveFlows)
		g.RegisterInt("recovering_flows", mb.RecoveringFlows)
		g.Register("loss_ewma", mb.LossEWMA)
		g.RegisterInt("waiting_pools", mb.WaitingPools)
	}
	g.Start()
	n.Gauges = g
	return g
}

// taqGauge is the middlebox surface the gauge set samples; *core.TAQ
// and *core.Sharded both provide it (the sharded methods sum or read
// the shared aggregator).
type taqGauge interface {
	QueueLen(core.Class) int
	ActiveFlows() int
	RecoveringFlows() int
	LossEWMA() float64
	WaitingPools() int
}

// taqGauges returns whichever middlebox form is wired, or nil.
func (n *Network) taqGauges() taqGauge {
	if n.Sharded != nil {
		return n.Sharded
	}
	if n.Middlebox != nil {
		return n.Middlebox
	}
	return nil
}

// observeReverse hands an ack-path packet to the middlebox (§3.3
// two-way mode); the sharded form routes it to the owning shard.
func (n *Network) observeReverse(p *packet.Packet) {
	if n.Sharded != nil {
		n.Sharded.ObserveReverse(p)
		return
	}
	n.Middlebox.ObserveReverse(p)
}

// hasTAQ reports whether any middlebox form is wired.
func (n *Network) hasTAQ() bool { return n.Middlebox != nil || n.Sharded != nil }

// accessDelay returns the jittered access delay for the next packet of
// f, never earlier than the flow's previous packet (FIFO per flow).
func (n *Network) accessDelay(f *Flow, base sim.Time) sim.Time {
	d := base
	if n.Cfg.AccessJitter > 0 {
		d += sim.Time(n.Engine.Rand().Int63n(int64(n.Cfg.AccessJitter)))
	}
	at := n.Engine.Now() + d
	if at < f.lastFwdArrival {
		at = f.lastFwdArrival
	}
	f.lastFwdArrival = at
	return at - n.Engine.Now()
}

// deliverForward dispatches packets leaving the bottleneck to the
// destination receiver, after the flow's residual one-way delay.
func (n *Network) deliverForward(p *packet.Packet) {
	f, ok := n.flows[p.Flow]
	if !ok {
		return
	}
	if n.Cfg.ExternalLoss > 0 && n.Engine.Rand().Float64() < n.Cfg.ExternalLoss {
		n.ExternalDrops++
		return
	}
	if p.Kind == packet.Data && n.Census != nil {
		n.Census.Observe(p.Flow)
	}
	if n.Capture != nil {
		n.Capture.Record(n.Engine.Now(), capture.Deliver, p)
	}
	n.delaySample++
	if n.delaySample%16 == 0 {
		n.QueueDelays.Add((n.Engine.Now() - p.Enqueued).Seconds())
	}
	sim.After(n.Engine, f.RTT/4, func() { f.deliver(p) })
}

// AddFlow creates a TCP flow with the given app, starting its
// handshake at startAt. Pool groups flows for hang tracking and
// admission control; use packet.PoolNone for independent flows.
func (n *Network) AddFlow(pool packet.PoolID, app tcp.App, startAt sim.Time) *Flow {
	id := n.nextID
	n.nextID++

	rtt := n.Cfg.PropRTT
	if j := n.Cfg.RTTJitter; j > 0 {
		rtt = sim.Time(float64(rtt) * (1 - j + 2*j*n.Engine.Rand().Float64()))
	}
	f := &Flow{ID: id, Pool: pool, RTT: rtt, Started: startAt}

	// Reverse path: receiver → sender, uncongested, half the RTT.
	// In two-way mode the middlebox observes acks in passing at the
	// midpoint.
	f.Receiver = tcp.NewReceiver(n.Engine, n.Cfg.TCP, id, pool, func(p *packet.Packet) {
		if n.Cfg.TwoWayObservation && n.hasTAQ() {
			sim.After(n.Engine, rtt/4, func() {
				n.observeReverse(p)
				sim.After(n.Engine, rtt/4, func() { f.Sender.Deliver(p) })
			})
			return
		}
		sim.After(n.Engine, rtt/2, func() { f.Sender.Deliver(p) })
	})
	mss := n.Cfg.TCP.MSS
	f.Receiver.OnDeliver = func(segs int) {
		now := n.Engine.Now()
		n.Slicer.Record(id, now, segs*mss)
		if pool != packet.PoolNone {
			n.Hangs.Touch(pool, now)
		}
	}

	// Forward path: sender → (access delay rtt/4 + jitter) → queue.
	f.Sender = tcp.NewSender(n.Engine, n.Cfg.TCP, id, pool, app, func(p *packet.Packet) {
		sim.After(n.Engine, n.accessDelay(f, rtt/4), func() {
			n.QueueArrivals++
			n.Link.Enqueue(p)
		})
	})

	f.deliver = f.Receiver.Deliver
	n.flows[id] = f
	n.Slicer.Register(id, startAt)
	if n.Census != nil {
		n.Census.Register(id)
	}
	if pool != packet.PoolNone {
		n.Hangs.Start(pool, startAt)
	}
	n.Engine.ScheduleAt(startAt, f.Sender.Start)
	return f
}

// AddTFRCFlow creates a TFRC (equation-rate-controlled) flow starting
// at startAt — the baseline the paper's introduction rules out for
// sub-packet regimes.
func (n *Network) AddTFRCFlow(pool packet.PoolID, startAt sim.Time) *Flow {
	id := n.nextID
	n.nextID++
	rtt := n.Cfg.PropRTT
	if j := n.Cfg.RTTJitter; j > 0 {
		rtt = sim.Time(float64(rtt) * (1 - j + 2*j*n.Engine.Rand().Float64()))
	}
	f := &Flow{ID: id, Pool: pool, RTT: rtt, Started: startAt}

	cfg := tfrc.DefaultConfig()
	cfg.MSS = n.Cfg.TCP.MSS
	cfg.InitialRTT = rtt
	f.TFRCReceiver = tfrc.NewReceiver(n.Engine, cfg, id, pool, func(p *packet.Packet) {
		sim.After(n.Engine, rtt/2, func() { f.TFRCSender.Deliver(p) })
	})
	mss := cfg.MSS
	f.TFRCReceiver.OnDeliver = func(pkts int) {
		now := n.Engine.Now()
		n.Slicer.Record(id, now, pkts*mss)
		if pool != packet.PoolNone {
			n.Hangs.Touch(pool, now)
		}
	}
	f.TFRCSender = tfrc.NewSender(n.Engine, cfg, id, pool, func(p *packet.Packet) {
		sim.After(n.Engine, n.accessDelay(f, rtt/4), func() {
			n.QueueArrivals++
			n.Link.Enqueue(p)
		})
	})
	f.deliver = f.TFRCReceiver.Deliver
	n.flows[id] = f
	n.Slicer.Register(id, startAt)
	if n.Census != nil {
		n.Census.Register(id)
	}
	if pool != packet.PoolNone {
		n.Hangs.Start(pool, startAt)
	}
	n.Engine.ScheduleAt(startAt, f.TFRCSender.Start)
	return f
}

// Flow returns a flow by ID, or nil.
func (n *Network) Flow(id packet.FlowID) *Flow { return n.flows[id] }

// NumFlows returns the number of flows added.
func (n *Network) NumFlows() int { return len(n.flows) }

// Run advances the simulation to the given virtual time.
func (n *Network) Run(until sim.Time) { n.Engine.RunUntil(until) }

// LossRate returns the measured drop fraction at the bottleneck queue.
func (n *Network) LossRate() float64 {
	if n.QueueArrivals == 0 {
		return 0
	}
	return float64(n.QueueDrops) / float64(n.QueueArrivals)
}

// Utilization returns bottleneck utilization over [0, now].
func (n *Network) Utilization() float64 {
	return n.Link.Utilization(n.Engine.Now())
}

// Goodput returns the fraction of the bottleneck capacity delivered as
// useful (first-time, in-order) data over [0, now] — the §2.3 metric
// that "remains consistently high (greater than 90%)" even while
// fairness collapses. Unlike Utilization it excludes retransmitted
// and duplicate bytes.
func (n *Network) Goodput() float64 {
	elapsed := n.Engine.Now().Seconds()
	if elapsed <= 0 {
		return 0
	}
	ids := make([]packet.FlowID, 0, len(n.flows))
	for id := range n.flows {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	var bytes float64
	for _, id := range ids {
		bytes += n.Slicer.FlowTotal(id)
	}
	return bytes * 8 / elapsed / float64(n.Cfg.Bandwidth)
}

// AggregateTimeouts sums sender timeout statistics across TCP flows.
func (n *Network) AggregateTimeouts() (timeouts, repetitive uint64) {
	for _, f := range n.flows {
		if f.Sender == nil {
			continue
		}
		timeouts += f.Sender.Stats.Timeouts
		repetitive += f.Sender.Stats.RepetitiveTimeouts
	}
	return
}

// FairSharePerFlow returns the ideal per-flow fair share in bits per
// second (C/N), the x-axis of Figs 2, 8 and 11.
func (n *Network) FairSharePerFlow() float64 {
	if len(n.flows) == 0 {
		return float64(n.Cfg.Bandwidth)
	}
	return float64(n.Cfg.Bandwidth) / float64(len(n.flows))
}
