package topology

import (
	"testing"

	"taq/internal/packet"
	"taq/internal/sim"
	"taq/internal/tcp"
)

// runFingerprint runs a small TAQ dumbbell — a few bulk flows plus
// sized transfers with jittered starts — and condenses everything
// order-sensitive about the run into one comparable record.
type fingerprint struct {
	completions map[packet.FlowID]sim.Time
	totals      map[packet.FlowID]float64
	arrivals    uint64
	drops       uint64
	processed   uint64
}

func runFingerprint(t *testing.T, seed int64) fingerprint {
	t.Helper()
	n := MustNew(Config{
		Seed:              seed,
		Queue:             TAQ,
		TwoWayObservation: true,
	})

	for i := 0; i < 3; i++ {
		n.AddFlow(packet.PoolNone, tcp.BulkApp{}, sim.Time(i)*sim.Second)
	}
	fp := fingerprint{
		completions: make(map[packet.FlowID]sim.Time),
		totals:      make(map[packet.FlowID]float64),
	}
	for i := 0; i < 4; i++ {
		app := &tcp.SizedApp{Total: 30 + 10*i}
		fl := n.AddFlow(packet.PoolNone, app, sim.Time(5+2*i)*sim.Second)
		id := fl.ID
		app.OnComplete = func() { fp.completions[id] = n.Engine.Now() }
	}

	n.Run(60 * sim.Second)

	for id := range n.flows {
		fp.totals[id] = n.Slicer.FlowTotal(id)
	}
	fp.arrivals = n.QueueArrivals
	fp.drops = n.QueueDrops
	fp.processed = n.Engine.Processed
	return fp
}

// TestDeterministicReplay is the determinism regression gate: two runs
// with the same seed must agree event-for-event. Map-iteration order or
// any wall-clock leakage into the simulated path shows up here as a
// diverging completion time, byte total, or event count.
func TestDeterministicReplay(t *testing.T) {
	a := runFingerprint(t, 42)
	b := runFingerprint(t, 42)

	if len(a.completions) == 0 {
		t.Fatal("no sized flows completed within the horizon; scenario too tight to compare")
	}
	if len(a.completions) != len(b.completions) {
		t.Fatalf("completed flows differ: %d vs %d", len(a.completions), len(b.completions))
	}
	for id, at := range a.completions {
		if bt, ok := b.completions[id]; !ok || bt != at {
			t.Errorf("flow %d completion: run A %v, run B %v", id, at, bt)
		}
	}
	for id, av := range a.totals {
		if bv := b.totals[id]; bv != av {
			t.Errorf("flow %d delivered bytes: run A %v, run B %v", id, av, bv)
		}
	}
	if a.arrivals != b.arrivals || a.drops != b.drops {
		t.Errorf("queue counters diverged: arrivals %d/%d drops %d/%d",
			a.arrivals, b.arrivals, a.drops, b.drops)
	}
	if a.processed != b.processed {
		t.Errorf("event counts diverged: %d vs %d callbacks", a.processed, b.processed)
	}

	// Different seeds must actually change the run, or the fingerprint
	// (and the jitter plumbing) is vacuous.
	c := runFingerprint(t, 43)
	if c.processed == a.processed && c.drops == a.drops {
		t.Error("seed 43 reproduced seed 42 exactly; fingerprint is not sensitive to the RNG")
	}
}
