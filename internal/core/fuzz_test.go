package core

import (
	"testing"

	"taq/internal/link"
	"taq/internal/packet"
	"taq/internal/sim"
)

// FuzzTrackerTransitions drives the per-flow state machine with an
// arbitrary interleaving of SYNs, data (new and retransmitted), acks,
// TAQ drops, time advances, and silence scans. The tracker must never
// panic and must keep every flow inside the declared state set with
// sane bookkeeping, no matter how hostile the observation order is —
// the middlebox cannot choose what the network shows it.
func FuzzTrackerTransitions(f *testing.F) {
	f.Add([]byte{0x00, 0x11, 0x22, 0x33})
	f.Add([]byte{0x05, 0x10, 0x25, 0x30, 0x45, 0x50, 0x65, 0x70})
	// One flow: syn, data, rtx, drop, long silence, scan, recovery.
	f.Add([]byte{0x00, 0x10, 0x20, 0x40, 0xf5, 0x50, 0x20})
	// Interleave two flows with drops and scans.
	f.Add([]byte{0x00, 0x01, 0x10, 0x11, 0x40, 0x31, 0x55, 0x10, 0x21})

	f.Fuzz(func(t *testing.T, data []byte) {
		eng := sim.NewEngine(1)
		cfg := DefaultConfig(link.Bps(10_000_000), 50)
		tr := newTracker(eng, cfg)

		seqs := map[packet.FlowID]int{} // next fresh sequence per flow

		for _, b := range data {
			op := int(b >> 4)
			flow := packet.FlowID(b&0x03) + 1
			// Advance a quarter epoch per op, more for high nibbles, so
			// silences and epoch rolls are reachable within small inputs.
			step := cfg.DefaultEpoch / 4 * sim.Time(1+op)
			eng.RunUntil(eng.Now() + step)

			switch op % 6 {
			case 0: // connection open (or SYN retry)
				tr.observe(&packet.Packet{Flow: flow, Kind: packet.Syn, Size: 40})
			case 1: // fresh data
				p := &packet.Packet{Flow: flow, Kind: packet.Data, Seq: seqs[flow], Size: 500}
				seqs[flow]++
				tr.observe(p)
				tr.observeForwarded(p)
			case 2: // retransmission of the oldest segment
				p := &packet.Packet{Flow: flow, Kind: packet.Data, Seq: 0, Size: 500, Retransmit: true}
				tr.observe(p)
				tr.observeForwarded(p)
			case 3: // returning ack for everything sent so far
				tr.observeReverse(&packet.Packet{Flow: flow, Kind: packet.Ack, CumAck: seqs[flow], Size: 40})
			case 4: // TAQ drops this flow's next packet
				p := &packet.Packet{Flow: flow, Kind: packet.Data, Seq: seqs[flow], Size: 500}
				_, rtx := tr.observe(p)
				tr.recordDrop(p, rtx)
			case 5: // periodic silence scan
				tr.scan()
			}

			for i := range tr.store.recs {
				fl := &tr.store.recs[i]
				if !fl.inUse {
					continue
				}
				if int(fl.state) >= numFlowStates {
					t.Fatalf("flow %d in undeclared state %d", fl.id, fl.state)
				}
				if slot, ok := tr.store.idx.get(int32(fl.id)); !ok || slot != int32(i) {
					t.Fatalf("flow %d in slot %d indexed as (%d,%v)", fl.id, i, slot, ok)
				}
				if fl.epoch <= 0 {
					t.Fatalf("flow %d epoch %v not positive", fl.id, fl.epoch)
				}
				if fl.outstandingDrops < 0 {
					t.Fatalf("flow %d outstandingDrops %d negative", fl.id, fl.outstandingDrops)
				}
			}
			// The census partitions the flow table: every flow is in
			// exactly one declared state.
			total := 0
			for st, n := range tr.stateCensus() {
				if st >= numFlowStates || n < 0 {
					t.Fatalf("census has state %v -> %d", st, n)
				}
				total += n
			}
			if total != tr.store.len() {
				t.Fatalf("census counts %d flows, table has %d", total, tr.store.len())
			}
			// Every incremental aggregate must match a from-scratch walk
			// of the flow table, no matter the observation order.
			checkTrackerEquivalence(t, tr, eng.Now())
		}
	})
}
