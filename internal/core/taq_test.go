package core

import (
	"testing"

	"taq/internal/link"
	"taq/internal/packet"
	"taq/internal/sim"
)

func testConfig() Config {
	cfg := DefaultConfig(600*link.Kbps, 50)
	return cfg
}

func newTestTAQ(capacity int) (*sim.Engine, *TAQ) {
	e := sim.NewEngine(1)
	cfg := testConfig()
	cfg.Capacity = capacity
	t := New(e, cfg)
	t.Start()
	return e, t
}

func dataPkt(flow packet.FlowID, seq int) *packet.Packet {
	return &packet.Packet{Flow: flow, Pool: packet.PoolNone, Kind: packet.Data, Seq: seq, Size: 500}
}

func synPkt(flow packet.FlowID, pool packet.PoolID) *packet.Packet {
	return &packet.Packet{Flow: flow, Pool: pool, Kind: packet.Syn, Size: 40}
}

func TestFlowStateStrings(t *testing.T) {
	states := []FlowState{StateNew, StateSlowStart, StateNormal, StateLossRecovery,
		StateTimeoutSilence, StateTimeoutRecovery, StateExtendedSilence, StateIdleSilence}
	seen := map[string]bool{}
	for _, s := range states {
		str := s.String()
		if str == "Unknown" || seen[str] {
			t.Errorf("state %d stringifies to %q", s, str)
		}
		seen[str] = true
	}
	if FlowState(99).String() != "Unknown" {
		t.Error("invalid state should be Unknown")
	}
}

func TestClassStrings(t *testing.T) {
	for c := Class(0); int(c) < numClasses; c++ {
		if c.String() == "Unknown" {
			t.Errorf("class %d has no name", c)
		}
	}
	if Class(99).String() != "Unknown" {
		t.Error("invalid class should be Unknown")
	}
}

func TestTrackerNewFlowLifecycle(t *testing.T) {
	e, q := newTestTAQ(50)
	q.Enqueue(synPkt(1, packet.PoolNone))
	if st, ok := q.FlowStateOf(1); !ok || st != StateNew {
		t.Fatalf("after SYN: state %v ok=%v", st, ok)
	}
	e.RunUntil(100 * sim.Millisecond)
	q.Enqueue(dataPkt(1, 0))
	if st, _ := q.FlowStateOf(1); st != StateSlowStart {
		t.Errorf("after first data: %v, want SlowStart", st)
	}
	if _, ok := q.FlowStateOf(42); ok {
		t.Error("unknown flow reported as tracked")
	}
}

func TestTrackerRetransmissionDetection(t *testing.T) {
	e, q := newTestTAQ(50)
	q.Enqueue(synPkt(1, packet.PoolNone))
	e.RunUntil(50 * sim.Millisecond)
	q.Enqueue(dataPkt(1, 0))
	q.Enqueue(dataPkt(1, 1))
	// Drain so the next enqueue isn't affected by the buffer.
	for q.Dequeue() != nil {
	}
	// Re-sending seq 0 must be classified as a retransmission and
	// move the (externally-lossy) flow to LossRecovery.
	q.Enqueue(dataPkt(1, 0))
	if st, _ := q.FlowStateOf(1); st != StateLossRecovery {
		t.Errorf("after observed rtx: %v, want LossRecovery", st)
	}
	// The retransmission must sit in the Recovery queue.
	if q.QueueLen(ClassRecovery) != 1 {
		t.Errorf("recovery queue len = %d, want 1", q.QueueLen(ClassRecovery))
	}
}

func TestDropOfRetransmissionPredictsTimeout(t *testing.T) {
	e := sim.NewEngine(1)
	cfg := testConfig()
	cfg.RecoveryCap = 1
	q := New(e, cfg)
	q.Start()
	q.Enqueue(synPkt(1, packet.PoolNone))
	q.Enqueue(synPkt(2, packet.PoolNone))
	e.RunUntil(50 * sim.Millisecond)
	q.Enqueue(dataPkt(1, 0))
	q.Enqueue(dataPkt(2, 0))
	for q.Dequeue() != nil {
	}
	// Two retransmissions with RecoveryCap 1: one must be dropped,
	// and its flow must be marked TimeoutSilence.
	q.Enqueue(dataPkt(1, 0))
	q.Enqueue(dataPkt(2, 0))
	if q.Stats.DropsByClass[ClassRecovery] != 1 {
		t.Fatalf("recovery drops = %d, want 1", q.Stats.DropsByClass[ClassRecovery])
	}
	silenced := 0
	for _, id := range []packet.FlowID{1, 2} {
		if st, _ := q.FlowStateOf(id); st == StateTimeoutSilence {
			silenced++
		}
	}
	if silenced != 1 {
		t.Errorf("flows in TimeoutSilence = %d, want 1", silenced)
	}
}

func TestScanMovesQuietFlowsToSilence(t *testing.T) {
	e, q := newTestTAQ(50)
	q.Enqueue(synPkt(1, packet.PoolNone))
	e.RunUntil(50 * sim.Millisecond)
	q.Enqueue(dataPkt(1, 0))
	for q.Dequeue() != nil {
	}
	// Drop a fresh (non-rtx) packet so the flow enters LossRecovery,
	// then go silent: the scan should infer a timeout silence.
	q.Enqueue(dataPkt(1, 1))
	// Force a drop via a zero-capacity-ish budget: instead, record
	// directly through a victim eviction by filling the buffer.
	for q.Dequeue() != nil {
	}
	q.tracker.recordDrop(dataPkt(1, 2), false)
	if st, _ := q.FlowStateOf(1); st != StateLossRecovery {
		t.Fatalf("state %v, want LossRecovery", st)
	}
	e.RunUntil(2 * sim.Second)
	if st, _ := q.FlowStateOf(1); st != StateTimeoutSilence && st != StateExtendedSilence {
		t.Errorf("after long silence: %v, want TimeoutSilence/ExtendedSilence", st)
	}
	// Much later the silence becomes extended.
	e.RunUntil(5 * sim.Second)
	if st, _ := q.FlowStateOf(1); st != StateExtendedSilence {
		t.Errorf("after longer silence: %v, want ExtendedSilence", st)
	}
}

func TestIdleFlowBecomesIdleSilence(t *testing.T) {
	e, q := newTestTAQ(50)
	q.Enqueue(synPkt(1, packet.PoolNone))
	e.RunUntil(50 * sim.Millisecond)
	q.Enqueue(dataPkt(1, 0))
	for q.Dequeue() != nil {
	}
	// No drops, just silence (e.g. pipelined connection between
	// objects): dummy idle state, not timeout.
	e.RunUntil(3 * sim.Second)
	if st, _ := q.FlowStateOf(1); st != StateIdleSilence {
		t.Errorf("quiet healthy flow state %v, want IdleSilence", st)
	}
}

func TestFlowExpiry(t *testing.T) {
	e, q := newTestTAQ(50)
	q.Enqueue(synPkt(1, packet.PoolNone))
	e.RunUntil(100 * sim.Second) // > FlowExpiry (60s)
	if _, ok := q.FlowStateOf(1); ok {
		t.Error("expired flow still tracked")
	}
}

func TestRecoveryQueuePriorityBySilence(t *testing.T) {
	var rq recoveryQueue
	rq.push(dataPkt(1, 0), 1*sim.Second)
	rq.push(dataPkt(2, 0), 5*sim.Second)
	rq.push(dataPkt(3, 0), 2*sim.Second)
	if p := rq.popBest(); p.Flow != 2 {
		t.Errorf("best = flow %d, want 2 (longest silence)", p.Flow)
	}
	if p := rq.popWorst(); p.Flow != 1 {
		t.Errorf("worst = flow %d, want 1 (shortest silence)", p.Flow)
	}
	if p := rq.popBest(); p.Flow != 3 {
		t.Errorf("remaining = flow %d, want 3", p.Flow)
	}
	if rq.popBest() != nil || rq.popWorst() != nil {
		t.Error("empty recovery queue should return nil")
	}
}

func TestRecoveryQueueFIFOWithinEqualSilence(t *testing.T) {
	var rq recoveryQueue
	for i := 0; i < 5; i++ {
		rq.push(dataPkt(packet.FlowID(i), 0), sim.Second)
	}
	for i := 0; i < 5; i++ {
		if p := rq.popBest(); p.Flow != packet.FlowID(i) {
			t.Fatalf("pop %d = flow %d, want FIFO", i, p.Flow)
		}
	}
}

func TestSchedulerLevelOrdering(t *testing.T) {
	e, q := newTestTAQ(50)
	_ = e
	// Manually place packets in different classes via the internal
	// queues to verify strict level ordering.
	q.q.fifos[ClassAboveFair].Push(dataPkt(10, 0))
	q.q.fifos[ClassBelowFair].Push(dataPkt(11, 0))
	q.q.recovery.push(dataPkt(12, 0), sim.Second)
	// Level 1 first.
	if p := q.Dequeue(); p.Flow != 12 {
		t.Errorf("first dequeue flow %d, want 12 (recovery)", p.Flow)
	}
	// Then Level 2.
	if p := q.Dequeue(); p.Flow != 11 {
		t.Errorf("second dequeue flow %d, want 11 (below fair)", p.Flow)
	}
	// Then Level 3.
	if p := q.Dequeue(); p.Flow != 10 {
		t.Errorf("third dequeue flow %d, want 10 (above fair)", p.Flow)
	}
	if q.Dequeue() != nil {
		t.Error("empty dequeue should be nil")
	}
}

func TestRecoveryShareCap(t *testing.T) {
	e := sim.NewEngine(1)
	cfg := testConfig()
	cfg.RecoveryShare = 0.25
	cfg.RecoveryCap = 1000
	cfg.Capacity = 1000
	q := New(e, cfg)
	// 100 recovery + 100 below-fair packets queued.
	for i := 0; i < 100; i++ {
		q.q.recovery.push(dataPkt(1, i), sim.Second)
		q.q.fifos[ClassBelowFair].Push(dataPkt(2, i))
	}
	recovered := 0
	for i := 0; i < 100; i++ {
		p := q.Dequeue()
		if p.Flow == 1 {
			recovered++
		}
	}
	if recovered < 20 || recovered > 30 {
		t.Errorf("recovery served %d of first 100, want ≈25 (share cap)", recovered)
	}
	// Work conservation: once below-fair drains, recovery still flows.
	remaining := 0
	for q.Dequeue() != nil {
		remaining++
	}
	if remaining != 100 {
		t.Errorf("drained %d more, want the remaining 100", remaining)
	}
}

func TestBufferEvictionOrder(t *testing.T) {
	e := sim.NewEngine(1)
	cfg := testConfig()
	cfg.Capacity = 2
	q := New(e, cfg)
	var dropped []*packet.Packet
	q.SetDropHook(func(p *packet.Packet) { dropped = append(dropped, p) })
	// Fill with two below-fair packets (flows are unknown: they
	// classify via tracker as new flows → NewFlow queue; so drive
	// classification through the internal queues directly).
	q.q.fifos[ClassBelowFair].Push(dataPkt(1, 0))
	q.q.fifos[ClassAboveFair].Push(dataPkt(2, 0))
	q.q.recovery.push(dataPkt(3, 0), sim.Second)
	// Budget exceeded on next enqueue: eviction removes the AboveFair
	// packet first, then BelowFair, bringing the total back to the
	// capacity; the recovery packet survives.
	q.Enqueue(synPkt(4, packet.PoolNone))
	if len(dropped) != 2 || dropped[0].Flow != 2 || dropped[1].Flow != 1 {
		t.Fatalf("dropped = %v, want [above-fair 2, below-fair 1]", dropped)
	}
	if q.Len() != 2 {
		t.Errorf("Len = %d, want capacity 2", q.Len())
	}
	if q.QueueLen(ClassRecovery) != 1 {
		t.Error("recovery packet was evicted despite lower-value victims")
	}
}

func TestNewFlowQueueCapDropsSyns(t *testing.T) {
	e := sim.NewEngine(1)
	cfg := testConfig()
	cfg.NewFlowCap = 2
	cfg.Capacity = 100
	q := New(e, cfg)
	drops := 0
	q.SetDropHook(func(*packet.Packet) { drops++ })
	for i := 0; i < 5; i++ {
		q.Enqueue(synPkt(packet.FlowID(i), packet.PoolNone))
	}
	if drops != 3 {
		t.Errorf("drops = %d, want 3 (NewFlowCap 2)", drops)
	}
	if q.QueueLen(ClassNewFlow) != 2 {
		t.Errorf("newflow len = %d", q.QueueLen(ClassNewFlow))
	}
}

func TestLossRateMonitor(t *testing.T) {
	e := sim.NewEngine(1)
	cfg := testConfig()
	cfg.Capacity = 1
	q := New(e, cfg)
	q.Start()
	// 1 packet stays queued, the rest dropped: loss ≈ (n-1)/n.
	for i := 0; i < 10; i++ {
		q.Enqueue(dataPkt(1, i))
	}
	if lr := q.LossRate(); lr < 0.5 {
		t.Errorf("loss rate = %v, want high", lr)
	}
	if q.Stats.Arrivals != 10 {
		t.Errorf("arrivals = %d", q.Stats.Arrivals)
	}
}

func TestAdmissionPoolFIFO(t *testing.T) {
	e := sim.NewEngine(1)
	cfg := testConfig()
	cfg.AdmissionControl = true
	cfg.Twait = 5 * sim.Second
	q := New(e, cfg)
	q.Start()
	// Force high loss so new pools must wait.
	q.setLossWindow(100, 50, 0, 0)
	if q.LossRate() < cfg.PThresh {
		t.Fatal("test setup: loss rate should exceed threshold")
	}
	q.Enqueue(synPkt(1, 100))
	q.Enqueue(synPkt(2, 200))
	if q.Stats.SynsBlocked != 2 {
		t.Fatalf("SynsBlocked = %d, want 2", q.Stats.SynsBlocked)
	}
	if q.WaitingPools() != 2 {
		t.Fatalf("waiting pools = %d, want 2", q.WaitingPools())
	}
	// Loss clears: the first waiting pool is admitted on retry, the
	// second must wait its turn.
	q.setLossWindow(100, 0, 100, 0)
	q.Enqueue(synPkt(2, 200))
	if q.Stats.SynsBlocked != 3 {
		t.Errorf("pool 200 admitted out of order (blocked=%d)", q.Stats.SynsBlocked)
	}
	q.Enqueue(synPkt(1, 100))
	if got := q.Stats.PoolsAdmitted; got != 1 {
		t.Errorf("PoolsAdmitted = %d, want 1", got)
	}
	// Now pool 200 is head of line.
	q.Enqueue(synPkt(2, 200))
	if got := q.Stats.PoolsAdmitted; got != 2 {
		t.Errorf("PoolsAdmitted = %d, want 2", got)
	}
	if q.Stats.PoolsWaited != 2 {
		t.Errorf("PoolsWaited = %d, want 2", q.Stats.PoolsWaited)
	}
}

func TestAdmissionTwaitGuarantee(t *testing.T) {
	e := sim.NewEngine(1)
	cfg := testConfig()
	cfg.AdmissionControl = true
	cfg.Twait = 3 * sim.Second
	q := New(e, cfg)
	q.Start()
	q.setLossWindow(100, 50, 0, 0) // permanent high loss
	q.Enqueue(synPkt(1, 100))
	if q.Stats.SynsBlocked != 1 {
		t.Fatal("pool should be blocked initially")
	}
	e.RunUntil(4 * sim.Second)
	q.setLossWindow(100, 50, 100, 50) // keep loss high across windows
	q.Enqueue(synPkt(1, 100))
	if q.Stats.PoolsAdmitted != 1 {
		t.Error("pool not admitted after Twait despite guarantee")
	}
}

func TestAdmissionPoolNoneAlwaysAllowed(t *testing.T) {
	e := sim.NewEngine(1)
	cfg := testConfig()
	cfg.AdmissionControl = true
	q := New(e, cfg)
	q.setLossWindow(100, 90, 0, 0)
	q.Enqueue(synPkt(1, packet.PoolNone))
	if q.Stats.SynsBlocked != 0 {
		t.Error("pool-less SYN blocked")
	}
}

func TestDataOfUnadmittedPoolDropped(t *testing.T) {
	e := sim.NewEngine(1)
	cfg := testConfig()
	cfg.AdmissionControl = true
	q := New(e, cfg)
	q.setLossWindow(100, 90, 0, 0)
	q.Enqueue(synPkt(1, 100)) // blocked
	p := dataPkt(1, 0)
	p.Pool = 100
	q.Enqueue(p)
	if q.Len() != 0 {
		t.Error("data of unadmitted pool was queued")
	}
}

func TestFairShareTracksActiveFlows(t *testing.T) {
	e, q := newTestTAQ(100)
	if q.FairShare() != float64(600*link.Kbps) {
		t.Errorf("initial fair share = %v", q.FairShare())
	}
	for i := 0; i < 6; i++ {
		q.Enqueue(synPkt(packet.FlowID(i), packet.PoolNone))
	}
	e.RunUntil(500 * sim.Millisecond) // let a scan run
	if fs := q.FairShare(); fs > 110_000 || fs < 90_000 {
		t.Errorf("fair share = %v, want ≈100k (600k/6)", fs)
	}
	if q.ActiveFlows() != 6 {
		t.Errorf("active flows = %d, want 6", q.ActiveFlows())
	}
}

func TestStateCensus(t *testing.T) {
	e, q := newTestTAQ(100)
	q.Enqueue(synPkt(1, packet.PoolNone))
	q.Enqueue(synPkt(2, packet.PoolNone))
	e.RunUntil(50 * sim.Millisecond)
	q.Enqueue(dataPkt(1, 0))
	census := q.StateCensus()
	if census[StateNew] != 1 || census[StateSlowStart] != 1 {
		t.Errorf("census = %v", census)
	}
}

func TestStopCancelsScan(t *testing.T) {
	e, q := newTestTAQ(50)
	q.Stop()
	e.RunUntil(10 * sim.Second)
	// No panic, no further scans: the engine must drain fully.
	if e.Pending() != 0 {
		t.Errorf("pending events after stop = %d", e.Pending())
	}
}

func TestBytesAccounting(t *testing.T) {
	e, q := newTestTAQ(50)
	_ = e
	q.Enqueue(synPkt(1, packet.PoolNone))
	q.Enqueue(dataPkt(2, 0)) // unknown flow → tracked, first data
	if q.Bytes() != 540 {
		t.Errorf("Bytes = %d, want 540", q.Bytes())
	}
	q.Dequeue()
	q.Dequeue()
	if q.Bytes() != 0 || q.Len() != 0 {
		t.Errorf("drained queue: Bytes=%d Len=%d", q.Bytes(), q.Len())
	}
}

func TestTwoWayRTTEstimation(t *testing.T) {
	e, q := newTestTAQ(50)
	q.Enqueue(synPkt(1, packet.PoolNone))
	e.RunUntil(100 * sim.Millisecond)
	// Simulate a steady ack-clocked exchange with a true RTT of
	// 300ms: data forwarded, ack 200ms later (downstream), next data
	// 100ms after the ack (upstream).
	seq := 0
	for i := 0; i < 20; i++ {
		q.Enqueue(dataPkt(1, seq))
		for q.Dequeue() != nil {
		}
		e.RunUntil(e.Now() + 200*sim.Millisecond)
		q.ObserveReverse(&packet.Packet{Flow: 1, Kind: packet.Ack, CumAck: seq + 1, Size: 40})
		e.RunUntil(e.Now() + 100*sim.Millisecond)
		seq++
	}
	epoch, ok := q.FlowEpoch(1)
	if !ok {
		t.Fatal("flow not tracked")
	}
	if epoch < 250*sim.Millisecond || epoch > 350*sim.Millisecond {
		t.Errorf("two-way epoch = %v, want ≈300ms", epoch)
	}
}

func TestExpectedWaitEstimate(t *testing.T) {
	e := sim.NewEngine(1)
	cfg := testConfig()
	cfg.AdmissionControl = true
	cfg.Twait = 5 * sim.Second
	q := New(e, cfg)
	q.Start()
	q.setLossWindow(100, 50, 0, 0) // high loss: pools must wait
	q.Enqueue(synPkt(1, 100))
	q.Enqueue(synPkt(2, 200))
	q.Enqueue(synPkt(3, 300))
	// Pool 100 heads the line: ≤ Twait. Pool 300 is third: ≥ 2×Twait.
	w1 := q.ExpectedWait(100)
	w3 := q.ExpectedWait(300)
	if w1 <= 0 || w1 > 5*sim.Second {
		t.Errorf("head wait = %v, want (0, 5s]", w1)
	}
	if w3 < 2*5*sim.Second {
		t.Errorf("third wait = %v, want ≥ 10s", w3)
	}
	if q.ExpectedWait(999) != 0 {
		t.Error("unknown pool should have zero wait")
	}
}

func TestPoolFairShare(t *testing.T) {
	e := sim.NewEngine(1)
	cfg := testConfig()
	cfg.PoolFairShare = true
	q := New(e, cfg)
	q.Start()
	// Pool 100 has 3 flows; flow 9 is pool-less (a singleton pool).
	for i := packet.FlowID(1); i <= 3; i++ {
		q.Enqueue(synPkt(i, 100))
	}
	q.Enqueue(synPkt(9, packet.PoolNone))
	e.RunUntil(300 * sim.Millisecond) // let the scan cache pool stats
	fPooled := q.tracker.get(1)
	fSingle := q.tracker.get(9)
	sPooled := q.flowFairShare(fPooled)
	sSingle := q.flowFairShare(fSingle)
	// Two pools → 300k each; the pooled flows split theirs 3 ways.
	if sSingle < 290e3 || sSingle > 310e3 {
		t.Errorf("singleton share = %v, want ≈300k", sSingle)
	}
	if sPooled < 90e3 || sPooled > 110e3 {
		t.Errorf("pooled flow share = %v, want ≈100k", sPooled)
	}
	if 3*sPooled+sSingle < 0.95*600e3 || 3*sPooled+sSingle > 1.05*600e3 {
		t.Errorf("shares sum to %v, want ≈600k", 3*sPooled+sSingle)
	}
}

func TestAdmissionPoolExpiry(t *testing.T) {
	e := sim.NewEngine(1)
	cfg := testConfig()
	cfg.AdmissionControl = true
	cfg.FlowExpiry = 5 * sim.Second
	q := New(e, cfg)
	q.Start()
	q.Enqueue(synPkt(1, 100)) // admitted (low loss)
	if q.Stats.PoolsAdmitted != 1 {
		t.Fatalf("PoolsAdmitted = %d", q.Stats.PoolsAdmitted)
	}
	// Pool goes idle past FlowExpiry: it must be evicted so its state
	// does not accumulate; a fresh SYN re-admits it.
	e.RunUntil(10 * sim.Second)
	q.Enqueue(synPkt(2, 100))
	if q.Stats.PoolsAdmitted != 2 {
		t.Errorf("expired pool was not re-admitted afresh (admitted=%d)", q.Stats.PoolsAdmitted)
	}
}
