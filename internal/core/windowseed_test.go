package core

// setLossWindow seeds the aggregator's loss-window counters — the test
// replacement for the direct field writes the pre-aggregator tests
// used to fake a measured loss rate.
func (t *TAQ) setLossWindow(arr, drop, prevArr, prevDrp uint64) {
	t.agg.winArr.Store(arr)
	t.agg.winDrop.Store(drop)
	t.agg.prevArr.Store(prevArr)
	t.agg.prevDrp.Store(prevDrp)
}
