package core

import (
	"bufio"
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"testing"

	"taq/internal/link"
	"taq/internal/obs"
	"taq/internal/packet"
	"taq/internal/sim"
)

// The golden-trace gate: each scenario drives a TAQ middlebox with a
// seeded synthetic workload and hashes (a) the full JSONL event trace
// and (b) a periodic read-out of every control surface the tracker
// feeds (active flows, recovering flows, census, fair share, loss
// rate). The hashes are pinned in testdata/golden_traces.txt, so any
// change to tracker accounting — however subtle — that shifts an event,
// a classification, or a gauge value by one bit fails here. Run with
// TAQ_UPDATE_GOLDEN=1 to re-pin after an intentional behavior change.
//
// The Proportional fairness model is deliberately not pinned: its
// inverse-epoch weighting is specified only up to summation order, and
// the incremental tracker uses an exact fixed-point sum instead of
// order-dependent float addition (see the equivalence tests).

type goldenScenario struct {
	name     string
	flows    int
	duration sim.Time
	cfg      func(*Config)
	// poolOf assigns flows to pools; nil means PoolNone for all.
	poolOf func(i int) packet.PoolID
}

var goldenScenarios = []goldenScenario{
	{
		// Fair-queuing default: heavy contention on a small buffer.
		name: "fairq", flows: 60, duration: 30 * sim.Second,
		cfg: func(c *Config) {},
	},
	{
		// Pool fair share: 12 pools of 4 plus pool-less singletons.
		name: "pools", flows: 48, duration: 20 * sim.Second,
		cfg: func(c *Config) { c.PoolFairShare = true },
		poolOf: func(i int) packet.PoolID {
			if i%5 == 4 {
				return packet.PoolNone
			}
			return packet.PoolID(i / 4)
		},
	},
	{
		// Admission control under pool churn.
		name: "admission", flows: 64, duration: 30 * sim.Second,
		cfg:    func(c *Config) { c.AdmissionControl = true },
		poolOf: func(i int) packet.PoolID { return packet.PoolID(i / 4) },
	},
	{
		// Flow churn across FlowExpiry: the active window of flows
		// slides, so early flows sit silent past expiry and are
		// evicted while new ones are created.
		name: "churn", flows: 300, duration: 150 * sim.Second,
		cfg: func(c *Config) {},
	},
}

// runGolden executes one scenario and returns the JSONL event trace
// and the control read-out series.
func runGolden(t *testing.T, sc goldenScenario) (events, reads []byte) {
	t.Helper()
	eng := sim.NewEngine(1)
	cfg := DefaultConfig(600*link.Kbps, 32)
	sc.cfg(&cfg)
	q := New(eng, cfg)

	var evBuf bytes.Buffer
	sink := obs.NewJSONLSink(&evBuf)
	sink.ClassName = func(c int8) string { return Class(c).String() }
	sink.StateName = func(s int8) string { return FlowState(s).String() }
	rec := obs.NewRecorder(sink, 0)
	q.SetRecorder(rec)
	q.Start()

	rng := rand.New(rand.NewSource(11))
	seqs := make([]int, sc.flows)
	pool := func(i int) packet.PoolID {
		if sc.poolOf == nil {
			return packet.PoolNone
		}
		return sc.poolOf(i)
	}

	var rd bytes.Buffer
	readOut := func(now sim.Time) {
		fmt.Fprintf(&rd, "%d,%d,%d", now, q.ActiveFlows(), q.RecoveringFlows())
		c := q.StateCensus()
		for s := 0; s < numFlowStates; s++ {
			fmt.Fprintf(&rd, ",%d", c[FlowState(s)])
		}
		rd.WriteByte(',')
		rd.WriteString(strconv.FormatFloat(q.FairShare(), 'g', -1, 64))
		rd.WriteByte(',')
		rd.WriteString(strconv.FormatFloat(q.LossRate(), 'g', -1, 64))
		fmt.Fprintf(&rd, ",%d,%d\n", q.WaitingPools(), q.Len())
	}

	const step = 10 * sim.Millisecond
	// The active window slides over the flow space so old flows go
	// silent (and, in the churn scenario, expire).
	window := 40
	if window > sc.flows {
		window = sc.flows
	}
	for now := sim.Time(0); now < sc.duration; now += step {
		eng.RunUntil(now)
		lo := int(float64(sc.flows-window) * float64(now) / float64(sc.duration))
		for k := 0; k < 3; k++ {
			i := lo + rng.Intn(window)
			fl := packet.FlowID(i + 1)
			switch rng.Intn(10) {
			case 0:
				q.Enqueue(&packet.Packet{Flow: fl, Pool: pool(i), Kind: packet.Syn, Size: 40})
			case 1, 2, 3, 4, 5:
				q.Enqueue(&packet.Packet{Flow: fl, Pool: pool(i), Kind: packet.Data, Seq: seqs[i], Size: 500})
				seqs[i]++
			case 6:
				s := seqs[i] - 1 - rng.Intn(3)
				if s < 0 {
					s = 0
				}
				q.Enqueue(&packet.Packet{
					Flow: fl, Pool: pool(i), Kind: packet.Data, Seq: s,
					Size: 500, Retransmit: true,
				})
			case 7:
				q.ObserveReverse(&packet.Packet{Flow: fl, Pool: pool(i), Kind: packet.Ack, CumAck: seqs[i], Size: 40})
			case 8:
				q.Dequeue()
				q.Dequeue()
			case 9:
				// Silence: no packet this slot.
			}
		}
		q.Dequeue()
		if now%(50*sim.Millisecond) == 0 {
			readOut(now)
		}
	}
	q.Stop()
	if err := rec.Close(); err != nil {
		t.Fatalf("recorder close: %v", err)
	}
	// TAQ_GOLDEN_DUMP writes the raw traces for offline diffing when a
	// hash mismatch needs investigating.
	if dir := os.Getenv("TAQ_GOLDEN_DUMP"); dir != "" {
		_ = os.WriteFile(filepath.Join(dir, sc.name+".events"), evBuf.Bytes(), 0o644)
		_ = os.WriteFile(filepath.Join(dir, sc.name+".reads"), rd.Bytes(), 0o644)
	}
	return evBuf.Bytes(), rd.Bytes()
}

func hashHex(b []byte) string {
	h := sha256.Sum256(b)
	return hex.EncodeToString(h[:])
}

const goldenFile = "testdata/golden_traces.txt"

func loadGolden(t *testing.T) map[string][2]string {
	t.Helper()
	f, err := os.Open(goldenFile)
	if err != nil {
		t.Fatalf("no golden hashes (%v); run with TAQ_UPDATE_GOLDEN=1 to create them", err)
	}
	defer f.Close()
	out := map[string][2]string{}
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) != 3 {
			continue
		}
		out[fields[0]] = [2]string{fields[1], fields[2]}
	}
	return out
}

// TestGoldenTraces pins the middlebox's externally observable behavior
// byte for byte across tracker-internals changes.
func TestGoldenTraces(t *testing.T) {
	update := os.Getenv("TAQ_UPDATE_GOLDEN") != ""
	got := map[string][2]string{}
	for _, sc := range goldenScenarios {
		sc := sc
		t.Run(sc.name, func(t *testing.T) {
			events, reads := runGolden(t, sc)
			if len(events) == 0 || len(reads) == 0 {
				t.Fatal("scenario produced an empty trace")
			}
			got[sc.name] = [2]string{hashHex(events), hashHex(reads)}
			if update {
				return
			}
			want, ok := loadGolden(t)[sc.name]
			if !ok {
				t.Fatalf("no golden hash for scenario %q; run with TAQ_UPDATE_GOLDEN=1", sc.name)
			}
			if got[sc.name] != want {
				t.Errorf("trace diverged from golden:\n events %s (want %s)\n reads  %s (want %s)",
					got[sc.name][0], want[0], got[sc.name][1], want[1])
			}
		})
	}
	if update {
		if err := os.MkdirAll(filepath.Dir(goldenFile), 0o755); err != nil {
			t.Fatal(err)
		}
		names := make([]string, 0, len(got))
		for n := range got {
			names = append(names, n)
		}
		sort.Strings(names)
		var b strings.Builder
		for _, n := range names {
			fmt.Fprintf(&b, "%s %s %s\n", n, got[n][0], got[n][1])
		}
		if err := os.WriteFile(goldenFile, []byte(b.String()), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("updated %s", goldenFile)
	}
}
