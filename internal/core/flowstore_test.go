package core

import (
	"math/rand"
	"testing"

	"taq/internal/link"
	"taq/internal/packet"
	"taq/internal/sim"
)

// checkIndexAgainstShadow compares every key the shadow map knows (and
// a structural sweep of the table) against the open-addressed index.
func checkIndexAgainstShadow(t *testing.T, ix *oaIndex, shadow map[int32]int32) {
	t.Helper()
	if ix.n != len(shadow) {
		t.Fatalf("index has %d entries, shadow has %d", ix.n, len(shadow))
	}
	for k, want := range shadow {
		got, ok := ix.get(k)
		if !ok || got != want {
			t.Fatalf("get(%d) = (%d,%v), shadow says %d", k, got, ok, want)
		}
	}
	// Structural invariants: occupied buckets equal n exactly (backshift
	// deletion leaves no tombstones), and every occupied bucket holds a
	// key the shadow knows — so get's probe loop accounts for the whole
	// population with no duplicates.
	occ := 0
	for b, s := range ix.slots {
		if s == idxEmpty {
			continue
		}
		occ++
		k := ix.keys[b]
		want, ok := shadow[k]
		if !ok {
			t.Fatalf("bucket %d holds key %d not present in shadow", b, k)
		}
		if s != want {
			t.Fatalf("bucket %d maps key %d to %d, shadow says %d", b, k, s, want)
		}
	}
	if occ != ix.n {
		t.Fatalf("%d occupied buckets but n=%d (tombstone or lost entry)", occ, ix.n)
	}
}

// TestFlowIndexChurnBijection drives the open-addressed index with a
// seeded random insert/delete/lookup sequence — including deletes of
// absent keys, key 0 (a valid FlowID), and negative keys — and
// re-derives the full key↔slot bijection from a naive shadow map.
func TestFlowIndexChurnBijection(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	var ix oaIndex
	shadow := map[int32]int32{}

	const ops = 200_000
	for op := 0; op < ops; op++ {
		k := int32(rng.Intn(4000) - 100) // collides hard; spans negatives and 0
		switch r := rng.Intn(10); {
		case r < 4: // insert if absent
			if _, ok := shadow[k]; !ok {
				v := int32(rng.Intn(1 << 20))
				ix.put(k, v)
				shadow[k] = v
			}
		case r < 7: // delete (absent keys must be a no-op)
			ix.del(k)
			delete(shadow, k)
		default:
			got, ok := ix.get(k)
			want, wok := shadow[k]
			if ok != wok || (ok && got != want) {
				t.Fatalf("op %d: get(%d) = (%d,%v), shadow says (%d,%v)", op, k, got, ok, want, wok)
			}
		}
		if ix.n != len(shadow) {
			t.Fatalf("op %d: index n=%d, shadow %d", op, ix.n, len(shadow))
		}
		if op%5000 == 0 {
			ix.maybeGrow() // the scan-cadence growth path
		}
	}
	checkIndexAgainstShadow(t, &ix, shadow)
}

// FuzzFlowIndex throws arbitrary op sequences at the index over a tiny
// key space (so probe chains collide and wrap constantly) and checks
// the shadow-map bijection plus the tombstone-free structural
// invariant after every operation — the backshift deletion rule is
// exactly what this pins down.
func FuzzFlowIndex(f *testing.F) {
	f.Add([]byte{0x01, 0x41, 0x81, 0xc1})
	f.Add([]byte{0x01, 0x02, 0x03, 0x41, 0x42, 0x43, 0x81, 0x82})
	// Insert a cluster, delete from its middle, reinsert.
	f.Add([]byte{0x01, 0x11, 0x21, 0x31, 0x52, 0x01, 0x13, 0x23})

	f.Fuzz(func(t *testing.T, data []byte) {
		var ix oaIndex
		shadow := map[int32]int32{}
		for i, b := range data {
			k := int32(b & 0x3f) // 64 keys over ≥64 buckets: dense collisions
			switch b >> 6 {
			case 0: // put if absent
				if _, ok := shadow[k]; !ok {
					v := int32(i)
					ix.put(k, v)
					shadow[k] = v
				}
			case 1: // del
				ix.del(k)
				delete(shadow, k)
			case 2: // get
				got, ok := ix.get(k)
				want, wok := shadow[k]
				if ok != wok || (ok && got != want) {
					t.Fatalf("get(%d) = (%d,%v), shadow says (%d,%v)", k, got, ok, want, wok)
				}
			case 3: // scan-cadence growth
				ix.maybeGrow()
			}
			if ix.n != len(shadow) {
				t.Fatalf("n=%d, shadow %d after op %d", ix.n, len(shadow), i)
			}
		}
		checkIndexAgainstShadow(t, &ix, shadow)
	})
}

// TestFlowStoreRecycle pins the slot/generation protocol at the store
// level: release bumps the generation and recycles the slot LIFO, so a
// (slot, gen) handle taken before the release never matches the slot's
// next occupant.
func TestFlowStoreRecycle(t *testing.T) {
	var s flowStore
	a := s.alloc(7)
	slot, gen := a.slot, a.gen

	var h deadlineHeap
	h.push(100, a)

	s.release(a)
	if got := s.at(slot).gen; got != gen+1 {
		t.Fatalf("release bumped gen to %d, want %d", got, gen+1)
	}
	b := s.alloc(9)
	if b.slot != slot {
		t.Fatalf("free list gave slot %d, want recycled slot %d", b.slot, slot)
	}
	if b.gen == gen {
		t.Fatal("recycled record kept the old generation; stale handles would resolve")
	}
	e, ok := h.peek()
	if !ok || e.slot != slot {
		t.Fatalf("heap entry = (%v,%v), want slot %d", e, ok, slot)
	}
	if e.gen == s.at(e.slot).gen {
		t.Fatal("stale heap handle matches the recycled record's generation")
	}
	if f := s.lookup(7); f != nil {
		t.Fatalf("released flow 7 still resolves to slot %d", f.slot)
	}
	if f := s.lookup(9); f == nil || f.slot != slot {
		t.Fatal("recycled flow 9 does not resolve to the reused slot")
	}
}

// TestStaleHeapHandlesRejectedAfterRecycle proves the generation check
// end to end through the tracker: a flow is evicted, its slot is
// recycled for a different flow, and the stale deadline-heap entries
// left behind must be discarded by the scan without disturbing the
// slot's new occupant or the incremental aggregates.
func TestStaleHeapHandlesRejectedAfterRecycle(t *testing.T) {
	eng := sim.NewEngine(1)
	cfg := DefaultConfig(600*link.Kbps, 32)
	tr := newTracker(eng, cfg)

	tr.observe(&packet.Packet{Flow: 1, Kind: packet.Data, Seq: 0, Size: 500})
	f := tr.get(1)
	slot, gen := f.slot, f.gen
	if tr.scanHeap.len() == 0 || tr.actHeap.len() == 0 {
		t.Fatal("expected heap entries for the observed flow")
	}
	tr.evictFlow(f)

	eng.RunUntil(sim.Millisecond)
	tr.observe(&packet.Packet{Flow: 2, Kind: packet.Data, Seq: 0, Size: 500})
	g := tr.get(2)
	if g.slot != slot {
		t.Fatalf("flow 2 landed in slot %d, want recycled slot %d", g.slot, slot)
	}
	if g.gen == gen {
		t.Fatal("recycled slot kept flow 1's generation")
	}
	stale := 0
	for _, e := range tr.scanHeap.a {
		if e.slot == slot && e.gen == gen {
			stale++
		}
	}
	if stale == 0 {
		t.Fatal("eviction left no stale scan-heap entries; nothing to reject")
	}

	// Run far past flow 1's old deadlines: the stale entries drain, and
	// flow 2 must come through tracked and consistent.
	eng.RunUntil(350 * sim.Millisecond)
	tr.scan()
	if tr.store.len() != 1 {
		t.Fatalf("store tracks %d flows after scan, want 1", tr.store.len())
	}
	if tr.get(2) == nil {
		t.Fatal("flow 2 lost to a stale handle")
	}
	for _, e := range tr.scanHeap.a {
		if e.slot == slot && e.gen == gen {
			t.Fatal("stale entry survived a scan past its deadline")
		}
	}
	checkTrackerEquivalence(t, tr, eng.Now())
}
