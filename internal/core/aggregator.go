package core

import (
	"math"
	"sync"
	"sync/atomic"

	"taq/internal/obs"
	"taq/internal/packet"
	"taq/internal/sim"
)

// Aggregator is the cross-shard spine of a sharded TAQ middlebox: the
// loss-rate window and the §4.3 pool admission controller, the only
// state the shards share. Everything else — tracker, flow store, class
// queues, scheduler accounting — is //taq:shardowned and never crosses
// a shard boundary (DESIGN.md §12).
//
// Both live here for the same reason: they are definitionally global.
// The loss window measures congestion at the *bottleneck*, which all
// shards jointly form — a per-shard window would let an unlucky shard
// report loss the link as a whole is not seeing. Admission is a FIFO
// over pools with a Twait guarantee; pools span flows, flows hash to
// different shards, so the queue and its pacer must be singletons or
// the FIFO order and the one-pool-per-Twait pacing both break.
//
// The window counters are lock-free atomics — the per-packet cost of
// sharing them is one uncontended atomic add. The admission seam is a
// mutex: it runs only on SYNs of pooled flows and on data of pooled
// flows while admission control is enabled, a small slice of the
// packet path, and its critical section is a flat-table probe.
//
// A single-shard TAQ (the sim path) embeds a private Aggregator; with
// one caller the atomics and the uncontended mutex are sequentially
// exact, so shards=1 reproduces the pre-shard behavior byte for byte.
type Aggregator struct {
	cfg Config

	// Loss-rate monitor over sliding windows, shared by all shards.
	// Reads under concurrency are transiently approximate (a roll moves
	// win→prev in two stores); the consumer is a control loop sampling
	// at scan cadence, so a one-packet skew is noise. Single-threaded,
	// the values are exact.

	// winStart is the sim.Time the current window opened, as int64.
	//
	//taq:atomic
	winStart atomic.Int64
	// winGen counts window rolls; shards roll their windowed serve
	// counters when they observe it advance, so the Level-1 recovery
	// cap stays aligned with the loss window without sharing the
	// scheduler counters themselves.
	//
	//taq:atomic
	winGen atomic.Uint64
	//taq:atomic
	winArr atomic.Uint64
	//taq:atomic
	winDrop atomic.Uint64
	//taq:atomic
	prevArr atomic.Uint64
	//taq:atomic
	prevDrp atomic.Uint64
	// lossEWMA holds math.Float64bits of the smoothed per-window loss
	// rate (the telemetry companion of LossRate).
	//
	//taq:atomic
	lossEWMA atomic.Uint64

	// rollMu serializes window rolls (rare: once per LossWindow); the
	// packet-path increments never take it.
	rollMu sync.Mutex

	// admMu guards the admission controller and lastExpire. Admission
	// is inherently cross-shard (pool FIFO + Twait pacing are global),
	// so its flat pool table stays single-writer under this lock.
	admMu      sync.Mutex
	adm        admission
	lastExpire sim.Time

	// ownStats backs the admission counters when no owner's Stats was
	// supplied (the shared, multi-shard case).
	ownStats Stats
}

// NewAggregator creates the shared state for a bank of shards, with
// the loss window opening at now. Admission counters accumulate in the
// Aggregator's own Stats (read them via AdmissionStats).
func NewAggregator(cfg Config, now sim.Time) *Aggregator {
	g := &Aggregator{cfg: cfg}
	g.adm = admission{cfg: cfg, stats: &g.ownStats}
	g.winStart.Store(int64(now))
	return g
}

// newPrivateAggregator is the single-middlebox form used by New: the
// admission counters land directly in the owning TAQ's Stats, exactly
// where the pre-shard controller put them.
func newPrivateAggregator(cfg Config, now sim.Time, stats *Stats) *Aggregator {
	g := &Aggregator{cfg: cfg}
	g.adm = admission{cfg: cfg, stats: stats}
	g.winStart.Store(int64(now))
	return g
}

// AdmissionStats returns the admission counters accumulated by a
// shared aggregator (PoolsAdmitted, PoolsWaited; zero-valued fields
// otherwise). A private aggregator reports through its owner's Stats
// instead.
func (g *Aggregator) AdmissionStats() Stats {
	g.admMu.Lock()
	s := g.ownStats
	g.admMu.Unlock()
	return s
}

// noteArrival counts one arrival into the shared loss window.
//
//taq:crossshard per-packet touch on shared state: one atomic add, no lock
func (g *Aggregator) noteArrival() { g.winArr.Add(1) }

// noteDrop counts one congestion drop into the shared loss window.
//
//taq:crossshard per-packet touch on shared state: one atomic add, no lock
func (g *Aggregator) noteDrop() { g.winDrop.Add(1) }

// uncountArrival removes a policy-dropped packet from the window's
// arrival count (see TAQ.dropPolicy): blocked storms must neither
// inflate nor dilute the congestion signal. The floor-at-zero guard of
// the pre-shard code becomes a CAS loop so concurrent shards cannot
// drive the counter below zero.
//
//taq:crossshard per-packet touch on shared state: lock-free CAS, no lock
func (g *Aggregator) uncountArrival() {
	for {
		v := g.winArr.Load()
		if v == 0 {
			return
		}
		if g.winArr.CompareAndSwap(v, v-1) {
			return
		}
	}
}

// lossRate returns the drop fraction over roughly the last two loss
// windows — the admission-control input.
//
//taq:crossshard control-loop read of shared window counters: atomic loads only
func (g *Aggregator) lossRate() float64 {
	arr := g.winArr.Load() + g.prevArr.Load()
	if arr == 0 {
		return 0
	}
	return float64(g.winDrop.Load()+g.prevDrp.Load()) / float64(arr)
}

// lossEWMAValue returns the smoothed loss rate, updated once per roll.
//
//taq:crossshard telemetry read of shared window state: one atomic load
func (g *Aggregator) lossEWMAValue() float64 {
	return math.Float64frombits(g.lossEWMA.Load())
}

// maybeRoll advances the loss window if it has run its course and
// returns the current window generation. The first shard whose scan
// crosses the boundary performs the roll; racers and later scans see
// the advanced winStart and return the fresh generation, which tells
// them to roll their own windowed serve counters.
//
//taq:crossshard window roll runs at scan cadence, serialized by rollMu
func (g *Aggregator) maybeRoll(now sim.Time) uint64 {
	if now-sim.Time(g.winStart.Load()) < g.cfg.LossWindow {
		return g.winGen.Load()
	}
	g.rollMu.Lock()
	defer g.rollMu.Unlock()
	if now-sim.Time(g.winStart.Load()) < g.cfg.LossWindow {
		// Another shard rolled while we waited for the lock.
		return g.winGen.Load()
	}
	// Swap, not Load+Store: increments racing the roll land in either
	// the closing window or the fresh one, never in both or neither.
	arr := g.winArr.Swap(0)
	drp := g.winDrop.Swap(0)
	var rate float64
	if arr > 0 {
		rate = float64(drp) / float64(arr)
	}
	g.lossEWMA.Store(math.Float64bits(0.875*math.Float64frombits(g.lossEWMA.Load()) + 0.125*rate))
	g.prevArr.Store(arr)
	g.prevDrp.Store(drp)
	g.winStart.Store(int64(now))
	return g.winGen.Add(1)
}

// allowSyn is the cross-shard admission gate for SYNs of pooled flows
// (§4.3). now is the calling shard's clock: shards may run on separate
// engines, and the Twait arithmetic must use the caller's timeline.
//
//taq:crossshard admission FIFO and Twait pacer are global across shards by definition
//taq:allow(func) noblock admission seam: bounded flat-table critical section under admMu, taken only for pooled SYNs
func (g *Aggregator) allowSyn(now sim.Time, pool packet.PoolID, lossRate float64) bool {
	g.admMu.Lock()
	ok := g.adm.allowSyn(now, pool, lossRate)
	g.admMu.Unlock()
	return ok
}

// poolAdmitted reports whether the pool may send data packets, and
// refreshes its activity stamp.
//
//taq:crossshard pool admission state is global across shards by definition
//taq:allow(func) noblock admission seam: one index probe under admMu, taken only for pooled data while admission control is on
func (g *Aggregator) poolAdmitted(now sim.Time, pool packet.PoolID) bool {
	g.admMu.Lock()
	ok := g.adm.poolAdmitted(now, pool)
	g.admMu.Unlock()
	return ok
}

// expireAdmission evicts stale pools, at most once per ScanInterval
// across all shards — every shard's scan calls it, the gate dedups.
//
//taq:crossshard pool expiry walks the shared admission table at scan cadence
func (g *Aggregator) expireAdmission(now sim.Time) {
	g.admMu.Lock()
	if now-g.lastExpire >= g.cfg.ScanInterval {
		g.lastExpire = now
		g.adm.expire(now)
	}
	g.admMu.Unlock()
}

// waitingPools returns how many pools are queued for admission.
//
//taq:crossshard gauge read of the shared admission queue
func (g *Aggregator) waitingPools() int {
	g.admMu.Lock()
	n := g.adm.waitingPools()
	g.admMu.Unlock()
	return n
}

// expectedWait estimates the pool's wait before admission (§4.3 user
// feedback); now is the calling shard's clock.
//
//taq:crossshard gauge read of the shared admission queue
func (g *Aggregator) expectedWait(now sim.Time, pool packet.PoolID) sim.Time {
	g.admMu.Lock()
	w := g.adm.expectedWait(now, pool)
	g.admMu.Unlock()
	return w
}

// setRecorder installs the trace recorder on the admission controller.
func (g *Aggregator) setRecorder(rec *obs.Recorder) {
	g.admMu.Lock()
	g.adm.rec = rec
	g.admMu.Unlock()
}

// setMetrics installs the metrics bundle on the admission controller.
func (g *Aggregator) setMetrics(mx *Metrics) {
	g.admMu.Lock()
	g.adm.mx = mx
	g.admMu.Unlock()
}
