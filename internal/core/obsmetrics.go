package core

import (
	"taq/internal/obs"
	"taq/internal/sim"
)

// stateFieldSuffix returns the lowercase per-state label used by the
// tracker-transition metric ("new", "slowstart", ...). Kept literal so
// label values stay stable even if FlowState.String ever changes
// casing.
func stateFieldSuffix(s FlowState) string {
	switch s {
	case StateNew:
		return "new"
	case StateSlowStart:
		return "slowstart"
	case StateNormal:
		return "normal"
	case StateLossRecovery:
		return "lossrecovery"
	case StateTimeoutSilence:
		return "timeoutsilence"
	case StateTimeoutRecovery:
		return "timeoutrecovery"
	case StateExtendedSilence:
		return "extendedsilence"
	case StateIdleSilence:
		return "idlesilence"
	default:
		return "unknown"
	}
}

// ClassLabels returns the class label values in Class order, matching
// Stats.Fields' per-class suffixes.
func ClassLabels() []string {
	out := make([]string, numClasses)
	for c := 0; c < numClasses; c++ {
		out[c] = classFieldSuffix(Class(c))
	}
	return out
}

// StateLabels returns the tracker-state label values in FlowState
// order.
func StateLabels() []string {
	out := make([]string, numFlowStates)
	for s := 0; s < numFlowStates; s++ {
		out[s] = stateFieldSuffix(FlowState(s))
	}
	return out
}

// Metrics bundles the middlebox's registry instruments. NewMetrics
// registers the full TAQ schema on a registry; SetMetrics installs the
// bundle on a TAQ instance. A nil *Metrics (the default) disables
// metrics: every record site guards on it, so the disabled path costs
// one branch and zero allocations, mirroring the nil-Recorder
// contract. Label indices are the enum values themselves (Class,
// FlowState, obs.Admission* codes), so recording is a direct IncAt
// with no lookup.
//
// In a sharded deployment each shard owns one Metrics over its own
// Registry; shard snapshots merge at the read edge
// (obs.MetricsSnapshot.Merge) because every bundle registers the same
// schema.
type Metrics struct {
	// Drops counts dropped packets by victim class
	// (taq_drops_total{class=...}); RtxDrops the subset that were
	// retransmissions — the §4.1 event that forces a timeout; and
	// PolicyDrops the subset that were admission policy, not
	// congestion.
	Drops       *obs.Counter
	RtxDrops    *obs.Counter
	PolicyDrops *obs.Counter
	// Served counts forwarded packets by class
	// (taq_served_total{class=...}).
	Served *obs.Counter
	// QueueDelay is the per-class sojourn histogram
	// (taq_queue_delay_seconds{class=...}): dequeue time minus the
	// packet's Enqueued stamp.
	QueueDelay *obs.Histogram
	// Admission counts §4.3 rulings
	// (taq_admission_decisions_total{decision=...}), indexed by the
	// obs.Admission* codes.
	Admission *obs.Counter
	// Transitions counts tracker state entries
	// (taq_tracker_transitions_total{to=...}); Timeouts the subset
	// that were silence detections, RepTimeouts the extended-silence
	// (repetitive-timeout regime) subset.
	Transitions *obs.Counter
	Timeouts    *obs.Counter
	RepTimeouts *obs.Counter
}

// NewMetrics registers the TAQ middlebox schema on reg and returns the
// bundle. A nil registry yields a valid bundle of nil instruments
// (every record call a no-op), but callers normally just leave the TAQ
// without a bundle instead.
func NewMetrics(reg *obs.Registry) *Metrics {
	classes := ClassLabels()
	return &Metrics{
		Drops: reg.CounterVec("taq_drops_total",
			"Packets dropped by the middlebox, by victim class.", "class", classes),
		RtxDrops: reg.Counter("taq_retransmit_drops_total",
			"Dropped retransmissions (the loss events that force timeouts, §4.1)."),
		PolicyDrops: reg.Counter("taq_policy_drops_total",
			"Drops from admission policy (blocked SYNs, un-admitted pools), excluded from the loss window."),
		Served: reg.CounterVec("taq_served_total",
			"Packets forwarded by the scheduler, by class.", "class", classes),
		QueueDelay: reg.HistogramVec("taq_queue_delay_seconds",
			"Bottleneck queueing delay from enqueue to dequeue, by class.",
			obs.DelayBuckets(), "class", classes),
		Admission: reg.CounterVec("taq_admission_decisions_total",
			"Admission-control rulings on pool SYNs (§4.3).", "decision",
			[]string{"blocked", "admitted", "forced"}),
		Transitions: reg.CounterVec("taq_tracker_transitions_total",
			"Flow-tracker state transitions, by destination state.", "to", StateLabels()),
		Timeouts: reg.Counter("taq_timeouts_detected_total",
			"Tracker silence detections (flow concluded to be waiting out an RTO)."),
		RepTimeouts: reg.Counter("taq_repetitive_timeouts_total",
			"Transitions into extended silence — the repetitive-timeout regime the paper targets."),
	}
}

// SetMetrics installs the bundle on the middlebox, the tracker and the
// admission controller. A nil bundle (the default) disables metrics.
func (t *TAQ) SetMetrics(mx *Metrics) {
	t.mx = mx
	t.tracker.mx = mx
	t.agg.setMetrics(mx)
}

// observeServe records a forwarded packet's class and sojourn time.
//
//taq:hotpath nil-receiver metrics hook on the per-packet serve path
func (m *Metrics) observeServe(class Class, sojourn sim.Time) {
	if m == nil {
		return
	}
	m.Served.IncAt(int(class))
	m.QueueDelay.ObserveAt(int(class), sojourn)
}

// observeDrop records a drop's victim class and retransmission status.
//
//taq:hotpath nil-receiver metrics hook on the per-packet drop path
func (m *Metrics) observeDrop(class Class, rtx bool) {
	if m == nil {
		return
	}
	m.Drops.IncAt(int(class))
	if rtx {
		m.RtxDrops.Inc()
	}
}

// observeTransition records a tracker state entry (and its timeout
// subsets).
//
//taq:hotpath nil-receiver metrics hook on the tracker path
func (m *Metrics) observeTransition(to FlowState) {
	if m == nil {
		return
	}
	m.Transitions.IncAt(int(to))
	if to == StateTimeoutSilence || to == StateExtendedSilence {
		m.Timeouts.Inc()
		if to == StateExtendedSilence {
			m.RepTimeouts.Inc()
		}
	}
}

// observeAdmission records an admission ruling (an obs.Admission*
// code).
//
//taq:hotpath nil-receiver metrics hook on the admission path
func (m *Metrics) observeAdmission(decision uint8) {
	if m == nil {
		return
	}
	m.Admission.IncAt(int(decision))
}
