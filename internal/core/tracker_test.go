package core

import (
	"testing"

	"taq/internal/link"
	"taq/internal/packet"
	"taq/internal/sim"
)

func newTestTracker() (*sim.Engine, *tracker) {
	e := sim.NewEngine(1)
	cfg := DefaultConfig(600*link.Kbps, 50)
	return e, newTracker(e, cfg)
}

func TestTrackerEpochSeedFromSynDataGap(t *testing.T) {
	e, tr := newTestTracker()
	tr.observe(synPkt(1, packet.PoolNone))
	e.RunUntil(150 * sim.Millisecond)
	f, rtx := tr.observe(dataPkt(1, 0))
	if rtx {
		t.Fatal("first data flagged as retransmission")
	}
	if f.epoch != 150*sim.Millisecond {
		t.Errorf("epoch = %v, want 150ms (SYN→data gap)", f.epoch)
	}
}

func TestTrackerEpochSeedIgnoresImplausibleGaps(t *testing.T) {
	e, tr := newTestTracker()
	tr.observe(synPkt(1, packet.PoolNone))
	// A multi-second gap (e.g. SYN retry storms) must not become the
	// epoch estimate.
	e.RunUntil(30 * sim.Second)
	f, _ := tr.observe(dataPkt(1, 0))
	if f.epoch != tr.cfg.DefaultEpoch {
		t.Errorf("epoch = %v, want default %v", f.epoch, tr.cfg.DefaultEpoch)
	}
}

func TestTrackerBurstRefinement(t *testing.T) {
	e, tr := newTestTracker()
	tr.observe(synPkt(1, packet.PoolNone))
	e.RunUntil(200 * sim.Millisecond)
	tr.observe(dataPkt(1, 0)) // epoch seeded at 200ms
	// Deliver bursts every 300ms: the EWMA should drift upward.
	seq := 1
	for i := 0; i < 20; i++ {
		e.RunUntil(e.Now() + 300*sim.Millisecond)
		for j := 0; j < 3; j++ {
			tr.observe(dataPkt(1, seq))
			seq++
		}
	}
	f := tr.get(1)
	if f.epoch <= 200*sim.Millisecond || f.epoch > 400*sim.Millisecond {
		t.Errorf("epoch = %v, want drifted toward 300ms", f.epoch)
	}
}

func TestTrackerStateMachinePath(t *testing.T) {
	e, tr := newTestTracker()
	// SYN → New.
	f, _ := tr.observe(synPkt(1, packet.PoolNone))
	if f.state != StateNew {
		t.Fatalf("after SYN: %v", f.state)
	}
	e.RunUntil(100 * sim.Millisecond)
	// First data → SlowStart.
	tr.observe(dataPkt(1, 0))
	if f.state != StateSlowStart {
		t.Fatalf("after data: %v", f.state)
	}
	// TAQ drops a new packet → LossRecovery.
	tr.recordDrop(dataPkt(1, 1), false)
	if f.state != StateLossRecovery {
		t.Fatalf("after drop: %v", f.state)
	}
	// The retransmission arrives → outstanding drop cleared.
	tr.observe(dataPkt(1, 1)) // seq 1 ≤ highSeq? highSeq=0, so this is NEW
	// seq 1 > highSeq 0: counts as new data; with outstandingDrops
	// still pending the flow stays in LossRecovery.
	if f.state != StateLossRecovery {
		t.Fatalf("after new data during recovery: %v", f.state)
	}
	// An actual retransmission (seq ≤ highSeq) clears the drop...
	tr.observe(dataPkt(1, 1))
	if f.outstandingDrops != 0 {
		t.Fatalf("outstandingDrops = %d", f.outstandingDrops)
	}
	// ...and the next new packet returns the flow to Normal.
	tr.observe(dataPkt(1, 2))
	if f.state != StateNormal {
		t.Fatalf("after recovery: %v", f.state)
	}
	if f.protectEpochs == 0 {
		t.Error("recovered flow should carry protection epochs")
	}
}

func TestTrackerTimeoutSilencePath(t *testing.T) {
	e, tr := newTestTracker()
	tr.observe(synPkt(1, packet.PoolNone))
	e.RunUntil(100 * sim.Millisecond)
	tr.observe(dataPkt(1, 0))
	tr.observe(dataPkt(1, 1))
	f := tr.get(1)
	// Dropping a retransmission predicts a timeout.
	tr.recordDrop(dataPkt(1, 0), true)
	if f.state != StateTimeoutSilence {
		t.Fatalf("after rtx drop: %v", f.state)
	}
	// A retransmission arriving after the silence → TimeoutRecovery.
	e.RunUntil(e.Now() + 2*sim.Second)
	f.roll(e.Now())
	tr.observe(dataPkt(1, 0))
	if f.state != StateTimeoutRecovery {
		t.Fatalf("after rtx arrival: %v", f.state)
	}
	// New data past the loss → SlowStart with protection.
	tr.observe(dataPkt(1, 2))
	if f.state != StateSlowStart || f.protectEpochs == 0 {
		t.Fatalf("after recovery: %v protect=%d", f.state, f.protectEpochs)
	}
}

func TestTrackerExtendedSilenceViaScan(t *testing.T) {
	e, tr := newTestTracker()
	tr.observe(synPkt(1, packet.PoolNone))
	e.RunUntil(100 * sim.Millisecond)
	tr.observe(dataPkt(1, 0))
	tr.recordDrop(dataPkt(1, 0), true) // → TimeoutSilence
	f := tr.get(1)
	e.RunUntil(5 * sim.Second)
	tr.scan()
	if f.state != StateExtendedSilence {
		t.Errorf("after long silence: %v, want ExtendedSilence", f.state)
	}
	// An eventual rtx drop during extended silence keeps it extended.
	tr.recordDrop(dataPkt(1, 0), true)
	if f.state != StateExtendedSilence {
		t.Errorf("rtx drop in extended silence: %v", f.state)
	}
}

func TestTrackerSlowStartFlattensToNormal(t *testing.T) {
	e, tr := newTestTracker()
	tr.observe(synPkt(1, packet.PoolNone))
	e.RunUntil(200 * sim.Millisecond)
	// Epoch 1: 4 packets. Epoch 2: 4 packets (no growth) → Normal.
	seq := 0
	for j := 0; j < 4; j++ {
		tr.observe(dataPkt(1, seq))
		seq++
	}
	e.RunUntil(e.Now() + 250*sim.Millisecond)
	f := tr.get(1)
	for j := 0; j < 4; j++ {
		tr.observe(dataPkt(1, seq))
		seq++
	}
	if f.state != StateNormal {
		t.Errorf("flat growth state = %v, want Normal", f.state)
	}
}

func TestTrackerRateEWMA(t *testing.T) {
	e, tr := newTestTracker()
	tr.observe(synPkt(1, packet.PoolNone))
	e.RunUntil(200 * sim.Millisecond)
	seq := 0
	// 5 packets (2500 bytes) per 200ms epoch = 100 kbps.
	for i := 0; i < 40; i++ {
		for j := 0; j < 5; j++ {
			tr.observe(dataPkt(1, seq))
			seq++
		}
		e.RunUntil(e.Now() + 200*sim.Millisecond)
	}
	f := tr.get(1)
	f.roll(e.Now())
	if f.rateEWMA < 60e3 || f.rateEWMA > 140e3 {
		t.Errorf("rateEWMA = %.0f, want ≈100k", f.rateEWMA)
	}
}

func TestTrackerSynRetryDoesNotResetDataState(t *testing.T) {
	e, tr := newTestTracker()
	tr.observe(synPkt(1, packet.PoolNone))
	e.RunUntil(100 * sim.Millisecond)
	tr.observe(dataPkt(1, 0))
	f := tr.get(1)
	// A stray SYN retry after data flowed must not reset the state.
	tr.observe(synPkt(1, packet.PoolNone))
	if f.state == StateNew {
		t.Error("SYN retry reset an established flow to New")
	}
}

func TestActiveStatsCountsTimeoutFlows(t *testing.T) {
	e, tr := newTestTracker()
	tr.observe(synPkt(1, packet.PoolNone))
	e.RunUntil(100 * sim.Millisecond)
	tr.observe(dataPkt(1, 0))
	tr.recordDrop(dataPkt(1, 0), true) // TimeoutSilence
	// Long silence: flow is quiet but in a timeout state — it still
	// counts as active (it deserves fair share when it returns).
	e.RunUntil(10 * sim.Second)
	n, inv := tr.activeStats()
	if n != 1 || inv <= 0 {
		t.Errorf("activeStats = %d, %v; timed-out flow should stay active", n, inv)
	}
}
