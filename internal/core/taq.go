package core

import (
	"taq/internal/link"
	"taq/internal/obs"
	"taq/internal/packet"
	"taq/internal/queue"
	"taq/internal/sim"
)

// TAQ is the Timeout Aware Queuing middlebox. It implements
// queue.Discipline and can replace DropTail at any bottleneck link.
//
// Call Start once after construction so the periodic silence scan and
// loss-window bookkeeping run; Stop cancels them.
type TAQ struct {
	queue.DropHook
	cfg Config
	run sim.Runner

	tracker *tracker
	q       classQueues

	// agg holds the loss window and the admission controller — in a
	// sharded middlebox the only state shared between shards (see
	// aggregator.go). A standalone TAQ owns a private aggregator, so
	// both constructions run the identical code path.
	agg *Aggregator
	// winGenSeen is the last loss-window generation this shard rolled
	// its serve counters for.
	winGenSeen uint64

	// Scheduler accounting for the Level-1 recovery share cap and the
	// Level-2 round-robin cursor. The serve counters are windowed —
	// rolled on the loss-window boundary like the loss monitor — so the
	// cap compares recent history: with run-lifetime counters, a
	// recovery burst after a long quiet period would hold strict
	// priority until it consumed RecoveryShare of the whole run's
	// services, starving Levels 2–3 far beyond the intended share.
	winServed, winServedRec   uint64
	prevServed, prevServedRec uint64
	rrCursor                  int

	// rec, when non-nil, receives class-specific trace events (drops
	// with victim class, class changes, tracker and admission events).
	rec *obs.Recorder
	// mx, when non-nil, records middlebox counters and histograms into
	// a registry (installed via SetMetrics).
	mx *Metrics

	// Cached fair share (bits/second per flow), refreshed by the scan;
	// invEpochSum weights the proportional fairness model; poolShare
	// backs the pool fairness model (§4.3 — per-pool counts live in
	// the tracker's snapshot counters).
	fairShare   float64
	invEpochSum float64
	poolShare   float64

	scanTimer *sim.Timer
	stopped   bool

	// victimScoreFn is t.victimScore bound once in New: evict passes
	// it to BestVictim on every overflow, and a method value taken
	// there would allocate a closure per eviction.
	victimScoreFn func(packet.FlowID) float64

	// Stats accumulates middlebox counters.
	Stats Stats
}

// New constructs a TAQ middlebox driven by run.
func New(run sim.Runner, cfg Config) *TAQ {
	t := &TAQ{cfg: cfg, run: run}
	t.tracker = newTracker(run, cfg)
	t.agg = newPrivateAggregator(cfg, run.Now(), &t.Stats)
	t.fairShare = float64(cfg.Rate)
	t.victimScoreFn = t.victimScore
	return t
}

// NewShard constructs one shard of a sharded middlebox: a full TAQ
// (tracker, flow store, class queues, scheduler) attached to a shared
// aggregator instead of a private one. Admission counters accumulate
// in the aggregator's Stats, not this shard's.
func NewShard(run sim.Runner, cfg Config, agg *Aggregator) *TAQ {
	t := &TAQ{cfg: cfg, run: run}
	t.tracker = newTracker(run, cfg)
	t.agg = agg
	t.winGenSeen = agg.winGen.Load()
	t.fairShare = float64(cfg.Rate)
	t.victimScoreFn = t.victimScore
	return t
}

// SetRecorder installs a trace recorder on the middlebox, the tracker
// and the admission controller. A nil recorder (the default) disables
// tracing; every emission site guards on it, so the disabled path costs
// one branch and zero allocations.
func (t *TAQ) SetRecorder(rec *obs.Recorder) {
	t.rec = rec
	t.tracker.rec = rec
	t.agg.setRecorder(rec)
}

// Start schedules the periodic scan. Safe to call once.
func (t *TAQ) Start() {
	if t.scanTimer != nil {
		return
	}
	var tick func()
	tick = func() {
		if t.stopped {
			return
		}
		t.scan()
		// Re-arm in place: the timer just fired, so Reschedule reuses
		// its allocation instead of minting a new one every scan.
		t.scanTimer = sim.Reschedule(t.run, t.scanTimer, t.cfg.ScanInterval, tick)
	}
	t.scanTimer = t.run.Schedule(t.cfg.ScanInterval, tick)
}

// Stop cancels the periodic scan.
func (t *TAQ) Stop() {
	t.stopped = true
	t.scanTimer.Cancel()
}

// scan runs silence detection, refreshes the cached fair share, rolls
// the loss window, and expires stale pools.
func (t *TAQ) scan() {
	t.tracker.scan()
	n, invSum := t.tracker.activeStats()
	if n < 1 {
		n = 1
	}
	t.fairShare = float64(t.cfg.Rate) / float64(n)
	t.invEpochSum = invSum
	if t.cfg.PoolFairShare {
		pools := t.tracker.snapshotPools()
		if pools < 1 {
			pools = 1
		}
		t.poolShare = float64(t.cfg.Rate) / float64(pools)
	}
	now := t.run.Now()
	if gen := t.agg.maybeRoll(now); gen != t.winGenSeen {
		// The loss window rolled (by this shard or a peer): roll the
		// windowed serve counters in step so the Level-1 recovery cap
		// keeps comparing the same recent history as the loss monitor.
		t.winGenSeen = gen
		t.prevServed, t.prevServedRec = t.winServed, t.winServedRec
		t.winServed, t.winServedRec = 0, 0
	}
	if t.cfg.AdmissionControl {
		t.agg.expireAdmission(now)
	}
}

// LossRate returns the measured drop fraction over roughly the last
// two loss windows.
//
//taq:hotpath O(1) control-loop gauge, sampled at scan cadence
func (t *TAQ) LossRate() float64 { return t.agg.lossRate() }

// LossEWMA returns the smoothed loss rate, updated once per loss
// window — the telemetry-facing companion of LossRate.
func (t *TAQ) LossEWMA() float64 { return t.agg.lossEWMAValue() }

// FairShare returns the cached per-flow fair share in bits/second.
//
//taq:hotpath O(1) control-loop gauge, sampled at scan cadence
func (t *TAQ) FairShare() float64 { return t.fairShare }

// ActiveFlows returns the tracker's current active flow count.
//
//taq:hotpath O(1) control-loop gauge, sampled at scan cadence
func (t *TAQ) ActiveFlows() int { return t.tracker.activeFlows() }

// RecoveringFlows returns the number of tracked flows currently in a
// loss-recovery or timeout state — the population the paper's fairness
// argument protects. O(1): four reads of the maintained census.
//
//taq:hotpath O(1) control-loop gauge, sampled at scan cadence
func (t *TAQ) RecoveringFlows() int {
	c := &t.tracker.census
	return c[StateLossRecovery] + c[StateTimeoutSilence] +
		c[StateTimeoutRecovery] + c[StateExtendedSilence]
}

// StateCensus returns the number of tracked flows per approximate
// state — the middlebox-side view used in the flow-evolution analysis.
// The census is maintained on every transition, so this is a fixed-size
// copy with no allocation.
//
//taq:hotpath O(1) control-loop gauge, sampled at scan cadence
func (t *TAQ) StateCensus() Census { return t.tracker.stateCensus() }

// WaitingPools returns the number of flow pools queued for admission.
func (t *TAQ) WaitingPools() int { return t.agg.waitingPools() }

// ExpectedWait estimates how long the given pool will wait before
// admission (0 for admitted/unknown pools) — the §4.3 user-feedback
// hook ("maintaining a visible queue of requests with expected wait
// times ... for each browsing request").
func (t *TAQ) ExpectedWait(pool packet.PoolID) sim.Time {
	return t.agg.expectedWait(t.run.Now(), pool)
}

// FlowStateOf exposes the tracked state of a flow (testing/metrics).
// It is exactly one probe of the open-addressed flow index plus a
// record read, and doubles as the exported surface the allocation
// harness uses to pin the lookup path.
//
//taq:hotpath per-flow state probe over the open-addressed index
func (t *TAQ) FlowStateOf(id packet.FlowID) (FlowState, bool) {
	f := t.tracker.get(id)
	if f == nil {
		return 0, false
	}
	return f.state, true
}

// victimScore ranks eviction candidates for BestVictim: the flow's
// catch-up-corrected rate EWMA, so among equally occupying flows the
// fastest sender loses first. The full-table rescan rolled every
// flow's epoch counters each scan; the incremental tracker rolls
// lazily, so catch the flow up to the last scan first to read the
// rate the rescan would have read.
func (t *TAQ) victimScore(fl packet.FlowID) float64 {
	if f := t.tracker.get(fl); f != nil {
		f.catchUp(t.tracker.lastScan)
		return f.rateEWMA
	}
	return 0
}

// flowFairShare returns the flow's fair share in bits/second under
// the configured fairness model.
func (t *TAQ) flowFairShare(f *flowInfo) float64 {
	if t.cfg.PoolFairShare && t.poolShare > 0 {
		if f.pool == packet.PoolNone {
			return t.poolShare
		}
		n := t.tracker.poolCount(f.pool)
		if n < 1 {
			n = 1
		}
		return t.poolShare / float64(n)
	}
	if t.cfg.Fairness == Proportional && t.invEpochSum > 0 && f.epoch > 0 {
		return float64(t.cfg.Rate) * (1 / f.epoch.Seconds()) / t.invEpochSum
	}
	return t.fairShare
}

// classify assigns an arriving packet to one of the five queues
// (§4.2), given its flow record and retransmission status.
func (t *TAQ) classify(p *packet.Packet, f *flowInfo, rtx bool) Class {
	switch {
	case rtx && !t.cfg.NoRecoveryPriority:
		return ClassRecovery
	case p.Kind == packet.Syn:
		return ClassNewFlow
	case (int(f.epochs) < t.cfg.NewFlowEpochs || int(f.highSeq) < t.cfg.NewFlowSegs) &&
		(f.state == StateNew || f.state == StateSlowStart):
		return ClassNewFlow
	case int(f.drops)+int(f.prevDrops) >= t.cfg.OverPenaltyDrops:
		return ClassOverPenalized
	case !t.cfg.NoRecoveryProtection &&
		(f.state == StateLossRecovery || f.state == StateTimeoutRecovery ||
			f.protectEpochs > 0):
		// §4.1: flows with recent losses get higher priority for the
		// packets that follow, to prevent (repetitive) timeouts — a
		// flow crawling out of recovery must not lose its first new
		// packets.
		return ClassOverPenalized
	case f.rateEWMA <= t.flowFairShare(f):
		return ClassBelowFair
	default:
		return ClassAboveFair
	}
}

// Enqueue implements queue.Discipline.
//
//taq:hotpath TAQ per-packet classify/admit/enqueue path (§4)
func (t *TAQ) Enqueue(p *packet.Packet) {
	t.Stats.Arrivals++
	t.agg.noteArrival()
	f, rtx := t.tracker.observe(p)

	// Admission control gates SYNs of un-admitted pools (§4.3); data
	// of un-admitted pools (races around expiry) is dropped too. The
	// gate lives in the aggregator: pool admission is global across
	// shards (//taq:crossshard).
	if t.cfg.AdmissionControl && p.Pool != packet.PoolNone {
		switch p.Kind {
		case packet.Syn:
			if !t.agg.allowSyn(t.run.Now(), p.Pool, t.LossRate()) {
				t.Stats.SynsBlocked++
				t.dropPolicy(p, ClassNewFlow, false)
				return
			}
		case packet.Data:
			if !t.agg.poolAdmitted(t.run.Now(), p.Pool) {
				t.dropPolicy(p, ClassBelowFair, rtx)
				return
			}
		}
	}

	class := t.classify(p, f, rtx)
	if t.rec != nil && int8(class) != f.lastClass {
		t.rec.ClassChange(t.run.Now(), p, f.lastClass, int8(class))
	}
	f.lastClass = int8(class)
	switch class {
	case ClassRecovery:
		silence := f.lastSilence
		t.q.recovery.push(p, silence)
		if t.q.recovery.Len() > t.cfg.RecoveryCap {
			if victim := t.q.recovery.popWorst(); victim != nil {
				t.dropPacket(victim, ClassRecovery, true)
			}
		}
	case ClassNewFlow:
		if t.q.fifos[ClassNewFlow].Len() >= t.cfg.NewFlowCap {
			// The NewFlow cap curtails the admission rate of new
			// connections even without explicit admission control.
			t.dropPacket(p, ClassNewFlow, false)
			return
		}
		t.q.fifos[ClassNewFlow].Push(p)
	default:
		t.q.fifos[class].Push(p)
	}

	// Enforce the global buffer budget by evicting from the least
	// valuable class.
	for t.q.totalLen() > t.cfg.Capacity {
		victim, vclass := t.evict()
		if victim == nil {
			break
		}
		t.dropPacket(victim, vclass, vclass == ClassRecovery)
	}
}

// level2 lists the equal-priority middle queues in round-robin order.
var level2 = [...]Class{ClassNewFlow, ClassOverPenalized, ClassBelowFair}

// evict selects a drop victim when the buffer overflows. Above-fair
// packets go first; otherwise the victim is the newest packet of the
// single flow occupying the most buffer across the Level-2 queues —
// per-flow drop control approximating Fair Queuing (§3.2) — so a
// 1-packet flow in danger of a timeout never loses to a bursty one.
// Recovery packets are shed only as a last resort (shortest silence
// first).
func (t *TAQ) evict() (*packet.Packet, Class) {
	if t.cfg.NoOccupancyDrops {
		// Ablation: plain within-class tail drop.
		for _, c := range [...]Class{ClassAboveFair, ClassBelowFair, ClassNewFlow, ClassOverPenalized} {
			if t.q.fifos[c].Len() > 0 {
				return t.q.fifos[c].PopNewest(), c
			}
		}
		if t.q.recovery.Len() > 0 {
			return t.q.recovery.popWorst(), ClassRecovery
		}
		return nil, ClassAboveFair
	}
	score := t.victimScoreFn
	if t.q.fifos[ClassAboveFair].Len() > 0 {
		fl, _, _ := t.q.fifos[ClassAboveFair].BestVictim(score)
		return t.q.fifos[ClassAboveFair].PopFlow(fl), ClassAboveFair
	}
	var (
		bestClass Class
		bestFlow  packet.FlowID
		bestOcc   int
		found     bool
	)
	for _, c := range [...]Class{ClassBelowFair, ClassOverPenalized, ClassNewFlow} {
		fl, occ, ok := t.q.fifos[c].BestVictim(score)
		if !ok {
			continue
		}
		if !found || occ > bestOcc || (occ == bestOcc && score(fl) > score(bestFlow)) {
			bestClass, bestFlow, bestOcc, found = c, fl, occ, true
		}
	}
	if found {
		return t.q.fifos[bestClass].PopFlow(bestFlow), bestClass
	}
	if t.q.recovery.Len() > 0 {
		return t.q.recovery.popWorst(), ClassRecovery
	}
	return nil, ClassAboveFair
}

// dropPacket records a congestion drop: it feeds the loss window that
// LossRate (and through it, admission control) reads.
func (t *TAQ) dropPacket(p *packet.Packet, class Class, rtx bool) {
	t.agg.noteDrop()
	t.recordDrop(p, class, rtx)
}

// dropPolicy records an admission-policy drop — a blocked SYN or data
// of an un-admitted pool. The sender loses the packet exactly like a
// congestion drop (tracker prediction, trace event, and drop hook all
// fire), but the loss window must not see it: admission control's own
// drops would otherwise inflate the LossRate that gates allowSyn, and
// a storm of un-admitted pools could hold admission shut at low real
// congestion until the Twait pacer drained the queue one pool at a
// time. The packet is removed from the window's arrival count too, so
// blocked storms neither inflate nor dilute the congestion signal.
func (t *TAQ) dropPolicy(p *packet.Packet, class Class, rtx bool) {
	t.Stats.PolicyDrops++
	if t.mx != nil {
		t.mx.PolicyDrops.Inc()
	}
	t.agg.uncountArrival()
	t.recordDrop(p, class, rtx)
}

// recordDrop is the shared tail of both drop paths: counters, trace
// event, tracker state prediction, and the drop hook.
func (t *TAQ) recordDrop(p *packet.Packet, class Class, rtx bool) {
	t.Stats.Drops++
	t.Stats.DropsByClass[class]++
	t.mx.observeDrop(class, rtx)
	if t.rec != nil {
		t.rec.Drop(t.run.Now(), p, int8(class), rtx)
	}
	t.tracker.recordDrop(p, rtx)
	t.Drop(p)
}

// Dequeue implements queue.Discipline: the three-level hierarchical
// scheduler of §4.2.
//
//taq:hotpath TAQ per-packet scheduling path (§4.2)
func (t *TAQ) Dequeue() *packet.Packet {
	// Level 1: Recovery — strict priority, but rate-capped so
	// retransmissions cannot monopolize the link.
	if t.q.recovery.Len() > 0 &&
		float64(t.winServedRec+t.prevServedRec) <
			t.cfg.RecoveryShare*float64(t.winServed+t.prevServed+1) {
		return t.serve(t.q.recovery.popBest(), ClassRecovery)
	}
	// Level 2: NewFlow, OverPenalized, BelowFairShare at equal
	// priority, served round-robin so none starves (the NewFlow queue
	// is already capacity-limited at enqueue).
	for i := 0; i < len(level2); i++ {
		c := level2[(t.rrCursor+i)%len(level2)]
		if t.q.fifos[c].Len() > 0 {
			t.rrCursor = (t.rrCursor + i + 1) % len(level2)
			return t.serve(t.q.fifos[c].Pop(), c)
		}
	}
	// Level 3: AboveFairShare.
	if t.q.fifos[ClassAboveFair].Len() > 0 {
		return t.serve(t.q.fifos[ClassAboveFair].Pop(), ClassAboveFair)
	}
	// Work conservation: if only recovery packets remain, serve them
	// even past the share cap rather than idling the link.
	if t.q.recovery.Len() > 0 {
		return t.serve(t.q.recovery.popBest(), ClassRecovery)
	}
	return nil
}

func (t *TAQ) serve(p *packet.Packet, class Class) *packet.Packet {
	t.winServed++
	if class == ClassRecovery {
		t.winServedRec++
	}
	t.Stats.Served++
	t.Stats.ServedByClass[class]++
	if t.mx != nil {
		// Guarded so the sojourn arithmetic itself is skipped when
		// metrics are off, per the nil-hook convention.
		t.mx.observeServe(class, t.run.Now()-p.Enqueued)
	}
	t.tracker.observeForwarded(p)
	return p
}

// ObserveReverse feeds the middlebox an ack-path packet when it is
// deployed where it sees two-way traffic (§3.3's conventional mode).
// The packet is only observed, never queued; the resulting downstream
// and upstream RTT halves replace the one-way epoch heuristics.
//
//taq:hotpath runs per ACK in two-way deployments (§3.3)
func (t *TAQ) ObserveReverse(p *packet.Packet) { t.tracker.observeReverse(p) }

// FlowEpoch exposes a flow's current epoch (RTT) estimate.
func (t *TAQ) FlowEpoch(id packet.FlowID) (sim.Time, bool) {
	f := t.tracker.get(id)
	if f == nil {
		return 0, false
	}
	return f.epoch, true
}

// Len implements queue.Discipline.
func (t *TAQ) Len() int { return t.q.totalLen() }

// Bytes implements queue.Discipline.
func (t *TAQ) Bytes() int { return t.q.totalBytes() }

// QueueLen returns the length of one class queue (instrumentation).
func (t *TAQ) QueueLen(c Class) int { return t.q.lenOf(c) }

var _ queue.Discipline = (*TAQ)(nil)

// Bps re-exports the link rate type for callers configuring TAQ.
type Bps = link.Bps
