package core

import (
	"taq/internal/obs"
	"taq/internal/packet"
	"taq/internal/sim"
)

// poolInfo tracks one flow pool (a set of inter-related flows from the
// same application session, §4.3). Records live in the admission
// controller's flat table, not behind individual heap pointers.
type poolInfo struct {
	waitingSince sim.Time
	lastActive   sim.Time
	key          packet.PoolID
	admitted     bool
	waited       bool
	inUse        bool
}

// admPoolTable is the admission controller's pool state in the same
// flat open-addressed shape as the tracker's stores (flowstore.go):
// poolInfo records in a slice, a free list of expired slots, and an
// oaIndex from PoolID → slot, so the admission decision on the packet
// path does no Go map access.
//
// Pointer discipline: create can grow recs and relocate every record,
// so a *poolInfo must never be held across a create — work with slots
// and re-derive &recs[slot] after any call that may file a record
// (TestPoolRecordPointersMoveOnCreate pins the hazard; flowstore.go
// states the same rule for flow records).
type admPoolTable struct {
	recs []poolInfo
	free []int32
	idx  oaIndex // PoolID → slot
}

// lookup returns pool's record, or nil. The pointer is valid only
// until the next create (see the type comment).
func (pt *admPoolTable) lookup(pool packet.PoolID) *poolInfo {
	slot, ok := pt.idx.get(int32(pool))
	if !ok {
		return nil
	}
	return &pt.recs[slot]
}

// create files a zeroed record for pool (which must be absent) and
// returns its slot. It returns the slot, not a pointer, precisely
// because the append below may have moved every existing record.
func (pt *admPoolTable) create(pool packet.PoolID) int32 {
	var slot int32
	if n := len(pt.free); n > 0 {
		slot = pt.free[n-1]
		pt.free = pt.free[:n-1]
		pt.recs[slot] = poolInfo{}
	} else {
		slot = int32(len(pt.recs))
		pt.recs = append(pt.recs, poolInfo{}) //taq:allow noalloc amortized pool-array growth; expired slots are free-list recycled
	}
	pi := &pt.recs[slot]
	pi.key, pi.inUse = pool, true
	pt.idx.put(int32(pool), slot)
	return slot
}

// releaseSlot unfiles the record in slot and recycles it.
func (pt *admPoolTable) releaseSlot(slot int32) {
	pi := &pt.recs[slot]
	pt.idx.del(int32(pi.key))
	pi.inUse = false
	pt.free = append(pt.free, slot)
}

// admission implements §4.3 flow-pool admission control: a flow is
// admitted if its pool is already admitted, or if the pool is new and
// the loss rate sits below a threshold slightly under p_thresh. Pools
// that wait are admitted in FIFO order, and every pool is guaranteed
// admission within Twait (chosen below the TCP SYN timeout so a
// retried SYN of a waiting pool gets through).
//
// The controller is clock-free: every entry point takes now from the
// caller. In a sharded middlebox the shards may run on separate
// engines, and the shared controller (owned by the Aggregator, under
// admMu) must do its Twait arithmetic on the calling shard's timeline.
type admission struct {
	cfg     Config
	pools   admPoolTable
	waiting []packet.PoolID
	stats   *Stats
	// lastForceAdmit paces Twait-guaranteed admissions to one pool
	// per Twait while the loss rate stays above the threshold.
	lastForceAdmit sim.Time
	// rec, when non-nil, receives AdmissionDecision trace events
	// (installed via TAQ.SetRecorder).
	rec *obs.Recorder
	// mx, when non-nil, counts decisions (installed via
	// TAQ.SetMetrics).
	mx *Metrics
}

// threshold is the admit-below loss rate: p_thresh shaved by the
// congestion-avoidance margin.
func (a *admission) threshold() float64 {
	return a.cfg.PThresh * (1 - a.cfg.AdmitMargin)
}

// allowSyn decides whether the SYN of the given pool may proceed.
func (a *admission) allowSyn(now sim.Time, pool packet.PoolID, lossRate float64) bool {
	if pool == packet.PoolNone {
		return true
	}
	slot, ok := a.pools.idx.get(int32(pool))
	if !ok {
		// create may relocate the whole record array; it returns the
		// slot and the record pointer is derived only afterward.
		slot = a.pools.create(pool)
		a.pools.recs[slot].waitingSince = now
	}
	pi := &a.pools.recs[slot]
	pi.lastActive = now
	if pi.admitted {
		return true
	}
	headOfLine := len(a.waiting) == 0 || a.waiting[0] == pool
	switch {
	case headOfLine && now-pi.waitingSince >= a.cfg.Twait && now-a.lastForceAdmit >= a.cfg.Twait:
		// The Twait guarantee admits one waiting pool per Twait (the
		// head of the FIFO), pacing admissions under persistent
		// overload rather than opening the floodgates.
		a.lastForceAdmit = now
		a.admit(pool, pi)
		a.mx.observeAdmission(obs.AdmissionForced)
		a.rec.AdmissionDecision(now, pool, obs.AdmissionForced)
		return true
	case headOfLine && lossRate < a.threshold():
		// Loss is low and this pool is next in line (or nobody waits).
		a.admit(pool, pi)
		a.mx.observeAdmission(obs.AdmissionAdmitted)
		a.rec.AdmissionDecision(now, pool, obs.AdmissionAdmitted)
		return true
	default:
		a.enqueueWaiting(pool)
		pi.waited = true
		a.mx.observeAdmission(obs.AdmissionBlocked)
		a.rec.AdmissionDecision(now, pool, obs.AdmissionBlocked)
		return false
	}
}

// poolAdmitted reports whether the pool may send data packets.
func (a *admission) poolAdmitted(now sim.Time, pool packet.PoolID) bool {
	if pool == packet.PoolNone {
		return true
	}
	pi := a.pools.lookup(pool)
	if pi == nil {
		return false
	}
	pi.lastActive = now
	return pi.admitted
}

// admit marks the pool admitted. pi must have been derived after the
// last create (no create happens between derivation in allowSyn and
// this call).
func (a *admission) admit(pool packet.PoolID, pi *poolInfo) {
	pi.admitted = true
	a.removeWaiting(pool)
	a.stats.PoolsAdmitted++
	if pi.waited {
		a.stats.PoolsWaited++
	}
}

func (a *admission) enqueueWaiting(pool packet.PoolID) {
	for _, w := range a.waiting {
		if w == pool {
			return
		}
	}
	a.waiting = append(a.waiting, pool) //taq:allow noalloc bounded by waiting pools; amortized growth
}

func (a *admission) removeWaiting(pool packet.PoolID) {
	for i, w := range a.waiting {
		if w == pool {
			a.waiting = append(a.waiting[:i], a.waiting[i+1:]...)
			return
		}
	}
}

// expire evicts pools inactive longer than the flow expiry (waiting
// pools are kept: their Twait guarantee must survive). The walk runs in
// slot order over the flat table — deterministic, unlike the map
// iteration it replaced — and doubles as the index's off-packet-path
// growth point.
func (a *admission) expire(now sim.Time) {
	a.pools.idx.maybeGrow()
	for i := range a.pools.recs {
		pi := &a.pools.recs[i]
		if pi.inUse && pi.admitted && now-pi.lastActive > a.cfg.FlowExpiry {
			a.pools.releaseSlot(int32(i))
		}
	}
}

// WaitingPools returns how many pools are queued for admission.
func (a *admission) waitingPools() int { return len(a.waiting) }

// expectedWait estimates how long the pool will wait before
// admission, assuming the loss rate stays above the threshold so
// admissions are Twait-paced FIFO. Zero for admitted or unknown pools.
// §4.3: a proxy-mode middlebox can surface this to the user as "a
// visible queue of requests with expected wait times".
func (a *admission) expectedWait(now sim.Time, pool packet.PoolID) sim.Time {
	pi := a.pools.lookup(pool)
	if pi == nil || pi.admitted {
		return 0
	}
	pos := -1
	for i, w := range a.waiting {
		if w == pool {
			pos = i
			break
		}
	}
	if pos < 0 {
		return 0
	}
	// Head of line: the remainder of its own (and the pacer's) Twait.
	headWait := a.cfg.Twait - (now - a.pools.lookup(a.waiting[0]).waitingSince)
	if pace := a.cfg.Twait - (now - a.lastForceAdmit); pace > headWait {
		headWait = pace
	}
	if headWait < 0 {
		headWait = 0
	}
	return headWait + sim.Time(pos)*a.cfg.Twait
}
