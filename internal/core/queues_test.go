package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"taq/internal/link"
	"taq/internal/packet"
	"taq/internal/sim"
)

func TestClassFIFOBasics(t *testing.T) {
	var f classFIFO
	if f.Pop() != nil || f.PopNewest() != nil || f.PopVictim() != nil {
		t.Error("empty classFIFO should return nil")
	}
	for i := 0; i < 5; i++ {
		f.Push(dataPkt(packet.FlowID(i), i))
	}
	if f.Len() != 5 || f.Bytes() != 5*500 {
		t.Fatalf("Len=%d Bytes=%d", f.Len(), f.Bytes())
	}
	if p := f.Pop(); p.Seq != 0 {
		t.Errorf("Pop = seq %d, want FIFO head", p.Seq)
	}
	if p := f.PopNewest(); p.Seq != 4 {
		t.Errorf("PopNewest = seq %d, want 4", p.Seq)
	}
}

func TestClassFIFOVictimIsHeaviestFlow(t *testing.T) {
	var f classFIFO
	// Flow 7 has 3 packets, others 1 each.
	f.Push(dataPkt(1, 0))
	f.Push(dataPkt(7, 0))
	f.Push(dataPkt(7, 1))
	f.Push(dataPkt(2, 0))
	f.Push(dataPkt(7, 2))
	fl, occ, ok := f.BestVictim(func(packet.FlowID) float64 { return 0 })
	if !ok || fl != 7 || occ != 3 {
		t.Fatalf("BestVictim = %d/%d/%v, want flow 7 occ 3", fl, occ, ok)
	}
	// Victim removal takes the newest packet of flow 7 (seq 2) and
	// leaves FIFO order for the rest.
	if p := f.PopVictim(); p.Flow != 7 || p.Seq != 2 {
		t.Fatalf("PopVictim = %v", p)
	}
	order := []struct {
		flow packet.FlowID
		seq  int
	}{{1, 0}, {7, 0}, {7, 1}, {2, 0}}
	for _, want := range order {
		p := f.Pop()
		if p.Flow != want.flow || p.Seq != want.seq {
			t.Fatalf("order broken: got %v want %v", p, want)
		}
	}
}

func TestClassFIFOScoreTieBreak(t *testing.T) {
	var f classFIFO
	f.Push(dataPkt(1, 0))
	f.Push(dataPkt(2, 0))
	// Equal occupancy: the higher-scoring (higher-rate) flow loses.
	score := func(fl packet.FlowID) float64 {
		if fl == 2 {
			return 100
		}
		return 1
	}
	if fl, _, _ := f.BestVictim(score); fl != 2 {
		t.Errorf("victim = %d, want higher-rate flow 2", fl)
	}
}

func TestClassFIFOPopFlowMissing(t *testing.T) {
	var f classFIFO
	f.Push(dataPkt(1, 0))
	if f.PopFlow(9) != nil {
		t.Error("PopFlow of absent flow should be nil")
	}
	if f.Len() != 1 {
		t.Error("PopFlow of absent flow must not disturb queue")
	}
}

// Property: classFIFO conserves packets and bytes under arbitrary
// push/pop/victim interleavings, and occupancy counts always match the
// queue contents.
func TestClassFIFOConservationProperty(t *testing.T) {
	f := func(ops []uint8) bool {
		var q classFIFO
		pushed, removed := 0, 0
		seq := 0
		for _, op := range ops {
			switch op % 4 {
			case 0, 1:
				q.Push(dataPkt(packet.FlowID(op%5), seq))
				seq++
				pushed++
			case 2:
				if q.Pop() != nil {
					removed++
				}
			case 3:
				if q.PopVictim() != nil {
					removed++
				}
			}
		}
		if q.Len() != pushed-removed || q.Bytes() != 500*(pushed-removed) {
			return false
		}
		// Drain and recount occupancy consistency.
		counts := map[packet.FlowID]int{}
		for {
			p := q.Pop()
			if p == nil {
				break
			}
			counts[p.Flow]++
		}
		return q.Len() == 0 && q.Bytes() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(9))}); err != nil {
		t.Error(err)
	}
}

// Property: the recovery queue always pops in non-increasing silence
// order via popBest, regardless of push order.
func TestRecoveryQueueOrderProperty(t *testing.T) {
	f := func(silences []uint16) bool {
		var rq recoveryQueue
		for i, s := range silences {
			rq.push(dataPkt(packet.FlowID(i), i), sim.Time(s)*sim.Millisecond)
		}
		prev := sim.Time(1 << 62)
		for rq.Len() > 0 {
			it := rq.items[0]
			_ = it
			p := rq.popBest()
			_ = p
			// Track via the heap's exposed ordering: re-derive the
			// silence by finding it in the input (index = seq).
			s := sim.Time(silences[p.Seq]) * sim.Millisecond
			if s > prev {
				return false
			}
			prev = s
		}
		return rq.bytes == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100, Rand: rand.New(rand.NewSource(10))}); err != nil {
		t.Error(err)
	}
}

func TestProportionalFairShare(t *testing.T) {
	e := sim.NewEngine(1)
	cfg := DefaultConfig(600*link.Kbps, 30)
	cfg.Fairness = Proportional
	q := New(e, cfg)
	q.Start()
	// Two flows with very different epochs: the short-RTT flow gets
	// the larger proportional share.
	q.Enqueue(synPkt(1, packet.PoolNone))
	q.Enqueue(synPkt(2, packet.PoolNone))
	fa := q.tracker.get(1)
	fb := q.tracker.get(2)
	fa.epoch = 100 * sim.Millisecond
	fb.epoch = 400 * sim.Millisecond
	// Direct epoch edits bypass observe(); resync the incremental
	// inverse-epoch sum the scan reads.
	q.tracker.reconcile(fa)
	q.tracker.reconcile(fb)
	e.RunUntil(300 * sim.Millisecond) // let a scan cache invEpochSum
	sa := q.flowFairShare(fa)
	sb := q.flowFairShare(fb)
	if sa <= sb {
		t.Errorf("short-RTT share %v ≤ long-RTT share %v", sa, sb)
	}
	// Shares still sum to the link rate.
	if got := sa + sb; got < 0.99*600e3 || got > 1.01*600e3 {
		t.Errorf("share sum = %v, want ≈600k", got)
	}
}
