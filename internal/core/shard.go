package core

import (
	"taq/internal/obs"
	"taq/internal/packet"
	"taq/internal/queue"
	"taq/internal/sim"
)

// ShardOf maps a flow to its owning shard among n: a Fibonacci hash of
// the flow id reduced mod n. The multiplicative mix keeps structured
// id spaces (sequential ids, per-host strides) spread evenly; the same
// function is exported so drivers that partition work per shard (the
// emu shard bank, the shard-scaling experiment) agree with the
// middlebox about ownership.
func ShardOf(f packet.FlowID, n int) int {
	if n <= 1 {
		return 0
	}
	return int(uint32(f) * 0x9E3779B9 % uint32(n))
}

// Sharded is an N-way flow-hash-partitioned TAQ middlebox (ROADMAP
// item 1; DESIGN.md §12). Each shard is a complete TAQ — its own
// tracker, flow store, class queues, and scheduler accounting, all
// //taq:shardowned — and the shards share exactly one thing: the
// Aggregator's loss window and admission controller, reached only
// through //taq:crossshard seams.
//
// Sharded itself implements queue.Discipline, so it drops in wherever
// a single TAQ does (the sim path drives all shards from one engine
// and stays deterministic; the emu shard bank gives each shard its own
// engine and lock domain). With n=1 every method delegates straight to
// the single shard, whose code path is byte-identical to a standalone
// TAQ.
type Sharded struct {
	shards []*TAQ
	agg    *Aggregator
	rr     int
}

// NewSharded builds an n-shard middlebox with every shard driven by
// the same runner — the simulation form. n < 1 is treated as 1.
func NewSharded(run sim.Runner, cfg Config, n int) *Sharded {
	if n < 1 {
		n = 1
	}
	runs := make([]sim.Runner, n)
	for i := range runs {
		runs[i] = run
	}
	return NewShardedOn(runs, cfg)
}

// NewShardedOn builds one shard per runner — the emu form, where each
// shard lives on its own engine (its own lock domain and timers). The
// aggregator's window opens at the first runner's clock.
func NewShardedOn(runs []sim.Runner, cfg Config) *Sharded {
	agg := NewAggregator(cfg, runs[0].Now())
	s := &Sharded{
		shards: make([]*TAQ, len(runs)),
		agg:    agg,
	}
	for i, run := range runs {
		s.shards[i] = NewShard(run, cfg, agg)
	}
	return s
}

// NumShards returns the shard count.
func (s *Sharded) NumShards() int { return len(s.shards) }

// Shard returns shard i, for drivers that address shards directly
// (each emu shard goroutine feeds exactly its own shard).
func (s *Sharded) Shard(i int) *TAQ { return s.shards[i] }

// Aggregator returns the shared cross-shard state.
func (s *Sharded) Aggregator() *Aggregator { return s.agg }

// Start starts every shard's periodic scan.
func (s *Sharded) Start() {
	for _, sh := range s.shards {
		sh.Start()
	}
}

// Stop cancels every shard's periodic scan.
func (s *Sharded) Stop() {
	for _, sh := range s.shards {
		sh.Stop()
	}
}

// Enqueue implements queue.Discipline: the packet goes to the shard
// that owns its flow.
func (s *Sharded) Enqueue(p *packet.Packet) {
	s.shards[ShardOf(p.Flow, len(s.shards))].Enqueue(p)
}

// Dequeue implements queue.Discipline: shards are served round-robin,
// each running its own 3-level hierarchical scheduler internally. With
// one shard this is exactly the single TAQ scheduler.
func (s *Sharded) Dequeue() *packet.Packet {
	n := len(s.shards)
	for i := 0; i < n; i++ {
		sh := s.shards[(s.rr+i)%n]
		if p := sh.Dequeue(); p != nil {
			s.rr = (s.rr + i + 1) % n
			return p
		}
	}
	return nil
}

// Len implements queue.Discipline: total packets across shards.
func (s *Sharded) Len() int {
	n := 0
	for _, sh := range s.shards {
		n += sh.Len()
	}
	return n
}

// Bytes implements queue.Discipline: total bytes across shards.
func (s *Sharded) Bytes() int {
	n := 0
	for _, sh := range s.shards {
		n += sh.Bytes()
	}
	return n
}

// SetDropHook implements queue.Discipline on every shard.
func (s *Sharded) SetDropHook(fn func(*packet.Packet)) {
	for _, sh := range s.shards {
		sh.SetDropHook(fn)
	}
}

// AddDropHook implements queue.Discipline on every shard.
func (s *Sharded) AddDropHook(fn func(*packet.Packet)) {
	for _, sh := range s.shards {
		sh.AddDropHook(fn)
	}
}

// ObserveReverse routes an ack-path packet to the shard owning its
// flow (§3.3 two-way deployments).
func (s *Sharded) ObserveReverse(p *packet.Packet) {
	s.shards[ShardOf(p.Flow, len(s.shards))].ObserveReverse(p)
}

// SetRecorder installs one trace recorder on every shard (and, through
// the first shard, on the shared admission controller). Only safe when
// all shards run on one engine — the sim path; per-engine emu shards
// must keep recorders per shard.
func (s *Sharded) SetRecorder(rec *obs.Recorder) {
	for _, sh := range s.shards {
		sh.SetRecorder(rec)
	}
}

// SetMetrics installs one instrument bundle on every shard. Registry
// cells are atomics, so this is safe even with per-engine shards; the
// emu shard bank instead gives each shard its own registry and merges
// snapshots at the edge.
func (s *Sharded) SetMetrics(mx *Metrics) {
	for _, sh := range s.shards {
		sh.SetMetrics(mx)
	}
}

// Stats sums the per-shard counters and the shared aggregator's
// admission counters into one middlebox view.
func (s *Sharded) Stats() Stats {
	var sum Stats
	for _, sh := range s.shards {
		sum.Add(&sh.Stats)
	}
	adm := s.agg.AdmissionStats()
	sum.PoolsAdmitted += adm.PoolsAdmitted
	sum.PoolsWaited += adm.PoolsWaited
	return sum
}

// ActiveFlows sums the shards' active flow counts.
func (s *Sharded) ActiveFlows() int {
	n := 0
	for _, sh := range s.shards {
		n += sh.ActiveFlows()
	}
	return n
}

// RecoveringFlows sums the shards' recovering flow counts.
func (s *Sharded) RecoveringFlows() int {
	n := 0
	for _, sh := range s.shards {
		n += sh.RecoveringFlows()
	}
	return n
}

// StateCensus sums the shards' per-state flow censuses.
func (s *Sharded) StateCensus() Census {
	var c Census
	for _, sh := range s.shards {
		sc := sh.StateCensus()
		for i := range c {
			c[i] += sc[i]
		}
	}
	return c
}

// QueueLen sums one class's queue length across shards.
func (s *Sharded) QueueLen(c Class) int {
	n := 0
	for _, sh := range s.shards {
		n += sh.QueueLen(c)
	}
	return n
}

// LossRate reads the shared loss window (identical on every shard).
func (s *Sharded) LossRate() float64 { return s.agg.lossRate() }

// LossEWMA reads the shared smoothed loss rate.
func (s *Sharded) LossEWMA() float64 { return s.agg.lossEWMAValue() }

// WaitingPools reads the shared admission queue length.
func (s *Sharded) WaitingPools() int { return s.agg.waitingPools() }

var _ queue.Discipline = (*Sharded)(nil)
