package core

import (
	"testing"

	"taq/internal/link"
	"taq/internal/packet"
	"taq/internal/sim"
)

// TestPoolRecordPointersMoveOnCreate pins the pointer-discipline rule
// the flat tables live by (admission.go, flowstore.go): create/alloc
// appends to the record slice, so growth relocates every existing
// record and a *poolInfo held across a create aliases the dead backing
// array. The old admission code did exactly that — create returned the
// record pointer and allowSyn kept using it after later table growth —
// which is why create now returns a slot and every caller re-derives
// &recs[slot] afterward.
func TestPoolRecordPointersMoveOnCreate(t *testing.T) {
	var pt admPoolTable

	first := pt.create(1)
	pt.recs[first].waitingSince = 42
	stale := &pt.recs[first]

	// Grow until append reallocates the backing array out from under
	// the held pointer. Capacity doubling guarantees this within the
	// first few thousand creates.
	moved := false
	for id := packet.PoolID(2); id < 5000; id++ {
		pt.create(id)
		if &pt.recs[first] != stale {
			moved = true
			break
		}
	}
	if !moved {
		t.Fatal("record array never relocated; the test no longer exercises the hazard")
	}

	// The slot, unlike the pointer, survives the relocation.
	live := &pt.recs[first]
	if live.key != 1 || live.waitingSince != 42 || !live.inUse {
		t.Fatalf("slot %d lost its record across growth: %+v", first, *live)
	}
	if slot, ok := pt.idx.get(1); !ok || slot != first {
		t.Fatalf("index maps pool 1 to (%d,%v), want slot %d", slot, ok, first)
	}

	// Writes through the stale pointer land in the dead array: the live
	// record must not see them. This is the silent corruption the
	// slot-return contract exists to prevent.
	stale.admitted = true
	if pt.recs[first].admitted {
		t.Fatal("stale pointer still aliases the live record")
	}
}

// TestAdmissionSurvivesTableGrowth drives the §4.3 controller itself
// across many table growths: every pool admitted before a growth must
// still be admitted after it, and the FIFO/Twait bookkeeping must stay
// on the live records (a regression here means a pointer was held
// across create).
func TestAdmissionSurvivesTableGrowth(t *testing.T) {
	eng := sim.NewEngine(1)
	cfg := DefaultConfig(600*link.Kbps, 32)
	cfg.AdmissionControl = true
	a := admission{cfg: cfg, stats: &Stats{}}

	// Low loss: every head-of-line SYN admits immediately. 10k pools
	// force several record-array doublings mid-sequence.
	const pools = 10_000
	for id := 1; id <= pools; id++ {
		if !a.allowSyn(eng.Now(), packet.PoolID(id), 0) {
			t.Fatalf("pool %d blocked under zero loss", id)
		}
	}
	for id := 1; id <= pools; id++ {
		if !a.poolAdmitted(eng.Now(), packet.PoolID(id)) {
			t.Fatalf("pool %d lost its admission across table growth", id)
		}
	}
	if a.stats.PoolsAdmitted != pools {
		t.Fatalf("PoolsAdmitted = %d, want %d", a.stats.PoolsAdmitted, pools)
	}
}

// TestIndexEmergencyGrowthValve covers put's 7/8 safety valve: a
// sustained insert burst with no scan-cadence maybeGrow in between
// must keep the table at or under 7/8 load after every insert (put
// checks before inserting, so 7/8 exactly is the worst legal state —
// the table is never full and probe loops terminate) and lose nothing.
func TestIndexEmergencyGrowthValve(t *testing.T) {
	var ix oaIndex
	const keys = 100_000
	for k := int32(1); k <= keys; k++ {
		ix.put(k, k*2)
		cap := len(ix.slots)
		if ix.n > cap-cap/8 {
			t.Fatalf("after %d burst inserts load is %d/%d, valve never fired", k, ix.n, cap)
		}
	}
	for k := int32(1); k <= keys; k++ {
		if v, ok := ix.get(k); !ok || v != k*2 {
			t.Fatalf("get(%d) = (%d,%v) after burst growth, want %d", k, v, ok, k*2)
		}
	}
}

// TestIndexValveAfterChurn re-runs the valve under free-list-style
// churn: deletions open holes, then a burst refills past the old
// population with maybeGrow never called, exercising emergency growth
// from a table whose chains were backshift-compacted.
func TestIndexValveAfterChurn(t *testing.T) {
	var ix oaIndex
	shadow := map[int32]int32{}
	for k := int32(1); k <= 1000; k++ {
		ix.put(k, k)
		shadow[k] = k
	}
	for k := int32(1); k <= 1000; k += 2 {
		ix.del(k)
		delete(shadow, k)
	}
	for k := int32(1001); k <= 50_000; k++ {
		ix.put(k, -k)
		shadow[k] = -k
		cap := len(ix.slots)
		if ix.n > cap-cap/8 {
			t.Fatalf("at key %d load is %d/%d, valve never fired", k, ix.n, cap)
		}
	}
	checkIndexAgainstShadow(t, &ix, shadow)
}

// TestMaybeGrowThresholdBelowValve pins the two-threshold design: the
// scan-cadence maybeGrow (5/8) must trip strictly before the packet
// path's emergency valve (7/8), so steady-state growth happens on the
// control loop, never under a packet.
func TestMaybeGrowThresholdBelowValve(t *testing.T) {
	var ix oaIndex
	k := int32(1)
	// Fill to exactly the maybeGrow threshold without tripping put's
	// valve on the way.
	for {
		cap := len(ix.slots)
		if cap > 0 && ix.n >= cap/2+cap/8 {
			break
		}
		ix.put(k, k)
		k++
	}
	capBefore := len(ix.slots)
	if ix.n >= capBefore-capBefore/8 {
		t.Fatalf("load %d/%d already past the emergency valve at the scan threshold", ix.n, capBefore)
	}
	ix.maybeGrow()
	if len(ix.slots) != 2*capBefore {
		t.Fatalf("maybeGrow at 5/8 load left capacity %d, want %d", len(ix.slots), 2*capBefore)
	}
	for i := int32(1); i < k; i++ {
		if v, ok := ix.get(i); !ok || v != i {
			t.Fatalf("get(%d) = (%d,%v) after scan-cadence growth", i, v, ok)
		}
	}
}
