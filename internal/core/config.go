// Package core implements Timeout Aware Queuing (TAQ), the paper's
// contribution: an in-network middlebox queue discipline that tracks
// the approximate TCP state of every flow (§3.3, Fig 7), classifies
// packets into five queues — Recovery, NewFlow, OverPenalized,
// BelowFairShare, AboveFairShare — served by a three-level hierarchical
// scheduler (§4.2), chooses drop victims to minimize timeouts and
// repetitive timeouts (§4.1), and optionally performs flow-pool
// admission control when the loss rate crosses the model's tipping
// point (§4.3).
//
// TAQ implements queue.Discipline, so it drops into the same
// bottleneck link used by DropTail/RED/SFQ, and is engine-agnostic: it
// runs identically under the discrete-event simulator and the
// real-time prototype engine (internal/emu).
package core

import (
	"taq/internal/link"
	"taq/internal/sim"
)

// FairnessModel selects how TAQ computes per-flow fair shares (§4.2:
// "TAQ can adopt either the standard fair-queuing based fairness model
// or can support the proportional fairness model using the RTT
// estimates of flows").
type FairnessModel uint8

const (
	// FairQueuing gives every active flow an equal share C/N (the
	// model the paper evaluates).
	FairQueuing FairnessModel = iota
	// Proportional weights each flow's share by the inverse of its
	// estimated RTT (epoch), mimicking TCP's natural bias.
	Proportional
)

// Config parameterizes a TAQ middlebox.
type Config struct {
	// Capacity is the total buffer across all queues, in packets.
	Capacity int
	// Rate is the output (bottleneck) link rate, used for fair-share
	// computation; §4.4: TAQ nodes are "constantly aware of the
	// available bandwidth on the underlying network".
	Rate link.Bps
	// MSS is the data packet wire size, for rate conversions.
	MSS int

	// RecoveryShare caps the fraction of transmissions served from
	// the Recovery queue (Level 1 is "capacity limited so recovery
	// packets cannot occupy more than a certain amount of network
	// resources").
	RecoveryShare float64
	// RecoveryCap bounds the Recovery queue length in packets.
	RecoveryCap int
	// NewFlowCap bounds the NewFlow queue length in packets ("we
	// explicitly limit the NewQueue capacity").
	NewFlowCap int
	// NewFlowEpochs is how many epochs a flow is considered new
	// (slow-start) for NewFlow queue classification.
	NewFlowEpochs int
	// NewFlowSegs also treats a slow-start flow as new while its
	// highest sequence is below this many segments — short web
	// objects ride the NewFlow queue end to end (§5.3).
	NewFlowSegs int
	// OverPenaltyDrops is the cumulative current+previous epoch drop
	// count that moves a flow to the OverPenalized queue (§4.2
	// Level 3: "more than 2 packet drops in an epoch").
	OverPenaltyDrops int

	// DefaultEpoch seeds per-flow epoch (RTT) estimates before any
	// observation.
	DefaultEpoch sim.Time
	// ScanInterval is the period of the silence-detection scan.
	ScanInterval sim.Time
	// FlowExpiry evicts flows silent this long.
	FlowExpiry sim.Time

	// AdmissionControl enables §4.3 flow-pool admission control.
	AdmissionControl bool
	// PThresh is the loss-rate tipping point beyond which admission
	// control engages (the model's p_thresh ≈ 0.1).
	PThresh float64
	// AdmitMargin shrinks the admission threshold below PThresh as a
	// congestion-avoidance strategy ("in practice, we use a threshold
	// slightly smaller than p_thresh").
	AdmitMargin float64
	// Twait guarantees a waiting flow pool admission after this long.
	Twait sim.Time
	// LossWindow is the loss-rate measurement window.
	LossWindow sim.Time

	// Fairness selects the fair-share model (default FairQueuing).
	Fairness FairnessModel
	// PoolFairShare computes fair shares across flow pools instead of
	// individual flows (§4.3: "TAQ can implement fair sharing across
	// flow pools ... to maintain fairness across applications. Once a
	// flow pool is identified, TAQ's queuing policy does not change
	// except the fair share calculation"). A pool's share is divided
	// among its active flows; pool-less flows count as singletons.
	PoolFairShare bool

	// Ablation switches (benchmarked by the ablation experiment; all
	// false in normal operation).

	// NoRecoveryPriority disables the Level-1 recovery queue:
	// retransmissions are classified like any other packet.
	NoRecoveryPriority bool
	// NoOccupancyDrops disables per-flow victim selection: overflow
	// drops the newest packet of the victim class regardless of which
	// flow it belongs to (plain tail drop within the class).
	NoOccupancyDrops bool
	// NoRecoveryProtection disables the OverPenalized classification
	// of flows in/after loss recovery.
	NoRecoveryProtection bool
}

// DefaultConfig returns a TAQ configuration for a bottleneck of the
// given rate and buffer capacity (packets). A capacity ≤ 0 defers the
// capacity-derived fields: callers (e.g. internal/topology) complete
// them with FillDerived once the real buffer size is known.
func DefaultConfig(rate link.Bps, capacity int) Config {
	cfg := Config{
		Rate:             rate,
		MSS:              500,
		RecoveryShare:    0.6,
		NewFlowEpochs:    4,
		NewFlowSegs:      32,
		OverPenaltyDrops: 2,
		DefaultEpoch:     200 * sim.Millisecond,
		ScanInterval:     100 * sim.Millisecond,
		FlowExpiry:       60 * sim.Second,
		PThresh:          0.1,
		AdmitMargin:      0.2,
		Twait:            8 * sim.Second,
		LossWindow:       2 * sim.Second,
	}
	if capacity > 0 {
		cfg.FillDerived(capacity)
	}
	return cfg
}

// FillDerived completes the buffer-capacity-derived fields that are
// still zero, for the given total capacity in packets.
func (c *Config) FillDerived(capacity int) {
	if capacity < 4 {
		capacity = 4
	}
	if c.Capacity == 0 {
		c.Capacity = capacity
	}
	if c.RecoveryCap == 0 {
		c.RecoveryCap = maxInt(4, c.Capacity)
	}
	if c.NewFlowCap == 0 {
		c.NewFlowCap = maxInt(2, c.Capacity/4)
	}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Stats counts middlebox-level events for the experiments.
type Stats struct {
	Arrivals uint64
	Drops    uint64
	// PolicyDrops counts the subset of Drops that were TAQ's own
	// admission decisions (blocked SYNs, data of un-admitted pools)
	// rather than congestion; they are excluded from the loss window.
	PolicyDrops   uint64
	DropsByClass  [numClasses]uint64
	Served        uint64
	ServedByClass [numClasses]uint64
	SynsBlocked   uint64 // SYNs dropped by admission control
	PoolsAdmitted uint64
	PoolsWaited   uint64 // pools that had to wait before admission
}

// Add accumulates o into s — the shard-merge used by Sharded.Stats and
// the emu shard bank.
func (s *Stats) Add(o *Stats) {
	s.Arrivals += o.Arrivals
	s.Drops += o.Drops
	s.PolicyDrops += o.PolicyDrops
	for i := range s.DropsByClass {
		s.DropsByClass[i] += o.DropsByClass[i]
	}
	s.Served += o.Served
	for i := range s.ServedByClass {
		s.ServedByClass[i] += o.ServedByClass[i]
	}
	s.SynsBlocked += o.SynsBlocked
	s.PoolsAdmitted += o.PoolsAdmitted
	s.PoolsWaited += o.PoolsWaited
}
