package core

import (
	"testing"

	"taq/internal/packet"
	"taq/internal/sim"
)

// TestAdmissionNotLockedByOwnDrops is the regression test for the
// admission lockout feedback loop: blocked SYNs used to count as loss-
// window drops, so a storm of un-admitted pools inflated the LossRate
// that gates allowSyn and held admission shut indefinitely (short of
// the Twait pacer) even after real congestion cleared.
func TestAdmissionNotLockedByOwnDrops(t *testing.T) {
	e := sim.NewEngine(1)
	cfg := testConfig()
	cfg.AdmissionControl = true
	cfg.Twait = 1000 * sim.Second // rule out the force-admit escape hatch
	q := New(e, cfg)
	q.Start()

	// One real congestion episode pushes the measured loss past the
	// admission threshold...
	q.setLossWindow(100, 50, 0, 0)
	storm := func() {
		for i := 0; i < 500; i++ {
			q.Enqueue(synPkt(packet.FlowID(1000+i), packet.PoolID(1000+i)))
			// Drain admitted SYNs so the NewFlow queue cap doesn't
			// turn the storm into real congestion drops.
			for q.Dequeue() != nil {
			}
		}
	}
	// ...so a storm of new pools is blocked.
	storm()
	if q.Stats.SynsBlocked != 500 {
		t.Fatalf("SynsBlocked = %d, want 500", q.Stats.SynsBlocked)
	}
	if q.Stats.PolicyDrops != 500 {
		t.Fatalf("PolicyDrops = %d, want 500", q.Stats.PolicyDrops)
	}

	// The congestion is over: no further real drops. Two loss windows
	// pass so the 100/50 episode ages out of LossRate, with the blocked
	// pools retrying their SYNs the whole time. The retries themselves
	// are policy drops and must not keep the measured loss high.
	for w := 0; w < 2; w++ {
		e.RunUntil(e.Now() + cfg.LossWindow + cfg.ScanInterval)
		storm()
	}
	e.RunUntil(e.Now() + cfg.LossWindow + cfg.ScanInterval)
	if lr := q.LossRate(); lr >= q.agg.adm.threshold() {
		t.Fatalf("LossRate = %v after congestion cleared, want < admission threshold %v (policy drops leaked into the loss window)",
			lr, q.agg.adm.threshold())
	}
	storm()
	if got := q.Stats.PoolsAdmitted; got != 500 {
		t.Errorf("PoolsAdmitted = %d, want all 500 once real loss cleared (admission locked by its own drops)", got)
	}
	if e.Now() >= cfg.Twait {
		t.Fatalf("test ran past Twait=%v; the assertion no longer isolates the feedback loop", cfg.Twait)
	}
}

// TestRecoveryShareCapIsWindowed is the regression test for recovery-
// share credit accumulation: with run-lifetime serve counters, a long
// recovery-free period banked RecoveryShare×lifetime services of
// credit, so a late retransmission burst held strict Level-1 priority
// far beyond the intended share. The cap must compare windowed
// counters that roll with the loss window.
func TestRecoveryShareCapIsWindowed(t *testing.T) {
	e := sim.NewEngine(1)
	cfg := testConfig()
	cfg.RecoveryShare = 0.25
	cfg.RecoveryCap = 1000
	cfg.Capacity = 1000
	q := New(e, cfg)
	q.Start()

	// A long recovery-free history: 1000 below-fair services.
	for i := 0; i < 1000; i++ {
		q.q.fifos[ClassBelowFair].Push(dataPkt(2, i))
	}
	for q.Dequeue() != nil {
	}
	// Two loss windows pass; the banked history must age out.
	e.RunUntil(e.Now() + 2*(cfg.LossWindow+cfg.ScanInterval))

	// A late recovery burst competes with fresh below-fair traffic.
	for i := 0; i < 100; i++ {
		q.q.recovery.push(dataPkt(1, i), sim.Second)
		q.q.fifos[ClassBelowFair].Push(dataPkt(3, i))
	}
	recovered := 0
	for i := 0; i < 100; i++ {
		if p := q.Dequeue(); p.Flow == 1 {
			recovered++
		}
	}
	if recovered < 20 || recovered > 30 {
		t.Errorf("late recovery burst served %d of first 100, want ≈25 (the share cap must be windowed, not lifetime)", recovered)
	}
}
