package core

import (
	"taq/internal/packet"
	"taq/internal/sim"
)

// Class identifies which of TAQ's five queues a packet was assigned to
// (§4.2).
type Class uint8

const (
	// ClassRecovery holds retransmitted packets, served at Level 1
	// with strict priority ordered by flow silence length.
	ClassRecovery Class = iota
	// ClassNewFlow holds packets of flows that just began (slow
	// start), Level 2, capacity-limited.
	ClassNewFlow
	// ClassOverPenalized holds packets of flows with multiple recent
	// drops, Level 2.
	ClassOverPenalized
	// ClassBelowFair holds packets of flows under their fair share,
	// Level 2.
	ClassBelowFair
	// ClassAboveFair holds packets of flows over their fair share,
	// Level 3 (lowest priority).
	ClassAboveFair

	numClasses = int(ClassAboveFair) + 1
)

// String implements fmt.Stringer.
func (c Class) String() string {
	switch c {
	case ClassRecovery:
		return "Recovery"
	case ClassNewFlow:
		return "NewFlow"
	case ClassOverPenalized:
		return "OverPenalized"
	case ClassBelowFair:
		return "BelowFairShare"
	case ClassAboveFair:
		return "AboveFairShare"
	default:
		return "Unknown"
	}
}

// recoveryItem is a queued retransmission with its priority key.
type recoveryItem struct {
	pkt *packet.Packet
	// silence is how long the packet's flow had been silent; longer
	// silences get strictly higher priority ("any retransmission from
	// a flow in an extended silence period should be prioritized over
	// a retransmission from a flow in a silence period", §4.1).
	silence sim.Time
	seq     uint64 // FIFO tiebreak
	index   int
}

// recoveryQueue is a concrete binary max-heap on silence length. Items
// never escape the queue (push takes a packet, pops return the packet),
// so fired items are recycled through a free list: steady-state
// retransmission traffic allocates no recoveryItems at all, which is
// the dominant allocation in the TAQ enqueue path.
//
//taq:shardowned queue state belongs to the shard draining the link
type recoveryQueue struct {
	items []*recoveryItem
	free  []*recoveryItem
	bytes int
	seq   uint64
}

func (q *recoveryQueue) Len() int { return len(q.items) }

// before orders the heap: longest silence first, FIFO tiebreak.
func (q *recoveryQueue) before(a, b *recoveryItem) bool {
	if a.silence != b.silence {
		return a.silence > b.silence
	}
	return a.seq < b.seq
}

func (q *recoveryQueue) siftUp(i int) {
	it := q.items[i]
	for i > 0 {
		parent := (i - 1) / 2
		p := q.items[parent]
		if !q.before(it, p) {
			break
		}
		q.items[i] = p
		p.index = i
		i = parent
	}
	q.items[i] = it
	it.index = i
}

func (q *recoveryQueue) siftDown(i int) {
	it := q.items[i]
	n := len(q.items)
	for {
		c := 2*i + 1
		if c >= n {
			break
		}
		if c+1 < n && q.before(q.items[c+1], q.items[c]) {
			c++
		}
		if !q.before(q.items[c], it) {
			break
		}
		q.items[i] = q.items[c]
		q.items[i].index = i
		i = c
	}
	q.items[i] = it
	it.index = i
}

func (q *recoveryQueue) push(p *packet.Packet, silence sim.Time) {
	var it *recoveryItem
	if n := len(q.free); n > 0 {
		it = q.free[n-1]
		q.free[n-1] = nil
		q.free = q.free[:n-1]
	} else {
		it = &recoveryItem{} //taq:allow noalloc free-list refill; steady state recycles via removeAt
	}
	it.pkt, it.silence, it.seq = p, silence, q.seq
	q.seq++
	it.index = len(q.items)
	q.items = append(q.items, it) //taq:allow noalloc amortized heap growth; capacity retained for the queue's lifetime
	q.siftUp(it.index)
	q.bytes += p.Size
}

// removeAt unlinks the item at heap index i and recycles it, returning
// its packet.
func (q *recoveryQueue) removeAt(i int) *packet.Packet {
	it := q.items[i]
	last := len(q.items) - 1
	if i != last {
		q.items[i] = q.items[last]
		q.items[i].index = i
	}
	q.items[last] = nil
	q.items = q.items[:last]
	if i < last {
		q.siftDown(i)
		q.siftUp(i)
	}
	p := it.pkt
	q.bytes -= p.Size
	it.pkt = nil
	it.index = -1
	q.free = append(q.free, it) //taq:allow noalloc free-list capacity mirrors q.items; amortized
	return p
}

// popBest removes the highest-priority (longest-silence) packet.
func (q *recoveryQueue) popBest() *packet.Packet {
	if len(q.items) == 0 {
		return nil
	}
	return q.removeAt(0)
}

// popWorst removes the lowest-priority (shortest-silence) packet — the
// victim when the recovery queue itself must shed load.
func (q *recoveryQueue) popWorst() *packet.Packet {
	if len(q.items) == 0 {
		return nil
	}
	worst := 0
	for i := 1; i < len(q.items); i++ {
		a, b := q.items[i], q.items[worst]
		if a.silence < b.silence || (a.silence == b.silence && a.seq > b.seq) {
			worst = i
		}
	}
	return q.removeAt(worst)
}

// classFIFO is a FIFO that additionally tracks per-flow occupancy so
// the drop policy can pick its victim from the flow holding the most
// buffer — the "fine-grained control of packet drops across competing
// TCP flows" that gives TAQ its Fair-Queuing-like fairness (§3.2).
// Service order stays strictly FIFO (§4.2: "within each queue, we use
// a simple FIFO policy").
//
//taq:shardowned queue state belongs to the shard draining the link
type classFIFO struct {
	items []*packet.Packet
	head  int
	bytes int
	occ   map[packet.FlowID]int
}

// Len returns the number of queued packets.
func (f *classFIFO) Len() int { return len(f.items) - f.head }

// Bytes returns the queued byte total.
func (f *classFIFO) Bytes() int { return f.bytes }

// Push appends p at the tail.
func (f *classFIFO) Push(p *packet.Packet) {
	if f.occ == nil {
		f.occ = make(map[packet.FlowID]int) //taq:allow noalloc lazy one-time init per class queue
	}
	f.items = append(f.items, p) //taq:allow noalloc amortized ring growth; Pop compacts in place
	f.bytes += p.Size
	f.occ[p.Flow]++ //taq:allow noalloc per-flow occupancy; ROADMAP item 2 flattens it
}

// Pop removes and returns the head packet, or nil.
func (f *classFIFO) Pop() *packet.Packet {
	if f.Len() == 0 {
		return nil
	}
	p := f.items[f.head]
	f.items[f.head] = nil
	f.head++
	f.remove(p)
	if f.head > 64 && f.head*2 >= len(f.items) {
		f.items = append(f.items[:0], f.items[f.head:]...)
		f.head = 0
	}
	return p
}

func (f *classFIFO) remove(p *packet.Packet) {
	f.bytes -= p.Size
	if f.occ[p.Flow] <= 1 { //taq:allow noalloc per-flow occupancy; ROADMAP item 2 flattens it
		delete(f.occ, p.Flow)
	} else {
		f.occ[p.Flow]-- //taq:allow noalloc per-flow occupancy; ROADMAP item 2 flattens it
	}
}

// BestVictim returns the flow in this class that the drop policy
// should penalize: largest buffer occupancy, ties broken by the
// highest score (TAQ scores flows by their recent throughput, so
// equal-occupancy ties fall on the flow least in danger of a timeout).
// ok is false when the class is empty.
func (f *classFIFO) BestVictim(score func(packet.FlowID) float64) (flow packet.FlowID, occ int, ok bool) {
	// The loop computes a maximum with a total-order tie-break
	// (occupancy, then score, then lowest flow id), so the winner is
	// independent of iteration order; sorting here would put an
	// O(n log n) pass on the per-drop hot path for nothing.
	//taq:allow maprange,noalloc (total-order tie-break makes the max order-independent; the map itself is ROADMAP item 2)
	for fl, n := range f.occ {
		s := score(fl)
		switch {
		case !ok, n > occ, n == occ && s > score(flow),
			n == occ && s == score(flow) && fl < flow:
			flow, occ, ok = fl, n, true
		}
	}
	return
}

// PopFlow removes and returns the newest queued packet of the given
// flow, or nil if the flow has nothing queued.
func (f *classFIFO) PopFlow(flow packet.FlowID) *packet.Packet {
	for i := len(f.items) - 1; i >= f.head; i-- {
		if f.items[i] != nil && f.items[i].Flow == flow {
			p := f.items[i]
			copy(f.items[i:], f.items[i+1:])
			f.items[len(f.items)-1] = nil
			f.items = f.items[:len(f.items)-1]
			f.remove(p)
			return p
		}
	}
	return nil
}

// PopNewest removes and returns the most recently pushed packet
// (plain tail drop), used by the occupancy-drop ablation.
func (f *classFIFO) PopNewest() *packet.Packet {
	if f.Len() == 0 {
		return nil
	}
	p := f.items[len(f.items)-1]
	f.items[len(f.items)-1] = nil
	f.items = f.items[:len(f.items)-1]
	f.remove(p)
	return p
}

// PopVictim removes and returns the newest packet of the flow with the
// largest buffer occupancy in this class — penalizing the burstiest
// flow rather than whoever happened to arrive last.
func (f *classFIFO) PopVictim() *packet.Packet {
	victim, _, ok := f.BestVictim(func(packet.FlowID) float64 { return 0 })
	if !ok {
		return nil
	}
	return f.PopFlow(victim)
}

// classQueues bundles TAQ's five queues.
//
//taq:shardowned queue state belongs to the shard draining the link
type classQueues struct {
	recovery recoveryQueue
	fifos    [numClasses]classFIFO // index 0 unused (recovery is the heap)
}

func (cq *classQueues) lenOf(c Class) int {
	if c == ClassRecovery {
		return cq.recovery.Len()
	}
	return cq.fifos[c].Len()
}

func (cq *classQueues) totalLen() int {
	n := cq.recovery.Len()
	for c := 1; c < numClasses; c++ {
		n += cq.fifos[c].Len()
	}
	return n
}

func (cq *classQueues) totalBytes() int {
	b := cq.recovery.bytes
	for c := 1; c < numClasses; c++ {
		b += cq.fifos[c].Bytes()
	}
	return b
}
