package core

import "strconv"

// classFieldSuffix returns the lowercase per-class field suffix used by
// Fields ("recovery", "newflow", ...). Kept literal so field names stay
// stable even if Class.String ever changes casing.
func classFieldSuffix(c Class) string {
	switch c {
	case ClassRecovery:
		return "recovery"
	case ClassNewFlow:
		return "newflow"
	case ClassOverPenalized:
		return "overpenalized"
	case ClassBelowFair:
		return "belowfair"
	case ClassAboveFair:
		return "abovefair"
	default:
		return "unknown"
	}
}

// Snapshot returns a copy of the counters. Stats holds no references,
// so plain assignment is already a deep copy; the method names the
// intent at call sites that keep a baseline for later Delta.
func (s Stats) Snapshot() Stats { return s }

// Delta returns the counter differences s - prev, for per-interval
// reporting from cumulative counters.
func (s Stats) Delta(prev Stats) Stats {
	d := s
	d.Arrivals -= prev.Arrivals
	d.Drops -= prev.Drops
	d.PolicyDrops -= prev.PolicyDrops
	d.Served -= prev.Served
	d.SynsBlocked -= prev.SynsBlocked
	d.PoolsAdmitted -= prev.PoolsAdmitted
	d.PoolsWaited -= prev.PoolsWaited
	for i := range d.DropsByClass {
		d.DropsByClass[i] -= prev.DropsByClass[i]
		d.ServedByClass[i] -= prev.ServedByClass[i]
	}
	return d
}

// Fields returns the counters as parallel (name, value) slices in a
// stable, documented order — the single source of truth for CLI and
// telemetry output, instead of ad-hoc struct prints that drift.
func (s Stats) Fields() ([]string, []uint64) {
	names := make([]string, 0, 6+2*numClasses)
	values := make([]uint64, 0, 6+2*numClasses)
	add := func(n string, v uint64) {
		names = append(names, n)
		values = append(values, v)
	}
	add("arrivals", s.Arrivals)
	add("drops", s.Drops)
	add("policy_drops", s.PolicyDrops)
	for c := 0; c < numClasses; c++ {
		add("drops_"+classFieldSuffix(Class(c)), s.DropsByClass[c])
	}
	add("served", s.Served)
	for c := 0; c < numClasses; c++ {
		add("served_"+classFieldSuffix(Class(c)), s.ServedByClass[c])
	}
	add("syns_blocked", s.SynsBlocked)
	add("pools_admitted", s.PoolsAdmitted)
	add("pools_waited", s.PoolsWaited)
	return names, values
}

// String renders the counters as space-separated name=value pairs in
// Fields order.
func (s Stats) String() string {
	names, values := s.Fields()
	var b []byte
	for i, n := range names {
		if i > 0 {
			b = append(b, ' ')
		}
		b = append(b, n...)
		b = append(b, '=')
		b = strconv.AppendUint(b, values[i], 10)
	}
	return string(b)
}
