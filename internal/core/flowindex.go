package core

import "math/bits"

// oaIndex is a stdlib-only open-addressed hash table mapping int32
// keys (FlowID or PoolID values) to int32 slot ids in a flat record
// array. It exists so the per-packet flow lookup does no Go map access
// and no allocation: probes are linear over two parallel int32 arrays
// (8 bytes per bucket, 16 buckets per cache line between them), the
// capacity is a power of two, and deletion backshifts displaced
// entries instead of leaving tombstones, so probe chains never rot
// under churn.
//
// Growth doubles the arrays and rehashes. The tracker calls maybeGrow
// from the periodic scan, so in steady state doubling happens off the
// packet path; put keeps a higher emergency threshold only as a safety
// net for bursts that outrun a scan interval.
//
// The layout pin keeps the table header exactly one cache line: the
// two slice headers, the hash parameters, and the count all land in
// the line the first probe already pulled in.
//
//taq:shardowned the FlowID→slot index is per-shard by construction (flows hash to exactly one shard)
//taq:layout size=64 align=64
type oaIndex struct {
	keys  []int32
	slots []int32 // parallel to keys; idxEmpty marks a free bucket
	mask  uint32  // len(slots) - 1
	shift uint32  // 32 - log2(len(slots)), for Fibonacci hashing
	n     int     // live entries
}

// idxEmpty marks an unoccupied bucket. Slot ids are array indexes and
// therefore never negative.
const idxEmpty = int32(-1)

// home returns the preferred bucket of key k: Fibonacci hashing
// (multiply by 2^32/φ, keep the top bits) spreads the sequential ids
// the simulator hands out evenly across the table.
func (ix *oaIndex) home(k int32) uint32 {
	return (uint32(k) * 0x9E3779B9) >> ix.shift
}

// get returns the slot stored for k.
func (ix *oaIndex) get(k int32) (int32, bool) {
	if ix.n == 0 {
		return 0, false
	}
	mask := ix.mask
	for i := ix.home(k); ; i = (i + 1) & mask {
		s := ix.slots[i]
		if s == idxEmpty {
			return 0, false
		}
		if ix.keys[i] == k {
			return s, true
		}
	}
}

// put inserts k→slot. k must not already be present (flow creation is
// guarded by a failed lookup). The emergency growth check keeps the
// load factor below 7/8 even if arrivals outrun the scan-cadence
// maybeGrow; the table is therefore never full and probes terminate.
func (ix *oaIndex) put(k, slot int32) {
	if ix.slots == nil || ix.n >= len(ix.slots)-len(ix.slots)/8 {
		ix.grow()
	}
	mask := ix.mask
	i := ix.home(k)
	for ix.slots[i] != idxEmpty {
		i = (i + 1) & mask
	}
	ix.keys[i], ix.slots[i] = k, slot
	ix.n++
}

// del removes k, backshifting the probe chain behind it: every
// displaced entry that the hole separates from its home bucket moves
// back, so lookups never need tombstones and chains stay as short as
// a fresh insert order would make them.
func (ix *oaIndex) del(k int32) {
	if ix.n == 0 {
		return
	}
	mask := ix.mask
	i := ix.home(k)
	for {
		if ix.slots[i] == idxEmpty {
			return // not present
		}
		if ix.keys[i] == k {
			break
		}
		i = (i + 1) & mask
	}
	// Backshift: an entry at j may move into the hole at i iff moving
	// does not jump it past its home bucket — i.e. its probe distance
	// (j - home) covers the distance from the hole (j - i).
	j := i
	for {
		j = (j + 1) & mask
		if ix.slots[j] == idxEmpty {
			break
		}
		if (j-ix.home(ix.keys[j]))&mask >= (j-i)&mask {
			ix.keys[i], ix.slots[i] = ix.keys[j], ix.slots[j]
			i = j
		}
	}
	ix.slots[i] = idxEmpty
	ix.n--
}

// maybeGrow doubles the table once load reaches 5/8. The tracker calls
// it at scan cadence so the copy runs on the control loop, not under a
// packet.
func (ix *oaIndex) maybeGrow() {
	if ix.slots != nil && ix.n >= len(ix.slots)/2+len(ix.slots)/8 {
		ix.grow()
	}
}

// grow doubles capacity (first call provisions 64 buckets) and
// rehashes every live entry.
func (ix *oaIndex) grow() {
	newCap := 64
	if len(ix.slots) > 0 {
		newCap = len(ix.slots) * 2
	}
	oldKeys, oldSlots := ix.keys, ix.slots
	ix.keys = make([]int32, newCap)  //taq:allow noalloc amortized index doubling, normally run at scan cadence (maybeGrow)
	ix.slots = make([]int32, newCap) //taq:allow noalloc amortized index doubling, normally run at scan cadence (maybeGrow)
	ix.mask = uint32(newCap - 1)
	ix.shift = uint32(32 - bits.TrailingZeros(uint(newCap)))
	for i := range ix.slots {
		ix.slots[i] = idxEmpty
	}
	mask := ix.mask
	for b, s := range oldSlots {
		if s == idxEmpty {
			continue
		}
		k := oldKeys[b]
		i := ix.home(k)
		for ix.slots[i] != idxEmpty {
			i = (i + 1) & mask
		}
		ix.keys[i], ix.slots[i] = k, s
	}
}
