package core

import (
	"fmt"
	"testing"

	"taq/internal/link"
	"taq/internal/packet"
	"taq/internal/sim"
)

// buildLoadedTAQ creates a TAQ middlebox tracking n flows, with each
// flow having seen a SYN and two data segments. Flows are spread across
// pools of 32 so the pool-fairness accounting is exercised too. The
// queue is drained after every batch so buffer evictions don't distort
// the tracker population.
func buildLoadedTAQ(tb testing.TB, n int) (*sim.Engine, *TAQ, []*packet.Packet) {
	tb.Helper()
	eng := sim.NewEngine(1)
	cfg := DefaultConfig(link.Bps(1_000_000_000), 256)
	cfg.PoolFairShare = true
	q := New(eng, cfg)

	for i := 0; i < n; i++ {
		fl := packet.FlowID(i + 1)
		pool := packet.PoolID(i / 32)
		q.Enqueue(&packet.Packet{Flow: fl, Pool: pool, Kind: packet.Syn, Size: 40})
		q.Enqueue(&packet.Packet{Flow: fl, Pool: pool, Kind: packet.Data, Seq: 0, Size: 500})
		q.Enqueue(&packet.Packet{Flow: fl, Pool: pool, Kind: packet.Data, Seq: 1, Size: 500})
		for q.Dequeue() != nil {
		}
		if i%1024 == 1023 {
			eng.RunUntil(eng.Now() + sim.Millisecond)
		}
	}

	// Reusable data packets for the churn portion of the scan benchmark.
	touch := make([]*packet.Packet, n)
	for i := range touch {
		touch[i] = &packet.Packet{
			Flow: packet.FlowID(i + 1), Pool: packet.PoolID(i / 32),
			Kind: packet.Data, Seq: 2, Size: 500,
		}
	}
	return eng, q, touch
}

// BenchmarkTrackerScan measures the periodic control-loop tick at
// scale: each iteration touches n/100 flows (steady churn), advances
// simulated time by one scan interval, and runs the full TAQ scan
// (silence detection, fair-share refresh, pool accounting, loss
// window). The flow table stays at n tracked flows throughout.
func BenchmarkTrackerScan(b *testing.B) {
	for _, n := range []int{1_000, 10_000, 100_000} {
		b.Run(fmt.Sprintf("flows=%d", n), func(b *testing.B) {
			eng, q, touch := buildLoadedTAQ(b, n)
			step := n / 100
			if step < 1 {
				step = 1
			}
			next := 0
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for j := 0; j < step; j++ {
					p := touch[next]
					next = (next + 1) % len(touch)
					p.Seq++
					q.Enqueue(p)
					q.Dequeue()
				}
				eng.RunUntil(eng.Now() + q.cfg.ScanInterval)
				q.scan()
			}
		})
	}
}

// BenchmarkGaugeSample measures what the obs gauge sampler pays per
// sampling tick: one read each of ActiveFlows, RecoveringFlows, and
// StateCensus against a table of n tracked flows.
func BenchmarkGaugeSample(b *testing.B) {
	for _, n := range []int{1_000, 10_000, 100_000} {
		b.Run(fmt.Sprintf("flows=%d", n), func(b *testing.B) {
			_, q, _ := buildLoadedTAQ(b, n)
			var sink int
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sink += q.ActiveFlows()
				sink += q.RecoveringFlows()
				c := q.StateCensus()
				sink += c[StateNormal]
			}
			_ = sink
		})
	}
}
