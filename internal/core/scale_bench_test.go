package core

import (
	"fmt"
	"runtime"
	"testing"

	"taq/internal/link"
	"taq/internal/packet"
	"taq/internal/sim"
)

// loadFlows drives n flows into q, with each flow having seen a SYN
// and two data segments. Flows are spread across pools of 32 so the
// pool-fairness accounting is exercised too. The queue is drained
// after every batch so buffer evictions don't distort the tracker
// population.
func loadFlows(eng *sim.Engine, q *TAQ, n int) {
	for i := 0; i < n; i++ {
		fl := packet.FlowID(i + 1)
		pool := packet.PoolID(i / 32)
		q.Enqueue(&packet.Packet{Flow: fl, Pool: pool, Kind: packet.Syn, Size: 40})
		q.Enqueue(&packet.Packet{Flow: fl, Pool: pool, Kind: packet.Data, Seq: 0, Size: 500})
		q.Enqueue(&packet.Packet{Flow: fl, Pool: pool, Kind: packet.Data, Seq: 1, Size: 500})
		for q.Dequeue() != nil {
		}
		if i%1024 == 1023 {
			eng.RunUntil(eng.Now() + sim.Millisecond)
		}
	}
}

// buildLoadedTAQ creates a TAQ middlebox tracking n flows (see
// loadFlows) plus reusable data packets for churn benchmarks.
func buildLoadedTAQ(tb testing.TB, n int) (*sim.Engine, *TAQ, []*packet.Packet) {
	tb.Helper()
	eng := sim.NewEngine(1)
	cfg := DefaultConfig(link.Bps(1_000_000_000), 256)
	cfg.PoolFairShare = true
	q := New(eng, cfg)
	loadFlows(eng, q, n)

	touch := make([]*packet.Packet, n)
	for i := range touch {
		touch[i] = &packet.Packet{
			Flow: packet.FlowID(i + 1), Pool: packet.PoolID(i / 32),
			Kind: packet.Data, Seq: 2, Size: 500,
		}
	}
	return eng, q, touch
}

// BenchmarkTrackerScan measures the periodic control-loop tick at
// scale: each iteration touches n/100 flows (steady churn), advances
// simulated time by one scan interval, and runs the full TAQ scan
// (silence detection, fair-share refresh, pool accounting, loss
// window). The flow table stays at n tracked flows throughout.
func BenchmarkTrackerScan(b *testing.B) {
	for _, n := range []int{1_000, 10_000, 100_000, 1_000_000} {
		b.Run(fmt.Sprintf("flows=%d", n), func(b *testing.B) {
			eng, q, touch := buildLoadedTAQ(b, n)
			step := n / 100
			if step < 1 {
				step = 1
			}
			next := 0
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for j := 0; j < step; j++ {
					p := touch[next]
					next = (next + 1) % len(touch)
					p.Seq++
					q.Enqueue(p)
					q.Dequeue()
				}
				eng.RunUntil(eng.Now() + q.cfg.ScanInterval)
				q.scan()
			}
		})
	}
}

// BenchmarkFlowLookup measures the packet-path flow lookup against a
// loaded table: a hit (tracked flow), a miss (unknown flow), and
// create (getOrCreate of a fresh flow, immediately evicted so the
// table size holds and the free list stays hot — the steady-state
// shape of flow churn).
func BenchmarkFlowLookup(b *testing.B) {
	for _, n := range []int{1_000, 100_000, 1_000_000} {
		b.Run(fmt.Sprintf("flows=%d", n), func(b *testing.B) {
			_, q, _ := buildLoadedTAQ(b, n)
			tr := q.tracker
			b.Run("hit", func(b *testing.B) {
				var sink sim.Time
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					sink += tr.get(packet.FlowID(i%n+1)).epoch
				}
				_ = sink
			})
			b.Run("miss", func(b *testing.B) {
				miss := 0
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					if tr.get(packet.FlowID(n+2+i%n)) == nil {
						miss++
					}
				}
				if miss != b.N {
					b.Fatalf("%d misses, want %d", miss, b.N)
				}
			})
			b.Run("create", func(b *testing.B) {
				p := &packet.Packet{Kind: packet.Syn, Size: 40, Pool: packet.PoolNone}
				id := packet.FlowID(10_000_000)
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					p.Flow = id
					f := tr.getOrCreate(p)
					tr.evictFlow(f)
					id++
				}
			})
		})
	}
}

// BenchmarkFlowMemory reports the tracker's measured memory footprint
// per tracked flow: heap growth across middlebox construction plus
// loadFlows (records, index, heaps, pool tables — no benchmark
// scaffolding), divided by the flow count. KeepAlive pins the
// middlebox so the post-load GC cannot collect what we just measured.
func BenchmarkFlowMemory(b *testing.B) {
	for _, n := range []int{100_000, 1_000_000} {
		b.Run(fmt.Sprintf("flows=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				eng := sim.NewEngine(1)
				cfg := DefaultConfig(link.Bps(1_000_000_000), 256)
				cfg.PoolFairShare = true
				var m0, m1 runtime.MemStats
				runtime.GC()
				runtime.ReadMemStats(&m0)
				q := New(eng, cfg)
				loadFlows(eng, q, n)
				runtime.GC()
				runtime.ReadMemStats(&m1)
				perFlow := float64(int64(m1.HeapAlloc)-int64(m0.HeapAlloc)) / float64(n)
				b.ReportMetric(perFlow, "B/flow")
				runtime.KeepAlive(q)
			}
		})
	}
}

// BenchmarkGaugeSample measures what the obs gauge sampler pays per
// sampling tick: one read each of ActiveFlows, RecoveringFlows, and
// StateCensus against a table of n tracked flows.
func BenchmarkGaugeSample(b *testing.B) {
	for _, n := range []int{1_000, 10_000, 100_000} {
		b.Run(fmt.Sprintf("flows=%d", n), func(b *testing.B) {
			_, q, _ := buildLoadedTAQ(b, n)
			var sink int
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sink += q.ActiveFlows()
				sink += q.RecoveringFlows()
				c := q.StateCensus()
				sink += c[StateNormal]
			}
			_ = sink
		})
	}
}
