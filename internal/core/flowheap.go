package core

import (
	"taq/internal/sim"
)

// deadlineEntry is one lazily-deleted heap entry: the flow in slot had
// deadline dl when the entry was pushed, and gen was the record's
// generation at that moment. Entries are never removed in place — a
// flow whose deadline moves later, or that is evicted (its slot
// recycled through the store's free list with a bumped generation),
// simply leaves a stale entry behind. Poppers resolve the slot back to
// a record, validate gen, and re-derive the live deadline, so a stale
// entry costs one pop and nothing else. Storing the 4-byte slot id
// instead of a *flowInfo keeps the entry at 16 bytes and pointer-free:
// the heap never extends a record's lifetime and is safe across
// record-array growth.
//
//taq:layout size=16
type deadlineEntry struct {
	dl   sim.Time
	slot int32
	gen  uint32
}

// deadlineHeap is a 4-ary min-heap of deadlineEntry ordered by dl.
// 4-ary rather than binary for the same reason as the engine's timer
// heap: shallower sift paths and better cache behavior on the dominant
// pop-then-push cycle. The backing slice retains its capacity, so a
// tracker in steady state pushes and pops with zero allocations.
//
//taq:shardowned deadline heaps index the shard's own flow slots
type deadlineHeap struct {
	a []deadlineEntry
}

func (h *deadlineHeap) len() int { return len(h.a) }

func (h *deadlineHeap) push(dl sim.Time, f *flowInfo) {
	h.a = append(h.a, deadlineEntry{dl: dl, slot: f.slot, gen: f.gen}) //taq:allow noalloc amortized heap growth; capacity is retained across scans
	i := len(h.a) - 1
	for i > 0 {
		parent := (i - 1) / 4
		if h.a[parent].dl <= h.a[i].dl {
			break
		}
		h.a[parent], h.a[i] = h.a[i], h.a[parent]
		i = parent
	}
}

// peek returns the earliest entry without removing it.
func (h *deadlineHeap) peek() (deadlineEntry, bool) {
	if len(h.a) == 0 {
		return deadlineEntry{}, false
	}
	return h.a[0], true
}

// pop removes and returns the earliest entry.
func (h *deadlineHeap) pop() deadlineEntry {
	top := h.a[0]
	last := len(h.a) - 1
	h.a[0] = h.a[last]
	h.a[last] = deadlineEntry{}
	h.a = h.a[:last]
	if last > 0 {
		h.siftDown(0)
	}
	return top
}

func (h *deadlineHeap) siftDown(i int) {
	n := len(h.a)
	for {
		first := 4*i + 1
		if first >= n {
			return
		}
		min := first
		end := first + 4
		if end > n {
			end = n
		}
		for c := first + 1; c < end; c++ {
			if h.a[c].dl < h.a[min].dl {
				min = c
			}
		}
		if h.a[i].dl <= h.a[min].dl {
			return
		}
		h.a[i], h.a[min] = h.a[min], h.a[i]
		i = min
	}
}
