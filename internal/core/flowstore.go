package core

import "taq/internal/packet"

// flowStore owns every flowInfo record in one dense slice, indexed by
// slot id. Records are recycled through a free list rather than freed,
// and each record carries a generation that release bumps, so a slot
// handle (slot, gen) taken earlier — a deadline-heap entry — is
// detectably stale after the slot is recycled for another flow. The
// oaIndex maps FlowID → slot so the per-packet lookup is two array
// probes instead of a Go map access and a pointer chase to a separately
// heap-allocated record.
//
// Pointer discipline: &recs[slot] is stable for the lifetime of one
// tracker operation — only alloc can grow recs, and no caller holds a
// record pointer across a flow creation. Anything held longer (heap
// entries) stores the slot id and re-derives the pointer.
//
//taq:shardowned the flow-record arena; one per shard, never shared
type flowStore struct {
	recs []flowInfo
	free []int32 // recycled slots, LIFO
	idx  oaIndex // FlowID → slot
}

// lookup returns the record tracking id, or nil.
func (s *flowStore) lookup(id packet.FlowID) *flowInfo {
	slot, ok := s.idx.get(int32(id))
	if !ok {
		return nil
	}
	return &s.recs[slot]
}

// alloc files a zeroed record for id (which must not be tracked) and
// returns it. Recycled records keep their bumped generation so stale
// heap entries pointing at the old occupant stay invalid.
func (s *flowStore) alloc(id packet.FlowID) *flowInfo {
	var slot int32
	if n := len(s.free); n > 0 {
		slot = s.free[n-1]
		s.free = s.free[:n-1]
		f := &s.recs[slot]
		gen := f.gen // survives recycling; bumped at release
		*f = flowInfo{}
		f.gen = gen
	} else {
		slot = int32(len(s.recs))
		s.recs = append(s.recs, flowInfo{}) //taq:allow noalloc amortized record-array growth; evicted slots are free-list recycled
	}
	f := &s.recs[slot]
	f.id, f.slot, f.inUse = id, slot, true
	s.idx.put(int32(id), slot)
	return f
}

// release unfiles f: the FlowID mapping is deleted, the generation is
// bumped (invalidating any outstanding slot handles), and the slot goes
// on the free list for reuse.
func (s *flowStore) release(f *flowInfo) {
	s.idx.del(int32(f.id))
	f.gen++
	f.inUse = false
	s.free = append(s.free, f.slot)
}

// at returns the record in slot, live or not — callers holding a
// (slot, gen) handle check gen themselves.
func (s *flowStore) at(slot int32) *flowInfo { return &s.recs[slot] }

// len returns the number of live (tracked) records.
func (s *flowStore) len() int { return s.idx.n }

// poolTable is the same flat shape for the tracker's per-pool active
// counts: poolEntry records in a slice, a free list, and an oaIndex
// from PoolID → slot. Entries are refcounted by the flows keyed to the
// pool, so a flow's poolSlot stays valid for exactly as long as the
// flow itself is tracked; no generation check is needed.
//
//taq:shardowned per-pool counters follow their flows' shard
type poolTable struct {
	recs []poolEntry
	free []int32
	idx  oaIndex // PoolID → slot
}

// lookup returns pool's entry, or nil.
func (pt *poolTable) lookup(pool packet.PoolID) *poolEntry {
	slot, ok := pt.idx.get(int32(pool))
	if !ok {
		return nil
	}
	return &pt.recs[slot]
}

// ref takes one reference on pool's entry, creating it if absent, and
// returns the entry's slot for storing in the flow record.
func (pt *poolTable) ref(pool packet.PoolID) int32 {
	if slot, ok := pt.idx.get(int32(pool)); ok {
		pt.recs[slot].refs++
		return slot
	}
	var slot int32
	if n := len(pt.free); n > 0 {
		slot = pt.free[n-1]
		pt.free = pt.free[:n-1]
		pt.recs[slot] = poolEntry{}
	} else {
		slot = int32(len(pt.recs))
		pt.recs = append(pt.recs, poolEntry{}) //taq:allow noalloc amortized pool-array growth; slots are free-list recycled
	}
	e := &pt.recs[slot]
	e.key, e.refs, e.inUse = pool, 1, true
	pt.idx.put(int32(pool), slot)
	return slot
}

// unref drops one reference on the entry in slot; at zero the entry is
// unfiled and the slot recycled.
func (pt *poolTable) unref(slot int32) {
	e := &pt.recs[slot]
	e.refs--
	if e.refs > 0 {
		return
	}
	pt.idx.del(int32(e.key))
	e.inUse = false
	pt.free = append(pt.free, slot)
}
