package core

import (
	"math/rand"
	"testing"

	"taq/internal/link"
	"taq/internal/packet"
	"taq/internal/sim"
)

// Equivalence tests: the incremental aggregates (census, active-flow
// count, fixed-point inverse-epoch sum, per-pool counts) must at all
// times equal what a naive walk of the flow table computes. The walk
// is the specification the rescanning tracker implemented directly;
// the golden traces pin external behavior, and these tests pin the
// internal accounting against its definition.

// checkTrackerEquivalence recomputes every incremental aggregate from
// scratch and compares, and re-derives the FlowID↔slot bijection of
// the flat store from a naive shadow map. Callers settle activity
// deadlines first (any reader path does) so the counted flags are
// evaluated at read time, exactly like the predicate-per-flow rescan.
func checkTrackerEquivalence(t *testing.T, tr *tracker, now sim.Time) {
	t.Helper()
	tr.advanceActivity(now)

	var census Census
	activeN, singles, activePools := 0, 0, 0
	var invSumFx int64
	poolCur := map[packet.PoolID]int{}
	poolRefs := map[packet.PoolID]int{}

	// The shadow map is the specification of the open-addressed index:
	// walking the record array must yield each live flow exactly once,
	// filed in the store's index under its own id at its own slot.
	shadow := map[packet.FlowID]int32{}
	for i := range tr.store.recs {
		f := &tr.store.recs[i]
		if !f.inUse {
			continue
		}
		if f.slot != int32(i) {
			t.Fatalf("flow %d in slot %d records slot %d", f.id, i, f.slot)
		}
		if prev, dup := shadow[f.id]; dup {
			t.Fatalf("flow %d live in slots %d and %d", f.id, prev, i)
		}
		shadow[f.id] = int32(i)
	}
	if tr.store.len() != len(shadow) {
		t.Fatalf("store says %d live flows, record walk found %d", tr.store.len(), len(shadow))
	}
	for id, slot := range shadow {
		got, ok := tr.store.idx.get(int32(id))
		if !ok || got != slot {
			t.Fatalf("index maps flow %d to (%d,%v), records say slot %d", id, got, ok, slot)
		}
	}

	for i := range tr.store.recs {
		f := &tr.store.recs[i]
		if !f.inUse {
			continue
		}
		id := f.id
		census[f.state]++
		want := tr.wantCounted(f, now)
		if f.counted != want {
			t.Fatalf("flow %d counted=%v, predicate says %v (now=%d lastPkt=%d epoch=%d state=%v)",
				id, f.counted, want, now, f.lastPkt, f.epoch, f.state)
		}
		if f.pool != packet.PoolNone {
			poolRefs[f.pool]++
		}
		if !f.counted {
			continue
		}
		activeN++
		if f.invTerm != invTermFor(f.epoch) {
			t.Fatalf("flow %d stale invTerm %d, epoch %v implies %d",
				id, f.invTerm, f.epoch, invTermFor(f.epoch))
		}
		invSumFx += f.invTerm
		if f.pool == packet.PoolNone {
			singles++
		} else {
			poolCur[f.pool]++
		}
	}
	for pool, n := range poolCur {
		if n > 0 {
			activePools++
		}
		_ = pool
	}

	if census != tr.census {
		t.Fatalf("census mismatch: naive %v, incremental %v", census, tr.census)
	}
	if activeN != tr.activeN {
		t.Fatalf("activeN mismatch: naive %d, incremental %d", activeN, tr.activeN)
	}
	if invSumFx != tr.invSumFx {
		t.Fatalf("invSumFx mismatch: naive %d, incremental %d", invSumFx, tr.invSumFx)
	}
	if singles != tr.singles {
		t.Fatalf("singles mismatch: naive %d, incremental %d", singles, tr.singles)
	}
	if activePools != tr.activePoolsN {
		t.Fatalf("activePools mismatch: naive %d, incremental %d", activePools, tr.activePoolsN)
	}
	livePools := 0
	for i := range tr.pools.recs {
		if tr.pools.recs[i].inUse {
			livePools++
		}
	}
	if livePools != len(poolRefs) {
		t.Fatalf("pool table has %d entries, flows reference %d pools", livePools, len(poolRefs))
	}
	if tr.pools.idx.n != livePools {
		t.Fatalf("pool index files %d pools, record walk found %d", tr.pools.idx.n, livePools)
	}
	for pool, refs := range poolRefs {
		e := tr.pools.lookup(pool)
		if e == nil {
			t.Fatalf("pool %d referenced by %d flows but has no entry", pool, refs)
		}
		if int(e.refs) != refs {
			t.Fatalf("pool %d refs=%d, flows say %d", pool, e.refs, refs)
		}
		if int(e.cur) != poolCur[pool] {
			t.Fatalf("pool %d cur=%d, naive count %d", pool, e.cur, poolCur[pool])
		}
	}
	// Every live flow's poolSlot must resolve to its own pool's entry.
	for i := range tr.store.recs {
		f := &tr.store.recs[i]
		if !f.inUse {
			continue
		}
		if f.pool == packet.PoolNone {
			if f.poolSlot != idxEmpty {
				t.Fatalf("pool-less flow %d holds poolSlot %d", f.id, f.poolSlot)
			}
			continue
		}
		if f.poolSlot == idxEmpty {
			t.Fatalf("pooled flow %d has no poolSlot", f.id)
		}
		if e := &tr.pools.recs[f.poolSlot]; !e.inUse || e.key != f.pool {
			t.Fatalf("flow %d poolSlot %d resolves to pool %d (inUse=%v), want %d",
				f.id, f.poolSlot, e.key, e.inUse, f.pool)
		}
	}
}

// TestIncrementalEquivalenceSeeded churns a full middlebox (creation,
// classification, drops, silences, expiry eviction, free-list reuse)
// long past FlowExpiry and re-derives the aggregates from the flow
// table every 250ms of simulated time.
func TestIncrementalEquivalenceSeeded(t *testing.T) {
	scenarios := []struct {
		name   string
		poolOf func(i int) packet.PoolID
		cfg    func(*Config)
	}{
		{name: "fair", poolOf: func(int) packet.PoolID { return packet.PoolNone }},
		{
			name: "pooled",
			cfg:  func(c *Config) { c.PoolFairShare = true },
			poolOf: func(i int) packet.PoolID {
				if i%5 == 4 {
					return packet.PoolNone
				}
				return packet.PoolID(i / 4)
			},
		},
	}
	for _, sc := range scenarios {
		t.Run(sc.name, func(t *testing.T) {
			eng := sim.NewEngine(1)
			cfg := DefaultConfig(600*link.Kbps, 32)
			if sc.cfg != nil {
				sc.cfg(&cfg)
			}
			q := New(eng, cfg)
			q.Start()

			const flows = 250
			duration := 100 * sim.Second // well past FlowExpiry
			rng := rand.New(rand.NewSource(17))
			seqs := make([]int, flows)
			evicted := false

			const step = 10 * sim.Millisecond
			window := 40
			for now := sim.Time(0); now < duration; now += step {
				eng.RunUntil(now)
				lo := int(float64(flows-window) * float64(now) / float64(duration))
				for k := 0; k < 3; k++ {
					i := lo + rng.Intn(window)
					fl := packet.FlowID(i + 1)
					pool := sc.poolOf(i)
					switch rng.Intn(10) {
					case 0:
						q.Enqueue(&packet.Packet{Flow: fl, Pool: pool, Kind: packet.Syn, Size: 40})
					case 1, 2, 3, 4, 5:
						q.Enqueue(&packet.Packet{Flow: fl, Pool: pool, Kind: packet.Data, Seq: seqs[i], Size: 500})
						seqs[i]++
					case 6:
						s := seqs[i] - 1 - rng.Intn(3)
						if s < 0 {
							s = 0
						}
						q.Enqueue(&packet.Packet{
							Flow: fl, Pool: pool, Kind: packet.Data, Seq: s,
							Size: 500, Retransmit: true,
						})
					case 7:
						q.ObserveReverse(&packet.Packet{Flow: fl, Pool: pool, Kind: packet.Ack, CumAck: seqs[i], Size: 40})
					case 8:
						q.Dequeue()
						q.Dequeue()
					case 9:
						// Silence.
					}
				}
				q.Dequeue()
				if now%(250*sim.Millisecond) == 0 {
					checkTrackerEquivalence(t, q.tracker, eng.Now())
				}
				if len(q.tracker.store.free) > 0 {
					evicted = true
				}
			}
			q.Stop()
			if !evicted {
				t.Fatal("scenario never evicted a flow; expiry path untested")
			}
		})
	}
}

// The zero-alloc proof for the O(1) control-loop reads lives in the
// repo root's hotpath_alloc_test.go now, table-driven over every
// declared //taq:hotpath root.
