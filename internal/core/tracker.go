package core

import (
	"slices"

	"taq/internal/obs"
	"taq/internal/packet"
	"taq/internal/sim"
)

// FlowState is the middlebox's approximate classification of a flow
// (§3.3, Fig 7). It is inferred purely from observations at the
// middlebox — packet counts per epoch, highest sequence, retransmitted
// packets, drops at the TAQ queue, and silences — never from sender
// state.
type FlowState uint8

const (
	// StateNew: SYN seen, no data yet.
	StateNew FlowState = iota
	// StateSlowStart: significant growth in new packets per epoch.
	StateSlowStart
	// StateNormal: steady progress, no losses at the TAQ queue.
	StateNormal
	// StateLossRecovery: the middlebox dropped one of the flow's
	// packets and expects retransmissions ("explicit loss recovery").
	StateLossRecovery
	// StateTimeoutSilence: the flow stopped sending after losses; it
	// is presumed waiting out an RTO.
	StateTimeoutSilence
	// StateTimeoutRecovery: retransmissions after a timeout silence.
	StateTimeoutRecovery
	// StateExtendedSilence: silence spanning multiple epochs beyond a
	// timeout — the repetitive-timeout regime.
	StateExtendedSilence
	// StateIdleSilence: a healthy flow with nothing to send (the
	// dummy state for pipelined connections between objects).
	StateIdleSilence

	numFlowStates = int(StateIdleSilence) + 1
)

// String implements fmt.Stringer.
func (s FlowState) String() string {
	switch s {
	case StateNew:
		return "New"
	case StateSlowStart:
		return "SlowStart"
	case StateNormal:
		return "Normal"
	case StateLossRecovery:
		return "LossRecovery"
	case StateTimeoutSilence:
		return "TimeoutSilence"
	case StateTimeoutRecovery:
		return "TimeoutRecovery"
	case StateExtendedSilence:
		return "ExtendedSilence"
	case StateIdleSilence:
		return "IdleSilence"
	default:
		return "Unknown"
	}
}

// flowInfo is the per-flow record the middlebox maintains (§3.3: new
// packets per epoch, highest sequence number, retransmitted packets,
// losses in the previous epoch — plus the state-machine bookkeeping).
//
// Records live in the flowStore's flat slice, not behind individual
// heap pointers, so the layout is packed for that shape: a 32-byte
// identity/flag header, then the per-packet hot core (epoch clocks,
// epoch counters, deadlines), then the warm silence/recovery fields,
// then the cold two-way RTT sampler. Counters are int32 — packet and
// epoch counts per flow never approach 2^31 (epochs at the 200 ms
// default would take 13 years) — and sequence numbers mirror
// packet.Packet's int Seq but saturate far below 2^31 in every
// workload the simulator can express. sim.Time fields stay int64:
// narrowing timestamps would change behavior.
//
// The layout pin holds the record at its current 200 bytes and keeps
// the per-packet hot core (identity header plus the epoch/counter
// section through invTerm) ending on a field boundary at offset 136;
// a field added or reordered here is a deliberate layout decision,
// not a drive-by.
//
//taq:shardowned per-flow record, owned by the tracker's flow store
//taq:layout size=200 hotbytes=0..136
type flowInfo struct {
	// Identity and slot plumbing (read on every lookup).
	id   packet.FlowID
	pool packet.PoolID
	// slot is this record's index in the flowStore; poolSlot is the
	// pool's entry in the tracker's poolTable (idxEmpty for pool-less
	// flows). Both are stable for the record's tracked lifetime.
	slot     int32
	poolSlot int32
	// gen is bumped every time this record is evicted, invalidating
	// any heap entries that still reference the slot (slots are
	// recycled through the store's free list).
	gen   uint32
	state FlowState
	// lastClass is the TAQ class the flow's previous packet was
	// assigned (-1 before the first classification), so class-change
	// trace events fire only on actual changes.
	lastClass int8
	gotData   bool
	// counted reports whether this flow is currently included in the
	// tracker's active-flow aggregates.
	counted bool
	// inUse distinguishes live records from free-listed ones when the
	// store's record array is walked directly (tests, debug).
	inUse        bool
	awaitingData bool // upstream RTT half armed
	twoWay       bool // two-way samples are feeding the epoch

	// Per-packet hot core: epoch (middlebox-perceived RTT) estimation
	// and the current-/previous-epoch counters.
	epoch      sim.Time
	epochStart sim.Time
	// rolledTo is the time through which the flow's epoch counters
	// have been rolled (see catchUp).
	rolledTo sim.Time
	lastPkt  sim.Time // last packet observed (any kind)

	newPkts, prevNewPkts int32
	rtxPkts              int32
	drops, prevDrops     int32
	epochs               int32 // epochs observed since creation
	highSeq              int32 // highest data sequence observed
	// outstandingDrops counts packets TAQ dropped that have not yet
	// been seen retransmitted.
	outstandingDrops int32

	bytes float64 // bytes forwarded-or-queued this epoch
	// rateEWMA estimates the flow's throughput in bits/second.
	rateEWMA float64
	// actDl and scanDl mirror the earliest live heap entry for this
	// flow on the activity and scan heaps (0 = none); pushes are
	// elided unless they move the earliest deadline, bounding stale
	// entries.
	actDl, scanDl sim.Time
	// invTerm is the fixed-point inverse-epoch term this flow
	// contributes to invSumFx while counted.
	invTerm int64

	// Warm: silence and recovery bookkeeping.

	// synBurst is a union: until the first data packet it holds the
	// SYN time (seeding the epoch estimate from the SYN→data gap);
	// once gotData is set it holds the start of the current packet
	// burst. The two uses never overlap — the SYN time is read only
	// in the first-data branch, and burst tracking starts there.
	synBurst     sim.Time
	silenceStart sim.Time // when the current presumed-RTO silence began
	// lastSilence remembers the length of the flow's most recent
	// silence episode; it keys the Recovery queue priority for the
	// whole retransmission burst that follows the silence.
	lastSilence sim.Time
	// protectEpochs counts down epochs during which a flow that just
	// recovered keeps elevated (OverPenalized-queue) protection: the
	// loss of the first new packets after a timeout escalates the
	// remembered backoff (§4.1), so they must not be the next victims.
	protectEpochs int32
	sampleSeq     int32 // data segment awaiting its ack; -1 when idle

	// Cold: two-way RTT sampling (§3.3 "conventional mode": TAQ
	// observes two-way traffic, making it relatively easy to estimate
	// RTT). The downstream half is the gap from forwarding a data
	// segment to seeing its ack return; the upstream half is the gap
	// from that ack to the new data it releases from the sender.
	sampleAt  sim.Time
	downRTT   sim.Time // EWMA of the downstream half
	upRTT     sim.Time // EWMA of the upstream half
	lastAckAt sim.Time // when the last returning ack was observed
}

// roll advances the flow's epoch counters to cover time now, possibly
// rolling several (empty) epochs at once.
func (f *flowInfo) roll(now sim.Time) {
	for now >= f.epochStart+f.epoch {
		seconds := f.epoch.Seconds()
		if seconds > 0 {
			inst := f.bytes * 8 / seconds
			f.rateEWMA = 0.875*f.rateEWMA + 0.125*inst
		}
		f.prevNewPkts = f.newPkts
		f.prevDrops = f.drops
		f.newPkts, f.rtxPkts, f.drops, f.bytes = 0, 0, 0, 0
		f.epochStart += f.epoch
		f.epochs++
		if f.protectEpochs > 0 {
			f.protectEpochs--
		}
	}
}

// catchUp completes the scan-parity roll schedule through time x (an
// event time or the last scan). The rescanning tracker rolled every
// flow at every scan; the incremental tracker must replay exactly the
// crossings those rolls would have made, with the epoch values then in
// effect. Every epoch mutation is preceded by a catchUp, so between
// mutations the epoch is constant and one deferred roll is equivalent
// to the per-scan series. The rolledTo watermark makes catch-up
// monotone: without it, re-rolling an already-covered span after an
// epoch shrink could cross a boundary the old schedule never saw
// (the shrink can pull epochStart+epoch behind a point the flow was
// already rolled past), mis-bucketing that epoch's counters.
//
//taq:hotpath runs per observed packet to roll epoch counters
func (f *flowInfo) catchUp(x sim.Time) {
	if x <= f.rolledTo {
		return
	}
	f.rolledTo = x
	f.roll(x)
}

// silentFor returns how long the flow has been silent at time now.
func (f *flowInfo) silentFor(now sim.Time) sim.Time { return now - f.lastPkt }

// Census counts tracked flows per approximate state, indexed by
// FlowState. It is maintained incrementally on every transition, so
// reading it is a fixed-size copy with no allocation and no walk of
// the flow table.
type Census [numFlowStates]int

// poolEntry tracks one pool's active-flow count. cur is live; snap
// freezes the count as of the last scan barrier (see snapshotPools):
// the first mutation after a barrier saves cur into snap and stamps
// the entry, so mid-window reads keep seeing the scan-time value —
// the same snapshot semantics the rescanning implementation got by
// materializing a map each scan. refs counts tracked flows (active or
// not) keyed to the pool; the entry is unfiled when it hits zero.
// Entries live in the tracker's poolTable (flowstore.go).
//
//taq:shardowned per-pool active-count entry, owned by the tracker's pool table
//taq:layout size=32
type poolEntry struct {
	stamp           uint64
	key             packet.PoolID
	cur, snap, refs int32
	inUse           bool
}

// tracker owns all per-flow records and applies the approximate state
// model. All aggregate control inputs are maintained incrementally:
// observing a packet, dropping one, or scanning a due flow updates the
// counters in O(1), and the periodic scan itself touches only flows
// whose deadlines have passed (tracked by two lazy-deletion heaps)
// instead of rescanning the whole table.
//
//taq:shardowned all per-flow mutable state; the sharded middlebox gives each shard its own tracker
//taq:layout align=64
type tracker struct {
	cfg Config
	run sim.Runner
	// store owns every flow record: a flat slot-indexed array with a
	// free list plus the FlowID→slot open-addressed index, so the
	// per-packet lookup does no Go map access (see flowstore.go).
	store flowStore
	// rec, when non-nil, receives TrackerTransition/TimeoutDetected
	// events from setState (installed via TAQ.SetRecorder).
	rec *obs.Recorder
	// mx, when non-nil, counts transitions and timeout detections
	// (installed via TAQ.SetMetrics).
	mx *Metrics

	// census partitions the flow table by state.
	census Census
	// activeN counts flows satisfying the active predicate; singles
	// counts the active pool-less flows among them (each its own
	// "pool"), and activePoolsN the pools with at least one active
	// flow.
	activeN, singles, activePoolsN int
	// invSumFx accumulates the active flows' inverse epochs in fixed
	// point (invEpochFxShift fractional bits). Integer addition is
	// exact and order-independent, so the sum is identical no matter
	// in which order flows join and leave — the float accumulation it
	// replaces was only deterministic because every pass ran in
	// sorted order.
	invSumFx int64
	// pools holds per-pool active counts in the same flat shape as
	// the flow store (point lookups only — never iterated). Flow
	// records pin their pool's entry through poolSlot references.
	pools poolTable
	// stamp is the snapshot barrier counter for poolEntry (bumped by
	// snapshotPools).
	stamp uint64

	// actHeap orders flows by the time their activity-recency window
	// (4 epochs of silence) runs out; scanHeap orders them by the
	// earliest time a scan transition or expiry eviction could apply.
	actHeap, scanHeap deadlineHeap
	// due is the scan's scratch list.
	due []*flowInfo
	// lastScan is when the periodic scan last ran. The rescanning
	// implementation rolled every flow's epoch counters each scan;
	// the incremental one rolls lazily, and readers that need
	// scan-fresh counters (the eviction score) catch up to this
	// point — roll is idempotent catch-up, so the result is
	// identical.
	lastScan sim.Time

	// pad keeps the struct a whole multiple of the cache line so
	// adjacent per-shard trackers never share one (the align=64
	// layout contract above).
	_ [56]byte
}

func newTracker(run sim.Runner, cfg Config) *tracker {
	return &tracker{cfg: cfg, run: run, stamp: 1}
}

func (t *tracker) get(id packet.FlowID) *flowInfo { return t.store.lookup(id) }

func (t *tracker) getOrCreate(p *packet.Packet) *flowInfo {
	f := t.store.lookup(p.Flow)
	if f == nil {
		now := t.run.Now()
		f = t.store.alloc(p.Flow)
		f.pool, f.state = p.Pool, StateNew
		f.synBurst = now // SYN time until the first data packet lands
		f.epoch, f.epochStart, f.lastPkt = t.cfg.DefaultEpoch, now, now
		f.highSeq, f.sampleSeq, f.lastClass = -1, -1, -1
		f.poolSlot = idxEmpty
		t.census[StateNew]++
		if p.Pool != packet.PoolNone {
			f.poolSlot = t.pools.ref(p.Pool)
		}
	}
	return f
}

// evictFlow removes a long-dead flow: it is withdrawn from every
// aggregate, its heap entries are invalidated by the generation bump in
// release, and the slot goes back to the store's free list for reuse.
func (t *tracker) evictFlow(f *flowInfo) {
	if f.counted {
		t.applyCount(f, false)
	}
	t.census[f.state]--
	if f.poolSlot != idxEmpty {
		t.pools.unref(f.poolSlot)
	}
	f.actDl, f.scanDl = 0, 0
	t.store.release(f)
}

// setState moves f to state s, emitting the tracker trace events. A
// transition into a silence state additionally emits TimeoutDetected —
// the middlebox concluding the sender is waiting out an RTO.
func (t *tracker) setState(f *flowInfo, s FlowState) {
	if f.state == s {
		return
	}
	t.mx.observeTransition(s)
	if t.rec != nil {
		now := t.run.Now()
		t.rec.TrackerTransition(now, f.id, f.pool, int8(f.state), int8(s))
		if s == StateTimeoutSilence || s == StateExtendedSilence {
			t.rec.TimeoutDetected(now, f.id, f.pool, int8(f.state), int8(s))
		}
	}
	t.census[f.state]--
	t.census[s]++
	f.state = s
}

// observe processes an arriving packet (before any drop decision) and
// returns the flow record plus whether the middlebox classifies the
// packet as a retransmission. The classification is observational —
// a data sequence at or below the highest seen — exactly what a real
// middlebox can infer.
func (t *tracker) observe(p *packet.Packet) (f *flowInfo, rtx bool) {
	now := t.run.Now()
	f = t.getOrCreate(p)
	silence := f.silentFor(now)
	if silence > f.epoch {
		f.lastSilence = silence
	}
	f.catchUp(now)

	switch p.Kind {
	case packet.Syn:
		if !f.gotData {
			// synBurst still means "SYN time" before the first data
			// packet; once data state exists the burst meaning owns
			// the field and the SYN time is never read again.
			f.synBurst = now
		}
		if f.state != StateNew && f.gotData {
			// SYN retry of a flow we have data state for: ignore.
			break
		}
		t.setState(f, StateNew)
	case packet.Data:
		rtx = f.gotData && p.Seq <= int(f.highSeq)
		if !f.gotData {
			// First data packet: seed the epoch estimate from the
			// SYN→data gap (§3.3's one-way estimation approach).
			f.gotData = true
			if d := now - f.synBurst; d > 10*sim.Millisecond && d < 2*t.cfg.DefaultEpoch*10 {
				f.epoch = d
			}
			f.epochStart = now
			f.synBurst = now // burst-start meaning from here on
		} else if silence > f.epoch/2 && !f.twoWay &&
			(f.state == StateNormal || f.state == StateSlowStart) {
			// Burst start after a gap: TCP sends a window per RTT, so
			// the burst-to-burst interval tracks the epoch. Refine
			// with a weighted moving average (§3.3).
			interval := now - f.synBurst
			if interval > f.epoch/2 && interval < 4*f.epoch {
				f.epoch = (7*f.epoch + interval) / 8
			}
			f.synBurst = now
		}
		if p.Seq > int(f.highSeq) {
			f.highSeq = int32(p.Seq)
		}
		if rtx {
			f.rtxPkts++
		} else {
			f.newPkts++
		}
		f.bytes += float64(p.Size)
		t.transition(f, rtx, silence)
	}
	f.lastPkt = now
	t.reconcile(f)
	return f, rtx
}

// transition applies the Fig 7 state machine for an observed data
// packet. silence is how long the flow had been quiet before this
// packet.
func (t *tracker) transition(f *flowInfo, rtx bool, silence sim.Time) {
	switch f.state {
	case StateNew:
		t.setState(f, StateSlowStart)
	case StateTimeoutSilence, StateExtendedSilence:
		if rtx {
			t.setState(f, StateTimeoutRecovery)
		} else {
			// New data after silence: sender restarted cleanly.
			t.setState(f, StateSlowStart)
			f.outstandingDrops = 0
			f.protectEpochs = 2
		}
	case StateTimeoutRecovery:
		if rtx {
			if f.outstandingDrops > 0 {
				f.outstandingDrops--
			}
		} else {
			// New data past the loss point: recovered to slow start.
			t.setState(f, StateSlowStart)
			f.outstandingDrops = 0
			f.lastSilence = 0
			f.protectEpochs = 2
		}
	case StateLossRecovery:
		if rtx {
			if f.outstandingDrops > 0 {
				f.outstandingDrops--
			}
		} else if f.outstandingDrops == 0 {
			t.setState(f, StateNormal)
			f.lastSilence = 0
			f.protectEpochs = 2
		}
	case StateSlowStart, StateNormal, StateIdleSilence:
		switch {
		case rtx:
			// A retransmission we did not cause: external loss or a
			// timeout we missed.
			t.setState(f, StateLossRecovery)
		case f.state == StateIdleSilence:
			t.setState(f, StateNormal)
		case f.state == StateSlowStart && f.epochs >= 1 &&
			f.prevNewPkts > 0 && f.newPkts <= f.prevNewPkts+1:
			// Growth flattened out: slow start is over.
			t.setState(f, StateNormal)
		}
	}
}

// observeForwarded is called when a data packet is actually served
// onto the link: it arms the downstream RTT sample, and closes the
// upstream half if the ack that released this data was seen.
func (t *tracker) observeForwarded(p *packet.Packet) {
	f := t.get(p.Flow)
	if f == nil || p.Kind != packet.Data {
		return
	}
	now := t.run.Now()
	if f.awaitingData && !p.Retransmit {
		if up := now - f.lastAckAt; up > 0 && up < 4*f.epoch {
			f.upRTT = ewmaTime(f.upRTT, up)
		}
		f.awaitingData = false
	}
	if f.sampleSeq < 0 {
		f.sampleSeq = int32(p.Seq)
		f.sampleAt = now
	}
}

// observeReverse is called for ack-path packets in two-way mode: it
// closes downstream RTT samples and feeds the epoch estimate.
func (t *tracker) observeReverse(p *packet.Packet) {
	f := t.get(p.Flow)
	if f == nil || p.Kind != packet.Ack {
		return
	}
	now := t.run.Now()
	// About to move the epoch: first catch the counters up to the last
	// scan with the old epoch. The full-table rescan rolled every flow
	// at every scan, so its epoch-boundary crossings up to that point
	// used the pre-ack estimate; rolling lazily with the new epoch
	// would land the boundaries elsewhere.
	f.catchUp(t.lastScan)
	if f.sampleSeq >= 0 && p.CumAck > int(f.sampleSeq) {
		if down := now - f.sampleAt; down > 0 {
			f.downRTT = ewmaTime(f.downRTT, down)
		}
		f.sampleSeq = -1
	}
	f.lastAckAt = now
	f.awaitingData = true
	if f.downRTT > 0 && f.upRTT > 0 {
		f.epoch = f.downRTT + f.upRTT
		f.twoWay = true
	}
	// The epoch may have moved without a forward packet: deadlines
	// derived from it (and the flow's inverse-epoch term) must follow.
	t.reconcile(f)
}

func ewmaTime(old, sample sim.Time) sim.Time {
	if old == 0 {
		return sample
	}
	return (7*old + sample) / 8
}

// recordDrop updates flow state after TAQ drops one of its packets
// (§4.1: predicting the consequence of the drop).
func (t *tracker) recordDrop(p *packet.Packet, rtx bool) {
	f := t.get(p.Flow)
	if f == nil {
		return
	}
	now := t.run.Now()
	// Catch the flow up to the last scan before counting, so the drop
	// lands in the same epoch bucket the full-table rescan would have
	// used (the rescan rolled every flow each scan; roll is idempotent,
	// so a flow already rolled past the scan is untouched).
	f.catchUp(t.lastScan)
	f.drops++
	f.outstandingDrops++
	switch {
	case p.Kind == packet.Syn:
		// The sender will retry the SYN after its handshake timer.
		t.setState(f, StateNew)
	case rtx:
		// Dropping a retransmission forces an RTO (§4.1): the flow
		// enters a timeout silence, possibly a repetitive one.
		if f.state == StateTimeoutRecovery || f.state == StateExtendedSilence {
			t.setState(f, StateExtendedSilence)
		} else {
			t.setState(f, StateTimeoutSilence)
		}
		f.silenceStart = now
	default:
		if f.state == StateNormal || f.state == StateSlowStart || f.state == StateIdleSilence {
			t.setState(f, StateLossRecovery)
		}
	}
	// The drop may have changed the state, silenceStart, or the
	// outstanding-drop count — all scan-deadline inputs.
	t.reconcile(f)
}

// timeoutish reports whether s is one of the timeout states whose
// flows count as active regardless of silence — they deserve their
// fair share when they return (§3.3).
func timeoutish(s FlowState) bool {
	return s == StateTimeoutSilence || s == StateExtendedSilence ||
		s == StateTimeoutRecovery
}

// invEpochFxShift is the fixed-point precision of invSumFx: terms are
// (1/epoch seconds) scaled by 2^20, giving ~6 decimal digits below the
// point while a million 1 kHz flows still sum far below int64 range.
const invEpochFxShift = 20

func invTermFor(epoch sim.Time) int64 {
	if epoch <= 0 {
		return 0
	}
	return (int64(sim.Second) << invEpochFxShift) / int64(epoch)
}

// wantCounted is the active-flow predicate: seen within the last four
// epochs, or parked in a timeout state.
func (t *tracker) wantCounted(f *flowInfo, now sim.Time) bool {
	return now-f.lastPkt <= 4*f.epoch || timeoutish(f.state)
}

// applyCount inserts or withdraws f from the active aggregates:
// activeN, the inverse-epoch sum, and the pool counts (pool-less flows
// are their own singleton pools).
func (t *tracker) applyCount(f *flowInfo, on bool) {
	if on == f.counted {
		return
	}
	f.counted = on
	if on {
		t.activeN++
		f.invTerm = invTermFor(f.epoch)
		t.invSumFx += f.invTerm
	} else {
		t.activeN--
		t.invSumFx -= f.invTerm
	}
	if f.pool == packet.PoolNone {
		if on {
			t.singles++
		} else {
			t.singles--
		}
		return
	}
	// poolSlot is pinned (refs > 0) for as long as the flow is
	// tracked, so this is a direct array access with no probe.
	e := &t.pools.recs[f.poolSlot]
	if e.stamp != t.stamp {
		e.snap = e.cur
		e.stamp = t.stamp
	}
	if on {
		if e.cur == 0 {
			t.activePoolsN++
		}
		e.cur++
	} else {
		e.cur--
		if e.cur == 0 {
			t.activePoolsN--
		}
	}
}

// scanDeadlineOf returns the earliest time at which the periodic scan
// could change f: the moment a silence-transition condition can first
// hold (all are strict comparisons, so the flow is due once the
// deadline is strictly in the past), capped by expiry eviction.
func (t *tracker) scanDeadlineOf(f *flowInfo) sim.Time {
	dl := f.lastPkt + t.cfg.FlowExpiry
	switch f.state {
	case StateLossRecovery, StateTimeoutRecovery:
		var d sim.Time
		if f.outstandingDrops > 0 {
			d = f.lastPkt + f.epoch*3/2
		} else {
			d = f.lastPkt + f.epoch*3
		}
		if d < dl {
			dl = d
		}
	case StateTimeoutSilence:
		if d := f.silenceStart + 3*f.epoch; d < dl {
			dl = d
		}
	case StateNormal, StateSlowStart:
		if d := f.lastPkt + f.epoch*3/2; d < dl {
			dl = d
		}
	}
	return dl
}

// reconcile brings f's aggregate membership and heap deadlines in line
// with its current fields. It must run after any mutation of a
// deadline input (lastPkt, epoch, state, outstandingDrops,
// silenceStart): observe, observeReverse, recordDrop, and each scanned
// flow end with it. Pushes are elided unless they move the flow's
// earliest live entry, so repeated reconciles are cheap and the heaps
// stay near one live entry per flow.
func (t *tracker) reconcile(f *flowInfo) {
	now := t.run.Now()
	if want := t.wantCounted(f, now); want != f.counted {
		t.applyCount(f, want)
	} else if f.counted {
		if nt := invTermFor(f.epoch); nt != f.invTerm {
			t.invSumFx += nt - f.invTerm
			f.invTerm = nt
		}
	}
	if f.counted && !timeoutish(f.state) {
		dl := f.lastPkt + 4*f.epoch
		if f.actDl == 0 || dl < f.actDl {
			t.actHeap.push(dl, f)
			f.actDl = dl
		}
	}
	dl := t.scanDeadlineOf(f)
	if f.scanDl == 0 || dl < f.scanDl {
		t.scanHeap.push(dl, f)
		f.scanDl = dl
	}
}

// advanceActivity settles every activity deadline that has passed:
// flows whose recency window ran out are withdrawn from the active
// aggregates. Readers call it first, so active counts are evaluated
// at read time exactly like the predicate-per-flow rescan was.
// Timeout-state flows stay counted regardless of silence; their
// entries are simply discarded (reconcile re-arms one when the state
// machine moves them on).
func (t *tracker) advanceActivity(now sim.Time) {
	for {
		e, ok := t.actHeap.peek()
		if !ok || e.dl >= now {
			return
		}
		t.actHeap.pop()
		f := t.store.at(e.slot)
		if f.gen != e.gen {
			continue // evicted (and possibly recycled) since the push
		}
		if f.actDl == e.dl {
			f.actDl = 0
		}
		if !f.counted || timeoutish(f.state) {
			continue
		}
		if actual := f.lastPkt + 4*f.epoch; actual < now {
			t.applyCount(f, false)
		} else {
			// The deadline moved later after this entry was pushed
			// (new packets, or the epoch grew): re-arm at the live
			// deadline.
			if f.actDl == 0 || actual < f.actDl {
				t.actHeap.push(actual, f)
				f.actDl = actual
			}
		}
	}
}

// scan performs the periodic silence pass: flows that have gone quiet
// move into the silence states; long-dead flows are evicted. Only
// flows whose scan deadline has passed are touched; the transition
// logic itself is unchanged. Due flows are processed in ascending id
// order — the order the full-table rescan used — so trace events
// within a scan are emitted identically.
func (t *tracker) scan() {
	now := t.run.Now()
	// Index doubling is hoisted to scan cadence so the rehash never
	// runs under a packet (put keeps only an emergency threshold).
	t.store.idx.maybeGrow()
	t.pools.idx.maybeGrow()
	t.advanceActivity(now)
	t.due = t.due[:0]
	for {
		e, ok := t.scanHeap.peek()
		if !ok || e.dl >= now {
			break
		}
		t.scanHeap.pop()
		f := t.store.at(e.slot)
		if f.gen != e.gen {
			continue
		}
		if f.scanDl == e.dl {
			f.scanDl = 0
		}
		t.due = append(t.due, f)
	}
	slices.SortFunc(t.due, func(a, b *flowInfo) int {
		return int(a.id) - int(b.id)
	})
	var prev *flowInfo
	for _, f := range t.due {
		if f == prev {
			continue // duplicate stale entries for the same flow
		}
		prev = f
		t.scanFlow(f, now)
	}
	t.lastScan = now
}

// scanFlow applies the scan logic to one due flow. Processing a flow
// whose live deadline has not actually passed (a stale early entry) is
// harmless: every condition below is false and reconcile re-arms the
// true deadline.
func (t *tracker) scanFlow(f *flowInfo, now sim.Time) {
	if f.silentFor(now) > t.cfg.FlowExpiry {
		t.evictFlow(f)
		return
	}
	f.catchUp(now)
	silent := f.silentFor(now)
	switch f.state {
	case StateLossRecovery, StateTimeoutRecovery:
		if silent > f.epoch*3/2 && f.outstandingDrops > 0 {
			// Expected retransmissions never came: the sender is
			// waiting out an RTO.
			if f.state == StateTimeoutRecovery {
				t.setState(f, StateExtendedSilence)
			} else {
				t.setState(f, StateTimeoutSilence)
			}
			f.silenceStart = f.lastPkt
		} else if silent > f.epoch*3 {
			t.setState(f, StateIdleSilence)
		}
	case StateTimeoutSilence:
		if now-f.silenceStart > 3*f.epoch {
			t.setState(f, StateExtendedSilence)
		}
	case StateNormal, StateSlowStart:
		if silent > f.epoch*3/2 {
			if f.outstandingDrops > 0 {
				t.setState(f, StateTimeoutSilence)
				f.silenceStart = f.lastPkt
			} else {
				t.setState(f, StateIdleSilence)
			}
		}
	}
	t.reconcile(f)
}

// activeStats returns the number of active flows (seen within the
// last few epochs or stuck in timeout states) — the N of the
// fair-share computation C/N — together with the sum of their inverse
// epoch estimates, which weights the proportional fairness model. Both
// are O(1) reads of maintained counters (after settling any expired
// activity deadlines).
func (t *tracker) activeStats() (n int, invEpochSum float64) {
	t.advanceActivity(t.run.Now())
	return t.activeN, float64(t.invSumFx) / (1 << invEpochFxShift)
}

// activeFlows counts flows seen within the last few epochs.
func (t *tracker) activeFlows() int {
	t.advanceActivity(t.run.Now())
	return t.activeN
}

// snapshotPools returns the number of active pools (pool-less flows
// count as one pool each) and starts a new pool-count snapshot window:
// until the next call, poolCount answers with the counts as of this
// barrier.
func (t *tracker) snapshotPools() (pools int) {
	t.advanceActivity(t.run.Now())
	pools = t.activePoolsN + t.singles
	t.stamp++
	return pools
}

// poolCount returns pool's active flow count as of the last
// snapshotPools barrier (0 for unknown or inactive pools).
func (t *tracker) poolCount(pool packet.PoolID) int {
	e := t.pools.lookup(pool)
	if e == nil {
		return 0
	}
	if e.stamp == t.stamp {
		return int(e.snap)
	}
	return int(e.cur)
}

// stateCensus returns the number of tracked flows in each state — a
// copy of the maintained census array, allocation-free.
func (t *tracker) stateCensus() Census { return t.census }
