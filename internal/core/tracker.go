package core

import (
	"sort"

	"taq/internal/obs"
	"taq/internal/packet"
	"taq/internal/sim"
)

// FlowState is the middlebox's approximate classification of a flow
// (§3.3, Fig 7). It is inferred purely from observations at the
// middlebox — packet counts per epoch, highest sequence, retransmitted
// packets, drops at the TAQ queue, and silences — never from sender
// state.
type FlowState uint8

const (
	// StateNew: SYN seen, no data yet.
	StateNew FlowState = iota
	// StateSlowStart: significant growth in new packets per epoch.
	StateSlowStart
	// StateNormal: steady progress, no losses at the TAQ queue.
	StateNormal
	// StateLossRecovery: the middlebox dropped one of the flow's
	// packets and expects retransmissions ("explicit loss recovery").
	StateLossRecovery
	// StateTimeoutSilence: the flow stopped sending after losses; it
	// is presumed waiting out an RTO.
	StateTimeoutSilence
	// StateTimeoutRecovery: retransmissions after a timeout silence.
	StateTimeoutRecovery
	// StateExtendedSilence: silence spanning multiple epochs beyond a
	// timeout — the repetitive-timeout regime.
	StateExtendedSilence
	// StateIdleSilence: a healthy flow with nothing to send (the
	// dummy state for pipelined connections between objects).
	StateIdleSilence

	numFlowStates = int(StateIdleSilence) + 1
)

// String implements fmt.Stringer.
func (s FlowState) String() string {
	switch s {
	case StateNew:
		return "New"
	case StateSlowStart:
		return "SlowStart"
	case StateNormal:
		return "Normal"
	case StateLossRecovery:
		return "LossRecovery"
	case StateTimeoutSilence:
		return "TimeoutSilence"
	case StateTimeoutRecovery:
		return "TimeoutRecovery"
	case StateExtendedSilence:
		return "ExtendedSilence"
	case StateIdleSilence:
		return "IdleSilence"
	default:
		return "Unknown"
	}
}

// flowInfo is the per-flow record the middlebox maintains (§3.3: new
// packets per epoch, highest sequence number, retransmitted packets,
// losses in the previous epoch — plus the state-machine bookkeeping).
type flowInfo struct {
	id   packet.FlowID
	pool packet.PoolID

	state FlowState

	created sim.Time
	synAt   sim.Time
	gotData bool

	// Epoch (middlebox-perceived RTT) estimation.
	epoch      sim.Time
	epochStart sim.Time
	epochs     int      // epochs observed since creation
	burstStart sim.Time // start of the current packet burst

	// Current- and previous-epoch counters.
	newPkts, prevNewPkts int
	rtxPkts              int
	drops, prevDrops     int
	bytes                float64 // bytes forwarded-or-queued this epoch

	highSeq int // highest data sequence observed

	lastPkt      sim.Time // last packet observed (any kind)
	silenceStart sim.Time // when the current presumed-RTO silence began

	// outstandingDrops counts packets TAQ dropped that have not yet
	// been seen retransmitted.
	outstandingDrops int

	// lastSilence remembers the length of the flow's most recent
	// silence episode; it keys the Recovery queue priority for the
	// whole retransmission burst that follows the silence.
	lastSilence sim.Time

	// Two-way RTT sampling (§3.3 "conventional mode": TAQ observes
	// two-way traffic, making it relatively easy to estimate RTT).
	// The downstream half is the gap from forwarding a data segment
	// to seeing its ack return; the upstream half is the gap from
	// that ack to the new data it releases from the sender.
	sampleSeq    int // data segment awaiting its ack; -1 when idle
	sampleAt     sim.Time
	downRTT      sim.Time // EWMA of the downstream half
	lastAckAt    sim.Time // when the last returning ack was observed
	awaitingData bool     // upstream half armed
	upRTT        sim.Time // EWMA of the upstream half
	twoWay       bool     // two-way samples are feeding the epoch

	// protectEpochs counts down epochs during which a flow that just
	// recovered keeps elevated (OverPenalized-queue) protection: the
	// loss of the first new packets after a timeout escalates the
	// remembered backoff (§4.1), so they must not be the next victims.
	protectEpochs int

	// rateEWMA estimates the flow's throughput in bits/second.
	rateEWMA float64

	// lastClass is the TAQ class the flow's previous packet was
	// assigned (-1 before the first classification), so class-change
	// trace events fire only on actual changes.
	lastClass int8
}

// roll advances the flow's epoch counters to cover time now, possibly
// rolling several (empty) epochs at once.
func (f *flowInfo) roll(now sim.Time) {
	for now >= f.epochStart+f.epoch {
		seconds := f.epoch.Seconds()
		if seconds > 0 {
			inst := f.bytes * 8 / seconds
			f.rateEWMA = 0.875*f.rateEWMA + 0.125*inst
		}
		f.prevNewPkts = f.newPkts
		f.prevDrops = f.drops
		f.newPkts, f.rtxPkts, f.drops, f.bytes = 0, 0, 0, 0
		f.epochStart += f.epoch
		f.epochs++
		if f.protectEpochs > 0 {
			f.protectEpochs--
		}
	}
}

// silentFor returns how long the flow has been silent at time now.
func (f *flowInfo) silentFor(now sim.Time) sim.Time { return now - f.lastPkt }

// tracker owns all per-flow records and applies the approximate state
// model.
type tracker struct {
	cfg   Config
	run   sim.Runner
	flows map[packet.FlowID]*flowInfo
	// rec, when non-nil, receives TrackerTransition/TimeoutDetected
	// events from setState (installed via TAQ.SetRecorder).
	rec *obs.Recorder
}

func newTracker(run sim.Runner, cfg Config) *tracker {
	return &tracker{cfg: cfg, run: run, flows: make(map[packet.FlowID]*flowInfo)}
}

func (t *tracker) get(id packet.FlowID) *flowInfo { return t.flows[id] }

func (t *tracker) getOrCreate(p *packet.Packet) *flowInfo {
	f, ok := t.flows[p.Flow]
	if !ok {
		now := t.run.Now()
		f = &flowInfo{
			id: p.Flow, pool: p.Pool, state: StateNew,
			created: now, synAt: now, epoch: t.cfg.DefaultEpoch,
			epochStart: now, lastPkt: now, highSeq: -1, sampleSeq: -1,
			lastClass: -1,
		}
		t.flows[p.Flow] = f
	}
	return f
}

// setState moves f to state s, emitting the tracker trace events. A
// transition into a silence state additionally emits TimeoutDetected —
// the middlebox concluding the sender is waiting out an RTO.
func (t *tracker) setState(f *flowInfo, s FlowState) {
	if f.state == s {
		return
	}
	if t.rec != nil {
		now := t.run.Now()
		t.rec.TrackerTransition(now, f.id, f.pool, int8(f.state), int8(s))
		if s == StateTimeoutSilence || s == StateExtendedSilence {
			t.rec.TimeoutDetected(now, f.id, f.pool, int8(f.state), int8(s))
		}
	}
	f.state = s
}

// observe processes an arriving packet (before any drop decision) and
// returns the flow record plus whether the middlebox classifies the
// packet as a retransmission. The classification is observational —
// a data sequence at or below the highest seen — exactly what a real
// middlebox can infer.
func (t *tracker) observe(p *packet.Packet) (f *flowInfo, rtx bool) {
	now := t.run.Now()
	f = t.getOrCreate(p)
	silence := f.silentFor(now)
	if silence > f.epoch {
		f.lastSilence = silence
	}
	f.roll(now)

	switch p.Kind {
	case packet.Syn:
		f.synAt = now
		if f.state != StateNew && f.gotData {
			// SYN retry of a flow we have data state for: ignore.
			break
		}
		t.setState(f, StateNew)
	case packet.Data:
		rtx = f.gotData && p.Seq <= f.highSeq
		if !f.gotData {
			// First data packet: seed the epoch estimate from the
			// SYN→data gap (§3.3's one-way estimation approach).
			f.gotData = true
			if d := now - f.synAt; d > 10*sim.Millisecond && d < 2*t.cfg.DefaultEpoch*10 {
				f.epoch = d
			}
			f.epochStart = now
			f.burstStart = now
		} else if silence > f.epoch/2 && !f.twoWay &&
			(f.state == StateNormal || f.state == StateSlowStart) {
			// Burst start after a gap: TCP sends a window per RTT, so
			// the burst-to-burst interval tracks the epoch. Refine
			// with a weighted moving average (§3.3).
			interval := now - f.burstStart
			if interval > f.epoch/2 && interval < 4*f.epoch {
				f.epoch = (7*f.epoch + interval) / 8
			}
			f.burstStart = now
		}
		if p.Seq > f.highSeq {
			f.highSeq = p.Seq
		}
		if rtx {
			f.rtxPkts++
		} else {
			f.newPkts++
		}
		f.bytes += float64(p.Size)
		t.transition(f, rtx, silence)
	}
	f.lastPkt = now
	return f, rtx
}

// transition applies the Fig 7 state machine for an observed data
// packet. silence is how long the flow had been quiet before this
// packet.
func (t *tracker) transition(f *flowInfo, rtx bool, silence sim.Time) {
	switch f.state {
	case StateNew:
		t.setState(f, StateSlowStart)
	case StateTimeoutSilence, StateExtendedSilence:
		if rtx {
			t.setState(f, StateTimeoutRecovery)
		} else {
			// New data after silence: sender restarted cleanly.
			t.setState(f, StateSlowStart)
			f.outstandingDrops = 0
			f.protectEpochs = 2
		}
	case StateTimeoutRecovery:
		if rtx {
			if f.outstandingDrops > 0 {
				f.outstandingDrops--
			}
		} else {
			// New data past the loss point: recovered to slow start.
			t.setState(f, StateSlowStart)
			f.outstandingDrops = 0
			f.lastSilence = 0
			f.protectEpochs = 2
		}
	case StateLossRecovery:
		if rtx {
			if f.outstandingDrops > 0 {
				f.outstandingDrops--
			}
		} else if f.outstandingDrops == 0 {
			t.setState(f, StateNormal)
			f.lastSilence = 0
			f.protectEpochs = 2
		}
	case StateSlowStart, StateNormal, StateIdleSilence:
		switch {
		case rtx:
			// A retransmission we did not cause: external loss or a
			// timeout we missed.
			t.setState(f, StateLossRecovery)
		case f.state == StateIdleSilence:
			t.setState(f, StateNormal)
		case f.state == StateSlowStart && f.epochs >= 1 &&
			f.prevNewPkts > 0 && f.newPkts <= f.prevNewPkts+1:
			// Growth flattened out: slow start is over.
			t.setState(f, StateNormal)
		}
	}
}

// observeForwarded is called when a data packet is actually served
// onto the link: it arms the downstream RTT sample, and closes the
// upstream half if the ack that released this data was seen.
func (t *tracker) observeForwarded(p *packet.Packet) {
	f := t.get(p.Flow)
	if f == nil || p.Kind != packet.Data {
		return
	}
	now := t.run.Now()
	if f.awaitingData && !p.Retransmit {
		if up := now - f.lastAckAt; up > 0 && up < 4*f.epoch {
			f.upRTT = ewmaTime(f.upRTT, up)
		}
		f.awaitingData = false
	}
	if f.sampleSeq < 0 {
		f.sampleSeq = p.Seq
		f.sampleAt = now
	}
}

// observeReverse is called for ack-path packets in two-way mode: it
// closes downstream RTT samples and feeds the epoch estimate.
func (t *tracker) observeReverse(p *packet.Packet) {
	f := t.get(p.Flow)
	if f == nil || p.Kind != packet.Ack {
		return
	}
	now := t.run.Now()
	if f.sampleSeq >= 0 && p.CumAck > f.sampleSeq {
		if down := now - f.sampleAt; down > 0 {
			f.downRTT = ewmaTime(f.downRTT, down)
		}
		f.sampleSeq = -1
	}
	f.lastAckAt = now
	f.awaitingData = true
	if f.downRTT > 0 && f.upRTT > 0 {
		f.epoch = f.downRTT + f.upRTT
		f.twoWay = true
	}
}

func ewmaTime(old, sample sim.Time) sim.Time {
	if old == 0 {
		return sample
	}
	return (7*old + sample) / 8
}

// recordDrop updates flow state after TAQ drops one of its packets
// (§4.1: predicting the consequence of the drop).
func (t *tracker) recordDrop(p *packet.Packet, rtx bool) {
	f := t.get(p.Flow)
	if f == nil {
		return
	}
	now := t.run.Now()
	f.drops++
	f.outstandingDrops++
	switch {
	case p.Kind == packet.Syn:
		// The sender will retry the SYN after its handshake timer.
		t.setState(f, StateNew)
	case rtx:
		// Dropping a retransmission forces an RTO (§4.1): the flow
		// enters a timeout silence, possibly a repetitive one.
		if f.state == StateTimeoutRecovery || f.state == StateExtendedSilence {
			t.setState(f, StateExtendedSilence)
		} else {
			t.setState(f, StateTimeoutSilence)
		}
		f.silenceStart = now
	default:
		if f.state == StateNormal || f.state == StateSlowStart || f.state == StateIdleSilence {
			t.setState(f, StateLossRecovery)
		}
	}
}

// sortedFlowIDs returns the tracked flow ids in ascending order, so
// per-flow passes (and their floating-point accumulations) run in a
// deterministic order regardless of map layout.
func (t *tracker) sortedFlowIDs() []packet.FlowID {
	ids := make([]packet.FlowID, 0, len(t.flows))
	for id := range t.flows {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// scan performs the periodic silence pass: flows that have gone quiet
// move into the silence states; long-dead flows are evicted.
func (t *tracker) scan() {
	now := t.run.Now()
	for _, id := range t.sortedFlowIDs() {
		f := t.flows[id]
		if f.silentFor(now) > t.cfg.FlowExpiry {
			delete(t.flows, id)
			continue
		}
		f.roll(now)
		silent := f.silentFor(now)
		switch f.state {
		case StateLossRecovery, StateTimeoutRecovery:
			if silent > f.epoch*3/2 && f.outstandingDrops > 0 {
				// Expected retransmissions never came: the sender is
				// waiting out an RTO.
				if f.state == StateTimeoutRecovery {
					t.setState(f, StateExtendedSilence)
				} else {
					t.setState(f, StateTimeoutSilence)
				}
				f.silenceStart = f.lastPkt
			} else if silent > f.epoch*3 {
				t.setState(f, StateIdleSilence)
			}
		case StateTimeoutSilence:
			if now-f.silenceStart > 3*f.epoch {
				t.setState(f, StateExtendedSilence)
			}
		case StateNormal, StateSlowStart:
			if silent > f.epoch*3/2 {
				if f.outstandingDrops > 0 {
					t.setState(f, StateTimeoutSilence)
					f.silenceStart = f.lastPkt
				} else {
					t.setState(f, StateIdleSilence)
				}
			}
		}
	}
}

// activeStats returns the number of active flows (seen within the
// last few epochs or stuck in timeout states) — the N of the
// fair-share computation C/N — together with the sum of their inverse
// epoch estimates, which weights the proportional fairness model.
func (t *tracker) activeStats() (n int, invEpochSum float64) {
	now := t.run.Now()
	for _, id := range t.sortedFlowIDs() {
		f := t.flows[id]
		if f.silentFor(now) <= 4*f.epoch || f.state == StateTimeoutSilence ||
			f.state == StateExtendedSilence || f.state == StateTimeoutRecovery {
			n++
			if f.epoch > 0 {
				invEpochSum += 1 / f.epoch.Seconds()
			}
		}
	}
	return
}

// activeFlows counts flows seen within the last few epochs.
func (t *tracker) activeFlows() int {
	n, _ := t.activeStats()
	return n
}

// activePools returns the number of active pools and the active flow
// count of each (pool-less flows count as one pool each, keyed by
// PoolNone — callers treat them as singletons).
func (t *tracker) activePools() (pools int, flowsPerPool map[packet.PoolID]int) {
	now := t.run.Now()
	flowsPerPool = make(map[packet.PoolID]int)
	singletons := 0
	for _, id := range t.sortedFlowIDs() {
		f := t.flows[id]
		active := f.silentFor(now) <= 4*f.epoch || f.state == StateTimeoutSilence ||
			f.state == StateExtendedSilence || f.state == StateTimeoutRecovery
		if !active {
			continue
		}
		if f.pool == packet.PoolNone {
			singletons++
			continue
		}
		flowsPerPool[f.pool]++
	}
	return len(flowsPerPool) + singletons, flowsPerPool
}

// StateCensus returns the number of tracked flows in each state.
func (t *tracker) stateCensus() map[FlowState]int {
	out := make(map[FlowState]int, numFlowStates)
	for _, f := range t.flows {
		out[f.state]++
	}
	return out
}
