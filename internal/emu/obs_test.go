package emu

import (
	"io"
	"net/http"
	"strings"
	"testing"

	"taq/internal/link"
	"taq/internal/obs"
	"taq/internal/sim"
)

// TestTestbedObservability drives a TAQ testbed with tracing, gauges
// and the live endpoint all enabled — the emu-side integration of the
// obs layer, and a -race workout for the recorder under concurrent
// timer callbacks plus HTTP snapshot reads.
func TestTestbedObservability(t *testing.T) {
	rec := obs.NewRecorder(nil, 1024)
	var series obs.MemorySeries
	tb := NewTestbed(TestbedConfig{
		Seed:          3,
		Speedup:       200,
		Bandwidth:     400 * link.Kbps,
		UseTAQ:        true,
		Events:        rec,
		GaugeSink:     &series,
		GaugeInterval: sim.Second,
		HTTPAddr:      "127.0.0.1:0",
	})
	if tb.HTTPErr != nil {
		t.Logf("live endpoint unavailable: %v", tb.HTTPErr)
	}
	tb.AddBulkFlow()
	tb.AddBulkFlow()
	tb.RunFor(10 * sim.Second)

	if tb.HTTP != nil {
		resp, err := http.Get("http://" + tb.HTTP.Addr() + "/vars")
		if err != nil {
			t.Fatalf("GET /vars: %v", err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		for _, key := range []string{`"qlen"`, `"active_flows"`, `"loss_ewma"`} {
			if !strings.Contains(string(body), key) {
				t.Errorf("/vars missing %s: %s", key, body)
			}
		}
	}

	tb.Stop()

	var recorded uint64
	var enq, deq bool
	tb.Snapshot(func() {
		recorded = rec.Recorded
		for _, ev := range rec.Events() {
			switch ev.Kind {
			case obs.KindEnqueue:
				enq = true
			case obs.KindDequeue:
				deq = true
			}
		}
	})
	if recorded == 0 {
		t.Fatal("no trace events recorded")
	}
	if !enq || !deq {
		t.Fatalf("missing lifecycle events: enqueue=%v dequeue=%v", enq, deq)
	}
	if len(series.Times) < 2 {
		t.Fatalf("gauge samples = %d, want ≥ 2", len(series.Times))
	}
	if len(series.Names) == 0 || series.Names[0] != "qlen" {
		t.Fatalf("gauge header = %v", series.Names)
	}
}

// TestTestbedStopWithoutObs checks Stop stays safe when no obs options
// are configured (nil gauge set, recorder and server).
func TestTestbedStopWithoutObs(t *testing.T) {
	tb := NewTestbed(TestbedConfig{Seed: 1, Speedup: 500, Bandwidth: 200 * link.Kbps})
	tb.AddBulkFlow()
	tb.RunFor(sim.Second)
	tb.Stop()
}
