// Package emu provides the real-time execution substrate for the
// paper's prototype/testbed experiments (§5, Figs 11–12). The paper
// evaluated TAQ both in simulation and as a userspace middlebox (Click
// elements and a C# SharpPcap implementation) on a physical testbed;
// here the same role is played by a wall-clock implementation of
// sim.Runner, so the *identical* TCP and TAQ code that runs in the
// simulator runs under real concurrent timers, packet races and
// scheduling jitter — optionally time-scaled so a 200-virtual-second
// experiment finishes in a couple of wall seconds.
package emu

import (
	"math"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"taq/internal/sim"
)

// Engine is a wall-clock sim.Runner. All callbacks are serialized by
// an internal mutex (protocol code is written for serialized
// execution); the concurrency is real — every timer fires on its own
// goroutine and races to acquire the lock, exactly like packet and
// timer events racing in a userspace middlebox.
type Engine struct {
	mu      sync.Mutex
	start   time.Time
	speedup float64
	rng     *rand.Rand
	stopped bool

	// minNow is a floor on the virtual clock: the highest timer
	// deadline whose callback has started. The wall→virtual conversion
	// rounds, so a callback's own Now() could otherwise read a hair
	// *before* the deadline it fired for, and timeout logic comparing
	// Now() against deadlines would fire early (acute at high speedup,
	// where one wall nanosecond is many virtual ones). Written under
	// mu; read lock-free by Now.
	minNow atomic.Int64

	// tmu guards timers, the set of armed wall timers. A separate
	// mutex because Schedule runs while callers hold mu (callbacks
	// schedule their successors) and mu is not reentrant.
	tmu    sync.Mutex
	timers map[*wallNode]struct{}
}

// wallNode tracks one armed time.AfterFunc so Stop can disarm it. The
// node, not the *time.Timer, keys the set: the timer value is assigned
// after AfterFunc returns, and the callback (which may run
// immediately) needs a stable identity to deregister.
type wallNode struct{ t *time.Timer }

// NewEngine creates a real-time engine. speedup scales virtual time
// against wall time: with speedup 100, one wall second covers 100
// virtual seconds. speedup ≤ 0 means 1.
func NewEngine(seed int64, speedup float64) *Engine {
	if speedup <= 0 {
		speedup = 1
	}
	return &Engine{
		start:   time.Now(),
		speedup: speedup,
		rng:     rand.New(rand.NewSource(seed)),
		timers:  make(map[*wallNode]struct{}),
	}
}

// Now implements sim.Runner: the virtual time elapsed since creation,
// clamped so it never reads before the deadline of a callback that has
// already started (see minNow).
func (e *Engine) Now() sim.Time {
	now := sim.Time(float64(time.Since(e.start)) * e.speedup)
	if floor := sim.Time(e.minNow.Load()); floor > now {
		return floor
	}
	return now
}

// Rand implements sim.Runner. Only call from scheduled callbacks or
// Post-ed functions (it is guarded by the engine lock there).
func (e *Engine) Rand() *rand.Rand { return e.rng }

// wallDelay converts a virtual delay to the wall delay to arm,
// rounding up: the timer must never fire before its virtual deadline.
// Truncating (the old code) underslept by up to one wall nanosecond —
// up to `speedup` virtual nanoseconds — so a callback could run with
// the virtual clock still short of its deadline.
func wallDelay(delay sim.Time, speedup float64) time.Duration {
	if delay <= 0 {
		return 0
	}
	return time.Duration(math.Ceil(float64(delay) / speedup))
}

// Schedule implements sim.Runner: fn runs after the virtual delay,
// serialized with all other callbacks.
//
//taq:allow(func) lockdiscipline timers is guarded by tmu, not mu; the analyzer models one mutex per struct
func (e *Engine) Schedule(delay sim.Time, fn func()) *sim.Timer {
	if delay < 0 {
		delay = 0
	}
	tm := sim.ExternalTimer(e.Now() + delay)
	node := &wallNode{}
	// Holding tmu across AfterFunc closes the arm/registration race:
	// the callback's first act is to take tmu, so it cannot observe a
	// nil node.t or a set the node was never added to, even when the
	// wall delay is zero.
	e.tmu.Lock()
	node.t = time.AfterFunc(wallDelay(delay, e.speedup), func() { e.fire(node, tm, fn) })
	e.timers[node] = struct{}{}
	e.tmu.Unlock()
	tm.SetStop(wallTimer{e: e, node: node})
	return tm
}

// fire is the armed timer's callback: deregister, then run fn under
// the engine lock with the virtual clock clamped to the deadline.
func (e *Engine) fire(node *wallNode, tm *sim.Timer, fn func()) {
	e.tmu.Lock()
	delete(e.timers, node)
	e.tmu.Unlock()
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.stopped || tm.Canceled() {
		return
	}
	// The timer hardware ran at wall resolution; the virtual deadline
	// may still be a rounding error ahead. Advance the clock floor so
	// fn (and everything after it) observes Now() ≥ the deadline it
	// fired for. Monotone: deadlines of already-started callbacks only
	// ratchet upward.
	if dl := int64(tm.When()); dl > e.minNow.Load() {
		e.minNow.Store(dl)
	}
	fn()
}

// wallTimer adapts an armed wall timer to sim.TimerStopper.
type wallTimer struct {
	e    *Engine
	node *wallNode
}

// StopTimer implements sim.TimerStopper: disarm and deregister.
//
//taq:allow(func) noblock tmu is the engine's own short-critical-section timer lock, the same sanctioned exception NoblockAllow grants Engine methods
func (w wallTimer) StopTimer() {
	w.node.t.Stop()
	w.e.tmu.Lock()
	delete(w.e.timers, w.node)
	w.e.tmu.Unlock()
}

// Post runs fn under the engine lock, serialized with callbacks. Use
// it for scenario setup and for reading results.
func (e *Engine) Post(fn func()) {
	e.mu.Lock()
	defer e.mu.Unlock()
	fn()
}

// Stop prevents any further callbacks from running and disarms every
// outstanding wall timer. Without the disarm, already-armed
// time.AfterFunc timers stayed alive until their natural deadline just
// to bail on the stopped flag — minutes-long soaks accumulated
// thousands of runtime timers and their firing goroutines.
func (e *Engine) Stop() {
	e.mu.Lock()
	e.stopped = true
	e.mu.Unlock()
	e.tmu.Lock()
	for node := range e.timers {
		node.t.Stop()
	}
	clear(e.timers)
	e.tmu.Unlock()
}

// outstandingTimers reports how many wall timers are armed (tests).
func (e *Engine) outstandingTimers() int {
	e.tmu.Lock()
	n := len(e.timers)
	e.tmu.Unlock()
	return n
}

// RunFor blocks (wall-clock) until the given additional virtual time
// has elapsed.
func (e *Engine) RunFor(virtual sim.Time) {
	time.Sleep(wallDelay(virtual, e.speedup))
}

var _ sim.Runner = (*Engine)(nil)
