// Package emu provides the real-time execution substrate for the
// paper's prototype/testbed experiments (§5, Figs 11–12). The paper
// evaluated TAQ both in simulation and as a userspace middlebox (Click
// elements and a C# SharpPcap implementation) on a physical testbed;
// here the same role is played by a wall-clock implementation of
// sim.Runner, so the *identical* TCP and TAQ code that runs in the
// simulator runs under real concurrent timers, packet races and
// scheduling jitter — optionally time-scaled so a 200-virtual-second
// experiment finishes in a couple of wall seconds.
package emu

import (
	"math/rand"
	"sync"
	"time"

	"taq/internal/sim"
)

// Engine is a wall-clock sim.Runner. All callbacks are serialized by
// an internal mutex (protocol code is written for serialized
// execution); the concurrency is real — every timer fires on its own
// goroutine and races to acquire the lock, exactly like packet and
// timer events racing in a userspace middlebox.
type Engine struct {
	mu      sync.Mutex
	start   time.Time
	speedup float64
	rng     *rand.Rand
	stopped bool
}

// NewEngine creates a real-time engine. speedup scales virtual time
// against wall time: with speedup 100, one wall second covers 100
// virtual seconds. speedup ≤ 0 means 1.
func NewEngine(seed int64, speedup float64) *Engine {
	if speedup <= 0 {
		speedup = 1
	}
	return &Engine{
		start:   time.Now(),
		speedup: speedup,
		rng:     rand.New(rand.NewSource(seed)),
	}
}

// Now implements sim.Runner: the virtual time elapsed since creation.
func (e *Engine) Now() sim.Time {
	return sim.Time(float64(time.Since(e.start)) * e.speedup)
}

// Rand implements sim.Runner. Only call from scheduled callbacks or
// Post-ed functions (it is guarded by the engine lock there).
func (e *Engine) Rand() *rand.Rand { return e.rng }

// Schedule implements sim.Runner: fn runs after the virtual delay,
// serialized with all other callbacks.
func (e *Engine) Schedule(delay sim.Time, fn func()) *sim.Timer {
	if delay < 0 {
		delay = 0
	}
	tm := sim.ExternalTimer(e.Now() + delay)
	wall := time.Duration(float64(delay) / e.speedup)
	t := time.AfterFunc(wall, func() {
		e.mu.Lock()
		defer e.mu.Unlock()
		if e.stopped || tm.Canceled() {
			return
		}
		fn()
	})
	tm.SetStop(wallTimer{t})
	return tm
}

// wallTimer adapts *time.Timer to sim.TimerStopper.
type wallTimer struct{ t *time.Timer }

// StopTimer implements sim.TimerStopper.
func (w wallTimer) StopTimer() { w.t.Stop() }

// Post runs fn under the engine lock, serialized with callbacks. Use
// it for scenario setup and for reading results.
func (e *Engine) Post(fn func()) {
	e.mu.Lock()
	defer e.mu.Unlock()
	fn()
}

// Stop prevents any further callbacks from running.
func (e *Engine) Stop() {
	e.mu.Lock()
	e.stopped = true
	e.mu.Unlock()
}

// RunFor blocks (wall-clock) until the given additional virtual time
// has elapsed.
func (e *Engine) RunFor(virtual sim.Time) {
	time.Sleep(time.Duration(float64(virtual) / e.speedup))
}

var _ sim.Runner = (*Engine)(nil)
