package emu

import (
	"taq/internal/core"
	"taq/internal/obs"
	"taq/internal/packet"
	"taq/internal/sim"
)

// ShardBankConfig describes a bank of TAQ shards for the real-time
// path (ROADMAP item 1: per-shard dispatch off the engine lock).
type ShardBankConfig struct {
	// Shards is the shard count (< 1 → 1). Typically GOMAXPROCS: one
	// engine lock domain per core.
	Shards int
	Seed   int64
	// Speedup scales virtual against wall time, per Engine.
	Speedup float64
	// Core is the per-shard middlebox configuration.
	Core core.Config
	// Metrics gives each shard its own obs registry (the same TAQ
	// schema in every one), merged at the read edge by MergedSnapshot.
	Metrics bool
}

// BankShard is one shard's slice of the bank: its engine (= its lock
// domain and timer space), its TAQ, and optionally its own registry.
type BankShard struct {
	Engine   *Engine
	TAQ      *core.TAQ
	Registry *obs.Registry
}

// ShardBank runs an N-shard TAQ middlebox with one wall-clock Engine
// per shard, so the shards' packet paths never contend on a common
// engine lock — the sharded analogue of Testbed. The only state the
// shards share is the core Aggregator (loss window + admission),
// reached through its //taq:crossshard seams; everything else is
// //taq:shardowned and confined to its shard's engine.
//
// Drivers address shards explicitly: route a flow's packets to shard
// ShardFor(flow) via Post (or timers scheduled on that shard's
// engine). Feeding a flow to the wrong shard would split its state
// across trackers — core.ShardOf is the single ownership function.
type ShardBank struct {
	cfg    ShardBankConfig
	disc   *core.Sharded
	shards []BankShard
}

// NewShardBank builds and starts the bank: every shard's periodic scan
// is armed on its own engine.
func NewShardBank(cfg ShardBankConfig) *ShardBank {
	if cfg.Shards < 1 {
		cfg.Shards = 1
	}
	b := &ShardBank{cfg: cfg, shards: make([]BankShard, cfg.Shards)}
	runs := make([]sim.Runner, cfg.Shards)
	for i := range runs {
		// Distinct seeds: shard engines must not share an rng stream
		// (they don't share a lock to guard it).
		runs[i] = NewEngine(cfg.Seed+int64(i), cfg.Speedup)
	}
	b.disc = core.NewShardedOn(runs, cfg.Core)
	for i := range b.shards {
		sh := b.disc.Shard(i)
		eng := runs[i].(*Engine)
		b.shards[i] = BankShard{Engine: eng, TAQ: sh}
		if cfg.Metrics {
			reg := obs.NewRegistry()
			b.shards[i].Registry = reg
			sh.SetMetrics(core.NewMetrics(reg))
		}
		eng.Post(sh.Start)
	}
	return b
}

// NumShards returns the shard count.
func (b *ShardBank) NumShards() int { return len(b.shards) }

// Shard returns shard i.
func (b *ShardBank) Shard(i int) BankShard { return b.shards[i] }

// Sharded returns the underlying discipline (aggregate gauges, the
// shared Aggregator).
func (b *ShardBank) Sharded() *core.Sharded { return b.disc }

// ShardFor returns the shard owning the flow.
func (b *ShardBank) ShardFor(f packet.FlowID) int {
	return core.ShardOf(f, len(b.shards))
}

// Post runs fn serialized with shard i's callbacks.
func (b *ShardBank) Post(i int, fn func()) { b.shards[i].Engine.Post(fn) }

// MergedSnapshot merges the per-shard registries into one metrics view
// (empty when the bank was built without Metrics).
func (b *ShardBank) MergedSnapshot() *obs.MetricsSnapshot {
	regs := make([]*obs.Registry, len(b.shards))
	for i := range b.shards {
		regs[i] = b.shards[i].Registry
	}
	return obs.MergedSnapshot(regs...)
}

// Stats sums the shards' middlebox counters and the aggregator's
// admission counters, reading each shard under its own engine lock.
func (b *ShardBank) Stats() core.Stats {
	var sum core.Stats
	for i := range b.shards {
		sh := &b.shards[i]
		sh.Engine.Post(func() { sum.Add(&sh.TAQ.Stats) })
	}
	adm := b.disc.Aggregator().AdmissionStats()
	sum.PoolsAdmitted += adm.PoolsAdmitted
	sum.PoolsWaited += adm.PoolsWaited
	return sum
}

// Stop cancels every shard's scan and stops every engine, disarming
// all outstanding wall timers (soaks must not leak runtime timers).
func (b *ShardBank) Stop() {
	for i := range b.shards {
		sh := &b.shards[i]
		sh.Engine.Post(sh.TAQ.Stop)
		sh.Engine.Stop()
	}
}
