package emu

import (
	"fmt"
	"io"
	"math/rand"
	"os"
	"path/filepath"
	"runtime"
	"strconv"
	"sync"
	"testing"
	"time"

	"taq/internal/core"
	"taq/internal/link"
	"taq/internal/obs"
	"taq/internal/packet"
)

// soakWall reads the soak's wall budget: TAQ_SOAK_SECS seconds when
// set (the CI soak job sets 60+), else a short tier-1 default.
func soakWall() time.Duration {
	if v := os.Getenv("TAQ_SOAK_SECS"); v != "" {
		if s, err := strconv.ParseFloat(v, 64); err == nil && s > 0 {
			return time.Duration(s * float64(time.Second))
		}
	}
	return 400 * time.Millisecond
}

// soakFlows reads the soak's flow-population knob (TAQ_SOAK_FLOWS; the
// CI soak job sets 1_000_000+), else a tier-1 default small enough for
// the race detector.
func soakFlows() int {
	if v := os.Getenv("TAQ_SOAK_FLOWS"); v != "" {
		if n, err := strconv.Atoi(v); err == nil && n > 0 {
			return n
		}
	}
	return 20_000
}

// counterTotal sums one counter family across all its label cells in a
// snapshot; ok is false when the family is absent.
func counterTotal(s *obs.MetricsSnapshot, name string) (uint64, bool) {
	for i := range s.Counters {
		if s.Counters[i].Name == name {
			var sum uint64
			for _, v := range s.Counters[i].Values {
				sum += v
			}
			return sum, true
		}
	}
	return 0, false
}

// TestShardBankSoak drives a GOMAXPROCS-shard bank with one driver
// goroutine per shard, each feeding only the flows its shard owns
// (core.ShardOf), modeled on the tracker-scale churn workload: SYNs,
// in-order data, retransmissions, reverse-path acks, dequeues and
// silence sliding across the id space so creation, expiry and
// recycling all run concurrently on every shard.
//
// Tier-1 runs a sub-second slice; the CI soak job re-runs it under
// -race with TAQ_SOAK_SECS=60 TAQ_SOAK_FLOWS=1000000 and TAQ_SOAK_DIR
// set, which additionally writes the merged Prometheus exposition and
// arms a flight recorder on shard 0.
func TestShardBankSoak(t *testing.T) {
	shards := runtime.GOMAXPROCS(0)
	if shards < 2 {
		// Even single-core runs must exercise the cross-shard seams.
		shards = 2
	}
	flows := soakFlows()
	wall := soakWall()
	dir := os.Getenv("TAQ_SOAK_DIR")
	if dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatalf("TAQ_SOAK_DIR: %v", err)
		}
	}

	cfg := core.DefaultConfig(10_000*link.Kbps, 256)
	cfg.PoolFairShare = true
	bank := NewShardBank(ShardBankConfig{
		Shards:  shards,
		Seed:    1,
		Speedup: 50,
		Core:    cfg,
		Metrics: true,
	})

	// Optional flight recorder on shard 0, dumping the event ring when
	// that shard's drop counter first moves.
	var flight *obs.FlightRecorder
	if dir != "" {
		rec := obs.NewRecorder(nil, 4096)
		sh0 := bank.Shard(0)
		bank.Post(0, func() {
			sh0.TAQ.SetRecorder(rec)
			flight = obs.NewFlightRecorder(sh0.Engine, rec, 0, func(name string, seq int) (io.WriteCloser, error) {
				return os.Create(filepath.Join(dir, fmt.Sprintf("flight-%s-%d.jsonl", name, seq)))
			})
			flight.ClassName = func(c int8) string { return core.Class(c).String() }
			flight.Watch(obs.Trigger{
				Name:      "drops",
				Value:     func() float64 { return float64(sh0.TAQ.Stats.Drops) },
				Threshold: 1,
			})
			flight.Start()
		})
	}

	// Partition the id space by ownership once, up front: each driver
	// must feed exactly the flows its shard owns, or flow state would
	// split across trackers.
	owned := make([][]packet.FlowID, shards)
	for i := 1; i <= flows; i++ {
		fl := packet.FlowID(i)
		s := core.ShardOf(fl, shards)
		owned[s] = append(owned[s], fl)
	}

	deadline := time.Now().Add(wall)
	enqueued := make([]uint64, shards)
	var wg sync.WaitGroup
	for s := 0; s < shards; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			ids := owned[s]
			if len(ids) == 0 {
				return
			}
			rng := rand.New(rand.NewSource(int64(100 + s)))
			seqs := make([]int, len(ids))
			taq := bank.Shard(s).TAQ
			window := 256
			if window > len(ids) {
				window = len(ids)
			}
			lo := 0
			for time.Now().Before(deadline) {
				// One engine-lock acquisition per batch, like a NIC
				// handing the shard a burst.
				bank.Post(s, func() {
					for k := 0; k < 256; k++ {
						j := lo + rng.Intn(window)
						if j >= len(ids) {
							j = len(ids) - 1
						}
						fl := ids[j]
						pool := packet.PoolID(int(fl) / 8)
						switch rng.Intn(10) {
						case 0:
							taq.Enqueue(&packet.Packet{Flow: fl, Pool: pool, Kind: packet.Syn, Size: 40})
							enqueued[s]++
						case 1, 2, 3, 4, 5:
							taq.Enqueue(&packet.Packet{Flow: fl, Pool: pool, Kind: packet.Data, Seq: seqs[j], Size: 500})
							seqs[j]++
							enqueued[s]++
						case 6:
							sq := seqs[j] - 1
							if sq < 0 {
								sq = 0
							}
							taq.Enqueue(&packet.Packet{
								Flow: fl, Pool: pool, Kind: packet.Data, Seq: sq,
								Size: 500, Retransmit: true,
							})
							enqueued[s]++
						case 7:
							taq.ObserveReverse(&packet.Packet{Flow: fl, Pool: pool, Kind: packet.Ack, CumAck: seqs[j], Size: 40})
						case 8:
							taq.Dequeue()
							taq.Dequeue()
						case 9:
							// Silence.
						}
					}
				})
				// Slide the active window across the owned id space so
				// early flows fall silent and expire mid-run.
				if lo+window < len(ids) {
					lo++
				}
			}
		}(s)
	}
	wg.Wait()

	var total uint64
	for _, n := range enqueued {
		total += n
	}
	stats := bank.Stats()
	if stats.Arrivals != total {
		t.Errorf("summed shard arrivals = %d, drivers enqueued %d", stats.Arrivals, total)
	}
	if stats.Served+stats.Drops > stats.Arrivals {
		t.Errorf("served %d + dropped %d exceeds arrivals %d", stats.Served, stats.Drops, stats.Arrivals)
	}

	// The merged exposition must agree with the summed Stats: both are
	// reductions of the same per-shard counters, one through obs
	// registries and one through the Stats structs.
	merged := bank.MergedSnapshot()
	if served, ok := counterTotal(merged, "taq_served_total"); !ok || served != stats.Served {
		t.Errorf("merged taq_served_total = %d (present=%v), stats.Served = %d", served, ok, stats.Served)
	}
	if drops, ok := counterTotal(merged, "taq_drops_total"); !ok || drops != stats.Drops {
		t.Errorf("merged taq_drops_total = %d (present=%v), stats.Drops = %d", drops, ok, stats.Drops)
	}

	// And it must equal the fold of the individual shard snapshots.
	manual := bank.Shard(0).Registry.Snapshot()
	for s := 1; s < shards; s++ {
		manual.Merge(bank.Shard(s).Registry.Snapshot())
	}
	for i := range merged.Counters {
		for j, v := range merged.Counters[i].Values {
			if manual.Counters[i].Values[j] != v {
				t.Errorf("MergedSnapshot %s[%d] = %d, manual fold = %d",
					merged.Counters[i].Name, j, v, manual.Counters[i].Values[j])
			}
		}
	}

	if dir != "" {
		bank.Post(0, flight.Stop)
		if flight.Err != nil {
			t.Errorf("flight recorder error: %v", flight.Err)
		}
		f, err := os.Create(filepath.Join(dir, "metrics.prom"))
		if err != nil {
			t.Fatalf("create metrics.prom: %v", err)
		}
		if err := merged.WriteText(f); err != nil {
			t.Errorf("write metrics.prom: %v", err)
		}
		f.Close()
		t.Logf("soak: shards=%d flows=%d wall=%v arrivals=%d served=%d drops=%d flight_dumps=%d",
			shards, flows, wall, stats.Arrivals, stats.Served, stats.Drops, flight.Dumps)
	}

	// Teardown must disarm every shard's wall timers (the Engine.Stop
	// leak regression, at bank scale).
	bank.Stop()
	for s := 0; s < shards; s++ {
		if n := bank.Shard(s).Engine.outstandingTimers(); n != 0 {
			t.Errorf("shard %d: %d wall timers still armed after Stop", s, n)
		}
	}
}

// TestShardBankOwnershipRouting pins the ownership contract: a packet
// posted to ShardFor(flow) lands in that shard's tracker and nowhere
// else.
func TestShardBankOwnershipRouting(t *testing.T) {
	bank := NewShardBank(ShardBankConfig{
		Shards:  4,
		Seed:    1,
		Speedup: 1000,
		Core:    core.DefaultConfig(1000*link.Kbps, 64),
	})
	defer bank.Stop()

	perShard := make([]int, bank.NumShards())
	for i := 1; i <= 64; i++ {
		fl := packet.FlowID(i)
		s := bank.ShardFor(fl)
		perShard[s]++
		bank.Post(s, func() {
			bank.Shard(s).TAQ.Enqueue(&packet.Packet{Flow: fl, Kind: packet.Data, Size: 500})
		})
	}
	for s := 0; s < bank.NumShards(); s++ {
		var got uint64
		sh := bank.Shard(s)
		bank.Post(s, func() { got = sh.TAQ.Stats.Arrivals })
		if got != uint64(perShard[s]) {
			t.Errorf("shard %d arrivals = %d, want %d", s, got, perShard[s])
		}
	}
	if n := bank.Sharded().ActiveFlows(); n != 64 {
		t.Errorf("aggregate active flows = %d, want 64", n)
	}
}

// BenchmarkShardDispatch measures aggregate enqueue+dequeue throughput
// as the shard count grows, each shard fed by its own goroutine
// through its own engine lock — the contention the sharding exists to
// remove. `make bench` tracks it under the -compare gate; on a
// single-core host the counts necessarily time-share, so cross-shard
// scaling is only visible with GOMAXPROCS ≥ the shard count.
func BenchmarkShardDispatch(b *testing.B) {
	for _, shards := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			bank := NewShardBank(ShardBankConfig{
				Shards:  shards,
				Seed:    1,
				Speedup: 1,
				Core:    core.DefaultConfig(10_000*link.Kbps, 256),
			})
			defer bank.Stop()

			const population = 4096
			owned := make([][]packet.FlowID, shards)
			for i := 1; i <= population; i++ {
				fl := packet.FlowID(i)
				owned[core.ShardOf(fl, shards)] = append(owned[core.ShardOf(fl, shards)], fl)
			}

			b.ResetTimer()
			var wg sync.WaitGroup
			for s := 0; s < shards; s++ {
				ops := b.N / shards
				if s == 0 {
					ops += b.N % shards
				}
				wg.Add(1)
				go func(s, ops int) {
					defer wg.Done()
					ids := owned[s]
					if len(ids) == 0 {
						return
					}
					taq := bank.Shard(s).TAQ
					seq, next := 0, 0
					for done := 0; done < ops; {
						batch := ops - done
						if batch > 256 {
							batch = 256
						}
						bank.Post(s, func() {
							for k := 0; k < batch; k++ {
								fl := ids[next]
								next++
								if next == len(ids) {
									next, seq = 0, seq+1
								}
								taq.Enqueue(&packet.Packet{Flow: fl, Kind: packet.Data, Seq: seq, Size: 500})
								if k&3 == 3 {
									taq.Dequeue()
								}
							}
						})
						done += batch
					}
				}(s, ops)
			}
			wg.Wait()
			b.StopTimer()
			b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "pkts/s")
		})
	}
}
