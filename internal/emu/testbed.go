package emu

import (
	"taq/internal/core"
	"taq/internal/link"
	"taq/internal/metrics"
	"taq/internal/obs"
	"taq/internal/obs/obshttp"
	"taq/internal/packet"
	"taq/internal/queue"
	"taq/internal/sim"
	"taq/internal/tcp"
)

// TestbedConfig describes a prototype/testbed scenario: hosts behind a
// middlebox that emulates a constrained bottleneck (the paper's §5.4
// setup: a middlebox with two NICs in front of an emulated 600 Kbps /
// 1 Mbps link).
type TestbedConfig struct {
	Seed int64
	// Speedup scales virtual against wall time (≤0 → real time).
	Speedup   float64
	Bandwidth link.Bps
	PropRTT   sim.Time
	// BufferPackets defaults to one PropRTT of packets.
	BufferPackets int
	// UseTAQ selects the TAQ middlebox instead of DropTail.
	UseTAQ bool
	// TAQ optionally overrides the middlebox configuration.
	TAQ *core.Config
	// TCP is the endpoint configuration (zero → tcp.DefaultConfig).
	TCP tcp.Config
	// SliceWidth for fairness metrics (default 20 s).
	SliceWidth sim.Time

	// Events, when non-nil, receives the structured bottleneck trace
	// (recorded under the engine lock; Stop flushes it).
	Events *obs.Recorder
	// GaugeSink, when non-nil, receives periodic gauge samples every
	// GaugeInterval of virtual time (default one virtual second).
	GaugeSink     obs.SeriesSink
	GaugeInterval sim.Time
	// HTTPAddr, when non-empty, serves the live introspection endpoint
	// (gauge snapshot + Prometheus /metrics + pprof) on that address,
	// e.g. "127.0.0.1:0". This is strictly an emu-side feature: the
	// discrete-event path never starts a listener.
	HTTPAddr string
	// EnableMetrics creates a metrics registry for the testbed (also
	// implied by HTTPAddr): link + FCT instruments, plus the TAQ
	// per-class schema when UseTAQ is set. Snapshot it via
	// Testbed.Metrics.
	EnableMetrics bool
}

func (c *TestbedConfig) fillDefaults() {
	if c.Bandwidth == 0 {
		c.Bandwidth = 600 * link.Kbps
	}
	if c.PropRTT == 0 {
		c.PropRTT = 200 * sim.Millisecond
	}
	if c.TCP.MSS == 0 {
		c.TCP = tcp.DefaultConfig()
	}
	if c.BufferPackets == 0 {
		bdp := float64(c.Bandwidth) * c.PropRTT.Seconds() / 8 / float64(c.TCP.MSS)
		c.BufferPackets = int(bdp)
		if c.BufferPackets < 2 {
			c.BufferPackets = 2
		}
	}
	if c.SliceWidth == 0 {
		c.SliceWidth = 20 * sim.Second
	}
}

// Testbed is a running real-time scenario. Access results through
// Snapshot after RunFor/Stop.
type Testbed struct {
	Cfg       TestbedConfig
	Engine    *Engine
	Link      *link.Link
	Middlebox *core.TAQ
	Slicer    *metrics.Slicer
	// Gauges is the sampled time series (non-nil when GaugeSink or
	// HTTPAddr is configured).
	Gauges *obs.GaugeSet
	// HTTP is the live introspection server (non-nil when HTTPAddr was
	// set and the listener started); HTTPErr records a failed start.
	HTTP    *obshttp.Server
	HTTPErr error
	// Metrics is the counters/histograms registry (non-nil when
	// EnableMetrics or HTTPAddr is configured). Registry cells are
	// atomics, so Metrics.Snapshot is safe without Engine.Post.
	Metrics *obs.Registry
	// fct is the registry's flow-completion-time histogram.
	fct *obs.Histogram

	flows  map[packet.FlowID]*tbFlow
	nextID packet.FlowID

	QueueArrivals, QueueDrops uint64
}

type tbFlow struct {
	id       packet.FlowID
	sender   *tcp.Sender
	receiver *tcp.Receiver
}

// NewTestbed builds the scenario (middlebox + emulated bottleneck).
func NewTestbed(cfg TestbedConfig) *Testbed {
	cfg.fillDefaults()
	t := &Testbed{
		Cfg:    cfg,
		Engine: NewEngine(cfg.Seed, cfg.Speedup),
		Slicer: metrics.NewSlicer(cfg.SliceWidth),
		flows:  make(map[packet.FlowID]*tbFlow),
	}
	t.Engine.Post(func() {
		var disc queue.Discipline
		if cfg.UseTAQ {
			tcfg := core.DefaultConfig(cfg.Bandwidth, cfg.BufferPackets)
			if cfg.TAQ != nil {
				tcfg = *cfg.TAQ
				if tcfg.Rate == 0 {
					tcfg.Rate = cfg.Bandwidth
				}
				tcfg.FillDerived(cfg.BufferPackets)
			}
			mb := core.New(t.Engine, tcfg)
			mb.Start()
			t.Middlebox = mb
			disc = mb
		} else {
			disc = queue.NewDropTail(cfg.BufferPackets)
		}
		disc.AddDropHook(func(*packet.Packet) { t.QueueDrops++ })
		t.Link = link.New(t.Engine, cfg.Bandwidth, 0, disc, t.deliver)
		if cfg.EnableMetrics || cfg.HTTPAddr != "" {
			t.Metrics = obs.NewRegistry()
			t.Link.SetMetrics(link.NewMetrics(t.Metrics))
			t.fct = obs.FCTHistogram(t.Metrics)
			if t.Middlebox != nil {
				t.Middlebox.SetMetrics(core.NewMetrics(t.Metrics))
			}
		}
		if cfg.Events != nil {
			t.Link.SetRecorder(cfg.Events)
			if t.Middlebox != nil {
				t.Middlebox.SetRecorder(cfg.Events)
			} else {
				disc.AddDropHook(func(p *packet.Packet) {
					cfg.Events.Drop(t.Engine.Now(), p, -1, p.Retransmit)
				})
			}
		}
		if cfg.GaugeSink != nil || cfg.HTTPAddr != "" {
			t.Gauges = obs.NewGaugeSet(t.Engine, cfg.GaugeInterval, cfg.GaugeSink)
			t.Gauges.RegisterInt("qlen", disc.Len)
			t.Gauges.RegisterInt("qbytes", disc.Bytes)
			t.Gauges.Register("arrivals", func() float64 { return float64(t.QueueArrivals) })
			t.Gauges.Register("drops", func() float64 { return float64(t.QueueDrops) })
			if mb := t.Middlebox; mb != nil {
				t.Gauges.RegisterInt("active_flows", mb.ActiveFlows)
				t.Gauges.RegisterInt("recovering_flows", mb.RecoveringFlows)
				t.Gauges.Register("loss_ewma", mb.LossEWMA)
				t.Gauges.RegisterInt("waiting_pools", mb.WaitingPools)
			}
			if cfg.GaugeSink != nil {
				t.Gauges.Start()
			}
		}
	})
	if cfg.HTTPAddr != "" {
		// The /vars callback runs on HTTP goroutines; Post serializes
		// the gauge reads against the engine's callbacks. The /metrics
		// snapshot needs no Post: registry cells are atomics, the
		// lock-free read edge.
		t.HTTP, t.HTTPErr = obshttp.Serve(cfg.HTTPAddr, obshttp.Options{
			Vars: func() (names []string, values []float64) {
				t.Engine.Post(func() { names, values = t.Gauges.Snapshot() })
				return names, values
			},
			Metrics: t.Metrics.Snapshot,
		})
	}
	return t
}

func (t *Testbed) deliver(p *packet.Packet) {
	f, ok := t.flows[p.Flow]
	if !ok {
		return
	}
	// Per-packet propagation timers are fire-once and sub-RTT;
	// Engine.Stop gates every callback, so they cannot outlive teardown.
	// sim.After returns no handle, so there is nothing to leak.
	sim.After(t.Engine, t.Cfg.PropRTT/4, func() { f.receiver.Deliver(p) })
}

// AddBulkFlow starts a long-running download through the middlebox
// (the testbed's "long lived requests to the webserver", §5.4).
func (t *Testbed) AddBulkFlow() packet.FlowID {
	var id packet.FlowID
	t.Engine.Post(func() {
		id = t.nextID
		t.nextID++
		rtt := t.Cfg.PropRTT
		f := &tbFlow{id: id}
		f.receiver = tcp.NewReceiver(t.Engine, t.Cfg.TCP, id, packet.PoolNone, func(p *packet.Packet) {
			sim.After(t.Engine, rtt/2, func() { f.sender.Deliver(p) })
		})
		mss := t.Cfg.TCP.MSS
		f.receiver.OnDeliver = func(segs int) {
			t.Slicer.Record(id, t.Engine.Now(), segs*mss)
		}
		f.sender = tcp.NewSender(t.Engine, t.Cfg.TCP, id, packet.PoolNone, tcp.BulkApp{}, func(p *packet.Packet) {
			sim.After(t.Engine, rtt/4, func() {
				t.QueueArrivals++
				t.Link.Enqueue(p)
			})
		})
		t.flows[id] = f
		t.Slicer.Register(id, t.Engine.Now())
		f.sender.Start()
	})
	return id
}

// AddSizedFlow starts a fixed-size transfer (segs segments) in the
// given pool; exactly one of onComplete/onFail runs (under the engine
// lock) when the transfer finishes or the handshake gives up. This is
// the testbed's web-object primitive (§5.4–5.5).
//
// Unlike AddBulkFlow it must be called while the engine lock is held —
// i.e. from a scheduled callback or a function passed to Engine.Post —
// because its own callbacks re-enter session state. The workload
// package's TestbedHost guarantees this.
func (t *Testbed) AddSizedFlow(pool packet.PoolID, segs int, onComplete, onFail func()) packet.FlowID {
	var id packet.FlowID
	func() {
		id = t.nextID
		t.nextID++
		rtt := t.Cfg.PropRTT
		f := &tbFlow{id: id}
		f.receiver = tcp.NewReceiver(t.Engine, t.Cfg.TCP, id, pool, func(p *packet.Packet) {
			sim.After(t.Engine, rtt/2, func() { f.sender.Deliver(p) })
		})
		mss := t.Cfg.TCP.MSS
		f.receiver.OnDeliver = func(n int) {
			t.Slicer.Record(id, t.Engine.Now(), n*mss)
		}
		app := &tcp.SizedApp{Total: segs}
		f.sender = tcp.NewSender(t.Engine, t.Cfg.TCP, id, pool, app, func(p *packet.Packet) {
			sim.After(t.Engine, rtt/4, func() {
				t.QueueArrivals++
				t.Link.Enqueue(p)
			})
		})
		started := t.Engine.Now()
		app.OnComplete = func() {
			t.Slicer.Finish(id, t.Engine.Now())
			if t.fct != nil {
				t.fct.ObserveAt(obs.FCTSizeClass(segs*mss), t.Engine.Now()-started)
			}
			if onComplete != nil {
				onComplete()
			}
		}
		f.sender.OnFail = func() {
			t.Slicer.Finish(id, t.Engine.Now())
			if onFail != nil {
				onFail()
			}
		}
		t.flows[id] = f
		t.Slicer.Register(id, t.Engine.Now())
		f.sender.Start()
	}()
	return id
}

// RunFor advances the testbed by the given virtual duration (blocking
// the calling goroutine in wall time).
func (t *Testbed) RunFor(virtual sim.Time) { t.Engine.RunFor(virtual) }

// Stop halts all activity, flushes the trace recorder and gauge sink,
// and closes the live endpoint.
func (t *Testbed) Stop() {
	t.Engine.Post(func() {
		t.Gauges.Stop()
		t.Cfg.Events.Flush()
	})
	t.Engine.Stop()
	t.HTTP.Close()
}

// Snapshot runs fn serialized against the scenario so it can safely
// read Slicer, Link and counter state.
func (t *Testbed) Snapshot(fn func()) { t.Engine.Post(fn) }

// NumFlows returns the number of flows added.
func (t *Testbed) NumFlows() int {
	n := 0
	t.Engine.Post(func() { n = len(t.flows) })
	return n
}
