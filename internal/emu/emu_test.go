package emu

import (
	"sync"
	"testing"
	"time"

	"taq/internal/link"
	"taq/internal/sim"
)

func TestEngineSchedulesWithSpeedup(t *testing.T) {
	e := NewEngine(1, 1000) // 1000 virtual s per wall s
	var mu sync.Mutex
	var fired []sim.Time
	done := make(chan struct{})
	e.Post(func() {
		e.Schedule(10*sim.Second, func() {
			mu.Lock()
			fired = append(fired, e.Now())
			mu.Unlock()
			close(done)
		})
	})
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("timer did not fire")
	}
	mu.Lock()
	defer mu.Unlock()
	if len(fired) != 1 {
		t.Fatalf("fired = %v", fired)
	}
	// 10 virtual seconds at 1000x ≈ 10ms wall; allow generous jitter.
	if fired[0] < 10*sim.Second || fired[0] > 60*sim.Second {
		t.Errorf("fired at virtual %v, want ≈10s", fired[0])
	}
}

func TestEngineCancel(t *testing.T) {
	e := NewEngine(1, 1000)
	firedCh := make(chan struct{}, 1)
	var tm *sim.Timer
	e.Post(func() {
		tm = e.Schedule(50*sim.Second, func() { firedCh <- struct{}{} })
	})
	e.Post(func() { tm.Cancel() })
	select {
	case <-firedCh:
		t.Error("canceled timer fired")
	case <-time.After(200 * time.Millisecond):
	}
}

func TestEngineStopSuppressesCallbacks(t *testing.T) {
	e := NewEngine(1, 1000)
	firedCh := make(chan struct{}, 1)
	e.Post(func() {
		e.Schedule(20*sim.Second, func() { firedCh <- struct{}{} })
	})
	e.Stop()
	select {
	case <-firedCh:
		t.Error("callback ran after Stop")
	case <-time.After(200 * time.Millisecond):
	}
}

func TestEngineSerializesCallbacks(t *testing.T) {
	e := NewEngine(1, 10000)
	var inside, max, count int
	var mu sync.Mutex
	done := make(chan struct{})
	e.Post(func() {
		for i := 0; i < 200; i++ {
			e.Schedule(sim.Time(i)*sim.Millisecond, func() {
				// The engine lock is held here; inside must never
				// exceed 1 even though timers fire from many
				// goroutines.
				inside++
				if inside > max {
					max = inside
				}
				for j := 0; j < 100; j++ {
					_ = j * j
				}
				inside--
				mu.Lock()
				count++
				if count == 200 {
					close(done)
				}
				mu.Unlock()
			})
		}
	})
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("callbacks did not all run")
	}
	if max != 1 {
		t.Errorf("max concurrent callbacks = %d, want 1", max)
	}
}

func TestTestbedBulkFlowDelivers(t *testing.T) {
	// Speedup compresses wall time but each packet still costs a real
	// timer firing, so the virtual packet rate divided by speedup must
	// stay well below what the OS timer wheel sustains: 200 Kbps =
	// 50 pkt/s virtual, speedup 50 → 2500 timer events/s wall. 20
	// virtual seconds ≈ 0.4 s wall, ideal volume 500 KB.
	tb := NewTestbed(TestbedConfig{Seed: 1, Speedup: 50, Bandwidth: 200 * link.Kbps})
	tb.AddBulkFlow()
	tb.RunFor(20 * sim.Second)
	tb.Stop()
	var total float64
	tb.Snapshot(func() { total = tb.Slicer.FlowTotal(0) })
	// Wall-clock timer latency eats into throughput on loaded
	// machines; require a meaningful fraction, not a precise figure.
	if total < 100_000 {
		t.Errorf("delivered %v bytes, want ≥100k (≥20%% of ideal)", total)
	}
}

func TestTestbedTAQMiddleboxRuns(t *testing.T) {
	tb := NewTestbed(TestbedConfig{Seed: 2, Speedup: 200, Bandwidth: 400 * link.Kbps, UseTAQ: true})
	for i := 0; i < 8; i++ {
		tb.AddBulkFlow()
	}
	tb.RunFor(60 * sim.Second)
	tb.Stop()
	var drops, arrivals uint64
	tb.Snapshot(func() { drops, arrivals = tb.QueueDrops, tb.QueueArrivals })
	if arrivals == 0 {
		t.Fatal("no packets reached the middlebox")
	}
	if tb.Middlebox == nil {
		t.Fatal("middlebox missing")
	}
	if drops == 0 {
		t.Error("overloaded testbed should drop packets")
	}
	if tb.NumFlows() != 8 {
		t.Errorf("flows = %d", tb.NumFlows())
	}
}

func TestSpeedupDefaults(t *testing.T) {
	e := NewEngine(1, 0)
	if e.speedup != 1 {
		t.Errorf("speedup = %v, want 1", e.speedup)
	}
}
