package emu

import (
	"testing"
	"time"

	"taq/internal/sim"
)

// TestWallDelayNeverUndersleeps is the regression test for the
// truncated wall-delay conversion: the old code computed
// time.Duration(float64(delay)/speedup), rounding *down*, so the wall
// timer could fire up to one wall nanosecond — `speedup` virtual
// nanoseconds — before its virtual deadline. At speedup 1000 a delay
// of 10s+1ns truncated to exactly 10ms of wall sleep, which covers
// only 10s of virtual time: the callback ran with the virtual clock
// strictly before the deadline. The rounded-up conversion must always
// cover the full virtual delay.
func TestWallDelayNeverUndersleeps(t *testing.T) {
	cases := []struct {
		delay   sim.Time
		speedup float64
	}{
		{1, 1000},
		{999, 1000},
		{10*sim.Second + 1, 1000}, // fails pre-fix: truncates to 10ms wall = 10s virtual
		{sim.Second + 1, 7},
		{123456789, 33.5},
		{3 * sim.Millisecond, 1e6},
		{sim.Time(1<<40 + 1), 4096},
	}
	for _, c := range cases {
		wall := wallDelay(c.delay, c.speedup)
		if covered := float64(wall) * c.speedup; covered < float64(c.delay) {
			t.Errorf("wallDelay(%v, %g) = %v covers only %.0f virtual ns, want ≥ %d",
				c.delay, c.speedup, wall, covered, int64(c.delay))
		}
		// Sanity: the round-up must not oversleep by more than one
		// wall nanosecond's worth of virtual time.
		if slack := float64(wall)*c.speedup - float64(c.delay); slack > c.speedup+1 {
			t.Errorf("wallDelay(%v, %g) = %v oversleeps by %.0f virtual ns",
				c.delay, c.speedup, wall, slack)
		}
	}
}

// TestFireClampsNowToDeadline drives the firing path directly: even if
// the wall timer fires with the wall-derived virtual clock still short
// of the deadline (rounding, or a hypothetical early wake), the
// callback must observe Now() at or past the deadline it fired for.
func TestFireClampsNowToDeadline(t *testing.T) {
	e := NewEngine(1, 1000)
	// A deadline far in the virtual future: the wall clock cannot have
	// covered it yet, so only the clamp can satisfy the invariant.
	deadline := e.Now() + 10*sim.Second
	tm := sim.ExternalTimer(deadline)
	var got sim.Time
	e.fire(&wallNode{t: time.NewTimer(time.Hour)}, tm, func() { got = e.Now() })
	if got < deadline {
		t.Fatalf("callback observed Now()=%v before its deadline %v", got, deadline)
	}
	// The floor is monotone: an older timer's deadline must not drag
	// Now() back.
	past := sim.ExternalTimer(deadline - 5*sim.Second)
	e.fire(&wallNode{t: time.NewTimer(time.Hour)}, past, func() { got = e.Now() })
	if got < deadline {
		t.Fatalf("older deadline dragged Now() back to %v (floor was %v)", got, deadline)
	}
}

// TestScheduleObservesDeadline is the end-to-end form at speedup 1000:
// every callback checks its own clock against its deadline. With the
// truncating conversion this raced real timer jitter; with round-up +
// clamp it must hold unconditionally.
func TestScheduleObservesDeadline(t *testing.T) {
	e := NewEngine(1, 1000)
	defer e.Stop()
	type obsv struct {
		deadline, now sim.Time
	}
	results := make(chan obsv, 64)
	e.Post(func() {
		for i := 1; i <= 64; i++ {
			d := sim.Time(i)*137*sim.Millisecond + 1 // odd remainders force rounding
			// The deadline Schedule stamps is e.Now()+d taken *after*
			// this capture, so the real deadline is ≥ this bound.
			deadline := e.Now() + d
			e.Schedule(d, func() { results <- obsv{deadline, e.Now()} })
		}
	})
	for i := 0; i < 64; i++ {
		select {
		case r := <-results:
			if r.now < r.deadline {
				t.Fatalf("callback saw Now()=%v before deadline %v", r.now, r.deadline)
			}
		case <-time.After(30 * time.Second):
			t.Fatal("timed out waiting for callbacks")
		}
	}
}

// TestStopDisarmsOutstandingTimers is the leak regression test:
// Engine.Stop used to leave armed time.AfterFunc timers running to
// their natural deadlines (minutes out, for scan and expiry timers),
// accumulating runtime timers across a soak. Stop must disarm them.
func TestStopDisarmsOutstandingTimers(t *testing.T) {
	e := NewEngine(1, 1)
	fired := make(chan struct{}, 64)
	e.Post(func() {
		for i := 0; i < 50; i++ {
			e.Schedule(sim.Time(30+i)*sim.Second, func() { fired <- struct{}{} })
		}
	})
	if n := e.outstandingTimers(); n != 50 {
		t.Fatalf("outstanding timers = %d, want 50", n)
	}
	e.Stop()
	if n := e.outstandingTimers(); n != 0 {
		t.Fatalf("outstanding timers after Stop = %d, want 0", n)
	}
	select {
	case <-fired:
		t.Fatal("timer fired after Stop")
	case <-time.After(50 * time.Millisecond):
	}
}

// TestCancelDeregistersTimer: a canceled timer must leave the armed
// set immediately, not linger until its deadline.
func TestCancelDeregistersTimer(t *testing.T) {
	e := NewEngine(1, 1)
	defer e.Stop()
	var tm *sim.Timer
	e.Post(func() { tm = e.Schedule(3600*sim.Second, func() {}) })
	if n := e.outstandingTimers(); n != 1 {
		t.Fatalf("outstanding timers = %d, want 1", n)
	}
	e.Post(func() { tm.Cancel() })
	if n := e.outstandingTimers(); n != 0 {
		t.Fatalf("outstanding timers after Cancel = %d, want 0", n)
	}
}

// TestFiredTimerDeregisters: a timer that has fired must leave the
// armed set on its own.
func TestFiredTimerDeregisters(t *testing.T) {
	e := NewEngine(1, 1000)
	defer e.Stop()
	done := make(chan struct{})
	e.Post(func() {
		e.Schedule(10*sim.Millisecond, func() { close(done) })
	})
	<-done
	// fire deregisters before taking the engine lock, so by the time
	// the callback has run the set is already clean.
	if n := e.outstandingTimers(); n != 0 {
		t.Fatalf("outstanding timers after fire = %d, want 0", n)
	}
}
