package emu

import (
	"sync"
	"sync/atomic"
	"testing"

	"taq/internal/sim"
)

// TestEngineConcurrentClients hammers the engine's public surface from
// many goroutines at once — Schedule, Post, Cancel from inside
// callbacks, Now, and a concurrent Stop — so `go test -race` exercises
// the one-mutex serialization that the emulation layer's correctness
// rests on. The assertions are deliberately weak (no callback after
// Stop returns, no lost Posts before it); the race detector is the
// real oracle here.
func TestEngineConcurrentClients(t *testing.T) {
	e := NewEngine(7, 2000)
	defer e.Stop()

	var fired atomic.Int64
	var stopped atomic.Bool

	const clients = 8
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			timers := make([]*sim.Timer, 0, 32)
			for i := 0; i < 200; i++ {
				switch i % 4 {
				case 0:
					timers = append(timers, e.Schedule(sim.Time(1+i%7)*sim.Millisecond, func() {
						if stopped.Load() {
							t.Error("callback after Stop returned")
						}
						fired.Add(1)
					}))
				case 1:
					e.Post(func() { fired.Add(1) })
				case 2:
					_ = e.Now()
				case 3:
					// Cancel from inside a callback, racing the timer's
					// own firing path.
					tm := timers[len(timers)-1]
					e.Post(func() { tm.Cancel() })
				}
			}
		}(c)
	}
	wg.Wait()

	// Let some timers fire, then tear down while others are pending.
	e.RunFor(3 * sim.Millisecond)
	e.Stop()
	stopped.Store(true)

	if fired.Load() == 0 {
		t.Fatal("no callbacks ran before Stop")
	}

	// Post still works after Stop (Snapshot uses it to read results),
	// but scheduled callbacks must never fire.
	var snap int64
	e.Post(func() { snap = fired.Load() })
	if snap == 0 {
		t.Fatal("post-stop snapshot saw nothing")
	}
	tm := e.Schedule(sim.Millisecond, func() { t.Error("Schedule ran after Stop") })
	e.RunFor(2 * sim.Millisecond)
	e.Post(func() { tm.Cancel() })
}
