// Package packet defines the on-the-wire unit exchanged by the simulated
// TCP endpoints and inspected by queue disciplines and the TAQ
// middlebox. Sequence numbers are in MSS-sized segments, matching the
// paper's packet-granularity analysis (§2.3 uses 500-byte on-the-wire
// packets).
package packet

import (
	"fmt"

	"taq/internal/sim"
)

// FlowID uniquely identifies a TCP flow within a scenario.
type FlowID int32

// PoolID identifies the flow pool (application session / user) a flow
// belongs to. Admission control in §4.3 operates at pool granularity.
// PoolNone marks flows outside any pool.
type PoolID int32

// PoolNone is the PoolID of flows that do not belong to a pool.
const PoolNone PoolID = -1

// Kind discriminates packet roles on the wire.
type Kind uint8

const (
	// Data carries one MSS-sized segment.
	Data Kind = iota
	// Ack is a pure cumulative acknowledgment (possibly with SACK info).
	Ack
	// Syn opens a connection.
	Syn
	// SynAck acknowledges a Syn.
	SynAck
	// Fin closes a connection (informational; flows end via app state).
	Fin
	// Feedback is a TFRC receiver report (loss-event rate and receive
	// rate), used by the internal/tfrc baseline.
	Feedback
)

// String implements fmt.Stringer for Kind.
func (k Kind) String() string {
	switch k {
	case Data:
		return "DATA"
	case Ack:
		return "ACK"
	case Syn:
		return "SYN"
	case SynAck:
		return "SYNACK"
	case Fin:
		return "FIN"
	case Feedback:
		return "FEEDBACK"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Packet is a simulated packet. Packets are allocated per transmission;
// retransmissions are new Packet values with Retransmit set.
type Packet struct {
	Flow FlowID
	Pool PoolID
	Kind Kind

	// Seq is the segment index for Data packets (0-based). For Ack
	// packets it is unused.
	Seq int

	// CumAck is, on Ack packets, the next expected segment index
	// (i.e. all segments below CumAck have been received).
	CumAck int

	// Sacked lists out-of-order segment indexes the receiver holds at
	// or above CumAck. Only populated when the flow negotiated SACK,
	// and capped to a few blocks like a real SACK option.
	Sacked []int

	// Size is the on-the-wire size in bytes.
	Size int

	// Retransmit marks a Data packet carrying a segment that was
	// transmitted before, or a retried Syn.
	Retransmit bool

	// Sent is when the packet entered the network (set by the sender),
	// used for RTT sampling and queue-delay accounting.
	Sent sim.Time

	// Enqueued is when the packet entered the bottleneck queue (set by
	// the queue discipline), for queue-delay instrumentation.
	Enqueued sim.Time

	// TFRC feedback fields (Kind == Feedback only).

	// EchoSent echoes the send timestamp of the most recent data
	// packet, for sender-side RTT sampling.
	EchoSent sim.Time
	// FbHold is how long the receiver held that timestamp before
	// reporting, subtracted from the RTT sample.
	FbHold sim.Time
	// FbLossRate is the receiver's loss-event rate estimate.
	FbLossRate float64
	// FbRecvRate is the receiver's measured receive rate (bytes/s).
	FbRecvRate float64
}

// String renders a compact description for debugging.
func (p *Packet) String() string {
	r := ""
	if p.Retransmit {
		r = " rtx"
	}
	switch p.Kind {
	case Ack:
		return fmt.Sprintf("flow %d %s cum=%d", p.Flow, p.Kind, p.CumAck)
	default:
		return fmt.Sprintf("flow %d %s seq=%d%s", p.Flow, p.Kind, p.Seq, r)
	}
}
