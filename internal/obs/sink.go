package obs

import (
	"io"
	"strconv"

	"taq/internal/packet"
)

// Sink consumes event batches from a Recorder. WriteEvents is called
// with a full ring (or the final partial batch on Flush/Close); the
// slice is reused by the recorder and must not be retained.
type Sink interface {
	WriteEvents(batch []Event) error
	Close() error
}

// NullSink discards every batch, counting events. It measures tracing
// overhead with the IO removed.
type NullSink struct {
	// Events is the number of events discarded.
	Events uint64
}

// WriteEvents implements Sink.
func (s *NullSink) WriteEvents(batch []Event) error {
	s.Events += uint64(len(batch))
	return nil
}

// Close implements Sink.
func (s *NullSink) Close() error { return nil }

// MemorySink retains every event, for tests and in-process analyses.
type MemorySink struct {
	// Events accumulates all batches in arrival order.
	Events []Event
}

// WriteEvents implements Sink.
func (s *MemorySink) WriteEvents(batch []Event) error {
	s.Events = append(s.Events, batch...) //taq:allow noalloc retention is MemorySink's contract; amortized growth at flush cadence
	return nil
}

// Close implements Sink.
func (s *MemorySink) Close() error { return nil }

// JSONLSink renders one JSON object per event, one event per line, in
// a fixed key order with strconv-only encoding — so the byte stream of
// a deterministic run is itself deterministic. Lines are buffered per
// batch and written with a single Write; the sink never closes the
// underlying writer (the caller owns the file).
type JSONLSink struct {
	w   io.Writer
	buf []byte

	// ClassName, when set, renders Class/From/To codes of class-typed
	// events as labels (e.g. core.Class names); codes print numerically
	// otherwise. StateName does the same for tracker-state codes.
	ClassName func(int8) string
	StateName func(int8) string
}

// NewJSONLSink returns a JSONL sink writing to w.
func NewJSONLSink(w io.Writer) *JSONLSink { return &JSONLSink{w: w} }

// WriteEvents implements Sink.
func (s *JSONLSink) WriteEvents(batch []Event) error {
	s.buf = s.buf[:0]
	for i := range batch {
		s.buf = s.appendEvent(s.buf, &batch[i])
	}
	_, err := s.w.Write(s.buf) //taq:allow noblock one write per ring flush, not per event; the sink contract is batched IO
	return err
}

// Close implements Sink. The underlying writer is left open.
func (s *JSONLSink) Close() error { return nil }

// label renders a small code through fn, or numerically when fn is nil
// or the code is out of label range.
//
//taq:allow(func) noalloc builds into the sink's reused flush buffer
func label(b []byte, fn func(int8) string, code int8) []byte {
	if fn != nil && code >= 0 {
		b = append(b, '"')
		b = append(b, fn(code)...)
		b = append(b, '"')
		return b
	}
	return strconv.AppendInt(b, int64(code), 10)
}

// appendKey appends `,"key":` to the line being built.
//
//taq:allow(func) noalloc builds into the sink's reused flush buffer
func appendKey(b []byte, key string) []byte {
	b = append(b, ',', '"')
	b = append(b, key...)
	b = append(b, '"', ':')
	return b
}

func appendIntField(b []byte, key string, v int64) []byte {
	b = appendKey(b, key)
	return strconv.AppendInt(b, v, 10)
}

//taq:allow(func) noalloc builds into the sink's reused flush buffer
func appendStrField(b []byte, key, v string) []byte {
	b = appendKey(b, key)
	b = append(b, '"')
	b = append(b, v...)
	return append(b, '"')
}

// appendEvent renders ev as one JSON line. Key order is fixed:
// t, ev, then kind-specific fields (see docs/observability.md).
//
//taq:allow(func) noalloc builds into the sink's reused flush buffer
func (s *JSONLSink) appendEvent(b []byte, ev *Event) []byte {
	b = append(b, `{"t":`...)
	b = strconv.AppendInt(b, int64(ev.Time), 10)
	b = appendStrField(b, "ev", ev.Kind.String())
	switch ev.Kind {
	case KindEnqueue, KindDequeue, KindDrop:
		b = appendIntField(b, "flow", int64(ev.Flow))
		if ev.Pool != packet.PoolNone {
			b = appendIntField(b, "pool", int64(ev.Pool))
		}
		b = appendStrField(b, "pkt", ev.Pkt.String())
		b = appendIntField(b, "seq", int64(ev.Seq))
		b = appendIntField(b, "size", int64(ev.Size))
		if ev.Class >= 0 {
			b = appendKey(b, "class")
			b = label(b, s.ClassName, ev.Class)
		}
		if ev.Kind == KindDrop && ev.Flag != 0 {
			b = append(b, `,"rtx":true`...)
		}
	case KindClassChange:
		b = appendIntField(b, "flow", int64(ev.Flow))
		if ev.Pool != packet.PoolNone {
			b = appendIntField(b, "pool", int64(ev.Pool))
		}
		b = appendKey(b, "from")
		b = label(b, s.ClassName, ev.From)
		b = appendKey(b, "to")
		b = label(b, s.ClassName, ev.To)
	case KindTrackerTransition, KindTimeoutDetected:
		b = appendIntField(b, "flow", int64(ev.Flow))
		if ev.Pool != packet.PoolNone {
			b = appendIntField(b, "pool", int64(ev.Pool))
		}
		b = appendKey(b, "from")
		b = label(b, s.StateName, ev.From)
		b = appendKey(b, "to")
		b = label(b, s.StateName, ev.To)
	case KindAdmissionDecision:
		b = appendIntField(b, "pool", int64(ev.Pool))
		switch ev.Flag {
		case AdmissionAdmitted:
			b = appendStrField(b, "decision", "admitted")
		case AdmissionForced:
			b = appendStrField(b, "decision", "forced")
		default:
			b = appendStrField(b, "decision", "blocked")
		}
	}
	return append(b, '}', '\n')
}
