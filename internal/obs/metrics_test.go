package obs

import (
	"bytes"
	"strings"
	"testing"

	"taq/internal/metrics"
	"taq/internal/sim"
)

func TestCounterRecordAndRead(t *testing.T) {
	reg := NewRegistry()
	plain := reg.Counter("taq_test_total", "test")
	vec := reg.CounterVec("taq_test_by_class_total", "test", "class", []string{"a", "b"})

	plain.Inc()
	plain.Add(4)
	vec.IncAt(0)
	vec.AddAt(1, 10)
	vec.IncAt(99) // out of range: dropped, not panicked
	vec.IncAt(-1)

	if got := plain.Value(); got != 5 {
		t.Fatalf("plain.Value = %d, want 5", got)
	}
	if got := vec.ValueAt(0); got != 1 {
		t.Fatalf("vec[0] = %d, want 1", got)
	}
	if got := vec.ValueAt(1); got != 10 {
		t.Fatalf("vec[1] = %d, want 10", got)
	}
	if got := vec.Value(); got != 11 {
		t.Fatalf("vec.Value = %d, want 11", got)
	}
}

func TestNilInstrumentsAreNoOps(t *testing.T) {
	var reg *Registry
	c := reg.Counter("x", "x")
	h := reg.Histogram("y", "y", DelayBuckets())
	c.Inc()
	c.Add(3)
	c.IncAt(1)
	h.Observe(sim.Second)
	h.ObserveAt(2, sim.Second)
	if c.Value() != 0 || h.Count() != 0 || h.Quantile(0.5) != 0 {
		t.Fatal("nil instruments must read as zero")
	}
	snap := reg.Snapshot()
	if len(snap.Counters) != 0 || len(snap.Histograms) != 0 {
		t.Fatal("nil registry snapshot must be empty")
	}
	if got := snap.AppendText(nil); len(got) != 0 {
		t.Fatalf("nil registry exposition = %q, want empty", got)
	}
}

func TestDuplicateNamePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration did not panic")
		}
	}()
	reg := NewRegistry()
	reg.Counter("taq_dup_total", "a")
	reg.Counter("taq_dup_total", "b")
}

func TestHistogramBucketPlacement(t *testing.T) {
	reg := NewRegistry()
	bounds := []sim.Time{10, 100, 1000}
	h := reg.Histogram("taq_test_seconds", "test", bounds)

	// Prometheus le semantics: a value lands in the first bucket whose
	// bound is >= the value; beyond the last bound is the +Inf bucket.
	cases := []struct {
		v    sim.Time
		want int
	}{
		{0, 0}, {10, 0}, {11, 1}, {100, 1}, {101, 2}, {1000, 2}, {1001, 3},
	}
	for _, c := range cases {
		h.Observe(c.v)
	}
	snap := reg.Snapshot()
	row := snap.Histograms[0].Buckets[0]
	wantRow := []uint64{2, 2, 2, 1}
	for i, w := range wantRow {
		if row[i] != w {
			t.Fatalf("bucket[%d] = %d, want %d (row %v)", i, row[i], w, row)
		}
	}
	if snap.Histograms[0].Counts[0] != 7 {
		t.Fatalf("count = %d, want 7", snap.Histograms[0].Counts[0])
	}
	var wantSum int64
	for _, c := range cases {
		wantSum += int64(c.v)
	}
	if snap.Histograms[0].Sums[0] != wantSum {
		t.Fatalf("sum = %d, want %d", snap.Histograms[0].Sums[0], wantSum)
	}
}

func TestHistogramQuantile(t *testing.T) {
	reg := NewRegistry()
	bounds := []sim.Time{10, 100, 1000}
	h := reg.Histogram("taq_q_seconds", "test", bounds)
	if h.Quantile(0.99) != 0 {
		t.Fatal("empty histogram quantile must be 0")
	}
	// 90 observations in bucket 0, 9 in bucket 1, 1 in overflow.
	for i := 0; i < 90; i++ {
		h.Observe(5)
	}
	for i := 0; i < 9; i++ {
		h.Observe(50)
	}
	h.Observe(5000)
	if got := h.Quantile(0.5); got != 10 {
		t.Fatalf("p50 = %d, want 10 (bucket 0 upper bound)", got)
	}
	if got := h.Quantile(0.95); got != 100 {
		t.Fatalf("p95 = %d, want 100", got)
	}
	// p100 falls in the overflow bucket, which reports the last bound.
	if got := h.Quantile(1); got != 1000 {
		t.Fatalf("p100 = %d, want 1000 (last bound)", got)
	}

	// Snapshot quantiles agree with the live read.
	hs := &reg.Snapshot().Histograms[0]
	if got := hs.Quantile(0, 0.5); got != 10 {
		t.Fatalf("snapshot p50 = %d, want 10", got)
	}
	if got := hs.Quantile(0, 0.95); got != 100 {
		t.Fatalf("snapshot p95 = %d, want 100", got)
	}
	if got := hs.Quantile(5, 0.5); got != 0 {
		t.Fatalf("out-of-range row quantile = %d, want 0", got)
	}
}

// TestHistogramAgreesWithCDFBuckets pins the shared-boundary contract:
// projecting the same samples through metrics.CDF.BucketCounts and
// through a live obs histogram built from the same metrics.LogBuckets
// bounds must land every sample in the same bucket, so figure sweeps
// and /metrics report the same distribution. (The test lives here
// because metrics must not import obs.)
func TestHistogramAgreesWithCDFBuckets(t *testing.T) {
	secs := metrics.LogBuckets(1e-4, 4, 24)
	reg := NewRegistry()
	h := reg.Histogram("taq_agree_seconds", "test", TimeBuckets(secs))
	var cdf metrics.CDF

	samples := []float64{0, 5e-5, 1e-4, 3.1e-4, 1e-3, 0.02, 0.5, 7, 100, 1e5}
	for _, s := range samples {
		cdf.Add(s)
		h.Observe(sim.FromSeconds(s))
	}
	want := cdf.BucketCounts(secs)
	got := reg.Snapshot().Histograms[0].Buckets[0]
	if len(want) != len(got) {
		t.Fatalf("bucket count mismatch: cdf %d, histogram %d", len(want), len(got))
	}
	for i := range want {
		if uint64(want[i]) != got[i] {
			t.Fatalf("bucket %d: cdf %d, histogram %d", i, want[i], got[i])
		}
	}
}

func TestSnapshotTextFormat(t *testing.T) {
	reg := NewRegistry()
	// Register out of name order to prove the exposition sorts.
	reg.CounterVec("taq_z_total", "z counter", "class", []string{"a", "b"})
	c := reg.Counter("taq_a_total", "a counter")
	h := reg.HistogramVec("taq_m_seconds", "m histogram",
		[]sim.Time{sim.Second / 8, sim.Second}, "size", []string{"short", "long"})
	c.Add(7)
	h.ObserveAt(0, sim.Second/10)
	h.ObserveAt(0, 2*sim.Second)
	h.ObserveAt(1, sim.Second)

	got := string(reg.Snapshot().AppendText(nil))
	want := `# HELP taq_a_total a counter
# TYPE taq_a_total counter
taq_a_total 7
# HELP taq_z_total z counter
# TYPE taq_z_total counter
taq_z_total{class="a"} 0
taq_z_total{class="b"} 0
# HELP taq_m_seconds m histogram
# TYPE taq_m_seconds histogram
taq_m_seconds_bucket{size="short",le="0.125"} 1
taq_m_seconds_bucket{size="short",le="1"} 1
taq_m_seconds_bucket{size="short",le="+Inf"} 2
taq_m_seconds_sum{size="short"} 2.1
taq_m_seconds_count{size="short"} 2
taq_m_seconds_bucket{size="long",le="0.125"} 0
taq_m_seconds_bucket{size="long",le="1"} 1
taq_m_seconds_bucket{size="long",le="+Inf"} 1
taq_m_seconds_sum{size="long"} 1
taq_m_seconds_count{size="long"} 1
`
	if got != want {
		t.Fatalf("exposition mismatch:\ngot:\n%s\nwant:\n%s", got, want)
	}

	// WriteText produces the same bytes.
	var buf bytes.Buffer
	if err := reg.Snapshot().WriteText(&buf); err != nil {
		t.Fatalf("WriteText: %v", err)
	}
	if buf.String() != want {
		t.Fatal("WriteText differs from AppendText")
	}
}

func TestAppendSeconds(t *testing.T) {
	cases := []struct {
		t    sim.Time
		want string
	}{
		{0, "0"},
		{1, "0.000000001"},
		{125_000, "0.000125"},
		{sim.Second, "1"},
		{sim.Second + sim.Second/2, "1.5"},
		{31 * sim.Second, "31"},
		{-sim.Second / 4, "-0.25"},
	}
	for _, c := range cases {
		if got := string(appendSeconds(nil, c.t)); got != c.want {
			t.Errorf("appendSeconds(%d) = %q, want %q", c.t, got, c.want)
		}
	}
}

func buildShardRegistry(drops, obsns int) *Registry {
	reg := NewRegistry()
	d := reg.CounterVec("taq_drops_total", "drops", "class", []string{"a", "b"})
	h := reg.Histogram("taq_delay_seconds", "delay", []sim.Time{10, 100})
	for i := 0; i < drops; i++ {
		d.IncAt(i % 2)
	}
	for i := 0; i < obsns; i++ {
		h.Observe(sim.Time(i * 30))
	}
	return reg
}

func TestSnapshotMerge(t *testing.T) {
	a := buildShardRegistry(4, 3).Snapshot()
	b := buildShardRegistry(2, 5).Snapshot()
	a.Merge(b)
	if got := a.Counters[0].Values[0] + a.Counters[0].Values[1]; got != 6 {
		t.Fatalf("merged drops = %d, want 6", got)
	}
	if got := a.Histograms[0].Counts[0]; got != 8 {
		t.Fatalf("merged count = %d, want 8", got)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("shape-mismatched merge did not panic")
		}
	}()
	other := NewRegistry()
	other.Counter("taq_other_total", "x")
	a.Merge(other.Snapshot())
}

func TestSameSequenceByteIdenticalExposition(t *testing.T) {
	a := string(buildShardRegistry(13, 7).Snapshot().AppendText(nil))
	b := string(buildShardRegistry(13, 7).Snapshot().AppendText(nil))
	if a != b {
		t.Fatal("same event sequence must yield byte-identical expositions")
	}
	if !strings.Contains(a, "taq_delay_seconds_bucket") {
		t.Fatalf("exposition missing histogram series:\n%s", a)
	}
}

func TestRecordPathAllocs(t *testing.T) {
	reg := NewRegistry()
	c := reg.CounterVec("taq_alloc_total", "test", "class", []string{"a", "b"})
	h := reg.Histogram("taq_alloc_seconds", "test", DelayBuckets())
	var nilC *Counter
	var nilH *Histogram
	cases := []struct {
		name string
		fn   func()
	}{
		{"Counter.Inc", func() { c.Inc() }},
		{"Counter.IncAt", func() { c.IncAt(1) }},
		{"Counter.Add", func() { c.Add(2) }},
		{"Histogram.Observe", func() { h.Observe(sim.Second / 3) }},
		{"Histogram.ObserveAt", func() { h.ObserveAt(0, sim.Second) }},
		{"nil Counter.Inc", func() { nilC.Inc() }},
		{"nil Histogram.Observe", func() { nilH.Observe(sim.Second) }},
	}
	for _, tc := range cases {
		if n := testing.AllocsPerRun(200, tc.fn); n != 0 {
			t.Errorf("%s allocates %v per op, want 0", tc.name, n)
		}
	}
}

func BenchmarkHistogramRecord(b *testing.B) {
	reg := NewRegistry()
	h := reg.Histogram("taq_bench_seconds", "bench", DelayBuckets())
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(sim.Time(i&0xffff) * 1000)
	}
}

func BenchmarkRegistrySnapshot(b *testing.B) {
	reg := NewRegistry()
	reg.CounterVec("taq_drops_total", "drops", "class",
		[]string{"recovery", "newflow", "overpenalized", "belowfair", "abovefair"})
	reg.HistogramVec("taq_delay_seconds", "delay", DelayBuckets(), "class",
		[]string{"recovery", "newflow", "overpenalized", "belowfair", "abovefair"})
	FCTHistogram(reg)
	var buf []byte
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf = reg.Snapshot().AppendText(buf[:0])
	}
	_ = buf
}

// TestMergedSnapshot covers the variadic shard-merge helper the
// sharded middlebox reads through: nil registries (shards without
// metrics) are skipped, totals are the per-shard sums, and the merged
// snapshot renders to the usual exposition.
func TestMergedSnapshot(t *testing.T) {
	a := buildShardRegistry(4, 3)
	b := buildShardRegistry(2, 5)
	s := MergedSnapshot(a, nil, b, nil)
	if got := s.Counters[0].Values[0] + s.Counters[0].Values[1]; got != 6 {
		t.Fatalf("merged drops = %d, want 6", got)
	}
	if got := s.Histograms[0].Counts[0]; got != 8 {
		t.Fatalf("merged histogram count = %d, want 8", got)
	}
	// The input snapshots must be untouched: MergedSnapshot folds into
	// its own copy, not into a's live cells.
	if got := a.Snapshot().Counters[0].Values[0] + a.Snapshot().Counters[0].Values[1]; got != 4 {
		t.Fatalf("source registry mutated by merge: drops = %d, want 4", got)
	}
	var buf strings.Builder
	if err := s.WriteText(&buf); err != nil {
		t.Fatalf("WriteText: %v", err)
	}
	if !strings.Contains(buf.String(), "taq_drops_total{class=\"a\"}") {
		t.Fatalf("merged exposition missing counter series:\n%s", buf.String())
	}
	if got := MergedSnapshot(); len(got.Counters) != 0 || len(got.Histograms) != 0 {
		t.Fatal("MergedSnapshot() of nothing must be empty, not nil families")
	}
	if got := MergedSnapshot(nil, nil); len(got.Counters) != 0 {
		t.Fatal("MergedSnapshot of only nil registries must be empty")
	}
}
