package obs

import (
	"bytes"
	"errors"
	"testing"

	"taq/internal/packet"
	"taq/internal/sim"
)

func mkPacket(flow packet.FlowID, seq int) *packet.Packet {
	return &packet.Packet{Flow: flow, Pool: packet.PoolID(flow), Kind: packet.Data, Seq: seq, Size: 500}
}

func TestFlightRecorderWrapAccounting(t *testing.T) {
	r := NewRecorder(nil, 4)
	for i := 0; i < 6; i++ {
		r.Enqueue(sim.Time(i), mkPacket(1, i), 3)
	}
	if r.Len() != 4 {
		t.Fatalf("Len = %d, want 4", r.Len())
	}
	if r.Dropped != 2 {
		t.Fatalf("Dropped = %d, want 2", r.Dropped)
	}
	if r.Recorded != 6 {
		t.Fatalf("Recorded = %d, want 6", r.Recorded)
	}
	evs := r.Events()
	if len(evs) != 4 {
		t.Fatalf("Events len = %d, want 4", len(evs))
	}
	for i, ev := range evs {
		if want := sim.Time(i + 2); ev.Time != want {
			t.Errorf("event %d time = %d, want %d (oldest-first after wrap)", i, ev.Time, want)
		}
	}
}

func TestStreamingFlushOnFullAndFlush(t *testing.T) {
	var mem MemorySink
	r := NewRecorder(&mem, 2)
	for i := 0; i < 5; i++ {
		r.Dequeue(sim.Time(i), mkPacket(2, i), -1)
	}
	// Ring size 2 → two full-batch flushes so far, one event buffered.
	if len(mem.Events) != 4 {
		t.Fatalf("sink has %d events before Flush, want 4", len(mem.Events))
	}
	if r.Len() != 1 {
		t.Fatalf("Len = %d, want 1 buffered", r.Len())
	}
	if err := r.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	if len(mem.Events) != 5 {
		t.Fatalf("sink has %d events after Flush, want 5", len(mem.Events))
	}
	for i, ev := range mem.Events {
		if ev.Time != sim.Time(i) || ev.Kind != KindDequeue {
			t.Errorf("event %d = {t=%d kind=%v}, want {t=%d dequeue}", i, ev.Time, ev.Kind, i)
		}
	}
	if r.Dropped != 0 {
		t.Fatalf("Dropped = %d, want 0", r.Dropped)
	}
}

type failSink struct {
	writes int
	err    error
}

func (s *failSink) WriteEvents(batch []Event) error {
	s.writes++
	return s.err
}

func (s *failSink) Close() error { return nil }

func TestStreamingSinkErrorIsSticky(t *testing.T) {
	sink := &failSink{err: errors.New("disk full")}
	r := NewRecorder(sink, 2)
	for i := 0; i < 6; i++ {
		r.Drop(sim.Time(i), mkPacket(3, i), 0, i%2 == 1)
	}
	// First full batch fails; everything after is discarded without
	// touching the sink again.
	if sink.writes != 1 {
		t.Fatalf("sink writes = %d, want 1 (error must be sticky)", sink.writes)
	}
	if r.Dropped != 4 {
		t.Fatalf("Dropped = %d, want 4", r.Dropped)
	}
	if err := r.Flush(); err == nil {
		t.Fatal("Flush returned nil, want sticky sink error")
	}
	if err := r.Close(); err == nil {
		t.Fatal("Close returned nil, want sticky sink error")
	}
}

func TestNilRecorderIsSafeAndAllocFree(t *testing.T) {
	var r *Recorder
	p := mkPacket(7, 0)
	r.Enqueue(1, p, 0)
	r.Dequeue(2, p, 0)
	r.Drop(3, p, 1, true)
	r.TrackerTransition(4, 7, 7, 0, 1)
	r.TimeoutDetected(5, 7, 7, 1, 2)
	r.AdmissionDecision(6, 7, AdmissionForced)
	r.ClassChange(7, p, -1, 2)
	if err := r.Flush(); err != nil {
		t.Fatalf("nil Flush: %v", err)
	}
	if err := r.Close(); err != nil {
		t.Fatalf("nil Close: %v", err)
	}
	if r.Len() != 0 || r.Events() != nil {
		t.Fatal("nil recorder reported retained events")
	}
	allocs := testing.AllocsPerRun(100, func() {
		r.Enqueue(1, p, 0)
		r.Dequeue(2, p, 0)
		r.Drop(3, p, 1, false)
	})
	if allocs != 0 {
		t.Fatalf("nil recorder allocs/op = %v, want 0", allocs)
	}
}

func TestEnabledRecorderHotPathIsAllocFree(t *testing.T) {
	r := NewRecorder(nil, 64)
	p := mkPacket(9, 0)
	allocs := testing.AllocsPerRun(100, func() {
		r.Enqueue(1, p, 0)
		r.Dequeue(2, p, 0)
	})
	if allocs != 0 {
		t.Fatalf("flight recorder allocs/op = %v, want 0", allocs)
	}
}

func testClassName(c int8) string {
	return [...]string{"Recovery", "NewFlow", "OverPenalized", "BelowFairShare", "AboveFairShare"}[c]
}

func testStateName(s int8) string {
	return [...]string{"SlowStart", "CongestionAvoidance", "TimeoutSilence"}[s]
}

func TestJSONLSinkGolden(t *testing.T) {
	var buf bytes.Buffer
	sink := NewJSONLSink(&buf)
	sink.ClassName = testClassName
	sink.StateName = testStateName
	r := NewRecorder(sink, 8)

	p := &packet.Packet{Flow: 5, Pool: 2, Kind: packet.Data, Seq: 17, Size: 500}
	syn := &packet.Packet{Flow: 6, Pool: packet.PoolNone, Kind: packet.Syn, Size: 40}
	r.Enqueue(1000, p, 3)
	r.Dequeue(2000, p, -1)
	r.Drop(3000, p, 0, true)
	r.ClassChange(3500, p, -1, 1)
	r.TrackerTransition(4000, 5, 2, 0, 1)
	r.TimeoutDetected(5000, 5, 2, 1, 2)
	r.AdmissionDecision(6000, 2, AdmissionForced)
	r.Enqueue(7000, syn, -1)
	if err := r.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	want := `{"t":1000,"ev":"enqueue","flow":5,"pool":2,"pkt":"DATA","seq":17,"size":500,"class":"BelowFairShare"}
{"t":2000,"ev":"dequeue","flow":5,"pool":2,"pkt":"DATA","seq":17,"size":500}
{"t":3000,"ev":"drop","flow":5,"pool":2,"pkt":"DATA","seq":17,"size":500,"class":"Recovery","rtx":true}
{"t":3500,"ev":"class_change","flow":5,"pool":2,"from":-1,"to":"NewFlow"}
{"t":4000,"ev":"tracker_transition","flow":5,"pool":2,"from":"SlowStart","to":"CongestionAvoidance"}
{"t":5000,"ev":"timeout_detected","flow":5,"pool":2,"from":"CongestionAvoidance","to":"TimeoutSilence"}
{"t":6000,"ev":"admission_decision","pool":2,"decision":"forced"}
{"t":7000,"ev":"enqueue","flow":6,"pkt":"SYN","seq":0,"size":40}
`
	if got := buf.String(); got != want {
		t.Fatalf("JSONL mismatch:\ngot:\n%swant:\n%s", got, want)
	}
}

func TestJSONLSinkNumericCodesWithoutLabelFuncs(t *testing.T) {
	var buf bytes.Buffer
	r := NewRecorder(NewJSONLSink(&buf), 4)
	r.TrackerTransition(100, 1, packet.PoolNone, 2, 3)
	if err := r.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	want := `{"t":100,"ev":"tracker_transition","flow":1,"from":2,"to":3}` + "\n"
	if got := buf.String(); got != want {
		t.Fatalf("got %q, want %q", got, want)
	}
}

func TestGaugeSetCSVDeterministic(t *testing.T) {
	run := func() string {
		eng := sim.NewEngine(42)
		var buf bytes.Buffer
		g := NewGaugeSet(eng, sim.Second, NewCSVSeries(&buf))
		depth := 0
		g.RegisterInt("qlen", func() int { return depth })
		g.Register("loss_ewma", func() float64 { return float64(depth) / 8 })
		// Vary the gauge between samples.
		for i := 1; i <= 3; i++ {
			i := i
			eng.Schedule(sim.Time(i)*sim.Second-sim.Millisecond, func() { depth = i * 2 })
		}
		g.Start()
		eng.RunUntil(3 * sim.Second)
		if err := g.Stop(); err != nil {
			t.Fatalf("Stop: %v", err)
		}
		return buf.String()
	}
	got := run()
	want := "t_ns,qlen,loss_ewma\n" +
		"0,0,0\n" +
		"1000000000,2,0.25\n" +
		"2000000000,4,0.5\n" +
		"3000000000,6,0.75\n"
	if got != want {
		t.Fatalf("CSV mismatch:\ngot:\n%swant:\n%s", got, want)
	}
	if again := run(); again != got {
		t.Fatal("same-seed gauge CSV not byte-identical across runs")
	}
}

func TestGaugeSetJSONLSeries(t *testing.T) {
	eng := sim.NewEngine(1)
	var buf bytes.Buffer
	g := NewGaugeSet(eng, sim.Second, NewJSONLSeries(&buf))
	g.RegisterInt("flows", func() int { return 3 })
	g.Start()
	eng.RunUntil(sim.Second)
	if err := g.Stop(); err != nil {
		t.Fatalf("Stop: %v", err)
	}
	want := `{"t":0,"flows":3}` + "\n" + `{"t":1000000000,"flows":3}` + "\n"
	if got := buf.String(); got != want {
		t.Fatalf("got %q, want %q", got, want)
	}
}

func TestGaugeSetStopCancelsTick(t *testing.T) {
	eng := sim.NewEngine(1)
	var mem MemorySeries
	g := NewGaugeSet(eng, sim.Second, &mem)
	g.RegisterInt("x", func() int { return 1 })
	g.Start()
	eng.RunUntil(2 * sim.Second)
	if err := g.Stop(); err != nil {
		t.Fatalf("Stop: %v", err)
	}
	n := len(mem.Times)
	if n != 3 {
		t.Fatalf("samples before stop = %d, want 3", n)
	}
	eng.RunUntil(10 * sim.Second)
	if len(mem.Times) != n {
		t.Fatalf("gauge kept ticking after Stop: %d samples", len(mem.Times))
	}
	if eng.Pending() != 0 {
		t.Fatalf("pending timers after Stop = %d, want 0 (timer leak)", eng.Pending())
	}
}

func TestGaugeSnapshot(t *testing.T) {
	eng := sim.NewEngine(1)
	g := NewGaugeSet(eng, sim.Second, &MemorySeries{})
	g.RegisterInt("a", func() int { return 4 })
	g.Register("b", func() float64 { return 2.5 })
	names, vals := g.Snapshot()
	if len(names) != 2 || names[0] != "a" || names[1] != "b" {
		t.Fatalf("names = %v", names)
	}
	if len(vals) != 2 || vals[0] != 4 || vals[1] != 2.5 {
		t.Fatalf("vals = %v", vals)
	}
	var nilG *GaugeSet
	nilG.Register("x", nil)
	nilG.Start()
	if err := nilG.Stop(); err != nil {
		t.Fatalf("nil Stop: %v", err)
	}
	if n, v := nilG.Snapshot(); n != nil || v != nil {
		t.Fatal("nil GaugeSet snapshot not empty")
	}
}

func TestNullSinkCounts(t *testing.T) {
	var null NullSink
	r := NewRecorder(&null, 2)
	p := mkPacket(1, 0)
	for i := 0; i < 5; i++ {
		r.Enqueue(sim.Time(i), p, -1)
	}
	if err := r.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if null.Events != 5 {
		t.Fatalf("NullSink.Events = %d, want 5", null.Events)
	}
}
