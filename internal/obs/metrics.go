package obs

import (
	"sort"
	"sync/atomic"

	"taq/internal/metrics"
	"taq/internal/sim"
)

// Registry is a fixed-shape set of counters and log-bucketed
// histograms. Every metric is created up front (construction may
// allocate); the record path afterwards touches exactly one atomic
// cell — zero allocations, no maps, no locks — so it can sit on the
// per-packet path next to the Recorder hooks.
//
// Sharding model: a registry belongs to one middlebox instance. Writes
// follow the repo's single-writer discipline (one sim.Runner), but the
// cells are atomics, so the read edge is lock-free: Snapshot can run
// on any goroutine concurrently with the writer, and per-shard
// snapshots aggregate with MetricsSnapshot.Merge — the
// per-shard-then-aggregate shape the sharded middlebox (ROADMAP item
// 1) needs, with no coordination on the hot path.
//
// The nil *Registry (and nil *Counter / *Histogram) is the disabled
// state: every record method is a valid no-op on a nil receiver, so an
// uninstrumented run pays one branch per hook.
//
// Determinism contract: values are driven entirely by the event
// sequence and sim.Time durations, never a wall clock, so a same-seed
// run produces a byte-identical Prometheus exposition.
type Registry struct {
	counters []*Counter
	hists    []*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{} }

// checkName panics on duplicate metric names — a construction-time
// programmer error, like a duplicate expvar.
func (r *Registry) checkName(name string) {
	for _, c := range r.counters {
		if c.name == name {
			panic("obs: duplicate metric name " + name)
		}
	}
	for _, h := range r.hists {
		if h.name == name {
			panic("obs: duplicate metric name " + name)
		}
	}
}

// Counter registers a single monotonic counter.
func (r *Registry) Counter(name, help string) *Counter {
	return r.CounterVec(name, help, "", nil)
}

// CounterVec registers a counter with one cell per label value (a
// Prometheus label dimension with a fixed, enumerable value set, e.g.
// the five TAQ classes). An empty label registers a plain counter.
func (r *Registry) CounterVec(name, help, label string, values []string) *Counter {
	if r == nil {
		return nil
	}
	r.checkName(name)
	n := len(values)
	if n == 0 {
		n = 1
	}
	c := &Counter{name: name, help: help, label: label, labelVals: values,
		cells: make([]atomic.Uint64, n)}
	r.counters = append(r.counters, c)
	return c
}

// Histogram registers a single histogram over the given ascending
// upper bounds (an implicit +Inf overflow bucket is always added).
func (r *Registry) Histogram(name, help string, bounds []sim.Time) *Histogram {
	return r.HistogramVec(name, help, bounds, "", nil)
}

// HistogramVec registers a histogram with one bucket row per label
// value. An empty label registers a plain histogram.
func (r *Registry) HistogramVec(name, help string, bounds []sim.Time, label string, values []string) *Histogram {
	if r == nil {
		return nil
	}
	r.checkName(name)
	n := len(values)
	if n == 0 {
		n = 1
	}
	h := &Histogram{name: name, help: help, label: label, labelVals: values,
		bounds: bounds, nb: len(bounds) + 1,
		cells:  make([]atomic.Uint64, n*(len(bounds)+1)),
		counts: make([]atomic.Uint64, n),
		sums:   make([]atomic.Int64, n),
	}
	r.hists = append(r.hists, h)
	return h
}

// Counter is a monotonic counter, optionally vectorized over a fixed
// label-value set. The nil *Counter is the disabled state.
type Counter struct {
	name, help string
	label      string
	labelVals  []string
	cells      []atomic.Uint64
}

// AddAt adds n to the cell for label-value index i. Out-of-range
// indices are dropped — a miswired record site must not panic the
// packet path.
//
//taq:hotpath one atomic add; the registry's fundamental record op
func (c *Counter) AddAt(i int, n uint64) {
	if c == nil || i < 0 || i >= len(c.cells) {
		return
	}
	c.cells[i].Add(n)
}

// Inc increments a plain counter (cell 0).
//
//taq:hotpath nil-receiver counter hook on the per-packet path
func (c *Counter) Inc() { c.AddAt(0, 1) }

// Add adds n to a plain counter (cell 0).
//
//taq:hotpath nil-receiver counter hook on the per-packet path
func (c *Counter) Add(n uint64) { c.AddAt(0, n) }

// IncAt increments the cell for label-value index i.
//
//taq:hotpath nil-receiver counter hook on the per-packet path
func (c *Counter) IncAt(i int) { c.AddAt(i, 1) }

// Value returns the sum across all cells (0 on a nil receiver).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	var v uint64
	for i := range c.cells {
		v += c.cells[i].Load()
	}
	return v
}

// ValueAt returns the cell for label-value index i.
func (c *Counter) ValueAt(i int) uint64 {
	if c == nil || i < 0 || i >= len(c.cells) {
		return 0
	}
	return c.cells[i].Load()
}

// Histogram is a log-bucketed duration histogram, optionally
// vectorized over a fixed label-value set. Observations are sim.Time
// durations; bucket placement uses Prometheus "le" semantics (a value
// lands in the first bucket whose upper bound is >= the value). The
// nil *Histogram is the disabled state.
type Histogram struct {
	name, help string
	label      string
	labelVals  []string
	bounds     []sim.Time // ascending upper bounds; +Inf is implicit
	nb         int        // buckets per label row = len(bounds)+1
	cells      []atomic.Uint64
	counts     []atomic.Uint64
	sums       []atomic.Int64
}

// ObserveAt records v into the bucket row for label-value index i.
// Out-of-range indices are dropped.
//
//taq:hotpath binary bound search plus three atomic adds
func (h *Histogram) ObserveAt(i int, v sim.Time) {
	if h == nil || i < 0 || i >= len(h.counts) {
		return
	}
	lo, hi := 0, len(h.bounds)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if v <= h.bounds[mid] {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	h.cells[i*h.nb+lo].Add(1)
	h.counts[i].Add(1)
	h.sums[i].Add(int64(v))
}

// Observe records v into a plain histogram (label row 0).
//
//taq:hotpath nil-receiver histogram hook on the per-packet path
func (h *Histogram) Observe(v sim.Time) { h.ObserveAt(0, v) }

// Count returns the total number of observations across all label
// rows.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	var n uint64
	for i := range h.counts {
		n += h.counts[i].Load()
	}
	return n
}

// Quantile estimates the q-quantile (q in (0,1]) across all label rows
// by nearest rank over the bucket upper bounds: the returned value is
// the upper bound of the bucket containing the rank-th observation —
// an overestimate by at most one bucket width, which is what a
// log-bucketed histogram can promise. Observations beyond the last
// bound report the last bound. Returns 0 with no observations.
//
// Quantile reads the live atomic cells, so it is safe to call from a
// flight-recorder trigger or an HTTP handler while the writer runs.
func (h *Histogram) Quantile(q float64) sim.Time {
	if h == nil || h.nb == 0 {
		return 0
	}
	var total uint64
	for i := range h.counts {
		total += h.counts[i].Load()
	}
	if total == 0 {
		return 0
	}
	rank := uint64(q * float64(total))
	if rank < 1 {
		rank = 1
	}
	if rank > total {
		rank = total
	}
	var cum uint64
	for b := 0; b < h.nb; b++ {
		for li := 0; li < len(h.counts); li++ {
			cum += h.cells[li*h.nb+b].Load()
		}
		if cum >= rank {
			if b < len(h.bounds) {
				return h.bounds[b]
			}
			break
		}
	}
	return h.bounds[len(h.bounds)-1]
}

// TimeBuckets converts bucket upper bounds in seconds (as produced by
// metrics.LogBuckets, the shared boundary source) to sim.Time bounds.
func TimeBuckets(secs []float64) []sim.Time {
	out := make([]sim.Time, len(secs))
	for i, s := range secs {
		out[i] = sim.FromSeconds(s)
	}
	return out
}

// DelayBuckets returns the canonical queueing-delay bucket set: four
// buckets per decade from 100 µs to ~56 s, shared by the per-class and
// link-level delay histograms.
func DelayBuckets() []sim.Time {
	return TimeBuckets(metrics.LogBuckets(1e-4, 4, 24))
}

// FCTBuckets returns the canonical flow-completion-time bucket set:
// four buckets per decade from 10 ms to ~5600 s.
func FCTBuckets() []sim.Time {
	return TimeBuckets(metrics.LogBuckets(1e-2, 4, 24))
}

// FCT size classes: the small-packet regime the paper is about
// (single-digit segments), mid-size web objects, and bulk transfers.
const (
	fctShortMaxBytes = 10_000
	fctMidMaxBytes   = 1_000_000
)

// FCTSizeLabels are the label values of the FCTHistogram vector, in
// FCTSizeClass index order.
var FCTSizeLabels = []string{"short", "mid", "long"}

// FCTSizeClass maps a transfer size to its FCTHistogram label index:
// short (<10 kB), mid (<1 MB), long.
func FCTSizeClass(sizeBytes int) int {
	switch {
	case sizeBytes < fctShortMaxBytes:
		return 0
	case sizeBytes < fctMidMaxBytes:
		return 1
	default:
		return 2
	}
}

// FCTHistogram registers the canonical flow-completion-time histogram,
// labeled by transfer size class. The simulator and the testbed both
// register it through here so dashboards see one schema.
func FCTHistogram(reg *Registry) *Histogram {
	return reg.HistogramVec("taq_fct_seconds",
		"Flow completion time by transfer size class (short <10kB, mid <1MB, long).",
		FCTBuckets(), "size", FCTSizeLabels)
}

// MetricsSnapshot is a plain-value copy of a registry, taken with
// atomic loads — the lock-free read edge. Snapshots merge by addition
// (per-shard registries aggregate into one exposition) and render to
// the Prometheus text format (promtext.go).
type MetricsSnapshot struct {
	Counters   []CounterSnapshot
	Histograms []HistogramSnapshot
}

// CounterSnapshot is one counter family's cells.
type CounterSnapshot struct {
	Name, Help, Label string
	LabelVals         []string // nil for a plain counter
	Values            []uint64 // one per label value (or the single cell)
}

// HistogramSnapshot is one histogram family's bucket rows.
type HistogramSnapshot struct {
	Name, Help, Label string
	LabelVals         []string
	Bounds            []sim.Time
	Buckets           [][]uint64 // [label row][bucket]; last is overflow; not cumulative
	Counts            []uint64
	Sums              []int64 // sim.Time sums
}

// Snapshot copies every cell with atomic loads. Families are sorted by
// name, so the exposition ordering is stable whatever the registration
// order. Safe on a nil receiver (returns an empty snapshot).
func (r *Registry) Snapshot() *MetricsSnapshot {
	s := &MetricsSnapshot{}
	if r == nil {
		return s
	}
	s.Counters = make([]CounterSnapshot, 0, len(r.counters))
	for _, c := range r.counters {
		cs := CounterSnapshot{Name: c.name, Help: c.help, Label: c.label,
			LabelVals: c.labelVals, Values: make([]uint64, len(c.cells))}
		for i := range c.cells {
			cs.Values[i] = c.cells[i].Load()
		}
		s.Counters = append(s.Counters, cs)
	}
	s.Histograms = make([]HistogramSnapshot, 0, len(r.hists))
	for _, h := range r.hists {
		hs := HistogramSnapshot{Name: h.name, Help: h.help, Label: h.label,
			LabelVals: h.labelVals, Bounds: h.bounds,
			Buckets: make([][]uint64, len(h.counts)),
			Counts:  make([]uint64, len(h.counts)),
			Sums:    make([]int64, len(h.counts)),
		}
		for li := range h.counts {
			row := make([]uint64, h.nb)
			for b := 0; b < h.nb; b++ {
				row[b] = h.cells[li*h.nb+b].Load()
			}
			hs.Buckets[li] = row
			hs.Counts[li] = h.counts[li].Load()
			hs.Sums[li] = h.sums[li].Load()
		}
		s.Histograms = append(s.Histograms, hs)
	}
	sort.Slice(s.Counters, func(i, j int) bool { return s.Counters[i].Name < s.Counters[j].Name })
	sort.Slice(s.Histograms, func(i, j int) bool { return s.Histograms[i].Name < s.Histograms[j].Name })
	return s
}

// Merge adds o's cells into s. The two snapshots must have the same
// shape (same families, labels, and bounds — i.e. registries built by
// the same constructor code, the per-shard case); Merge panics on a
// shape mismatch, which is a wiring bug, not data.
func (s *MetricsSnapshot) Merge(o *MetricsSnapshot) {
	if len(s.Counters) != len(o.Counters) || len(s.Histograms) != len(o.Histograms) {
		panic("obs: merging snapshots of different shapes")
	}
	for i := range s.Counters {
		a, b := &s.Counters[i], &o.Counters[i]
		if a.Name != b.Name || len(a.Values) != len(b.Values) {
			panic("obs: merging snapshots of different shapes: " + a.Name)
		}
		for j := range a.Values {
			a.Values[j] += b.Values[j]
		}
	}
	for i := range s.Histograms {
		a, b := &s.Histograms[i], &o.Histograms[i]
		if a.Name != b.Name || len(a.Buckets) != len(b.Buckets) || len(a.Bounds) != len(b.Bounds) {
			panic("obs: merging snapshots of different shapes: " + a.Name)
		}
		for li := range a.Buckets {
			for bi := range a.Buckets[li] {
				a.Buckets[li][bi] += b.Buckets[li][bi]
			}
			a.Counts[li] += b.Counts[li]
			a.Sums[li] += b.Sums[li]
		}
	}
}

// Quantile estimates the q-quantile (q in (0,1]) of label row li by
// nearest rank over the bucket upper bounds (see Histogram.Quantile).
// Returns 0 with no observations or an out-of-range row.
func (h *HistogramSnapshot) Quantile(li int, q float64) sim.Time {
	if li < 0 || li >= len(h.Counts) || h.Counts[li] == 0 || len(h.Bounds) == 0 {
		return 0
	}
	total := h.Counts[li]
	rank := uint64(q * float64(total))
	if rank < 1 {
		rank = 1
	}
	if rank > total {
		rank = total
	}
	var cum uint64
	for b, n := range h.Buckets[li] {
		cum += n
		if cum >= rank {
			if b < len(h.Bounds) {
				return h.Bounds[b]
			}
			break
		}
	}
	return h.Bounds[len(h.Bounds)-1]
}

// MergedSnapshot snapshots every registry and sums them into one view
// — the read edge of a sharded middlebox, where each shard records
// into its own registry and the union is materialized only at
// exposition time (obshttp /metrics, promtext artifacts). All
// registries must carry the same schema (Merge panics otherwise); nil
// registries are skipped. With no non-nil registry the snapshot is
// empty.
func MergedSnapshot(regs ...*Registry) *MetricsSnapshot {
	var s *MetricsSnapshot
	for _, r := range regs {
		if r == nil {
			continue
		}
		if s == nil {
			s = r.Snapshot()
			continue
		}
		s.Merge(r.Snapshot())
	}
	if s == nil {
		return &MetricsSnapshot{}
	}
	return s
}
