package obs

import (
	"bytes"
	"io"
	"strings"
	"testing"

	"taq/internal/sim"
)

// memDump is a DumpOpener backed by in-memory buffers.
type memDump struct {
	names []string
	bufs  []*bytes.Buffer
}

type nopCloser struct{ *bytes.Buffer }

func (nopCloser) Close() error { return nil }

func (d *memDump) open(name string, seq int) (io.WriteCloser, error) {
	buf := &bytes.Buffer{}
	d.names = append(d.names, name)
	d.bufs = append(d.bufs, buf)
	return nopCloser{buf}, nil
}

func TestFlightRecorderTriggerAndHysteresis(t *testing.T) {
	eng := sim.NewEngine(1)
	rec := NewRecorder(nil, 8)
	var dumps memDump
	level := 0.0
	fr := NewFlightRecorder(eng, rec, sim.Second, dumps.open)
	fr.Watch(Trigger{Name: "rep_timeouts", Threshold: 3, Value: func() float64 { return level }})
	fr.Start()

	// Feed the ring some context events and raise the level past the
	// threshold between polls.
	eng.After(sim.Second/2, func() {
		for i := 0; i < 3; i++ {
			rec.Enqueue(eng.Now(), mkPacket(7, i), 2)
		}
	})
	eng.After(3*sim.Second/2, func() { level = 5 }) // breach before poll 2
	// Stays breached through polls 3 and 4: hysteresis must suppress
	// further dumps until the value recovers and breaches again.
	eng.After(9*sim.Second/2, func() { level = 0 })  // rearm before poll 5
	eng.After(11*sim.Second/2, func() { level = 4 }) // second breach before poll 6
	eng.RunUntil(8 * sim.Second)
	fr.Stop()

	if fr.Err != nil {
		t.Fatalf("flight recorder error: %v", fr.Err)
	}
	if fr.Dumps != 2 {
		t.Fatalf("Dumps = %d, want 2 (one per armed crossing)", fr.Dumps)
	}
	if len(dumps.bufs) != 2 || dumps.names[0] != "rep_timeouts" {
		t.Fatalf("dump artifacts = %v", dumps.names)
	}
	lines := strings.Split(strings.TrimRight(dumps.bufs[0].String(), "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("first dump has %d lines, want 1 header + 3 events:\n%s", len(lines), dumps.bufs[0])
	}
	head := lines[0]
	for _, want := range []string{`"trigger":"rep_timeouts"`, `"value":5`, `"threshold":3`, `"events":3`, `"dropped":0`} {
		if !strings.Contains(head, want) {
			t.Errorf("header %s missing %s", head, want)
		}
	}
	if !strings.Contains(lines[1], `"ev":"enqueue"`) {
		t.Errorf("event line %q missing enqueue kind", lines[1])
	}
}

func TestFlightRecorderMaxDumps(t *testing.T) {
	eng := sim.NewEngine(1)
	rec := NewRecorder(nil, 4)
	var dumps memDump
	fr := NewFlightRecorder(eng, rec, sim.Second, dumps.open)
	fr.MaxDumps = 2
	level := 0.0
	fr.Watch(Trigger{Name: "osc", Threshold: 1, Value: func() float64 { return level }})
	fr.Start()
	// Oscillate so the trigger rearms before every poll — without the
	// cap this would dump on every odd poll.
	tick := 0
	eng.After(sim.Second/2, func() {})
	var osc func()
	osc = func() {
		tick++
		if level == 0 {
			level = 2
		} else {
			level = 0
		}
		if tick < 20 {
			sim.After(eng, sim.Second, osc)
		}
	}
	sim.After(eng, sim.Second/2, osc)
	eng.RunUntil(25 * sim.Second)
	fr.Stop()
	if fr.Dumps != 2 {
		t.Fatalf("Dumps = %d, want MaxDumps cap of 2", fr.Dumps)
	}
}

func TestNilFlightRecorderSafe(t *testing.T) {
	var fr *FlightRecorder
	fr.Watch(Trigger{Name: "x", Threshold: 1, Value: func() float64 { return 0 }})
	fr.Start()
	fr.Stop()
}
