package obs

import (
	"io"
	"strconv"

	"taq/internal/sim"
)

// Trigger is one anomaly predicate watched by a FlightRecorder: the
// recorder polls Value on its cadence and fires when it crosses
// Threshold (>=). Typical values: a repetitive-timeout counter, the
// loss-window EWMA, a histogram tail quantile in seconds.
type Trigger struct {
	// Name identifies the trigger in dump filenames and headers
	// (e.g. "repetitive_timeouts", "fct_p99").
	Name string
	// Value reads the watched quantity. Called on the poll cadence
	// inside the owning Runner, so it may read discipline state.
	Value func() float64
	// Threshold fires the trigger when Value() >= Threshold.
	Threshold float64

	armed bool // rearmed after Value drops back below Threshold
	fired int  // dumps produced by this trigger
}

// DumpOpener opens the artifact for one flight dump; name is the
// trigger name and seq the per-recorder dump sequence number. The
// FlightRecorder closes the returned writer after the dump.
type DumpOpener func(name string, seq int) (io.WriteCloser, error)

// FlightRecorder watches trigger predicates on a sim-time cadence and,
// when one fires, dumps the Recorder's retained event ring (the last-N
// events before the anomaly) to a JSONL artifact, with the triggering
// sample attached as a header line.
//
// Each trigger is edge-triggered with hysteresis: after firing it
// stays disarmed until its value drops back below the threshold, so a
// persistently-breached threshold yields one dump, not one per poll.
//
// Like the GaugeSet, the FlightRecorder reads no clock of its own —
// poll times come from the driving Runner — so the dumps of a
// deterministic run are byte-identical across same-seed runs. The nil
// *FlightRecorder is the disabled state.
type FlightRecorder struct {
	run      sim.Runner
	rec      *Recorder
	interval sim.Time
	open     DumpOpener
	triggers []*Trigger
	timer    *sim.Timer
	started  bool
	seq      int

	// ClassName / StateName label the dumped events' class and
	// tracker-state codes, as on JSONLSink.
	ClassName func(int8) string
	StateName func(int8) string

	// MaxDumps caps the total number of dumps across all triggers
	// (default 8) so a pathological run cannot fill the disk.
	MaxDumps int

	// Dumps counts dumps written; Err retains the first dump error.
	Dumps int
	Err   error
}

// NewFlightRecorder returns a flight recorder polling its triggers
// every interval, dumping rec's ring through open when one fires. A
// non-positive interval defaults to 100 sim-milliseconds. rec should
// be in flight-recorder mode (nil sink) so the ring retains a tail;
// a streaming recorder dumps whatever batch is currently buffered.
func NewFlightRecorder(run sim.Runner, rec *Recorder, interval sim.Time, open DumpOpener) *FlightRecorder {
	if interval <= 0 {
		interval = sim.Second / 10
	}
	return &FlightRecorder{run: run, rec: rec, interval: interval, open: open, MaxDumps: 8}
}

// Watch adds a trigger. Must be called before Start. Safe on a nil
// receiver.
func (f *FlightRecorder) Watch(t Trigger) {
	if f == nil {
		return
	}
	t.armed = true
	f.triggers = append(f.triggers, &t)
}

// Start arms the periodic poll. Safe on a nil receiver; a second Start
// is a no-op.
func (f *FlightRecorder) Start() {
	if f == nil || f.started {
		return
	}
	f.started = true
	var tick func()
	tick = func() {
		f.poll()
		f.timer = sim.Reschedule(f.run, f.timer, f.interval, tick)
	}
	f.timer = sim.Reschedule(f.run, f.timer, f.interval, tick)
}

// Stop cancels the poll. Safe on a nil receiver.
func (f *FlightRecorder) Stop() {
	if f == nil {
		return
	}
	if f.timer != nil {
		f.timer.Cancel()
		f.timer = nil
	}
	f.started = false
}

// poll evaluates every trigger, dumping on each armed crossing.
func (f *FlightRecorder) poll() {
	for _, t := range f.triggers {
		v := t.Value()
		if v >= t.Threshold {
			if t.armed && f.Dumps < f.MaxDumps {
				t.armed = false
				t.fired++
				f.dump(t, v)
			}
			continue
		}
		t.armed = true
	}
}

// dump writes one artifact: a header line describing the triggering
// sample, then the ring's retained events as JSONL.
func (f *FlightRecorder) dump(t *Trigger, value float64) {
	w, err := f.open(t.Name, f.seq)
	if err != nil {
		if f.Err == nil {
			f.Err = err
		}
		return
	}
	f.seq++
	b := append([]byte(nil), `{"trigger":"`...)
	b = append(b, t.Name...)
	b = append(b, `","t":`...)
	b = strconv.AppendInt(b, int64(f.run.Now()), 10)
	b = append(b, `,"value":`...)
	b = appendFloat(b, value)
	b = append(b, `,"threshold":`...)
	b = appendFloat(b, t.Threshold)
	b = append(b, `,"events":`...)
	b = strconv.AppendInt(b, int64(f.rec.Len()), 10)
	b = append(b, `,"dropped":`...)
	var dropped uint64
	if f.rec != nil {
		dropped = f.rec.Dropped
	}
	b = strconv.AppendUint(b, dropped, 10)
	b = append(b, '}', '\n')
	if _, err := w.Write(b); err != nil {
		if f.Err == nil {
			f.Err = err
		}
		w.Close()
		return
	}
	sink := NewJSONLSink(w)
	sink.ClassName, sink.StateName = f.ClassName, f.StateName
	if evs := f.rec.Events(); len(evs) > 0 {
		if err := sink.WriteEvents(evs); err != nil && f.Err == nil {
			f.Err = err
		}
	}
	if err := w.Close(); err != nil && f.Err == nil {
		f.Err = err
	}
	f.Dumps++
}
