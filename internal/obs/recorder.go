package obs

import (
	"taq/internal/packet"
	"taq/internal/sim"
)

// Recorder collects trace events through a fixed-size ring buffer.
//
// Two modes, chosen by the sink:
//
//   - sink == nil: flight-recorder mode. The ring wraps, overwriting
//     the oldest event and counting each overwrite in Dropped; Events
//     returns the retained tail. This is the zero-IO mode tests and
//     the live endpoint use.
//   - sink != nil: streaming mode. The ring is a linear batch that is
//     handed to the sink whenever it fills (and on Flush/Close). A
//     sink error is sticky: subsequent events are discarded and
//     counted in Dropped, and the error is returned by Flush/Close.
//
// The nil *Recorder is the disabled state: every recording method is a
// valid call on a nil receiver and returns immediately, so
// instrumentation sites pay one branch and zero allocations when
// tracing is off. Callers that would compute event arguments (e.g.
// read a clock) should additionally guard with `if rec != nil` so the
// argument evaluation itself is skipped.
//
// A Recorder is driven from a single sim.Runner and needs no locking,
// matching the concurrency contract of the disciplines it instruments.
type Recorder struct {
	ring  []Event
	start int // oldest event (flight-recorder mode; always 0 when streaming)
	n     int // events currently in the ring
	sink  Sink
	err   error

	// Dropped counts events lost to ring overwrites (flight-recorder
	// mode) or discarded after a sink error (streaming mode).
	Dropped uint64
	// Recorded counts every event accepted, including later-dropped
	// ones.
	Recorded uint64
}

// DefaultRingSize is the ring capacity used when NewRecorder is given
// a non-positive size.
const DefaultRingSize = 4096

// NewRecorder returns a recorder writing through a ring of ringSize
// events to sink. A nil sink selects flight-recorder mode (the ring
// retains the most recent ringSize events).
func NewRecorder(sink Sink, ringSize int) *Recorder {
	if ringSize <= 0 {
		ringSize = DefaultRingSize
	}
	return &Recorder{ring: make([]Event, ringSize), sink: sink}
}

// record places ev in the ring, flushing or wrapping on overflow.
func (r *Recorder) record(ev Event) {
	r.Recorded++
	if r.err != nil {
		r.Dropped++
		return
	}
	if r.sink == nil {
		if r.n == len(r.ring) {
			// Wrap: overwrite the oldest retained event.
			r.ring[r.start] = ev
			r.start++
			if r.start == len(r.ring) {
				r.start = 0
			}
			r.Dropped++
			return
		}
		i := r.start + r.n
		if i >= len(r.ring) {
			i -= len(r.ring)
		}
		r.ring[i] = ev
		r.n++
		return
	}
	r.ring[r.n] = ev
	r.n++
	if r.n == len(r.ring) {
		r.flush()
	}
}

// flush hands the current batch to the sink (streaming mode only).
func (r *Recorder) flush() {
	if r.n == 0 || r.sink == nil || r.err != nil {
		return
	}
	if err := r.sink.WriteEvents(r.ring[:r.n]); err != nil {
		r.err = err
	}
	r.n = 0
}

// Flush writes any buffered events to the sink and returns the sticky
// sink error, if one occurred. A no-op in flight-recorder mode.
func (r *Recorder) Flush() error {
	if r == nil {
		return nil
	}
	r.flush()
	return r.err
}

// Close flushes and closes the sink. Safe on a nil receiver.
func (r *Recorder) Close() error {
	if r == nil {
		return nil
	}
	r.flush()
	if r.sink != nil {
		if err := r.sink.Close(); err != nil && r.err == nil {
			r.err = err
		}
	}
	return r.err
}

// Len returns the number of events currently held in the ring.
func (r *Recorder) Len() int {
	if r == nil {
		return 0
	}
	return r.n
}

// Events returns the retained events oldest-first (flight-recorder
// mode; in streaming mode, the batch not yet flushed). The slice is
// freshly allocated — intended for tests and snapshots, not hot paths.
func (r *Recorder) Events() []Event {
	if r == nil || r.n == 0 {
		return nil
	}
	out := make([]Event, r.n)
	for i := 0; i < r.n; i++ {
		j := r.start + i
		if j >= len(r.ring) {
			j -= len(r.ring)
		}
		out[i] = r.ring[j]
	}
	return out
}

// Enqueue records a packet being offered to the bottleneck queue.
// class is the assigned TAQ class, -1 when the discipline has none.
//
//taq:hotpath nil-receiver tracing hook on the per-packet path
func (r *Recorder) Enqueue(now sim.Time, p *packet.Packet, class int8) {
	if r == nil {
		return
	}
	r.record(Event{
		Time: now, Kind: KindEnqueue, Pkt: p.Kind, Class: class,
		From: -1, To: -1, Flow: p.Flow, Pool: p.Pool,
		Seq: int32(p.Seq), Size: int32(p.Size),
	})
}

// Dequeue records a packet leaving the queue onto the link.
//
//taq:hotpath nil-receiver tracing hook on the per-packet path
func (r *Recorder) Dequeue(now sim.Time, p *packet.Packet, class int8) {
	if r == nil {
		return
	}
	r.record(Event{
		Time: now, Kind: KindDequeue, Pkt: p.Kind, Class: class,
		From: -1, To: -1, Flow: p.Flow, Pool: p.Pool,
		Seq: int32(p.Seq), Size: int32(p.Size),
	})
}

// Drop records a packet drop. class is the victim's TAQ class (-1 for
// baseline disciplines); rtx marks a dropped retransmission — the §4.1
// event that forces a timeout.
//
//taq:hotpath nil-receiver tracing hook on the per-packet path
func (r *Recorder) Drop(now sim.Time, p *packet.Packet, class int8, rtx bool) {
	if r == nil {
		return
	}
	var flag uint8
	if rtx {
		flag = 1
	}
	r.record(Event{
		Time: now, Kind: KindDrop, Pkt: p.Kind, Class: class, Flag: flag,
		From: -1, To: -1, Flow: p.Flow, Pool: p.Pool,
		Seq: int32(p.Seq), Size: int32(p.Size),
	})
}

// TrackerTransition records the flow tracker moving flow between
// approximate states (codes are core.FlowState values).
//
//taq:hotpath nil-receiver tracing hook on the per-packet path
func (r *Recorder) TrackerTransition(now sim.Time, flow packet.FlowID, pool packet.PoolID, from, to int8) {
	if r == nil {
		return
	}
	r.record(Event{
		Time: now, Kind: KindTrackerTransition, Class: -1,
		From: from, To: to, Flow: flow, Pool: pool, Seq: -1,
	})
}

// TimeoutDetected records the tracker concluding a flow entered a
// timeout (or repetitive-timeout) silence.
//
//taq:hotpath nil-receiver tracing hook on the tracker path
func (r *Recorder) TimeoutDetected(now sim.Time, flow packet.FlowID, pool packet.PoolID, from, to int8) {
	if r == nil {
		return
	}
	r.record(Event{
		Time: now, Kind: KindTimeoutDetected, Class: -1,
		From: from, To: to, Flow: flow, Pool: pool, Seq: -1,
	})
}

// AdmissionDecision records an admission-control ruling on a pool's
// SYN; decision is AdmissionBlocked, AdmissionAdmitted or
// AdmissionForced.
//
//taq:hotpath nil-receiver tracing hook on the admission path
func (r *Recorder) AdmissionDecision(now sim.Time, pool packet.PoolID, decision uint8) {
	if r == nil {
		return
	}
	r.record(Event{
		Time: now, Kind: KindAdmissionDecision, Class: -1, Flag: decision,
		From: -1, To: -1, Flow: -1, Pool: pool, Seq: -1,
	})
}

// ClassChange records TAQ classifying a flow's packet into a different
// class than its previous packet (codes are core.Class values; from is
// -1 on the flow's first classification).
//
//taq:hotpath nil-receiver tracing hook on the per-packet path
func (r *Recorder) ClassChange(now sim.Time, p *packet.Packet, from, to int8) {
	if r == nil {
		return
	}
	r.record(Event{
		Time: now, Kind: KindClassChange, Pkt: p.Kind, Class: to,
		From: from, To: to, Flow: p.Flow, Pool: p.Pool,
		Seq: int32(p.Seq), Size: int32(p.Size),
	})
}
