package obs

import (
	"io"
	"strconv"

	"taq/internal/sim"
)

// Prometheus text-format exposition (version 0.0.4), stdlib-only.
//
// Everything renders through integer arithmetic on sim.Time (int64
// nanoseconds): a duration prints as its exact decimal value in
// seconds — integer part, then up to nine fractional digits with
// trailing zeros trimmed — never through float formatting. Same-seed
// runs therefore produce byte-identical expositions, which CI gates
// with cmp(1).

// AppendText renders the snapshot in Prometheus text format, appending
// to b. Families appear in Snapshot's name-sorted order; a histogram's
// series appear bucket-major within each label value, ending with
// +Inf, _sum, _count — the layout promtool expects.
func (s *MetricsSnapshot) AppendText(b []byte) []byte {
	for i := range s.Counters {
		c := &s.Counters[i]
		b = appendHeader(b, c.Name, c.Help, "counter")
		if len(c.LabelVals) == 0 {
			b = append(b, c.Name...)
			b = append(b, ' ')
			b = strconv.AppendUint(b, c.Values[0], 10)
			b = append(b, '\n')
			continue
		}
		for li, lv := range c.LabelVals {
			b = append(b, c.Name...)
			b = appendLabel(b, c.Label, lv, false)
			b = append(b, ' ')
			b = strconv.AppendUint(b, c.Values[li], 10)
			b = append(b, '\n')
		}
	}
	for i := range s.Histograms {
		h := &s.Histograms[i]
		b = appendHeader(b, h.Name, h.Help, "histogram")
		rows := len(h.Counts)
		for li := 0; li < rows; li++ {
			var lv string
			hasLabel := len(h.LabelVals) > 0
			if hasLabel {
				lv = h.LabelVals[li]
			}
			var cum uint64
			for bi, n := range h.Buckets[li] {
				cum += n
				b = append(b, h.Name...)
				b = append(b, "_bucket"...)
				if hasLabel {
					b = appendLabel(b, h.Label, lv, true)
					b = append(b, `le="`...)
				} else {
					b = append(b, `{le="`...)
				}
				if bi < len(h.Bounds) {
					b = appendSeconds(b, h.Bounds[bi])
				} else {
					b = append(b, "+Inf"...)
				}
				b = append(b, `"} `...)
				b = strconv.AppendUint(b, cum, 10)
				b = append(b, '\n')
			}
			b = append(b, h.Name...)
			b = append(b, "_sum"...)
			if hasLabel {
				b = appendLabel(b, h.Label, lv, false)
			}
			b = append(b, ' ')
			b = appendSeconds(b, sim.Time(h.Sums[li]))
			b = append(b, '\n')
			b = append(b, h.Name...)
			b = append(b, "_count"...)
			if hasLabel {
				b = appendLabel(b, h.Label, lv, false)
			}
			b = append(b, ' ')
			b = strconv.AppendUint(b, h.Counts[li], 10)
			b = append(b, '\n')
		}
	}
	return b
}

// WriteText writes the exposition to w in a single Write.
func (s *MetricsSnapshot) WriteText(w io.Writer) error {
	_, err := w.Write(s.AppendText(nil))
	return err
}

// appendHeader appends the # HELP / # TYPE pair for a family.
func appendHeader(b []byte, name, help, typ string) []byte {
	b = append(b, "# HELP "...)
	b = append(b, name...)
	b = append(b, ' ')
	b = append(b, help...)
	b = append(b, "\n# TYPE "...)
	b = append(b, name...)
	b = append(b, ' ')
	b = append(b, typ...)
	return append(b, '\n')
}

// appendLabel appends `{label="value"}` — or `{label="value",` when
// open is set, leaving the brace open for a following le pair.
func appendLabel(b []byte, label, value string, open bool) []byte {
	b = append(b, '{')
	b = append(b, label...)
	b = append(b, `="`...)
	b = append(b, value...)
	b = append(b, '"')
	if open {
		return append(b, ',')
	}
	return append(b, '}')
}

// appendSeconds renders a sim.Time as exact decimal seconds:
// "0.000125", "2.5", "31". No float arithmetic, so the bytes are a
// pure function of the integer nanosecond value.
func appendSeconds(b []byte, t sim.Time) []byte {
	if t < 0 {
		b = append(b, '-')
		t = -t
	}
	b = strconv.AppendInt(b, int64(t)/int64(sim.Second), 10)
	frac := int64(t) % int64(sim.Second)
	if frac == 0 {
		return b
	}
	var digits [9]byte
	for i := 8; i >= 0; i-- {
		digits[i] = byte('0' + frac%10)
		frac /= 10
	}
	n := 9
	for n > 0 && digits[n-1] == '0' {
		n--
	}
	b = append(b, '.')
	return append(b, digits[:n]...)
}
