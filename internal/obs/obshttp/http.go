// Package obshttp serves live introspection for the real-time engine:
// an expvar-style JSON snapshot of the observability gauges plus the
// standard net/http/pprof profiling handlers, on an opt-in listener.
//
// This package is deliberately outside taqvet's deterministic set — it
// exists only for the wall-clock prototype (internal/emu) and must
// never be imported by the discrete-event path. The snapshot callback
// it is given is invoked on HTTP-serving goroutines; callers that read
// engine-owned state must serialize it themselves (internal/emu does so
// by posting the read onto the engine).
package obshttp

import (
	"net"
	"net/http"
	"net/http/pprof"
	"strconv"
)

// Snapshot produces the current gauge names and values, in a stable
// order. It is called once per /vars request, possibly concurrently
// with the engine — implementations must provide their own
// serialization (see obs.GaugeSet.Snapshot and emu.Engine.Post).
type Snapshot func() (names []string, values []float64)

// Server is a running introspection endpoint.
type Server struct {
	ln  net.Listener
	srv *http.Server
}

// Serve starts an HTTP server on addr (e.g. "127.0.0.1:0") exposing
//
//	/vars          — JSON object of gauge name → value
//	/debug/pprof/  — the net/http/pprof handlers
//
// The pprof handlers are registered explicitly on a private mux so
// importing this package never touches http.DefaultServeMux.
func Serve(addr string, snapshot Snapshot) (*Server, error) {
	mux := http.NewServeMux()
	mux.HandleFunc("/vars", func(w http.ResponseWriter, _ *http.Request) {
		names, values := snapshot()
		buf := []byte{'{'}
		for i, n := range names {
			if i > 0 {
				buf = append(buf, ',')
			}
			buf = strconv.AppendQuote(buf, n)
			buf = append(buf, ':')
			buf = strconv.AppendFloat(buf, values[i], 'g', -1, 64)
		}
		buf = append(buf, '}', '\n')
		w.Header().Set("Content-Type", "application/json")
		w.Write(buf)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s := &Server{ln: ln, srv: &http.Server{Handler: mux}}
	go s.srv.Serve(ln)
	return s, nil
}

// Addr returns the listener's address (useful with port 0).
func (s *Server) Addr() string {
	if s == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// Close shuts the listener down. Safe on a nil receiver.
func (s *Server) Close() error {
	if s == nil {
		return nil
	}
	return s.srv.Close()
}
