// Package obshttp serves live introspection for the real-time engine:
// an expvar-style JSON snapshot of the observability gauges, the
// Prometheus text exposition of the metrics registry, and the standard
// net/http/pprof profiling handlers, on an opt-in listener.
//
// This package is deliberately outside taqvet's deterministic set — it
// exists only for the wall-clock prototype (internal/emu) and must
// never be imported by the discrete-event path. The snapshot callbacks
// it is given are invoked on HTTP-serving goroutines; callers that
// read engine-owned state must serialize it themselves (internal/emu
// posts gauge reads onto the engine; registry snapshots are atomic and
// need no serialization).
package obshttp

import (
	"net"
	"net/http"
	"net/http/pprof"
	"strconv"

	"taq/internal/obs"
)

// Snapshot produces the current gauge names and values, in a stable
// order. It is called once per /vars request, possibly concurrently
// with the engine — implementations must provide their own
// serialization (see obs.GaugeSet.Snapshot and emu.Engine.Post).
type Snapshot func() (names []string, values []float64)

// Options selects which introspection surfaces the endpoint exposes.
// Nil members leave their route unregistered.
type Options struct {
	// Vars backs /vars, a JSON object of gauge name → value.
	Vars Snapshot
	// Metrics backs /metrics, the Prometheus text exposition. The
	// callback typically closes over an *obs.Registry's Snapshot
	// method — safe to call from HTTP goroutines because registry
	// cells are atomics (the lock-free read edge). A sharded
	// middlebox closes over its bank's MergedSnapshot instead
	// (obs.MergedSnapshot folds the per-shard registries at this
	// same read edge; the write path never crosses shards).
	Metrics func() *obs.MetricsSnapshot
}

// NewMux builds the introspection handler without a listener, for
// httptest-driven tests and embedding:
//
//	/vars          — JSON object of gauge name → value
//	/metrics       — Prometheus text-format exposition
//	/debug/pprof/  — the net/http/pprof handlers
//
// The pprof handlers are registered explicitly on a private mux so
// importing this package never touches http.DefaultServeMux.
func NewMux(opts Options) *http.ServeMux {
	mux := http.NewServeMux()
	if opts.Vars != nil {
		vars := opts.Vars
		mux.HandleFunc("/vars", func(w http.ResponseWriter, _ *http.Request) {
			names, values := vars()
			buf := []byte{'{'}
			for i, n := range names {
				if i > 0 {
					buf = append(buf, ',')
				}
				buf = strconv.AppendQuote(buf, n)
				buf = append(buf, ':')
				buf = strconv.AppendFloat(buf, values[i], 'g', -1, 64)
			}
			buf = append(buf, '}', '\n')
			w.Header().Set("Content-Type", "application/json")
			w.Write(buf)
		})
	}
	if opts.Metrics != nil {
		metrics := opts.Metrics
		mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
			w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
			metrics().WriteText(w)
		})
	}
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Server is a running introspection endpoint.
type Server struct {
	ln  net.Listener
	srv *http.Server
}

// Serve starts an HTTP server on addr (e.g. "127.0.0.1:0") exposing
// the routes NewMux registers for opts.
func Serve(addr string, opts Options) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s := &Server{ln: ln, srv: &http.Server{Handler: NewMux(opts)}}
	go s.srv.Serve(ln)
	return s, nil
}

// Addr returns the listener's address (useful with port 0).
func (s *Server) Addr() string {
	if s == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// Close shuts the listener down. Safe on a nil receiver.
func (s *Server) Close() error {
	if s == nil {
		return nil
	}
	return s.srv.Close()
}
