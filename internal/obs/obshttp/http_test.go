package obshttp

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"taq/internal/obs"
	"taq/internal/sim"
)

func testOptions() Options {
	reg := obs.NewRegistry()
	c := reg.CounterVec("taq_drops_total", "drops", "class", []string{"recovery", "newflow"})
	h := reg.Histogram("taq_queue_delay_seconds", "delay", []sim.Time{sim.Second / 8, sim.Second})
	c.IncAt(0)
	c.IncAt(1)
	c.IncAt(1)
	h.Observe(sim.Second / 10)
	h.Observe(2 * sim.Second)
	return Options{
		Vars: func() ([]string, []float64) {
			return []string{"qlen", "loss_ewma"}, []float64{12, 0.125}
		},
		Metrics: reg.Snapshot,
	}
}

func TestMuxVarsJSONShape(t *testing.T) {
	srv := httptest.NewServer(NewMux(testOptions()))
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/vars")
	if err != nil {
		t.Fatalf("GET /vars: %v", err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	want := `{"qlen":12,"loss_ewma":0.125}` + "\n"
	if string(body) != want {
		t.Fatalf("/vars = %q, want %q", body, want)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Fatalf("Content-Type = %q", ct)
	}
}

func TestMuxMetricsExposition(t *testing.T) {
	srv := httptest.NewServer(NewMux(testOptions()))
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("Content-Type = %q", ct)
	}

	got := string(body)
	want := `# HELP taq_drops_total drops
# TYPE taq_drops_total counter
taq_drops_total{class="recovery"} 1
taq_drops_total{class="newflow"} 2
# HELP taq_queue_delay_seconds delay
# TYPE taq_queue_delay_seconds histogram
taq_queue_delay_seconds_bucket{le="0.125"} 1
taq_queue_delay_seconds_bucket{le="1"} 1
taq_queue_delay_seconds_bucket{le="+Inf"} 2
taq_queue_delay_seconds_sum 2.1
taq_queue_delay_seconds_count 2
`
	if got != want {
		t.Fatalf("/metrics mismatch:\ngot:\n%s\nwant:\n%s", got, want)
	}

	// Structural validity: every non-comment line is "name{...} value"
	// or "name value", buckets are cumulative, and the ordering is
	// stable across requests.
	for _, line := range strings.Split(strings.TrimRight(got, "\n"), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		if len(strings.Fields(line)) != 2 {
			t.Errorf("unparseable series line %q", line)
		}
	}
	resp2, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatalf("GET /metrics again: %v", err)
	}
	body2, _ := io.ReadAll(resp2.Body)
	resp2.Body.Close()
	if string(body2) != got {
		t.Fatal("two /metrics reads of an idle registry must be byte-identical")
	}
}

func TestMuxPprofRegistered(t *testing.T) {
	srv := httptest.NewServer(NewMux(testOptions()))
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/debug/pprof/cmdline")
	if err != nil {
		t.Fatalf("GET pprof: %v", err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("pprof status = %d", resp.StatusCode)
	}
}

func TestMuxOmittedRoutes(t *testing.T) {
	// Nil Options members leave their routes unregistered.
	srv := httptest.NewServer(NewMux(Options{}))
	defer srv.Close()
	for _, route := range []string{"/vars", "/metrics"} {
		resp, err := http.Get(srv.URL + route)
		if err != nil {
			t.Fatalf("GET %s: %v", route, err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Fatalf("%s status = %d, want 404", route, resp.StatusCode)
		}
	}
}

func TestServeRealListener(t *testing.T) {
	srv, err := Serve("127.0.0.1:0", testOptions())
	if err != nil {
		t.Skipf("cannot listen: %v", err)
	}
	defer srv.Close()
	resp, err := http.Get("http://" + srv.Addr() + "/metrics")
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics status = %d", resp.StatusCode)
	}
}

func TestNilServerSafe(t *testing.T) {
	var s *Server
	if s.Addr() != "" {
		t.Fatal("nil Addr not empty")
	}
	if err := s.Close(); err != nil {
		t.Fatalf("nil Close: %v", err)
	}
}
