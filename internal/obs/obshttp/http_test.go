package obshttp

import (
	"io"
	"net/http"
	"testing"
)

func TestServeVarsAndPprof(t *testing.T) {
	srv, err := Serve("127.0.0.1:0", func() ([]string, []float64) {
		return []string{"qlen", "loss_ewma"}, []float64{12, 0.125}
	})
	if err != nil {
		t.Skipf("cannot listen: %v", err)
	}
	defer srv.Close()

	resp, err := http.Get("http://" + srv.Addr() + "/vars")
	if err != nil {
		t.Fatalf("GET /vars: %v", err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	want := `{"qlen":12,"loss_ewma":0.125}` + "\n"
	if string(body) != want {
		t.Fatalf("/vars = %q, want %q", body, want)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Fatalf("Content-Type = %q", ct)
	}

	resp, err = http.Get("http://" + srv.Addr() + "/debug/pprof/cmdline")
	if err != nil {
		t.Fatalf("GET pprof: %v", err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("pprof status = %d", resp.StatusCode)
	}
}

func TestNilServerSafe(t *testing.T) {
	var s *Server
	if s.Addr() != "" {
		t.Fatal("nil Addr not empty")
	}
	if err := s.Close(); err != nil {
		t.Fatalf("nil Close: %v", err)
	}
}
