// Package obs is the observability layer shared by the discrete-event
// simulator and the real-time prototype engine: a structured
// event-tracing Recorder (packet lifecycle, tracker transitions,
// admission decisions) plus periodic time-series gauges, both designed
// so that a disabled recorder costs a single predictable branch and
// zero allocations on the per-packet hot path.
//
// Determinism contract: obs itself never reads a clock — every event
// carries a sim.Time supplied by the caller — so with the discrete-event
// engine the same seed produces a byte-identical event stream whatever
// the host, worker count, or map layout. Events are fixed-size values
// written into a preallocated ring; the JSONL encoder uses strconv
// only, no maps, no reflection.
//
// The live HTTP introspection endpoint for the real-time engine lives
// in the obshttp subpackage, which is deliberately outside taqvet's
// deterministic set — nothing in this package may import it.
package obs

import (
	"taq/internal/packet"
	"taq/internal/sim"
)

// Kind discriminates trace events.
type Kind uint8

// Event kinds, in the order they appear in the packet lifecycle.
const (
	// KindEnqueue: a packet was offered to the bottleneck queue.
	KindEnqueue Kind = iota
	// KindDequeue: a packet left the queue onto the link.
	KindDequeue
	// KindDrop: the discipline dropped a packet (the arriving one or a
	// queued victim); Class is the victim's TAQ class, -1 for baseline
	// disciplines, and Flag is 1 when the victim was a retransmission.
	KindDrop
	// KindTrackerTransition: the TAQ flow tracker moved a flow between
	// approximate TCP states (Fig 7); From/To are core.FlowState codes.
	KindTrackerTransition
	// KindTimeoutDetected: the tracker concluded a flow entered a
	// timeout (or repetitive-timeout) silence; emitted alongside the
	// transition into the silence state.
	KindTimeoutDetected
	// KindAdmissionDecision: §4.3 admission control ruled on a pool's
	// SYN; Flag is one of AdmissionBlocked/AdmissionAdmitted/
	// AdmissionForced.
	KindAdmissionDecision
	// KindClassChange: TAQ classified a flow's packet into a different
	// class than the flow's previous packet; From/To are core.Class
	// codes (From -1 on the first classification).
	KindClassChange

	numKinds = int(KindClassChange) + 1
)

// String implements fmt.Stringer with stable snake_case labels (these
// are the "ev" values of the JSONL schema; see docs/observability.md).
func (k Kind) String() string {
	switch k {
	case KindEnqueue:
		return "enqueue"
	case KindDequeue:
		return "dequeue"
	case KindDrop:
		return "drop"
	case KindTrackerTransition:
		return "tracker_transition"
	case KindTimeoutDetected:
		return "timeout_detected"
	case KindAdmissionDecision:
		return "admission_decision"
	case KindClassChange:
		return "class_change"
	default:
		return "unknown"
	}
}

// Admission decision codes carried in Event.Flag.
const (
	// AdmissionBlocked: the SYN was refused and the pool queued.
	AdmissionBlocked uint8 = iota
	// AdmissionAdmitted: the pool was admitted below the loss
	// threshold.
	AdmissionAdmitted
	// AdmissionForced: the pool was admitted by the Twait guarantee
	// despite the loss rate.
	AdmissionForced
)

// Event is one trace record. It is a fixed-size value with no pointers:
// recording copies fields into a preallocated ring slot, so a hot
// enqueue/dequeue path with tracing enabled still allocates nothing.
type Event struct {
	// Time is the virtual timestamp supplied by the caller (sim.Time
	// under the discrete-event engine; scaled wall time under emu).
	Time sim.Time
	// Kind selects which of the remaining fields are meaningful.
	Kind Kind
	// Pkt is the packet's wire kind for packet-carrying events.
	Pkt packet.Kind
	// Class is the TAQ class involved (assigned class on enqueue/
	// dequeue, victim class on drop), -1 when unknown.
	Class int8
	// From and To are state codes on tracker events and class codes on
	// class changes; -1 when absent.
	From, To int8
	// Flag is kind-specific: retransmission bit on drops, admission
	// decision code on admission events.
	Flag uint8
	// Flow and Pool identify the subject flow; Pool is packet.PoolNone
	// for unpooled flows.
	Flow packet.FlowID
	// Pool is the flow-pool (admission/session) identifier.
	Pool packet.PoolID
	// Seq is the packet's segment sequence, -1 when absent.
	Seq int32
	// Size is the packet's wire size in bytes, 0 when no packet is
	// attached.
	Size int32
}
