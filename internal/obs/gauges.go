package obs

import (
	"io"
	"strconv"

	"taq/internal/sim"
)

// SeriesSink consumes periodic gauge samples. WriteHeader is called
// once (before the first sample) with the gauge names in registration
// order; WriteSample is called with values in that same order and may
// not retain the slice.
type SeriesSink interface {
	WriteHeader(names []string) error
	WriteSample(t sim.Time, values []float64) error
	Close() error
}

// GaugeSet samples a set of registered gauge functions on a fixed
// sim-time cadence and writes each sample to a SeriesSink. Like the
// Recorder, it reads no clock of its own: sample times come from the
// driving Runner, so the series of a deterministic run is itself
// deterministic. The nil *GaugeSet is the disabled state.
//
// A GaugeSet is driven from a single sim.Runner and needs no locking.
type GaugeSet struct {
	run      sim.Runner
	interval sim.Time
	sink     SeriesSink
	names    []string
	fns      []func() float64
	values   []float64 // reused sample buffer
	timer    *sim.Timer
	started  bool
	err      error

	// Samples counts samples taken (including ones lost to a sink
	// error).
	Samples uint64
}

// NewGaugeSet returns a gauge set sampling every interval onto sink.
// A non-positive interval defaults to one sim second.
func NewGaugeSet(run sim.Runner, interval sim.Time, sink SeriesSink) *GaugeSet {
	if interval <= 0 {
		interval = sim.Second
	}
	return &GaugeSet{run: run, interval: interval, sink: sink}
}

// Register adds a gauge. Registration order is column order in the
// emitted series. Must be called before Start. Safe on a nil receiver.
func (g *GaugeSet) Register(name string, fn func() float64) {
	if g == nil {
		return
	}
	g.names = append(g.names, name)
	g.fns = append(g.fns, fn)
}

// RegisterInt adds a gauge backed by an integer-valued function.
func (g *GaugeSet) RegisterInt(name string, fn func() int) {
	if g == nil {
		return
	}
	g.Register(name, func() float64 { return float64(fn()) })
}

// Start writes the series header, takes an immediate sample, and arms
// the periodic tick. Safe on a nil receiver; a second Start is a no-op.
func (g *GaugeSet) Start() {
	if g == nil || g.started {
		return
	}
	g.started = true
	g.values = make([]float64, len(g.fns))
	if err := g.sink.WriteHeader(g.names); err != nil {
		g.err = err
		return
	}
	g.sample()
	var tick func()
	tick = func() {
		g.sample()
		g.timer = sim.Reschedule(g.run, g.timer, g.interval, tick)
	}
	g.timer = sim.Reschedule(g.run, g.timer, g.interval, tick)
}

// sample evaluates every gauge and writes one row.
func (g *GaugeSet) sample() {
	g.Samples++
	if g.err != nil {
		return
	}
	for i, fn := range g.fns {
		g.values[i] = fn()
	}
	if err := g.sink.WriteSample(g.run.Now(), g.values); err != nil {
		g.err = err
	}
}

// Snapshot evaluates every gauge now and returns (names, values); the
// slices are freshly allocated. Used by the live introspection endpoint
// (values must be read under the owning engine's serialization — see
// internal/emu). Returns nils on a nil receiver.
func (g *GaugeSet) Snapshot() ([]string, []float64) {
	if g == nil {
		return nil, nil
	}
	names := make([]string, len(g.names))
	copy(names, g.names)
	vals := make([]float64, len(g.fns))
	for i, fn := range g.fns {
		vals[i] = fn()
	}
	return names, vals
}

// Stop cancels the periodic tick and closes the sink, returning the
// sticky sink error, if any. Safe on a nil receiver.
func (g *GaugeSet) Stop() error {
	if g == nil {
		return nil
	}
	if g.timer != nil {
		g.timer.Cancel()
		g.timer = nil
	}
	if g.started {
		g.started = false
		if err := g.sink.Close(); err != nil && g.err == nil {
			g.err = err
		}
	}
	return g.err
}

// appendFloat renders v in the shortest round-trippable form ("3" for
// integral values), the shared number format of both series sinks.
func appendFloat(b []byte, v float64) []byte {
	if v == float64(int64(v)) {
		return strconv.AppendInt(b, int64(v), 10)
	}
	return strconv.AppendFloat(b, v, 'g', -1, 64)
}

// CSVSeries writes gauge samples as CSV: a header row of "t_ns" plus
// the gauge names, then one row per sample. The underlying writer is
// left open on Close (the caller owns the file).
type CSVSeries struct {
	w   io.Writer
	buf []byte
}

// NewCSVSeries returns a CSV series sink writing to w.
func NewCSVSeries(w io.Writer) *CSVSeries { return &CSVSeries{w: w} }

// WriteHeader implements SeriesSink.
func (s *CSVSeries) WriteHeader(names []string) error {
	s.buf = append(s.buf[:0], "t_ns"...)
	for _, n := range names {
		s.buf = append(s.buf, ',')
		s.buf = append(s.buf, n...)
	}
	s.buf = append(s.buf, '\n')
	_, err := s.w.Write(s.buf)
	return err
}

// WriteSample implements SeriesSink.
func (s *CSVSeries) WriteSample(t sim.Time, values []float64) error {
	s.buf = strconv.AppendInt(s.buf[:0], int64(t), 10)
	for _, v := range values {
		s.buf = append(s.buf, ',')
		s.buf = appendFloat(s.buf, v)
	}
	s.buf = append(s.buf, '\n')
	_, err := s.w.Write(s.buf)
	return err
}

// Close implements SeriesSink. The underlying writer is left open.
func (s *CSVSeries) Close() error { return nil }

// JSONLSeries writes each sample as one JSON object per line:
// {"t":<ns>,"<name>":<value>,...} with keys in registration order.
type JSONLSeries struct {
	w     io.Writer
	names []string
	buf   []byte
}

// NewJSONLSeries returns a JSONL series sink writing to w.
func NewJSONLSeries(w io.Writer) *JSONLSeries { return &JSONLSeries{w: w} }

// WriteHeader implements SeriesSink; JSONL emits no header row but
// retains the names as per-sample keys.
func (s *JSONLSeries) WriteHeader(names []string) error {
	s.names = append(s.names[:0], names...)
	return nil
}

// WriteSample implements SeriesSink.
func (s *JSONLSeries) WriteSample(t sim.Time, values []float64) error {
	s.buf = append(s.buf[:0], `{"t":`...)
	s.buf = strconv.AppendInt(s.buf, int64(t), 10)
	for i, v := range values {
		s.buf = appendKey(s.buf, s.names[i])
		s.buf = appendFloat(s.buf, v)
	}
	s.buf = append(s.buf, '}', '\n')
	_, err := s.w.Write(s.buf)
	return err
}

// Close implements SeriesSink. The underlying writer is left open.
func (s *JSONLSeries) Close() error { return nil }

// MemorySeries retains samples in memory, for tests and the live
// endpoint.
type MemorySeries struct {
	// Names is the header captured at Start.
	Names []string
	// Times and Values hold one entry per sample; Values rows are in
	// Names order.
	Times  []sim.Time
	Values [][]float64
}

// WriteHeader implements SeriesSink.
func (s *MemorySeries) WriteHeader(names []string) error {
	s.Names = append(s.Names[:0], names...)
	return nil
}

// WriteSample implements SeriesSink.
func (s *MemorySeries) WriteSample(t sim.Time, values []float64) error {
	row := make([]float64, len(values))
	copy(row, values)
	s.Times = append(s.Times, t)
	s.Values = append(s.Values, row)
	return nil
}

// Close implements SeriesSink.
func (s *MemorySeries) Close() error { return nil }
