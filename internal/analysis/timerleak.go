package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// TimerLeak flags a *sim.Timer returned by Schedule (or any call) whose
// result is discarded inside a method of a type that has a teardown
// path (Stop/Close/Shutdown/Teardown). Such a timer can never be
// canceled: after teardown it either fires into freed state or — in the
// real-time engine — keeps a goroutine timer alive. Types without a
// teardown path run to quiescence, so fire-and-forget is fine there.
var TimerLeak = &Analyzer{
	Name: "timerleak",
	Doc:  "flag discarded *sim.Timer results in types that have a teardown path",
	Run:  runTimerLeak,
}

var teardownNames = []string{"Stop", "Close", "Shutdown", "Teardown"}

func runTimerLeak(p *Pass) {
	info := p.Pkg.Info
	for _, f := range p.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Recv == nil || fd.Body == nil {
				continue
			}
			named := receiverNamed(info, fd)
			if named == nil {
				continue
			}
			td := teardownMethod(named)
			if td == "" {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				es, ok := n.(*ast.ExprStmt)
				if !ok {
					return true
				}
				call, ok := ast.Unparen(es.X).(*ast.CallExpr)
				if !ok {
					return true
				}
				if !isSimTimerPtr(info.TypeOf(call)) {
					return true
				}
				p.Reportf(es.Pos(),
					"discarded *sim.Timer from %s; %s has a teardown path (%s) — keep the timer and Cancel it there",
					exprString(call.Fun), named.Obj().Name(), td)
				return true
			})
		}
	}
}

// receiverNamed resolves the receiver's named type (through pointers).
func receiverNamed(info *types.Info, fd *ast.FuncDecl) *types.Named {
	if len(fd.Recv.List) == 0 {
		return nil
	}
	t := info.TypeOf(fd.Recv.List[0].Type)
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, _ := t.(*types.Named)
	return named
}

// teardownMethod returns the name of the type's teardown method, or "".
func teardownMethod(named *types.Named) string {
	ms := types.NewMethodSet(types.NewPointer(named))
	for i := 0; i < ms.Len(); i++ {
		name := ms.At(i).Obj().Name()
		for _, td := range teardownNames {
			if name == td {
				return name
			}
		}
	}
	return ""
}

// isSimTimerPtr reports whether t is *Timer of the sim package.
func isSimTimerPtr(t types.Type) bool {
	ptr, ok := t.(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := ptr.Elem().(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	pkgPath := named.Obj().Pkg().Path()
	return named.Obj().Name() == "Timer" &&
		(pkgPath == "taq/internal/sim" || strings.HasSuffix(pkgPath, "/sim") || pkgPath == "sim")
}
