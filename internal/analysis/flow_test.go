package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"reflect"
	"testing"
)

// flow_test.go drives the shared dataflow walker directly: mark(x)
// sets the fact 1 on x via PostCall, probe(x) records x's fact, and
// the test join maps any disagreement to 3 ("maybe"). The probe logs
// pin the branch-join, loop double-walk, assignment-kill, and closure
// -isolation semantics the analyzers depend on.
const flowSrc = `package p

func mark(x int)  {}
func probe(x int) {}

func branchOne(cond bool, x int) {
	if cond {
		mark(x)
	}
	probe(x)
}

func branchBoth(cond bool, x int) {
	if cond {
		mark(x)
	} else {
		mark(x)
	}
	probe(x)
}

func assignKills(x int) {
	mark(x)
	x = 0
	probe(x)
}

func loopCarried(x int) {
	for i := 0; i < 3; i++ {
		probe(x)
		mark(x)
	}
	probe(x)
}

func closureIsolated(x int) {
	mark(x)
	f := func() {
		probe(x)
	}
	f()
	probe(x)
}

func switchJoin(n int, x int) {
	switch n {
	case 0:
		mark(x)
	default:
	}
	probe(x)
}
`

func parseFlowSrc(t *testing.T) (*types.Info, map[string]*ast.FuncDecl) {
	t.Helper()
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "flow_test_src.go", flowSrc, 0)
	if err != nil {
		t.Fatalf("parsing flow source: %v", err)
	}
	info := &types.Info{
		Uses:       make(map[*ast.Ident]types.Object),
		Defs:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Types:      make(map[ast.Expr]types.TypeAndValue),
	}
	conf := types.Config{}
	if _, err := conf.Check("p", fset, []*ast.File{file}, info); err != nil {
		t.Fatalf("type-checking flow source: %v", err)
	}
	funcs := make(map[string]*ast.FuncDecl)
	for _, decl := range file.Decls {
		if fd, ok := decl.(*ast.FuncDecl); ok {
			funcs[fd.Name.Name] = fd
		}
	}
	return info, funcs
}

// runFlowProbe walks one function and returns the facts probe() saw,
// in hook-firing order.
func runFlowProbe(t *testing.T, info *types.Info, fd *ast.FuncDecl) []int {
	t.Helper()
	var log []int
	hooks := FlowHooks{
		Join: func(a, b int) int {
			if a == b {
				return a
			}
			return 3
		},
		PostCall: func(call *ast.CallExpr, st FlowState) {
			id, ok := call.Fun.(*ast.Ident)
			if !ok || len(call.Args) != 1 {
				return
			}
			r, refOK := RefOf(info, call.Args[0])
			switch id.Name {
			case "mark":
				if refOK {
					st.Set(r, 1)
				}
			case "probe":
				if refOK {
					log = append(log, st.Get(r))
				} else {
					log = append(log, -1)
				}
			}
		},
		Assign: func(lhs, rhs ast.Expr, tok token.Token, st FlowState) {
			if r, ok := RefOf(info, lhs); ok {
				st.Set(r, 0)
			}
		},
	}
	WalkFlow(info, fd.Body, nil, hooks)
	return log
}

func TestWalkFlow(t *testing.T) {
	info, funcs := parseFlowSrc(t)
	cases := []struct {
		fn   string
		want []int
	}{
		// Transfer on one path only: the merge point sees "maybe".
		{"branchOne", []int{3}},
		// Both arms set the fact: the merge point sees it definitely.
		{"branchBoth", []int{1}},
		// A plain reassignment kills the fact.
		{"assignKills", []int{0}},
		// First pass enters clean (0); the second pass starts from
		// entry ⊔ first-exit, so the loop-carried fact shows as maybe;
		// after the loop the body may not have run, so maybe again.
		{"loopCarried", []int{0, 3, 3}},
		// The closure body is walked with a fresh state (probe sees 0)
		// and leaks nothing back (the outer probe still sees 1).
		{"closureIsolated", []int{0, 1}},
		// switch clauses join like if branches.
		{"switchJoin", []int{3}},
	}
	for _, tc := range cases {
		fd := funcs[tc.fn]
		if fd == nil {
			t.Fatalf("function %s missing from flow source", tc.fn)
		}
		if got := runFlowProbe(t, info, fd); !reflect.DeepEqual(got, tc.want) {
			t.Errorf("%s: probe log = %v, want %v", tc.fn, got, tc.want)
		}
	}
}

func TestRefOfFieldPath(t *testing.T) {
	info, funcs := parseFlowSrc(t)
	fd := funcs["branchOne"]
	// x is a parameter: RefOf must resolve it with no Field.
	var xIdent *ast.Ident
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && id.Name == "x" && xIdent == nil {
			xIdent = id
		}
		return true
	})
	if xIdent == nil {
		t.Fatal("no use of x found")
	}
	r, ok := RefOf(info, xIdent)
	if !ok || r.Base == nil || r.Field != nil {
		t.Errorf("RefOf(x) = %+v, %v; want plain variable ref", r, ok)
	}
}
