package analysis

// callgraph.go computes the whole-program hotpath closure behind the
// v3 contract analyzers (noalloc, noblock, lockorder). A function is
// *hot* when a `//taq:hotpath` directive in its doc comment declares it
// a root, or when any hot function can reach it through the call graph.
// The graph is deliberately conservative where Go's static story runs
// out:
//
//   - a call through an interface method edges to that method on every
//     named type in the loaded program that implements the interface;
//   - a call through a function value (field, parameter, variable)
//     edges to every address-taken function or closure with an
//     identical signature;
//   - a function literal is its own node, named parent$N; creating the
//     literal does not make it hot — only calling it (directly, or
//     conservatively through a matching function value) does.
//
// Over-approximation is the right failure mode for a contract checker:
// a cold function mistakenly pulled into the closure produces a finding
// a human reviews once and suppresses with a rationale; a hot function
// mistakenly left out ships an allocation silently. The closure is
// meaningful only when the whole module is loaded (./...): packages
// outside the load set have no bodies and act as leaves.

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"io"
	"sort"
	"strings"
)

// FuncNode is one function in the whole-program call graph: a declared
// function or method (Fn != nil) or a function literal (Lit != nil).
type FuncNode struct {
	Fn   *types.Func  // declared function; nil for literals
	Lit  *ast.FuncLit // literal; nil for declared functions
	Pkg  *Package     // package the body lives in
	Body *ast.BlockStmt

	name  string
	pos   token.Pos
	root  bool
	taken bool // address-taken: referenced outside call position
	edges []edge
	// lits are the immediately nested function literals; their bodies
	// belong to their own nodes, so owners skip these ranges.
	lits []*ast.FuncLit
}

// Name returns the fully qualified function name, e.g.
// "(*taq/internal/core.TAQ).Enqueue" or "taq/internal/sim.After"; the
// N-th literal nested in F is "F$N".
func (n *FuncNode) Name() string { return n.name }

// IsRoot reports whether the node carries the //taq:hotpath directive.
func (n *FuncNode) IsRoot() bool { return n.root }

// OwnsPos reports whether pos lies in this node's body but not inside
// a nested function literal (which is its own node).
func (n *FuncNode) OwnsPos(pos token.Pos) bool {
	if n.Body == nil || pos < n.Body.Pos() || pos > n.Body.End() {
		return false
	}
	for _, l := range n.lits {
		if pos >= l.Pos() && pos <= l.End() {
			return false
		}
	}
	return true
}

type edge struct {
	to  *FuncNode
	pos token.Pos
	// viaValue marks conservative function-value edges (signature
	// matching); lockorder skips them to keep the lock graph grounded
	// in calls that demonstrably happen.
	viaValue bool
}

// Program holds the loaded packages plus the lazily computed call
// graph and hotpath closure, shared by every pass of one run.
type Program struct {
	Pkgs []*Package

	built bool
	nodes []*FuncNode // deterministic: source order per package
	byFn  map[*types.Func]*FuncNode
	byLit map[*ast.FuncLit]*FuncNode
	// hot maps each closure member to the nearest declared root.
	hot   map[*FuncNode]*FuncNode
	roots []*FuncNode

	named []*types.Named              // all named types, for Implements
	impls map[*types.Func][]*FuncNode // interface method -> implementations
	cands map[string][]*FuncNode      // signature key -> address-taken funcs

	lockOnce  bool
	lockCache []lockDiag

	// contr is the lazily built v4 annotation index (directives.go);
	// it needs only the ASTs and type info, never the call graph.
	contr *contracts
}

// NewProgram wraps pkgs; the call graph is built on first use.
func NewProgram(pkgs []*Package) *Program {
	return &Program{Pkgs: pkgs}
}

// Roots returns the declared hotpath roots, sorted by name.
func (p *Program) Roots() []*FuncNode {
	p.ensure()
	return p.roots
}

// HotNodes returns every function in the hotpath closure (roots
// included), sorted by package path then name.
func (p *Program) HotNodes() []*FuncNode {
	p.ensure()
	out := make([]*FuncNode, 0, len(p.hot))
	for n := range p.hot {
		out = append(out, n)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Pkg.Path != out[j].Pkg.Path {
			return out[i].Pkg.Path < out[j].Pkg.Path
		}
		return out[i].name < out[j].name
	})
	return out
}

// RootOf returns the nearest declared root that reaches n, or nil when
// n is not in the closure.
func (p *Program) RootOf(n *FuncNode) *FuncNode {
	p.ensure()
	return p.hot[n]
}

// NodeOf returns the node for a declared function, or nil.
func (p *Program) NodeOf(fn *types.Func) *FuncNode {
	p.ensure()
	return p.byFn[fn]
}

func (p *Program) ensure() {
	if p.built {
		return
	}
	p.built = true
	p.byFn = make(map[*types.Func]*FuncNode)
	p.byLit = make(map[*ast.FuncLit]*FuncNode)
	p.impls = make(map[*types.Func][]*FuncNode)
	p.cands = make(map[string][]*FuncNode)
	p.hot = make(map[*FuncNode]*FuncNode)

	// Pass 1: index declared functions and their nested literals.
	for _, pkg := range p.Pkgs {
		for _, f := range pkg.Files {
			for _, d := range f.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				n := &FuncNode{
					Fn:   fn,
					Pkg:  pkg,
					Body: fd.Body,
					name: fn.FullName(),
					pos:  fd.Pos(),
					root: hasHotpathDirective(fd.Doc),
				}
				p.byFn[fn] = n
				p.nodes = append(p.nodes, n)
				p.collectLits(n, fd.Body)
			}
		}
		p.collectNamed(pkg)
	}

	// Pass 2: address-taken marking, program-wide. A function referenced
	// anywhere outside call position (stored, passed, returned) can be
	// the target of any signature-compatible indirect call.
	for _, pkg := range p.Pkgs {
		for _, f := range pkg.Files {
			p.markTaken(pkg, f)
		}
	}
	for _, n := range p.nodes {
		if !n.taken {
			continue
		}
		key := sigKey(nodeSig(n))
		p.cands[key] = append(p.cands[key], n)
	}
	for _, c := range p.cands {
		sort.Slice(c, func(i, j int) bool { return c[i].name < c[j].name })
	}

	// Pass 3: edges.
	for _, n := range p.nodes {
		p.scanEdges(n)
	}

	// Pass 4: BFS the closure from the sorted roots.
	for _, n := range p.nodes {
		if n.root {
			p.roots = append(p.roots, n)
		}
	}
	sort.Slice(p.roots, func(i, j int) bool { return p.roots[i].name < p.roots[j].name })
	queue := make([]*FuncNode, 0, len(p.roots))
	for _, r := range p.roots {
		p.hot[r] = r
		queue = append(queue, r)
	}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		for _, e := range n.edges {
			if _, ok := p.hot[e.to]; !ok {
				p.hot[e.to] = p.hot[n]
				queue = append(queue, e.to)
			}
		}
	}
}

// collectLits creates child nodes for the literals directly nested in
// parent's body (recursively, each literal owning its own children).
func (p *Program) collectLits(parent *FuncNode, body ast.Node) {
	k := 0
	ast.Inspect(body, func(nd ast.Node) bool {
		if nd == body {
			return true
		}
		fl, ok := nd.(*ast.FuncLit)
		if !ok {
			return true
		}
		k++
		child := &FuncNode{
			Lit:  fl,
			Pkg:  parent.Pkg,
			Body: fl.Body,
			name: fmt.Sprintf("%s$%d", parent.name, k),
			pos:  fl.Pos(),
		}
		parent.lits = append(parent.lits, fl)
		p.byLit[fl] = child
		p.nodes = append(p.nodes, child)
		p.collectLits(child, fl.Body)
		return false
	})
}

func (p *Program) collectNamed(pkg *Package) {
	scope := pkg.Types.Scope()
	for _, name := range scope.Names() {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok || tn.IsAlias() {
			continue
		}
		if named, ok := tn.Type().(*types.Named); ok {
			p.named = append(p.named, named)
		}
	}
}

// markTaken walks one file and marks every function referenced outside
// call position as address-taken. A method value on an interface
// receiver marks every implementation.
func (p *Program) markTaken(pkg *Package, f *ast.File) {
	// Identifiers in call position: the Fun (or its Sel) of a CallExpr.
	inCall := make(map[*ast.Ident]bool)
	calledLits := make(map[*ast.FuncLit]bool)
	ast.Inspect(f, func(nd ast.Node) bool {
		call, ok := nd.(*ast.CallExpr)
		if !ok {
			return true
		}
		switch fun := ast.Unparen(call.Fun).(type) {
		case *ast.Ident:
			inCall[fun] = true
		case *ast.SelectorExpr:
			inCall[fun.Sel] = true
		case *ast.FuncLit:
			calledLits[fun] = true
		}
		return true
	})
	ast.Inspect(f, func(nd ast.Node) bool {
		switch x := nd.(type) {
		case *ast.Ident:
			if inCall[x] {
				return true
			}
			fn, ok := usedFunc(pkg.Info, x)
			if !ok {
				return true
			}
			if recv := fn.Type().(*types.Signature).Recv(); recv != nil && types.IsInterface(recv.Type()) {
				for _, m := range p.implementations(fn) {
					m.taken = true
				}
				return true
			}
			if n := p.byFn[fn.Origin()]; n != nil {
				n.taken = true
			}
		case *ast.FuncLit:
			if !calledLits[x] {
				if n := p.byLit[x]; n != nil {
					n.taken = true
				}
			}
		}
		return true
	})
}

func usedFunc(info *types.Info, id *ast.Ident) (*types.Func, bool) {
	obj := info.Uses[id]
	if obj == nil {
		obj = info.Defs[id]
	}
	fn, ok := obj.(*types.Func)
	return fn, ok
}

// scanEdges records n's outgoing call edges, walking only the region n
// owns (nested literal bodies belong to their own nodes).
func (p *Program) scanEdges(n *FuncNode) {
	ast.Inspect(n.Body, func(nd ast.Node) bool {
		if _, ok := nd.(*ast.FuncLit); ok {
			return false
		}
		if call, ok := nd.(*ast.CallExpr); ok {
			p.callEdges(n, call)
		}
		return true
	})
}

// callEdges resolves one call expression to zero or more edges.
func (p *Program) callEdges(n *FuncNode, call *ast.CallExpr) {
	info := n.Pkg.Info
	fun := ast.Unparen(call.Fun)

	// Direct call of a literal: func(){...}().
	if fl, ok := fun.(*ast.FuncLit); ok {
		if to := p.byLit[fl]; to != nil {
			n.edges = append(n.edges, edge{to: to, pos: call.Pos()})
		}
		return
	}
	// Conversions are not calls.
	if tv, ok := info.Types[fun]; ok && tv.IsType() {
		return
	}
	// Static callee (function, method, or interface method)?
	var callee *types.Func
	switch x := fun.(type) {
	case *ast.Ident:
		if fn, ok := usedFunc(info, x); ok {
			callee = fn
		} else if _, isBuiltin := info.Uses[x].(*types.Builtin); isBuiltin {
			return
		}
	case *ast.SelectorExpr:
		if fn, ok := usedFunc(info, x.Sel); ok {
			callee = fn
		}
	}
	if callee != nil {
		if recv := callee.Type().(*types.Signature).Recv(); recv != nil && types.IsInterface(recv.Type()) {
			for _, m := range p.implementations(callee) {
				n.edges = append(n.edges, edge{to: m, pos: call.Pos()})
			}
			return
		}
		if to := p.byFn[callee.Origin()]; to != nil {
			n.edges = append(n.edges, edge{to: to, pos: call.Pos()})
		}
		return
	}
	// Indirect call through a function value: conservatively edge to
	// every address-taken function with an identical signature.
	tv, ok := info.Types[fun]
	if !ok {
		return
	}
	sig, ok := tv.Type.Underlying().(*types.Signature)
	if !ok {
		return
	}
	for _, to := range p.cands[sigKey(sig)] {
		n.edges = append(n.edges, edge{to: to, pos: call.Pos(), viaValue: true})
	}
}

// implementations returns the concrete methods implementing interface
// method m across every named type in the program, sorted by name.
func (p *Program) implementations(m *types.Func) []*FuncNode {
	if got, ok := p.impls[m]; ok {
		return got
	}
	recv := m.Type().(*types.Signature).Recv()
	iface, ok := recv.Type().Underlying().(*types.Interface)
	if !ok {
		p.impls[m] = nil
		return nil
	}
	var out []*FuncNode
	for _, named := range p.named {
		if types.IsInterface(named) {
			continue
		}
		ptr := types.NewPointer(named)
		if !types.Implements(ptr, iface) && !types.Implements(named, iface) {
			continue
		}
		obj, _, _ := types.LookupFieldOrMethod(ptr, true, m.Pkg(), m.Name())
		if fm, ok := obj.(*types.Func); ok {
			if node := p.byFn[fm.Origin()]; node != nil {
				out = append(out, node)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	p.impls[m] = out
	return out
}

// nodeSig returns the node's signature as seen by a function value:
// method receivers are stripped (a method value has no receiver).
func nodeSig(n *FuncNode) *types.Signature {
	if n.Fn != nil {
		return n.Fn.Type().(*types.Signature)
	}
	return n.Pkg.Info.Types[n.Lit].Type.(*types.Signature)
}

// sigKey canonicalizes a signature (sans receiver) for indirect-call
// candidate matching.
func sigKey(sig *types.Signature) string {
	flat := types.NewSignatureType(nil, nil, nil, sig.Params(), sig.Results(), sig.Variadic())
	return types.TypeString(flat, func(p *types.Package) string { return p.Path() })
}

const hotpathPrefix = "taq:hotpath"

// hasHotpathDirective reports whether doc contains a //taq:hotpath
// line (optionally followed by a free-form rationale).
func hasHotpathDirective(doc *ast.CommentGroup) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		if word, _, ok := taqDirective(c.Text); ok && word == "hotpath" {
			return true
		}
	}
	return false
}

// taqDirective parses a "//taq:word rest..." comment. ok is false for
// comments that are not taq directives at all.
func taqDirective(text string) (word, rest string, ok bool) {
	text = strings.TrimSpace(strings.TrimPrefix(text, "//"))
	if !strings.HasPrefix(text, "taq:") {
		return "", "", false
	}
	body := strings.TrimPrefix(text, "taq:")
	if i := strings.IndexAny(body, " \t"); i >= 0 {
		return body[:i], strings.TrimSpace(body[i:]), true
	}
	return body, "", true
}

// WriteRoots prints the hotpath closure: the declared roots, then the
// closure size per package (declared functions only; literals count
// toward their parent's package). The output is byte-stable so CI can
// diff it against a committed baseline and catch a root losing its
// annotation.
func WriteRoots(w io.Writer, pkgs []*Package) error {
	prog := NewProgram(pkgs)
	perPkg := make(map[string]int)
	total := 0
	for _, n := range prog.HotNodes() {
		if n.Fn == nil {
			continue
		}
		perPkg[n.Pkg.Path]++
		total++
	}
	for _, r := range prog.Roots() {
		if _, err := fmt.Fprintf(w, "root %s\n", r.Name()); err != nil {
			return err
		}
	}
	paths := make([]string, 0, len(perPkg))
	for p := range perPkg {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	for _, p := range paths {
		if _, err := fmt.Fprintf(w, "package %s: %d hotpath functions\n", p, perPkg[p]); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintf(w, "total %d hotpath functions from %d roots\n", total, len(prog.Roots()))
	return err
}
