// Package allowfunc exercises //taq:allow(func) function-scoped
// suppression: one directive in the doc comment covers every finding
// line in the declaration, and -audit flags it stale when nothing in
// the function would fire.
package allowfunc

import "time"

// suppressed reads the wall clock twice; the single function-scoped
// allow covers both call sites.
//
//taq:allow(func) wallclock fixture: wall time is the point here
func suppressed() time.Time {
	a := time.Now()
	_ = a
	return time.Now()
}

func unsuppressed() time.Time {
	return time.Now() // want `time\.Now`
}

// staleScope allows an analyzer that can never fire here; the audit
// must report it stale when maprange runs.
//
//taq:allow(func) maprange nothing ranges over a map here
func staleScope() int {
	return 1
}
