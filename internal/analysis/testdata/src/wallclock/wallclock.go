// Package wallclock exercises the wallclock analyzer: forbidden host
// clock and global math/rand uses, allowed constructors and duration
// arithmetic, and //taq:allow suppression.
package wallclock

import (
	"math/rand"
	"time"
)

// Bad reads the host clock and the process-global random source.
func Bad() {
	_ = time.Now()                  // want `wall-clock time\.Now`
	time.Sleep(time.Millisecond)    // want `wall-clock time\.Sleep`
	_ = time.Since(time.Unix(0, 0)) // want `wall-clock time\.Since`
	_ = time.After(time.Second)     // want `wall-clock time\.After`
	_ = rand.Intn(10)               // want `global rand\.Intn`
	_ = rand.Float64()              // want `global rand\.Float64`
}

// BadValue passes the clock as a value; still a host-clock dependency.
func BadValue() func() time.Time {
	return time.Now // want `wall-clock time\.Now`
}

// Good uses a locally seeded source and pure duration arithmetic —
// exactly what deterministic code should do.
func Good() time.Duration {
	rng := rand.New(rand.NewSource(1))
	_ = rng.Intn(10)
	_ = rng.Float64()
	var zipf = rand.NewZipf(rng, 1.2, 1, 100)
	_ = zipf.Uint64()
	return 3 * time.Millisecond
}

// Allowed demonstrates the suppression comment, above and trailing.
func Allowed() {
	//taq:allow wallclock (timing a diagnostic dump, not simulation state)
	_ = time.Now()
	_ = time.Now() //taq:allow wallclock
}
