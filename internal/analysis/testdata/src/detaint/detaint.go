// Package detaint exercises the cross-function map-order taint
// analyzer: values derived from map iteration order must pass through
// sort before reaching scheduling, per-element calls, or float
// accumulation — even when the derivation and the sink live in
// different functions.
package detaint

import (
	"sort"

	"taq/internal/sim"
)

type sched struct {
	run   sim.Runner
	order []int
}

// unsortedKeys derives a slice whose order is map iteration order.
func unsortedKeys(m map[int]float64) []int {
	var ks []int
	//taq:allow maprange (this fixture feeds detaint, which reports at the sinks)
	for k := range m {
		ks = append(ks, k)
	}
	return ks
}

// sortedKeys sorts before returning: the taint is cleared.
func sortedKeys(m map[int]float64) []int {
	ks := unsortedKeys(m)
	sort.Ints(ks)
	return ks
}

// firstDelay returns an arbitrary (map-ordered) element.
func firstDelay(m map[sim.Time]bool) sim.Time {
	//taq:allow maprange (first-match overwrite is the taint under test)
	for d := range m {
		return d
	}
	return 0
}

// emit is an order-sensitive callee: its parameter reaches Schedule.
func emit(r sim.Runner, id int) {
	delay := sim.Time(id) * sim.Millisecond
	r.Schedule(delay, func() {}) // parameter id -> Schedule argument
}

// scheduleFirst feeds a map-ordered value into Schedule.
func scheduleFirst(r sim.Runner, m map[sim.Time]bool) {
	d := firstDelay(m)
	r.Schedule(d, func() {}) // want `Schedule argument derives from map iteration order in another function`
}

// iterateUnsorted drives callbacks in map order.
func iterateUnsorted(r sim.Runner, m map[int]float64) {
	ids := unsortedKeys(m)
	for _, id := range ids { // want `iterating ids, whose order derives from map iteration in another function`
		emit(r, id)
	}
}

// accumulateUnsorted sums floats in map order.
func accumulateUnsorted(m map[int]float64) float64 {
	var sum float64
	vals := unsortedVals(m)
	for _, v := range vals {
		sum += v // want `floating-point accumulation of a value whose order derives from map iteration`
	}
	return sum
}

// unsortedVals derives values in map order.
func unsortedVals(m map[int]float64) []float64 {
	var vs []float64
	//taq:allow maprange (this fixture feeds detaint, which reports at the sinks)
	for _, v := range m {
		vs = append(vs, v)
	}
	return vs
}

// forwardToSink passes a map-ordered value to a function whose
// parameter reaches Schedule.
func forwardToSink(r sim.Runner, m map[int]float64) {
	ids := unsortedKeys(m)
	for i := 0; i < len(ids); i++ {
		emit(r, ids[i]) // want `passes a map-iteration-ordered value to emit, which feeds it into Schedule argument`
	}
}

// stashOrder parks map-ordered data in a field; the sink is in
// another method.
func (s *sched) stashOrder(m map[int]float64) {
	s.order = unsortedKeys(m)
}

// replayOrder drains the tainted field into per-element calls.
func (s *sched) replayOrder() {
	for _, id := range s.order { // want `iterating s.order, whose order derives from map iteration in another function`
		emit(s.run, id)
	}
}

// --- non-findings ---

// scheduleSorted: the producer sorted, so callers are clean.
func scheduleSorted(r sim.Runner, m map[int]float64) {
	for _, id := range sortedKeys(m) {
		emit(r, id)
	}
}

// sortBeforeUse: the consumer sorts a tainted slice before using it.
func sortBeforeUse(r sim.Runner, m map[int]float64) {
	ids := unsortedKeys(m)
	sort.Ints(ids)
	for _, id := range ids {
		emit(r, id)
	}
}

// intCount accumulates integers, which is order-free.
func intCount(m map[int]float64) int {
	n := 0
	for _, id := range unsortedKeys(m) {
		n += id
	}
	return n
}
