// Package timerown exercises the timerown analyzer: sim.Reschedule
// takes ownership of the handle passed in, so the only valid handle
// afterwards is the returned one.
package timerown

import "taq/internal/sim"

type keeper struct {
	run   sim.Runner
	saved *sim.Timer
	byID  map[int]*sim.Timer
}

// useAfterTransfer reads a handle whose ownership moved to Reschedule.
func useAfterTransfer(r sim.Runner, t *sim.Timer) sim.Time {
	fresh := sim.Reschedule(r, t, sim.Second, func() {})
	_ = fresh
	return t.When() // want `use of t after its ownership was transferred to Reschedule`
}

// cancelAfterTransfer cancels a handle that may have been recycled.
func cancelAfterTransfer(r sim.Runner, t *sim.Timer) {
	fresh := sim.Reschedule(r, t, sim.Second, func() {})
	_ = fresh
	t.Cancel() // want `Cancel of t after Reschedule took ownership`
}

// doubleReschedule hands the same stale handle back a second time.
func doubleReschedule(r sim.Runner, t *sim.Timer) {
	a := sim.Reschedule(r, t, sim.Second, func() {})
	b := sim.Reschedule(r, t, 2*sim.Second, func() {}) // want `second Reschedule of t on this path`
	_, _ = a, b
}

// discardedResult drops the only valid replacement handle.
func (k *keeper) discardedResult(t *sim.Timer) {
	sim.Reschedule(k.run, t, sim.Second, func() {}) // want `discarded Reschedule result`
}

// escapeStore leaks a stale handle into a field and a map.
func (k *keeper) escapeStore(t *sim.Timer) {
	fresh := sim.Reschedule(k.run, t, sim.Second, func() {})
	_ = fresh
	k.saved = t   // want `stores t into a field, map, or slice`
	k.byID[0] = t // want `stores t into a field, map, or slice`
}

// branchMaybe transfers on only one path, so later use is a
// may-finding.
func branchMaybe(r sim.Runner, t *sim.Timer, cond bool) {
	if cond {
		fresh := sim.Reschedule(r, t, sim.Second, func() {})
		_ = fresh
	}
	t.Cancel() // want `Cancel of t, which may have been handed to Reschedule on another path`
}

// loopCarried transfers in one iteration and reuses the stale handle
// in the next.
func loopCarried(r sim.Runner, t *sim.Timer) {
	for i := 0; i < 3; i++ {
		fresh := sim.Reschedule(r, t, sim.Second, func() {}) // want `Reschedule of t, which may already have been handed to Reschedule on another path`
		_ = fresh
	}
}

// --- non-findings ---

// canonical is the sanctioned idiom: the returned handle replaces the
// one passed in, on a field just like the hot paths do.
func (k *keeper) canonical() {
	k.saved = sim.Reschedule(k.run, k.saved, sim.Second, func() {})
	k.saved = sim.Reschedule(k.run, k.saved, 2*sim.Second, func() {})
	k.saved.Cancel()
}

// scheduleHandleLateCancel: Schedule-returned handles are never
// recycled, so a late Cancel is always safe.
func scheduleHandleLateCancel(r sim.Runner) {
	t := r.Schedule(sim.Second, func() {})
	for i := 0; i < 10; i++ {
		_ = t.When()
	}
	t.Cancel()
}

// bothBranchesReplace re-assigns on every path before the use.
func bothBranchesReplace(r sim.Runner, t *sim.Timer, cond bool) {
	if cond {
		t = sim.Reschedule(r, t, sim.Second, func() {})
	} else {
		t = r.Schedule(2*sim.Second, func() {})
	}
	t.Cancel()
}

// reassignedAfterTransfer installs a fresh handle before the next use.
func reassignedAfterTransfer(r sim.Runner, t *sim.Timer) {
	t = sim.Reschedule(r, t, sim.Second, func() {})
	t = sim.Reschedule(r, t, 2*sim.Second, func() {})
	t.Cancel()
}
