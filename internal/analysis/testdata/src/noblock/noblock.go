// Package noblock exercises the blocking-operation checks and the
// NoblockAllow escape hatch (allowedEngine matches the fixture
// allowlist pattern, so its lock acquisition is not reported).
package noblock

import (
	"sync"
	"time"
)

// E bundles a mutex and a channel.
type E struct {
	mu sync.Mutex
	ch chan int
}

func work() {}

// Hot is the fixture root.
//
//taq:hotpath covers every blocking source
func Hot(e *E) {
	e.mu.Lock() // want `sync acquisition`
	e.mu.Unlock()
	_ = time.Now()              // want `wall-clock call`
	time.Sleep(time.Nanosecond) // want `wall-clock call`
	e.ch <- 1                   // want `channel send`
	<-e.ch                      // want `channel receive`
	select {                    // want `select may block`
	case v := <-e.ch: // want `channel receive`
		_ = v
	default:
	}
	go work()             // want `go statement`
	for v := range e.ch { // want `range over channel`
		_ = v
	}
	allowedEngine(e)
}

// allowedEngine matches Config.NoblockAllow; its acquisition is
// exempt even though it is on the hot path.
func allowedEngine(e *E) {
	e.mu.Lock()
	e.mu.Unlock()
}
