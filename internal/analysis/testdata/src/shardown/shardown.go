// Package shardown is the owner-package fixture for the
// shard-ownership contract: annotated state must not reach globals,
// goroutines, or exported returns. Cross-package escapes are exercised
// by the shardsub subpackage.
package shardown

// Owned is a shard-private record table.
//
//taq:shardowned per-shard flow state for the fixture
type Owned struct {
	recs []int64
}

// handles is a shard-private heap-handle slice type.
//
//taq:shardowned
type handles []int32

var leakedGlobal *Owned // want `package-level var leakedGlobal holds shard-owned shardown\.Owned`

var cleanGlobal int

var sink any

func stash(o *Owned) {
	sink = o // want `shard-owned shardown\.Owned stored into package-level sink`
	local := o
	_ = local // locals are fine
}

// Leak hands the table past its owner without a crossshard rationale.
func Leak(o *Owned) *Owned { // want `exported Leak returns shard-owned shardown\.Owned past its owner`
	return o
}

// Handoff is the audited aggregator surface: the same signature as
// Leak, made legal by the directive.
//
//taq:crossshard fixture aggregation API
func Handoff(o *Owned) *Owned {
	return o
}

// keepLocal is unexported, so returning shard state stays in-package.
func keepLocal(o *Owned) *Owned {
	return o
}

func spawn(o *Owned, h handles) {
	go worker(h) // want `shard-owned shardown\.handles passed into a goroutine`
	go func() {
		_ = o.recs // want `goroutine closure captures shard-owned shardown\.Owned o`
	}()
}

func worker(h handles) {
	_ = h
}

// dup exercises the builtin/stdlib exemptions: make, len, and copy are
// not escape surfaces.
func dup(h handles) handles {
	h2 := make(handles, len(h))
	copy(h2, h)
	return h2
}
