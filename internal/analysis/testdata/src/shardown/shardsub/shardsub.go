// Package shardsub is a foreign package relative to shardown's
// shard-owned types: handing them here must go through //taq:crossshard
// callees.
package shardsub

import "taq/internal/analysis/testdata/src/shardown"

func use(o *shardown.Owned) {
	_ = o
}

// aggregate is this package's audited crossing point.
//
//taq:crossshard fixture cross-package aggregation probe
func aggregate(o *shardown.Owned) {
	_ = o
}

func drive(o *shardown.Owned) {
	use(o)              // want `shard-owned shardown\.Owned passed across the package boundary to shardown/shardsub\.use`
	aggregate(o)        // crossshard callee: fine
	shardown.Handoff(o) // owner-package callee: fine
}
