// Package malformed exercises the -audit malformed-directive checks:
// a typoed directive word, an allow with no analyzer list, an allow
// with an empty name inside the list, and a hotpath directive outside
// a function's doc comment.
package malformed

//taq:alow wallclock typoed directive word
func A() {}

// B carries a bare allow with no analyzer list.
func B() {
	_ = 1 //taq:allow
}

// T is not a function, so hotpath cannot root here.
//
//taq:hotpath misplaced
type T struct{}

//taq:allow wallclock,,maprange empty name in the list
func C() {}

// D carries an allow naming an analyzer that does not exist.
func D() {
	_ = 2 //taq:allow wallclck misspelled analyzer name
}
