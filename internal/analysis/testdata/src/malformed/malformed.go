// Package malformed exercises the -audit malformed-directive checks:
// a typoed directive word, an allow with no analyzer list, an allow
// with an empty name inside the list, and a hotpath directive outside
// a function's doc comment.
package malformed

//taq:alow wallclock typoed directive word
func A() {}

// B carries a bare allow with no analyzer list.
func B() {
	_ = 1 //taq:allow
}

// T is not a function, so hotpath cannot root here.
//
//taq:hotpath misplaced
type T struct{}

//taq:allow wallclock,,maprange empty name in the list
func C() {}

// D carries an allow naming an analyzer that does not exist.
func D() {
	_ = 2 //taq:allow wallclck misspelled analyzer name
}

// E is a function, so shardowned cannot mark it.
//
//taq:shardowned misplaced on a function
func E() {}

// U is not a function, so crossshard cannot exempt it.
//
//taq:crossshard misplaced
type U struct{}

// F carries an allow(func) with no analyzer list.
//
//taq:allow(func)
func F() {}

func G() {
	// An allow(func) must live in a function's doc comment, not a body.
	//taq:allow(func) wallclock misplaced inside the body
	_ = 3
}

// V pins a layout with an unparseable spec.
//
//taq:layout size=notanumber
type V struct{ a int64 }

// W puts layout on a non-struct type.
//
//taq:layout size=8
type W int64

// X misplaces atomic on a type declaration.
//
//taq:atomic misplaced
type X struct {
	a int64
}

func atomicLocal() {
	//taq:atomic misplaced on a local var
	var y int64
	_ = y
}
