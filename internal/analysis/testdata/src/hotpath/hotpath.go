// Package hotpath exercises //taq:hotpath closure propagation: the
// root reaches code through interface dispatch, a stored function
// value, a method value, and a plain static call; an identical
// function outside the closure stays silent, and a //taq:allow
// suppresses a transitive finding only at the offending line.
package hotpath

// Discipline mirrors the queue-discipline interface shape.
type Discipline interface {
	Push(v int)
}

// Impl is the only implementation; its Push is hot via dispatch.
type Impl struct {
	m map[int]int
}

// Push implements Discipline.
func (i *Impl) Push(v int) {
	i.m[v] = v // want `map access`
}

// viaValue is reached only through the stored function value.
func viaValue(v int) {
	s := make([]int, v) // want `make allocates`
	_ = s
}

// holder carries the method reached as a method value.
type holder struct{ m map[int]int }

func (h *holder) viaMethodValue(v int) {
	delete(h.m, v) // want `map delete`
}

// transitive is reached by a static call; the second finding is
// suppressed exactly at its line (a directive also covers the line
// below it, so the suppressed case sits last), the first still fires.
func transitive(m map[int]int) {
	_ = m[2] // want `map access`
	_ = m[1] //taq:allow noalloc fixture: suppression is line-scoped
}

// notHot has the same body as transitive but is never reached: no
// findings.
func notHot(m map[int]int) {
	_ = m[1]
	_ = m[2]
}

var sink func(int)

// Root is the declared hot path.
//
//taq:hotpath fixture root
func Root(d Discipline, h *holder, m map[int]int) {
	d.Push(1) // interface dispatch pulls (*Impl).Push in
	f := viaValue
	sink = f
	sink(2) // indirect call: every address-taken func(int) is hot
	g := h.viaMethodValue
	g(3)
	transitive(m)
}
