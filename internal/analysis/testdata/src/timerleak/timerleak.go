// Package timerleak exercises the timerleak analyzer: a type with a
// teardown path must not discard *sim.Timer results; a type without
// one may fire-and-forget.
package timerleak

import "taq/internal/sim"

// Stoppable has a teardown path (Stop), so every timer must be
// cancellable from it.
type Stoppable struct {
	run   sim.Runner
	timer *sim.Timer
}

// Kick discards the timer: unstoppable after Stop.
func (s *Stoppable) Kick() {
	s.run.Schedule(1, func() {}) // want `discarded \*sim\.Timer`
}

// KickNested discards inside a closure; the enclosing method's type
// still owns the teardown path.
func (s *Stoppable) KickNested() {
	fn := func() {
		s.run.Schedule(1, func() {}) // want `discarded \*sim\.Timer`
	}
	fn()
}

// KickKept retains the handle; Stop can cancel it.
func (s *Stoppable) KickKept() {
	s.timer = s.run.Schedule(1, func() {})
}

// KickAllowed demonstrates suppression.
func (s *Stoppable) KickAllowed() {
	//taq:allow timerleak (fire-once timer gated by the engine stop flag)
	s.run.Schedule(1, func() {})
}

// Stop is the teardown path.
func (s *Stoppable) Stop() { s.timer.Cancel() }

// FireAndForget has no teardown path: it runs to quiescence, so
// discarding timers is fine.
type FireAndForget struct{ run sim.Runner }

// Kick is legal here.
func (f *FireAndForget) Kick() {
	f.run.Schedule(1, func() {})
}
