// Package maprange exercises the maprange analyzer: order-sensitive
// loop bodies (calls, float accumulation, unsorted appends, last-writer
// overwrites, channel sends) versus order-insensitive ones (integer
// counting, per-key writes, deletes, collect-then-sort).
package maprange

import "sort"

type sched struct{}

func (sched) Schedule(k int) {}

// Calls inside the body run in map order.
func calls(m map[int]int, s sched) {
	for k := range m { // want `calls s\.Schedule`
		s.Schedule(k)
	}
}

// Floating-point accumulation is not associative.
func floatAcc(m map[int]float64) float64 {
	t := 0.0
	for _, v := range m { // want `accumulates floating-point into t`
		t += v
	}
	return t
}

// Appending without sorting inherits map order.
func appendNoSort(m map[int]int) []int {
	var out []int
	for k := range m { // want `appends to out`
		out = append(out, k)
	}
	return out
}

// Plain overwrite of an outer variable: last writer wins in map order.
func lastWriter(m map[int]int) int {
	last := 0
	for k := range m { // want `overwrites last`
		last = k
	}
	return last
}

// Channel sends happen in map order.
func sends(m map[int]int, ch chan int) {
	for k := range m { // want `sends on a channel`
		ch <- k
	}
}

// The canonical fix: collect keys, sort, then iterate.
func collectThenSort(m map[int]int) []int {
	keys := make([]int, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	return keys
}

// Integer counting commutes; no finding.
func intCount(m map[int]int) int {
	n := 0
	for _, v := range m {
		if v > 0 {
			n++
		}
	}
	return n
}

// Writes indexed by the loop key touch disjoint slots; no finding.
func perKeyWrite(m, out map[int]int) {
	for k, v := range m {
		out[k] = v * 2
	}
}

// delete of visited keys is explicitly permitted by the spec.
func drain(m map[int]int) {
	for k := range m {
		delete(m, k)
	}
}

// Ranging a slice is never flagged.
func sliceRange(xs []float64) float64 {
	t := 0.0
	for _, v := range xs {
		t += v
	}
	return t
}

// Suppression with a determinism argument.
func allowed(m map[int]float64) float64 {
	t := 0.0
	//taq:allow maprange (coarse tolerance; order error below reporting precision)
	for _, v := range m {
		t += v
	}
	return t
}
