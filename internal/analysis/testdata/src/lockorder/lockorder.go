// Package lockorder exercises the mutex-acquisition graph: an
// inconsistent AB/BA ordering (a cycle), a consistent transitive
// ordering (clean), and a recursive acquisition through a helper.
package lockorder

import "sync"

// A, B and C are lock-carrying shard-like types.
type A struct{ mu sync.Mutex }
type B struct{ mu sync.Mutex }
type C struct{ mu sync.Mutex }

// ab acquires A then B.
func ab(a *A, b *B) {
	a.mu.Lock()
	b.mu.Lock() // want `lock-order cycle: \(lockorder.B\).mu acquired while \(lockorder.A\).mu is held`
	b.mu.Unlock()
	a.mu.Unlock()
}

// ba acquires B then A — inconsistent with ab.
func ba(a *A, b *B) {
	b.mu.Lock()
	a.mu.Lock() // want `lock-order cycle: \(lockorder.A\).mu acquired while \(lockorder.B\).mu is held`
	a.mu.Unlock()
	b.mu.Unlock()
}

// ac acquires C transitively while holding A; nothing orders C before
// A anywhere, so the edge is clean.
func ac(a *A, c *C) {
	a.mu.Lock()
	lockC(c)
	a.mu.Unlock()
}

func lockC(c *C) {
	c.mu.Lock()
	c.mu.Unlock()
}

// rec re-acquires a lock of type A through a helper while already
// holding one: with structural lock identity this is either a
// self-deadlock (same instance) or two shards taken without an agreed
// order.
func rec(a, other *A) {
	a.mu.Lock()
	lockA(other) // want `possible recursive acquisition: \(lockorder.A\).mu`
	a.mu.Unlock()
}

func lockA(a *A) {
	a.mu.Lock()
	a.mu.Unlock()
}

// Exercise keeps everything reachable and the compiler honest.
func Exercise() {
	var a A
	var b B
	var c C
	ab(&a, &b)
	ba(&a, &b)
	ac(&a, &c)
	rec(&a, &a)
}
