// Package atomicfield exercises the atomic-discipline contract:
// //taq:atomic fields and vars may be touched only through sync/atomic.
package atomicfield

import "sync/atomic"

// shared is a cross-shard aggregate header.
type shared struct {
	// hits is a plain-word counter under the atomic contract.
	//
	//taq:atomic cross-shard hit counter
	hits int64
	// gauge uses the atomic.* typed-field form of the contract.
	//
	//taq:atomic
	gauge atomic.Int64
	// name is unannotated: plain access stays legal.
	name string
}

// workers is the package-level var form of the contract.
//
//taq:atomic process-wide worker count
var workers atomic.Int64

func ok(s *shared) {
	atomic.AddInt64(&s.hits, 1)
	_ = atomic.LoadInt64(&s.hits)
	s.gauge.Store(3)
	_ = s.gauge.Load()
	workers.Add(1)
	_ = s.name
	t := shared{hits: 9} // composite-literal initialization is exempt
	_ = t.name
}

func bad(s *shared) {
	s.hits++     // want `plain write to atomic field shared\.hits`
	s.hits = 4   // want `plain write to atomic field shared\.hits`
	_ = s.hits   // want `plain read of atomic field shared\.hits`
	p := &s.hits // want `address of atomic field shared\.hits escapes`
	_ = p
	v := *s // want `copy of atomicfield\.shared smuggles its atomic field`
	keep(&v)
	w := workers // want `plain read of atomic var workers`
	_ = w
}

func keep(s *shared) {
	_ = s
}
