// Package simtime exercises the simtime units checker: sim.Time is
// virtual nanoseconds, time.Duration is wall nanoseconds, and float64
// seconds flow through metrics — mixing them needs explicit helpers.
package simtime

import (
	"time"

	"taq/internal/sim"
)

// bareLiteralArg passes raw nanoseconds where a duration was meant.
func bareLiteralArg(r sim.Runner) {
	r.Schedule(5, func() {}) // want `bare numeric literal 5 used as sim.Time`
}

// bareLiteralAssign assigns a unitless constant.
func bareLiteralAssign() sim.Time {
	var warmup sim.Time = 250 // want `bare numeric literal 250 used as sim.Time`
	timeout := sim.Time(0)
	timeout = 3 // want `bare numeric literal 3 used as sim.Time`
	return warmup + timeout
}

// bareLiteralCompare compares against raw nanoseconds.
func bareLiteralCompare(t sim.Time) bool {
	return t > 100 // want `bare numeric literal 100 used as sim.Time`
}

// floatConversion truncates raw float seconds to nanoseconds.
func floatConversion(seconds float64) sim.Time {
	return sim.Time(seconds) // want `truncates a raw float with no time-typed operand`
}

// secondsConversion converts a seconds value where ns are expected.
func secondsConversion(t sim.Time) sim.Time {
	return sim.Time(t.Seconds()) // want `converts a \*seconds\* value to nanoseconds without scaling`
}

// rawDurationConversion skips the explicit helpers.
func rawDurationConversion(d time.Duration, t sim.Time) (sim.Time, time.Duration) {
	return sim.Time(d), time.Duration(t) // want `raw conversion sim.Time\(d\) from time.Duration` `raw conversion time.Duration\(t\) from sim.Time`
}

// mixedUnitsCompare compares seconds to nanoseconds.
func mixedUnitsCompare(t sim.Time, cutoff sim.Time) bool {
	return t.Seconds() > float64(cutoff) // want `mixes a .Seconds\(\) value with a float64\(<time>\) nanosecond value`
}

// --- non-findings ---

// unitLiterals write every constant against a unit.
func unitLiterals(r sim.Runner) sim.Time {
	r.Schedule(5*sim.Second, func() {})
	r.Schedule(sim.Millisecond, func() {})
	warmup := 250 * sim.Microsecond
	return warmup
}

// explicitConversions use the sanctioned helpers.
func explicitConversions(d time.Duration, s float64) sim.Time {
	return sim.FromDuration(d) + sim.FromSeconds(s)
}

// dimensionlessScaling multiplies by raw factors, which is how jitter
// and backoff are written; the unit rides on the other operand.
func dimensionlessScaling(rtt sim.Time, cwnd float64, i int) sim.Time {
	paced := sim.Time(float64(rtt) / cwnd)
	backoff := rtt * sim.Time(i) * 2
	return paced + backoff
}

// zeroAndSentinel: 0 and -1 carry no unit by convention.
func zeroAndSentinel(t sim.Time) bool {
	var idle sim.Time = -1
	return t == 0 || t == idle
}

// sameUnitFloats compares seconds to seconds.
func sameUnitFloats(a, b sim.Time) bool {
	return a.Seconds() > b.Seconds()+0.5
}
