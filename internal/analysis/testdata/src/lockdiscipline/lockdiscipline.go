// Package lockdiscipline exercises the lockdiscipline analyzer: a
// struct with a sync.Mutex field has guarded fields (those any method
// mutates); exported methods must lock before touching them. Fields
// written only at construction are immutable and exempt.
package lockdiscipline

import "sync"

// Engine mirrors emu.Engine's shape: one mutex serializing callbacks.
type Engine struct {
	mu      sync.Mutex
	stopped bool  // guarded: written by Stop
	count   int   // guarded: written by BadCount
	seed    int64 // immutable: written only in New
}

// New is a constructor; its writes do not make fields guarded.
func New(seed int64) *Engine {
	e := &Engine{}
	e.seed = seed
	return e
}

// Stop locks before mutating: clean.
func (e *Engine) Stop() {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.stopped = true
}

// Good locks before reading guarded state: clean.
func (e *Engine) Good() bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.stopped
}

// Bad reads guarded state without the lock.
func (e *Engine) Bad() bool {
	return e.stopped // want `touches guarded field "stopped"`
}

// BadCount mutates guarded state without the lock.
func (e *Engine) BadCount() {
	e.count++ // want `touches guarded field "count"`
}

// Seed reads an immutable field: no lock needed.
func (e *Engine) Seed() int64 {
	return e.seed
}

// Deferred locks inside the goroutine closure before the access; the
// lexical lock-before-access rule accepts it.
func (e *Engine) Deferred() {
	go func() {
		e.mu.Lock()
		defer e.mu.Unlock()
		e.count++
	}()
}

// Racy demonstrates suppression.
func (e *Engine) Racy() bool {
	//taq:allow lockdiscipline (advisory read; staleness is acceptable)
	return e.stopped
}

// internalPeek is unexported: callers are expected to hold the lock.
func (e *Engine) internalPeek() bool { return e.stopped }

var _ = (&Engine{}).internalPeek
