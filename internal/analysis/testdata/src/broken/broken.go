// Package broken fails to type-check on purpose: the loader must turn
// this into a *LoadError naming the package, and the taqvet driver must
// exit 2 (never 1) when it sees one.
package broken

func typeError() int {
	return "not an int"
}
