// Package noalloc exercises every allocation source the noalloc
// analyzer flags, plus the capacity-evidence and pointer-shaped-boxing
// escapes that keep it quiet.
package noalloc

// T is a small heap candidate.
type T struct{ x int }

// S aggregates the stateful cases.
type S struct {
	buf  []int
	m    map[int]*T
	name string
}

func sink(v any) { _ = v }

func varia(vs ...int) int { return len(vs) }

func cleanup() {}

// Hot is the fixture root.
//
//taq:hotpath covers every allocation source
func Hot(s *S, vals []int, key string) {
	t := &T{x: 1}          // want `escapes to the heap`
	p := new(T)            // want `new\(\.\.\.\) allocates`
	m := make(map[int]int) // want `make allocates`
	_ = map[string]int{}   // want `map literal allocates`
	sl := []int{1, 2}      // want `slice literal allocates`
	_ = sl
	_ = p
	_ = m[0] // want `map access`

	s.buf = append(s.buf, 1)  // want `append to s.buf may grow`
	good := make([]int, 0, 8) // want `make allocates`
	good = append(good, 2)    // capacity evidence: no growth finding
	_ = good
	s.buf = s.buf[:0]
	s.buf = append(s.buf, 3) // reslice evidence: no growth finding

	_ = s.m[0]     // want `map access`
	s.m[1] = t     // want `map access`
	delete(s.m, 1) // want `map delete`

	b := []byte(key) // want `copies and allocates`
	_ = string(b)    // want `copies and allocates`

	sink(42) // want `boxes into interface`
	sink(t)  // pointer-shaped: no boxing finding

	_ = varia(1, 2)    // want `variadic call .* allocates`
	_ = varia()        // no variadic args: no finding
	_ = varia(vals...) // spread reuses the slice: no finding

	k := 3
	f := func() int { return k } // want `closure captures k`
	_ = f

	for i := 0; i < 2; i++ {
		defer cleanup() // want `defer inside a loop`
	}

	_ = s.name + key // want `string concatenation allocates`
}
