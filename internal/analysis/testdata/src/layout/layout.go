// Package layout exercises the memory-layout contract against the
// gc/amd64 size model: size pins, cache-line padding, and hot-core
// boundaries that must land on field edges.
package layout

// rec is pinned at its true size with a valid hot-core edge at the end
// of field b (offset 16).
//
//taq:layout size=24 align=8 hotbytes=0..16
type rec struct {
	a int64
	b int64
	c int64
}

// header is exactly one cache line.
//
//taq:layout size=64 align=64
type header struct {
	bins [8]int64
}

// drifted claims a size the struct no longer has — the "field added to
// the 200-byte record" failure mode.
//
//taq:layout size=16
type drifted struct { // want `struct layout\.drifted is 24 bytes; //taq:layout pins size=16`
	a int64
	b int64
	c int64
}

// misaligned wants cache-line padding it does not have.
//
//taq:layout align=64
type misaligned struct { // want `struct layout\.misaligned is 8 bytes, not padded to a multiple of align=64`
	a int64
}

// coldMoved pins a hot-core boundary no field edge matches: a ends at
// 8, b at 12, c at 16 — nothing ends at 10.
//
//taq:layout hotbytes=0..10
type coldMoved struct { // want `hotbytes=0\.\.10 does not land on layout\.coldMoved field boundaries`
	a int64
	b int32
	c int32
}
