package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
)

// Package is one type-checked package of the module, parsed from
// source with full syntax (comments included) and type information.
type Package struct {
	Path  string
	Name  string
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// LoadError reports a package that failed to list, parse, or
// type-check. Pkg is always set when the failing package is known, so
// drivers can name it and exit with a load-error status (2) rather
// than a findings status (1).
type LoadError struct {
	Pkg string // import path of the failing package ("" if unknown)
	Err error
}

func (e *LoadError) Error() string {
	if e.Pkg == "" {
		return e.Err.Error()
	}
	return fmt.Sprintf("package %s: %v", e.Pkg, e.Err)
}

func (e *LoadError) Unwrap() error { return e.Err }

// listedPackage is the subset of `go list -json` output we consume.
type listedPackage struct {
	ImportPath string
	Name       string
	Dir        string
	Export     string
	GoFiles    []string
	Standard   bool
	DepOnly    bool
	Incomplete bool
	Error      *struct{ Err string }
}

// Load resolves patterns (e.g. "./...") with the go tool, then parses
// and type-checks every matched package from source. Imports — both
// standard library and intra-module — are satisfied from the compiler
// export data that `go list -export` materializes in the build cache,
// so the loader needs no dependencies beyond the toolchain itself.
// dir is where the patterns are resolved (it must lie in the module).
func Load(dir string, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	// -e keeps go list exiting 0 on broken packages and reports them
	// structurally instead, so a mid-run failure still names the
	// package (the driver turns any *LoadError into exit status 2).
	args := append([]string{"list", "-e", "-deps", "-export", "-json", "--"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, &LoadError{Err: fmt.Errorf("go list %v: %v\n%s", patterns, err, stderr.String())}
	}

	exports := make(map[string]string) // import path -> export data file
	var targets []*listedPackage
	dec := json.NewDecoder(&stdout)
	for {
		var lp listedPackage
		if err := dec.Decode(&lp); err == io.EOF {
			break
		} else if err != nil {
			return nil, &LoadError{Err: fmt.Errorf("go list: decoding output: %v", err)}
		}
		if lp.Error != nil {
			return nil, &LoadError{Pkg: lp.ImportPath, Err: fmt.Errorf("%s", lp.Error.Err)}
		}
		if lp.Export != "" {
			exports[lp.ImportPath] = lp.Export
		}
		if !lp.DepOnly {
			p := lp
			targets = append(targets, &p)
		}
	}

	fset := token.NewFileSet()
	lookup := func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(f)
	}
	imp := importer.ForCompiler(fset, "gc", lookup)

	var out []*Package
	for _, lp := range targets {
		pkg, err := typecheck(fset, imp, lp)
		if err != nil {
			return nil, err
		}
		out = append(out, pkg)
	}
	return out, nil
}

func typecheck(fset *token.FileSet, imp types.Importer, lp *listedPackage) (*Package, error) {
	var files []*ast.File
	for _, name := range lp.GoFiles {
		f, err := parser.ParseFile(fset, filepath.Join(lp.Dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, &LoadError{Pkg: lp.ImportPath, Err: fmt.Errorf("parsing %s: %v", name, err)}
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	var firstErr error
	conf := types.Config{
		Importer: imp,
		Error: func(err error) {
			if firstErr == nil {
				firstErr = err
			}
		},
	}
	tpkg, err := conf.Check(lp.ImportPath, fset, files, info)
	if firstErr != nil {
		return nil, &LoadError{Pkg: lp.ImportPath, Err: fmt.Errorf("type-checking: %v", firstErr)}
	}
	if err != nil {
		return nil, &LoadError{Pkg: lp.ImportPath, Err: fmt.Errorf("type-checking: %v", err)}
	}
	return &Package{
		Path:  lp.ImportPath,
		Name:  tpkg.Name(),
		Dir:   lp.Dir,
		Fset:  fset,
		Files: files,
		Types: tpkg,
		Info:  info,
	}, nil
}
