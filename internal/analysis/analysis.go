// Package analysis implements taqvet, the repo-specific static
// analyzer suite that enforces the two invariants the compiler cannot:
//
//  1. Every package that runs under internal/sim must be bit-for-bit
//     deterministic: time and randomness may only come from the
//     sim.Runner (Now/Schedule/Rand), and nothing order-sensitive may
//     depend on Go's randomized map iteration order. A single stray
//     time.Now() or unsorted `for k := range m` silently de-reproduces
//     the paper figures.
//  2. internal/emu deliberately races real goroutine timers against one
//     engine mutex, so its lock discipline must hold.
//
// The suite is stdlib-only (go/ast, go/parser, go/types, go/token) to
// match the module's empty dependency set. See docs/static-analysis.md
// for the contract each analyzer enforces and the suppression syntax.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"path"
	"sort"
	"strings"
)

// Diagnostic is one finding, printable as "file:line:col: message [analyzer]".
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

// String renders the diagnostic in the canonical file:line:col form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s [%s]", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Message, d.Analyzer)
}

// Analyzer is one check in the suite.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass)
}

// Pass hands one package to one analyzer and collects its reports.
type Pass struct {
	Analyzer *Analyzer
	Cfg      *Config
	Pkg      *Package

	report func(Diagnostic)
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{
		Pos:      p.Pkg.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Config selects which packages each analyzer applies to.
type Config struct {
	// Deterministic lists the base names of packages bound by the
	// determinism contract (wallclock and maprange apply there).
	Deterministic []string
	// LockPackages lists the base names of packages whose mutex
	// discipline lockdiscipline checks.
	LockPackages []string
	// Analyzers to run; nil means All().
	Analyzers []*Analyzer
}

// DefaultConfig returns the repo's production configuration: the
// simulation-facing packages are deterministic; emu is lock-checked.
// emu, trace (the generator) and cmd/ are deliberately absent from the
// deterministic set — they are allowed wall-clock time.
func DefaultConfig() *Config {
	return &Config{
		Deterministic: []string{
			"sim", "tcp", "queue", "core", "link", "topology",
			"workload", "markov", "tfrc", "metrics", "packet", "capture",
			// obs is deterministic by construction (timestamps are
			// caller-supplied sim.Time); its obshttp subpackage serves
			// the wall-clock emu engine and is deliberately excluded.
			"obs",
			// Analyzer fixtures under internal/analysis/testdata/src.
			// Wildcard patterns never expand into testdata, so these
			// only match when a fixture is named explicitly, e.g.
			//   go run ./cmd/taqvet ./internal/analysis/testdata/src/wallclock
			"wallclock", "maprange", "timerleak", "detaint",
		},
		LockPackages: []string{"emu", "lockdiscipline"},
	}
}

// IsDeterministic reports whether the package at pkgPath is bound by
// the determinism contract. Matching is by the path's base name.
func (c *Config) IsDeterministic(pkgPath string) bool {
	return containsBase(c.Deterministic, pkgPath)
}

// IsLockChecked reports whether lockdiscipline applies to pkgPath.
func (c *Config) IsLockChecked(pkgPath string) bool {
	return containsBase(c.LockPackages, pkgPath)
}

func containsBase(list []string, pkgPath string) bool {
	base := path.Base(pkgPath)
	for _, name := range list {
		if name == base {
			return true
		}
	}
	return false
}

// All returns the full analyzer suite.
func All() []*Analyzer {
	return []*Analyzer{Wallclock, MapRange, TimerLeak, LockDiscipline, TimerOwn, SimTime, Detaint}
}

// Run applies the configured analyzers to every package and returns the
// surviving (non-suppressed) diagnostics sorted by position.
func Run(pkgs []*Package, cfg *Config) []Diagnostic {
	diags, _ := RunAudit(pkgs, cfg)
	return diags
}

// RunAudit is Run plus suppression auditing: the second result lists
// one "audit" diagnostic per //taq:allow directive that suppressed
// nothing. A directive is only judged stale against analyzers that
// actually ran, so -only subsets never produce false stales.
func RunAudit(pkgs []*Package, cfg *Config) (diags, stale []Diagnostic) {
	if cfg == nil {
		cfg = DefaultConfig()
	}
	analyzers := cfg.Analyzers
	if analyzers == nil {
		analyzers = All()
	}
	ran := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		ran[a.Name] = true
	}
	known := make(map[string]bool)
	for _, a := range All() {
		known[a.Name] = true
	}
	var out []Diagnostic
	seen := make(map[string]bool)
	for _, pkg := range pkgs {
		allow := collectAllows(pkg)
		for _, a := range analyzers {
			pass := &Pass{Analyzer: a, Cfg: cfg, Pkg: pkg}
			pass.report = func(d Diagnostic) {
				if allow.suppressed(d) {
					return
				}
				// The dataflow walker revisits loop bodies, so an
				// analyzer may report one defect twice; keep the first.
				key := d.String()
				if !seen[key] {
					seen[key] = true
					out = append(out, d)
				}
			}
			a.Run(pass)
		}
		stale = append(stale, allow.stale(ran, known)...)
	}
	sortDiagnostics(out)
	sortDiagnostics(stale)
	return out, stale
}

func sortDiagnostics(out []Diagnostic) {
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
}

// allowSet records //taq:allow suppression comments: a diagnostic is
// suppressed when an allow comment naming its analyzer sits on the same
// line or on the line immediately above. Each directive tracks whether
// it ever suppressed anything, so RunAudit can flag stale ones.
type allowSet struct {
	// byFile maps filename -> line -> directives declared there.
	byFile  map[string]map[int][]*allowEntry
	entries []*allowEntry
}

// allowEntry is one analyzer name of one //taq:allow directive.
type allowEntry struct {
	pos  token.Position
	name string
	used bool
}

const allowPrefix = "taq:allow"

func collectAllows(pkg *Package) *allowSet {
	s := &allowSet{byFile: make(map[string]map[int][]*allowEntry)}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				if !strings.HasPrefix(text, allowPrefix) {
					continue
				}
				rest := strings.TrimSpace(strings.TrimPrefix(text, allowPrefix))
				fields := strings.Fields(rest)
				if len(fields) == 0 {
					continue
				}
				// First token is the analyzer list; anything after it
				// is free-form rationale.
				names := strings.Split(fields[0], ",")
				pos := pkg.Fset.Position(c.Pos())
				lines := s.byFile[pos.Filename]
				if lines == nil {
					lines = make(map[int][]*allowEntry)
					s.byFile[pos.Filename] = lines
				}
				for _, name := range names {
					e := &allowEntry{pos: pos, name: name}
					lines[pos.Line] = append(lines[pos.Line], e)
					s.entries = append(s.entries, e)
				}
			}
		}
	}
	return s
}

func (s *allowSet) suppressed(d Diagnostic) bool {
	lines := s.byFile[d.Pos.Filename]
	if lines == nil {
		return false
	}
	hit := false
	for _, line := range []int{d.Pos.Line, d.Pos.Line - 1} {
		for _, e := range lines[line] {
			if e.name == d.Analyzer || e.name == "all" {
				e.used = true
				hit = true
			}
		}
	}
	return hit
}

// stale returns one audit diagnostic per directive that suppressed
// nothing. Only analyzers in ran are judged (a directive for an
// analyzer that did not run this invocation is not stale); names not
// in known are always reported, as misspellings suppress nothing ever.
func (s *allowSet) stale(ran, known map[string]bool) []Diagnostic {
	var out []Diagnostic
	for _, e := range s.entries {
		if e.used {
			continue
		}
		switch {
		case !known[e.name] && e.name != "all":
			out = append(out, Diagnostic{
				Pos:      e.pos,
				Analyzer: "audit",
				Message:  fmt.Sprintf("//taq:allow names unknown analyzer %q (typo? see taqvet -list)", e.name),
			})
		case e.name == "all" || ran[e.name]:
			out = append(out, Diagnostic{
				Pos:      e.pos,
				Analyzer: "audit",
				Message:  fmt.Sprintf("stale //taq:allow %s: it suppresses no finding — delete the directive", e.name),
			})
		}
	}
	return out
}

// exprString renders a (small) expression for diagnostics.
func exprString(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return exprString(e.X) + "." + e.Sel.Name
	case *ast.IndexExpr:
		return exprString(e.X) + "[...]"
	case *ast.CallExpr:
		return exprString(e.Fun) + "(...)"
	case *ast.StarExpr:
		return "*" + exprString(e.X)
	case *ast.ParenExpr:
		return exprString(e.X)
	default:
		return "<expr>"
	}
}
