// Package analysis implements taqvet, the repo-specific static
// analyzer suite that enforces the two invariants the compiler cannot:
//
//  1. Every package that runs under internal/sim must be bit-for-bit
//     deterministic: time and randomness may only come from the
//     sim.Runner (Now/Schedule/Rand), and nothing order-sensitive may
//     depend on Go's randomized map iteration order. A single stray
//     time.Now() or unsorted `for k := range m` silently de-reproduces
//     the paper figures.
//  2. internal/emu deliberately races real goroutine timers against one
//     engine mutex, so its lock discipline must hold.
//
// The suite is stdlib-only (go/ast, go/parser, go/types, go/token) to
// match the module's empty dependency set. See docs/static-analysis.md
// for the contract each analyzer enforces and the suppression syntax.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"path"
	"sort"
	"strings"
)

// Diagnostic is one finding, printable as "file:line:col: message [analyzer]".
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

// String renders the diagnostic in the canonical file:line:col form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s [%s]", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Message, d.Analyzer)
}

// Analyzer is one check in the suite.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass)
}

// Pass hands one package to one analyzer and collects its reports.
type Pass struct {
	Analyzer *Analyzer
	Cfg      *Config
	Pkg      *Package
	// Prog is the whole-program context (call graph, hotpath closure)
	// shared by every pass of one run; the v3 contract analyzers need
	// it, the per-package analyzers ignore it.
	Prog *Program

	report func(Diagnostic)
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{
		Pos:      p.Pkg.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Config selects which packages each analyzer applies to.
type Config struct {
	// Deterministic lists the base names of packages bound by the
	// determinism contract (wallclock and maprange apply there).
	Deterministic []string
	// LockPackages lists the base names of packages whose mutex
	// discipline lockdiscipline checks.
	LockPackages []string
	// NoallocPackages lists the base names of packages where noalloc
	// reports findings on hotpath-closure functions. The closure is
	// always computed whole-program; this scopes only the reporting,
	// so conservatively reached setup code outside the packet path
	// does not drown the signal.
	NoallocPackages []string
	// NoblockPackages is the same scope for noblock. It includes emu
	// (whose engine-lock pattern is then allowlisted by name), since
	// hot code dispatches into the emu engine through sim.Runner.
	NoblockPackages []string
	// NoblockAllow lists substrings of fully qualified function names
	// (types.Func.FullName form) exempt from noblock — the emu
	// engine-lock pattern, whose pairing lockdiscipline checks.
	NoblockAllow []string
	// Analyzers to run; nil means All().
	Analyzers []*Analyzer
}

// DefaultConfig returns the repo's production configuration: the
// simulation-facing packages are deterministic; emu is lock-checked.
// emu, trace (the generator) and cmd/ are deliberately absent from the
// deterministic set — they are allowed wall-clock time.
func DefaultConfig() *Config {
	return &Config{
		Deterministic: []string{
			"sim", "tcp", "queue", "core", "link", "topology",
			"workload", "markov", "tfrc", "metrics", "packet", "capture",
			// obs is deterministic by construction (timestamps are
			// caller-supplied sim.Time); its obshttp subpackage serves
			// the wall-clock emu engine and is deliberately excluded.
			"obs",
			// Analyzer fixtures under internal/analysis/testdata/src.
			// Wildcard patterns never expand into testdata, so these
			// only match when a fixture is named explicitly, e.g.
			//   go run ./cmd/taqvet ./internal/analysis/testdata/src/wallclock
			"wallclock", "maprange", "timerleak", "detaint", "allowfunc",
		},
		LockPackages: []string{"emu", "lockdiscipline"},
		NoallocPackages: []string{
			"sim", "queue", "link", "core", "packet", "obs",
			// Fixtures (matched only when named explicitly, as above).
			"hotpath", "noalloc",
		},
		NoblockPackages: []string{
			"sim", "queue", "link", "core", "packet", "obs", "emu",
			"hotpath", "noblock",
		},
		NoblockAllow: []string{
			// The emu engine serializes real-timer callbacks through
			// one mutex by design; lockdiscipline checks the pairing.
			"taq/internal/emu.Engine",
			// Fixture hook for the allowlist path.
			"noblock.allowedEngine",
		},
	}
}

// IsDeterministic reports whether the package at pkgPath is bound by
// the determinism contract. Matching is by the path's base name.
func (c *Config) IsDeterministic(pkgPath string) bool {
	return containsBase(c.Deterministic, pkgPath)
}

// IsLockChecked reports whether lockdiscipline applies to pkgPath.
func (c *Config) IsLockChecked(pkgPath string) bool {
	return containsBase(c.LockPackages, pkgPath)
}

// IsNoallocChecked reports whether noalloc reports findings in pkgPath.
func (c *Config) IsNoallocChecked(pkgPath string) bool {
	return containsBase(c.NoallocPackages, pkgPath)
}

// IsNoblockChecked reports whether noblock reports findings in pkgPath.
func (c *Config) IsNoblockChecked(pkgPath string) bool {
	return containsBase(c.NoblockPackages, pkgPath)
}

// NoblockAllowed reports whether the qualified function name matches
// the noblock allowlist.
func (c *Config) NoblockAllowed(funcName string) bool {
	for _, pat := range c.NoblockAllow {
		if strings.Contains(funcName, pat) {
			return true
		}
	}
	return false
}

func containsBase(list []string, pkgPath string) bool {
	base := path.Base(pkgPath)
	for _, name := range list {
		if name == base {
			return true
		}
	}
	return false
}

// All returns the full analyzer suite.
func All() []*Analyzer {
	return []*Analyzer{Wallclock, MapRange, TimerLeak, LockDiscipline, TimerOwn, SimTime, Detaint, NoAlloc, NoBlock, LockOrder, ShardOwn, AtomicField, Layout}
}

// Run applies the configured analyzers to every package and returns the
// surviving (non-suppressed) diagnostics sorted by position.
func Run(pkgs []*Package, cfg *Config) []Diagnostic {
	diags, _ := RunAudit(pkgs, cfg)
	return diags
}

// RunAudit is Run plus annotation auditing: the second result lists
// one "audit" diagnostic per //taq:allow directive that suppressed
// nothing, plus one per malformed //taq: directive (unknown directive
// word, empty analyzer list, misplaced //taq:hotpath) — a misspelled
// suppression must fail -audit, not silently disable a gate. A
// directive is only judged stale against analyzers that actually ran,
// so -only subsets never produce false stales.
func RunAudit(pkgs []*Package, cfg *Config) (diags, stale []Diagnostic) {
	if cfg == nil {
		cfg = DefaultConfig()
	}
	analyzers := cfg.Analyzers
	if analyzers == nil {
		analyzers = All()
	}
	ran := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		ran[a.Name] = true
	}
	known := make(map[string]bool)
	for _, a := range All() {
		known[a.Name] = true
	}
	prog := NewProgram(pkgs)
	var out []Diagnostic
	seen := make(map[string]bool)
	for _, pkg := range pkgs {
		allow := collectAllows(pkg)
		for _, a := range analyzers {
			pass := &Pass{Analyzer: a, Cfg: cfg, Pkg: pkg, Prog: prog}
			pass.report = func(d Diagnostic) {
				if allow.suppressed(d) {
					return
				}
				// The dataflow walker revisits loop bodies, so an
				// analyzer may report one defect twice; keep the first.
				key := d.String()
				if !seen[key] {
					seen[key] = true
					out = append(out, d)
				}
			}
			a.Run(pass)
		}
		stale = append(stale, allow.stale(ran, known)...)
		stale = append(stale, collectMalformed(pkg)...)
	}
	SortDiagnostics(out)
	SortDiagnostics(stale)
	return out, stale
}

// SortDiagnostics orders diagnostics by (file, line, column, analyzer,
// message) — the canonical order every output format relies on for
// byte-stable output across packages.
func SortDiagnostics(out []Diagnostic) {
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
}

// allowSet records //taq:allow suppression comments: a diagnostic is
// suppressed when an allow comment naming its analyzer sits on the same
// line or on the line immediately above, or when a //taq:allow(func)
// directive in the enclosing function's doc comment names it. Each
// directive tracks whether it ever suppressed anything, so RunAudit can
// flag stale ones.
type allowSet struct {
	// byFile maps filename -> line -> directives declared there.
	byFile map[string]map[int][]*allowEntry
	// ranged maps filename -> function-scoped allow(func) directives.
	ranged  map[string][]*allowEntry
	entries []*allowEntry
}

// allowEntry is one analyzer name of one //taq:allow or
// //taq:allow(func) directive.
type allowEntry struct {
	pos  token.Position
	name string
	used bool
	// scoped entries suppress any line of the annotated function's
	// declaration range instead of one source line.
	scoped   bool
	fromLine int
	toLine   int
}

func collectAllows(pkg *Package) *allowSet {
	s := &allowSet{
		byFile: make(map[string]map[int][]*allowEntry),
		ranged: make(map[string][]*allowEntry),
	}
	// Line ranges for //taq:allow(func): a directive in a function's
	// doc comment suppresses findings anywhere in the declaration.
	funcRange := make(map[*ast.Comment][2]int)
	for _, f := range pkg.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Doc == nil || fd.Body == nil {
				continue
			}
			r := [2]int{pkg.Fset.Position(fd.Pos()).Line, pkg.Fset.Position(fd.End()).Line}
			for _, c := range fd.Doc.List {
				funcRange[c] = r
			}
		}
	}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				word, rest, ok := taqDirective(c.Text)
				if !ok || (word != "allow" && word != "allow(func)") {
					continue
				}
				fields := strings.Fields(rest)
				if len(fields) == 0 {
					continue // malformed; collectMalformed reports it
				}
				// First token is the analyzer list; anything after it
				// is free-form rationale.
				names := strings.Split(fields[0], ",")
				pos := pkg.Fset.Position(c.Pos())
				if word == "allow(func)" {
					r, ok := funcRange[c]
					if !ok {
						continue // misplaced; collectMalformed reports it
					}
					for _, name := range names {
						if name == "" {
							continue // malformed; collectMalformed reports it
						}
						e := &allowEntry{pos: pos, name: name, scoped: true, fromLine: r[0], toLine: r[1]}
						s.ranged[pos.Filename] = append(s.ranged[pos.Filename], e)
						s.entries = append(s.entries, e)
					}
					continue
				}
				lines := s.byFile[pos.Filename]
				if lines == nil {
					lines = make(map[int][]*allowEntry)
					s.byFile[pos.Filename] = lines
				}
				for _, name := range names {
					if name == "" {
						continue // malformed; collectMalformed reports it
					}
					e := &allowEntry{pos: pos, name: name}
					lines[pos.Line] = append(lines[pos.Line], e)
					s.entries = append(s.entries, e)
				}
			}
		}
	}
	return s
}

// collectMalformed reports //taq: directives the suite cannot honor:
// unknown directive words (a typo like //taq:alow silently disables a
// gate), allow/allow(func) directives with an empty or partially empty
// analyzer list, directives outside the declaration kind they annotate
// (hotpath/crossshard/allow(func) on functions, shardowned/layout on
// type declarations, atomic on struct fields or package-level vars),
// and layout specs that fail to parse. They travel with the stale list
// so -audit exits non-zero on them. The checks use only the ASTs —
// never type info — so FuzzParseDirectives can drive them directly.
func collectMalformed(pkg *Package) []Diagnostic {
	// Comments that legitimately host function-level directives
	// (//taq:hotpath, //taq:crossshard, //taq:allow(func)): doc
	// comments of function declarations with bodies.
	funcDoc := make(map[*ast.Comment]bool)
	// Doc comments of type declarations, for shardowned/layout.
	typeSpecOf := make(map[*ast.Comment]*ast.TypeSpec)
	// Comments attached to named fields of top-level struct types, and
	// to package-level var specs, for //taq:atomic.
	fieldOf := make(map[*ast.Comment]*ast.Field)
	varDoc := make(map[*ast.Comment]bool)
	for _, f := range pkg.Files {
		for _, d := range f.Decls {
			switch d := d.(type) {
			case *ast.FuncDecl:
				if d.Doc == nil || d.Body == nil {
					continue
				}
				for _, c := range d.Doc.List {
					funcDoc[c] = true
				}
			case *ast.GenDecl:
				mark := func(doc *ast.CommentGroup, f func(*ast.Comment)) {
					if doc == nil {
						return
					}
					for _, c := range doc.List {
						f(c)
					}
				}
				if d.Tok == token.TYPE {
					for _, s := range d.Specs {
						ts, ok := s.(*ast.TypeSpec)
						if !ok {
							continue
						}
						markTS := func(c *ast.Comment) { typeSpecOf[c] = ts }
						if len(d.Specs) == 1 {
							mark(d.Doc, markTS)
						}
						mark(ts.Doc, markTS)
						mark(ts.Comment, markTS)
						if st, ok := ts.Type.(*ast.StructType); ok {
							for _, fld := range st.Fields.List {
								markFld := func(c *ast.Comment) { fieldOf[c] = fld }
								mark(fld.Doc, markFld)
								mark(fld.Comment, markFld)
							}
						}
					}
				}
				if d.Tok == token.VAR {
					for _, s := range d.Specs {
						vs, ok := s.(*ast.ValueSpec)
						if !ok {
							continue
						}
						markVar := func(c *ast.Comment) { varDoc[c] = true }
						if len(d.Specs) == 1 {
							mark(d.Doc, markVar)
						}
						mark(vs.Doc, markVar)
						mark(vs.Comment, markVar)
					}
				}
			}
		}
	}
	var out []Diagnostic
	report := func(c *ast.Comment, format string, args ...any) {
		out = append(out, Diagnostic{
			Pos:      pkg.Fset.Position(c.Pos()),
			Analyzer: "audit",
			Message:  fmt.Sprintf(format, args...),
		})
	}
	// checkList validates the analyzer-name list shared by allow and
	// allow(func).
	checkList := func(c *ast.Comment, word, rest string) {
		fields := strings.Fields(rest)
		if len(fields) == 0 {
			report(c, "malformed //taq:%s: missing analyzer list (want //taq:%s <name>[,<name>...] rationale)", word, word)
			return
		}
		for _, name := range strings.Split(fields[0], ",") {
			if name == "" {
				report(c, "malformed //taq:%s %s: empty analyzer name in list", word, fields[0])
				break
			}
		}
	}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				word, rest, ok := taqDirective(c.Text)
				if !ok {
					continue
				}
				switch word {
				case "allow":
					checkList(c, word, rest)
				case "allow(func)":
					if !funcDoc[c] {
						report(c, "misplaced //taq:allow(func): the directive must sit in the doc comment of a function declaration")
						continue
					}
					checkList(c, word, rest)
				case "hotpath":
					if !funcDoc[c] {
						report(c, "misplaced //taq:hotpath: the directive must sit in the doc comment of a function declaration")
					}
				case "crossshard":
					if !funcDoc[c] {
						report(c, "misplaced //taq:crossshard: the directive must sit in the doc comment of a function declaration")
					}
				case "shardowned":
					if typeSpecOf[c] == nil {
						report(c, "misplaced //taq:shardowned: the directive must sit in the doc comment of a type declaration")
					}
				case "atomic":
					if fld := fieldOf[c]; fld != nil {
						if len(fld.Names) == 0 {
							report(c, "//taq:atomic on an embedded field is not supported — name the field")
						}
					} else if !varDoc[c] {
						report(c, "misplaced //taq:atomic: the directive must annotate a struct field or a package-level var")
					}
				case "layout":
					ts := typeSpecOf[c]
					if ts == nil {
						report(c, "misplaced //taq:layout: the directive must sit in the doc comment of a struct type declaration")
						continue
					}
					if _, ok := ts.Type.(*ast.StructType); !ok {
						report(c, "//taq:layout on non-struct type %s — only structs have a layout to pin", ts.Name.Name)
						continue
					}
					if _, err := parseLayoutSpec(rest); err != nil {
						report(c, "malformed //taq:layout: %v", err)
					}
				default:
					report(c, "unknown directive //taq:%s (want allow, allow(func), hotpath, shardowned, crossshard, atomic, or layout)", word)
				}
			}
		}
	}
	return out
}

func (s *allowSet) suppressed(d Diagnostic) bool {
	hit := false
	if lines := s.byFile[d.Pos.Filename]; lines != nil {
		for _, line := range []int{d.Pos.Line, d.Pos.Line - 1} {
			for _, e := range lines[line] {
				if e.name == d.Analyzer || e.name == "all" {
					e.used = true
					hit = true
				}
			}
		}
	}
	for _, e := range s.ranged[d.Pos.Filename] {
		if d.Pos.Line >= e.fromLine && d.Pos.Line <= e.toLine && (e.name == d.Analyzer || e.name == "all") {
			e.used = true
			hit = true
		}
	}
	return hit
}

// stale returns one audit diagnostic per directive that suppressed
// nothing. Only analyzers in ran are judged (a directive for an
// analyzer that did not run this invocation is not stale); names not
// in known are always reported, as misspellings suppress nothing ever.
func (s *allowSet) stale(ran, known map[string]bool) []Diagnostic {
	var out []Diagnostic
	for _, e := range s.entries {
		if e.used {
			continue
		}
		word := "//taq:allow"
		if e.scoped {
			word = "//taq:allow(func)"
		}
		switch {
		case !known[e.name] && e.name != "all":
			out = append(out, Diagnostic{
				Pos:      e.pos,
				Analyzer: "audit",
				Message:  fmt.Sprintf("%s names unknown analyzer %q (typo? see taqvet -list)", word, e.name),
			})
		case e.name == "all" || ran[e.name]:
			msg := fmt.Sprintf("stale %s %s: it suppresses no finding — delete the directive", word, e.name)
			if e.scoped {
				msg = fmt.Sprintf("stale %s %s: no line in the function produces a finding — delete the directive", word, e.name)
			}
			out = append(out, Diagnostic{Pos: e.pos, Analyzer: "audit", Message: msg})
		}
	}
	return out
}

// exprString renders a (small) expression for diagnostics.
func exprString(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return exprString(e.X) + "." + e.Sel.Name
	case *ast.IndexExpr:
		return exprString(e.X) + "[...]"
	case *ast.CallExpr:
		return exprString(e.Fun) + "(...)"
	case *ast.StarExpr:
		return "*" + exprString(e.X)
	case *ast.ParenExpr:
		return exprString(e.X)
	default:
		return "<expr>"
	}
}
