package analysis

// directives.go collects the v4 contract annotations — shard ownership,
// atomic discipline, and memory layout — into one program-wide index
// shared by the shardown, atomicfield, and layout analyzers, and prints
// the annotation inventory CI diffs against docs/taq-annotations.txt.
//
// The directive grammar (placement validated by collectMalformed,
// parser fuzzed by FuzzParseDirectives):
//
//	//taq:shardowned <rationale>       doc comment of a type declaration
//	//taq:crossshard <rationale>       doc comment of a function declaration
//	//taq:atomic <rationale>           a struct field or a package-level var
//	//taq:layout size=N align=N hotbytes=LO..HI
//	                                   doc comment of a struct type declaration
//	//taq:allow(func) <name>[,...] <rationale>
//	                                   doc comment of a function declaration

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"io"
	"sort"
	"strconv"
	"strings"
)

// directiveWords is the complete //taq: vocabulary; collectMalformed
// reports anything else as an unknown directive.
var directiveWords = map[string]bool{
	"allow":       true,
	"allow(func)": true,
	"hotpath":     true,
	"shardowned":  true,
	"crossshard":  true,
	"atomic":      true,
	"layout":      true,
}

// layoutSpec is a parsed //taq:layout directive. A key that is absent
// is -1; at least one key is always present in a well-formed spec.
type layoutSpec struct {
	size  int64 // size=N: Sizeof must equal N exactly
	align int64 // align=N: Sizeof must be a multiple of N (cache-line padding)
	hotLo int64 // hotbytes=LO..HI: LO must be a field start offset...
	hotHi int64 // ...and HI a field end offset — the hot-core section edges
}

// parseLayoutSpec parses the key=value list of a //taq:layout
// directive. Every token must be a known key=value pair — rationale
// belongs in the surrounding doc comment prose, which keeps the
// grammar strict enough for -audit to classify every malformed form.
func parseLayoutSpec(rest string) (layoutSpec, error) {
	spec := layoutSpec{size: -1, align: -1, hotLo: -1, hotHi: -1}
	fields := strings.Fields(rest)
	if len(fields) == 0 {
		return spec, fmt.Errorf("missing key=value list (want size=N, align=N, and/or hotbytes=LO..HI)")
	}
	for _, f := range fields {
		key, val, ok := strings.Cut(f, "=")
		if !ok {
			return spec, fmt.Errorf("token %q is not key=value (rationale goes in the doc comment prose)", f)
		}
		switch key {
		case "size":
			if spec.size >= 0 {
				return spec, fmt.Errorf("duplicate key size")
			}
			n, err := strconv.ParseInt(val, 10, 64)
			if err != nil || n <= 0 {
				return spec, fmt.Errorf("size=%s is not a positive integer", val)
			}
			spec.size = n
		case "align":
			if spec.align >= 0 {
				return spec, fmt.Errorf("duplicate key align")
			}
			n, err := strconv.ParseInt(val, 10, 64)
			if err != nil || n <= 0 || n&(n-1) != 0 {
				return spec, fmt.Errorf("align=%s is not a positive power of two", val)
			}
			spec.align = n
		case "hotbytes":
			if spec.hotLo >= 0 {
				return spec, fmt.Errorf("duplicate key hotbytes")
			}
			lo, hi, ok := strings.Cut(val, "..")
			if !ok {
				return spec, fmt.Errorf("hotbytes=%s is not of the form LO..HI", val)
			}
			l, errL := strconv.ParseInt(lo, 10, 64)
			h, errH := strconv.ParseInt(hi, 10, 64)
			if errL != nil || errH != nil || l < 0 || h <= l {
				return spec, fmt.Errorf("hotbytes=%s needs integers with 0 <= LO < HI", val)
			}
			spec.hotLo, spec.hotHi = l, h
		default:
			return spec, fmt.Errorf("unknown key %q (want size, align, or hotbytes)", key)
		}
	}
	return spec, nil
}

// canonical renders the spec in fixed key order for the inventory.
func (s layoutSpec) canonical() string {
	var parts []string
	if s.size >= 0 {
		parts = append(parts, fmt.Sprintf("size=%d", s.size))
	}
	if s.align >= 0 {
		parts = append(parts, fmt.Sprintf("align=%d", s.align))
	}
	if s.hotLo >= 0 {
		parts = append(parts, fmt.Sprintf("hotbytes=%d..%d", s.hotLo, s.hotHi))
	}
	return strings.Join(parts, " ")
}

// layoutPin is one //taq:layout directive bound to its struct type.
type layoutPin struct {
	tn   *types.TypeName
	spec layoutSpec
	pos  token.Pos
	pkg  *Package
}

// contracts is the program-wide index of v4 annotations. The maps are
// keyed by stable strings (typeKey, *types.Func.FullName), never by
// object pointers: a package sees its own declarations through the
// source type-check but its imports through gc export data, so the
// same type or function has two distinct types.Object identities
// depending on which side of the import edge observes it.
type contracts struct {
	// shardOwned marks types (by typeKey) whose values must not escape
	// their owning package except through crossShard functions.
	shardOwned map[string]bool
	// crossShard marks the audited aggregator surface: functions (by
	// FullName) allowed to move shard-owned values across packages.
	crossShard map[string]bool
	// atomicObjs maps each //taq:atomic field (typeKey of the owning
	// struct + "." + field name) or package-level var (pkgpath.name) to
	// its short diagnostic label ("shared.hits", "parallelism").
	atomicObjs map[string]string
	// atomicOwners maps a struct's typeKey to the comma-joined names
	// of its atomic fields, for the copy-smuggling diagnostic.
	atomicOwners map[string]string
	layouts      []layoutPin

	// Printable inventory lines, built at collection time.
	shardNames, crossNames, atomicNames []string
}

// contractsIndex lazily collects the annotations across all packages.
func (p *Program) contractsIndex() *contracts {
	if p.contr == nil {
		p.contr = collectContracts(p.Pkgs)
	}
	return p.contr
}

// directiveIn scans doc comment groups for one directive word and
// returns its rest text.
func directiveIn(word string, docs ...*ast.CommentGroup) (string, bool) {
	for _, doc := range docs {
		if doc == nil {
			continue
		}
		for _, c := range doc.List {
			if w, rest, ok := taqDirective(c.Text); ok && w == word {
				return rest, true
			}
		}
	}
	return "", false
}

func collectContracts(pkgs []*Package) *contracts {
	c := &contracts{
		shardOwned:   make(map[string]bool),
		crossShard:   make(map[string]bool),
		atomicObjs:   make(map[string]string),
		atomicOwners: make(map[string]string),
	}
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, d := range f.Decls {
				switch d := d.(type) {
				case *ast.FuncDecl:
					if _, ok := directiveIn("crossshard", d.Doc); !ok {
						continue
					}
					fn, ok := pkg.Info.Defs[d.Name].(*types.Func)
					if !ok {
						continue
					}
					c.crossShard[fn.FullName()] = true
					c.crossNames = append(c.crossNames, fn.FullName())
				case *ast.GenDecl:
					collectGenDecl(c, pkg, d)
				}
			}
		}
	}
	sort.Strings(c.shardNames)
	sort.Strings(c.crossNames)
	sort.Strings(c.atomicNames)
	sort.Slice(c.layouts, func(i, j int) bool {
		a, b := c.layouts[i], c.layouts[j]
		if a.tn.Pkg().Path() != b.tn.Pkg().Path() {
			return a.tn.Pkg().Path() < b.tn.Pkg().Path()
		}
		return a.tn.Name() < b.tn.Name()
	})
	return c
}

func collectGenDecl(c *contracts, pkg *Package, d *ast.GenDecl) {
	switch d.Tok {
	case token.TYPE:
		for _, s := range d.Specs {
			ts, ok := s.(*ast.TypeSpec)
			if !ok {
				continue
			}
			docs := []*ast.CommentGroup{ts.Doc, ts.Comment}
			if len(d.Specs) == 1 {
				docs = append(docs, d.Doc)
			}
			tn, _ := pkg.Info.Defs[ts.Name].(*types.TypeName)
			if tn == nil {
				continue
			}
			if _, ok := directiveIn("shardowned", docs...); ok {
				c.shardOwned[typeKey(tn)] = true
				c.shardNames = append(c.shardNames, pkg.Path+"."+ts.Name.Name)
			}
			if rest, ok := directiveIn("layout", docs...); ok {
				if _, isStruct := ts.Type.(*ast.StructType); isStruct {
					if spec, err := parseLayoutSpec(rest); err == nil {
						c.layouts = append(c.layouts, layoutPin{tn: tn, spec: spec, pos: ts.Pos(), pkg: pkg})
					}
					// Parse errors surface via collectMalformed.
				}
			}
			st, ok := ts.Type.(*ast.StructType)
			if !ok {
				continue
			}
			var atomicFields []string
			for _, fld := range st.Fields.List {
				if _, ok := directiveIn("atomic", fld.Doc, fld.Comment); !ok {
					continue
				}
				for _, name := range fld.Names {
					if pkg.Info.Defs[name] == nil {
						continue
					}
					c.atomicObjs[typeKey(tn)+"."+name.Name] = ts.Name.Name + "." + name.Name
					c.atomicNames = append(c.atomicNames, pkg.Path+"."+ts.Name.Name+"."+name.Name)
					atomicFields = append(atomicFields, name.Name)
				}
			}
			if len(atomicFields) > 0 {
				c.atomicOwners[typeKey(tn)] = strings.Join(atomicFields, ", ")
			}
		}
	case token.VAR:
		for _, s := range d.Specs {
			vs, ok := s.(*ast.ValueSpec)
			if !ok {
				continue
			}
			docs := []*ast.CommentGroup{vs.Doc, vs.Comment}
			if len(d.Specs) == 1 {
				docs = append(docs, d.Doc)
			}
			if _, ok := directiveIn("atomic", docs...); !ok {
				continue
			}
			for _, name := range vs.Names {
				if pkg.Info.Defs[name] == nil {
					continue
				}
				c.atomicObjs[pkg.Path+"."+name.Name] = name.Name
				c.atomicNames = append(c.atomicNames, pkg.Path+"."+name.Name)
			}
		}
	}
}

// ownedIn reports the shard-owned type reachable from t by unwrapping
// pointers, slices, arrays, and map values — the container shapes a
// value escapes through. Ownership is deliberately not transitive
// through struct fields: a wrapper struct (like the single-shard TAQ
// facade today, or a future shard header) is its own ownership domain
// and must carry its own annotation.
func ownedIn(t types.Type, owned map[string]bool, depth int) *types.TypeName {
	if t == nil || depth > 8 {
		return nil
	}
	switch u := t.(type) {
	case *types.Named:
		if owned[typeKey(u.Obj())] {
			return u.Obj()
		}
		return ownedIn(u.Underlying(), owned, depth+1)
	case *types.Pointer:
		return ownedIn(u.Elem(), owned, depth+1)
	case *types.Slice:
		return ownedIn(u.Elem(), owned, depth+1)
	case *types.Array:
		return ownedIn(u.Elem(), owned, depth+1)
	case *types.Map:
		return ownedIn(u.Elem(), owned, depth+1)
	}
	return nil
}

// typeKey identifies a named type across the source/export-data
// identity split: "taq/internal/core.tracker".
func typeKey(tn *types.TypeName) string {
	if tn.Pkg() == nil {
		return tn.Name()
	}
	return tn.Pkg().Path() + "." + tn.Name()
}

// atomicVarKey returns the contracts key for a package-level variable,
// or "" when obj is anything else (locals and fields never match, so a
// local shadowing an annotated var cannot trip the analyzer).
func atomicVarKey(obj types.Object) string {
	v, ok := obj.(*types.Var)
	if !ok || v.IsField() || v.Pkg() == nil {
		return ""
	}
	if sc := v.Parent(); sc == nil || sc.Parent() != types.Universe {
		return ""
	}
	return v.Pkg().Path() + "." + v.Name()
}

// atomicFieldKey returns the contracts key for a field selected from a
// receiver of type recv, or "" when recv is not a named struct.
func atomicFieldKey(recv types.Type, field string) string {
	if p, ok := recv.(*types.Pointer); ok {
		recv = p.Elem()
	}
	n, ok := recv.(*types.Named)
	if !ok {
		return ""
	}
	return typeKey(n.Obj()) + "." + field
}

// ownerLabel names a shard-owned type for diagnostics: "core.tracker".
func ownerLabel(tn *types.TypeName) string {
	if tn.Pkg() == nil {
		return tn.Name()
	}
	return tn.Pkg().Name() + "." + tn.Name()
}

// modulePathOf returns the leading path element, enough to separate
// this module's packages from stdlib and external leaves.
func modulePathOf(pkgPath string) string {
	if i := strings.IndexByte(pkgPath, '/'); i >= 0 {
		return pkgPath[:i]
	}
	return pkgPath
}

// WriteAnnotations prints the shardowned/crossshard/atomic/layout
// annotation inventory. The output is byte-stable so CI can diff it
// against the committed docs/taq-annotations.txt baseline and catch an
// annotation silently added or dropped — the same drift gate the
// hotpath closure has.
func WriteAnnotations(w io.Writer, pkgs []*Package) error {
	c := NewProgram(pkgs).contractsIndex()
	for _, n := range c.shardNames {
		if _, err := fmt.Fprintf(w, "shardowned %s\n", n); err != nil {
			return err
		}
	}
	for _, n := range c.crossNames {
		if _, err := fmt.Fprintf(w, "crossshard %s\n", n); err != nil {
			return err
		}
	}
	for _, n := range c.atomicNames {
		if _, err := fmt.Fprintf(w, "atomic %s\n", n); err != nil {
			return err
		}
	}
	for _, pin := range c.layouts {
		if _, err := fmt.Fprintf(w, "layout %s.%s %s\n", pin.tn.Pkg().Path(), pin.tn.Name(), pin.spec.canonical()); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintf(w, "total %d shardowned, %d crossshard, %d atomic, %d layout\n",
		len(c.shardNames), len(c.crossNames), len(c.atomicNames), len(c.layouts))
	return err
}
