package analysis

// noalloc enforces the hotpath allocation contract: every function in
// the //taq:hotpath closure (see callgraph.go) must be allocation-free
// in steady state. It flags the allocation sources Go hides in plain
// syntax: escaping composite literals and new/make, append growth
// without capacity evidence, map access, string<->[]byte conversions,
// interface boxing at call sites, capturing closures, variadic calls,
// string concatenation, and defer inside loops. Amortized free-list
// refills and ROADMAP-tracked map lookups are expected findings — they
// are suppressed in place with //taq:allow noalloc and a rationale, so
// the cost is visible in the source where it is paid.

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// NoAlloc flags heap-allocation sources in hotpath-closure functions.
var NoAlloc = &Analyzer{
	Name: "noalloc",
	Doc:  "//taq:hotpath closure functions must not allocate (composites, make/new, growing append, maps, boxing, closures, variadic calls)",
	Run:  runNoAlloc,
}

func runNoAlloc(pass *Pass) {
	if pass.Prog == nil || !pass.Cfg.IsNoallocChecked(pass.Pkg.Path) {
		return
	}
	for _, n := range pass.Prog.HotNodes() {
		if n.Pkg == pass.Pkg {
			checkNoAlloc(pass, n)
		}
	}
}

// hotf reports a finding inside hotpath function n, naming the root
// that pulled n into the closure so the reader can trace the path.
func hotf(pass *Pass, n *FuncNode, pos token.Pos, format string, args ...any) {
	root := pass.Prog.RootOf(n)
	msg := fmt.Sprintf(format, args...)
	if root == n {
		pass.Reportf(pos, "%s (hotpath root %s)", msg, shortFuncName(n.Name()))
	} else {
		pass.Reportf(pos, "%s (in %s, hot via root %s)", msg, shortFuncName(n.Name()), shortFuncName(root.Name()))
	}
}

// shortFuncName drops the module prefix from a qualified function name
// so diagnostics stay readable: "(*taq/internal/core.TAQ).Enqueue"
// becomes "(*core.TAQ).Enqueue".
func shortFuncName(name string) string {
	name = strings.ReplaceAll(name, "taq/internal/analysis/testdata/src/", "")
	name = strings.ReplaceAll(name, "taq/internal/", "")
	return strings.ReplaceAll(name, "taq/", "")
}

func checkNoAlloc(pass *Pass, n *FuncNode) {
	info := n.Pkg.Info

	// Loop body ranges, for the defer-in-loop check.
	var loops [][2]token.Pos
	ast.Inspect(n.Body, func(nd ast.Node) bool {
		switch s := nd.(type) {
		case *ast.ForStmt:
			loops = append(loops, [2]token.Pos{s.Body.Pos(), s.Body.End()})
		case *ast.RangeStmt:
			loops = append(loops, [2]token.Pos{s.Body.Pos(), s.Body.End()})
		}
		return true
	})
	inLoop := func(pos token.Pos) bool {
		for _, r := range loops {
			if pos >= r[0] && pos <= r[1] {
				return true
			}
		}
		return false
	}

	handledLit := make(map[*ast.CompositeLit]bool)
	ast.Inspect(n.Body, func(nd ast.Node) bool {
		switch x := nd.(type) {
		case *ast.FuncLit:
			if caps := closureCaptures(info, x); len(caps) > 0 {
				hotf(pass, n, x.Pos(), "closure captures %s and allocates at every creation", strings.Join(caps, ", "))
			}
			return false // the literal's body is its own node
		case *ast.UnaryExpr:
			if x.Op == token.AND {
				if cl, ok := ast.Unparen(x.X).(*ast.CompositeLit); ok {
					handledLit[cl] = true
					hotf(pass, n, x.Pos(), "&%s{...} escapes to the heap", typeLabel(info, cl))
				}
			}
		case *ast.CompositeLit:
			if handledLit[x] {
				return true
			}
			switch underlyingOf(info, x).(type) {
			case *types.Map:
				hotf(pass, n, x.Pos(), "map literal allocates")
			case *types.Slice:
				hotf(pass, n, x.Pos(), "slice literal allocates")
			}
		case *ast.CallExpr:
			checkAllocCall(pass, n, x)
		case *ast.IndexExpr:
			if _, ok := underlyingOf(info, x.X).(*types.Map); ok {
				hotf(pass, n, x.Pos(), "map access %s", exprString(x))
			}
		case *ast.RangeStmt:
			if _, ok := underlyingOf(info, x.X).(*types.Map); ok {
				hotf(pass, n, x.Pos(), "map iteration over %s", exprString(x.X))
			}
		case *ast.DeferStmt:
			if inLoop(x.Pos()) {
				hotf(pass, n, x.Pos(), "defer inside a loop allocates per iteration")
			}
		case *ast.BinaryExpr:
			if x.Op == token.ADD && isStringType(info.Types[x.X].Type) {
				hotf(pass, n, x.Pos(), "string concatenation allocates")
			}
		}
		return true
	})

	checkAppendGrowth(pass, n)
}

// checkAllocCall handles the call-shaped allocation sources: builtins,
// allocating conversions, interface boxing, and variadic slices.
func checkAllocCall(pass *Pass, n *FuncNode, call *ast.CallExpr) {
	info := n.Pkg.Info
	fun := ast.Unparen(call.Fun)

	if id, ok := fun.(*ast.Ident); ok {
		if b, ok := info.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "new":
				hotf(pass, n, call.Pos(), "new(...) allocates")
			case "make":
				hotf(pass, n, call.Pos(), "make allocates")
			case "delete":
				hotf(pass, n, call.Pos(), "map delete %s", exprString(call))
			}
			return
		}
	}
	// Conversions: string<->[]byte/[]rune copy; conversion to an
	// interface type boxes.
	if tv, ok := info.Types[fun]; ok && tv.IsType() {
		if len(call.Args) != 1 {
			return
		}
		dst := tv.Type
		src := info.Types[call.Args[0]].Type
		if src == nil {
			return
		}
		switch {
		case isStringType(dst) && isByteish(src), isByteish(dst) && isStringType(src):
			hotf(pass, n, call.Pos(), "conversion %s copies and allocates", exprString(call))
		case types.IsInterface(dst) && boxes(src):
			hotf(pass, n, call.Pos(), "conversion %s boxes into an interface", exprString(call))
		}
		return
	}

	tv, ok := info.Types[fun]
	if !ok || tv.Type == nil {
		return
	}
	sig, ok := tv.Type.Underlying().(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	npar := params.Len()
	// Variadic calls materialize a slice for their extra arguments.
	if sig.Variadic() && call.Ellipsis == token.NoPos && len(call.Args) >= npar {
		elem := params.At(npar - 1).Type().(*types.Slice).Elem()
		hotf(pass, n, call.Pos(), "variadic call %s allocates a ...%s slice", exprString(call), types.TypeString(elem, shortQualifier))
	}
	// Interface boxing at the call site.
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case i < npar-1 || (!sig.Variadic() && i < npar):
			pt = params.At(i).Type()
		case sig.Variadic() && call.Ellipsis == token.NoPos:
			pt = params.At(npar - 1).Type().(*types.Slice).Elem()
		default:
			continue
		}
		at := info.Types[arg].Type
		if pt == nil || at == nil || !types.IsInterface(pt) {
			continue
		}
		if boxes(at) {
			hotf(pass, n, arg.Pos(), "argument %s boxes into interface %s", exprString(arg), types.TypeString(pt, shortQualifier))
		}
	}
}

// boxes reports whether converting a value of type t to an interface
// allocates: pointer-shaped values (pointers, chans, maps, funcs) are
// stored directly; everything else (structs, ints, strings, slices)
// is copied to the heap. Untyped nil and existing interfaces do not
// allocate.
func boxes(t types.Type) bool {
	if t == nil {
		return false
	}
	switch u := t.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature, *types.Interface:
		return false
	case *types.Basic:
		return u.Kind() != types.UntypedNil
	}
	return true
}

// underlyingOf returns the underlying type of e, or nil when the
// checker recorded none.
func underlyingOf(info *types.Info, e ast.Expr) types.Type {
	t := info.Types[e].Type
	if t == nil {
		return nil
	}
	return t.Underlying()
}

func isStringType(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteish(t types.Type) bool {
	if t == nil {
		return false
	}
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Byte || b.Kind() == types.Rune || b.Kind() == types.Uint8 || b.Kind() == types.Int32)
}

func shortQualifier(p *types.Package) string { return p.Name() }

func typeLabel(info *types.Info, cl *ast.CompositeLit) string {
	if t := info.Types[cl].Type; t != nil {
		return types.TypeString(t, shortQualifier)
	}
	return exprString(cl.Type)
}

// capEvidence is the flow fact: the slice Ref was provisioned with
// explicit capacity (3-arg make) or resliced to reuse its backing
// array (x[:0]) before the append.
const capEvidence = 1

// checkAppendGrowth runs the def-use walker over n's body tracking
// capacity evidence per slice Ref, and flags appends that may grow.
func checkAppendGrowth(pass *Pass, n *FuncNode) {
	info := n.Pkg.Info
	hooks := FlowHooks{
		Join: func(a, b int) int {
			if a == b {
				return a
			}
			return 0
		},
		Assign: func(lhs, rhs ast.Expr, tok token.Token, st FlowState) {
			r, ok := RefOf(info, lhs)
			if !ok || rhs == nil {
				return
			}
			rhs = ast.Unparen(rhs)
			if givesCapEvidence(info, rhs) {
				st.Set(r, capEvidence)
				return
			}
			// x = append(x, ...) keeps whatever evidence x had.
			if isSelfAppend(info, rhs, r) {
				return
			}
			st.Set(r, 0)
		},
		PostCall: func(call *ast.CallExpr, st FlowState) {
			if !isBuiltin(info, call, "append") || len(call.Args) == 0 {
				return
			}
			if !n.OwnsPos(call.Pos()) {
				return
			}
			first := ast.Unparen(call.Args[0])
			// append(x[:0], ...) reuses x's backing array.
			if se, ok := first.(*ast.SliceExpr); ok && se.High != nil {
				return
			}
			if r, ok := RefOf(info, first); ok && st.Get(r) == capEvidence {
				return
			}
			hotf(pass, n, call.Pos(), "append to %s may grow (no capacity evidence)", exprString(call.Args[0]))
		},
	}
	WalkFlow(info, n.Body, nil, hooks)
}

// givesCapEvidence reports whether rhs provisions capacity: a 3-arg
// make, or a reslice with an explicit upper bound.
func givesCapEvidence(info *types.Info, rhs ast.Expr) bool {
	switch x := rhs.(type) {
	case *ast.CallExpr:
		return isBuiltin(info, x, "make") && len(x.Args) >= 3
	case *ast.SliceExpr:
		return x.High != nil
	}
	return false
}

func isSelfAppend(info *types.Info, rhs ast.Expr, r Ref) bool {
	call, ok := rhs.(*ast.CallExpr)
	if !ok || !isBuiltin(info, call, "append") || len(call.Args) == 0 {
		return false
	}
	ar, ok := RefOf(info, ast.Unparen(call.Args[0]))
	return ok && ar == r
}

func isBuiltin(info *types.Info, call *ast.CallExpr, name string) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := info.Uses[id].(*types.Builtin)
	return ok && b.Name() == name
}

// closureCaptures lists the variables a function literal captures from
// its enclosing scopes (excluding package-level variables, which need
// no closure cell).
func closureCaptures(info *types.Info, fl *ast.FuncLit) []string {
	var names []string
	seen := make(map[*types.Var]bool)
	ast.Inspect(fl.Body, func(nd ast.Node) bool {
		id, ok := nd.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := info.Uses[id].(*types.Var)
		if !ok || seen[v] || v.IsField() {
			return true
		}
		if v.Pos() >= fl.Pos() && v.Pos() <= fl.End() {
			return true // declared inside the literal
		}
		if sc := v.Parent(); sc == nil || sc.Parent() == types.Universe {
			return true // package-level variable
		}
		seen[v] = true
		names = append(names, v.Name())
		return true
	})
	return names
}
