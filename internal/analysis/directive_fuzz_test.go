package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

// FuzzParseDirectives drives the //taq: comment grammar — hotpath,
// allow, allow(func), shardowned, crossshard, atomic, layout — through
// the directive parser, the layout-spec parser, and the AST-only audit
// collectors (collectAllows, collectMalformed). Two properties hold
// for every input: nothing panics, and a syntactically valid directive
// with an unknown word is always classified malformed, so a typo can
// never silently disable a gate.
func FuzzParseDirectives(f *testing.F) {
	seeds := []string{
		"//taq:hotpath packet path root",
		"//taq:allow wallclock rationale here",
		"//taq:allow wallclock,maprange multi",
		"//taq:allow ,",
		"//taq:allow",
		"//taq:allow(func) noalloc builds into the reused buffer",
		"//taq:allow(func)",
		"//taq:allow(func) noalloc,noblock both",
		"//taq:shardowned per-shard flow state",
		"//taq:crossshard audited aggregator",
		"//taq:atomic cross-shard counter",
		"//taq:layout size=200 align=64 hotbytes=0..136",
		"//taq:layout size=200",
		"//taq:layout size=",
		"//taq:layout size=16 size=16",
		"//taq:layout hotbytes=10..2",
		"//taq:layout hotbytes=0..81",
		"//taq:layout rationale before keys",
		"//taq:alow typo",
		"//taq:",
		"//taq: space",
		"//taq:layout\tsize=8",
		"// not a directive at all",
		"/*taq:hotpath block form is not a directive*/",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, comment string) {
		// The raw parser must never panic, whatever the text.
		word, rest, ok := taqDirective(comment)
		if ok && word == "layout" {
			parseLayoutSpec(rest)
		}

		// Embed the text as a line comment in every placement the
		// grammar distinguishes: free-floating, function doc, type
		// doc, field, and var doc.
		line := strings.NewReplacer("\n", " ", "\r", " ").Replace(comment)
		if !strings.HasPrefix(line, "//") {
			line = "//" + line
		}
		src := "package p\n\n" +
			line + "\n\n" +
			line + "\nfunc F() {}\n\n" +
			line + "\ntype T struct {\n\t" + line + "\n\ta int64\n}\n\n" +
			line + "\nvar V int64\n"
		fset := token.NewFileSet()
		file, err := parser.ParseFile(fset, "fuzz.go", src, parser.ParseComments)
		if err != nil {
			t.Skip() // the text broke Go syntax, not our grammar
		}
		pkg := &Package{Path: "fuzz/p", Name: "p", Fset: fset, Files: []*ast.File{file}}
		allows := collectAllows(pkg)
		mal := collectMalformed(pkg)
		allows.stale(map[string]bool{"noalloc": true}, map[string]bool{"noalloc": true})

		// Re-derive the directive from the sanitized line actually
		// placed in the file; an unknown word must be classified.
		if w, _, ok := taqDirective(line); ok && !directiveWords[w] && len(mal) == 0 {
			t.Errorf("unknown directive word %q produced no malformed diagnostic", w)
		}
	})
}
