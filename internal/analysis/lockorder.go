package analysis

// lockorder builds the program-wide mutex-acquisition graph and
// reports ordering hazards: an edge A->B means some function acquires
// lock B (directly or through a callee) while holding A. Any strongly
// connected component — an A->B plus a path back — is a potential
// deadlock; a self-edge is a potential recursive acquisition (Go
// mutexes are not reentrant). Lock identity is structural, (type,
// field) for mutex fields and package.var for globals, so two
// instances of the same shard type count as the same lock: acquiring
// two shards without an agreed order is exactly the cross-shard
// aggregator bug this analyzer exists to catch (ROADMAP item 1).
//
// Held sets are tracked lexically within one function (the same
// approximation lockdiscipline uses); transitive acquisitions
// propagate through static and interface call edges only — the
// conservative function-value edges of the hotpath closure would
// fabricate cycles no execution can take.

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// LockOrder reports mutex-acquisition cycles and inconsistent lock
// orderings across the whole loaded program.
var LockOrder = &Analyzer{
	Name: "lockorder",
	Doc:  "mutex-acquisition graph must be cycle-free (consistent lock ordering program-wide)",
	Run:  runLockOrder,
}

func runLockOrder(pass *Pass) {
	if pass.Prog == nil {
		return
	}
	for _, d := range pass.Prog.lockOrderDiags() {
		if d.pkg == pass.Pkg.Path {
			pass.report(Diagnostic{Pos: d.pos, Analyzer: pass.Analyzer.Name, Message: d.msg})
		}
	}
}

// lockDiag is one pre-computed lockorder finding, tagged with the
// package whose pass should surface it.
type lockDiag struct {
	pkg string
	pos token.Position
	msg string
}

// lockEvent is one acquisition, release, or call inside a function,
// ordered lexically.
type lockEvent struct {
	pos     token.Pos
	acquire string // lock id acquired ("" if not an acquire)
	release string // lock id released
	callee  *FuncNode
}

// lockEdge is one A-held-while-acquiring-B witness.
type lockEdge struct {
	from, to string
	pos      token.Pos
	pkg      *Package
	fn       string
}

// lockOrderDiags computes the program-wide lock graph once and caches
// the findings; each package's pass reports only its own positions.
func (p *Program) lockOrderDiags() []lockDiag {
	p.ensure()
	if p.lockOnce {
		return p.lockCache
	}
	p.lockOnce = true

	events := make(map[*FuncNode][]lockEvent)
	for _, n := range p.nodes {
		if evs := collectLockEvents(p, n); len(evs) > 0 {
			events[n] = evs
		}
	}

	// Transitive acquisition sets, over static+interface edges only.
	acq := make(map[*FuncNode]map[string]bool)
	for n, evs := range events {
		set := make(map[string]bool)
		for _, e := range evs {
			if e.acquire != "" {
				set[e.acquire] = true
			}
		}
		if len(set) > 0 {
			acq[n] = set
		}
	}
	for changed := true; changed; {
		changed = false
		for _, n := range p.nodes {
			for _, e := range n.edges {
				if e.viaValue {
					continue
				}
				for id := range acq[e.to] {
					if acq[n] == nil {
						acq[n] = make(map[string]bool)
					}
					if !acq[n][id] {
						acq[n][id] = true
						changed = true
					}
				}
			}
		}
	}

	// Edges with witnesses: walk each function's events in lexical
	// order, tracking the held set.
	var edges []lockEdge
	for _, n := range p.nodes {
		evs := events[n]
		if len(evs) == 0 {
			continue
		}
		var held []string
		for _, ev := range evs {
			switch {
			case ev.acquire != "":
				for _, h := range held {
					edges = append(edges, lockEdge{from: h, to: ev.acquire, pos: ev.pos, pkg: n.Pkg, fn: n.name})
				}
				held = append(held, ev.acquire)
			case ev.release != "":
				for i := len(held) - 1; i >= 0; i-- {
					if held[i] == ev.release {
						held = append(held[:i], held[i+1:]...)
						break
					}
				}
			case ev.callee != nil:
				for _, h := range held {
					ids := make([]string, 0, len(acq[ev.callee]))
					for id := range acq[ev.callee] {
						ids = append(ids, id)
					}
					sort.Strings(ids)
					for _, id := range ids {
						edges = append(edges, lockEdge{from: h, to: id, pos: ev.pos, pkg: n.Pkg, fn: n.name})
					}
				}
			}
		}
	}

	p.lockCache = lockFindings(edges)
	return p.lockCache
}

// lockFindings reduces the witnessed edges to one finding per hazard:
// self-edges and edges inside a multi-node cycle.
func lockFindings(edges []lockEdge) []lockDiag {
	// Adjacency for cycle detection.
	adj := make(map[string]map[string]bool)
	for _, e := range edges {
		if adj[e.from] == nil {
			adj[e.from] = make(map[string]bool)
		}
		adj[e.from][e.to] = true
	}
	// reaches reports whether to can reach from (so from->to closes a
	// cycle). The graphs here are tiny; DFS per query is fine.
	reaches := func(src, dst string) bool {
		seen := map[string]bool{src: true}
		stack := []string{src}
		for len(stack) > 0 {
			n := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if n == dst {
				return true
			}
			keys := make([]string, 0, len(adj[n]))
			for k := range adj[n] {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			for _, k := range keys {
				if !seen[k] {
					seen[k] = true
					stack = append(stack, k)
				}
			}
		}
		return false
	}

	// Keep the first witness per directed pair (deterministic: sort by
	// position first).
	sort.Slice(edges, func(i, j int) bool {
		pi := edges[i].pkg.Fset.Position(edges[i].pos)
		pj := edges[j].pkg.Fset.Position(edges[j].pos)
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		return edges[i].from+edges[i].to < edges[j].from+edges[j].to
	})
	firstWitness := make(map[[2]string]lockEdge)
	for _, e := range edges {
		key := [2]string{e.from, e.to}
		if _, ok := firstWitness[key]; !ok {
			firstWitness[key] = e
		}
	}

	var out []lockDiag
	report := func(e lockEdge, msg string) {
		out = append(out, lockDiag{
			pkg: e.pkg.Path,
			pos: e.pkg.Fset.Position(e.pos),
			msg: msg,
		})
	}
	keys := make([][2]string, 0, len(firstWitness))
	for k := range firstWitness {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i][0] != keys[j][0] {
			return keys[i][0] < keys[j][0]
		}
		return keys[i][1] < keys[j][1]
	})
	for _, k := range keys {
		e := firstWitness[k]
		if e.from == e.to {
			report(e, fmt.Sprintf("possible recursive acquisition: %s taken in %s while already held (Go mutexes are not reentrant)",
				e.to, shortFuncName(e.fn)))
			continue
		}
		if reaches(e.to, e.from) {
			other := ""
			if w, ok := firstWitness[[2]string{e.to, e.from}]; ok {
				p := w.pkg.Fset.Position(w.pos)
				other = fmt.Sprintf(" (opposite order at %s:%d)", p.Filename, p.Line)
			}
			report(e, fmt.Sprintf("lock-order cycle: %s acquired while %s is held in %s%s",
				e.to, e.from, shortFuncName(e.fn), other))
		}
	}
	return out
}

// collectLockEvents extracts the lexical acquire/release/call sequence
// of one function. Unlocks inside defer statements never release (the
// lock is held to function exit).
func collectLockEvents(p *Program, n *FuncNode) []lockEvent {
	info := n.Pkg.Info
	deferred := make(map[*ast.CallExpr]bool)
	ast.Inspect(n.Body, func(nd ast.Node) bool {
		if d, ok := nd.(*ast.DeferStmt); ok {
			deferred[d.Call] = true
		}
		return true
	})
	var evs []lockEvent
	ast.Inspect(n.Body, func(nd ast.Node) bool {
		if _, ok := nd.(*ast.FuncLit); ok {
			return false
		}
		call, ok := nd.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			// Static non-method calls still matter for transitive
			// acquisition.
			if id, isIdent := ast.Unparen(call.Fun).(*ast.Ident); isIdent {
				if fn, isFn := usedFunc(info, id); isFn {
					if to := p.byFn[fn.Origin()]; to != nil {
						evs = append(evs, lockEvent{pos: call.Pos(), callee: to})
					}
				}
			}
			return true
		}
		fn, ok := usedFunc(info, sel.Sel)
		if !ok {
			return true
		}
		if fn.Pkg() != nil && fn.Pkg().Path() == "sync" {
			id, ok := lockIdentity(info, sel.X)
			if !ok {
				return true
			}
			switch fn.Name() {
			case "Lock", "RLock":
				evs = append(evs, lockEvent{pos: call.Pos(), acquire: id})
			case "Unlock", "RUnlock":
				if !deferred[call] {
					evs = append(evs, lockEvent{pos: call.Pos(), release: id})
				}
			}
			return true
		}
		// Method or cross-package call: record for transitive sets.
		if recv := fn.Type().(*types.Signature).Recv(); recv != nil && types.IsInterface(recv.Type()) {
			for _, m := range p.implementations(fn) {
				evs = append(evs, lockEvent{pos: call.Pos(), callee: m})
			}
			return true
		}
		if to := p.byFn[fn.Origin()]; to != nil {
			evs = append(evs, lockEvent{pos: call.Pos(), callee: to})
		}
		return true
	})
	sort.SliceStable(evs, func(i, j int) bool { return evs[i].pos < evs[j].pos })
	return evs
}

// lockIdentity names the mutex a Lock/Unlock call operates on,
// structurally: "(pkg.Type).field" for mutex fields, "pkg.var" for
// package-level mutexes. Locals return false — they cannot interleave
// across functions.
func lockIdentity(info *types.Info, recv ast.Expr) (string, bool) {
	recv = ast.Unparen(recv)
	switch x := recv.(type) {
	case *ast.SelectorExpr:
		// y.mu.Lock(): a mutex field of y's type, or a package var
		// pkg.Mu.Lock().
		if sel, ok := info.Selections[x]; ok && sel.Kind() == types.FieldVal {
			if named := namedOf(sel.Recv()); named != "" {
				return fmt.Sprintf("(%s).%s", named, x.Sel.Name), true
			}
			return "", false
		}
		if v, ok := info.Uses[x.Sel].(*types.Var); ok && isPkgLevel(v) {
			return v.Pkg().Path() + "." + v.Name(), true
		}
	case *ast.Ident:
		// mu.Lock() on a package-level mutex, or Lock() promoted from
		// an embedded mutex (handled by the caller's selector).
		if v, ok := info.Uses[x].(*types.Var); ok && isPkgLevel(v) {
			return v.Pkg().Path() + "." + v.Name(), true
		}
	}
	return "", false
}

func namedOf(t types.Type) string {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	if named, ok := t.(*types.Named); ok {
		obj := named.Obj()
		if obj.Pkg() != nil {
			return shortPkgPath(obj.Pkg().Path()) + "." + obj.Name()
		}
		return obj.Name()
	}
	return ""
}

func shortPkgPath(p string) string {
	p = strings.TrimPrefix(p, "taq/internal/analysis/testdata/src/")
	return strings.TrimPrefix(p, "taq/internal/")
}

func isPkgLevel(v *types.Var) bool {
	sc := v.Parent()
	return v.Pkg() != nil && sc != nil && sc.Parent() == types.Universe
}
