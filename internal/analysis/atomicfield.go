package analysis

// atomicfield enforces the atomic-discipline contract the cross-shard
// loss-window/admission aggregates will live under: a struct field or
// package-level var annotated //taq:atomic may be touched only through
// the sync/atomic package — atomic.AddInt64(&s.f, ...) style calls, or
// the method set of an atomic.* typed field (s.f.Load()). Everything
// else is a finding:
//
//   - a plain read or write (including ++/--);
//   - taking the field's address for anything but a sync/atomic call
//     (the address then escapes to code this analyzer cannot see);
//   - copying the containing struct by value, which smuggles a
//     non-atomic snapshot of the field out from under the contract.
//
// Composite-literal construction is exempt: initialization happens
// before the value is shared. Known gaps, documented rather than
// guessed at: a range over []T copies elements, and a value-receiver
// method call copies its receiver — neither is flagged yet.

import (
	"go/ast"
	"go/token"
	"go/types"
)

// AtomicField restricts //taq:atomic fields and vars to sync/atomic.
var AtomicField = &Analyzer{
	Name: "atomicfield",
	Doc:  "//taq:atomic fields/vars must be accessed via sync/atomic only (plain reads/writes, address escapes, struct copies are findings)",
	Run:  runAtomicField,
}

func runAtomicField(pass *Pass) {
	if pass.Prog == nil {
		return
	}
	c := pass.Prog.contractsIndex()
	if len(c.atomicObjs) == 0 {
		return
	}
	for _, f := range pass.Pkg.Files {
		checkAtomicFile(pass, f, c)
	}
}

func checkAtomicFile(pass *Pass, f *ast.File, c *contracts) {
	info := pass.Pkg.Info

	// Parent links, for classifying how a marked expression is used.
	parents := make(map[ast.Node]ast.Node)
	var stack []ast.Node
	ast.Inspect(f, func(nd ast.Node) bool {
		if nd == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if len(stack) > 0 {
			parents[nd] = stack[len(stack)-1]
		}
		stack = append(stack, nd)
		return true
	})
	parentOf := func(nd ast.Node) ast.Node {
		p := parents[nd]
		for {
			pe, ok := p.(*ast.ParenExpr)
			if !ok {
				return p
			}
			p = parents[pe]
		}
	}

	// markedObj resolves an expression to its annotated object. Fields
	// are keyed through the receiver's named type (typeKey + field), so
	// the resolution survives the source/export-data identity split;
	// package vars are keyed by pkgpath.name via atomicVarKey.
	markedObj := func(e ast.Expr) (types.Object, string, bool) {
		switch e := ast.Unparen(e).(type) {
		case *ast.Ident:
			if o := info.Uses[e]; o != nil {
				if label, ok := c.atomicObjs[atomicVarKey(o)]; ok {
					return o, label, true
				}
			}
		case *ast.SelectorExpr:
			o := info.Uses[e.Sel]
			if o == nil {
				return nil, "", false
			}
			if v, ok := o.(*types.Var); ok && v.IsField() {
				if sel := info.Selections[e]; sel != nil {
					if label, ok := c.atomicObjs[atomicFieldKey(sel.Recv(), v.Name())]; ok {
						return o, label, true
					}
				}
				return nil, "", false
			}
			if label, ok := c.atomicObjs[atomicVarKey(o)]; ok {
				return o, label, true
			}
		}
		return nil, "", false
	}

	// Pass 1: sanction the blessed access shapes — &x.f as argument to
	// a sync/atomic function, and x.f as receiver of an atomic.* method.
	sanctioned := make(map[ast.Node]bool)
	ast.Inspect(f, func(nd ast.Node) bool {
		call, ok := nd.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return true
		}
		fn, ok := info.Uses[sel.Sel].(*types.Func)
		if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" {
			return true
		}
		for _, arg := range call.Args {
			if ue, ok := ast.Unparen(arg).(*ast.UnaryExpr); ok && ue.Op == token.AND {
				if _, _, ok := markedObj(ue.X); ok {
					sanctioned[ue] = true
					sanctioned[ast.Unparen(ue.X)] = true
				}
			}
		}
		if _, _, ok := markedObj(sel.X); ok && isAtomicPkgType(info.TypeOf(sel.X)) {
			sanctioned[ast.Unparen(sel.X)] = true
		}
		return true
	})

	report := func(o types.Object, pos token.Pos, format string, args ...any) {
		ownerPath := "?"
		if o.Pkg() != nil {
			ownerPath = o.Pkg().Path()
		}
		args = append(args, ownerPath)
		pass.Reportf(pos, format+" (owner %s)", args...)
	}

	// Pass 2: every remaining use of a marked object is classified.
	checkUse := func(e ast.Expr, o types.Object, label string) {
		if sanctioned[e] {
			return
		}
		kind := "field"
		if v, ok := o.(*types.Var); !ok || !v.IsField() {
			kind = "var"
		}
		switch p := parentOf(e).(type) {
		case *ast.UnaryExpr:
			if p.Op == token.AND {
				if sanctioned[p] {
					return
				}
				report(o, e.Pos(), "address of atomic %s %s escapes to non-atomic code — pass it only to sync/atomic", kind, label)
				return
			}
		case *ast.AssignStmt:
			for _, lhs := range p.Lhs {
				if ast.Unparen(lhs) == e {
					report(o, e.Pos(), "plain write to atomic %s %s — use sync/atomic (or the atomic.* method set)", kind, label)
					return
				}
			}
		case *ast.IncDecStmt:
			report(o, e.Pos(), "plain write to atomic %s %s — use sync/atomic Add", kind, label)
			return
		case *ast.KeyValueExpr:
			if p.Key == e {
				return // composite-literal initialization is exempt
			}
		case *ast.SelectorExpr:
			if p.X == e {
				report(o, e.Pos(), "non-atomic access through atomic %s %s — use the atomic.* method set", kind, label)
				return
			}
		}
		report(o, e.Pos(), "plain read of atomic %s %s — use sync/atomic (or the atomic.* method set)", kind, label)
	}

	ast.Inspect(f, func(nd ast.Node) bool {
		switch x := nd.(type) {
		case *ast.SelectorExpr:
			if o, label, ok := markedObj(x); ok {
				checkUse(x, o, label)
			}
		case *ast.Ident:
			// The Sel of a selector was handled with its parent.
			if p, ok := parents[x].(*ast.SelectorExpr); ok && p.Sel == x {
				return true
			}
			if o, label, ok := markedObj(x); ok {
				checkUse(x, o, label)
			}
		}
		return true
	})

	// Pass 3: by-value copies of structs that contain atomic fields.
	ast.Inspect(f, func(nd ast.Node) bool {
		e, ok := nd.(ast.Expr)
		if !ok {
			return true
		}
		switch e.(type) {
		case *ast.Ident, *ast.SelectorExpr, *ast.StarExpr, *ast.IndexExpr:
		default:
			return true
		}
		tv, ok := info.Types[e]
		if !ok || !tv.IsValue() {
			return true
		}
		named, ok := tv.Type.(*types.Named)
		if !ok {
			return true
		}
		fields, ok := c.atomicOwners[typeKey(named.Obj())]
		if !ok {
			return true
		}
		if id, ok := e.(*ast.Ident); ok && info.Uses[id] == nil {
			return true // declaration site, not a use
		}
		switch p := parentOf(e).(type) {
		case *ast.SelectorExpr:
			if p.X == e {
				return true // member access reads one field, not a copy
			}
		case *ast.UnaryExpr:
			if p.Op == token.AND {
				return true // &s takes the address, no copy
			}
		}
		pass.Reportf(e.Pos(), "copy of %s smuggles its atomic field(s) %s outside sync/atomic — pass a pointer (owner %s)",
			ownerLabel(named.Obj()), fields, named.Obj().Pkg().Path())
		return true
	})
}

// isAtomicPkgType reports whether t (or *t) is a named type declared
// in sync/atomic — atomic.Int64, atomic.Value, and friends.
func isAtomicPkgType(t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	return ok && n.Obj().Pkg() != nil && n.Obj().Pkg().Path() == "sync/atomic"
}
