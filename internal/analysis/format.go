package analysis

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
)

// format.go renders diagnostics machine-readably: plain JSON for
// scripting, SARIF 2.1.0 for GitHub code scanning, and GitHub workflow
// annotation commands for inline PR review comments.

// jsonDiagnostic is the stable JSON wire form of one Diagnostic.
type jsonDiagnostic struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Column   int    `json:"column"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

// WriteJSON writes the diagnostics as an indented JSON array (an empty
// array when clean, never null).
func WriteJSON(w io.Writer, diags []Diagnostic) error {
	out := make([]jsonDiagnostic, 0, len(diags))
	for _, d := range diags {
		out = append(out, jsonDiagnostic{
			File:     d.Pos.Filename,
			Line:     d.Pos.Line,
			Column:   d.Pos.Column,
			Analyzer: d.Analyzer,
			Message:  d.Message,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// SARIF 2.1.0 document shape, the subset GitHub code scanning consumes.
type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name           string      `json:"name"`
	InformationURI string      `json:"informationUri,omitempty"`
	Rules          []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string       `json:"id"`
	ShortDescription sarifMessage `json:"shortDescription"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	Level     string          `json:"level"`
	Message   sarifMessage    `json:"message"`
	Locations []sarifLocation `json:"locations"`
}

type sarifMessage struct {
	Text string `json:"text"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysicalLocation `json:"physicalLocation"`
}

type sarifPhysicalLocation struct {
	ArtifactLocation sarifArtifactLocation `json:"artifactLocation"`
	Region           sarifRegion           `json:"region"`
}

type sarifArtifactLocation struct {
	URI string `json:"uri"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn,omitempty"`
}

// WriteSARIF writes the diagnostics as a single-run SARIF 2.1.0 log.
// Every analyzer that could have fired is declared as a rule (plus the
// synthetic "audit" rule), so rule metadata is stable across runs.
// Rule ids are namespaced "taqvet/<analyzer>" so the analyzer name
// survives into every result's ruleId even when logs from several
// tools are merged by a SARIF consumer.
func WriteSARIF(w io.Writer, diags []Diagnostic) error {
	var rules []sarifRule
	for _, a := range All() {
		rules = append(rules, sarifRule{ID: sarifRuleID(a.Name), ShortDescription: sarifMessage{Text: a.Doc}})
	}
	rules = append(rules, sarifRule{
		ID:               sarifRuleID("audit"),
		ShortDescription: sarifMessage{Text: "stale //taq:allow suppressions and malformed //taq: directives"},
	})
	results := make([]sarifResult, 0, len(diags))
	for _, d := range diags {
		results = append(results, sarifResult{
			RuleID:  sarifRuleID(d.Analyzer),
			Level:   "error",
			Message: sarifMessage{Text: d.Message},
			Locations: []sarifLocation{{
				PhysicalLocation: sarifPhysicalLocation{
					ArtifactLocation: sarifArtifactLocation{URI: sarifURI(d.Pos.Filename)},
					Region:           sarifRegion{StartLine: d.Pos.Line, StartColumn: d.Pos.Column},
				},
			}},
		})
	}
	log := sarifLog{
		Schema:  "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/Schemata/sarif-schema-2.1.0.json",
		Version: "2.1.0",
		Runs: []sarifRun{{
			Tool:    sarifTool{Driver: sarifDriver{Name: "taqvet", Rules: rules}},
			Results: results,
		}},
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(log)
}

// sarifRuleID namespaces an analyzer name for SARIF consumers.
func sarifRuleID(analyzer string) string { return "taqvet/" + analyzer }

// sarifURI renders the filename as a forward-slash relative URI, the
// form GitHub code scanning maps back onto the repository tree.
func sarifURI(filename string) string {
	return strings.ReplaceAll(filename, "\\", "/")
}

// WriteGitHub writes the diagnostics as GitHub Actions workflow
// annotation commands, which render as inline errors in the PR diff.
func WriteGitHub(w io.Writer, diags []Diagnostic) error {
	for _, d := range diags {
		// The annotation grammar reserves %, \r, \n; escape per the
		// workflow-command spec.
		msg := strings.NewReplacer("%", "%25", "\r", "%0D", "\n", "%0A").Replace(d.Message)
		if _, err := fmt.Fprintf(w, "::error file=%s,line=%d,col=%d,title=taqvet/%s::%s\n",
			d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, msg); err != nil {
			return err
		}
	}
	return nil
}
