package analysis

// layout verifies //taq:layout struct directives against go/types
// sizes: size=N pins Sizeof exactly (the 200-byte flowInfo record the
// 1M-flow benchmarks depend on), align=N requires the struct to be
// padded to a multiple of N (cache-line padding on structs destined to
// become per-shard headers), and hotbytes=LO..HI pins the hot-core
// section edges to real field boundaries — a field moved across the
// boundary, or padding drift that grows the record, fails `make check`
// instead of the benchmark.
//
// All sizes come from one fixed model: gc on amd64 (layoutSizes).
// Pinning one model keeps directive values and the committed
// docs/taq-annotations.txt baseline identical on every dev machine and
// in CI; it is the deployment target the paper's numbers assume, and
// the repo's records use fixed-width fields so arm64 agrees anyway.

import (
	"go/types"
)

// Layout verifies //taq:layout size/align/hotbytes pins.
var Layout = &Analyzer{
	Name: "layout",
	Doc:  "//taq:layout size=N / align=N / hotbytes=LO..HI struct pins verified against the gc/amd64 size model",
	Run:  runLayout,
}

// layoutSizes is the deployment size model (see package comment above).
var layoutSizes = types.SizesFor("gc", "amd64")

func runLayout(pass *Pass) {
	if pass.Prog == nil {
		return
	}
	for _, pin := range pass.Prog.contractsIndex().layouts {
		if pin.pkg == pass.Pkg {
			checkLayoutPin(pass, pin)
		}
	}
}

func checkLayoutPin(pass *Pass, pin layoutPin) {
	t := pin.tn.Type()
	if n, ok := t.(*types.Named); ok && n.TypeParams().Len() > 0 {
		return // generic: no single concrete layout to pin
	}
	st, ok := t.Underlying().(*types.Struct)
	if !ok {
		return // misplaced directive; collectMalformed reports it
	}
	label := ownerLabel(pin.tn)
	size := layoutSizes.Sizeof(t)
	if pin.spec.size >= 0 && size != pin.spec.size {
		pass.Reportf(pin.pos, "struct %s is %d bytes; //taq:layout pins size=%d — a field change broke the record layout (owner %s)",
			label, size, pin.spec.size, pin.tn.Pkg().Path())
	}
	if pin.spec.align > 0 && size%pin.spec.align != 0 {
		pass.Reportf(pin.pos, "struct %s is %d bytes, not padded to a multiple of align=%d (%d bytes past the last %d-byte boundary) (owner %s)",
			label, size, pin.spec.align, size%pin.spec.align, pin.spec.align, pin.tn.Pkg().Path())
	}
	if pin.spec.hotLo >= 0 {
		fields := make([]*types.Var, st.NumFields())
		for i := range fields {
			fields[i] = st.Field(i)
		}
		offs := layoutSizes.Offsetsof(fields)
		loOK := pin.spec.hotLo == 0 // the record head is always an edge
		hiOK := false
		starts := make([]int64, 0, len(fields))
		ends := make([]int64, 0, len(fields))
		for i := range fields {
			end := offs[i] + layoutSizes.Sizeof(fields[i].Type())
			starts = append(starts, offs[i])
			ends = append(ends, end)
			if offs[i] == pin.spec.hotLo {
				loOK = true
			}
			if end == pin.spec.hotHi {
				hiOK = true
			}
		}
		if !loOK || !hiOK {
			pass.Reportf(pin.pos, "hotbytes=%d..%d does not land on %s field boundaries (field starts %v, ends %v) — the hot core moved (owner %s)",
				pin.spec.hotLo, pin.spec.hotHi, label, starts, ends, pin.tn.Pkg().Path())
		}
	}
}
