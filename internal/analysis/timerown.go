package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// TimerOwn enforces the engine's timer free-list ownership contract
// (DESIGN.md §5): sim.Reschedule / Engine.Reschedule take ownership of
// the handle passed in — the struct may be re-armed in place for an
// unrelated event — so the only valid handle afterwards is the one
// Reschedule returns. The analyzer tracks *sim.Timer handles through
// the intra-procedural flow pass and flags, along any control-flow
// path where the handle was not replaced:
//
//   - a plain use (read, argument, return) of the stale handle;
//   - Cancel/Stop on it — by then the struct may have been recycled
//     for a stranger's event, which the Cancel would kill;
//   - a second Reschedule of the same stale handle;
//   - storing it into a field, map, or slice (the stale alias escapes);
//   - discarding Reschedule's result, which makes every existing
//     handle stale with no replacement.
//
// The sim package itself (which implements the recycling) is exempt.
var TimerOwn = &Analyzer{
	Name: "timerown",
	Doc:  "flag uses of *sim.Timer handles after Reschedule transferred their ownership",
	Run:  runTimerOwn,
}

// Timer ownership facts.
const (
	ownLive        = 0 // valid handle (or no information)
	ownTransferred = 1 // handed to Reschedule on every path here
	ownMaybe       = 2 // handed to Reschedule on some path here
)

func ownJoin(a, b int) int {
	if a == b {
		return a
	}
	return ownMaybe
}

func runTimerOwn(p *Pass) {
	if isSimPackage(p.Pkg.Path) {
		return // the engine legally touches recycled structs
	}
	for _, f := range p.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkTimerOwn(p, fd.Body)
		}
	}
}

func checkTimerOwn(p *Pass, body *ast.BlockStmt) {
	info := p.Pkg.Info

	// cancels maps a Cancel/Stop call to the receiver expression it
	// claimed in PreCall, so PostCall can phrase the specific message.
	cancels := make(map[*ast.CallExpr]ast.Expr)
	transfers := make(map[*ast.CallExpr]ast.Expr)

	hooks := FlowHooks{
		Join: ownJoin,
		PreCall: func(call *ast.CallExpr, st FlowState) []ast.Expr {
			var claimed []ast.Expr
			if arg := rescheduleHandleArg(info, call); arg != nil {
				transfers[call] = arg
				claimed = append(claimed, arg)
			}
			if recv := cancelReceiver(info, call); recv != nil {
				cancels[call] = recv
				claimed = append(claimed, recv)
			}
			return claimed
		},
		PostCall: func(call *ast.CallExpr, st FlowState) {
			if arg, ok := transfers[call]; ok {
				if r, ok := RefOf(info, arg); ok {
					switch st.Get(r) {
					case ownTransferred:
						p.Reportf(arg.Pos(),
							"second Reschedule of %s on this path: its ownership was already transferred and the handle is stale; use the handle the first Reschedule returned",
							exprString(arg))
					case ownMaybe:
						p.Reportf(arg.Pos(),
							"Reschedule of %s, which may already have been handed to Reschedule on another path; replace the handle with Reschedule's result on every path",
							exprString(arg))
					}
					st.Set(r, ownTransferred)
				}
			}
			if recv, ok := cancels[call]; ok {
				if r, ok := RefOf(info, recv); ok {
					switch st.Get(r) {
					case ownTransferred:
						p.Reportf(recv.Pos(),
							"Cancel of %s after Reschedule took ownership: the engine may have recycled the struct for an unrelated event, so this Cancel can kill a stranger's timer",
							exprString(recv))
					case ownMaybe:
						p.Reportf(recv.Pos(),
							"Cancel of %s, which may have been handed to Reschedule on another path (recycled handle); re-assign the handle from Reschedule's result on every path",
							exprString(recv))
					}
				}
			}
		},
		Assign: func(lhs, rhs ast.Expr, tok token.Token, st FlowState) {
			if r, ok := RefOf(info, lhs); ok && isSimTimerPtr(info.TypeOf(lhs)) {
				// Any re-assignment installs a fresh handle.
				st.Set(r, ownLive)
			}
		},
		Use: func(e ast.Expr, r Ref, ctx UseCtx, st FlowState) {
			if !isSimTimerPtr(typeOfRef(info, e)) {
				return
			}
			fact := st.Get(r)
			if fact == ownLive {
				return
			}
			qualifier := "was "
			if fact == ownMaybe {
				qualifier = "may have been "
			}
			switch ctx {
			case UseStore:
				p.Reportf(e.Pos(),
					"stores %s into a field, map, or slice, but its ownership %stransferred to Reschedule — the escaped handle is stale and may be recycled",
					exprString(e), qualifier)
			case UseReturn:
				p.Reportf(e.Pos(),
					"returns %s whose ownership %stransferred to Reschedule; return the handle Reschedule returned instead",
					exprString(e), qualifier)
			default:
				p.Reportf(e.Pos(),
					"use of %s after its ownership %stransferred to Reschedule; use the handle Reschedule returned instead",
					exprString(e), qualifier)
			}
		},
	}
	WalkFlow(info, body, nil, hooks)

	// Discarded Reschedule results are a syntactic check: the returned
	// handle is the only valid one, so dropping it strands the caller
	// with nothing but stale aliases.
	ast.Inspect(body, func(n ast.Node) bool {
		es, ok := n.(*ast.ExprStmt)
		if !ok {
			return true
		}
		call, ok := ast.Unparen(es.X).(*ast.CallExpr)
		if !ok {
			return true
		}
		if rescheduleHandleArg(info, call) == nil || !isSimTimerPtr(info.TypeOf(call)) {
			return true
		}
		p.Reportf(es.Pos(),
			"discarded Reschedule result: the returned handle replaces the one passed in; assign it back (t = sim.Reschedule(r, t, ...))")
		return true
	})
}

// rescheduleHandleArg returns the *sim.Timer argument of a Reschedule
// call (package helper sim.Reschedule or a Reschedule method), or nil
// when call is not a Reschedule.
func rescheduleHandleArg(info *types.Info, call *ast.CallExpr) ast.Expr {
	name := ""
	switch f := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		name = f.Name
	case *ast.SelectorExpr:
		name = f.Sel.Name
	}
	if name != "Reschedule" {
		return nil
	}
	for _, arg := range call.Args {
		if isSimTimerPtr(info.TypeOf(arg)) {
			return arg
		}
	}
	return nil
}

// cancelReceiver returns the receiver expression of a t.Cancel()/
// t.Stop() call on a *sim.Timer, or nil.
func cancelReceiver(info *types.Info, call *ast.CallExpr) ast.Expr {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || (sel.Sel.Name != "Cancel" && sel.Sel.Name != "Stop") {
		return nil
	}
	if !isSimTimerPtr(info.TypeOf(sel.X)) {
		return nil
	}
	return sel.X
}

// typeOfRef resolves the static type of the expression behind a Use.
func typeOfRef(info *types.Info, e ast.Expr) types.Type {
	return info.TypeOf(e)
}

// isSimPackage reports whether pkgPath is the sim engine package.
func isSimPackage(pkgPath string) bool {
	return pkgPath == "taq/internal/sim"
}
