package analysis

// shardown enforces the shard-ownership contract ahead of the
// flow-hash-sharded middlebox (ROADMAP item 1): a type annotated
// //taq:shardowned is shard-private mutable state — the tracker, the
// flat flow store, the open-addressed index, class queues, deadline
// heaps. Values of such a type (or pointers/slices/arrays/maps of it)
// must never leave their owning scope:
//
//   - stored into a package-level variable (or declared as one);
//   - passed to, or captured by, a goroutine — a new goroutine is
//     another shard's execution context;
//   - returned by an exported function or method — the audited escape
//     hatch is a //taq:crossshard annotation with a rationale;
//   - passed as an argument across a package boundary within this
//     module, unless the callee is //taq:crossshard.
//
// Callees outside the module (stdlib like slices.SortFunc) are opaque
// leaves: they cannot retain shard state across calls in ways this
// contract is about, and flagging them would drown the signal.
// Function-value calls are skipped like lockorder does — the callee is
// not statically known, so the edge is not demonstrably a boundary
// crossing. Ownership is not transitive through struct fields (see
// ownedIn); wrapper structs need their own annotation.

import (
	"go/ast"
	"go/token"
	"go/types"
)

// ShardOwn proves //taq:shardowned values never escape their shard.
var ShardOwn = &Analyzer{
	Name: "shardown",
	Doc:  "//taq:shardowned state must not reach globals, goroutines, exported returns, or foreign packages except via //taq:crossshard",
	Run:  runShardOwn,
}

func runShardOwn(pass *Pass) {
	if pass.Prog == nil {
		return
	}
	c := pass.Prog.contractsIndex()
	if len(c.shardOwned) == 0 {
		return
	}
	for _, f := range pass.Pkg.Files {
		checkShardFile(pass, f, c)
	}
}

func checkShardFile(pass *Pass, f *ast.File, c *contracts) {
	info := pass.Pkg.Info
	for _, d := range f.Decls {
		switch d := d.(type) {
		case *ast.GenDecl:
			if d.Tok != token.VAR {
				continue
			}
			for _, s := range d.Specs {
				vs, ok := s.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for _, name := range vs.Names {
					obj := info.Defs[name]
					if obj == nil {
						continue
					}
					if tn := ownedIn(obj.Type(), c.shardOwned, 0); tn != nil {
						pass.Reportf(name.Pos(), "package-level var %s holds shard-owned %s — shard state must stay inside its shard (owner %s)",
							name.Name, ownerLabel(tn), tn.Pkg().Path())
					}
				}
			}
		case *ast.FuncDecl:
			checkShardFunc(pass, d, c)
		}
	}
}

func checkShardFunc(pass *Pass, fd *ast.FuncDecl, c *contracts) {
	info := pass.Pkg.Info
	fn, _ := info.Defs[fd.Name].(*types.Func)
	cross := fn != nil && c.crossShard[fn.FullName()]

	// Exported API must not hand shard-owned values past the owner.
	if fd.Name.IsExported() && !cross && fd.Type.Results != nil {
		for _, fld := range fd.Type.Results.List {
			t := info.TypeOf(fld.Type)
			if tn := ownedIn(t, c.shardOwned, 0); tn != nil {
				pass.Reportf(fld.Type.Pos(), "exported %s returns shard-owned %s past its owner — annotate //taq:crossshard with a rationale or keep it unexported (owner %s)",
					fd.Name.Name, ownerLabel(tn), tn.Pkg().Path())
			}
		}
	}
	if fd.Body == nil {
		return
	}
	ast.Inspect(fd.Body, func(nd ast.Node) bool {
		switch x := nd.(type) {
		case *ast.AssignStmt:
			checkShardStore(pass, x, c)
		case *ast.GoStmt:
			checkShardGo(pass, x, c)
		case *ast.CallExpr:
			checkShardCall(pass, x, c)
		}
		return true
	})
}

// checkShardStore flags assignments that park a shard-owned value in a
// package-level variable (directly or through its fields/elements).
func checkShardStore(pass *Pass, as *ast.AssignStmt, c *contracts) {
	info := pass.Pkg.Info
	for i, lhs := range as.Lhs {
		base := baseIdent(lhs)
		if base == nil || !isPkgLevelVar(info, base) {
			continue
		}
		// Prefer the stored value's type: the global may be typed as an
		// interface (any) and still smuggle the record.
		var t types.Type
		if len(as.Rhs) == len(as.Lhs) {
			t = info.TypeOf(as.Rhs[i])
		}
		if t == nil || ownedIn(t, c.shardOwned, 0) == nil {
			t = info.TypeOf(lhs)
		}
		if tn := ownedIn(t, c.shardOwned, 0); tn != nil {
			pass.Reportf(lhs.Pos(), "shard-owned %s stored into package-level %s — shard state must stay inside its shard (owner %s)",
				ownerLabel(tn), base.Name, tn.Pkg().Path())
		}
	}
}

// checkShardGo flags shard-owned values entering a goroutine: by
// argument, by method receiver, or by closure capture.
func checkShardGo(pass *Pass, g *ast.GoStmt, c *contracts) {
	info := pass.Pkg.Info
	call := g.Call
	for _, arg := range call.Args {
		if tn := ownedIn(info.TypeOf(arg), c.shardOwned, 0); tn != nil {
			pass.Reportf(arg.Pos(), "shard-owned %s passed into a goroutine — a new goroutine is another shard's context (owner %s)",
				ownerLabel(tn), tn.Pkg().Path())
		}
	}
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.SelectorExpr:
		if tn := ownedIn(info.TypeOf(fun.X), c.shardOwned, 0); tn != nil {
			pass.Reportf(fun.X.Pos(), "shard-owned %s receiver started as a goroutine (owner %s)",
				ownerLabel(tn), tn.Pkg().Path())
		}
	case *ast.FuncLit:
		seen := make(map[*types.Var]bool)
		ast.Inspect(fun.Body, func(nd ast.Node) bool {
			id, ok := nd.(*ast.Ident)
			if !ok {
				return true
			}
			v, ok := info.Uses[id].(*types.Var)
			if !ok || seen[v] || v.IsField() {
				return true
			}
			if v.Pos() >= fun.Pos() && v.Pos() <= fun.End() {
				return true // declared inside the literal
			}
			if sc := v.Parent(); sc == nil || sc.Parent() == types.Universe {
				return true // package-level: flagged at its declaration
			}
			if tn := ownedIn(v.Type(), c.shardOwned, 0); tn != nil {
				seen[v] = true
				pass.Reportf(id.Pos(), "goroutine closure captures shard-owned %s %s (owner %s)",
					ownerLabel(tn), v.Name(), tn.Pkg().Path())
			}
			return true
		})
	}
}

// checkShardCall flags shard-owned arguments handed to a statically
// resolved callee declared in a different package of this module,
// unless the callee is //taq:crossshard.
func checkShardCall(pass *Pass, call *ast.CallExpr, c *contracts) {
	info := pass.Pkg.Info
	var obj types.Object
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		obj = info.Uses[fun]
	case *ast.SelectorExpr:
		obj = info.Uses[fun.Sel]
	default:
		return // function values: callee unknown, skip like lockorder
	}
	callee, ok := obj.(*types.Func)
	if !ok {
		return // builtin, conversion, or func-typed variable
	}
	calleePkg := callee.Pkg()
	if calleePkg == nil || c.crossShard[callee.FullName()] {
		return
	}
	for _, arg := range call.Args {
		tn := ownedIn(info.TypeOf(arg), c.shardOwned, 0)
		if tn == nil {
			continue
		}
		owner := tn.Pkg()
		if owner == nil || calleePkg.Path() == owner.Path() {
			continue // owner-package internals
		}
		if modulePathOf(calleePkg.Path()) != modulePathOf(owner.Path()) {
			continue // stdlib / external leaf
		}
		pass.Reportf(arg.Pos(), "shard-owned %s passed across the package boundary to %s — annotate the callee //taq:crossshard or keep the call inside %s",
			ownerLabel(tn), shortFuncName(callee.FullName()), owner.Path())
	}
}

// baseIdent unwraps an lvalue to its leftmost identifier: g, g.f,
// g[i].f, (*g).f all resolve to g.
func baseIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// isPkgLevelVar reports whether id names a package-level variable.
func isPkgLevelVar(info *types.Info, id *ast.Ident) bool {
	v, ok := info.Uses[id].(*types.Var)
	if !ok || v.IsField() {
		return false
	}
	sc := v.Parent()
	return sc != nil && sc.Parent() == types.Universe
}
