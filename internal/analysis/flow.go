package analysis

// flow.go is the shared intra-procedural def-use/escape pass behind the
// dataflow analyzers (timerown, detaint). It walks one function body in
// execution order, carrying a client-defined abstract fact per tracked
// storage location (a local variable, a parameter, or a one-level field
// of one, e.g. s.rtoTimer). Control flow is approximated the standard
// way:
//
//   - branches (if/switch/select) analyze each arm on a clone of the
//     incoming state and join the results with the client's lattice
//     Join at the merge point;
//   - loops run the body twice — the second pass starts from the join
//     of the entry state and the first pass's exit, which is enough to
//     see facts that one iteration establishes and the next violates
//     (use-after-transfer across iterations, taint through a loop
//     -carried variable) without a full fixpoint;
//   - function literals are walked with a fresh empty state: a closure
//     runs at an unknown time, so facts about captured variables are
//     neither trusted inside it nor leaked back out.
//
// Because loop bodies are walked twice, clients must tolerate seeing
// the same syntactic event more than once; Run deduplicates identical
// diagnostics, so Reportf from a hook is safe.

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Ref identifies a trackable storage location: a variable, or one
// field of a variable (Base.Field). Deeper paths (a.b.c) collapse to
// their outermost field so that aliasing stays conservative.
type Ref struct {
	Base  types.Object
	Field types.Object // nil when the Ref is the variable itself
}

// RefOf resolves an expression to a Ref. The second result is false
// for anything that is not a variable or variable.field path (calls,
// indexes, literals, package selectors).
func RefOf(info *types.Info, e ast.Expr) (Ref, bool) {
	e = ast.Unparen(e)
	switch x := e.(type) {
	case *ast.Ident:
		obj := info.Uses[x]
		if obj == nil {
			obj = info.Defs[x]
		}
		if v, ok := obj.(*types.Var); ok {
			return Ref{Base: v}, true
		}
	case *ast.SelectorExpr:
		sel, ok := info.Selections[x]
		if !ok || sel.Kind() != types.FieldVal {
			return Ref{}, false
		}
		base := ast.Unparen(x.X)
		if star, ok := base.(*ast.StarExpr); ok {
			base = ast.Unparen(star.X)
		}
		id, ok := base.(*ast.Ident)
		if !ok {
			return Ref{}, false
		}
		if v, ok := info.Uses[id].(*types.Var); ok {
			return Ref{Base: v, Field: sel.Obj()}, true
		}
	case *ast.StarExpr:
		return RefOf(info, x.X)
	}
	return Ref{}, false
}

// FlowState carries one abstract fact (a small client-defined integer,
// zero meaning "no information") per Ref.
type FlowState map[Ref]int

// Get returns the fact for r (zero when untracked).
func (s FlowState) Get(r Ref) int { return s[r] }

// Set records a fact for r; setting zero forgets the Ref.
func (s FlowState) Set(r Ref, fact int) {
	if fact == 0 {
		delete(s, r)
		return
	}
	s[r] = fact
}

func (s FlowState) clone() FlowState {
	out := make(FlowState, len(s))
	for k, v := range s {
		out[k] = v
	}
	return out
}

// UseCtx tells the Use hook where a read occurs, so clients can phrase
// escape-specific diagnostics.
type UseCtx int

const (
	// UseRead is a plain rvalue read (expression operand, call callee).
	UseRead UseCtx = iota
	// UseStore is a read whose value is stored into a field, map, or
	// slice element — the value escapes the local frame.
	UseStore
	// UseReturn is a read inside a return statement.
	UseReturn
	// UseArg is a read inside a (non-claimed) call argument.
	UseArg
)

// FlowHooks are the client callbacks. Any hook may be nil except Join.
type FlowHooks struct {
	// Join merges the facts of one Ref at a control-flow merge point.
	// It must be commutative and treat 0 as "no information".
	Join func(a, b int) int
	// PreCall runs before a call's arguments are walked. Expressions it
	// returns are claimed: the generic Use hook is not fired for them
	// (the client handles them itself in PostCall).
	PreCall func(call *ast.CallExpr, st FlowState) (claimed []ast.Expr)
	// PostCall runs after the call's callee and arguments were walked.
	PostCall func(call *ast.CallExpr, st FlowState)
	// Assign runs once per assigned element, after the right-hand sides
	// were walked. rhs is the paired expression (the shared call in a
	// tuple assignment; nil for zero-value var declarations and ++/--).
	Assign func(lhs, rhs ast.Expr, tok token.Token, st FlowState)
	// Use fires for every rvalue read of a trackable Ref.
	Use func(e ast.Expr, r Ref, ctx UseCtx, st FlowState)
	// Range runs after a range statement's operand was walked and
	// before its body — the place to taint or check loop variables.
	Range func(rs *ast.RangeStmt, st FlowState)
	// Return runs after a return statement's results were walked.
	Return func(rt *ast.ReturnStmt, st FlowState)
}

// WalkFlow runs the def-use pass over body starting from st (which may
// be nil) and returns the exit state.
func WalkFlow(info *types.Info, body *ast.BlockStmt, st FlowState, hooks FlowHooks) FlowState {
	if st == nil {
		st = make(FlowState)
	}
	w := &flowWalker{info: info, hooks: hooks, claimed: make(map[ast.Expr]bool)}
	w.stmt(body, st)
	return st
}

type flowWalker struct {
	info    *types.Info
	hooks   FlowHooks
	claimed map[ast.Expr]bool
}

// join merges b into a element-wise and returns a.
func (w *flowWalker) join(a, b FlowState) FlowState {
	for r, fb := range b {
		if fa := a[r]; fa != fb {
			a.Set(r, w.hooks.Join(fa, fb))
		}
	}
	for r, fa := range a {
		if _, ok := b[r]; !ok {
			a.Set(r, w.hooks.Join(fa, 0))
		}
	}
	return a
}

func (w *flowWalker) stmt(s ast.Stmt, st FlowState) {
	switch s := s.(type) {
	case nil:
	case *ast.BlockStmt:
		for _, sub := range s.List {
			w.stmt(sub, st)
		}
	case *ast.ExprStmt:
		w.expr(s.X, st, UseRead)
	case *ast.AssignStmt:
		w.assign(s, st)
	case *ast.IncDecStmt:
		if w.hooks.Assign != nil {
			w.hooks.Assign(s.X, nil, s.Tok, st)
		}
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for _, v := range vs.Values {
					w.expr(v, st, UseRead)
				}
				for i, name := range vs.Names {
					var rhs ast.Expr
					if i < len(vs.Values) {
						rhs = vs.Values[i]
					} else if len(vs.Values) == 1 {
						rhs = vs.Values[0]
					}
					if w.hooks.Assign != nil {
						w.hooks.Assign(name, rhs, token.DEFINE, st)
					}
				}
			}
		}
	case *ast.IfStmt:
		w.stmt(s.Init, st)
		w.expr(s.Cond, st, UseRead)
		thenSt := st.clone()
		w.stmt(s.Body, thenSt)
		elseSt := st.clone()
		w.stmt(s.Else, elseSt)
		w.join(thenSt, elseSt)
		replace(st, thenSt)
	case *ast.ForStmt:
		w.stmt(s.Init, st)
		w.expr(s.Cond, st, UseRead)
		w.loopBody(st, func(inner FlowState) {
			w.stmt(s.Body, inner)
			w.stmt(s.Post, inner)
			w.expr(s.Cond, inner, UseRead)
		})
	case *ast.RangeStmt:
		w.expr(s.X, st, UseRead)
		if w.hooks.Range != nil {
			w.hooks.Range(s, st)
		}
		w.loopBody(st, func(inner FlowState) {
			if w.hooks.Range != nil {
				w.hooks.Range(s, inner)
			}
			w.stmt(s.Body, inner)
		})
	case *ast.SwitchStmt:
		w.stmt(s.Init, st)
		w.expr(s.Tag, st, UseRead)
		w.branches(st, s.Body)
	case *ast.TypeSwitchStmt:
		w.stmt(s.Init, st)
		w.branches(st, s.Body)
	case *ast.SelectStmt:
		w.branches(st, s.Body)
	case *ast.CaseClause:
		for _, e := range s.List {
			w.expr(e, st, UseRead)
		}
		for _, sub := range s.Body {
			w.stmt(sub, st)
		}
	case *ast.CommClause:
		w.stmt(s.Comm, st)
		for _, sub := range s.Body {
			w.stmt(sub, st)
		}
	case *ast.ReturnStmt:
		for _, e := range s.Results {
			w.expr(e, st, UseReturn)
		}
		if w.hooks.Return != nil {
			w.hooks.Return(s, st)
		}
	case *ast.SendStmt:
		w.expr(s.Chan, st, UseRead)
		w.expr(s.Value, st, UseStore)
	case *ast.DeferStmt:
		w.expr(s.Call, st, UseRead)
	case *ast.GoStmt:
		w.expr(s.Call, st, UseRead)
	case *ast.LabeledStmt:
		w.stmt(s.Stmt, st)
	case *ast.BranchStmt, *ast.EmptyStmt:
		// break/continue/goto: joins are approximated at loop level.
	}
}

// loopBody walks a loop body twice: once from the entry state, once
// from entry ⊔ first-pass-exit, then merges everything into st (the
// loop may also run zero times).
func (w *flowWalker) loopBody(st FlowState, walk func(FlowState)) {
	first := st.clone()
	walk(first)
	second := w.join(st.clone(), first)
	walk(second)
	w.join(st, w.join(first, second))
}

// branches analyzes each clause of a switch/select body independently
// and joins the results (including the fall-through "no clause ran"
// state, a sound default even when a default clause exists).
func (w *flowWalker) branches(st FlowState, body *ast.BlockStmt) {
	if body == nil {
		return
	}
	merged := st.clone()
	for _, clause := range body.List {
		cs := st.clone()
		w.stmt(clause, cs)
		w.join(merged, cs)
	}
	replace(st, merged)
}

func replace(dst, src FlowState) {
	for k := range dst {
		delete(dst, k)
	}
	for k, v := range src {
		dst[k] = v
	}
}

func (w *flowWalker) assign(s *ast.AssignStmt, st FlowState) {
	for i, rhs := range s.Rhs {
		ctx := UseRead
		// A read feeding a field/map/slice store escapes.
		if len(s.Lhs) == len(s.Rhs) && escapesStore(w.info, s.Lhs[i]) {
			ctx = UseStore
		}
		w.expr(rhs, st, ctx)
	}
	for i, lhs := range s.Lhs {
		var rhs ast.Expr
		if len(s.Lhs) == len(s.Rhs) {
			rhs = s.Rhs[i]
		} else if len(s.Rhs) == 1 {
			rhs = s.Rhs[0]
		}
		// Index/selector components of a non-Ref lvalue are reads
		// (m[k] = v reads k), walked before the Assign hook fires.
		if _, ok := RefOf(w.info, lhs); !ok {
			switch x := ast.Unparen(lhs).(type) {
			case *ast.IndexExpr:
				w.expr(x.X, st, UseRead)
				w.expr(x.Index, st, UseRead)
			case *ast.SelectorExpr:
				w.expr(x.X, st, UseRead)
			case *ast.StarExpr:
				w.expr(x.X, st, UseRead)
			}
		}
		if w.hooks.Assign != nil {
			w.hooks.Assign(lhs, rhs, s.Tok, st)
		}
	}
}

// escapesStore reports whether an lvalue stores into a field, map, or
// slice element (rather than a plain local variable).
func escapesStore(info *types.Info, lhs ast.Expr) bool {
	switch ast.Unparen(lhs).(type) {
	case *ast.IndexExpr, *ast.SelectorExpr, *ast.StarExpr:
		return true
	}
	return false
}

func (w *flowWalker) expr(e ast.Expr, st FlowState, ctx UseCtx) {
	if e == nil || w.claimed[e] {
		return
	}
	switch x := e.(type) {
	case *ast.Ident:
		if r, ok := RefOf(w.info, x); ok && w.hooks.Use != nil {
			w.hooks.Use(x, r, ctx, st)
		}
	case *ast.SelectorExpr:
		if r, ok := RefOf(w.info, x); ok {
			if w.hooks.Use != nil {
				w.hooks.Use(x, r, ctx, st)
			}
			return
		}
		// Package selector or method value: the base may still be a
		// tracked variable (method receiver).
		w.expr(x.X, st, ctx)
	case *ast.CallExpr:
		if w.hooks.PreCall != nil {
			for _, c := range w.hooks.PreCall(x, st) {
				w.claimed[c] = true
			}
		}
		w.expr(x.Fun, st, UseRead)
		for _, arg := range x.Args {
			w.expr(arg, st, UseArg)
		}
		if w.hooks.PostCall != nil {
			w.hooks.PostCall(x, st)
		}
	case *ast.BinaryExpr:
		w.expr(x.X, st, ctx)
		w.expr(x.Y, st, ctx)
	case *ast.UnaryExpr:
		w.expr(x.X, st, ctx)
	case *ast.ParenExpr:
		w.expr(x.X, st, ctx)
	case *ast.StarExpr:
		w.expr(x.X, st, ctx)
	case *ast.IndexExpr:
		w.expr(x.X, st, ctx)
		w.expr(x.Index, st, UseRead)
	case *ast.IndexListExpr:
		w.expr(x.X, st, ctx)
	case *ast.SliceExpr:
		w.expr(x.X, st, ctx)
		w.expr(x.Low, st, UseRead)
		w.expr(x.High, st, UseRead)
		w.expr(x.Max, st, UseRead)
	case *ast.TypeAssertExpr:
		w.expr(x.X, st, ctx)
	case *ast.CompositeLit:
		for _, el := range x.Elts {
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				w.expr(kv.Value, st, UseStore)
				continue
			}
			w.expr(el, st, UseStore)
		}
	case *ast.KeyValueExpr:
		w.expr(x.Value, st, UseStore)
	case *ast.FuncLit:
		// Closures run at an unknown time: analyze the body in
		// isolation, leak nothing in or out.
		inner := &flowWalker{info: w.info, hooks: w.hooks, claimed: w.claimed}
		inner.stmt(x.Body, make(FlowState))
	}
}
