package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// MapRange flags `for ... range m` over a map in deterministic packages
// whenever the loop body does something order-sensitive: calling
// functions (scheduling, callbacks, mutation behind an interface),
// accumulating floating-point values (addition is not associative),
// overwriting variables outside the loop (last writer wins in map
// order), appending to a slice that is never sorted afterwards, or
// sending on a channel. Order-insensitive bodies — integer counting,
// per-key writes indexed by the loop key, deletes — stay legal, as does
// the canonical collect-keys-then-sort idiom.
var MapRange = &Analyzer{
	Name: "maprange",
	Doc:  "flag order-sensitive iteration over maps in deterministic packages",
	Run:  runMapRange,
}

func runMapRange(p *Pass) {
	if !p.Cfg.IsDeterministic(p.Pkg.Path) {
		return
	}
	for _, f := range p.Pkg.Files {
		// Collect every function body so each range statement can be
		// matched to its innermost enclosing function (the scope in
		// which a sort-after-loop may appear).
		var bodies []*ast.BlockStmt
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if n.Body != nil {
					bodies = append(bodies, n.Body)
				}
			case *ast.FuncLit:
				bodies = append(bodies, n.Body)
			}
			return true
		})
		ast.Inspect(f, func(n ast.Node) bool {
			rs, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			checkMapRange(p, rs, innermost(bodies, rs.Pos()))
			return true
		})
	}
}

// innermost returns the smallest body containing pos (nil if none).
func innermost(bodies []*ast.BlockStmt, pos token.Pos) *ast.BlockStmt {
	var best *ast.BlockStmt
	for _, b := range bodies {
		if b.Pos() <= pos && pos < b.End() {
			if best == nil || b.Pos() > best.Pos() {
				best = b
			}
		}
	}
	return best
}

func checkMapRange(p *Pass, rs *ast.RangeStmt, encl *ast.BlockStmt) {
	info := p.Pkg.Info
	t := info.TypeOf(rs.X)
	if t == nil {
		return
	}
	if _, ok := t.Underlying().(*types.Map); !ok {
		return
	}

	keyObj := rangeVarObj(info, rs.Key)
	valObj := rangeVarObj(info, rs.Value)
	isLocal := func(obj types.Object) bool {
		return obj != nil && rs.Pos() <= obj.Pos() && obj.Pos() < rs.End()
	}
	usesLoopVar := func(e ast.Expr) bool {
		found := false
		ast.Inspect(e, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok {
				if o := info.Uses[id]; o != nil && (o == keyObj || o == valObj) {
					found = true
				}
			}
			return !found
		})
		return found
	}

	var reasons []string
	addReason := func(r string) {
		for _, have := range reasons {
			if have == r {
				return
			}
		}
		if len(reasons) < 3 {
			reasons = append(reasons, r)
		}
	}
	var appendTargets []types.Object

	handleLHS := func(lhs ast.Expr, tok token.Token) {
		base, keyIndexed := lvalueBase(lhs, usesLoopVar)
		if base == nil {
			return
		}
		obj := info.Uses[base]
		if obj == nil {
			obj = info.Defs[base]
		}
		if obj == nil || isLocal(obj) {
			return
		}
		lt := info.TypeOf(lhs)
		switch tok {
		case token.ASSIGN:
			if !keyIndexed {
				addReason(fmt.Sprintf("overwrites %s (last writer wins in map order)", exprString(lhs)))
			}
		case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN,
			token.AND_ASSIGN, token.OR_ASSIGN, token.XOR_ASSIGN, token.AND_NOT_ASSIGN,
			token.INC, token.DEC:
			if isOrderSensitiveNumeric(lt) {
				addReason(fmt.Sprintf("accumulates floating-point into %s (addition is not associative)", exprString(lhs)))
			}
		default: // /=, %=, <<=, >>=, string +=, ...
			addReason(fmt.Sprintf("order-dependent update of %s", exprString(lhs)))
		}
	}

	ast.Inspect(rs.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if tv, ok := info.Types[n.Fun]; ok && tv.IsType() {
				return true // conversion
			}
			if b, ok := calleeObj(info, n.Fun).(*types.Builtin); ok {
				_ = b // append is handled at its assignment; len/cap/delete are order-safe
				return true
			}
			addReason(fmt.Sprintf("calls %s (callbacks run in map order)", exprString(n.Fun)))
		case *ast.SendStmt:
			addReason("sends on a channel in map order")
		case *ast.IncDecStmt:
			handleLHS(n.X, n.Tok)
		case *ast.AssignStmt:
			if n.Tok == token.DEFINE {
				return true
			}
			for i, lhs := range n.Lhs {
				if id, ok := lhs.(*ast.Ident); ok && id.Name == "_" {
					continue
				}
				// x = append(x, ...) is an append, not an overwrite.
				if n.Tok == token.ASSIGN && len(n.Lhs) == len(n.Rhs) {
					if call, ok := n.Rhs[i].(*ast.CallExpr); ok && isAppendOf(info, call, lhs) {
						base, _ := lvalueBase(lhs, usesLoopVar)
						if base != nil {
							obj := info.Uses[base]
							if obj == nil {
								obj = info.Defs[base]
							}
							if obj != nil && !isLocal(obj) {
								appendTargets = append(appendTargets, obj)
							}
						}
						continue
					}
				}
				handleLHS(lhs, n.Tok)
			}
		}
		return true
	})

	// Appends alone are fine if the slice is sorted after the loop (the
	// collect-then-sort idiom); otherwise the slice inherits map order.
	for _, obj := range appendTargets {
		if !sortedAfter(p, encl, rs, obj) {
			addReason(fmt.Sprintf("appends to %s without sorting it afterwards", obj.Name()))
		}
	}

	if len(reasons) > 0 {
		p.Reportf(rs.Pos(),
			"iterating map %s in nondeterministic order: %s; iterate sorted keys instead",
			exprString(rs.X), strings.Join(reasons, "; "))
	}
}

// rangeVarObj resolves the object of a range key/value variable.
func rangeVarObj(info *types.Info, e ast.Expr) types.Object {
	id, ok := e.(*ast.Ident)
	if !ok || id == nil {
		return nil
	}
	if o := info.Defs[id]; o != nil {
		return o
	}
	return info.Uses[id]
}

// lvalueBase walks an lvalue (selectors, indexes, derefs) to its base
// identifier, reporting whether any index along the way mentions a
// loop variable (a per-key write, which is order-insensitive).
func lvalueBase(e ast.Expr, usesLoopVar func(ast.Expr) bool) (*ast.Ident, bool) {
	keyIndexed := false
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x, keyIndexed
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			if usesLoopVar(x.Index) {
				keyIndexed = true
			}
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		default:
			return nil, keyIndexed
		}
	}
}

func calleeObj(info *types.Info, fun ast.Expr) types.Object {
	switch f := fun.(type) {
	case *ast.Ident:
		return info.Uses[f]
	case *ast.SelectorExpr:
		return info.Uses[f.Sel]
	case *ast.ParenExpr:
		return calleeObj(info, f.X)
	}
	return nil
}

func isAppendOf(info *types.Info, call *ast.CallExpr, lhs ast.Expr) bool {
	if b, ok := calleeObj(info, call.Fun).(*types.Builtin); !ok || b.Name() != "append" {
		return false
	}
	return len(call.Args) > 0 && exprString(call.Args[0]) == exprString(lhs)
}

// isOrderSensitiveNumeric reports whether commutative-operator updates
// of this type still depend on evaluation order (floats, complex).
func isOrderSensitiveNumeric(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	if !ok {
		return true // be conservative about named/unknown types
	}
	return b.Info()&(types.IsFloat|types.IsComplex|types.IsString) != 0
}

// sortedAfter reports whether, after the range statement, the enclosing
// function sorts the appended-to object via package sort or slices.
func sortedAfter(p *Pass, encl *ast.BlockStmt, rs *ast.RangeStmt, obj types.Object) bool {
	if encl == nil {
		return false
	}
	found := false
	ast.Inspect(encl, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rs.End() {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		id, ok := sel.X.(*ast.Ident)
		if !ok {
			return true
		}
		pn, ok := p.Pkg.Info.Uses[id].(*types.PkgName)
		if !ok {
			return true
		}
		switch pn.Imported().Path() {
		case "sort", "slices":
		default:
			return true
		}
		for _, arg := range call.Args {
			mentions := false
			ast.Inspect(arg, func(an ast.Node) bool {
				if aid, ok := an.(*ast.Ident); ok && p.Pkg.Info.Uses[aid] == obj {
					mentions = true
				}
				return !mentions
			})
			if mentions {
				found = true
				return false
			}
		}
		return true
	})
	return found
}
