package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Detaint extends maprange across function boundaries. maprange flags
// order-sensitive work *inside* a `range m` loop; detaint tracks values
// *derived from* map iteration order — a keys slice, a first-match, a
// reduction — as they flow through returns, parameters, and struct
// fields within a package, and reports when such a value reaches an
// order-sensitive sink in a deterministic package:
//
//   - an argument to Schedule/ScheduleAt/After/Reschedule (event order
//     becomes map-order);
//   - floating-point accumulation (float addition is not associative);
//   - iteration that calls functions (callbacks run in map order);
//   - a call that forwards the value to a function whose parameter
//     reaches one of those sinks (reported at the call site).
//
// Passing the value through sort.* or slices.* clears the taint — the
// collect-then-sort idiom is the sanctioned fix. Purely intra-function
// order sensitivity stays maprange's job; detaint only reports taint
// that crossed a function, field, or call boundary, so the two never
// double-report one defect.
var Detaint = &Analyzer{
	Name: "detaint",
	Doc:  "flag map-iteration-order taint that crosses function boundaries into scheduling, ordering, or float accumulation",
	Run:  runDetaint,
}

// Taint facts (bitmask; FlowState joins by OR).
const (
	taintMap   = 1 << 0 // locally derived from map iteration order
	taintCross = 1 << 1 // derived from a tainted function result or field
	paramShift = 2      // bit paramShift+i: derived from parameter i
	maxParams  = 30
)

func taintJoin(a, b int) int { return a | b }

func paramBit(i int) int {
	if i >= maxParams {
		return 0
	}
	return 1 << (paramShift + i)
}

// ordered reports whether the taint carries actual map order (directly
// or through a call/field), as opposed to hypothetical parameter taint.
func ordered(t int) bool { return t&(taintMap|taintCross) != 0 }

// taintSummary is what one function exposes to its callers.
type taintSummary struct {
	// result: some return value carries map-iteration order.
	result bool
	// resultFromParam: bitmask of parameters whose taint reaches a
	// return value.
	resultFromParam int
	// paramSink maps a parameter index to a description of the
	// order-sensitive sink it reaches inside the function.
	paramSink map[int]string
}

type detaintContext struct {
	pass       *Pass
	summaries  map[*types.Func]*taintSummary
	fieldTaint map[types.Object]bool
	report     bool
	changed    bool
}

func runDetaint(p *Pass) {
	if !p.Cfg.IsDeterministic(p.Pkg.Path) {
		return
	}
	ctx := &detaintContext{
		pass:       p,
		summaries:  make(map[*types.Func]*taintSummary),
		fieldTaint: make(map[types.Object]bool),
	}
	// Fixpoint over the package's call graph: summaries and field
	// taints feed each other, so iterate until stable (the lattice is
	// finite and monotone; four rounds cover any realistic chain).
	for i := 0; i < 4; i++ {
		ctx.changed = false
		ctx.analyzePackage()
		if !ctx.changed {
			break
		}
	}
	ctx.report = true
	ctx.analyzePackage()
}

func (c *detaintContext) analyzePackage() {
	for _, f := range c.pass.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			c.analyzeFunc(fd)
		}
	}
}

func (c *detaintContext) summaryFor(fn *types.Func) *taintSummary {
	s := c.summaries[fn]
	if s == nil {
		s = &taintSummary{paramSink: make(map[int]string)}
		c.summaries[fn] = s
	}
	return s
}

func (c *detaintContext) analyzeFunc(fd *ast.FuncDecl) {
	info := c.pass.Pkg.Info
	fn, _ := info.Defs[fd.Name].(*types.Func)
	if fn == nil {
		return
	}
	sum := c.summaryFor(fn)
	sig := fn.Type().(*types.Signature)

	// Hypothetical taint: parameter i starts with its own bit, so a
	// sink hit by bit i becomes a paramSink entry rather than a report.
	st := make(FlowState)
	paramIndex := make(map[types.Object]int)
	for i := 0; i < sig.Params().Len(); i++ {
		obj := sig.Params().At(i)
		paramIndex[obj] = i
		st.Set(Ref{Base: obj}, paramBit(i))
	}

	recordParamSinks := func(t int, sink string) {
		for i := 0; i < sig.Params().Len(); i++ {
			if t&paramBit(i) != 0 {
				if sum.paramSink[i] == "" {
					sum.paramSink[i] = sink
					c.changed = true
				}
			}
		}
	}

	hooks := FlowHooks{
		Join: taintJoin,
		Range: func(rs *ast.RangeStmt, st FlowState) {
			xt := info.TypeOf(rs.X)
			if xt == nil {
				return
			}
			if _, isMap := xt.Underlying().(*types.Map); isMap {
				for _, v := range []ast.Expr{rs.Key, rs.Value} {
					if obj := rangeVarObj(info, v); obj != nil {
						st.Set(Ref{Base: obj}, st.Get(Ref{Base: obj})|taintMap)
					}
				}
				return
			}
			// Ranging a tainted slice: the element pairing carries map
			// order. Iterating it with calls is itself a sink.
			t := c.exprTaint(rs.X, st)
			if t == 0 {
				return
			}
			for _, v := range []ast.Expr{rs.Key, rs.Value} {
				if obj := rangeVarObj(info, v); obj != nil {
					st.Set(Ref{Base: obj}, st.Get(Ref{Base: obj})|t)
				}
			}
			if bodyCalls(info, rs.Body) {
				if c.report && t&taintCross != 0 {
					c.pass.Reportf(rs.Pos(),
						"iterating %s, whose order derives from map iteration in another function, and calling functions per element; sort it first (or sort in the producer)",
						exprString(rs.X))
				}
				recordParamSinks(t, "per-element calls in iteration order")
				// The range-level finding covers every per-element use,
				// so strip the ordered bits from the loop variables:
				// body sinks must not re-report the same defect.
				if t&taintCross != 0 {
					for _, v := range []ast.Expr{rs.Key, rs.Value} {
						if obj := rangeVarObj(info, v); obj != nil {
							st.Set(Ref{Base: obj}, st.Get(Ref{Base: obj})&^(taintMap|taintCross))
						}
					}
				}
			}
		},
		Assign: func(lhs, rhs ast.Expr, tok token.Token, st FlowState) {
			var rt int
			if rhs != nil {
				rt = c.exprTaint(rhs, st)
			}
			switch tok {
			case token.ASSIGN, token.DEFINE:
				if r, ok := RefOf(info, lhs); ok {
					st.Set(r, rt)
					if r.Field != nil && ordered(rt) && !c.fieldTaint[r.Field] {
						c.fieldTaint[r.Field] = true
						c.changed = true
					}
				}
			case token.ADD_ASSIGN, token.SUB_ASSIGN:
				if lt := info.TypeOf(lhs); isFloat(lt) {
					if c.report && rt&taintCross != 0 {
						c.pass.Reportf(lhs.Pos(),
							"floating-point accumulation of a value whose order derives from map iteration in another function; float addition is not associative — sort the inputs first",
						)
					}
					recordParamSinks(rt, "floating-point accumulation")
				}
				if r, ok := RefOf(info, lhs); ok {
					st.Set(r, st.Get(r)|rt)
				}
			default:
				if r, ok := RefOf(info, lhs); ok {
					st.Set(r, st.Get(r)|rt)
				}
			}
		},
		PostCall: func(call *ast.CallExpr, st FlowState) {
			// sort.*/slices.* sanitize their argument in place.
			if isSortCall(info, call) {
				for _, arg := range call.Args {
					if r, ok := RefOf(info, unconvert(info, arg)); ok {
						st.Set(r, 0)
					}
				}
				return
			}
			// Scheduling sinks: event order must not be map order.
			if name := scheduleCalleeName(call); name != "" {
				for _, arg := range call.Args {
					t := c.exprTaint(arg, st)
					if c.report && t&taintCross != 0 {
						c.pass.Reportf(arg.Pos(),
							"%s argument derives from map iteration order in another function; event order becomes nondeterministic — sort the derivation first", name)
					}
					recordParamSinks(t, name+" argument")
				}
			}
			// Forwarding into a function whose parameter reaches a sink.
			callee, _ := calleeObj(info, call.Fun).(*types.Func)
			if callee == nil {
				return
			}
			calleeSum := c.summaries[callee]
			if calleeSum == nil {
				return
			}
			for i, arg := range call.Args {
				sink := calleeSum.paramSink[i]
				if sink == "" {
					continue
				}
				t := c.exprTaint(arg, st)
				if c.report && ordered(t) {
					c.pass.Reportf(arg.Pos(),
						"passes a map-iteration-ordered value to %s, which feeds it into %s; sort it before the call", callee.Name(), sink)
				}
				recordParamSinks(t, fmt.Sprintf("%s (via %s)", sink, callee.Name()))
			}
		},
		Return: func(rt *ast.ReturnStmt, st FlowState) {
			for _, res := range rt.Results {
				t := c.exprTaint(res, st)
				if ordered(t) && !sum.result {
					sum.result = true
					c.changed = true
				}
				if bits := t &^ (taintMap | taintCross); bits != 0 && sum.resultFromParam&bits != bits {
					sum.resultFromParam |= bits
					c.changed = true
				}
			}
		},
	}
	WalkFlow(info, fd.Body, st, hooks)
}

// exprTaint computes the taint of an expression under the current
// state, consulting function summaries and tainted fields.
func (c *detaintContext) exprTaint(e ast.Expr, st FlowState) int {
	info := c.pass.Pkg.Info
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident, *ast.SelectorExpr:
		if r, ok := RefOf(info, e); ok {
			t := st.Get(r)
			if r.Field != nil && c.fieldTaint[r.Field] {
				t |= taintCross
			}
			return t
		}
		// A bare field selector whose base is not a simple variable
		// (e.g. chained accessor): field taint still applies.
		if sel, ok := ast.Unparen(e).(*ast.SelectorExpr); ok {
			if s, ok := info.Selections[sel]; ok && s.Kind() == types.FieldVal && c.fieldTaint[s.Obj()] {
				return taintCross
			}
		}
		return 0
	case *ast.IndexExpr:
		return c.exprTaint(x.X, st) | c.exprTaint(x.Index, st)
	case *ast.SliceExpr:
		return c.exprTaint(x.X, st)
	case *ast.StarExpr:
		return c.exprTaint(x.X, st)
	case *ast.UnaryExpr:
		return c.exprTaint(x.X, st)
	case *ast.BinaryExpr:
		return c.exprTaint(x.X, st) | c.exprTaint(x.Y, st)
	case *ast.CompositeLit:
		t := 0
		for _, el := range x.Elts {
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				el = kv.Value
			}
			t |= c.exprTaint(el, st)
		}
		return t
	case *ast.TypeAssertExpr:
		return c.exprTaint(x.X, st)
	case *ast.CallExpr:
		if tv, ok := info.Types[x.Fun]; ok && tv.IsType() {
			if len(x.Args) == 1 {
				return c.exprTaint(x.Args[0], st) // conversion
			}
			return 0
		}
		if b, ok := calleeObj(info, x.Fun).(*types.Builtin); ok {
			if b.Name() == "append" {
				t := 0
				for _, arg := range x.Args {
					t |= c.exprTaint(arg, st)
				}
				return t
			}
			return 0 // len/cap/min/max are order-free
		}
		if isSortCall(info, x) {
			return 0 // sorted copies come back order-free
		}
		callee, _ := calleeObj(info, x.Fun).(*types.Func)
		if callee == nil {
			return 0
		}
		sum := c.summaries[callee]
		if sum == nil {
			return 0
		}
		t := 0
		if sum.result {
			t |= taintCross
		}
		for i, arg := range x.Args {
			if sum.resultFromParam&paramBit(i) == 0 {
				continue
			}
			at := c.exprTaint(arg, st)
			if ordered(at) {
				t |= taintCross
			}
			t |= at &^ (taintMap | taintCross)
		}
		return t
	}
	return 0
}

// bodyCalls reports whether the block contains a real function call
// (not a conversion or order-free builtin).
func bodyCalls(info *types.Info, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
			return true
		}
		if _, ok := calleeObj(info, call.Fun).(*types.Builtin); ok {
			return true
		}
		found = true
		return false
	})
	return found
}

// scheduleCalleeName returns the event-scheduling entry point name when
// call is one (Schedule/ScheduleAt/After/Reschedule), else "".
func scheduleCalleeName(call *ast.CallExpr) string {
	name := ""
	switch f := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		name = f.Name
	case *ast.SelectorExpr:
		name = f.Sel.Name
	}
	switch name {
	case "Schedule", "ScheduleAt", "After", "Reschedule":
		return name
	}
	return ""
}

// isSortCall reports whether call is into package sort or slices.
func isSortCall(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return false
	}
	pn, ok := info.Uses[id].(*types.PkgName)
	if !ok {
		return false
	}
	switch pn.Imported().Path() {
	case "sort", "slices":
		return true
	}
	return false
}

// unconvert unwraps a single conversion (sort.Sort(byID(ids))).
func unconvert(info *types.Info, e ast.Expr) ast.Expr {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok || len(call.Args) != 1 {
		return e
	}
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		return call.Args[0]
	}
	return e
}

// isFloat reports whether t is a floating-point type.
func isFloat(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}
