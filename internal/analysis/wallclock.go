package analysis

import (
	"go/ast"
	"go/types"
	"path"
)

// Wallclock forbids wall-clock time and ambient randomness in
// deterministic packages. Simulated protocol code must take time from
// sim.Runner.Now/Schedule and randomness from sim.Runner.Rand; the
// package-level math/rand functions share a process-global source and
// time.Now leaks the host clock, either of which de-reproduces a run.
var Wallclock = &Analyzer{
	Name: "wallclock",
	Doc:  "forbid time.Now/Sleep/... and global math/rand in deterministic packages",
	Run:  runWallclock,
}

// forbiddenTimeFuncs are the package time entry points that read or
// wait on the host clock. time.Duration arithmetic and constants stay
// legal (sim.Time converts through time.Duration).
var forbiddenTimeFuncs = map[string]bool{
	"Now":       true,
	"Since":     true,
	"Until":     true,
	"Sleep":     true,
	"After":     true,
	"Tick":      true,
	"NewTimer":  true,
	"NewTicker": true,
	"AfterFunc": true,
}

// allowedRandFuncs are math/rand constructors: building a locally
// seeded *rand.Rand is exactly what deterministic code should do.
var allowedRandFuncs = map[string]bool{
	"New":        true,
	"NewSource":  true,
	"NewZipf":    true,
	"NewPCG":     true, // math/rand/v2
	"NewChaCha8": true, // math/rand/v2
}

func runWallclock(p *Pass) {
	if !p.Cfg.IsDeterministic(p.Pkg.Path) {
		return
	}
	base := path.Base(p.Pkg.Path)
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			id, ok := sel.X.(*ast.Ident)
			if !ok {
				return true
			}
			pn, ok := p.Pkg.Info.Uses[id].(*types.PkgName)
			if !ok {
				return true
			}
			switch pn.Imported().Path() {
			case "time":
				if forbiddenTimeFuncs[sel.Sel.Name] {
					p.Reportf(sel.Pos(),
						"wall-clock %s.%s in deterministic package %s; take time from the sim.Runner (Now/Schedule)",
						id.Name, sel.Sel.Name, base)
				}
			case "math/rand", "math/rand/v2":
				fn, ok := p.Pkg.Info.Uses[sel.Sel].(*types.Func)
				if !ok {
					return true // a type or constant, e.g. rand.Rand
				}
				if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
					return true // method on *rand.Rand: fine
				}
				if !allowedRandFuncs[sel.Sel.Name] {
					p.Reportf(sel.Pos(),
						"global %s.%s in deterministic package %s; plumb a *rand.Rand from sim.Runner.Rand()",
						id.Name, sel.Sel.Name, base)
				}
			}
			return true
		})
	}
}
