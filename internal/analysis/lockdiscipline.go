package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// LockDiscipline checks the real-time engine's locking contract: in the
// configured packages (internal/emu), a struct with a sync.Mutex (or
// RWMutex) field has a set of guarded fields — every field some method
// mutates. Exported methods must acquire the mutex (recv.mu.Lock or
// RLock, anywhere lexically before the access, including inside the
// same closure) before touching a guarded field. Fields written only at
// construction time are immutable and stay exempt, which is exactly why
// Engine.Now may read start/speedup without the lock.
var LockDiscipline = &Analyzer{
	Name: "lockdiscipline",
	Doc:  "exported methods must hold the mutex before touching guarded fields",
	Run:  runLockDiscipline,
}

func runLockDiscipline(p *Pass) {
	if !p.Cfg.IsLockChecked(p.Pkg.Path) {
		return
	}
	info := p.Pkg.Info

	// Pass 1: find struct types with a mutex field, and every method's
	// receiver object, grouped by the receiver's named type.
	type lockedType struct {
		named      *types.Named
		mutexField string
		guarded    map[string]bool
		methods    []*ast.FuncDecl
		recvs      map[*ast.FuncDecl]types.Object
	}
	byType := make(map[*types.TypeName]*lockedType)

	for _, f := range p.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Recv == nil || fd.Body == nil {
				continue
			}
			named := receiverNamed(info, fd)
			if named == nil {
				continue
			}
			st, ok := named.Underlying().(*types.Struct)
			if !ok {
				continue
			}
			mf := mutexFieldName(st)
			if mf == "" {
				continue
			}
			lt := byType[named.Obj()]
			if lt == nil {
				lt = &lockedType{
					named:      named,
					mutexField: mf,
					guarded:    make(map[string]bool),
					recvs:      make(map[*ast.FuncDecl]types.Object),
				}
				byType[named.Obj()] = lt
			}
			lt.methods = append(lt.methods, fd)
			if len(fd.Recv.List[0].Names) > 0 {
				lt.recvs[fd] = info.Defs[fd.Recv.List[0].Names[0]]
			}
		}
	}

	// Pass 2: guarded fields are those any method writes. Constructors
	// are plain functions, so construction-time writes don't count.
	for _, lt := range byType {
		for _, fd := range lt.methods {
			recv := lt.recvs[fd]
			if recv == nil {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.AssignStmt:
					for _, lhs := range n.Lhs {
						if name := recvFieldName(info, lhs, recv, lt.mutexField); name != "" {
							lt.guarded[name] = true
						}
					}
				case *ast.IncDecStmt:
					if name := recvFieldName(info, n.X, recv, lt.mutexField); name != "" {
						lt.guarded[name] = true
					}
				}
				return true
			})
		}
	}

	// Pass 3: exported methods must lock before the first guarded access.
	for _, lt := range byType {
		if len(lt.guarded) == 0 {
			continue
		}
		for _, fd := range lt.methods {
			recv := lt.recvs[fd]
			if recv == nil || !fd.Name.IsExported() {
				continue
			}
			var firstAccess token.Pos
			var firstField string
			var firstLock token.Pos
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.CallExpr:
					if isMutexLock(info, n, recv, lt.mutexField) {
						if !firstLock.IsValid() || n.Pos() < firstLock {
							firstLock = n.Pos()
						}
					}
				case *ast.SelectorExpr:
					name := recvFieldSel(info, n, recv, lt.mutexField)
					if name != "" && lt.guarded[name] {
						if !firstAccess.IsValid() || n.Pos() < firstAccess {
							firstAccess = n.Pos()
							firstField = name
						}
					}
				}
				return true
			})
			if firstAccess.IsValid() && (!firstLock.IsValid() || firstLock > firstAccess) {
				p.Reportf(firstAccess,
					"%s.%s touches guarded field %q without %s.%s.Lock() first",
					lt.named.Obj().Name(), fd.Name.Name, firstField,
					recv.Name(), lt.mutexField)
			}
		}
	}
}

// mutexFieldName returns the name of the struct's sync.Mutex/RWMutex
// field, or "".
func mutexFieldName(st *types.Struct) string {
	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		named, ok := f.Type().(*types.Named)
		if !ok || named.Obj().Pkg() == nil {
			continue
		}
		if named.Obj().Pkg().Path() == "sync" &&
			(named.Obj().Name() == "Mutex" || named.Obj().Name() == "RWMutex") {
			return f.Name()
		}
	}
	return ""
}

// recvFieldSel returns the field name when sel is recv.<field> (not the
// mutex itself), else "".
func recvFieldSel(info *types.Info, sel *ast.SelectorExpr, recv types.Object, mutexField string) string {
	id, ok := ast.Unparen(sel.X).(*ast.Ident)
	if !ok || info.Uses[id] != recv {
		return ""
	}
	s, ok := info.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return ""
	}
	if sel.Sel.Name == mutexField {
		return ""
	}
	return sel.Sel.Name
}

// recvFieldName resolves an lvalue of the form recv.field (possibly
// nested deeper, e.g. recv.field.sub or recv.field[i]) to field.
func recvFieldName(info *types.Info, e ast.Expr, recv types.Object, mutexField string) string {
	for {
		switch x := e.(type) {
		case *ast.SelectorExpr:
			if name := recvFieldSel(info, x, recv, mutexField); name != "" {
				return name
			}
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		default:
			return ""
		}
	}
}

// isMutexLock reports whether call is recv.<mutexField>.Lock/RLock().
func isMutexLock(info *types.Info, call *ast.CallExpr, recv types.Object, mutexField string) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || (sel.Sel.Name != "Lock" && sel.Sel.Name != "RLock") {
		return false
	}
	inner, ok := ast.Unparen(sel.X).(*ast.SelectorExpr)
	if !ok || inner.Sel.Name != mutexField {
		return false
	}
	id, ok := ast.Unparen(inner.X).(*ast.Ident)
	return ok && info.Uses[id] == recv
}
