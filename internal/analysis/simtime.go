package analysis

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
)

// SimTime is the units checker for the three time representations the
// codebase juggles: sim.Time (virtual nanoseconds), time.Duration
// (wall nanoseconds), and raw float64 seconds (metrics, rate math).
// The named types keep the compiler honest across *typed* values, but
// untyped constants and float conversions slip through — `Schedule(5,
// fn)` compiles and means five *nanoseconds*, and `sim.Time(2.5)`
// silently truncates 2.5 "seconds" to 2 nanoseconds. SimTime flags:
//
//   - a bare numeric literal (no unit constant anywhere in the
//     expression) supplied where sim.Time is expected — write
//     5*sim.Second or sim.FromSeconds(5) instead;
//   - sim.Time(x) where x is a float expression with no
//     sim.Time/time.Duration-derived operand — raw seconds truncated
//     to nanoseconds; use sim.FromSeconds;
//   - sim.Time(x.Seconds()) — definitely seconds where nanoseconds
//     are expected;
//   - sim.Time(d) from a time.Duration (use sim.FromDuration) and
//     time.Duration(t) from a sim.Time (use t.Duration()) — both are
//     numerically fine today, which is exactly why the explicit
//     helper should record the intent;
//   - float additions/comparisons mixing a .Seconds() value with a
//     float64(t) nanosecond value.
//
// Dimensionless scaling (t * sim.Time(n), sim.Time(float64(rtt)*j))
// stays legal: those expressions carry a unit operand. The sim package
// itself — which implements the conversion helpers — is exempt.
var SimTime = &Analyzer{
	Name: "simtime",
	Doc:  "flag unit-unsafe mixing of sim.Time, time.Duration, and raw float seconds",
	Run:  runSimTime,
}

func runSimTime(p *Pass) {
	if isSimPackage(p.Pkg.Path) {
		return // home of the conversion helpers
	}
	info := p.Pkg.Info
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				checkSimTimeCall(p, info, n)
			case *ast.BinaryExpr:
				checkSecondsMix(p, info, n)
				// Additive and comparison operators demand matching
				// units on both sides; multiplicative ones are the
				// legal dimensionless-scaling form (t * 2).
				switch n.Op {
				case token.ADD, token.SUB, token.LSS, token.GTR,
					token.LEQ, token.GEQ, token.EQL, token.NEQ:
					checkBareLiteral(p, info, n.X)
					checkBareLiteral(p, info, n.Y)
				}
			case *ast.ValueSpec:
				for _, v := range n.Values {
					checkBareLiteral(p, info, v)
				}
			case *ast.CompositeLit:
				for _, el := range n.Elts {
					if kv, ok := el.(*ast.KeyValueExpr); ok {
						checkBareLiteral(p, info, kv.Value)
					} else {
						checkBareLiteral(p, info, el)
					}
				}
			case *ast.AssignStmt:
				if n.Tok == token.ASSIGN || n.Tok == token.DEFINE {
					for _, rhs := range n.Rhs {
						checkBareLiteral(p, info, rhs)
					}
				}
			case *ast.ReturnStmt:
				for _, e := range n.Results {
					checkBareLiteral(p, info, e)
				}
			}
			return true
		})
	}
}

// checkSimTimeCall handles both conversion expressions (sim.Time(x),
// time.Duration(t)) and ordinary calls (literal arguments).
func checkSimTimeCall(p *Pass, info *types.Info, call *ast.CallExpr) {
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		target := tv.Type
		if len(call.Args) != 1 {
			return
		}
		arg := call.Args[0]
		at := info.TypeOf(arg)
		switch {
		case isSimTime(target):
			checkToSimTimeConversion(p, info, call, arg, at)
		case isDuration(target) && isSimTime(at):
			p.Reportf(call.Pos(),
				"raw conversion time.Duration(%s) from sim.Time; write %s.Duration() so the unit transfer is explicit",
				exprString(arg), exprString(arg))
		}
		return
	}
	// Ordinary call: every argument contextually typed sim.Time must
	// carry a unit, not be a bare literal.
	for _, arg := range call.Args {
		checkBareLiteral(p, info, arg)
	}
}

func checkToSimTimeConversion(p *Pass, info *types.Info, call *ast.CallExpr, arg ast.Expr, at types.Type) {
	if at == nil {
		return
	}
	if isDuration(at) {
		p.Reportf(call.Pos(),
			"raw conversion sim.Time(%s) from time.Duration; write sim.FromDuration(%s) so the unit transfer is explicit",
			exprString(arg), exprString(arg))
		return
	}
	b, ok := at.Underlying().(*types.Basic)
	if !ok || b.Info()&types.IsFloat == 0 {
		return // integer scaling like sim.Time(i) is dimensionless by convention
	}
	if callsSeconds(info, arg) {
		p.Reportf(call.Pos(),
			"sim.Time(%s) converts a *seconds* value to nanoseconds without scaling; use sim.FromSeconds", exprString(arg))
		return
	}
	if !carriesTimeUnit(info, arg) {
		p.Reportf(call.Pos(),
			"sim.Time(%s) truncates a raw float with no time-typed operand — if the value is seconds use sim.FromSeconds, otherwise derive it from a sim.Time/time.Duration quantity",
			exprString(arg))
	}
}

// checkBareLiteral flags a constant expression contextually typed as
// sim.Time that contains no reference to any sim.Time-typed name (unit
// constant, variable, conversion): a bare `5` means five nanoseconds,
// which is never what a hand-written literal intends. Zero (and -1,
// the conventional "no limit" sentinel) are exempt.
func checkBareLiteral(p *Pass, info *types.Info, e ast.Expr) {
	tv, ok := info.Types[e]
	if !ok || tv.Value == nil || !isSimTime(tv.Type) {
		return
	}
	if v, ok := constant.Int64Val(tv.Value); ok && (v == 0 || v == -1) {
		return
	}
	if carriesTimeUnit(info, e) {
		return
	}
	p.Reportf(e.Pos(),
		"bare numeric literal %s used as sim.Time means %s nanoseconds; write it against a unit (n*sim.Second, sim.Millisecond, ...) or sim.FromSeconds",
		tv.Value.ExactString(), tv.Value.ExactString())
}

// carriesTimeUnit reports whether the expression mentions any name or
// conversion of type sim.Time or time.Duration — i.e. the value is
// derived from a unit-carrying quantity rather than being raw.
func carriesTimeUnit(info *types.Info, e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.Ident:
			if obj := info.Uses[n]; obj != nil && (isSimTime(obj.Type()) || isDuration(obj.Type())) {
				found = true
			}
		case *ast.SelectorExpr:
			if obj := info.Uses[n.Sel]; obj != nil && (isSimTime(obj.Type()) || isDuration(obj.Type())) {
				found = true
			}
		case *ast.CallExpr:
			if t := info.TypeOf(n); isSimTime(t) || isDuration(t) {
				found = true
			}
		}
		return !found
	})
	return found
}

// callsSeconds reports whether the expression contains a .Seconds()
// call (a float value in seconds).
func callsSeconds(info *types.Info, e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if ok && sel.Sel.Name == "Seconds" && len(call.Args) == 0 {
			found = true
		}
		return !found
	})
	return found
}

// rawNanosFloat reports whether the expression contains float64(x)
// with x a sim.Time or time.Duration — a float carrying nanoseconds.
func rawNanosFloat(info *types.Info, e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		tv, ok := info.Types[call.Fun]
		if !ok || !tv.IsType() || len(call.Args) != 1 {
			return true
		}
		if b, ok := tv.Type.Underlying().(*types.Basic); !ok || b.Info()&types.IsFloat == 0 {
			return true
		}
		if at := info.TypeOf(call.Args[0]); isSimTime(at) || isDuration(at) {
			found = true
		}
		return !found
	})
	return found
}

// checkSecondsMix flags additive/comparison operators whose one side
// is a seconds-valued float (via .Seconds()) and whose other side is a
// nanoseconds-valued float (via float64(t)). Multiplicative operators
// are exempt: they are how unit conversions are written.
func checkSecondsMix(p *Pass, info *types.Info, b *ast.BinaryExpr) {
	switch b.Op {
	case token.ADD, token.SUB, token.LSS, token.GTR, token.LEQ, token.GEQ, token.EQL, token.NEQ:
	default:
		return
	}
	if t := info.TypeOf(b.X); t == nil {
		return
	} else if bt, ok := t.Underlying().(*types.Basic); !ok || bt.Info()&types.IsFloat == 0 {
		return
	}
	xSec, ySec := callsSeconds(info, b.X), callsSeconds(info, b.Y)
	xNs, yNs := rawNanosFloat(info, b.X), rawNanosFloat(info, b.Y)
	if (xSec && !xNs && yNs && !ySec) || (ySec && !yNs && xNs && !xSec) {
		p.Reportf(b.OpPos,
			"float %s mixes a .Seconds() value with a float64(<time>) nanosecond value; convert both sides to one unit first", b.Op)
	}
}

// isSimTime reports whether t is (an alias of) sim.Time.
func isSimTime(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	return named.Obj().Name() == "Time" && isSimPath(named.Obj().Pkg().Path())
}

// isDuration reports whether t is time.Duration.
func isDuration(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	return named.Obj().Name() == "Duration" && named.Obj().Pkg().Path() == "time"
}

// isSimPath matches the sim package path the way isSimTimerPtr does.
func isSimPath(pkgPath string) bool {
	return pkgPath == "taq/internal/sim" || pkgPath == "sim"
}
