package analysis

// noblock enforces the hotpath scheduling contract: functions in the
// //taq:hotpath closure must never block or yield — no channel ops, no
// select, no goroutine launches, no sync lock acquisitions, no
// wall-clock reads or syscalls. The emu engine deliberately serializes
// real-time callbacks through one mutex; its Engine methods are
// allowlisted via Config.NoblockAllow so the finding set stays
// actionable (lockdiscipline already checks that pattern's pairing).

import (
	"go/ast"
	"go/token"
	"go/types"
)

// NoBlock flags blocking operations in hotpath-closure functions.
var NoBlock = &Analyzer{
	Name: "noblock",
	Doc:  "//taq:hotpath closure functions must not block (channels, select, sync locks, time.Now, syscalls)",
	Run:  runNoBlock,
}

// blockingTimeFuncs are the package-level time functions that read the
// wall clock or arm real timers. Methods on time.Time/Duration are
// pure arithmetic and stay legal.
var blockingTimeFuncs = map[string]bool{
	"Now": true, "Sleep": true, "Since": true, "Until": true,
	"After": true, "Tick": true, "NewTimer": true, "NewTicker": true,
	"AfterFunc": true,
}

// blockingSyncMethods are the sync methods that can park a goroutine.
var blockingSyncMethods = map[string]bool{
	"Lock": true, "RLock": true, "Wait": true, "Do": true,
}

func runNoBlock(pass *Pass) {
	if pass.Prog == nil || !pass.Cfg.IsNoblockChecked(pass.Pkg.Path) {
		return
	}
	for _, n := range pass.Prog.HotNodes() {
		if n.Pkg != pass.Pkg || pass.Cfg.NoblockAllowed(n.Name()) {
			continue
		}
		checkNoBlock(pass, n)
	}
}

func checkNoBlock(pass *Pass, n *FuncNode) {
	info := n.Pkg.Info
	ast.Inspect(n.Body, func(nd ast.Node) bool {
		switch x := nd.(type) {
		case *ast.FuncLit:
			return false // the literal's body is its own node
		case *ast.SendStmt:
			hotf(pass, n, x.Pos(), "channel send may block")
		case *ast.UnaryExpr:
			if x.Op == token.ARROW {
				hotf(pass, n, x.Pos(), "channel receive may block")
			}
		case *ast.SelectStmt:
			hotf(pass, n, x.Pos(), "select may block")
		case *ast.GoStmt:
			hotf(pass, n, x.Pos(), "go statement hands work to the scheduler")
		case *ast.RangeStmt:
			if _, ok := underlyingOf(info, x.X).(*types.Chan); ok {
				hotf(pass, n, x.Pos(), "range over channel blocks")
			}
		case *ast.CallExpr:
			checkBlockingCall(pass, n, x)
		}
		return true
	})
}

func checkBlockingCall(pass *Pass, n *FuncNode, call *ast.CallExpr) {
	info := n.Pkg.Info
	var callee *types.Func
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		callee, _ = usedFunc(info, fun)
	case *ast.SelectorExpr:
		callee, _ = usedFunc(info, fun.Sel)
	}
	if callee == nil || callee.Pkg() == nil {
		return
	}
	name := callee.Name()
	switch callee.Pkg().Path() {
	case "sync":
		if blockingSyncMethods[name] {
			hotf(pass, n, call.Pos(), "sync acquisition %s may block", exprString(call))
		}
	case "time":
		if callee.Type().(*types.Signature).Recv() == nil && blockingTimeFuncs[name] {
			hotf(pass, n, call.Pos(), "wall-clock call %s", exprString(call))
		}
	case "os", "syscall", "net":
		hotf(pass, n, call.Pos(), "%s performs a syscall", exprString(call))
	case "io":
		// io's own interface methods (Writer.Write etc.) reach real IO.
		if recv := callee.Type().(*types.Signature).Recv(); recv != nil && types.IsInterface(recv.Type()) {
			hotf(pass, n, call.Pos(), "io interface call %s may block on real IO", exprString(call))
		}
	case "runtime":
		if name == "Gosched" || name == "GC" {
			hotf(pass, n, call.Pos(), "runtime.%s yields the processor", name)
		}
	}
}
