package analysis

import (
	"errors"
	"fmt"
	"go/token"
	"regexp"
	"strings"
	"testing"
)

// testConfig is the production config narrowed to the analyzer under
// test; the fixture packages are already inside the default scope.
func testConfig(analyzers ...*Analyzer) *Config {
	cfg := DefaultConfig()
	cfg.Analyzers = analyzers
	return cfg
}

var wantRE = regexp.MustCompile("`([^`]*)`")

// wants extracts the backtick-quoted regexes of "// want" comments,
// keyed by file:line.
func wants(t *testing.T, pkgs []*Package) map[string][]*regexp.Regexp {
	t.Helper()
	out := make(map[string][]*regexp.Regexp)
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
					if !strings.HasPrefix(text, "want ") {
						continue
					}
					pos := pkg.Fset.Position(c.Pos())
					key := posKey(pos)
					for _, m := range wantRE.FindAllStringSubmatch(text, -1) {
						re, err := regexp.Compile(m[1])
						if err != nil {
							t.Fatalf("%s: bad want pattern %q: %v", key, m[1], err)
						}
						out[key] = append(out[key], re)
					}
				}
			}
		}
	}
	return out
}

func posKey(pos token.Position) string {
	return fmt.Sprintf("%s:%d", pos.Filename, pos.Line)
}

// runCase loads one testdata package, runs the analyzers, and requires
// the diagnostics to match the // want expectations exactly.
func runCase(t *testing.T, dir string, analyzers ...*Analyzer) {
	t.Helper()
	runCaseDirs(t, []string{dir}, analyzers...)
}

// runCaseDirs is runCase over several fixture packages loaded together
// — the shardown contract needs an owner package plus a foreign one.
func runCaseDirs(t *testing.T, dirs []string, analyzers ...*Analyzer) {
	t.Helper()
	patterns := make([]string, len(dirs))
	for i, d := range dirs {
		patterns[i] = "./testdata/src/" + d
	}
	pkgs, err := Load(".", patterns...)
	if err != nil {
		t.Fatalf("loading testdata %v: %v", dirs, err)
	}
	expected := wants(t, pkgs)
	diags := Run(pkgs, testConfig(analyzers...))

	matched := make(map[string]int) // posKey -> how many wants consumed
	for _, d := range diags {
		key := posKey(d.Pos)
		res := expected[key]
		ok := false
		for i, re := range res {
			if re == nil {
				continue
			}
			if re.MatchString(d.Message) {
				res[i] = nil
				matched[key]++
				ok = true
				break
			}
		}
		if !ok {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for key, res := range expected {
		for _, re := range res {
			if re != nil {
				t.Errorf("%s: expected diagnostic matching %q, got none", key, re)
			}
		}
	}
}

func TestWallclock(t *testing.T)      { runCase(t, "wallclock", Wallclock) }
func TestMapRange(t *testing.T)       { runCase(t, "maprange", MapRange) }
func TestTimerLeak(t *testing.T)      { runCase(t, "timerleak", TimerLeak) }
func TestLockDiscipline(t *testing.T) { runCase(t, "lockdiscipline", LockDiscipline) }
func TestTimerOwn(t *testing.T)       { runCase(t, "timerown", TimerOwn) }
func TestSimTime(t *testing.T)        { runCase(t, "simtime", SimTime) }
func TestDetaint(t *testing.T)        { runCase(t, "detaint", Detaint) }

// The v3 contract analyzers: hotpath exercises closure propagation
// (interface dispatch, function values, method values, line-scoped
// transitive suppression); the other three exercise each analyzer's
// full finding surface.
func TestHotpathPropagation(t *testing.T) { runCase(t, "hotpath", NoAlloc) }
func TestNoAlloc(t *testing.T)            { runCase(t, "noalloc", NoAlloc) }
func TestNoBlock(t *testing.T)            { runCase(t, "noblock", NoBlock) }
func TestLockOrder(t *testing.T)          { runCase(t, "lockorder", LockOrder) }

// The v4 contract analyzers: shardown needs the owner package plus a
// foreign package to exercise the cross-package boundary rule.
func TestShardOwn(t *testing.T)    { runCaseDirs(t, []string{"shardown", "shardown/shardsub"}, ShardOwn) }
func TestAtomicField(t *testing.T) { runCase(t, "atomicfield", AtomicField) }
func TestLayout(t *testing.T)      { runCase(t, "layout", Layout) }

// TestAllowFunc checks the function-scoped suppression: wallclock runs
// over the fixture and only the undirected function reports.
func TestAllowFunc(t *testing.T) { runCase(t, "allowfunc", Wallclock) }

// TestAllowFuncStale pins the allow(func) audit semantics: a directive
// whose function produces no matching finding is stale; one that
// suppressed something is not; an unjudged analyzer stays silent.
func TestAllowFuncStale(t *testing.T) {
	pkgs, err := Load(".", "./testdata/src/allowfunc")
	if err != nil {
		t.Fatalf("loading testdata/allowfunc: %v", err)
	}
	_, stale := RunAudit(pkgs, testConfig(Wallclock, MapRange))
	var gotStale bool
	for _, d := range stale {
		if strings.Contains(d.Message, "stale //taq:allow(func) maprange") {
			gotStale = true
		}
		if strings.Contains(d.Message, "allow(func) wallclock") {
			t.Errorf("live allow(func) flagged stale: %s", d)
		}
	}
	if !gotStale {
		t.Errorf("missing stale report for allow(func) maprange; got %v", stale)
	}
	// When maprange does not run, its directive must not be judged.
	_, stale = RunAudit(pkgs, testConfig(Wallclock))
	for _, d := range stale {
		if strings.Contains(d.Message, "maprange") {
			t.Errorf("directive for non-running analyzer flagged: %s", d)
		}
	}
}

// TestAnnotationsInventory pins the WriteAnnotations baseline format:
// byte-stable across calls, every directive kind listed, and the
// totals line consistent with the fixture contents.
func TestAnnotationsInventory(t *testing.T) {
	pkgs, err := Load(".", "./testdata/src/shardown", "./testdata/src/shardown/shardsub",
		"./testdata/src/atomicfield", "./testdata/src/layout")
	if err != nil {
		t.Fatalf("loading fixtures: %v", err)
	}
	var a, b strings.Builder
	if err := WriteAnnotations(&a, pkgs); err != nil {
		t.Fatalf("WriteAnnotations: %v", err)
	}
	WriteAnnotations(&b, pkgs)
	if a.String() != b.String() {
		t.Error("WriteAnnotations output is not stable across calls")
	}
	for _, want := range []string{
		"shardowned taq/internal/analysis/testdata/src/shardown.Owned\n",
		"shardowned taq/internal/analysis/testdata/src/shardown.handles\n",
		"crossshard taq/internal/analysis/testdata/src/shardown.Handoff\n",
		"crossshard taq/internal/analysis/testdata/src/shardown/shardsub.aggregate\n",
		"atomic taq/internal/analysis/testdata/src/atomicfield.shared.hits\n",
		"atomic taq/internal/analysis/testdata/src/atomicfield.workers\n",
		"layout taq/internal/analysis/testdata/src/layout.rec size=24 align=8 hotbytes=0..16\n",
		"total 2 shardowned, 2 crossshard, 3 atomic, 5 layout\n",
	} {
		if !strings.Contains(a.String(), want) {
			t.Errorf("inventory missing %q:\n%s", want, a.String())
		}
	}
}

// TestParseLayoutSpec covers the spec grammar the fuzzer explores.
func TestParseLayoutSpec(t *testing.T) {
	cases := []struct {
		in   string
		ok   bool
		want string
	}{
		{"size=200", true, "size=200"},
		{"size=200 align=64 hotbytes=0..136", true, "size=200 align=64 hotbytes=0..136"},
		{"hotbytes=32..136", true, "hotbytes=32..136"},
		{"", false, ""},
		{"size=", false, ""},
		{"size=-8", false, ""},
		{"align=48", false, ""}, // not a power of two
		{"hotbytes=10..2", false, ""},
		{"hotbytes=0..", false, ""},
		{"size=8 size=8", false, ""},
		{"size=8 extra words", false, ""},
		{"width=8", false, ""},
	}
	for _, c := range cases {
		spec, err := parseLayoutSpec(c.in)
		if c.ok != (err == nil) {
			t.Errorf("parseLayoutSpec(%q) err = %v, want ok=%v", c.in, err, c.ok)
			continue
		}
		if c.ok && spec.canonical() != c.want {
			t.Errorf("parseLayoutSpec(%q).canonical() = %q, want %q", c.in, spec.canonical(), c.want)
		}
	}
}

// TestHotpathClosure pins the call-graph API the -roots baseline and
// the alloc-test table rely on: the fixture root is listed, every
// function it reaches (through any dispatch mechanism) is in the
// closure, and the unreached twin is not.
func TestHotpathClosure(t *testing.T) {
	pkgs, err := Load(".", "./testdata/src/hotpath")
	if err != nil {
		t.Fatalf("loading testdata/hotpath: %v", err)
	}
	prog := NewProgram(pkgs)
	roots := prog.Roots()
	if len(roots) != 1 || !strings.HasSuffix(roots[0].Name(), "hotpath.Root") {
		t.Fatalf("Roots() = %v, want exactly hotpath.Root", roots)
	}
	hot := make(map[string]bool)
	for _, n := range prog.HotNodes() {
		hot[n.Name()] = true
	}
	for _, want := range []string{
		"hotpath.Root",
		"hotpath.Impl).Push",
		"hotpath.viaValue",
		"hotpath.holder).viaMethodValue",
		"hotpath.transitive",
	} {
		found := false
		for name := range hot {
			if strings.Contains(name, want) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("closure is missing %s; hot = %v", want, hot)
		}
	}
	for name := range hot {
		if strings.Contains(name, "notHot") {
			t.Errorf("closure wrongly contains %s", name)
		}
	}
	// WriteRoots must be byte-stable: two renders agree.
	var a, b strings.Builder
	WriteRoots(&a, pkgs)
	WriteRoots(&b, pkgs)
	if a.String() != b.String() {
		t.Error("WriteRoots output is not stable across calls")
	}
	if !strings.Contains(a.String(), "total ") {
		t.Errorf("WriteRoots output missing total line:\n%s", a.String())
	}
}

// TestAuditMalformed pins the -audit bugfix: malformed directives
// (typoed directive word, missing or partially empty analyzer list,
// misplaced hotpath, unknown analyzer name) must surface as audit
// diagnostics so the driver exits non-zero.
func TestAuditMalformed(t *testing.T) {
	pkgs, err := Load(".", "./testdata/src/malformed")
	if err != nil {
		t.Fatalf("loading testdata/malformed: %v", err)
	}
	_, stale := RunAudit(pkgs, testConfig(All()...))
	for _, want := range []string{
		"unknown directive //taq:alow",
		"missing analyzer list",
		"misplaced //taq:hotpath",
		"empty analyzer name",
		`unknown analyzer "wallclck"`,
		"misplaced //taq:shardowned",
		"misplaced //taq:crossshard",
		"malformed //taq:allow(func): missing analyzer list",
		"misplaced //taq:allow(func)",
		"malformed //taq:layout: size=notanumber is not a positive integer",
		"//taq:layout on non-struct type W",
		"misplaced //taq:atomic",
	} {
		found := false
		for _, d := range stale {
			if strings.Contains(d.Message, want) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("audit is missing a diagnostic containing %q; got %v", want, stale)
		}
	}
}

// TestLoadErrorNamesPackage pins the exit-2 contract's prerequisite:
// when a package fails to type-check, Load must surface a *LoadError
// carrying the failing package's import path so the driver can name it.
func TestLoadErrorNamesPackage(t *testing.T) {
	_, err := Load(".", "./testdata/src/broken")
	if err == nil {
		t.Fatal("Load of testdata/src/broken succeeded, want type-check failure")
	}
	var le *LoadError
	if !errors.As(err, &le) {
		t.Fatalf("Load error is %T (%v), want *LoadError", err, err)
	}
	if !strings.Contains(le.Pkg, "broken") {
		t.Errorf("LoadError.Pkg = %q, want the broken package's path", le.Pkg)
	}
	if !strings.Contains(le.Error(), le.Pkg) {
		t.Errorf("LoadError message %q does not name the package", le.Error())
	}
}

// TestAuditStaleAllow checks that a directive which suppresses nothing
// is reported stale, while a live one is not.
func TestAuditStaleAllow(t *testing.T) {
	pkgs, err := Load(".", "./testdata/src/maprange")
	if err != nil {
		t.Fatalf("loading testdata/maprange: %v", err)
	}
	// maprange's fixture contains live //taq:allow directives; run with
	// the analyzer they name, then without it.
	_, stale := RunAudit(pkgs, testConfig(MapRange))
	for _, d := range stale {
		if strings.Contains(d.Message, "stale //taq:allow maprange") {
			t.Errorf("live directive flagged stale: %s", d)
		}
	}
	// With only wallclock running, maprange directives must NOT be
	// judged (their analyzer did not run), so no stale reports either.
	_, stale = RunAudit(pkgs, testConfig(Wallclock))
	for _, d := range stale {
		if strings.Contains(d.Message, "taq:allow maprange") {
			t.Errorf("directive for non-running analyzer flagged: %s", d)
		}
	}
}

// TestRepoIsClean runs the whole production suite over the module: the
// determinism contract is a tier-1 invariant, so a stray time.Now or an
// order-sensitive map range anywhere fails the normal test run, not
// just CI's taqvet step.
func TestRepoIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the whole module")
	}
	pkgs, err := Load("../..", "./...")
	if err != nil {
		t.Fatalf("loading module: %v", err)
	}
	if len(pkgs) < 10 {
		t.Fatalf("loaded only %d packages; loader is missing the tree", len(pkgs))
	}
	for _, d := range Run(pkgs, DefaultConfig()) {
		t.Errorf("finding: %s", d)
	}
}

func TestDiagnosticFormat(t *testing.T) {
	d := Diagnostic{
		Pos:      token.Position{Filename: "x.go", Line: 3, Column: 7},
		Analyzer: "wallclock",
		Message:  "msg",
	}
	if got, want := d.String(), "x.go:3:7: msg [wallclock]"; got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
}

func TestConfigScoping(t *testing.T) {
	cfg := DefaultConfig()
	for _, path := range []string{"taq/internal/core", "taq/internal/sim", "taq/internal/metrics"} {
		if !cfg.IsDeterministic(path) {
			t.Errorf("IsDeterministic(%q) = false, want true", path)
		}
	}
	for _, path := range []string{"taq/internal/emu", "taq/internal/trace", "taq/cmd/taqsim", "taq"} {
		if cfg.IsDeterministic(path) {
			t.Errorf("IsDeterministic(%q) = true, want false", path)
		}
	}
	if !cfg.IsLockChecked("taq/internal/emu") || cfg.IsLockChecked("taq/internal/core") {
		t.Error("lockdiscipline should apply to emu and only emu")
	}
}
