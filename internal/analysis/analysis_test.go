package analysis

import (
	"errors"
	"fmt"
	"go/token"
	"regexp"
	"strings"
	"testing"
)

// testConfig is the production config narrowed to the analyzer under
// test; the fixture packages are already inside the default scope.
func testConfig(analyzers ...*Analyzer) *Config {
	cfg := DefaultConfig()
	cfg.Analyzers = analyzers
	return cfg
}

var wantRE = regexp.MustCompile("`([^`]*)`")

// wants extracts the backtick-quoted regexes of "// want" comments,
// keyed by file:line.
func wants(t *testing.T, pkgs []*Package) map[string][]*regexp.Regexp {
	t.Helper()
	out := make(map[string][]*regexp.Regexp)
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
					if !strings.HasPrefix(text, "want ") {
						continue
					}
					pos := pkg.Fset.Position(c.Pos())
					key := posKey(pos)
					for _, m := range wantRE.FindAllStringSubmatch(text, -1) {
						re, err := regexp.Compile(m[1])
						if err != nil {
							t.Fatalf("%s: bad want pattern %q: %v", key, m[1], err)
						}
						out[key] = append(out[key], re)
					}
				}
			}
		}
	}
	return out
}

func posKey(pos token.Position) string {
	return fmt.Sprintf("%s:%d", pos.Filename, pos.Line)
}

// runCase loads one testdata package, runs the analyzers, and requires
// the diagnostics to match the // want expectations exactly.
func runCase(t *testing.T, dir string, analyzers ...*Analyzer) {
	t.Helper()
	pkgs, err := Load(".", "./testdata/src/"+dir)
	if err != nil {
		t.Fatalf("loading testdata/%s: %v", dir, err)
	}
	expected := wants(t, pkgs)
	diags := Run(pkgs, testConfig(analyzers...))

	matched := make(map[string]int) // posKey -> how many wants consumed
	for _, d := range diags {
		key := posKey(d.Pos)
		res := expected[key]
		ok := false
		for i, re := range res {
			if re == nil {
				continue
			}
			if re.MatchString(d.Message) {
				res[i] = nil
				matched[key]++
				ok = true
				break
			}
		}
		if !ok {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for key, res := range expected {
		for _, re := range res {
			if re != nil {
				t.Errorf("%s: expected diagnostic matching %q, got none", key, re)
			}
		}
	}
}

func TestWallclock(t *testing.T)      { runCase(t, "wallclock", Wallclock) }
func TestMapRange(t *testing.T)       { runCase(t, "maprange", MapRange) }
func TestTimerLeak(t *testing.T)      { runCase(t, "timerleak", TimerLeak) }
func TestLockDiscipline(t *testing.T) { runCase(t, "lockdiscipline", LockDiscipline) }
func TestTimerOwn(t *testing.T)       { runCase(t, "timerown", TimerOwn) }
func TestSimTime(t *testing.T)        { runCase(t, "simtime", SimTime) }
func TestDetaint(t *testing.T)        { runCase(t, "detaint", Detaint) }

// TestLoadErrorNamesPackage pins the exit-2 contract's prerequisite:
// when a package fails to type-check, Load must surface a *LoadError
// carrying the failing package's import path so the driver can name it.
func TestLoadErrorNamesPackage(t *testing.T) {
	_, err := Load(".", "./testdata/src/broken")
	if err == nil {
		t.Fatal("Load of testdata/src/broken succeeded, want type-check failure")
	}
	var le *LoadError
	if !errors.As(err, &le) {
		t.Fatalf("Load error is %T (%v), want *LoadError", err, err)
	}
	if !strings.Contains(le.Pkg, "broken") {
		t.Errorf("LoadError.Pkg = %q, want the broken package's path", le.Pkg)
	}
	if !strings.Contains(le.Error(), le.Pkg) {
		t.Errorf("LoadError message %q does not name the package", le.Error())
	}
}

// TestAuditStaleAllow checks that a directive which suppresses nothing
// is reported stale, while a live one is not.
func TestAuditStaleAllow(t *testing.T) {
	pkgs, err := Load(".", "./testdata/src/maprange")
	if err != nil {
		t.Fatalf("loading testdata/maprange: %v", err)
	}
	// maprange's fixture contains live //taq:allow directives; run with
	// the analyzer they name, then without it.
	_, stale := RunAudit(pkgs, testConfig(MapRange))
	for _, d := range stale {
		if strings.Contains(d.Message, "stale //taq:allow maprange") {
			t.Errorf("live directive flagged stale: %s", d)
		}
	}
	// With only wallclock running, maprange directives must NOT be
	// judged (their analyzer did not run), so no stale reports either.
	_, stale = RunAudit(pkgs, testConfig(Wallclock))
	for _, d := range stale {
		if strings.Contains(d.Message, "taq:allow maprange") {
			t.Errorf("directive for non-running analyzer flagged: %s", d)
		}
	}
}

// TestRepoIsClean runs the whole production suite over the module: the
// determinism contract is a tier-1 invariant, so a stray time.Now or an
// order-sensitive map range anywhere fails the normal test run, not
// just CI's taqvet step.
func TestRepoIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the whole module")
	}
	pkgs, err := Load("../..", "./...")
	if err != nil {
		t.Fatalf("loading module: %v", err)
	}
	if len(pkgs) < 10 {
		t.Fatalf("loaded only %d packages; loader is missing the tree", len(pkgs))
	}
	for _, d := range Run(pkgs, DefaultConfig()) {
		t.Errorf("finding: %s", d)
	}
}

func TestDiagnosticFormat(t *testing.T) {
	d := Diagnostic{
		Pos:      token.Position{Filename: "x.go", Line: 3, Column: 7},
		Analyzer: "wallclock",
		Message:  "msg",
	}
	if got, want := d.String(), "x.go:3:7: msg [wallclock]"; got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
}

func TestConfigScoping(t *testing.T) {
	cfg := DefaultConfig()
	for _, path := range []string{"taq/internal/core", "taq/internal/sim", "taq/internal/metrics"} {
		if !cfg.IsDeterministic(path) {
			t.Errorf("IsDeterministic(%q) = false, want true", path)
		}
	}
	for _, path := range []string{"taq/internal/emu", "taq/internal/trace", "taq/cmd/taqsim", "taq"} {
		if cfg.IsDeterministic(path) {
			t.Errorf("IsDeterministic(%q) = true, want false", path)
		}
	}
	if !cfg.IsLockChecked("taq/internal/emu") || cfg.IsLockChecked("taq/internal/core") {
		t.Error("lockdiscipline should apply to emu and only emu")
	}
}
