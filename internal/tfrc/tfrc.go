// Package tfrc implements TCP-Friendly Rate Control (RFC 5348,
// simplified to the simulator's packet granularity). The paper's
// introduction argues that TFRC, like every TCP variant, assumes a
// fair share of at least ~1 packet per RTT (its equation rate is at
// least sqrt(3/2)/RTT packets for any loss rate p < 1) and therefore
// cannot rescue the sub-packet regime; this package provides the
// baseline that lets the experiments demonstrate that claim.
//
// The implementation follows the RFC's structure: the receiver
// measures the loss-event rate with the weighted average of the last
// eight loss intervals and feeds back once per RTT; the sender paces
// packets at the throughput-equation rate, doubles its rate per RTT
// while no loss has been seen (slow start), caps at twice the reported
// receive rate, and halves on a no-feedback timer.
package tfrc

import (
	"math"

	"taq/internal/packet"
	"taq/internal/sim"
)

// Config carries TFRC parameters.
type Config struct {
	// MSS is the data packet wire size in bytes.
	MSS int
	// FeedbackSize is the wire size of receiver reports.
	FeedbackSize int
	// InitialRate is the starting send rate in bytes/second (default:
	// one packet per initial RTT estimate).
	InitialRate float64
	// InitialRTT seeds the RTT estimate before feedback arrives.
	InitialRTT sim.Time
	// MinInterval is the largest allowed inter-packet gap (RFC 5348's
	// t_mbi, 64 s: at least one packet per 64 seconds).
	MinInterval sim.Time
	// MaxRate caps the send rate in bytes/second (a stand-in for the
	// application and interface limits real TFRC runs under).
	MaxRate float64
}

// DefaultConfig returns RFC-flavored defaults matched to the paper's
// 500-byte packets.
func DefaultConfig() Config {
	return Config{
		MSS:          500,
		FeedbackSize: 40,
		InitialRTT:   200 * sim.Millisecond,
		MinInterval:  64 * sim.Second,
		MaxRate:      1.25e6, // 10 Mbps
	}
}

// lossIntervalWeights are RFC 5348's average-loss-interval weights.
var lossIntervalWeights = []float64{1, 1, 1, 1, 0.8, 0.6, 0.4, 0.2}

// equationRate returns the TCP throughput equation X_Bps for segment
// size s (bytes), round-trip time r, and loss event rate p (RFC 5348
// §3.1, with b = 1 and t_RTO = 4·RTT).
func equationRate(s float64, r sim.Time, p float64) float64 {
	if p <= 0 {
		return math.Inf(1)
	}
	rtt := r.Seconds()
	if rtt <= 0 {
		rtt = 0.001
	}
	denom := rtt*math.Sqrt(2*p/3) +
		4*rtt*3*math.Sqrt(3*p/8)*p*(1+32*p*p)
	return s / denom
}

// Sender is a TFRC data sender. Drive it with Start and Deliver
// (feedback packets); it emits paced data through out.
type Sender struct {
	run  sim.Runner
	cfg  Config
	flow packet.FlowID
	pool packet.PoolID
	out  func(*packet.Packet)

	rate    float64 // bytes/second
	rtt     sim.Time
	haveRTT bool
	inSS    bool // slow-start (no loss reported yet)
	seq     int

	paceTimer  *sim.Timer
	nfTimer    *sim.Timer
	nfInterval sim.Time
	stopped    bool

	// Stats.
	PacketsSent   uint64
	FeedbackSeen  uint64
	RateHalvings  uint64 // no-feedback timer expiries
	LastLossRate  float64
	CurrentRateBs float64
}

// NewSender creates a TFRC sender.
func NewSender(run sim.Runner, cfg Config, flow packet.FlowID, pool packet.PoolID, out func(*packet.Packet)) *Sender {
	if cfg.MSS <= 0 {
		cfg = DefaultConfig()
	}
	s := &Sender{run: run, cfg: cfg, flow: flow, pool: pool, out: out, inSS: true}
	s.rtt = cfg.InitialRTT
	s.rate = cfg.InitialRate
	if s.rate <= 0 {
		s.rate = float64(cfg.MSS) / s.rtt.Seconds()
	}
	return s
}

// Rate returns the current send rate in bytes/second.
func (s *Sender) Rate() float64 { return s.rate }

// RTT returns the current RTT estimate.
func (s *Sender) RTT() sim.Time { return s.rtt }

// Start begins paced transmission.
func (s *Sender) Start() {
	if s.paceTimer != nil || s.stopped {
		return
	}
	s.sendNext()
	s.armNoFeedback()
}

// Stop halts transmission and timers.
func (s *Sender) Stop() {
	s.stopped = true
	s.paceTimer.Cancel()
	s.nfTimer.Cancel()
}

func (s *Sender) sendNext() {
	if s.stopped {
		return
	}
	now := s.run.Now()
	s.out(&packet.Packet{
		Flow: s.flow, Pool: s.pool, Kind: packet.Data,
		Seq: s.seq, Size: s.cfg.MSS, Sent: now,
	})
	s.seq++
	s.PacketsSent++
	gap := sim.FromSeconds(float64(s.cfg.MSS) / s.rate)
	if gap > s.cfg.MinInterval {
		gap = s.cfg.MinInterval
	}
	if gap < sim.Microsecond {
		gap = sim.Microsecond
	}
	s.paceTimer = sim.Reschedule(s.run, s.paceTimer, gap, s.sendNext)
}

func (s *Sender) armNoFeedback() {
	s.nfInterval = 4 * s.rtt
	if !s.haveRTT {
		s.nfInterval = 2 * sim.Second
	}
	s.nfTimer = sim.Reschedule(s.run, s.nfTimer, s.nfInterval, s.onNoFeedback)
}

func (s *Sender) onNoFeedback() {
	if s.stopped {
		return
	}
	// Halve the rate, bounded below by one packet per MinInterval.
	floor := float64(s.cfg.MSS) / s.cfg.MinInterval.Seconds()
	s.rate /= 2
	if s.rate < floor {
		s.rate = floor
	}
	s.RateHalvings++
	s.CurrentRateBs = s.rate
	s.armNoFeedback()
}

// Deliver hands the sender a packet from the network; only feedback
// reports are meaningful.
func (s *Sender) Deliver(p *packet.Packet) {
	if s.stopped || p.Kind != packet.Feedback {
		return
	}
	s.FeedbackSeen++
	// RTT sample from the echoed send timestamp, minus the receiver's
	// hold time.
	if sample := s.run.Now() - p.EchoSent - p.FbHold; sample > 0 {
		if !s.haveRTT {
			s.rtt = sample
			s.haveRTT = true
		} else {
			s.rtt = (7*s.rtt + sample) / 8
		}
	}
	pLoss := p.FbLossRate
	xRecv := p.FbRecvRate
	s.LastLossRate = pLoss
	defer func() {
		if s.cfg.MaxRate > 0 && s.rate > s.cfg.MaxRate {
			s.rate = s.cfg.MaxRate
		}
		s.CurrentRateBs = s.rate
	}()
	switch {
	case pLoss <= 0 && s.inSS:
		// Slow start: double per feedback (≈ per RTT), capped at
		// twice the receive rate.
		next := s.rate * 2
		if cap := 2 * xRecv; xRecv > 0 && next > cap {
			next = cap
		}
		if next > s.rate {
			s.rate = next
		}
	default:
		s.inSS = false
		x := equationRate(float64(s.cfg.MSS), s.rtt, pLoss)
		if cap := 2 * xRecv; xRecv > 0 && x > cap {
			x = cap
		}
		floor := float64(s.cfg.MSS) / s.cfg.MinInterval.Seconds()
		if x < floor {
			x = floor
		}
		s.rate = x
	}
	s.CurrentRateBs = s.rate
	s.armNoFeedback()
}

// Receiver is a TFRC data receiver: it measures the loss-event rate
// and receive rate and reports once per RTT.
type Receiver struct {
	run  sim.Runner
	cfg  Config
	flow packet.FlowID
	pool packet.PoolID
	out  func(*packet.Packet)

	maxSeq       int // highest sequence seen
	firstPacket  bool
	lastLossTime sim.Time
	// lastDataSent/lastDataAt echo the most recent data packet's send
	// time and its arrival time, for sender RTT sampling.
	lastDataSent sim.Time
	lastDataAt   sim.Time
	// intervals holds the most recent loss intervals, newest first;
	// the current (open) interval is intervals[0].
	intervals []float64

	// Receive-rate measurement window.
	winStart sim.Time
	winBytes int

	fbTimer *sim.Timer
	rtt     sim.Time

	// OnDeliver reports newly arrived segments (loss-tolerant stream:
	// every data packet counts).
	OnDeliver func(n int)

	// Stats.
	PacketsReceived uint64
	LossEvents      uint64
	FeedbackSent    uint64
}

// NewReceiver creates a TFRC receiver. out transmits feedback toward
// the sender.
func NewReceiver(run sim.Runner, cfg Config, flow packet.FlowID, pool packet.PoolID, out func(*packet.Packet)) *Receiver {
	if cfg.MSS <= 0 {
		cfg = DefaultConfig()
	}
	return &Receiver{
		run: run, cfg: cfg, flow: flow, pool: pool, out: out,
		maxSeq: -1, rtt: cfg.InitialRTT,
		intervals: []float64{0},
	}
}

// LossEventRate returns the current weighted loss-event rate estimate.
func (r *Receiver) LossEventRate() float64 {
	if r.LossEvents == 0 {
		return 0
	}
	// Weighted average of loss intervals (RFC 5348 §5.4). The open
	// interval is included when that raises the average (favoring
	// recent loss-free stretches).
	avg := weightedInterval(r.intervals[1:])
	withOpen := weightedInterval(r.intervals)
	if withOpen > avg {
		avg = withOpen
	}
	if avg <= 0 {
		return 1
	}
	p := 1 / avg
	if p > 1 {
		p = 1
	}
	return p
}

func weightedInterval(iv []float64) float64 {
	if len(iv) == 0 {
		return 0
	}
	n := len(iv)
	if n > len(lossIntervalWeights) {
		n = len(lossIntervalWeights)
	}
	var sum, wsum float64
	for i := 0; i < n; i++ {
		sum += iv[i] * lossIntervalWeights[i]
		wsum += lossIntervalWeights[i]
	}
	if wsum == 0 {
		return 0
	}
	return sum / wsum
}

// Deliver processes a data packet.
func (r *Receiver) Deliver(p *packet.Packet) {
	if p.Kind != packet.Data {
		return
	}
	now := r.run.Now()
	r.PacketsReceived++
	r.winBytes += p.Size
	r.lastDataSent, r.lastDataAt = p.Sent, now
	if !r.firstPacket {
		r.firstPacket = true
		r.winStart = now
		r.fbTimer = sim.Reschedule(r.run, r.fbTimer, r.rtt, r.sendFeedback)
	}
	if p.Seq > r.maxSeq+1 {
		// Sequence gap: lost packets. Gaps within one RTT of the last
		// loss belong to the same loss event (RFC 5348 §5.2).
		lost := p.Seq - r.maxSeq - 1
		if now-r.lastLossTime > r.rtt || r.LossEvents == 0 {
			r.LossEvents++
			r.lastLossTime = now
			// Close the open interval, start a new one.
			r.intervals = append([]float64{0}, r.intervals...)
			if len(r.intervals) > len(lossIntervalWeights)+1 {
				r.intervals = r.intervals[:len(lossIntervalWeights)+1]
			}
		}
		_ = lost
	}
	if p.Seq > r.maxSeq {
		r.maxSeq = p.Seq
	}
	r.intervals[0]++ // packets in the open interval
	if r.OnDeliver != nil {
		r.OnDeliver(1)
	}
}

func (r *Receiver) sendFeedback() {
	now := r.run.Now()
	elapsed := (now - r.winStart).Seconds()
	xRecv := 0.0
	if elapsed > 0 {
		xRecv = float64(r.winBytes) / elapsed
	}
	r.out(&packet.Packet{
		Flow: r.flow, Pool: r.pool, Kind: packet.Feedback,
		Size:       r.cfg.FeedbackSize,
		Sent:       now,
		EchoSent:   r.lastDataSent,
		FbHold:     now - r.lastDataAt,
		FbLossRate: r.LossEventRate(),
		FbRecvRate: xRecv,
	})
	r.FeedbackSent++
	r.winStart = now
	r.winBytes = 0
	// Periodic reports once per RTT while data flows; the timer just
	// fired, so Reschedule re-arms it in place.
	r.fbTimer = sim.Reschedule(r.run, r.fbTimer, r.rtt, r.sendFeedback)
}

// Stop cancels the receiver's feedback timer.
func (r *Receiver) Stop() { r.fbTimer.Cancel() }
