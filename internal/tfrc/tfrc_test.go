package tfrc

import (
	"math"
	"testing"

	"taq/internal/packet"
	"taq/internal/sim"
)

// harness wires a TFRC sender/receiver pair over a fixed-delay path
// with a programmable drop filter.
type harness struct {
	e    *sim.Engine
	s    *Sender
	r    *Receiver
	drop func(*packet.Packet) bool
}

func newHarness(oneWay sim.Time) *harness {
	h := &harness{e: sim.NewEngine(1)}
	cfg := DefaultConfig()
	h.r = NewReceiver(h.e, cfg, 1, packet.PoolNone, func(p *packet.Packet) {
		if h.drop != nil && h.drop(p) {
			return
		}
		h.e.Schedule(oneWay, func() { h.s.Deliver(p) })
	})
	h.s = NewSender(h.e, cfg, 1, packet.PoolNone, func(p *packet.Packet) {
		if h.drop != nil && h.drop(p) {
			return
		}
		h.e.Schedule(oneWay, func() { h.r.Deliver(p) })
	})
	return h
}

func TestEquationRateMatchesKnownValues(t *testing.T) {
	// At p→0 the rate diverges; at p=1 it is tiny but finite.
	if !math.IsInf(equationRate(500, 200*sim.Millisecond, 0), 1) {
		t.Error("zero loss should give infinite equation rate")
	}
	// Sanity: s=500B, RTT=200ms, p=0.01 → X ≈ s/(R·sqrt(2p/3)) to
	// first order = 500/(0.2·0.0816) ≈ 30.6 KB/s; the RTO term lowers
	// it somewhat.
	x := equationRate(500, 200*sim.Millisecond, 0.01)
	if x < 15e3 || x > 31e3 {
		t.Errorf("equationRate(p=0.01) = %.0f B/s, want ≈20-30KB/s", x)
	}
	// Monotone decreasing in p.
	if equationRate(500, 200*sim.Millisecond, 0.1) >= x {
		t.Error("equation rate not decreasing in p")
	}
}

func TestLosslessSlowStartRampsRate(t *testing.T) {
	h := newHarness(50 * sim.Millisecond)
	h.s.Start()
	h.e.RunUntil(10 * sim.Second)
	// With no loss, rate should have multiplied far beyond the
	// initial one-packet-per-RTT.
	initial := 500 / 0.2
	if h.s.Rate() < 10*initial {
		t.Errorf("rate = %.0f B/s after 10s lossless, want ≫ %.0f", h.s.Rate(), initial)
	}
	if h.r.PacketsReceived == 0 || h.r.FeedbackSent == 0 {
		t.Error("no data or feedback flowed")
	}
	// RTT estimate near the true 100ms.
	if h.s.RTT() < 80*sim.Millisecond || h.s.RTT() > 150*sim.Millisecond {
		t.Errorf("RTT estimate = %v, want ≈100ms", h.s.RTT())
	}
}

func TestLossDropsToEquationRate(t *testing.T) {
	h := newHarness(50 * sim.Millisecond)
	rng := h.e.Rand()
	h.drop = func(p *packet.Packet) bool {
		return p.Kind == packet.Data && rng.Float64() < 0.1
	}
	h.s.Start()
	h.e.RunUntil(60 * sim.Second)
	if h.r.LossEvents == 0 {
		t.Fatal("no loss events recorded")
	}
	p := h.r.LossEventRate()
	if p < 0.01 || p > 0.4 {
		t.Errorf("loss event rate = %.3f under 10%% drops", p)
	}
	// The sender's rate should sit near the equation rate for the
	// measured p (within a factor ~3 given the noisy estimators).
	want := equationRate(500, h.s.RTT(), p)
	got := h.s.Rate()
	if got > 3*want || got < want/3 {
		t.Errorf("rate %.0f B/s vs equation %.0f B/s (p=%.3f)", got, want, p)
	}
}

func TestNoFeedbackTimerHalvesRate(t *testing.T) {
	h := newHarness(50 * sim.Millisecond)
	h.s.Start()
	h.e.RunUntil(5 * sim.Second)
	before := h.s.Rate()
	// Black-hole everything: feedback stops, rate must halve
	// repeatedly down to the floor.
	h.drop = func(*packet.Packet) bool { return true }
	h.e.RunUntil(60 * sim.Second)
	if h.s.RateHalvings == 0 {
		t.Fatal("no-feedback timer never fired")
	}
	if h.s.Rate() >= before/2 {
		t.Errorf("rate %.0f did not halve from %.0f", h.s.Rate(), before)
	}
	floor := 500 / (64 * sim.Second).Seconds()
	if h.s.Rate() < floor-1e-9 {
		t.Errorf("rate %.3f fell below the one-packet-per-64s floor %.3f", h.s.Rate(), floor)
	}
}

func TestMinimumOnePacketPer64s(t *testing.T) {
	// Even at p = 1 the equation floor keeps one packet per t_mbi.
	cfg := DefaultConfig()
	e := sim.NewEngine(1)
	s := NewSender(e, cfg, 1, packet.PoolNone, func(*packet.Packet) {})
	s.Deliver(&packet.Packet{Kind: packet.Feedback, FbLossRate: 1, FbRecvRate: 10})
	floor := 500 / (64 * sim.Second).Seconds()
	if s.Rate() < floor-1e-9 {
		t.Errorf("rate %.4f below floor %.4f at p=1", s.Rate(), floor)
	}
}

func TestReceiverLossIntervals(t *testing.T) {
	e := sim.NewEngine(1)
	r := NewReceiver(e, DefaultConfig(), 1, packet.PoolNone, func(*packet.Packet) {})
	// Deliver 0..9, skip 10, deliver 11..20: one loss event.
	for seq := 0; seq < 10; seq++ {
		r.Deliver(&packet.Packet{Kind: packet.Data, Seq: seq, Size: 500})
	}
	e.RunUntil(sim.Second)
	for seq := 11; seq <= 20; seq++ {
		r.Deliver(&packet.Packet{Kind: packet.Data, Seq: seq, Size: 500})
	}
	if r.LossEvents != 1 {
		t.Fatalf("LossEvents = %d, want 1", r.LossEvents)
	}
	p := r.LossEventRate()
	if p <= 0 || p > 0.5 {
		t.Errorf("loss event rate = %v", p)
	}
}

func TestReceiverCoalescesLossesWithinRTT(t *testing.T) {
	e := sim.NewEngine(1)
	r := NewReceiver(e, DefaultConfig(), 1, packet.PoolNone, func(*packet.Packet) {})
	// Two gaps back-to-back (same instant): one loss event.
	r.Deliver(&packet.Packet{Kind: packet.Data, Seq: 0, Size: 500})
	r.Deliver(&packet.Packet{Kind: packet.Data, Seq: 2, Size: 500})
	r.Deliver(&packet.Packet{Kind: packet.Data, Seq: 4, Size: 500})
	if r.LossEvents != 1 {
		t.Errorf("LossEvents = %d, want 1 (coalesced within an RTT)", r.LossEvents)
	}
}

func TestSenderStop(t *testing.T) {
	h := newHarness(10 * sim.Millisecond)
	h.s.Start()
	h.e.RunUntil(sim.Second)
	h.s.Stop()
	h.r.Stop()
	sent := h.s.PacketsSent
	h.e.RunUntil(10 * sim.Second)
	if h.s.PacketsSent != sent {
		t.Error("sender kept transmitting after Stop")
	}
}

func TestWeightedInterval(t *testing.T) {
	if weightedInterval(nil) != 0 {
		t.Error("empty intervals should weigh 0")
	}
	// Uniform intervals → that value.
	iv := []float64{10, 10, 10, 10, 10, 10, 10, 10}
	if got := weightedInterval(iv); math.Abs(got-10) > 1e-9 {
		t.Errorf("weightedInterval(uniform 10) = %v", got)
	}
	// Recent intervals weigh more.
	recentBig := []float64{100, 10, 10, 10, 10, 10, 10, 10}
	recentSmall := []float64{10, 10, 10, 10, 10, 10, 10, 100}
	if weightedInterval(recentBig) <= weightedInterval(recentSmall) {
		t.Error("recent intervals should dominate the average")
	}
}
