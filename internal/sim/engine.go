package sim

import (
	"math/rand"
)

// Runner is the clock-and-scheduler interface all protocol code is
// written against. The discrete-event Engine in this package implements
// it with virtual time; internal/emu implements it with (scaled) wall
// time. Callbacks scheduled through a Runner are executed serially: no
// two callbacks of the same Runner ever run concurrently, so protocol
// code needs no locking of its own.
type Runner interface {
	// Now returns the current time.
	Now() Time
	// Schedule arranges for fn to run delay from now. A non-positive
	// delay runs fn as soon as possible, still after the current
	// callback returns. The returned Timer may be used to cancel.
	Schedule(delay Time, fn func()) *Timer
	// Rand returns the runner's random source. Deterministic for the
	// simulation engine given a seed.
	Rand() *rand.Rand
}

// afterRunner is the optional Runner extension behind After: engines
// that implement it can schedule fire-and-forget callbacks without
// allocating a Timer per event.
type afterRunner interface {
	After(delay Time, fn func())
}

// rescheduleRunner is the optional Runner extension behind Reschedule:
// engines that implement it can re-arm a caller-owned Timer in place
// instead of allocating a new one.
type rescheduleRunner interface {
	Reschedule(t *Timer, delay Time, fn func()) *Timer
}

// After schedules fn to run delay from now without returning a handle.
// Use it for fire-and-forget events (packet deliveries, self-armed
// ticks) that are never canceled: runners that support it recycle the
// underlying timer allocation, which is the per-event hot path of every
// experiment sweep. Falls back to Schedule on runners that don't.
//
//taq:hotpath per-event scheduling entry of every packet delivery
func After(r Runner, delay Time, fn func()) {
	if a, ok := r.(afterRunner); ok {
		a.After(delay, fn)
		return
	}
	r.Schedule(delay, fn)
}

// Reschedule cancels t (if still pending) and arms fn to run delay from
// now, reusing t's allocation when the runner supports it — the
// cancel-then-rearm idiom of RTO and pacing timers without the per-arm
// allocation. t may be nil. The caller must hold the only reference to
// t and must replace it with the returned handle.
//
//taq:hotpath per-event rearm entry of RTO and pacing timers
func Reschedule(r Runner, t *Timer, delay Time, fn func()) *Timer {
	if rr, ok := r.(rescheduleRunner); ok {
		return rr.Reschedule(t, delay, fn)
	}
	t.Cancel()
	return r.Schedule(delay, fn)
}

// Timer is a handle to a scheduled callback.
type Timer struct {
	at  Time
	seq uint64
	fn  func()
	// index is the position in the owning engine's event heap, -1 when
	// not queued (fired, canceled, or external).
	index    int
	canceled bool
	// noHandle marks engine-internal fire-and-forget timers (After):
	// no *Timer for them ever escapes, so the engine may recycle the
	// struct through its free list when the event fires.
	noHandle bool
	// eng is the owning Engine, nil for external timers.
	eng *Engine
	// stop is set by the real-time engine to stop the underlying
	// wall-clock timer. It is an interface rather than a func() so the
	// cancel path carries no closure and stays statically resolvable
	// (taqvet's hotpath closure would otherwise have to treat every
	// address-taken thunk in the program as a Cancel callee).
	stop TimerStopper
}

// TimerStopper stops the wall-clock timer backing an external Timer
// handle when that handle is canceled.
type TimerStopper interface {
	StopTimer()
}

// Cancel prevents the timer's callback from running. The callback
// closure is released immediately (so canceled timers don't pin memory)
// and the event is unlinked from its engine's heap. Canceling an
// already-fired or already-canceled timer is a no-op.
func (t *Timer) Cancel() {
	if t == nil || t.canceled {
		return
	}
	t.canceled = true
	t.fn = nil
	if t.eng != nil && t.index >= 0 {
		t.eng.events.remove(t.index)
		t.index = -1
	}
	if t.stop != nil {
		t.stop.StopTimer()
	}
}

// Canceled reports whether Cancel was called.
func (t *Timer) Canceled() bool { return t != nil && t.canceled }

// ExternalTimer returns a Timer handle for Runner implementations
// outside this package (e.g. the real-time engine in internal/emu).
// The caller is responsible for honoring Canceled before firing.
func ExternalTimer(at Time) *Timer { return &Timer{at: at, index: -1} }

// SetStop registers s to run when the timer is canceled, letting
// external Runners stop their underlying wall-clock timers.
func (t *Timer) SetStop(s TimerStopper) { t.stop = s }

// When returns the virtual time the timer is (or was) due to fire.
func (t *Timer) When() Time { return t.at }

// timerHeap is a concrete 4-ary min-heap over *Timer ordered by
// (at, seq). Replacing container/heap removes the interface-method
// dispatch from the event loop every experiment spins; the 4-ary shape
// halves the sift-down depth for the deep heaps that large flow counts
// produce. seq breaks ties FIFO for determinism.
type timerHeap struct {
	items []*Timer
}

func (h *timerHeap) len() int { return len(h.items) }

// less orders the heap by time, then FIFO among same-time events.
func (h *timerHeap) less(a, b *Timer) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// push inserts t and records its index.
func (h *timerHeap) push(t *Timer) {
	t.index = len(h.items)
	h.items = append(h.items, t) //taq:allow noalloc amortized heap growth; capacity is retained across events
	h.siftUp(t.index)
}

// pop removes and returns the earliest timer.
func (h *timerHeap) pop() *Timer {
	t := h.items[0]
	last := len(h.items) - 1
	h.items[0] = h.items[last]
	h.items[0].index = 0
	h.items[last] = nil
	h.items = h.items[:last]
	if last > 0 {
		h.siftDown(0)
	}
	t.index = -1
	return t
}

// remove deletes the timer at index i.
func (h *timerHeap) remove(i int) {
	last := len(h.items) - 1
	if i != last {
		h.items[i] = h.items[last]
		h.items[i].index = i
	}
	h.items[last] = nil
	h.items = h.items[:last]
	if i < last {
		h.fix(i)
	}
}

// fix restores heap order after the key at index i changed.
func (h *timerHeap) fix(i int) {
	h.siftDown(i)
	h.siftUp(i)
}

func (h *timerHeap) siftUp(i int) {
	t := h.items[i]
	for i > 0 {
		parent := (i - 1) / 4
		p := h.items[parent]
		if !h.less(t, p) {
			break
		}
		h.items[i] = p
		p.index = i
		i = parent
	}
	h.items[i] = t
	t.index = i
}

func (h *timerHeap) siftDown(i int) {
	t := h.items[i]
	n := len(h.items)
	for {
		first := 4*i + 1
		if first >= n {
			break
		}
		best := first
		end := first + 4
		if end > n {
			end = n
		}
		for c := first + 1; c < end; c++ {
			if h.less(h.items[c], h.items[best]) {
				best = c
			}
		}
		if !h.less(h.items[best], t) {
			break
		}
		h.items[i] = h.items[best]
		h.items[i].index = i
		i = best
	}
	h.items[i] = t
	t.index = i
}

// Engine is a deterministic discrete-event scheduler. It is not safe for
// concurrent use; all simulation work happens on the goroutine that
// calls Run/RunUntil/Step. Concurrency in this codebase lives strictly
// above the engine: parallel sweeps (experiments.RunPoints) give every
// worker its own Engine and never share one across goroutines.
type Engine struct {
	now    Time
	seq    uint64
	events timerHeap
	// free recycles Timer structs. Only timers the engine exclusively
	// owns ever enter it: fire-and-forget (After) timers on firing, and
	// structs handed back through Reschedule are reused directly. Timers
	// returned by Schedule may still be referenced by callers after they
	// fire, so they are never recycled — handing their struct to an
	// unrelated event would let a stale Cancel kill it.
	free []*Timer
	rng  *rand.Rand
	// Processed counts callbacks executed, for instrumentation.
	Processed uint64
}

// NewEngine returns an engine whose clock starts at zero and whose
// random source is seeded with seed (so runs are reproducible).
func NewEngine(seed int64) *Engine {
	return &Engine{rng: rand.New(rand.NewSource(seed))}
}

// Now implements Runner.
func (e *Engine) Now() Time { return e.now }

// Rand implements Runner.
func (e *Engine) Rand() *rand.Rand { return e.rng }

// Schedule implements Runner.
func (e *Engine) Schedule(delay Time, fn func()) *Timer {
	if delay < 0 {
		delay = 0
	}
	return e.ScheduleAt(e.now+delay, fn)
}

// ScheduleAt arranges for fn to run at absolute virtual time at. Times
// in the past are clamped to now.
func (e *Engine) ScheduleAt(at Time, fn func()) *Timer {
	t := e.alloc(at, fn)
	e.events.push(t)
	return t
}

// After schedules fn to run delay from now, fire-and-forget: no handle
// is returned, and the timer's allocation is recycled when it fires.
// This is the allocation-free path for the per-packet events that
// dominate simulation runs. Prefer the package-level sim.After when
// holding a Runner interface.
//
//taq:hotpath engine fast path: recycled fire-and-forget timers
func (e *Engine) After(delay Time, fn func()) {
	if delay < 0 {
		delay = 0
	}
	t := e.alloc(e.now+delay, fn)
	t.noHandle = true
	e.events.push(t)
}

// Reschedule cancels t (if pending) and arms fn at delay from now,
// reusing t's allocation. t must have been created by this engine (or
// be nil) and the caller must hold its only reference; the returned
// handle replaces it. This is the allocation-free path for the
// cancel-then-rearm churn of RTO, pacing and scan timers.
//
//taq:hotpath engine fast path: in-place timer rearm
func (e *Engine) Reschedule(t *Timer, delay Time, fn func()) *Timer {
	if delay < 0 {
		delay = 0
	}
	if t == nil || t.eng != e {
		// External or foreign timers can't be reused in place.
		t.Cancel()
		return e.ScheduleAt(e.now+delay, fn)
	}
	t.at = e.now + delay
	t.seq = e.seq
	e.seq++
	t.fn = fn
	t.canceled = false
	t.noHandle = false
	if t.index >= 0 {
		e.events.fix(t.index)
	} else {
		e.events.push(t)
	}
	return t
}

// alloc takes a Timer from the free list or the heap allocator.
func (e *Engine) alloc(at Time, fn func()) *Timer {
	if at < e.now {
		at = e.now
	}
	var t *Timer
	if n := len(e.free); n > 0 {
		t = e.free[n-1]
		e.free[n-1] = nil
		e.free = e.free[:n-1]
		t.canceled = false
		t.noHandle = false
	} else {
		t = &Timer{eng: e} //taq:allow noalloc free-list refill; fired noHandle timers recycle
	}
	t.at = at
	t.seq = e.seq
	t.fn = fn
	e.seq++
	return t
}

// recycle returns an engine-exclusive timer struct to the free list.
func (e *Engine) recycle(t *Timer) {
	t.fn = nil
	e.free = append(e.free, t)
}

// Pending returns the number of live scheduled events. Canceled events
// are unlinked eagerly by Cancel, so they are never counted.
func (e *Engine) Pending() int { return e.events.len() }

// Live is an alias for Pending, named for callers that want to be
// explicit about canceled events being excluded.
func (e *Engine) Live() int { return e.Pending() }

// Step executes the next event, if any, advancing the clock to its
// time. It reports whether an event was executed.
func (e *Engine) Step() bool {
	if e.events.len() == 0 {
		return false
	}
	t := e.events.pop()
	fn := t.fn
	t.fn = nil
	e.now = t.at
	if t.noHandle {
		// No handle escaped, so the struct is exclusively ours again;
		// recycling before the callback lets fn's own scheduling reuse
		// it immediately.
		e.recycle(t)
	}
	e.Processed++
	fn()
	return true
}

// Run executes events until none remain.
func (e *Engine) Run() {
	for e.Step() {
	}
}

// RunUntil executes events with time ≤ end, then sets the clock to end.
// Events scheduled after end remain pending.
func (e *Engine) RunUntil(end Time) {
	for e.events.len() > 0 {
		// Peek; heap root is the earliest event.
		if e.events.items[0].at > end {
			break
		}
		e.Step()
	}
	if e.now < end {
		e.now = end
	}
}

var _ Runner = (*Engine)(nil)
