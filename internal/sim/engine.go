package sim

import (
	"container/heap"
	"math/rand"
)

// Runner is the clock-and-scheduler interface all protocol code is
// written against. The discrete-event Engine in this package implements
// it with virtual time; internal/emu implements it with (scaled) wall
// time. Callbacks scheduled through a Runner are executed serially: no
// two callbacks of the same Runner ever run concurrently, so protocol
// code needs no locking of its own.
type Runner interface {
	// Now returns the current time.
	Now() Time
	// Schedule arranges for fn to run delay from now. A non-positive
	// delay runs fn as soon as possible, still after the current
	// callback returns. The returned Timer may be used to cancel.
	Schedule(delay Time, fn func()) *Timer
	// Rand returns the runner's random source. Deterministic for the
	// simulation engine given a seed.
	Rand() *rand.Rand
}

// Timer is a handle to a scheduled callback.
type Timer struct {
	at       Time
	seq      uint64
	fn       func()
	index    int // heap index, -1 when popped
	canceled bool
	// stop is set by the real-time engine to a function that stops the
	// underlying wall-clock timer.
	stop func()
}

// Cancel prevents the timer's callback from running. Canceling an
// already-fired or already-canceled timer is a no-op.
func (t *Timer) Cancel() {
	if t == nil {
		return
	}
	t.canceled = true
	if t.stop != nil {
		t.stop()
	}
}

// Canceled reports whether Cancel was called.
func (t *Timer) Canceled() bool { return t != nil && t.canceled }

// ExternalTimer returns a Timer handle for Runner implementations
// outside this package (e.g. the real-time engine in internal/emu).
// The caller is responsible for honoring Canceled before firing.
func ExternalTimer(at Time) *Timer { return &Timer{at: at, index: -1} }

// SetStop registers fn to run when the timer is canceled, letting
// external Runners stop their underlying wall-clock timers.
func (t *Timer) SetStop(fn func()) { t.stop = fn }

// When returns the virtual time the timer is (or was) due to fire.
func (t *Timer) When() Time { return t.at }

type eventHeap []*Timer

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq // FIFO among same-time events: determinism
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	t := x.(*Timer)
	t.index = len(*h)
	*h = append(*h, t)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	t := old[n-1]
	old[n-1] = nil
	t.index = -1
	*h = old[:n-1]
	return t
}

// Engine is a deterministic discrete-event scheduler. It is not safe for
// concurrent use; all simulation work happens on the goroutine that
// calls Run/RunUntil/Step.
type Engine struct {
	now    Time
	seq    uint64
	events eventHeap
	rng    *rand.Rand
	// Processed counts callbacks executed, for instrumentation.
	Processed uint64
}

// NewEngine returns an engine whose clock starts at zero and whose
// random source is seeded with seed (so runs are reproducible).
func NewEngine(seed int64) *Engine {
	return &Engine{rng: rand.New(rand.NewSource(seed))}
}

// Now implements Runner.
func (e *Engine) Now() Time { return e.now }

// Rand implements Runner.
func (e *Engine) Rand() *rand.Rand { return e.rng }

// Schedule implements Runner.
func (e *Engine) Schedule(delay Time, fn func()) *Timer {
	if delay < 0 {
		delay = 0
	}
	return e.ScheduleAt(e.now+delay, fn)
}

// ScheduleAt arranges for fn to run at absolute virtual time at. Times
// in the past are clamped to now.
func (e *Engine) ScheduleAt(at Time, fn func()) *Timer {
	if at < e.now {
		at = e.now
	}
	t := &Timer{at: at, seq: e.seq, fn: fn}
	e.seq++
	heap.Push(&e.events, t)
	return t
}

// Pending returns the number of scheduled (possibly canceled) events.
func (e *Engine) Pending() int { return len(e.events) }

// Step executes the next event, if any, advancing the clock to its
// time. It reports whether an event was executed.
func (e *Engine) Step() bool {
	for len(e.events) > 0 {
		t := heap.Pop(&e.events).(*Timer)
		if t.canceled {
			continue
		}
		e.now = t.at
		e.Processed++
		t.fn()
		return true
	}
	return false
}

// Run executes events until none remain.
func (e *Engine) Run() {
	for e.Step() {
	}
}

// RunUntil executes events with time ≤ end, then sets the clock to end.
// Events scheduled after end remain pending.
func (e *Engine) RunUntil(end Time) {
	for len(e.events) > 0 {
		// Peek; heap root is the earliest event.
		next := e.events[0]
		if next.canceled {
			heap.Pop(&e.events)
			continue
		}
		if next.at > end {
			break
		}
		heap.Pop(&e.events)
		e.now = next.at
		e.Processed++
		next.fn()
	}
	if e.now < end {
		e.now = end
	}
}

var _ Runner = (*Engine)(nil)
