package sim

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

func TestTimeConversions(t *testing.T) {
	if got := FromSeconds(1.5); got != 1500*Millisecond {
		t.Errorf("FromSeconds(1.5) = %v, want 1.5s", got)
	}
	if got := (2 * Second).Seconds(); got != 2.0 {
		t.Errorf("Seconds() = %v, want 2", got)
	}
	if got := FromDuration(3 * time.Millisecond); got != 3*Millisecond {
		t.Errorf("FromDuration = %v", got)
	}
	if (1500 * Millisecond).String() != "1.500s" {
		t.Errorf("String() = %q", (1500 * Millisecond).String())
	}
	if (2 * Second).Duration() != 2*time.Second {
		t.Errorf("Duration() = %v", (2 * Second).Duration())
	}
}

func TestMinMaxTime(t *testing.T) {
	if MinTime(1, 2) != 1 || MinTime(2, 1) != 1 {
		t.Error("MinTime wrong")
	}
	if MaxTime(1, 2) != 2 || MaxTime(2, 1) != 2 {
		t.Error("MaxTime wrong")
	}
}

func TestEngineOrdering(t *testing.T) {
	e := NewEngine(1)
	var order []int
	e.Schedule(3*Second, func() { order = append(order, 3) })
	e.Schedule(1*Second, func() { order = append(order, 1) })
	e.Schedule(2*Second, func() { order = append(order, 2) })
	e.Run()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("events out of order: %v", order)
	}
	if e.Now() != 3*Second {
		t.Errorf("clock = %v, want 3s", e.Now())
	}
}

func TestEngineFIFOAmongEqualTimes(t *testing.T) {
	e := NewEngine(1)
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.Schedule(Second, func() { order = append(order, i) })
	}
	e.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("same-time events not FIFO: %v", order)
		}
	}
}

func TestEngineCancel(t *testing.T) {
	e := NewEngine(1)
	fired := false
	tm := e.Schedule(Second, func() { fired = true })
	tm.Cancel()
	if !tm.Canceled() {
		t.Error("Canceled() = false after Cancel")
	}
	e.Run()
	if fired {
		t.Error("canceled timer fired")
	}
	// Canceling again (and canceling nil) must not panic.
	tm.Cancel()
	var nilTimer *Timer
	nilTimer.Cancel()
	if nilTimer.Canceled() {
		t.Error("nil timer reports canceled")
	}
}

func TestEngineScheduleFromCallback(t *testing.T) {
	e := NewEngine(1)
	var hits []Time
	e.Schedule(Second, func() {
		hits = append(hits, e.Now())
		e.Schedule(Second, func() { hits = append(hits, e.Now()) })
	})
	e.Run()
	if len(hits) != 2 || hits[0] != Second || hits[1] != 2*Second {
		t.Fatalf("hits = %v", hits)
	}
}

func TestEngineNegativeDelayClamped(t *testing.T) {
	e := NewEngine(1)
	e.RunUntil(5 * Second)
	var at Time = -1
	e.Schedule(-3*Second, func() { at = e.Now() })
	e.Run()
	if at != 5*Second {
		t.Errorf("negative delay fired at %v, want 5s", at)
	}
}

func TestEngineRunUntil(t *testing.T) {
	e := NewEngine(1)
	count := 0
	for i := 1; i <= 10; i++ {
		e.Schedule(Time(i)*Second, func() { count++ })
	}
	e.RunUntil(5 * Second)
	if count != 5 {
		t.Errorf("count = %d, want 5", count)
	}
	if e.Now() != 5*Second {
		t.Errorf("now = %v, want 5s", e.Now())
	}
	if e.Pending() != 5 {
		t.Errorf("pending = %d, want 5", e.Pending())
	}
	e.RunUntil(20 * Second)
	if count != 10 {
		t.Errorf("count = %d, want 10", count)
	}
	if e.Now() != 20*Second {
		t.Errorf("now advanced to %v, want 20s (idle advance)", e.Now())
	}
}

func TestEngineRunUntilSkipsCanceled(t *testing.T) {
	e := NewEngine(1)
	fired := 0
	t1 := e.Schedule(Second, func() { fired++ })
	e.Schedule(2*Second, func() { fired++ })
	t1.Cancel()
	e.RunUntil(3 * Second)
	if fired != 1 {
		t.Errorf("fired = %d, want 1", fired)
	}
}

func TestEngineDeterminism(t *testing.T) {
	run := func(seed int64) []float64 {
		e := NewEngine(seed)
		var vals []float64
		var step func()
		step = func() {
			vals = append(vals, e.Rand().Float64())
			if len(vals) < 50 {
				e.Schedule(Time(e.Rand().Intn(1000))*Millisecond, step)
			}
		}
		e.Schedule(0, step)
		e.Run()
		return vals
	}
	a, b := run(42), run(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("run diverged at %d: %v vs %v", i, a[i], b[i])
		}
	}
	c := run(43)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical runs")
	}
}

// Property: for any batch of scheduled delays, events fire in
// nondecreasing time order and the clock equals each event's time.
func TestEngineMonotonicProperty(t *testing.T) {
	f := func(delaysMs []uint16) bool {
		e := NewEngine(7)
		var fireTimes []Time
		for _, d := range delaysMs {
			d := Time(d) * Millisecond
			e.Schedule(d, func() { fireTimes = append(fireTimes, e.Now()) })
		}
		e.Run()
		if len(fireTimes) != len(delaysMs) {
			return false
		}
		for i := 1; i < len(fireTimes); i++ {
			if fireTimes[i] < fireTimes[i-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50, Rand: rand.New(rand.NewSource(1))}); err != nil {
		t.Error(err)
	}
}

func TestTimerWhen(t *testing.T) {
	e := NewEngine(1)
	tm := e.Schedule(7*Second, func() {})
	if tm.When() != 7*Second {
		t.Errorf("When() = %v, want 7s", tm.When())
	}
}

func TestProcessedCount(t *testing.T) {
	e := NewEngine(1)
	for i := 0; i < 5; i++ {
		e.Schedule(Time(i)*Second, func() {})
	}
	e.Run()
	if e.Processed != 5 {
		t.Errorf("Processed = %d, want 5", e.Processed)
	}
}

func TestEnginePendingExcludesCanceled(t *testing.T) {
	e := NewEngine(1)
	timers := make([]*Timer, 6)
	for i := range timers {
		timers[i] = e.Schedule(Time(i+1)*Second, func() {})
	}
	timers[1].Cancel()
	timers[4].Cancel()
	if got := e.Pending(); got != 4 {
		t.Errorf("Pending() = %d after 2 of 6 canceled, want 4", got)
	}
	if got := e.Live(); got != 4 {
		t.Errorf("Live() = %d, want 4", got)
	}
	e.Run()
	if e.Pending() != 0 {
		t.Errorf("Pending() = %d after Run, want 0", e.Pending())
	}
}

func TestCancelDropsCallbackReference(t *testing.T) {
	e := NewEngine(1)
	tm := e.Schedule(Second, func() {})
	tm.Cancel()
	// The closure must be released at Cancel time, not when the event
	// would have fired — canceled RTO timers must not pin senders.
	if tm.fn != nil {
		t.Error("Cancel left fn set")
	}
	if tm.index != -1 {
		t.Errorf("Cancel left timer linked at heap index %d", tm.index)
	}
}

func TestAfterRecyclesTimers(t *testing.T) {
	e := NewEngine(1)
	const n = 100
	fired := 0
	for i := 0; i < n; i++ {
		e.After(Time(i)*Millisecond, func() { fired++ })
	}
	e.Run()
	if fired != n {
		t.Fatalf("fired = %d, want %d", fired, n)
	}
	if len(e.free) == 0 {
		t.Fatal("After timers were not recycled to the free list")
	}
	// A second wave must reuse structs rather than allocate new ones.
	before := len(e.free)
	e.After(Millisecond, func() { fired++ })
	if len(e.free) != before-1 {
		t.Errorf("After did not take from free list: %d -> %d", before, len(e.free))
	}
	e.Run()
	if len(e.free) != before {
		t.Errorf("fired After timer not returned to free list: %d, want %d", len(e.free), before)
	}
}

func TestRescheduleReusesPendingTimer(t *testing.T) {
	e := NewEngine(1)
	hits := []Time{}
	t1 := e.Schedule(5*Second, func() { hits = append(hits, e.Now()) })
	t2 := e.Reschedule(t1, 2*Second, func() { hits = append(hits, e.Now()) })
	if t2 != t1 {
		t.Error("Reschedule of a pending timer allocated a new struct")
	}
	e.Run()
	if len(hits) != 1 || hits[0] != 2*Second {
		t.Fatalf("hits = %v, want [2s]", hits)
	}
}

func TestRescheduleAfterFireAndAfterCancel(t *testing.T) {
	e := NewEngine(1)
	fired := 0
	tm := e.Schedule(Second, func() { fired++ })
	e.Run()
	if fired != 1 {
		t.Fatalf("fired = %d, want 1", fired)
	}
	// Re-arm a fired timer: struct reused, fires again.
	tm2 := e.Reschedule(tm, Second, func() { fired++ })
	if tm2 != tm {
		t.Error("Reschedule of a fired timer allocated a new struct")
	}
	e.Run()
	if fired != 2 {
		t.Fatalf("fired = %d after re-arm, want 2", fired)
	}
	// Cancel-then-reschedule: the canceled struct is revived.
	tm2.Cancel()
	tm3 := e.Reschedule(tm2, Second, func() { fired++ })
	if tm3 != tm2 {
		t.Error("Reschedule of a canceled timer allocated a new struct")
	}
	if tm3.Canceled() {
		t.Error("rescheduled timer still reports Canceled")
	}
	e.Run()
	if fired != 3 {
		t.Fatalf("fired = %d after cancel+reschedule, want 3", fired)
	}
}

func TestRescheduleNilTimer(t *testing.T) {
	e := NewEngine(1)
	fired := false
	tm := e.Reschedule(nil, Second, func() { fired = true })
	if tm == nil {
		t.Fatal("Reschedule(nil) returned nil")
	}
	e.Run()
	if !fired {
		t.Error("Reschedule(nil) timer did not fire")
	}
}

// stubRunner implements only the base Runner interface, standing in for
// engines (like emu's) without the After/Reschedule fast paths.
type stubRunner struct {
	e *Engine
}

func (s stubRunner) Now() Time                         { return s.e.Now() }
func (s stubRunner) Schedule(d Time, fn func()) *Timer { return s.e.Schedule(d, fn) }
func (s stubRunner) Rand() *rand.Rand                  { return s.e.Rand() }

func TestPackageHelpersFallBackToSchedule(t *testing.T) {
	e := NewEngine(1)
	r := stubRunner{e}
	fired := 0
	After(r, Second, func() { fired++ })
	tm := Reschedule(r, nil, 2*Second, func() { fired++ })
	tm = Reschedule(r, tm, 3*Second, func() { fired++ })
	e.Run()
	if fired != 2 {
		t.Errorf("fired = %d, want 2 (After + final Reschedule)", fired)
	}
}

func TestPackageHelpersUseEngineFastPath(t *testing.T) {
	e := NewEngine(1)
	fired := 0
	After(e, Second, func() { fired++ })
	e.Run()
	if fired != 1 || len(e.free) != 1 {
		t.Errorf("After via Runner: fired=%d free=%d, want 1/1", fired, len(e.free))
	}
	tm := Reschedule(e, nil, Second, func() { fired++ })
	tm2 := Reschedule(e, tm, 2*Second, func() { fired++ })
	if tm2 != tm {
		t.Error("Reschedule via Runner did not reuse the struct")
	}
	e.Run()
	if fired != 2 {
		t.Errorf("fired = %d, want 2", fired)
	}
}

// BenchmarkEngineSchedule measures the fire-and-forget hot path every
// packet event takes (link tx, propagation, delivery): After + drain.
// With the free list this runs allocation-free.
func BenchmarkEngineSchedule(b *testing.B) {
	e := NewEngine(1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.After(Time(i%1000)*Microsecond, func() {})
		if i%64 == 0 {
			for e.Step() {
			}
		}
	}
}

func BenchmarkEngineScheduleRun(b *testing.B) {
	e := NewEngine(1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Schedule(Time(i%1000)*Microsecond, func() {})
		if i%64 == 0 {
			for e.Step() {
			}
		}
	}
}

func BenchmarkEngineTimerChurn(b *testing.B) {
	// The RTO pattern: arm, cancel, re-arm — via Reschedule, which
	// reuses the one timer struct for the whole run.
	e := NewEngine(1)
	b.ReportAllocs()
	b.ResetTimer()
	var tm *Timer
	for i := 0; i < b.N; i++ {
		tm = e.Reschedule(tm, Second, func() {})
		if i%1024 == 0 {
			e.RunUntil(e.Now() + Millisecond)
		}
	}
}

func TestEngineTimerStress(t *testing.T) {
	// Many overlapping, partially canceled timers: the heap must stay
	// consistent and fire the survivors exactly once.
	e := NewEngine(3)
	const n = 20000
	fired := make([]int, n)
	timers := make([]*Timer, n)
	for i := 0; i < n; i++ {
		i := i
		timers[i] = e.Schedule(Time(e.Rand().Intn(1000))*Millisecond, func() { fired[i]++ })
	}
	for i := 0; i < n; i += 3 {
		timers[i].Cancel()
	}
	e.Run()
	for i := 0; i < n; i++ {
		want := 1
		if i%3 == 0 {
			want = 0
		}
		if fired[i] != want {
			t.Fatalf("timer %d fired %d times, want %d", i, fired[i], want)
		}
	}
}
