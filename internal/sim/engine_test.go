package sim

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

func TestTimeConversions(t *testing.T) {
	if got := FromSeconds(1.5); got != 1500*Millisecond {
		t.Errorf("FromSeconds(1.5) = %v, want 1.5s", got)
	}
	if got := (2 * Second).Seconds(); got != 2.0 {
		t.Errorf("Seconds() = %v, want 2", got)
	}
	if got := FromDuration(3 * time.Millisecond); got != 3*Millisecond {
		t.Errorf("FromDuration = %v", got)
	}
	if (1500 * Millisecond).String() != "1.500s" {
		t.Errorf("String() = %q", (1500 * Millisecond).String())
	}
	if (2 * Second).Duration() != 2*time.Second {
		t.Errorf("Duration() = %v", (2 * Second).Duration())
	}
}

func TestMinMaxTime(t *testing.T) {
	if MinTime(1, 2) != 1 || MinTime(2, 1) != 1 {
		t.Error("MinTime wrong")
	}
	if MaxTime(1, 2) != 2 || MaxTime(2, 1) != 2 {
		t.Error("MaxTime wrong")
	}
}

func TestEngineOrdering(t *testing.T) {
	e := NewEngine(1)
	var order []int
	e.Schedule(3*Second, func() { order = append(order, 3) })
	e.Schedule(1*Second, func() { order = append(order, 1) })
	e.Schedule(2*Second, func() { order = append(order, 2) })
	e.Run()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("events out of order: %v", order)
	}
	if e.Now() != 3*Second {
		t.Errorf("clock = %v, want 3s", e.Now())
	}
}

func TestEngineFIFOAmongEqualTimes(t *testing.T) {
	e := NewEngine(1)
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.Schedule(Second, func() { order = append(order, i) })
	}
	e.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("same-time events not FIFO: %v", order)
		}
	}
}

func TestEngineCancel(t *testing.T) {
	e := NewEngine(1)
	fired := false
	tm := e.Schedule(Second, func() { fired = true })
	tm.Cancel()
	if !tm.Canceled() {
		t.Error("Canceled() = false after Cancel")
	}
	e.Run()
	if fired {
		t.Error("canceled timer fired")
	}
	// Canceling again (and canceling nil) must not panic.
	tm.Cancel()
	var nilTimer *Timer
	nilTimer.Cancel()
	if nilTimer.Canceled() {
		t.Error("nil timer reports canceled")
	}
}

func TestEngineScheduleFromCallback(t *testing.T) {
	e := NewEngine(1)
	var hits []Time
	e.Schedule(Second, func() {
		hits = append(hits, e.Now())
		e.Schedule(Second, func() { hits = append(hits, e.Now()) })
	})
	e.Run()
	if len(hits) != 2 || hits[0] != Second || hits[1] != 2*Second {
		t.Fatalf("hits = %v", hits)
	}
}

func TestEngineNegativeDelayClamped(t *testing.T) {
	e := NewEngine(1)
	e.RunUntil(5 * Second)
	var at Time = -1
	e.Schedule(-3*Second, func() { at = e.Now() })
	e.Run()
	if at != 5*Second {
		t.Errorf("negative delay fired at %v, want 5s", at)
	}
}

func TestEngineRunUntil(t *testing.T) {
	e := NewEngine(1)
	count := 0
	for i := 1; i <= 10; i++ {
		e.Schedule(Time(i)*Second, func() { count++ })
	}
	e.RunUntil(5 * Second)
	if count != 5 {
		t.Errorf("count = %d, want 5", count)
	}
	if e.Now() != 5*Second {
		t.Errorf("now = %v, want 5s", e.Now())
	}
	if e.Pending() != 5 {
		t.Errorf("pending = %d, want 5", e.Pending())
	}
	e.RunUntil(20 * Second)
	if count != 10 {
		t.Errorf("count = %d, want 10", count)
	}
	if e.Now() != 20*Second {
		t.Errorf("now advanced to %v, want 20s (idle advance)", e.Now())
	}
}

func TestEngineRunUntilSkipsCanceled(t *testing.T) {
	e := NewEngine(1)
	fired := 0
	t1 := e.Schedule(Second, func() { fired++ })
	e.Schedule(2*Second, func() { fired++ })
	t1.Cancel()
	e.RunUntil(3 * Second)
	if fired != 1 {
		t.Errorf("fired = %d, want 1", fired)
	}
}

func TestEngineDeterminism(t *testing.T) {
	run := func(seed int64) []float64 {
		e := NewEngine(seed)
		var vals []float64
		var step func()
		step = func() {
			vals = append(vals, e.Rand().Float64())
			if len(vals) < 50 {
				e.Schedule(Time(e.Rand().Intn(1000))*Millisecond, step)
			}
		}
		e.Schedule(0, step)
		e.Run()
		return vals
	}
	a, b := run(42), run(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("run diverged at %d: %v vs %v", i, a[i], b[i])
		}
	}
	c := run(43)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical runs")
	}
}

// Property: for any batch of scheduled delays, events fire in
// nondecreasing time order and the clock equals each event's time.
func TestEngineMonotonicProperty(t *testing.T) {
	f := func(delaysMs []uint16) bool {
		e := NewEngine(7)
		var fireTimes []Time
		for _, d := range delaysMs {
			d := Time(d) * Millisecond
			e.Schedule(d, func() { fireTimes = append(fireTimes, e.Now()) })
		}
		e.Run()
		if len(fireTimes) != len(delaysMs) {
			return false
		}
		for i := 1; i < len(fireTimes); i++ {
			if fireTimes[i] < fireTimes[i-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50, Rand: rand.New(rand.NewSource(1))}); err != nil {
		t.Error(err)
	}
}

func TestTimerWhen(t *testing.T) {
	e := NewEngine(1)
	tm := e.Schedule(7*Second, func() {})
	if tm.When() != 7*Second {
		t.Errorf("When() = %v, want 7s", tm.When())
	}
}

func TestProcessedCount(t *testing.T) {
	e := NewEngine(1)
	for i := 0; i < 5; i++ {
		e.Schedule(Time(i)*Second, func() {})
	}
	e.Run()
	if e.Processed != 5 {
		t.Errorf("Processed = %d, want 5", e.Processed)
	}
}

func BenchmarkEngineScheduleRun(b *testing.B) {
	e := NewEngine(1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Schedule(Time(i%1000)*Microsecond, func() {})
		if i%64 == 0 {
			for e.Step() {
			}
		}
	}
}

func BenchmarkEngineTimerChurn(b *testing.B) {
	// The RTO pattern: arm, cancel, re-arm.
	e := NewEngine(1)
	b.ReportAllocs()
	b.ResetTimer()
	var tm *Timer
	for i := 0; i < b.N; i++ {
		tm.Cancel()
		tm = e.Schedule(Second, func() {})
		if i%1024 == 0 {
			e.RunUntil(e.Now() + Millisecond)
		}
	}
}

func TestEngineTimerStress(t *testing.T) {
	// Many overlapping, partially canceled timers: the heap must stay
	// consistent and fire the survivors exactly once.
	e := NewEngine(3)
	const n = 20000
	fired := make([]int, n)
	timers := make([]*Timer, n)
	for i := 0; i < n; i++ {
		i := i
		timers[i] = e.Schedule(Time(e.Rand().Intn(1000))*Millisecond, func() { fired[i]++ })
	}
	for i := 0; i < n; i += 3 {
		timers[i].Cancel()
	}
	e.Run()
	for i := 0; i < n; i++ {
		want := 1
		if i%3 == 0 {
			want = 0
		}
		if fired[i] != want {
			t.Fatalf("timer %d fired %d times, want %d", i, fired[i], want)
		}
	}
}
