// Package sim provides the discrete-event simulation engine used by the
// TAQ reproduction: a virtual clock, a deterministic event heap, and the
// Runner interface that protocol code (TCP, TAQ, links) is written
// against. A second, real-time implementation of Runner lives in
// internal/emu so the same protocol code drives both the simulator and
// the prototype/testbed experiments.
package sim

import (
	"fmt"
	"time"
)

// Time is a point in virtual time, in nanoseconds since the start of the
// simulation. It is deliberately distinct from time.Duration so that the
// compiler catches accidental mixing of wall-clock and virtual time.
type Time int64

// Common durations, mirroring package time.
const (
	Nanosecond  Time = 1
	Microsecond      = 1000 * Nanosecond
	Millisecond      = 1000 * Microsecond
	Second           = 1000 * Millisecond
)

// Seconds returns t as a floating-point number of seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Duration converts t to a time.Duration (both are nanoseconds).
func (t Time) Duration() time.Duration { return time.Duration(t) }

// String formats the time in seconds with millisecond precision.
func (t Time) String() string { return fmt.Sprintf("%.3fs", t.Seconds()) }

// FromSeconds converts a floating-point number of seconds to a Time.
func FromSeconds(s float64) Time { return Time(s * float64(Second)) }

// FromDuration converts a wall-clock duration to virtual Time.
func FromDuration(d time.Duration) Time { return Time(d) }

// MinTime returns the smaller of a and b.
func MinTime(a, b Time) Time {
	if a < b {
		return a
	}
	return b
}

// MaxTime returns the larger of a and b.
func MaxTime(a, b Time) Time {
	if a > b {
		return a
	}
	return b
}
