package workload

import (
	"taq/internal/emu"
	"taq/internal/packet"
	"taq/internal/sim"
	"taq/internal/tcp"
	"taq/internal/topology"
)

// Host abstracts the substrate a web session runs on: the
// discrete-event dumbbell (topology.Network) or the wall-clock
// prototype testbed (emu.Testbed). The paper evaluates web workloads
// on both (§5.4–5.5).
type Host interface {
	// Now returns the current virtual time.
	Now() sim.Time
	// ScheduleAt runs fn at the given virtual time (clamped to now).
	ScheduleAt(at sim.Time, fn func())
	// MSS returns the data segment size in bytes.
	MSS() int
	// StartTransfer opens a connection in pool transferring segs
	// segments, then calls onComplete — or onFail if the handshake
	// gives up. Callbacks run serialized with all other events.
	StartTransfer(pool packet.PoolID, segs int, onComplete, onFail func())
}

// networkHost adapts topology.Network to Host.
type networkHost struct{ net *topology.Network }

// NetworkHost wraps a simulated network as a session Host.
func NetworkHost(net *topology.Network) Host { return networkHost{net} }

func (h networkHost) Now() sim.Time { return h.net.Engine.Now() }

func (h networkHost) ScheduleAt(at sim.Time, fn func()) { h.net.Engine.ScheduleAt(at, fn) }

func (h networkHost) MSS() int { return h.net.Cfg.TCP.MSS }

func (h networkHost) StartTransfer(pool packet.PoolID, segs int, onComplete, onFail func()) {
	app := &tcp.SizedApp{Total: segs}
	f := h.net.AddFlow(pool, app, h.net.Engine.Now())
	id := f.ID
	started := f.Started
	sizeBytes := segs * h.net.Cfg.TCP.MSS
	app.OnComplete = func() {
		h.net.Slicer.Finish(id, h.net.Engine.Now())
		h.net.ObserveFCT(started, sizeBytes)
		onComplete()
	}
	f.Sender.OnFail = func() {
		h.net.Slicer.Finish(id, h.net.Engine.Now())
		onFail()
	}
}

// testbedHost adapts emu.Testbed to Host. All callbacks run under the
// testbed engine's lock, so session state needs no extra locking.
type testbedHost struct{ tb *emu.Testbed }

// TestbedHost wraps a real-time testbed as a session Host.
func TestbedHost(tb *emu.Testbed) Host { return testbedHost{tb} }

func (h testbedHost) Now() sim.Time { return h.tb.Engine.Now() }

func (h testbedHost) ScheduleAt(at sim.Time, fn func()) {
	delay := at - h.tb.Engine.Now()
	if delay < 0 {
		delay = 0
	}
	h.tb.Engine.Schedule(delay, fn)
}

func (h testbedHost) MSS() int { return h.tb.Cfg.TCP.MSS }

func (h testbedHost) StartTransfer(pool packet.PoolID, segs int, onComplete, onFail func()) {
	h.tb.AddSizedFlow(pool, segs, onComplete, onFail)
}
