package workload

import (
	"testing"

	"taq/internal/emu"
	"taq/internal/link"
	"taq/internal/sim"
	"taq/internal/topology"
	"taq/internal/trace"
)

func quickNet(seed int64, bw link.Bps, qk topology.QueueKind) *topology.Network {
	return topology.MustNew(topology.Config{Seed: seed, Bandwidth: bw, Queue: qk})
}

func TestAddBulkFlows(t *testing.T) {
	n := quickNet(1, 1000*link.Kbps, topology.DropTail)
	flows := AddBulkFlows(n, 5, 100*sim.Millisecond)
	if len(flows) != 5 || n.NumFlows() != 5 {
		t.Fatalf("flows = %d", len(flows))
	}
	if flows[4].Started != 400*sim.Millisecond {
		t.Errorf("stagger wrong: %v", flows[4].Started)
	}
	n.Run(20 * sim.Second)
	for _, f := range flows {
		if n.Slicer.FlowTotal(f.ID) == 0 {
			t.Errorf("flow %d delivered nothing", f.ID)
		}
	}
}

func TestShortFlowCompletes(t *testing.T) {
	n := quickNet(2, 1000*link.Kbps, topology.DropTail)
	res := AddShortFlow(n, 10, sim.Second)
	n.Run(30 * sim.Second)
	if !res.Done {
		t.Fatal("short flow incomplete")
	}
	if res.Duration() <= 0 || res.Duration() > 10*sim.Second {
		t.Errorf("duration = %v", res.Duration())
	}
}

func TestSessionFetchesObjectsWithBoundedParallelism(t *testing.T) {
	n := quickNet(3, 1000*link.Kbps, topology.DropTail)
	s := NewSession(n, 1, 2)
	for i := 0; i < 5; i++ {
		s.Request(5000, 0)
	}
	// With 2 connections, at most 2 active at once; run and complete.
	n.Engine.RunUntil(100 * sim.Millisecond)
	if n.NumFlows() > 2 {
		t.Errorf("flows created early = %d, want ≤2 (maxConns)", n.NumFlows())
	}
	n.Run(60 * sim.Second)
	done := 0
	for _, r := range s.Results {
		if r.Done {
			done++
		}
	}
	if done != 5 {
		t.Fatalf("completed %d of 5", done)
	}
	if s.Outstanding() != 0 {
		t.Errorf("outstanding = %d", s.Outstanding())
	}
	// Objects requested together but serialized over 2 conns: later
	// objects must have Started after earlier ones ended... at least
	// the 5th object starts after the 1st completes.
	if s.Results[4].Started < s.Results[0].End {
		t.Error("5th object started before any slot freed")
	}
}

func TestReplayTimedVsASAP(t *testing.T) {
	recs := []trace.Record{
		{Time: 0, Client: 1, Size: 2000},
		{Time: 30 * sim.Second, Client: 1, Size: 2000},
		{Time: 0, Client: 2, Size: 2000},
	}
	// Timed: the second object of client 1 can't finish before 30s.
	n1 := quickNet(4, 1000*link.Kbps, topology.DropTail)
	s1 := Replay(n1, recs, 4, ReplayTimed)
	n1.Run(60 * sim.Second)
	if len(s1) != 2 {
		t.Fatalf("sessions = %d", len(s1))
	}
	if got := s1[1].Results[1].End; got < 30*sim.Second {
		t.Errorf("timed replay finished 2nd object at %v, before its request time", got)
	}
	// ASAP: everything can finish within seconds.
	n2 := quickNet(4, 1000*link.Kbps, topology.DropTail)
	s2 := Replay(n2, recs, 4, ReplayASAP)
	n2.Run(60 * sim.Second)
	if got := s2[1].Results[1].End; got > 20*sim.Second {
		t.Errorf("ASAP replay too slow: %v", got)
	}
	if CompletedFraction(s2) != 1 {
		t.Errorf("ASAP completion = %v", CompletedFraction(s2))
	}
}

func TestCollectObjectSamplesAndCDF(t *testing.T) {
	n := quickNet(5, 1000*link.Kbps, topology.DropTail)
	recs := []trace.Record{
		{Time: 0, Client: 1, Size: 15 * 1024},
		{Time: 0, Client: 2, Size: 105 * 1024},
	}
	sessions := Replay(n, recs, 4, ReplayASAP)
	n.Run(120 * sim.Second)
	samples := CollectObjectSamples(sessions)
	if len(samples) != 2 {
		t.Fatalf("samples = %d", len(samples))
	}
	small := DownloadCDF(sessions, 10*1024, 20*1024)
	if small.N() != 1 {
		t.Errorf("small-bucket CDF N = %d", small.N())
	}
	big := DownloadCDF(sessions, 100*1024, 110*1024)
	if big.N() != 1 {
		t.Errorf("big-bucket CDF N = %d", big.N())
	}
	if big.Median() <= small.Median() {
		t.Errorf("bigger object downloaded faster: %v vs %v", big.Median(), small.Median())
	}
}

func TestWebUserPool(t *testing.T) {
	n := quickNet(6, 1000*link.Kbps, topology.DropTail)
	WebUserPool(n, 10, 4, sim.Second)
	if n.NumFlows() != 40 {
		t.Fatalf("flows = %d, want 40", n.NumFlows())
	}
	n.Run(30 * sim.Second)
	n.Hangs.Finish(n.Engine.Now())
	if n.Hangs.NumPools() != 10 {
		t.Errorf("pools = %d, want 10", n.Hangs.NumPools())
	}
}

func TestSessionGivesUpWhenSynFails(t *testing.T) {
	// A tiny, swamped DropTail with MaxSynRetries=0 makes handshakes
	// fail; OnFail must free the connection slot (no deadlock).
	cfg := topology.Config{Seed: 7, Bandwidth: 50 * link.Kbps, BufferPackets: 2}
	tcpCfg := cfg.TCP
	_ = tcpCfg
	n := topology.MustNew(cfg)
	// Fill the link with background flows so SYNs drop.
	AddBulkFlows(n, 30, 0)
	s := NewSession(n, 1, 1)
	for i := 0; i < 3; i++ {
		s.Request(1000, sim.Second)
	}
	n.Run(300 * sim.Second)
	// All objects either completed or failed; none stuck pending
	// behind a dead slot.
	if s.Outstanding() > 1 {
		t.Errorf("outstanding = %d; session deadlocked", s.Outstanding())
	}
}

func TestSessionOnTestbed(t *testing.T) {
	// The same session machinery drives the real-time prototype: a
	// client fetches three small objects over an emulated 400 Kbps
	// link at 100x time compression.
	tb := emu.NewTestbed(emu.TestbedConfig{Seed: 9, Speedup: 100, Bandwidth: 400 * link.Kbps})
	host := TestbedHost(tb)
	var s *Session
	tb.Engine.Post(func() {
		s = NewSessionOn(host, 1, 2)
		for i := 0; i < 3; i++ {
			s.Request(4000, 0)
		}
	})
	tb.RunFor(30 * sim.Second)
	tb.Stop()
	done := 0
	tb.Snapshot(func() {
		for _, r := range s.Results {
			if r.Done {
				done++
			}
		}
	})
	if done != 3 {
		t.Fatalf("completed %d of 3 objects on testbed", done)
	}
}

func TestReplayOnTestbed(t *testing.T) {
	tb := emu.NewTestbed(emu.TestbedConfig{Seed: 10, Speedup: 100, Bandwidth: 400 * link.Kbps})
	recs := []trace.Record{
		{Time: 0, Client: 1, Size: 3000},
		{Time: 0, Client: 2, Size: 3000},
	}
	var sessions map[int]*Session
	tb.Engine.Post(func() {
		sessions = ReplayOn(TestbedHost(tb), recs, 4, ReplayASAP)
	})
	tb.RunFor(20 * sim.Second)
	tb.Stop()
	var frac float64
	tb.Snapshot(func() { frac = CompletedFraction(sessions) })
	if frac != 1 {
		t.Fatalf("testbed replay completed %.2f", frac)
	}
}
