// Package workload builds the traffic patterns of the paper's
// evaluation on top of a topology.Network: long-running bulk flows
// (Figs 2, 8, 9, 11), short flows against a bulk background (Fig 10),
// multi-connection web sessions with user-perceived hang tracking
// (§2.3), and access-log replay (Figs 1, 12).
package workload

import (
	"sort"

	"taq/internal/metrics"
	"taq/internal/packet"
	"taq/internal/sim"
	"taq/internal/tcp"
	"taq/internal/topology"
	"taq/internal/trace"
)

// AddBulkFlows adds n long-running flows with starts staggered by
// stagger (staggering avoids artificial synchronization at t=0).
func AddBulkFlows(net *topology.Network, n int, stagger sim.Time) []*topology.Flow {
	flows := make([]*topology.Flow, 0, n)
	for i := 0; i < n; i++ {
		flows = append(flows, net.AddFlow(packet.PoolNone, tcp.BulkApp{}, sim.Time(i)*stagger))
	}
	return flows
}

// ShortFlowResult records the fate of one short flow.
type ShortFlowResult struct {
	Flow     packet.FlowID
	Segments int
	Start    sim.Time
	End      sim.Time
	Done     bool
}

// Duration returns the flow completion time (start of handshake to
// last segment acked).
func (r *ShortFlowResult) Duration() sim.Time { return r.End - r.Start }

// AddShortFlow injects a flow of the given number of segments at time
// at, returning a result record filled in as the simulation runs.
func AddShortFlow(net *topology.Network, segments int, at sim.Time) *ShortFlowResult {
	res := &ShortFlowResult{Segments: segments, Start: at}
	app := &tcp.SizedApp{Total: segments}
	f := net.AddFlow(packet.PoolNone, app, at)
	res.Flow = f.ID
	app.OnComplete = func() {
		res.End = net.Engine.Now()
		res.Done = true
		net.Slicer.Finish(f.ID, res.End)
		net.ObserveFCT(res.Start, segments*net.Cfg.TCP.MSS)
	}
	return res
}

// ObjectResult records one web object download.
type ObjectResult struct {
	Client    int
	SizeBytes int
	Requested sim.Time // when the user asked for it
	Started   sim.Time // when a connection began the handshake
	End       sim.Time
	Done      bool
}

// DownloadTime is the user-perceived download time of the object: from
// the moment a connection slot began the attempt (so SYN retries while
// waiting for admission are included, as Fig 12 requires) until the
// last byte arrived.
func (r *ObjectResult) DownloadTime() sim.Time { return r.End - r.Started }

// Session models one user's browser: up to MaxConns parallel
// connections, each fetching one object at a time from the session's
// request queue (the Fig 12 client behavior: "open up to four
// connections at a time, and request objects as soon as possible").
// Each object rides its own connection; connections retry SYNs until
// admitted when the TCP config allows. Sessions run on any Host — the
// simulator or the real-time testbed.
type Session struct {
	host     Host
	pool     packet.PoolID
	client   int
	maxConns int

	pending []*ObjectResult
	active  int

	// Results lists all objects ever enqueued for this session.
	Results []*ObjectResult
}

// NewSession creates a session on a simulated network for the given
// client id; its flows are grouped in a pool for hang tracking and
// admission control.
func NewSession(net *topology.Network, client int, maxConns int) *Session {
	return NewSessionOn(NetworkHost(net), client, maxConns)
}

// NewSessionOn creates a session on any Host (see TestbedHost for the
// real-time prototype).
func NewSessionOn(host Host, client int, maxConns int) *Session {
	if maxConns < 1 {
		maxConns = 1
	}
	return &Session{host: host, pool: packet.PoolID(client), client: client, maxConns: maxConns}
}

// Request enqueues an object of size bytes at time at (schedule it at
// the current simulation time or later).
func (s *Session) Request(sizeBytes int, at sim.Time) *ObjectResult {
	res := &ObjectResult{Client: s.client, SizeBytes: sizeBytes, Requested: at}
	s.Results = append(s.Results, res)
	s.host.ScheduleAt(at, func() {
		s.pending = append(s.pending, res)
		s.pump()
	})
	return res
}

func (s *Session) pump() {
	for s.active < s.maxConns && len(s.pending) > 0 {
		res := s.pending[0]
		s.pending = s.pending[1:]
		s.start(res)
	}
}

func (s *Session) start(res *ObjectResult) {
	s.active++
	res.Started = s.host.Now()
	mss := s.host.MSS()
	segs := (res.SizeBytes + mss - 1) / mss
	if segs < 1 {
		segs = 1
	}
	s.host.StartTransfer(s.pool, segs,
		func() {
			res.End = s.host.Now()
			res.Done = true
			s.active--
			s.pump()
		},
		func() {
			// SYN retries exhausted: give up on this object so the
			// connection slot frees up.
			s.active--
			s.pump()
		})
}

// Outstanding reports queued-plus-active object count.
func (s *Session) Outstanding() int { return len(s.pending) + s.active }

// ReplayMode selects how trace records are scheduled onto sessions.
type ReplayMode int

const (
	// ReplayTimed requests each object at its logged time (Fig 1).
	ReplayTimed ReplayMode = iota
	// ReplayASAP gives each client its whole request list up front;
	// sessions fetch as fast as their connections allow, simulating
	// request dependencies (Fig 12).
	ReplayASAP
)

// Replay drives trace records through per-client sessions on a
// simulated network and returns them (keyed by client id).
func Replay(net *topology.Network, recs []trace.Record, maxConns int, mode ReplayMode) map[int]*Session {
	return ReplayOn(NetworkHost(net), recs, maxConns, mode)
}

// ReplayOn drives trace records through per-client sessions on any
// Host.
func ReplayOn(host Host, recs []trace.Record, maxConns int, mode ReplayMode) map[int]*Session {
	sessions := make(map[int]*Session)
	for _, r := range recs {
		s, ok := sessions[r.Client]
		if !ok {
			s = NewSessionOn(host, r.Client, maxConns)
			sessions[r.Client] = s
		}
		switch mode {
		case ReplayTimed:
			s.Request(r.Size, r.Time)
		case ReplayASAP:
			s.Request(r.Size, 0)
		}
	}
	return sessions
}

// CollectObjectSamples gathers completed downloads as size samples for
// Fig 1-style bucket analysis.
// sortedClients returns the session client ids in ascending order, so
// sample collections and CDF sums are assembled deterministically.
func sortedClients(sessions map[int]*Session) []int {
	ids := make([]int, 0, len(sessions))
	for id := range sessions {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	return ids
}

func CollectObjectSamples(sessions map[int]*Session) []metrics.SizeSample {
	var out []metrics.SizeSample
	for _, id := range sortedClients(sessions) {
		s := sessions[id]
		for _, r := range s.Results {
			if r.Done {
				out = append(out, metrics.SizeSample{
					SizeBytes: r.SizeBytes,
					Value:     r.DownloadTime().Seconds(),
				})
			}
		}
	}
	return out
}

// DownloadCDF collects download times (seconds) of completed objects
// whose size lies in [loBytes, hiBytes).
func DownloadCDF(sessions map[int]*Session, loBytes, hiBytes int) *metrics.CDF {
	var c metrics.CDF
	for _, id := range sortedClients(sessions) {
		s := sessions[id]
		for _, r := range s.Results {
			if r.Done && r.SizeBytes >= loBytes && r.SizeBytes < hiBytes {
				c.Add(r.DownloadTime().Seconds())
			}
		}
	}
	return &c
}

// CompletedFraction returns the fraction of requested objects that
// finished.
func CompletedFraction(sessions map[int]*Session) float64 {
	total, done := 0, 0
	for _, s := range sessions {
		for _, r := range s.Results {
			total++
			if r.Done {
				done++
			}
		}
	}
	if total == 0 {
		return 0
	}
	return float64(done) / float64(total)
}

// WebUserPool spawns, for hang analysis (§2.3), users that each keep
// conns parallel long-running connections open, all starting within
// the first ramp interval.
func WebUserPool(net *topology.Network, users, conns int, ramp sim.Time) {
	for u := 0; u < users; u++ {
		start := sim.Time(0)
		if users > 1 {
			start = ramp * sim.Time(u) / sim.Time(users)
		}
		for c := 0; c < conns; c++ {
			net.AddFlow(packet.PoolID(u), tcp.BulkApp{}, start)
		}
	}
}
