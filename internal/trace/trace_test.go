package trace

import (
	"bytes"
	"math"
	"sort"
	"strings"
	"testing"

	"taq/internal/sim"
)

func TestGenerateShape(t *testing.T) {
	cfg := DefaultGenConfig()
	recs := Generate(cfg)
	if len(recs) == 0 {
		t.Fatal("empty log")
	}
	// Sorted by time, inside the window.
	if !sort.SliceIsSorted(recs, func(i, j int) bool { return recs[i].Time < recs[j].Time }) {
		t.Error("log not sorted")
	}
	for _, r := range recs {
		if r.Time < 0 || r.Time >= cfg.Duration {
			t.Fatalf("record outside window: %v", r.Time)
		}
		if r.Size < cfg.MinSize || r.Size > cfg.MaxSize {
			t.Fatalf("size out of bounds: %d", r.Size)
		}
	}
	// Client coverage near the configured population.
	if c := Clients(recs); c < cfg.Clients*9/10 {
		t.Errorf("clients = %d, want ≈%d", c, cfg.Clients)
	}
	// Aggregate volume in the right ballpark (paper: ~1.5 GB over 2h;
	// heavy tails make this noisy — accept a broad band).
	gb := float64(TotalBytes(recs)) / (1 << 30)
	if gb < 0.2 || gb > 30 {
		t.Errorf("total = %.2f GB, want O(1 GB)", gb)
	}
}

func TestGenerateHeavyTail(t *testing.T) {
	cfg := DefaultGenConfig()
	recs := Generate(cfg)
	small, large := 0, 0
	for _, r := range recs {
		if r.Size < 100*1024 {
			small++
		}
		if r.Size > 1<<20 {
			large++
		}
	}
	if small == 0 || large == 0 {
		t.Errorf("size distribution not heavy-tailed: %d small, %d large of %d", small, large, len(recs))
	}
	// Most objects are small (web-like).
	if float64(small)/float64(len(recs)) < 0.8 {
		t.Errorf("small-object fraction %f, want ≥0.8", float64(small)/float64(len(recs)))
	}
	// Sizes must span several orders of magnitude.
	minS, maxS := math.MaxInt, 0
	for _, r := range recs {
		if r.Size < minS {
			minS = r.Size
		}
		if r.Size > maxS {
			maxS = r.Size
		}
	}
	if math.Log10(float64(maxS)/float64(minS)) < 3 {
		t.Errorf("size span %d..%d too narrow", minS, maxS)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	cfg := DefaultGenConfig()
	a, b := Generate(cfg), Generate(cfg)
	if len(a) != len(b) {
		t.Fatal("lengths differ")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("record %d differs", i)
		}
	}
	cfg.Seed = 2
	c := Generate(cfg)
	same := len(a) == len(c)
	if same {
		for i := range a {
			if a[i] != c[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Error("different seeds produced identical logs")
	}
}

func TestGenerateDegenerate(t *testing.T) {
	if Generate(GenConfig{}) != nil {
		t.Error("zero config should generate nil")
	}
}

func TestRoundTrip(t *testing.T) {
	cfg := DefaultGenConfig()
	cfg.Duration = 60 * sim.Second
	cfg.Clients = 10
	recs := Generate(cfg)
	var buf bytes.Buffer
	if err := Write(&buf, recs); err != nil {
		t.Fatal(err)
	}
	got, err := Parse(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(recs) {
		t.Fatalf("parsed %d records, wrote %d", len(got), len(recs))
	}
	for i := range recs {
		if got[i].Client != recs[i].Client || got[i].Size != recs[i].Size {
			t.Fatalf("record %d mismatch: %+v vs %+v", i, got[i], recs[i])
		}
		// Time round-trips through microsecond-precision text.
		if d := got[i].Time - recs[i].Time; d < -sim.Microsecond || d > sim.Microsecond {
			t.Fatalf("record %d time drift %v", i, d)
		}
	}
}

func TestParseErrorsAndComments(t *testing.T) {
	if _, err := Parse(strings.NewReader("not a record\n")); err == nil {
		t.Error("malformed line accepted")
	}
	recs, err := Parse(strings.NewReader("# comment\n\n1.5 3 1000\n"))
	if err != nil || len(recs) != 1 || recs[0].Client != 3 || recs[0].Size != 1000 {
		t.Errorf("parse = %v, %v", recs, err)
	}
}

func TestWindow(t *testing.T) {
	recs := []Record{
		{Time: 1 * sim.Second}, {Time: 5 * sim.Second}, {Time: 9 * sim.Second},
	}
	got := Window(recs, 2*sim.Second, 9*sim.Second)
	if len(got) != 1 || got[0].Time != 5*sim.Second {
		t.Errorf("Window = %v", got)
	}
}
