// Package trace provides the access-log substrate for the paper's
// trace-driven experiments. The authors replay Squid proxy logs and
// tcpdump traces from India and Ghana (Figs 1, 12); those traces are
// not available, so this package generates synthetic logs with the
// same aggregate shape — many clients, Poisson request arrivals, and
// heavy-tailed object sizes spanning 100 B to ~100 MB (log-normal body
// plus Pareto tail) — and reads/writes them in a plain text format so
// real logs can be substituted if available.
package trace

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"math/rand"
	"sort"

	"taq/internal/sim"
)

// Record is one access-log entry: at Time, client Client requested an
// object of Size bytes.
type Record struct {
	Time   sim.Time
	Client int
	Size   int
}

// GenConfig parameterizes the synthetic log generator. The defaults
// (via DefaultGenConfig) match the paper's §2.2 observation window: a
// 2-hour peak period, ~221 clients, ~1.5 GB downloaded.
type GenConfig struct {
	Seed     int64
	Duration sim.Time
	Clients  int
	// RequestsPerClientPerMin sets each client's Poisson request rate.
	RequestsPerClientPerMin float64
	// Object size model: log-normal body (median SizeMedian bytes,
	// log-space sigma SizeSigma) with probability 1−TailProb, Pareto
	// tail (scale TailMin, shape TailAlpha) with probability TailProb.
	SizeMedian float64
	SizeSigma  float64
	TailProb   float64
	TailMin    float64
	TailAlpha  float64
	// MinSize and MaxSize clamp object sizes.
	MinSize, MaxSize int
}

// DefaultGenConfig returns the paper-matched generator settings.
func DefaultGenConfig() GenConfig {
	return GenConfig{
		Seed:                    1,
		Duration:                2 * 3600 * sim.Second,
		Clients:                 221,
		RequestsPerClientPerMin: 1.5,
		SizeMedian:              8 * 1024,
		SizeSigma:               1.6,
		TailProb:                0.015,
		TailMin:                 256 * 1024,
		TailAlpha:               1.1,
		MinSize:                 100,
		MaxSize:                 100 << 20,
	}
}

// Generate produces a synthetic access log sorted by time.
func Generate(cfg GenConfig) []Record {
	if cfg.Clients < 1 || cfg.Duration <= 0 {
		return nil
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	meanGap := 60.0 / math.Max(cfg.RequestsPerClientPerMin, 1e-9)
	var recs []Record
	for c := 0; c < cfg.Clients; c++ {
		t := sim.FromSeconds(rng.ExpFloat64() * meanGap)
		for t < cfg.Duration {
			recs = append(recs, Record{Time: t, Client: c, Size: cfg.sampleSize(rng)})
			t += sim.FromSeconds(rng.ExpFloat64() * meanGap)
		}
	}
	sort.Slice(recs, func(i, j int) bool {
		if recs[i].Time != recs[j].Time {
			return recs[i].Time < recs[j].Time
		}
		return recs[i].Client < recs[j].Client
	})
	return recs
}

func (cfg GenConfig) sampleSize(rng *rand.Rand) int {
	var s float64
	if rng.Float64() < cfg.TailProb {
		// Pareto: min / U^(1/alpha).
		s = cfg.TailMin / math.Pow(rng.Float64(), 1/cfg.TailAlpha)
	} else {
		s = cfg.SizeMedian * math.Exp(cfg.SizeSigma*rng.NormFloat64())
	}
	size := int(s)
	if size < cfg.MinSize {
		size = cfg.MinSize
	}
	if size > cfg.MaxSize {
		size = cfg.MaxSize
	}
	return size
}

// TotalBytes sums the object sizes of the log.
func TotalBytes(recs []Record) int64 {
	var t int64
	for _, r := range recs {
		t += int64(r.Size)
	}
	return t
}

// Clients returns the number of distinct clients in the log.
func Clients(recs []Record) int {
	seen := make(map[int]bool)
	for _, r := range recs {
		seen[r.Client] = true
	}
	return len(seen)
}

// Write emits the log in the text format "seconds client size", one
// record per line.
func Write(w io.Writer, recs []Record) error {
	bw := bufio.NewWriter(w)
	for _, r := range recs {
		if _, err := fmt.Fprintf(bw, "%.6f %d %d\n", r.Time.Seconds(), r.Client, r.Size); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Parse reads a log in Write's format.
func Parse(r io.Reader) ([]Record, error) {
	var recs []Record
	sc := bufio.NewScanner(r)
	line := 0
	for sc.Scan() {
		line++
		text := sc.Text()
		if len(text) == 0 || text[0] == '#' {
			continue
		}
		var secs float64
		var client, size int
		if _, err := fmt.Sscanf(text, "%f %d %d", &secs, &client, &size); err != nil {
			return nil, fmt.Errorf("trace: line %d: %v", line, err)
		}
		recs = append(recs, Record{Time: sim.FromSeconds(secs), Client: client, Size: size})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return recs, nil
}

// Window filters the log to records in [from, to).
func Window(recs []Record, from, to sim.Time) []Record {
	var out []Record
	for _, r := range recs {
		if r.Time >= from && r.Time < to {
			out = append(out, r)
		}
	}
	return out
}
