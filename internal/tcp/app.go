package tcp

// App supplies data to a Sender and observes acknowledgment progress.
// Implementations model bulk transfers, fixed-size downloads, and
// multi-object (pipelined) web connections.
type App interface {
	// Available reports how many segments at and beyond seq are ready
	// to send right now.
	Available(seq int) int
	// Acked notifies the app of cumulative acknowledgment progress
	// (all segments below cum have been delivered).
	Acked(cum int)
}

// BulkApp is an unbounded source: the flow always has data, modeling
// the long-running download flows of §2.3/§5.1.
type BulkApp struct{}

// Available implements App.
func (BulkApp) Available(seq int) int { return 1 << 30 }

// Acked implements App.
func (BulkApp) Acked(int) {}

// SizedApp transfers exactly Total segments and invokes OnComplete once
// when the last segment is cumulatively acknowledged.
type SizedApp struct {
	Total      int
	OnComplete func()
	done       bool
}

// Available implements App.
func (a *SizedApp) Available(seq int) int {
	if seq >= a.Total {
		return 0
	}
	return a.Total - seq
}

// Acked implements App.
func (a *SizedApp) Acked(cum int) {
	if !a.done && cum >= a.Total {
		a.done = true
		if a.OnComplete != nil {
			a.OnComplete()
		}
	}
}

// Done reports whether the transfer completed.
func (a *SizedApp) Done() bool { return a.done }

// ObjectApp carries a sequence of objects over one connection
// (HTTP/1.1-style pipelining). Objects are appended with AddObject; the
// per-object callback fires as each object's last segment is acked.
// While no object is queued the connection is idle — the paper's dummy
// "idle silence" state (§3.3).
type ObjectApp struct {
	// OnObjectComplete receives the 0-based object index.
	OnObjectComplete func(idx int)
	bounds           []int // cumulative segment boundary of each object
	completed        int
}

// AddObject queues an object of segs segments and returns its index.
func (a *ObjectApp) AddObject(segs int) int {
	if segs < 1 {
		segs = 1
	}
	prev := 0
	if n := len(a.bounds); n > 0 {
		prev = a.bounds[n-1]
	}
	a.bounds = append(a.bounds, prev+segs)
	return len(a.bounds) - 1
}

// Available implements App.
func (a *ObjectApp) Available(seq int) int {
	if n := len(a.bounds); n > 0 && seq < a.bounds[n-1] {
		return a.bounds[n-1] - seq
	}
	return 0
}

// Acked implements App.
func (a *ObjectApp) Acked(cum int) {
	for a.completed < len(a.bounds) && cum >= a.bounds[a.completed] {
		idx := a.completed
		a.completed++
		if a.OnObjectComplete != nil {
			a.OnObjectComplete(idx)
		}
	}
}

// Outstanding reports how many queued objects are not yet complete.
func (a *ObjectApp) Outstanding() int { return len(a.bounds) - a.completed }
