package tcp

import (
	"sort"

	"taq/internal/packet"
	"taq/internal/sim"
)

// maxSackBlocks bounds how many out-of-order segment indexes an ACK
// reports, mimicking the limited SACK option space.
const maxSackBlocks = 8

// Receiver is the TCP receiver half of a flow. It acknowledges every
// data packet immediately (the paper's receivers do not delay acks),
// caches out-of-order segments, and reports SACK information when
// configured.
type Receiver struct {
	run  sim.Runner
	cfg  Config
	flow packet.FlowID
	pool packet.PoolID
	out  func(*packet.Packet) // ack return path

	cumAck int
	ooo    map[int]bool

	// Delayed-ack state (only used when cfg.DelayedAck is set).
	delPending bool
	delTimer   *sim.Timer

	// OnDeliver is called with the number of segments newly delivered
	// in order and the current time; metrics collectors hang off it.
	OnDeliver func(n int)

	// Stats.
	SegmentsDelivered uint64 // in-order segments passed up
	DupSegments       uint64 // segments below cumAck received again
	AcksSent          uint64
}

// NewReceiver creates the receiver half of a flow. out transmits ACKs
// back toward the sender (the uncongested reverse path).
func NewReceiver(run sim.Runner, cfg Config, flow packet.FlowID, pool packet.PoolID, out func(*packet.Packet)) *Receiver {
	return &Receiver{run: run, cfg: cfg, flow: flow, pool: pool, out: out, ooo: make(map[int]bool)}
}

// CumAck returns the next expected segment index.
func (r *Receiver) CumAck() int { return r.cumAck }

// Deliver hands the receiver a packet that crossed the network.
func (r *Receiver) Deliver(p *packet.Packet) {
	switch p.Kind {
	case packet.Syn:
		r.out(&packet.Packet{
			Flow: r.flow, Pool: r.pool, Kind: packet.SynAck,
			Size: r.cfg.SynSize, Sent: r.run.Now(),
		})
	case packet.Data:
		r.onData(p)
	}
}

func (r *Receiver) onData(p *packet.Packet) {
	newly := 0
	switch {
	case p.Seq < r.cumAck || r.ooo[p.Seq]:
		r.DupSegments++
	default:
		r.ooo[p.Seq] = true
		for r.ooo[r.cumAck] {
			delete(r.ooo, r.cumAck)
			r.cumAck++
			newly++
		}
	}
	r.SegmentsDelivered += uint64(newly)
	if newly > 0 && r.OnDeliver != nil {
		r.OnDeliver(newly)
	}
	// Delayed acks (RFC 1122-style): hold the ack for one in-order
	// segment, release on the second, on any out-of-order arrival, or
	// when the delay timer fires.
	if r.cfg.DelayedAck && newly > 0 && len(r.ooo) == 0 && !r.delPending {
		r.delPending = true
		timeout := r.cfg.DelAckTimeout
		if timeout <= 0 {
			timeout = 100 * sim.Millisecond
		}
		// The previous handle is always fired or canceled here, so
		// Reschedule reuses its allocation.
		r.delTimer = sim.Reschedule(r.run, r.delTimer, timeout, func() {
			if r.delPending {
				r.delPending = false
				r.sendAck()
			}
		})
		return
	}
	r.delPending = false
	r.delTimer.Cancel()
	r.sendAck()
}

func (r *Receiver) sendAck() {
	ack := &packet.Packet{
		Flow: r.flow, Pool: r.pool, Kind: packet.Ack,
		CumAck: r.cumAck, Size: r.cfg.AckSize, Sent: r.run.Now(),
	}
	if r.cfg.SACK && len(r.ooo) > 0 {
		blocks := make([]int, 0, len(r.ooo))
		for seq := range r.ooo {
			blocks = append(blocks, seq)
		}
		sort.Ints(blocks)
		if len(blocks) > maxSackBlocks {
			blocks = blocks[:maxSackBlocks]
		}
		ack.Sacked = blocks
	}
	r.AcksSent++
	r.out(ack)
}
