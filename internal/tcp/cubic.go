package tcp

import (
	"math"

	"taq/internal/sim"
)

// CUBIC constants (RFC 8312).
const (
	cubicC    = 0.4
	cubicBeta = 0.7
)

// cubicState holds the CUBIC window-growth state of a sender.
type cubicState struct {
	// wMax is the window just before the last loss event.
	wMax float64
	// epochStart is when the current growth epoch began (the last
	// window reduction); zero means no epoch yet.
	epochStart sim.Time
	started    bool
}

// onLoss records a window reduction (fast retransmit or RTO) at the
// current window.
func (c *cubicState) onLoss(cwnd float64, now sim.Time) {
	// Fast convergence: if the window never regained the previous
	// wMax, release bandwidth faster.
	if cwnd < c.wMax {
		c.wMax = cwnd * (1 + cubicBeta) / 2
	} else {
		c.wMax = cwnd
	}
	c.epochStart = now
	c.started = true
}

// target returns the CUBIC window for elapsed time t since the last
// reduction, with the TCP-friendly lower bound (RFC 8312 §4.2) using
// the smoothed RTT.
func (c *cubicState) target(now sim.Time, srtt sim.Time) float64 {
	if !c.started {
		return math.Inf(1) // no loss yet: slow start governs
	}
	t := (now - c.epochStart).Seconds()
	k := math.Cbrt(c.wMax * (1 - cubicBeta) / cubicC)
	w := cubicC*math.Pow(t-k, 3) + c.wMax
	// TCP-friendly region.
	if srtt > 0 {
		est := c.wMax*cubicBeta + 3*(1-cubicBeta)/(1+cubicBeta)*t/srtt.Seconds()
		if est > w {
			w = est
		}
	}
	return w
}

// grow advances cwnd toward the CUBIC target for newly acked segments,
// bounded to at most ~50% growth per RTT like real implementations.
func (c *cubicState) grow(cwnd float64, newly int, now, srtt sim.Time) float64 {
	target := c.target(now, srtt)
	if math.IsInf(target, 1) {
		return cwnd + float64(newly) // pre-loss: exponential
	}
	if target > 1.5*cwnd {
		target = 1.5 * cwnd
	}
	if target <= cwnd {
		// Concave plateau/TCP-friendly floor: creep up slowly.
		return cwnd + float64(newly)/(100*cwnd)
	}
	return cwnd + (target-cwnd)*float64(newly)/cwnd
}
