package tcp

import (
	"math"
	"testing"

	"taq/internal/packet"
	"taq/internal/sim"
)

func TestCubicTargetBeforeLoss(t *testing.T) {
	var c cubicState
	if !math.IsInf(c.target(sim.Second, 100*sim.Millisecond), 1) {
		t.Error("pre-loss CUBIC target should be unbounded (slow start governs)")
	}
}

func TestCubicReductionAndRecoveryToWmax(t *testing.T) {
	var c cubicState
	c.onLoss(20, 0)
	if c.wMax != 20 {
		t.Fatalf("wMax = %v", c.wMax)
	}
	// At t = K, the cubic curve crosses wMax again.
	k := math.Cbrt(20 * (1 - cubicBeta) / cubicC)
	at := sim.FromSeconds(k)
	got := c.target(at, 0)
	if math.Abs(got-20) > 1e-6 {
		t.Errorf("target at K = %v, want wMax 20", got)
	}
	// Before K the curve is below wMax (concave), after K above.
	if c.target(at/2, 0) >= 20 {
		t.Error("target before K should be below wMax")
	}
	if c.target(2*at, 0) <= 20 {
		t.Error("target after K should exceed wMax")
	}
}

func TestCubicFastConvergence(t *testing.T) {
	var c cubicState
	c.onLoss(20, 0)
	// Second loss below the previous wMax → wMax shrinks faster than
	// the raw window.
	c.onLoss(10, sim.Second)
	if c.wMax >= 10*(1+cubicBeta)/2+1e-9 || c.wMax <= 0 {
		t.Errorf("fast convergence wMax = %v", c.wMax)
	}
}

func TestCubicTCPFriendlyFloor(t *testing.T) {
	var c cubicState
	c.onLoss(10, 0)
	// Long after the loss with a short RTT, the TCP-friendly estimate
	// dominates the (still concave) cubic curve... compare growth
	// with/without srtt at a small t.
	withRTT := c.target(200*sim.Millisecond, 10*sim.Millisecond)
	withoutRTT := c.target(200*sim.Millisecond, 0)
	if withRTT < withoutRTT {
		t.Errorf("TCP-friendly floor ignored: %v < %v", withRTT, withoutRTT)
	}
}

func TestCubicGrowBounded(t *testing.T) {
	var c cubicState
	c.onLoss(10, 0)
	// Far in the future the raw target explodes; growth per ack is
	// clamped to 1.5x cwnd.
	w := c.grow(10, 10, 100*sim.Second, 100*sim.Millisecond)
	if w > 15+1e-9 {
		t.Errorf("grow = %v, want ≤ 1.5×cwnd", w)
	}
	if w <= 10 {
		t.Errorf("grow = %v, want growth", w)
	}
}

func TestCubicSenderTransfersAndRecovers(t *testing.T) {
	// End-to-end: CUBIC sender over a lossy path still delivers all
	// data (reusing the tcp_test harness via an inline copy here,
	// package-internal).
	cfg := DefaultConfig()
	cfg.Variant = VariantCubic
	cfg.InitialCwnd = 10 // IW10 per §2.1
	cfg.MinRTO = 200 * sim.Millisecond
	e := sim.NewEngine(1)
	var s *Sender
	var r *Receiver
	rng := e.Rand()
	r = NewReceiver(e, cfg, 1, -1, func(p *packet.Packet) {
		e.Schedule(10*sim.Millisecond, func() { s.Deliver(p) })
	})
	app := &SizedApp{Total: 500}
	s = NewSender(e, cfg, 1, -1, app, func(p *packet.Packet) {
		if p.Kind == packet.Data && rng.Float64() < 0.05 {
			return
		}
		e.Schedule(10*sim.Millisecond, func() { r.Deliver(p) })
	})
	s.Start()
	e.RunUntil(600 * sim.Second)
	if !app.Done() {
		t.Fatalf("CUBIC transfer incomplete: cum=%d timeouts=%d", s.CumAck(), s.Stats.Timeouts)
	}
	if r.SegmentsDelivered != 500 {
		t.Errorf("delivered %d", r.SegmentsDelivered)
	}
}

func TestSubPacketPacingBelowOnePacketPerRTT(t *testing.T) {
	// A sub-packet sender with cwnd at the floor paces roughly one
	// packet per cwnd⁻¹ RTTs instead of stalling.
	cfg := DefaultConfig()
	cfg.Variant = VariantSubPacket
	e := sim.NewEngine(1)
	var sent []sim.Time
	var s *Sender
	var r *Receiver
	r = NewReceiver(e, cfg, 1, -1, func(p *packet.Packet) {
		e.Schedule(50*sim.Millisecond, func() { s.Deliver(p) })
	})
	drop := true
	s = NewSender(e, cfg, 1, -1, tcp_BulkApp(), func(p *packet.Packet) {
		if p.Kind == packet.Data {
			sent = append(sent, e.Now())
			if drop {
				return
			}
		}
		e.Schedule(50*sim.Millisecond, func() { r.Deliver(p) })
	})
	s.Start()
	// Black-hole data: repeated timeouts must halve cwnd to the floor
	// but never silence the flow for more than rto (no exponential
	// backoff).
	e.RunUntil(30 * sim.Second)
	if s.Backoff() != 1 {
		t.Errorf("backoff = %d, want 1 (no exponential backoff)", s.Backoff())
	}
	if s.Cwnd() > 2*MinFracCwnd {
		t.Errorf("cwnd = %v, want near floor %v under blackout", s.Cwnd(), MinFracCwnd)
	}
	if s.Stats.RepetitiveTimeouts != 0 {
		t.Errorf("RepetitiveTimeouts = %d, want 0 in sub-packet mode", s.Stats.RepetitiveTimeouts)
	}
	// Max silence between transmissions ≤ ~2×RTO (no 64× backoff).
	for i := 1; i < len(sent); i++ {
		if gap := sent[i] - sent[i-1]; gap > 3*sim.Second {
			t.Fatalf("silence of %v between transmissions", gap)
		}
	}
	// Heal the path: the flow recovers and grows back to normal mode.
	drop = false
	e.RunUntil(90 * sim.Second)
	if s.Cwnd() < 2 {
		t.Errorf("cwnd = %v after healing, want recovery above the fractional region", s.Cwnd())
	}
}

func tcp_BulkApp() App { return BulkApp{} }

func TestSubPacketCompletesTransferUnderHeavyLoss(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Variant = VariantSubPacket
	cfg.MinRTO = 200 * sim.Millisecond
	e := sim.NewEngine(2)
	app := &SizedApp{Total: 100}
	var s *Sender
	var r *Receiver
	r = NewReceiver(e, cfg, 1, -1, func(p *packet.Packet) {
		e.Schedule(10*sim.Millisecond, func() { s.Deliver(p) })
	})
	rng := e.Rand()
	s = NewSender(e, cfg, 1, -1, app, func(p *packet.Packet) {
		if p.Kind == packet.Data && rng.Float64() < 0.2 {
			return
		}
		e.Schedule(10*sim.Millisecond, func() { r.Deliver(p) })
	})
	s.Start()
	e.RunUntil(600 * sim.Second)
	if !app.Done() {
		t.Fatalf("transfer incomplete at cum=%d", s.CumAck())
	}
	if r.SegmentsDelivered != 100 {
		t.Errorf("delivered %d", r.SegmentsDelivered)
	}
}
