// Package tcp implements a packet-granularity TCP sender and receiver
// for the simulator: slow start, congestion avoidance, fast
// retransmit/fast recovery (NewReno, RFC 6582), optional SACK-based
// recovery, RFC 6298 retransmission timers with exponential backoff,
// and a SYN handshake with retry — everything the paper's small-packet-
// regime phenomena depend on (repetitive timeouts, silence periods,
// backoff collapse on new RTT measurements).
//
// Sequence numbers count MSS-sized segments, not bytes; the paper's
// analysis is entirely at packet granularity (500-byte packets, §2.3).
package tcp

import "taq/internal/sim"

// Variant selects the congestion-avoidance algorithm.
type Variant uint8

const (
	// VariantNewReno is AIMD with NewReno recovery (the default; the
	// paper's simulations are Reno-family).
	VariantNewReno Variant = iota
	// VariantCubic grows the window along the CUBIC curve (RFC 8312,
	// simplified). §2.1 notes modern stacks run CUBIC with an initial
	// window of 10, which defines the interesting SPK(k) range.
	VariantCubic
	// VariantSubPacket is this repository's implementation of the
	// paper's future work (§7: "end-host congestion control
	// mechanisms for small packet regimes"): when the window falls to
	// the sub-packet region the sender keeps a fractional congestion
	// window (down to MinFracCwnd) and paces one segment per
	// RTT/cwnd, and losses halve the fractional window instead of
	// doubling an RTO backoff — the flow slows smoothly to its
	// sub-packet fair share rather than going silent. Above the
	// sub-packet region it behaves like NewReno.
	VariantSubPacket
)

// MinFracCwnd is the floor of the fractional window in
// VariantSubPacket: one packet per 10 RTTs.
const MinFracCwnd = 0.1

// Config carries TCP parameters. The zero value is not usable; call
// DefaultConfig and override.
type Config struct {
	// Variant selects the congestion-avoidance algorithm.
	Variant Variant
	// MSS is the on-the-wire size of a data packet in bytes.
	MSS int
	// AckSize and SynSize are wire sizes for control packets.
	AckSize, SynSize int
	// InitialCwnd is the congestion window after the handshake, in
	// segments. The paper's simulations are pre-IW10 (ns2 default 2);
	// §2.1 notes modern stacks use 10 — both are interesting regimes.
	InitialCwnd float64
	// MaxWindow caps the window (receiver window), in segments.
	MaxWindow float64
	// InitialSsthresh is the initial slow-start threshold in segments.
	InitialSsthresh float64
	// MinRTO and MaxRTO clamp the retransmission timeout (RFC 6298
	// recommends 1 s and 60 s; backoff is clamped to MaxRTO too).
	MinRTO, MaxRTO sim.Time
	// InitialRTO applies before the first RTT sample.
	InitialRTO sim.Time
	// SynTimeout is the initial SYN retransmission timeout; it doubles
	// on each retry.
	SynTimeout sim.Time
	// MaxSynRetries bounds SYN retries; <0 retries forever (used by
	// the admission-control experiments where clients retry until
	// admitted).
	MaxSynRetries int
	// MaxSynTimeout caps the exponential SYN retry backoff when
	// positive. §4.3's clients "constantly retry till admission", so
	// the admission experiments cap the retry gap at a few seconds —
	// a waiting pool must present a SYN near its Twait deadline.
	MaxSynTimeout sim.Time
	// SACK enables SACK-style loss recovery; otherwise NewReno.
	SACK bool
	// DelayedAck makes the receiver acknowledge every second in-order
	// segment (or after DelAckTimeout). The paper's simulations keep
	// it off ("our TCP receivers do not delay acks", §2.3) because it
	// obscures congestion-control dynamics; it is provided so that
	// effect can be measured.
	DelayedAck bool
	// DelAckTimeout bounds how long a delayed ack may be held
	// (default 100 ms when DelayedAck is set).
	DelAckTimeout sim.Time
	// FixedRTO, when positive, pins the base retransmission timeout
	// to a constant instead of the RFC 6298 estimator (backoff still
	// applies). The Markov-model validation uses it to match the
	// model's T0 = 2×RTT assumption (§3.1.1).
	FixedRTO sim.Time
}

// DefaultConfig returns the configuration used throughout the paper's
// simulations: 500-byte packets, initial window 2, 1 s min RTO.
func DefaultConfig() Config {
	return Config{
		MSS:             500,
		AckSize:         40,
		SynSize:         40,
		InitialCwnd:     2,
		MaxWindow:       64,
		InitialSsthresh: 64,
		MinRTO:          1 * sim.Second,
		MaxRTO:          64 * sim.Second,
		InitialRTO:      3 * sim.Second,
		SynTimeout:      3 * sim.Second,
		MaxSynRetries:   6,
	}
}

// Stats counts sender-side events of interest to the experiments.
type Stats struct {
	SegmentsSent       uint64 // data packets put on the wire (incl. rtx)
	NewSegmentsSent    uint64 // first transmissions only
	Retransmits        uint64 // fast/partial/RTO retransmissions
	FastRetransmits    uint64 // recoveries entered via 3 dupacks
	Timeouts           uint64 // RTO firings (established state)
	RepetitiveTimeouts uint64 // RTO firings with backoff already > 1
	SynRetries         uint64
	MaxBackoff         int // largest backoff multiplier reached
}
