package tcp

import (
	"taq/internal/packet"
	"taq/internal/sim"
)

// Sender state machine states.
type senderState uint8

const (
	stateClosed senderState = iota
	stateSynSent
	stateEstablished
	stateFailed
)

type txInfo struct {
	sentAt sim.Time
	rexmit bool
}

// Sender is the TCP sender half of a flow. It is driven entirely by its
// sim.Runner (timers) and by Deliver (packets from the network); all
// outgoing packets go through the out callback.
type Sender struct {
	run  sim.Runner
	cfg  Config
	flow packet.FlowID
	pool packet.PoolID
	app  App
	out  func(*packet.Packet)

	state senderState

	// Sequence state (segment granularity).
	nextSeq int // next segment to (re)transmit in order
	highTx  int // highest segment index ever transmitted + 1
	cumAck  int // all segments below cumAck are acked

	// Congestion state.
	cwnd        float64
	ssthresh    float64
	dupAcks     int
	inRecovery  bool
	recover     int  // recovery ends when cumAck >= recover
	rexmitNext  int  // first hole not yet retransmitted this recovery
	partialSeen bool // a partial ack was seen this recovery (RFC 6582 Impatient)

	sent   map[int]txInfo
	sacked map[int]bool

	// RTO state (RFC 6298).
	srtt, rttvar sim.Time
	haveSRTT     bool
	rto          sim.Time
	backoff      int
	rtoTimer     *sim.Timer

	// Handshake state.
	synTimer   *sim.Timer
	synSentAt  sim.Time
	synRetries int
	synRexmit  bool

	// CUBIC growth state (Variant == VariantCubic).
	cubic cubicState

	// Sub-packet pacing state (Variant == VariantSubPacket).
	nextPaced sim.Time
	paceTimer *sim.Timer

	// Stats accumulates per-sender counters.
	Stats Stats

	// OnEstablished fires once when the handshake completes.
	OnEstablished func()
	// OnFail fires if SYN retries are exhausted.
	OnFail func()
}

// NewSender creates a sender for the given flow. out transmits packets
// into the network (toward the bottleneck).
func NewSender(run sim.Runner, cfg Config, flow packet.FlowID, pool packet.PoolID, app App, out func(*packet.Packet)) *Sender {
	rto := cfg.InitialRTO
	if cfg.FixedRTO > 0 {
		rto = cfg.FixedRTO
	}
	return &Sender{
		run:     run,
		cfg:     cfg,
		flow:    flow,
		pool:    pool,
		app:     app,
		out:     out,
		sent:    make(map[int]txInfo),
		sacked:  make(map[int]bool),
		backoff: 1,
		rto:     rto,
	}
}

// Flow returns the sender's flow ID.
func (s *Sender) Flow() packet.FlowID { return s.flow }

// CumAck returns the current cumulative acknowledgment (segments).
func (s *Sender) CumAck() int { return s.cumAck }

// Cwnd returns the current congestion window in segments.
func (s *Sender) Cwnd() float64 { return s.cwnd }

// Backoff returns the current RTO backoff multiplier.
func (s *Sender) Backoff() int { return s.backoff }

// Established reports whether the handshake has completed.
func (s *Sender) Established() bool { return s.state == stateEstablished }

// Failed reports whether the connection gave up during the handshake.
func (s *Sender) Failed() bool { return s.state == stateFailed }

// SRTT returns the smoothed RTT estimate (zero before the first sample).
func (s *Sender) SRTT() sim.Time { return s.srtt }

// RTO returns the current base retransmission timeout (before backoff).
func (s *Sender) RTO() sim.Time { return s.rto }

// Notify tells the sender its app has new data available (e.g. a
// pipelined object was queued on an idle connection) so it can resume
// transmitting.
func (s *Sender) Notify() { s.trySend() }

// Start begins the connection handshake.
func (s *Sender) Start() {
	if s.state != stateClosed {
		return
	}
	s.state = stateSynSent
	s.sendSyn(false)
}

// Stop cancels all pending timers; the sender becomes inert.
func (s *Sender) Stop() {
	s.rtoTimer.Cancel()
	s.synTimer.Cancel()
	s.paceTimer.Cancel()
	s.rtoTimer, s.synTimer, s.paceTimer = nil, nil, nil
	s.state = stateClosed
}

func (s *Sender) sendSyn(rexmit bool) {
	if rexmit {
		s.synRexmit = true
		s.Stats.SynRetries++
	} else {
		s.synSentAt = s.run.Now()
	}
	s.out(&packet.Packet{
		Flow: s.flow, Pool: s.pool, Kind: packet.Syn,
		Size: s.cfg.SynSize, Retransmit: rexmit, Sent: s.run.Now(),
	})
	timeout := s.cfg.SynTimeout
	for i := 0; i < s.synRetries; i++ {
		timeout *= 2
		if s.cfg.MaxSynTimeout > 0 && timeout >= s.cfg.MaxSynTimeout {
			timeout = s.cfg.MaxSynTimeout
			break
		}
	}
	s.synTimer = sim.Reschedule(s.run, s.synTimer, timeout, s.onSynTimeout)
}

func (s *Sender) onSynTimeout() {
	if s.state != stateSynSent {
		return
	}
	s.synRetries++
	if s.cfg.MaxSynRetries >= 0 && s.synRetries > s.cfg.MaxSynRetries {
		s.state = stateFailed
		if s.OnFail != nil {
			s.OnFail()
		}
		return
	}
	s.sendSyn(true)
}

// Deliver hands the sender a packet from the network (SynAck or Ack).
func (s *Sender) Deliver(p *packet.Packet) {
	switch p.Kind {
	case packet.SynAck:
		s.onSynAck()
	case packet.Ack:
		s.onAck(p)
	}
}

func (s *Sender) onSynAck() {
	if s.state != stateSynSent {
		return
	}
	s.synTimer.Cancel()
	s.synTimer = nil
	s.state = stateEstablished
	s.cwnd = s.cfg.InitialCwnd
	s.ssthresh = s.cfg.InitialSsthresh
	if !s.synRexmit {
		s.rttSample(s.run.Now() - s.synSentAt)
	}
	if s.OnEstablished != nil {
		s.OnEstablished()
	}
	s.trySend()
}

// window returns the current send window in whole segments.
func (s *Sender) window() int {
	w := s.cwnd
	if w > s.cfg.MaxWindow {
		w = s.cfg.MaxWindow
	}
	if w < 1 {
		w = 1
	}
	return int(w)
}

// outstanding returns the number of unacknowledged, un-SACKed segments
// presumed in flight.
func (s *Sender) outstanding() int {
	n := s.nextSeq - s.cumAck
	for seq := range s.sacked {
		if seq >= s.cumAck && seq < s.nextSeq {
			n--
		}
	}
	return n
}

// subPacketMode reports whether the sub-packet pacer governs sending:
// the variant is enabled and the window is in the fractional region.
func (s *Sender) subPacketMode() bool {
	return s.cfg.Variant == VariantSubPacket && s.cwnd < 2
}

// paceInterval returns the inter-segment gap at the current fractional
// window: RTT/cwnd.
func (s *Sender) paceInterval() sim.Time {
	rtt := s.srtt
	if rtt <= 0 {
		rtt = s.cfg.InitialRTO / 3
	}
	return sim.Time(float64(rtt) / s.cwnd)
}

// trySend transmits as many segments as window and app data allow. In
// sub-packet mode it instead releases at most one paced segment and
// arms the pacing timer for the next.
func (s *Sender) trySend() {
	if s.state != stateEstablished {
		return
	}
	for {
		// Skip segments the receiver already holds (SACK).
		for s.sacked[s.nextSeq] {
			s.nextSeq++
		}
		if s.app.Available(s.nextSeq) <= 0 {
			return
		}
		if s.subPacketMode() {
			if s.outstanding() >= 1 {
				return
			}
			now := s.run.Now()
			if now < s.nextPaced {
				if s.paceTimer == nil || s.paceTimer.Canceled() {
					s.paceTimer = sim.Reschedule(s.run, s.paceTimer, s.nextPaced-now, func() {
						s.paceTimer = nil
						s.trySend()
					})
				}
				return
			}
			s.nextPaced = now + s.paceInterval()
		} else if s.outstanding() >= s.window() {
			return
		}
		s.sendSegment(s.nextSeq)
		s.nextSeq++
	}
}

// sendSegment transmits segment seq, marking it a retransmission if it
// was ever transmitted before.
func (s *Sender) sendSegment(seq int) {
	rexmit := seq < s.highTx
	if seq >= s.highTx {
		s.highTx = seq + 1
		s.Stats.NewSegmentsSent++
	} else {
		s.Stats.Retransmits++
	}
	s.Stats.SegmentsSent++
	s.sent[seq] = txInfo{sentAt: s.run.Now(), rexmit: rexmit}
	s.out(&packet.Packet{
		Flow: s.flow, Pool: s.pool, Kind: packet.Data,
		Seq: seq, Size: s.cfg.MSS, Retransmit: rexmit, Sent: s.run.Now(),
	})
	if s.rtoTimer == nil || s.rtoTimer.Canceled() {
		s.armRTO()
	}
}

// effectiveRTO returns the backed-off, clamped timeout value.
func (s *Sender) effectiveRTO() sim.Time {
	t := s.rto * sim.Time(s.backoff)
	if t > s.cfg.MaxRTO {
		t = s.cfg.MaxRTO
	}
	return t
}

func (s *Sender) armRTO() {
	// Reschedule reuses the timer allocation across the cancel-then-rearm
	// churn every ack causes; s.rtoTimer is the only handle.
	s.rtoTimer = sim.Reschedule(s.run, s.rtoTimer, s.effectiveRTO(), s.onRTO)
}

func (s *Sender) onAck(p *packet.Packet) {
	if s.state != stateEstablished {
		return
	}
	if s.cfg.SACK {
		for _, seq := range p.Sacked {
			if seq >= s.cumAck {
				s.sacked[seq] = true
			}
		}
	}
	switch {
	case p.CumAck > s.cumAck:
		s.onNewAck(p.CumAck)
	case p.CumAck == s.cumAck && s.outstanding() > 0:
		s.onDupAck()
	}
}

func (s *Sender) onNewAck(newCum int) {
	newly := newCum - s.cumAck
	// Karn's rule + backoff collapse (§3.1.1): only segments never
	// retransmitted yield RTT samples and reset the backoff.
	sampled := false
	var sample sim.Time
	for seq := s.cumAck; seq < newCum; seq++ {
		if info, ok := s.sent[seq]; ok && !info.rexmit {
			sample = s.run.Now() - info.sentAt
			sampled = true
		}
		delete(s.sent, seq)
		delete(s.sacked, seq)
	}
	if sampled {
		s.rttSample(sample)
		s.backoff = 1
	}
	s.cumAck = newCum
	if s.nextSeq < newCum {
		s.nextSeq = newCum
	}

	if s.inRecovery {
		if newCum >= s.recover {
			// Full acknowledgment: leave recovery, deflate.
			s.inRecovery = false
			s.cwnd = s.ssthresh
			s.dupAcks = 0
		} else {
			// Partial ack (RFC 6582): retransmit the next hole,
			// deflate by the amount acked, add back one segment.
			s.cwnd -= float64(newly)
			s.cwnd++
			if s.cwnd < 1 {
				s.cwnd = 1
			}
			s.retransmitHole()
			// The "Impatient" variant: reset the retransmit timer
			// only for the first partial ack, so a recovery spanning
			// many losses runs into the RTO — the paper's model
			// assumption that TCP cannot recover beyond a threshold
			// of losses in one window (§3.1, citing Sheu & Wu).
			if !s.partialSeen {
				s.partialSeen = true
				s.armRTO()
			}
		}
	} else {
		s.dupAcks = 0
		switch {
		case s.subPacketMode():
			// Gentle multiplicative probe out of the fractional
			// region: at one paced packet per RTT/cwnd, ×1.5 per ack
			// grows the rate ~1.5× per effective round trip.
			s.cwnd *= 1.5
		case s.cwnd < s.ssthresh:
			s.cwnd += float64(newly) // slow start
		case s.cfg.Variant == VariantCubic:
			s.cwnd = s.cubic.grow(s.cwnd, newly, s.run.Now(), s.srtt)
		default:
			s.cwnd += float64(newly) / s.cwnd // AIMD congestion avoidance
		}
		if s.cwnd > s.cfg.MaxWindow {
			s.cwnd = s.cfg.MaxWindow
		}
	}

	s.app.Acked(s.cumAck)
	switch {
	case s.outstanding() <= 0:
		s.rtoTimer.Cancel()
		s.rtoTimer = nil
	case !s.inRecovery:
		s.armRTO()
	}
	s.trySend()
}

func (s *Sender) onDupAck() {
	s.dupAcks++
	switch {
	case !s.inRecovery && s.dupAcks == 3:
		// Fast retransmit. Note that with cwnd < 4 fewer than three
		// dupacks can ever arrive, so small-window flows fall back to
		// timeouts exactly as the paper's model assumes.
		s.ssthresh = s.reducedWindow()
		s.recover = s.highTx
		s.inRecovery = true
		s.rexmitNext = s.cumAck
		s.partialSeen = false
		s.cwnd = s.ssthresh + 3
		s.Stats.FastRetransmits++
		s.retransmitHole()
		s.armRTO()
		// RFC 6582: the inflated window (ssthresh + 3) may already
		// permit new data; without this send opportunity a small
		// window that produces exactly three dupacks stalls a full
		// RTT waiting for the recovery ack.
		s.trySend()
	case s.inRecovery:
		s.cwnd++ // window inflation per arriving dupack
		if s.cfg.SACK {
			// SACK-based recovery may retransmit further holes as
			// the pipe drains.
			if s.outstanding() < s.window() {
				s.retransmitHole()
			}
		}
		s.trySend()
	}
}

// retransmitHole resends the first unacknowledged, un-SACKed segment
// that has not already been retransmitted in the current recovery, and
// advances the retransmit pointer past it.
func (s *Sender) retransmitHole() {
	seq := s.cumAck
	if seq < s.rexmitNext {
		seq = s.rexmitNext
	}
	for seq < s.highTx && s.sacked[seq] {
		seq++
	}
	if seq >= s.highTx {
		return
	}
	s.sendSegment(seq)
	s.rexmitNext = seq + 1
}

func (s *Sender) onRTO() {
	if s.state != stateEstablished {
		return
	}
	if s.outstanding() <= 0 {
		s.rtoTimer = nil
		return
	}
	s.Stats.Timeouts++
	if s.cfg.Variant == VariantSubPacket {
		// Future-work mode (§7): no exponential backoff — the loss
		// halves the (possibly fractional) window, so the pacing
		// interval doubles instead of the flow going silent.
		s.ssthresh = 2
		s.cwnd /= 2
		if s.cwnd < MinFracCwnd {
			s.cwnd = MinFracCwnd
		}
	} else {
		if s.backoff > 1 {
			s.Stats.RepetitiveTimeouts++
		}
		s.backoff *= 2
		if s.backoff > 64 {
			s.backoff = 64
		}
		if s.backoff > s.Stats.MaxBackoff {
			s.Stats.MaxBackoff = s.backoff
		}
		s.ssthresh = s.reducedWindow()
		s.cwnd = 1
	}
	s.inRecovery = false
	s.dupAcks = 0
	// Go-back-N: rewind the send pointer so unacked segments are
	// retransmitted (the receiver's out-of-order cache advances the
	// cumulative ack past anything it already holds).
	s.rexmitNext = s.cumAck
	s.retransmitHole()
	s.nextSeq = s.rexmitNext
	s.armRTO()
}

// reducedWindow returns the post-loss window target: half for
// Reno-family, β·cwnd for CUBIC (which also records the loss epoch).
// Never below 2 — "the sender never reaches a cwnd smaller than 2
// through fast retransmissions" (§3.1).
func (s *Sender) reducedWindow() float64 {
	w := s.cwnd / 2
	if s.cfg.Variant == VariantCubic {
		s.cubic.onLoss(s.cwnd, s.run.Now())
		w = s.cwnd * cubicBeta
	}
	if w < 2 {
		w = 2
	}
	return w
}

// rttSample folds a new RTT measurement into srtt/rttvar (RFC 6298).
func (s *Sender) rttSample(r sim.Time) {
	if r < 0 {
		return
	}
	if s.cfg.FixedRTO > 0 {
		s.srtt = r
		s.haveSRTT = true
		s.rto = s.cfg.FixedRTO
		return
	}
	if !s.haveSRTT {
		s.srtt = r
		s.rttvar = r / 2
		s.haveSRTT = true
	} else {
		d := s.srtt - r
		if d < 0 {
			d = -d
		}
		s.rttvar = (3*s.rttvar + d) / 4
		s.srtt = (7*s.srtt + r) / 8
	}
	s.rto = s.srtt + 4*s.rttvar
	if s.rto < s.cfg.MinRTO {
		s.rto = s.cfg.MinRTO
	}
	if s.rto > s.cfg.MaxRTO {
		s.rto = s.cfg.MaxRTO
	}
}
