package tcp_test

import (
	"math/rand"
	"testing"
	"testing/quick"

	"taq/internal/packet"
	"taq/internal/sim"
	"taq/internal/tcp"
)

// harness wires a sender and receiver together over a fixed-delay path
// with a programmable forward-path drop filter.
type harness struct {
	e *sim.Engine
	s *tcp.Sender
	r *tcp.Receiver
	// drop decides whether a forward (sender→receiver) packet is lost.
	drop func(*packet.Packet) bool
	// forwarded counts forward packets that survived.
	forwarded int
}

func newHarness(t *testing.T, cfg tcp.Config, app tcp.App, oneWay sim.Time) *harness {
	t.Helper()
	h := &harness{e: sim.NewEngine(1)}
	h.r = tcp.NewReceiver(h.e, cfg, 1, packet.PoolNone, func(p *packet.Packet) {
		h.e.Schedule(oneWay, func() { h.s.Deliver(p) })
	})
	h.s = tcp.NewSender(h.e, cfg, 1, packet.PoolNone, app, func(p *packet.Packet) {
		if h.drop != nil && h.drop(p) {
			return
		}
		h.forwarded++
		h.e.Schedule(oneWay, func() { h.r.Deliver(p) })
	})
	return h
}

func TestHandshake(t *testing.T) {
	cfg := tcp.DefaultConfig()
	h := newHarness(t, cfg, &tcp.SizedApp{Total: 0}, 50*sim.Millisecond)
	established := false
	h.s.OnEstablished = func() { established = true }
	h.s.Start()
	h.e.Run()
	if !established || !h.s.Established() {
		t.Fatal("handshake did not complete")
	}
	if h.s.SRTT() != 100*sim.Millisecond {
		t.Errorf("SRTT = %v, want 100ms (SYN sample)", h.s.SRTT())
	}
}

func TestBulkTransferDeliversInOrder(t *testing.T) {
	cfg := tcp.DefaultConfig()
	app := &tcp.SizedApp{Total: 200}
	done := false
	app.OnComplete = func() { done = true }
	h := newHarness(t, cfg, app, 10*sim.Millisecond)
	h.s.Start()
	h.e.RunUntil(60 * sim.Second)
	if !done {
		t.Fatal("transfer did not complete")
	}
	if h.r.SegmentsDelivered != 200 {
		t.Errorf("delivered %d segments, want 200", h.r.SegmentsDelivered)
	}
	if h.s.Stats.Retransmits != 0 || h.s.Stats.Timeouts != 0 {
		t.Errorf("lossless path produced retransmits=%d timeouts=%d",
			h.s.Stats.Retransmits, h.s.Stats.Timeouts)
	}
	if h.r.CumAck() != 200 {
		t.Errorf("receiver cumAck = %d", h.r.CumAck())
	}
}

func TestSlowStartGrowth(t *testing.T) {
	cfg := tcp.DefaultConfig()
	h := newHarness(t, cfg, tcp.BulkApp{}, 10*sim.Millisecond)
	h.s.Start()
	// Handshake done at 20ms; then cwnd doubles each 20ms RTT.
	h.e.RunUntil(120 * sim.Millisecond)
	if h.s.Cwnd() < 8 {
		t.Errorf("cwnd = %f after several RTTs, want exponential growth", h.s.Cwnd())
	}
}

func TestCongestionAvoidanceLinearGrowth(t *testing.T) {
	cfg := tcp.DefaultConfig()
	cfg.InitialSsthresh = 4 // force CA early
	h := newHarness(t, cfg, tcp.BulkApp{}, 10*sim.Millisecond)
	h.s.Start()
	h.e.RunUntil(100 * sim.Millisecond)
	c1 := h.s.Cwnd()
	h.e.RunUntil(120 * sim.Millisecond) // one more RTT
	c2 := h.s.Cwnd()
	if c2-c1 > 1.5 {
		t.Errorf("CA grew cwnd by %f in one RTT, want ≈1", c2-c1)
	}
	if c2 <= c1 {
		t.Errorf("CA did not grow cwnd (%f -> %f)", c1, c2)
	}
}

func TestFastRetransmitAvoidsTimeout(t *testing.T) {
	cfg := tcp.DefaultConfig()
	cfg.InitialCwnd = 8 // enough packets in flight for 3 dupacks
	app := &tcp.SizedApp{Total: 100}
	done := false
	app.OnComplete = func() { done = true }
	h := newHarness(t, cfg, app, 10*sim.Millisecond)
	dropped := false
	h.drop = func(p *packet.Packet) bool {
		if p.Kind == packet.Data && p.Seq == 4 && !dropped && !p.Retransmit {
			dropped = true
			return true
		}
		return false
	}
	h.s.Start()
	h.e.RunUntil(60 * sim.Second)
	if !done {
		t.Fatal("transfer did not complete")
	}
	if h.s.Stats.FastRetransmits != 1 {
		t.Errorf("FastRetransmits = %d, want 1", h.s.Stats.FastRetransmits)
	}
	if h.s.Stats.Timeouts != 0 {
		t.Errorf("Timeouts = %d, want 0 (single loss, big window)", h.s.Stats.Timeouts)
	}
}

func TestSmallWindowLossForcesTimeout(t *testing.T) {
	// With cwnd=2 a single loss cannot generate 3 dupacks: the flow
	// must recover via RTO — the core small-packet-regime mechanism.
	cfg := tcp.DefaultConfig()
	cfg.InitialCwnd = 2
	cfg.InitialSsthresh = 2 // hold the window small
	app := &tcp.SizedApp{Total: 20}
	done := false
	app.OnComplete = func() { done = true }
	h := newHarness(t, cfg, app, 10*sim.Millisecond)
	dropped := false
	h.drop = func(p *packet.Packet) bool {
		if p.Kind == packet.Data && p.Seq == 2 && !dropped && !p.Retransmit {
			dropped = true
			return true
		}
		return false
	}
	h.s.Start()
	h.e.RunUntil(120 * sim.Second)
	if !done {
		t.Fatal("transfer did not complete")
	}
	if h.s.Stats.Timeouts < 1 {
		t.Errorf("Timeouts = %d, want ≥1", h.s.Stats.Timeouts)
	}
	if h.s.Stats.FastRetransmits != 0 {
		t.Errorf("FastRetransmits = %d, want 0 at cwnd 2", h.s.Stats.FastRetransmits)
	}
}

func TestRepetitiveTimeoutBackoffAndCollapse(t *testing.T) {
	cfg := tcp.DefaultConfig()
	app := &tcp.SizedApp{Total: 50}
	h := newHarness(t, cfg, app, 10*sim.Millisecond)
	blackout := true
	h.drop = func(p *packet.Packet) bool { return blackout && p.Kind == packet.Data }
	h.s.Start()
	// Let several RTOs back off during the blackout.
	h.e.RunUntil(20 * sim.Second)
	if h.s.Stats.RepetitiveTimeouts < 2 {
		t.Fatalf("RepetitiveTimeouts = %d, want ≥2 during blackout", h.s.Stats.RepetitiveTimeouts)
	}
	if h.s.Backoff() < 4 {
		t.Fatalf("backoff = %d, want ≥4 during blackout", h.s.Backoff())
	}
	// Heal the path: backoff must collapse to 1 once a newly
	// transmitted (not retransmitted) segment is cumulatively acked.
	blackout = false
	h.e.RunUntil(200 * sim.Second)
	if !app.Done() {
		t.Fatal("transfer did not complete after blackout lifted")
	}
	if h.s.Backoff() != 1 {
		t.Errorf("backoff = %d after recovery, want 1", h.s.Backoff())
	}
}

func TestSackRecoversMultipleLosses(t *testing.T) {
	cfg := tcp.DefaultConfig()
	cfg.SACK = true
	cfg.InitialCwnd = 10
	app := &tcp.SizedApp{Total: 100}
	done := false
	app.OnComplete = func() { done = true }
	h := newHarness(t, cfg, app, 10*sim.Millisecond)
	lost := map[int]bool{4: true, 6: true}
	h.drop = func(p *packet.Packet) bool {
		if p.Kind == packet.Data && lost[p.Seq] && !p.Retransmit {
			delete(lost, p.Seq)
			return true
		}
		return false
	}
	h.s.Start()
	h.e.RunUntil(60 * sim.Second)
	if !done {
		t.Fatal("transfer did not complete")
	}
	if h.r.SegmentsDelivered != 100 {
		t.Errorf("delivered = %d", h.r.SegmentsDelivered)
	}
	if h.s.Stats.Timeouts != 0 {
		t.Errorf("SACK recovery took %d timeouts, want 0", h.s.Stats.Timeouts)
	}
}

func TestSynRetry(t *testing.T) {
	cfg := tcp.DefaultConfig()
	h := newHarness(t, cfg, &tcp.SizedApp{Total: 0}, 10*sim.Millisecond)
	drops := 0
	h.drop = func(p *packet.Packet) bool {
		if p.Kind == packet.Syn && drops < 2 {
			drops++
			return true
		}
		return false
	}
	h.s.Start()
	h.e.RunUntil(30 * sim.Second)
	if !h.s.Established() {
		t.Fatal("connection never established")
	}
	if h.s.Stats.SynRetries != 2 {
		t.Errorf("SynRetries = %d, want 2", h.s.Stats.SynRetries)
	}
	// SYN retries must not contribute an RTT sample (Karn).
	if h.s.SRTT() != 0 {
		t.Errorf("SRTT sampled from retransmitted SYN: %v", h.s.SRTT())
	}
}

func TestSynGiveUp(t *testing.T) {
	cfg := tcp.DefaultConfig()
	cfg.MaxSynRetries = 2
	h := newHarness(t, cfg, tcp.BulkApp{}, 10*sim.Millisecond)
	h.drop = func(p *packet.Packet) bool { return p.Kind == packet.Syn }
	failed := false
	h.s.OnFail = func() { failed = true }
	h.s.Start()
	h.e.RunUntil(300 * sim.Second)
	if !failed || !h.s.Failed() {
		t.Error("sender did not give up after MaxSynRetries")
	}
}

func TestObjectAppPipelining(t *testing.T) {
	cfg := tcp.DefaultConfig()
	app := &tcp.ObjectApp{}
	var completed []int
	app.OnObjectComplete = func(i int) { completed = append(completed, i) }
	app.AddObject(5)
	app.AddObject(3)
	h := newHarness(t, cfg, app, 10*sim.Millisecond)
	h.s.Start()
	h.e.RunUntil(5 * sim.Second)
	if len(completed) != 2 || completed[0] != 0 || completed[1] != 1 {
		t.Fatalf("completed = %v", completed)
	}
	if app.Outstanding() != 0 {
		t.Errorf("outstanding = %d", app.Outstanding())
	}
	// Queue a third object mid-flight: the same connection carries it.
	done3 := false
	app.OnObjectComplete = func(i int) { done3 = i == 2 }
	app.AddObject(4)
	h.s.Notify()
	h.e.RunUntil(10 * sim.Second)
	if !done3 {
		t.Error("third (late-added) object did not complete")
	}
}

func TestReceiverDupSegments(t *testing.T) {
	cfg := tcp.DefaultConfig()
	e := sim.NewEngine(1)
	var acks []*packet.Packet
	r := tcp.NewReceiver(e, cfg, 1, packet.PoolNone, func(p *packet.Packet) { acks = append(acks, p) })
	r.Deliver(&packet.Packet{Kind: packet.Data, Seq: 0, Size: 500})
	r.Deliver(&packet.Packet{Kind: packet.Data, Seq: 0, Size: 500})
	if r.DupSegments != 1 {
		t.Errorf("DupSegments = %d, want 1", r.DupSegments)
	}
	if len(acks) != 2 || acks[1].CumAck != 1 {
		t.Errorf("acks = %v", acks)
	}
}

func TestReceiverSackBlocks(t *testing.T) {
	cfg := tcp.DefaultConfig()
	cfg.SACK = true
	e := sim.NewEngine(1)
	var last *packet.Packet
	r := tcp.NewReceiver(e, cfg, 1, packet.PoolNone, func(p *packet.Packet) { last = p })
	r.Deliver(&packet.Packet{Kind: packet.Data, Seq: 2, Size: 500})
	r.Deliver(&packet.Packet{Kind: packet.Data, Seq: 4, Size: 500})
	if last.CumAck != 0 {
		t.Errorf("CumAck = %d, want 0", last.CumAck)
	}
	if len(last.Sacked) != 2 || last.Sacked[0] != 2 || last.Sacked[1] != 4 {
		t.Errorf("Sacked = %v, want [2 4]", last.Sacked)
	}
}

func TestRTOCalculationRFC6298(t *testing.T) {
	// Two samples of R=200ms: after the SYN sample srtt=200ms,
	// rttvar=100ms; after the data sample rttvar=(3*100+0)/4=75ms,
	// so rto = 200 + 4*75 = 500ms.
	cfg := tcp.DefaultConfig()
	cfg.MinRTO = 100 * sim.Millisecond
	h := newHarness(t, cfg, &tcp.SizedApp{Total: 1}, 100*sim.Millisecond)
	h.s.Start()
	h.e.RunUntil(10 * sim.Second)
	if h.s.RTO() != 500*sim.Millisecond {
		t.Errorf("RTO = %v, want 500ms", h.s.RTO())
	}
	if h.s.SRTT() != 200*sim.Millisecond {
		t.Errorf("SRTT = %v, want 200ms", h.s.SRTT())
	}
}

func TestRTOMinClamp(t *testing.T) {
	cfg := tcp.DefaultConfig() // MinRTO 1s
	h := newHarness(t, cfg, &tcp.SizedApp{Total: 1}, sim.Millisecond)
	h.s.Start()
	h.e.RunUntil(10 * sim.Second)
	if h.s.RTO() != cfg.MinRTO {
		t.Errorf("RTO = %v, want clamped to %v", h.s.RTO(), cfg.MinRTO)
	}
}

func TestSizedAppAvailable(t *testing.T) {
	a := &tcp.SizedApp{Total: 10}
	if a.Available(0) != 10 || a.Available(9) != 1 || a.Available(10) != 0 || a.Available(11) != 0 {
		t.Error("SizedApp.Available wrong")
	}
}

func TestBulkAppNeverExhausts(t *testing.T) {
	var a tcp.BulkApp
	if a.Available(1<<20) <= 0 {
		t.Error("BulkApp exhausted")
	}
}

func TestStopCancelsTimers(t *testing.T) {
	cfg := tcp.DefaultConfig()
	h := newHarness(t, cfg, tcp.BulkApp{}, 10*sim.Millisecond)
	h.drop = func(p *packet.Packet) bool { return true } // black hole
	h.s.Start()
	h.e.RunUntil(sim.Second)
	h.s.Stop()
	before := h.s.Stats.SynRetries
	h.e.RunUntil(100 * sim.Second)
	if h.s.Stats.SynRetries != before {
		t.Error("timers still firing after Stop")
	}
}

// Heavy random-loss soak: every segment must still be delivered
// exactly once, in order, regardless of loss pattern.
func TestLossyDeliverySoak(t *testing.T) {
	for _, mode := range []bool{false, true} {
		cfg := tcp.DefaultConfig()
		cfg.SACK = mode
		cfg.MinRTO = 200 * sim.Millisecond
		app := &tcp.SizedApp{Total: 300}
		done := false
		app.OnComplete = func() { done = true }
		h := newHarness(t, cfg, app, 10*sim.Millisecond)
		rng := h.e.Rand()
		h.drop = func(p *packet.Packet) bool {
			return p.Kind == packet.Data && rng.Float64() < 0.15
		}
		h.s.Start()
		h.e.RunUntil(3000 * sim.Second)
		if !done {
			t.Fatalf("sack=%v: transfer incomplete: delivered %d, cumAck %d, timeouts %d",
				mode, h.r.SegmentsDelivered, h.s.CumAck(), h.s.Stats.Timeouts)
		}
		if h.r.SegmentsDelivered != 300 {
			t.Errorf("sack=%v: delivered = %d, want 300", mode, h.r.SegmentsDelivered)
		}
		if h.s.Stats.Timeouts == 0 {
			t.Errorf("sack=%v: expected some timeouts at 15%% loss", mode)
		}
	}
}

func TestDelayedAckHalvesAcks(t *testing.T) {
	cfg := tcp.DefaultConfig()
	cfg.DelayedAck = true
	app := &tcp.SizedApp{Total: 100}
	done := false
	app.OnComplete = func() { done = true }
	h := newHarness(t, cfg, app, 10*sim.Millisecond)
	h.s.Start()
	h.e.RunUntil(120 * sim.Second)
	if !done {
		t.Fatal("transfer did not complete with delayed acks")
	}
	// Roughly one ack per two segments (plus timer-forced acks).
	if h.r.AcksSent > 75 {
		t.Errorf("AcksSent = %d for 100 segments, want ≈50 with delayed acks", h.r.AcksSent)
	}
	if h.r.AcksSent < 40 {
		t.Errorf("AcksSent = %d suspiciously low", h.r.AcksSent)
	}
}

func TestDelayedAckTimerFiresForLoneSegment(t *testing.T) {
	cfg := tcp.DefaultConfig()
	cfg.DelayedAck = true
	cfg.DelAckTimeout = 50 * sim.Millisecond
	e := sim.NewEngine(1)
	var acks []sim.Time
	r := tcp.NewReceiver(e, cfg, 1, packet.PoolNone, func(p *packet.Packet) {
		if p.Kind == packet.Ack {
			acks = append(acks, e.Now())
		}
	})
	r.Deliver(&packet.Packet{Kind: packet.Data, Seq: 0, Size: 500})
	e.RunUntil(sim.Second)
	if len(acks) != 1 || acks[0] != 50*sim.Millisecond {
		t.Errorf("acks = %v, want one at 50ms", acks)
	}
}

func TestDelayedAckImmediateOnOutOfOrder(t *testing.T) {
	cfg := tcp.DefaultConfig()
	cfg.DelayedAck = true
	e := sim.NewEngine(1)
	acks := 0
	r := tcp.NewReceiver(e, cfg, 1, packet.PoolNone, func(p *packet.Packet) { acks++ })
	// Out-of-order arrival must be acked immediately (dupack for fast
	// retransmit).
	r.Deliver(&packet.Packet{Kind: packet.Data, Seq: 3, Size: 500})
	if acks != 1 {
		t.Errorf("acks = %d after OOO segment, want immediate dupack", acks)
	}
}

func TestFixedRTOPinsTimeout(t *testing.T) {
	cfg := tcp.DefaultConfig()
	cfg.FixedRTO = 400 * sim.Millisecond
	h := newHarness(t, cfg, &tcp.SizedApp{Total: 5}, 10*sim.Millisecond)
	h.s.Start()
	h.e.RunUntil(10 * sim.Second)
	if h.s.RTO() != 400*sim.Millisecond {
		t.Errorf("RTO = %v, want pinned 400ms", h.s.RTO())
	}
	if h.s.SRTT() == 0 {
		t.Error("SRTT should still be tracked under FixedRTO")
	}
}

// Property: whatever the (finite) loss pattern, a sized transfer
// completes with every segment delivered exactly once in order, the
// cumulative ack never regresses, and retransmissions only ever cover
// dropped or reordered data.
func TestTransferInvariantProperty(t *testing.T) {
	check := func(seed int64, lossPct uint8, sack bool) bool {
		loss := float64(lossPct%30) / 100 // 0..29%
		cfg := tcp.DefaultConfig()
		cfg.SACK = sack
		cfg.MinRTO = 200 * sim.Millisecond
		app := &tcp.SizedApp{Total: 60}
		h := newHarness(t, cfg, app, 10*sim.Millisecond)
		rng := rand.New(rand.NewSource(seed))
		h.drop = func(p *packet.Packet) bool {
			return p.Kind == packet.Data && rng.Float64() < loss
		}
		lastCum := 0
		h.s.OnEstablished = func() {}
		h.s.Start()
		for i := 0; i < 400000 && !app.Done(); i++ {
			if !h.e.Step() {
				break
			}
			if c := h.s.CumAck(); c < lastCum {
				t.Errorf("cumAck regressed %d -> %d", lastCum, c)
				return false
			} else {
				lastCum = c
			}
		}
		if !app.Done() {
			t.Errorf("seed=%d loss=%.2f sack=%v: incomplete (cum=%d)", seed, loss, sack, h.s.CumAck())
			return false
		}
		return h.r.SegmentsDelivered == 60
	}
	f := func(seed int64, lossPct uint8, sack bool) bool { return check(seed, lossPct, sack) }
	if err := quick.Check(f, &quick.Config{MaxCount: 25, Rand: rand.New(rand.NewSource(11))}); err != nil {
		t.Error(err)
	}
}

// TestFastRetransmitSendsNewDataImmediately is the RFC 6582 regression
// test for the fast-retransmit send opportunity: the third dupack
// inflates cwnd to ssthresh+3, which can already admit new data. With
// ≈4 segments in flight a single loss yields exactly three dupacks —
// no fourth ack ever arrives to trigger a send — so without trySend at
// the fast retransmit, the permitted new segment stalls a full RTT
// until the recovery ack returns.
func TestFastRetransmitSendsNewDataImmediately(t *testing.T) {
	cfg := tcp.DefaultConfig()
	cfg.InitialCwnd = 4
	cfg.InitialSsthresh = 2 // congestion avoidance: cwnd stays ≈4
	type sendEvent struct {
		at  sim.Time
		seq int
		rtx bool
	}
	var sends []sendEvent
	h := newHarness(t, cfg, tcp.BulkApp{}, 10*sim.Millisecond)
	const lostSeq = 4 // first segment of the second flight
	dropped := false
	h.drop = func(p *packet.Packet) bool {
		if p.Kind != packet.Data {
			return false
		}
		sends = append(sends, sendEvent{h.e.Now(), p.Seq, p.Retransmit})
		if p.Seq == lostSeq && !dropped && !p.Retransmit {
			dropped = true
			return true
		}
		return false
	}
	h.s.Start()
	h.e.RunUntil(5 * sim.Second)
	if !dropped {
		t.Fatal("test setup: seq 20 was never sent")
	}
	if h.s.Stats.FastRetransmits != 1 {
		t.Fatalf("FastRetransmits = %d, want 1 (Timeouts = %d)",
			h.s.Stats.FastRetransmits, h.s.Stats.Timeouts)
	}
	var rtxAt sim.Time = -1
	for _, s := range sends {
		if s.rtx && s.seq == lostSeq {
			rtxAt = s.at
			break
		}
	}
	if rtxAt < 0 {
		t.Fatal("lost segment was never fast-retransmitted")
	}
	// The inflated window (ssthresh+3 = 5 > 4 outstanding) permits one
	// new segment at the instant of the fast retransmit.
	for _, s := range sends {
		if !s.rtx && s.seq > lostSeq+3 && s.at == rtxAt {
			return
		}
	}
	t.Errorf("no new data sent at the fast-retransmit instant %v; the inflated window's send opportunity was missed", rtxAt)
}
