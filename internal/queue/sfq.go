package queue

import (
	"taq/internal/packet"
)

// SFQ implements Stochastic Fair Queueing (McKenney 1990): flows hash
// into a fixed set of buckets served round-robin; on overflow the
// packet at the tail of the longest bucket is dropped. The paper (§2.4,
// §5) observes SFQ degenerates to DropTail-like behaviour in small
// packet regimes because each flow rarely has more than one packet
// queued; this implementation lets the experiments verify that.
type SFQ struct {
	DropHook
	buckets  []FIFO
	capacity int // total packets across buckets
	len      int
	bytes    int
	// rr is the round-robin cursor over buckets.
	rr int
	// perturb is mixed into the hash so tests can vary collisions.
	perturb uint32
}

// NewSFQ returns an SFQ with nbuckets hash buckets and a total capacity
// in packets.
func NewSFQ(nbuckets, capacity int) *SFQ {
	if nbuckets < 1 {
		nbuckets = 1
	}
	if capacity < 1 {
		capacity = 1
	}
	return &SFQ{buckets: make([]FIFO, nbuckets), capacity: capacity}
}

// SetPerturbation changes the hash perturbation (normally periodic in
// real deployments; exposed here for tests).
func (q *SFQ) SetPerturbation(p uint32) { q.perturb = p }

func (q *SFQ) bucketOf(f packet.FlowID) int {
	h := uint32(f) * 2654435761 // Knuth multiplicative hash
	h ^= q.perturb
	h ^= h >> 16
	return int(h % uint32(len(q.buckets)))
}

// Enqueue implements Discipline.
//
//taq:hotpath per-packet path of the SFQ baseline
func (q *SFQ) Enqueue(p *packet.Packet) {
	b := q.bucketOf(p.Flow)
	q.buckets[b].Push(p)
	q.len++
	q.bytes += p.Size
	if q.len > q.capacity {
		q.dropFromLongest()
	}
}

func (q *SFQ) dropFromLongest() {
	longest, max := -1, 0
	for i := range q.buckets {
		if l := q.buckets[i].Len(); l > max {
			longest, max = i, l
		}
	}
	if longest < 0 {
		return
	}
	victim := q.buckets[longest].PopTail()
	q.len--
	q.bytes -= victim.Size
	q.Drop(victim)
}

// Dequeue implements Discipline.
//
//taq:hotpath per-packet path of the SFQ baseline
func (q *SFQ) Dequeue() *packet.Packet {
	if q.len == 0 {
		return nil
	}
	n := len(q.buckets)
	for i := 0; i < n; i++ {
		b := (q.rr + i) % n
		if q.buckets[b].Len() > 0 {
			p := q.buckets[b].Pop()
			q.rr = (b + 1) % n
			q.len--
			q.bytes -= p.Size
			return p
		}
	}
	return nil
}

// Len implements Discipline.
func (q *SFQ) Len() int { return q.len }

// Bytes implements Discipline.
func (q *SFQ) Bytes() int { return q.bytes }

var _ Discipline = (*SFQ)(nil)
