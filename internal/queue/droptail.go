package queue

import "taq/internal/packet"

// DropTail is the classic tail-drop FIFO: packets beyond the capacity
// (in packets) are dropped on arrival. This is the paper's primary
// baseline ("DT").
type DropTail struct {
	DropHook
	fifo     FIFO
	capacity int
}

// NewDropTail returns a tail-drop queue holding at most capacity
// packets. Capacity must be at least 1.
func NewDropTail(capacity int) *DropTail {
	if capacity < 1 {
		capacity = 1
	}
	return &DropTail{capacity: capacity}
}

// Capacity returns the configured packet capacity.
func (q *DropTail) Capacity() int { return q.capacity }

// Enqueue implements Discipline.
//
//taq:hotpath per-packet path of the paper's DT baseline
func (q *DropTail) Enqueue(p *packet.Packet) {
	if q.fifo.Len() >= q.capacity {
		q.Drop(p)
		return
	}
	q.fifo.Push(p)
}

// Dequeue implements Discipline.
//
//taq:hotpath per-packet path of the paper's DT baseline
func (q *DropTail) Dequeue() *packet.Packet { return q.fifo.Pop() }

// Len implements Discipline.
func (q *DropTail) Len() int { return q.fifo.Len() }

// Bytes implements Discipline.
func (q *DropTail) Bytes() int { return q.fifo.Bytes() }

var _ Discipline = (*DropTail)(nil)
