package queue

import (
	"math/rand"
	"testing"
	"testing/quick"

	"taq/internal/packet"
	"taq/internal/sim"
)

func pkt(flow packet.FlowID, seq int) *packet.Packet {
	return &packet.Packet{Flow: flow, Kind: packet.Data, Seq: seq, Size: 500}
}

func TestFIFOOrder(t *testing.T) {
	var f FIFO
	for i := 0; i < 100; i++ {
		f.Push(pkt(1, i))
	}
	if f.Len() != 100 {
		t.Fatalf("Len = %d", f.Len())
	}
	if f.Bytes() != 100*500 {
		t.Fatalf("Bytes = %d", f.Bytes())
	}
	for i := 0; i < 100; i++ {
		p := f.Pop()
		if p == nil || p.Seq != i {
			t.Fatalf("Pop %d = %v", i, p)
		}
	}
	if f.Pop() != nil || f.Peek() != nil || f.PopTail() != nil {
		t.Error("empty FIFO should return nil")
	}
}

func TestFIFOWrapAround(t *testing.T) {
	var f FIFO
	// Interleave pushes and pops to force the ring to wrap.
	seq := 0
	next := 0
	for round := 0; round < 50; round++ {
		for i := 0; i < 7; i++ {
			f.Push(pkt(1, seq))
			seq++
		}
		for i := 0; i < 5; i++ {
			p := f.Pop()
			if p.Seq != next {
				t.Fatalf("out of order: got %d want %d", p.Seq, next)
			}
			next++
		}
	}
	for f.Len() > 0 {
		p := f.Pop()
		if p.Seq != next {
			t.Fatalf("drain out of order: got %d want %d", p.Seq, next)
		}
		next++
	}
	if next != seq {
		t.Fatalf("drained %d, pushed %d", next, seq)
	}
}

func TestFIFOPopTail(t *testing.T) {
	var f FIFO
	for i := 0; i < 5; i++ {
		f.Push(pkt(1, i))
	}
	if p := f.PopTail(); p.Seq != 4 {
		t.Fatalf("PopTail = %d, want 4", p.Seq)
	}
	if p := f.Pop(); p.Seq != 0 {
		t.Fatalf("Pop = %d, want 0", p.Seq)
	}
	if f.Len() != 3 {
		t.Fatalf("Len = %d, want 3", f.Len())
	}
}

func TestFIFOPeek(t *testing.T) {
	var f FIFO
	f.Push(pkt(1, 9))
	if f.Peek().Seq != 9 || f.Len() != 1 {
		t.Error("Peek must not remove")
	}
}

// Property: FIFO preserves order and conserves bytes under arbitrary
// push/pop interleavings.
func TestFIFOProperty(t *testing.T) {
	f := func(ops []bool) bool {
		var q FIFO
		pushed, popped := 0, 0
		for _, push := range ops {
			if push {
				q.Push(pkt(1, pushed))
				pushed++
			} else if p := q.Pop(); p != nil {
				if p.Seq != popped {
					return false
				}
				popped++
			}
		}
		return q.Len() == pushed-popped && q.Bytes() == 500*(pushed-popped)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100, Rand: rand.New(rand.NewSource(2))}); err != nil {
		t.Error(err)
	}
}

func TestDropTailCapacity(t *testing.T) {
	q := NewDropTail(3)
	var dropped []*packet.Packet
	q.SetDropHook(func(p *packet.Packet) { dropped = append(dropped, p) })
	for i := 0; i < 5; i++ {
		q.Enqueue(pkt(1, i))
	}
	if q.Len() != 3 {
		t.Errorf("Len = %d, want 3", q.Len())
	}
	if len(dropped) != 2 || dropped[0].Seq != 3 || dropped[1].Seq != 4 {
		t.Errorf("dropped = %v", dropped)
	}
	// FIFO order of survivors.
	for i := 0; i < 3; i++ {
		if p := q.Dequeue(); p.Seq != i {
			t.Errorf("dequeue %d = %v", i, p)
		}
	}
	if q.Dequeue() != nil {
		t.Error("empty dequeue should be nil")
	}
}

func TestDropTailMinCapacity(t *testing.T) {
	q := NewDropTail(0)
	if q.Capacity() != 1 {
		t.Errorf("capacity clamped to %d, want 1", q.Capacity())
	}
}

func TestREDBelowMinThNoDrops(t *testing.T) {
	e := sim.NewEngine(1)
	q := NewRED(REDConfig{Capacity: 100, MinTh: 20, MaxTh: 60, MeanPktTime: sim.Millisecond}, e.Now, e.Rand())
	drops := 0
	q.SetDropHook(func(*packet.Packet) { drops++ })
	// Keep the instantaneous queue small: avg stays below MinTh.
	for i := 0; i < 1000; i++ {
		q.Enqueue(pkt(1, i))
		if q.Len() > 5 {
			q.Dequeue()
		}
	}
	if drops != 0 {
		t.Errorf("drops = %d below MinTh", drops)
	}
}

func TestREDForcedDropAtCapacity(t *testing.T) {
	e := sim.NewEngine(1)
	q := NewRED(REDConfig{Capacity: 10, MinTh: 2, MaxTh: 8, MeanPktTime: sim.Millisecond}, e.Now, e.Rand())
	drops := 0
	q.SetDropHook(func(*packet.Packet) { drops++ })
	for i := 0; i < 100; i++ {
		q.Enqueue(pkt(1, i))
	}
	if q.Len() > 10 {
		t.Errorf("Len = %d exceeds capacity", q.Len())
	}
	if drops == 0 {
		t.Error("expected forced drops at capacity")
	}
}

func TestREDEarlyDropsBetweenThresholds(t *testing.T) {
	e := sim.NewEngine(1)
	q := NewRED(REDConfig{Capacity: 1000, MinTh: 5, MaxTh: 500, MaxP: 0.5, Weight: 0.2, MeanPktTime: sim.Millisecond}, e.Now, e.Rand())
	drops := 0
	q.SetDropHook(func(*packet.Packet) { drops++ })
	// Grow the queue steadily; avg crosses MinTh quickly with w=0.2.
	for i := 0; i < 400; i++ {
		q.Enqueue(pkt(1, i))
	}
	if drops == 0 {
		t.Error("expected probabilistic early drops between thresholds")
	}
	if q.Len()+drops != 400 {
		t.Errorf("conservation violated: len %d + drops %d != 400", q.Len(), drops)
	}
}

func TestREDIdleDecay(t *testing.T) {
	e := sim.NewEngine(1)
	q := NewRED(REDConfig{Capacity: 100, MinTh: 5, MaxTh: 50, Weight: 0.5, MeanPktTime: sim.Millisecond}, e.Now, e.Rand())
	for i := 0; i < 50; i++ {
		q.Enqueue(pkt(1, i))
	}
	avgBusy := q.AvgQueue()
	for q.Len() > 0 {
		q.Dequeue()
	}
	// A long idle period must decay the average.
	e.RunUntil(10 * sim.Second)
	q.Enqueue(pkt(1, 99))
	if q.AvgQueue() >= avgBusy/2 {
		t.Errorf("avg did not decay across idle: before %f after %f", avgBusy, q.AvgQueue())
	}
}

func TestREDDefaults(t *testing.T) {
	e := sim.NewEngine(1)
	q := NewRED(REDConfig{Capacity: 40}, e.Now, e.Rand())
	if q.cfg.MinTh != 10 || q.cfg.MaxTh != 30 || q.cfg.MaxP != 0.1 || q.cfg.Weight != 0.002 {
		t.Errorf("defaults = %+v", q.cfg)
	}
}

func TestSFQRoundRobinFairness(t *testing.T) {
	q := NewSFQ(64, 1000)
	// Three flows, 30 packets each.
	for i := 0; i < 30; i++ {
		for f := packet.FlowID(1); f <= 3; f++ {
			q.Enqueue(pkt(f, i))
		}
	}
	// The first 30 dequeues should include roughly equal shares if the
	// flows landed in distinct buckets (with 64 buckets and 3 flows,
	// collisions are possible but the chosen IDs hash apart).
	counts := map[packet.FlowID]int{}
	for i := 0; i < 30; i++ {
		p := q.Dequeue()
		counts[p.Flow]++
	}
	for f := packet.FlowID(1); f <= 3; f++ {
		if counts[f] < 5 {
			t.Errorf("flow %d served %d of first 30; SFQ not interleaving (counts=%v)", f, counts[f], counts)
		}
	}
}

func TestSFQDropsFromLongestBucket(t *testing.T) {
	q := NewSFQ(64, 10)
	var dropped []*packet.Packet
	q.SetDropHook(func(p *packet.Packet) { dropped = append(dropped, p) })
	// Flow 1 hogs the queue, then flow 2 arrives.
	for i := 0; i < 10; i++ {
		q.Enqueue(pkt(1, i))
	}
	q.Enqueue(pkt(2, 0))
	if len(dropped) != 1 || dropped[0].Flow != 1 {
		t.Fatalf("dropped = %v, want one packet of flow 1", dropped)
	}
	if q.Len() != 10 {
		t.Errorf("Len = %d, want 10", q.Len())
	}
}

func TestSFQConservation(t *testing.T) {
	q := NewSFQ(8, 50)
	drops := 0
	q.SetDropHook(func(*packet.Packet) { drops++ })
	enq := 0
	for f := packet.FlowID(0); f < 20; f++ {
		for i := 0; i < 10; i++ {
			q.Enqueue(pkt(f, i))
			enq++
		}
	}
	deq := 0
	for q.Dequeue() != nil {
		deq++
	}
	if deq+drops != enq {
		t.Errorf("conservation: deq %d + drops %d != enq %d", deq, drops, enq)
	}
	if q.Len() != 0 || q.Bytes() != 0 {
		t.Errorf("drained queue reports Len=%d Bytes=%d", q.Len(), q.Bytes())
	}
}

func TestSFQEmptyDequeue(t *testing.T) {
	q := NewSFQ(4, 10)
	if q.Dequeue() != nil {
		t.Error("empty SFQ dequeue must be nil")
	}
}

func TestSFQPerturbationChangesBuckets(t *testing.T) {
	q := NewSFQ(1024, 10)
	b1 := q.bucketOf(42)
	q.SetPerturbation(0xdeadbeef)
	b2 := q.bucketOf(42)
	if b1 == b2 {
		t.Skip("hash collision under perturbation (unlikely); not an error")
	}
}

func TestREDGentleRegionPassesSomePackets(t *testing.T) {
	e := sim.NewEngine(1)
	mk := func(gentle bool) (*RED, *int) {
		q := NewRED(REDConfig{
			Capacity: 200, MinTh: 5, MaxTh: 20, MaxP: 0.1,
			Weight: 0.5, MeanPktTime: sim.Millisecond, Gentle: gentle,
		}, e.Now, e.Rand())
		drops := new(int)
		q.SetDropHook(func(*packet.Packet) { *drops++ })
		return q, drops
	}
	// Drive the average into (MaxTh, 2*MaxTh): keep ~30 packets
	// queued. Strict RED drops every arrival there; gentle RED lets a
	// fraction through.
	run := func(q *RED) (accepted int) {
		for i := 0; i < 500; i++ {
			before := q.Len()
			q.Enqueue(pkt(1, i))
			if q.Len() > before {
				accepted++
			}
			if q.Len() > 30 {
				q.Dequeue()
			}
		}
		return
	}
	strict, _ := mk(false)
	gentle, _ := mk(true)
	accStrict := run(strict)
	accGentle := run(gentle)
	if accGentle <= accStrict {
		t.Errorf("gentle accepted %d ≤ strict %d; gentle region not softer", accGentle, accStrict)
	}
}
