// Package queue defines the queue-discipline interface used at the
// bottleneck link, plus the baseline disciplines the paper compares
// against: DropTail (§2.3), Random Early Detection and Stochastic Fair
// Queueing (§2.4). The TAQ discipline itself lives in internal/core and
// implements the same interface.
package queue

import "taq/internal/packet"

// Discipline is a bottleneck queue. Implementations decide internally
// which packet to drop on overflow (not necessarily the arriving one)
// and report every drop through the drop hook so senders' in-flight
// accounting and scenario statistics stay correct.
//
// Disciplines are driven from a single sim.Runner and need no locking.
type Discipline interface {
	// Enqueue offers p to the queue. If the discipline drops a packet
	// (the arriving one or a queued victim) it must invoke the drop
	// hook for it.
	Enqueue(p *packet.Packet)
	// Dequeue removes and returns the next packet to transmit, or nil
	// if the queue is empty.
	Dequeue() *packet.Packet
	// Len returns the number of queued packets.
	Len() int
	// Bytes returns the total queued bytes.
	Bytes() int
	// SetDropHook registers fn to be called for every dropped packet,
	// replacing any previously installed hooks.
	SetDropHook(fn func(*packet.Packet))
	// AddDropHook registers fn alongside the existing hooks, so stats
	// accounting and tracing subscribers can coexist. Hooks run in
	// registration order.
	AddDropHook(fn func(*packet.Packet))
}

// DropHook is a helper embedded by disciplines to hold the chain of
// drop callbacks.
type DropHook struct {
	fns []func(*packet.Packet)
}

// SetDropHook implements the Discipline method: it replaces the whole
// chain with fn.
func (h *DropHook) SetDropHook(fn func(*packet.Packet)) {
	h.fns = h.fns[:0]
	if fn != nil {
		h.fns = append(h.fns, fn)
	}
}

// AddDropHook implements the Discipline method: it appends fn to the
// chain.
func (h *DropHook) AddDropHook(fn func(*packet.Packet)) {
	if fn != nil {
		h.fns = append(h.fns, fn)
	}
}

// Drop invokes every registered hook for p, in registration order.
func (h *DropHook) Drop(p *packet.Packet) {
	for _, fn := range h.fns {
		fn(p)
	}
}

// FIFO is a simple growable ring buffer of packets, the building block
// for every discipline in this package.
type FIFO struct {
	buf   []*packet.Packet
	head  int
	n     int
	bytes int
}

// Len returns the number of queued packets.
func (f *FIFO) Len() int { return f.n }

// Bytes returns the total queued bytes.
func (f *FIFO) Bytes() int { return f.bytes }

// Push appends p at the tail.
func (f *FIFO) Push(p *packet.Packet) {
	if f.n == len(f.buf) {
		f.grow()
	}
	f.buf[(f.head+f.n)%len(f.buf)] = p
	f.n++
	f.bytes += p.Size
}

// Pop removes and returns the head packet, or nil if empty.
func (f *FIFO) Pop() *packet.Packet {
	if f.n == 0 {
		return nil
	}
	p := f.buf[f.head]
	f.buf[f.head] = nil
	f.head = (f.head + 1) % len(f.buf)
	f.n--
	f.bytes -= p.Size
	return p
}

// Peek returns the head packet without removing it, or nil if empty.
func (f *FIFO) Peek() *packet.Packet {
	if f.n == 0 {
		return nil
	}
	return f.buf[f.head]
}

// PopTail removes and returns the most recently pushed packet, or nil
// if empty. Used by disciplines that drop from the tail of a victim
// queue.
func (f *FIFO) PopTail() *packet.Packet {
	if f.n == 0 {
		return nil
	}
	i := (f.head + f.n - 1) % len(f.buf)
	p := f.buf[i]
	f.buf[i] = nil
	f.n--
	f.bytes -= p.Size
	return p
}

func (f *FIFO) grow() {
	size := len(f.buf) * 2
	if size == 0 {
		size = 16
	}
	nb := make([]*packet.Packet, size) //taq:allow noalloc amortized doubling; capacity is retained for the FIFO's lifetime
	for i := 0; i < f.n; i++ {
		nb[i] = f.buf[(f.head+i)%len(f.buf)]
	}
	f.buf = nb
	f.head = 0
}
