package queue

import (
	"math"
	"math/rand"

	"taq/internal/packet"
	"taq/internal/sim"
)

// REDConfig parameterizes a RED queue (Floyd & Jacobson 1993). Zero
// values are filled with the classic recommendations relative to the
// capacity.
type REDConfig struct {
	// Capacity is the hard limit in packets.
	Capacity int
	// MinTh and MaxTh are the average-queue thresholds in packets.
	// Defaults: Capacity/4 and 3*Capacity/4 (min 1 apart).
	MinTh, MaxTh float64
	// MaxP is the drop probability at MaxTh. Default 0.1.
	MaxP float64
	// Weight is the EWMA weight w_q. Default 0.002.
	Weight float64
	// MeanPktTime is the estimated transmission time of one packet at
	// the output link, used to decay the average while the queue is
	// idle. Required (no sensible default exists without link speed).
	MeanPktTime sim.Time
	// Gentle enables the "gentle RED" variant: between MaxTh and
	// 2·MaxTh the drop probability ramps linearly from MaxP to 1
	// instead of jumping straight to forced drops.
	Gentle bool
}

// RED implements Random Early Detection with the count-based
// uniformization from the original paper. The paper under reproduction
// (§2.4) finds RED behaves like DropTail in small packet regimes because
// the average queue sits pinned above MaxTh; the implementation here is
// used to verify that claim.
type RED struct {
	DropHook
	cfg   REDConfig
	fifo  FIFO
	now   func() sim.Time
	rng   *rand.Rand
	avg   float64
	count int // packets since last early drop
	// idleSince is the time the queue went empty, or -1 while busy.
	idleSince sim.Time
}

// NewRED returns a RED queue. now supplies the current virtual time and
// rng the randomness source for drop decisions.
func NewRED(cfg REDConfig, now func() sim.Time, rng *rand.Rand) *RED {
	if cfg.Capacity < 1 {
		cfg.Capacity = 1
	}
	if cfg.MinTh == 0 {
		cfg.MinTh = math.Max(1, float64(cfg.Capacity)/4)
	}
	if cfg.MaxTh == 0 {
		cfg.MaxTh = math.Max(cfg.MinTh+1, 3*float64(cfg.Capacity)/4)
	}
	if cfg.MaxP == 0 {
		cfg.MaxP = 0.1
	}
	if cfg.Weight == 0 {
		cfg.Weight = 0.002
	}
	if cfg.MeanPktTime <= 0 {
		cfg.MeanPktTime = sim.Millisecond
	}
	return &RED{cfg: cfg, now: now, rng: rng, count: -1, idleSince: 0}
}

// AvgQueue returns the current EWMA of the queue length, for tests and
// instrumentation.
func (q *RED) AvgQueue() float64 { return q.avg }

// Enqueue implements Discipline.
//
//taq:hotpath per-packet path of the RED baseline
func (q *RED) Enqueue(p *packet.Packet) {
	// Update the average queue size, decaying across idle periods.
	if q.fifo.Len() == 0 && q.idleSince >= 0 {
		m := float64(q.now()-q.idleSince) / float64(q.cfg.MeanPktTime)
		if m > 0 {
			q.avg *= math.Pow(1-q.cfg.Weight, m)
		}
		q.idleSince = -1
	}
	q.avg = (1-q.cfg.Weight)*q.avg + q.cfg.Weight*float64(q.fifo.Len())

	switch {
	case q.fifo.Len() >= q.cfg.Capacity:
		// Hard limit: forced drop.
		q.count = 0
		q.Drop(p)
		return
	case q.cfg.Gentle && q.avg >= q.cfg.MaxTh && q.avg < 2*q.cfg.MaxTh:
		// Gentle region: ramp MaxP → 1 over [MaxTh, 2·MaxTh).
		pb := q.cfg.MaxP + (1-q.cfg.MaxP)*(q.avg-q.cfg.MaxTh)/q.cfg.MaxTh
		if q.rng.Float64() < pb {
			q.count = 0
			q.Drop(p)
			return
		}
		q.count++
	case q.avg >= q.cfg.MaxTh:
		q.count = 0
		q.Drop(p)
		return
	case q.avg >= q.cfg.MinTh:
		q.count++
		pb := q.cfg.MaxP * (q.avg - q.cfg.MinTh) / (q.cfg.MaxTh - q.cfg.MinTh)
		pa := pb
		if d := 1 - float64(q.count)*pb; d > 0 {
			pa = pb / d
		} else {
			pa = 1
		}
		if q.rng.Float64() < pa {
			q.count = 0
			q.Drop(p)
			return
		}
	default:
		q.count = -1
	}
	q.fifo.Push(p)
}

// Dequeue implements Discipline.
//
//taq:hotpath per-packet path of the RED baseline
func (q *RED) Dequeue() *packet.Packet {
	p := q.fifo.Pop()
	if p != nil && q.fifo.Len() == 0 {
		q.idleSince = q.now()
	}
	return p
}

// Len implements Discipline.
func (q *RED) Len() int { return q.fifo.Len() }

// Bytes implements Discipline.
func (q *RED) Bytes() int { return q.fifo.Bytes() }

var _ Discipline = (*RED)(nil)
