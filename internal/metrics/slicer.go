package metrics

import (
	"sort"

	"taq/internal/packet"
	"taq/internal/sim"
)

// Slicer accumulates per-flow delivered bytes into fixed-width time
// slices. It powers the short- and long-term fairness analyses
// (Figs 2, 8, 11) and flow-evolution classification (Fig 9).
//
// Flows must be registered (with their lifetime) so that slices in
// which a live flow delivered nothing count as zero allocations —
// that is exactly the "shut-out flows" effect the paper measures.
type Slicer struct {
	width sim.Time
	flows map[packet.FlowID]*flowSeries
}

type flowSeries struct {
	start, end sim.Time // lifetime; end < 0 means still alive
	bytes      map[int]float64
}

// NewSlicer creates a slicer with the given slice width (the paper
// uses 20-second slices for short-term fairness).
func NewSlicer(width sim.Time) *Slicer {
	if width <= 0 {
		width = sim.Second
	}
	return &Slicer{width: width, flows: make(map[packet.FlowID]*flowSeries)}
}

// Width returns the slice width.
func (s *Slicer) Width() sim.Time { return s.width }

// Register declares a flow alive from start. Deliveries for
// unregistered flows are registered implicitly at first delivery.
func (s *Slicer) Register(f packet.FlowID, start sim.Time) {
	if _, ok := s.flows[f]; !ok {
		s.flows[f] = &flowSeries{start: start, end: -1, bytes: make(map[int]float64)}
	}
}

// Finish marks a flow's lifetime end (e.g. transfer completed), so
// later slices no longer count it as shut out.
func (s *Slicer) Finish(f packet.FlowID, end sim.Time) {
	if fs, ok := s.flows[f]; ok {
		fs.end = end
	}
}

// Record adds delivered bytes for flow f at virtual time at.
func (s *Slicer) Record(f packet.FlowID, at sim.Time, bytes int) {
	fs, ok := s.flows[f]
	if !ok {
		s.Register(f, at)
		fs = s.flows[f]
	}
	fs.bytes[int(at/s.width)] += float64(bytes)
}

// NumFlows returns the number of registered flows.
func (s *Slicer) NumFlows() int { return len(s.flows) }

// sortedIDs returns the registered flow ids in ascending order, so
// share vectors and floating-point sums are assembled deterministically
// rather than in map order.
func (s *Slicer) sortedIDs() []packet.FlowID {
	ids := make([]packet.FlowID, 0, len(s.flows))
	for id := range s.flows {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// aliveIn reports whether the flow overlaps slice i.
func (fs *flowSeries) aliveIn(i int, width sim.Time) bool {
	sliceStart := sim.Time(i) * width
	sliceEnd := sliceStart + width
	if fs.start >= sliceEnd {
		return false
	}
	return fs.end < 0 || fs.end > sliceStart
}

// SliceShares returns the per-flow delivered bytes in slice i for all
// flows alive during that slice (zeros included).
func (s *Slicer) SliceShares(i int) []float64 {
	var out []float64
	for _, id := range s.sortedIDs() {
		fs := s.flows[id]
		if fs.aliveIn(i, s.width) {
			out = append(out, fs.bytes[i])
		}
	}
	return out
}

// SliceJFI returns the Jain index of slice i's shares.
func (s *Slicer) SliceJFI(i int) float64 { return JainIndex(s.SliceShares(i)) }

// MeanSliceJFI averages the per-slice Jain index over slices
// [from, to) — the paper's "short-term fairness over 20 s slices".
// Slices with no live flows are skipped.
func (s *Slicer) MeanSliceJFI(from, to int) float64 {
	sum, n := 0.0, 0
	for i := from; i < to; i++ {
		shares := s.SliceShares(i)
		if len(shares) == 0 {
			continue
		}
		sum += JainIndex(shares)
		n++
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// TotalJFI returns the Jain index of total bytes over slices
// [from, to) — long-term fairness.
func (s *Slicer) TotalJFI(from, to int) float64 {
	var shares []float64
	for _, id := range s.sortedIDs() {
		fs := s.flows[id]
		total := 0.0
		alive := false
		for i := from; i < to; i++ {
			if fs.aliveIn(i, s.width) {
				alive = true
				total += fs.bytes[i]
			}
		}
		if alive {
			shares = append(shares, total)
		}
	}
	return JainIndex(shares)
}

// FlowTotal returns all bytes recorded for flow f.
func (s *Slicer) FlowTotal(f packet.FlowID) float64 {
	fs, ok := s.flows[f]
	if !ok {
		return 0
	}
	slices := make([]int, 0, len(fs.bytes))
	for i := range fs.bytes {
		slices = append(slices, i)
	}
	sort.Ints(slices)
	t := 0.0
	for _, i := range slices {
		t += fs.bytes[i]
	}
	return t
}

// EvolutionCounts classifies, per slice, each live flow by its
// progress transition from the previous slice (Fig 9):
//
//	Maintained: delivered in both the previous and current slice
//	Dropped:    delivered previously, silent now (just shut out)
//	Arriving:   silent previously, delivering now
//	Stalled:    silent in both (stuck in repetitive timeouts)
type EvolutionCounts struct {
	Slices     []int // slice indexes (from 1: needs a predecessor)
	Arriving   []int
	Dropped    []int
	Maintained []int
	Stalled    []int
}

// Evolution computes flow-evolution counts for slices [from+1, to).
func (s *Slicer) Evolution(from, to int) EvolutionCounts {
	var ev EvolutionCounts
	ids := s.sortedIDs()
	for i := from + 1; i < to; i++ {
		var arr, drp, mnt, stl int
		for _, id := range ids {
			fs := s.flows[id]
			if !fs.aliveIn(i, s.width) || !fs.aliveIn(i-1, s.width) {
				continue
			}
			prev := fs.bytes[i-1] > 0
			cur := fs.bytes[i] > 0
			switch {
			case prev && cur:
				mnt++
			case prev && !cur:
				drp++
			case !prev && cur:
				arr++
			default:
				stl++
			}
		}
		ev.Slices = append(ev.Slices, i)
		ev.Arriving = append(ev.Arriving, arr)
		ev.Dropped = append(ev.Dropped, drp)
		ev.Maintained = append(ev.Maintained, mnt)
		ev.Stalled = append(ev.Stalled, stl)
	}
	return ev
}

// MeanStalled returns the average stalled-flow count across the
// classified slices.
func (ev *EvolutionCounts) MeanStalled() float64 { return meanInts(ev.Stalled) }

// MeanMaintained returns the average maintained-flow count.
func (ev *EvolutionCounts) MeanMaintained() float64 { return meanInts(ev.Maintained) }

func meanInts(xs []int) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0
	for _, x := range xs {
		s += x
	}
	return float64(s) / float64(len(xs))
}
