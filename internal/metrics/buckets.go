package metrics

import (
	"math"
	"sort"
)

// SizeSample pairs an object size with a measured value (e.g. download
// time in seconds), the raw data behind Fig 1's scatter plot.
type SizeSample struct {
	SizeBytes int
	Value     float64
}

// BucketStat summarizes the samples falling into one logarithmic size
// bucket — the per-bucket min / max / average / 10th / 90th percentile
// curves of Fig 1.
type BucketStat struct {
	Lo, Hi   float64 // bucket bounds in bytes, [Lo, Hi)
	N        int
	Avg      float64
	Min, Max float64
	P10, P90 float64
}

// BucketStats assigns each sample to a logarithmic bucket
// (perDecade buckets per factor of 10, e.g. 2 gives …,100B,316B,1KB,…)
// and summarizes each non-empty bucket, sorted by size.
func BucketStats(samples []SizeSample, perDecade int) []BucketStat {
	if perDecade < 1 {
		perDecade = 1
	}
	groups := make(map[int][]float64)
	for _, s := range samples {
		if s.SizeBytes < 1 {
			continue
		}
		b := int(math.Floor(math.Log10(float64(s.SizeBytes)) * float64(perDecade)))
		groups[b] = append(groups[b], s.Value)
	}
	keys := make([]int, 0, len(groups))
	for k := range groups {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	out := make([]BucketStat, 0, len(keys))
	for _, k := range keys {
		vals := groups[k]
		var c CDF
		for _, v := range vals {
			c.Add(v)
		}
		out = append(out, BucketStat{
			Lo:  math.Pow(10, float64(k)/float64(perDecade)),
			Hi:  math.Pow(10, float64(k+1)/float64(perDecade)),
			N:   len(vals),
			Avg: c.Mean(),
			Min: c.Min(),
			Max: c.Max(),
			P10: c.Percentile(10),
			P90: c.Percentile(90),
		})
	}
	return out
}

// LogBuckets returns n log-spaced histogram upper bounds starting at
// lo, with perDecade buckets per factor of ten:
//
//	bounds[i] = lo * 10^(i/perDecade)
//
// This is the single source of bucket boundaries shared by the figure
// sweeps (CDF.BucketCounts) and the live obs histograms
// (obs.TimeBuckets), so a percentile read off /metrics lands in the
// same bucket a figure sweep would report.
func LogBuckets(lo float64, perDecade, n int) []float64 {
	if perDecade < 1 {
		perDecade = 1
	}
	if n < 1 {
		n = 1
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = lo * math.Pow(10, float64(i)/float64(perDecade))
	}
	return out
}

// BucketCounts projects the samples onto the given ascending upper
// bounds using Prometheus "le" semantics (a sample lands in the first
// bucket whose bound is >= the sample). The result has len(bounds)+1
// entries; the last is the overflow bucket. Counts are per-bucket, not
// cumulative.
func (c *CDF) BucketCounts(bounds []float64) []int {
	out := make([]int, len(bounds)+1)
	for _, v := range c.vals {
		i := sort.SearchFloat64s(bounds, v) // first bound >= v
		out[i]++
	}
	return out
}

// SpreadOrders returns how many orders of magnitude separate the
// bucket's min and max (Fig 1's headline: "download times vary by over
// two orders of magnitude").
func (b BucketStat) SpreadOrders() float64 {
	if b.Min <= 0 || b.Max <= 0 {
		return 0
	}
	return math.Log10(b.Max / b.Min)
}
