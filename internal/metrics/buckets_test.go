package metrics

import (
	"math"
	"testing"
)

// TestPercentileRegressionTable pins Percentile's documented edge
// behavior: empty input, single sample, clamping outside [0,100], and
// linear interpolation between closest ranks in between. These are the
// semantics the obs histogram quantiles and figure sweeps both build
// on — a silent change here skews every percentile in the paper's
// evaluation, so the table is exhaustive on the edges.
func TestPercentileRegressionTable(t *testing.T) {
	cases := []struct {
		name    string
		samples []float64
		p       float64
		want    float64 // NaN means "want NaN"
	}{
		{"empty p50", nil, 50, math.NaN()},
		{"empty p0", nil, 0, math.NaN()},
		{"empty p100", nil, 100, math.NaN()},
		{"single p0", []float64{7}, 0, 7},
		{"single p50", []float64{7}, 50, 7},
		{"single p100", []float64{7}, 100, 7},
		{"single p-negative", []float64{7}, -10, 7},
		{"single p-over", []float64{7}, 250, 7},
		{"pair p0", []float64{1, 3}, 0, 1},
		{"pair p50 interpolates", []float64{1, 3}, 50, 2},
		{"pair p25 interpolates", []float64{1, 3}, 25, 1.5},
		{"pair p100", []float64{1, 3}, 100, 3},
		{"clamp below", []float64{1, 2, 3}, -5, 1},
		{"clamp above", []float64{1, 2, 3}, 105, 3},
		{"triple p50 exact rank", []float64{1, 2, 3}, 50, 2},
		{"unsorted input", []float64{3, 1, 2}, 50, 2},
		{"quad p75", []float64{10, 20, 30, 40}, 75, 32.5},
	}
	for _, c := range cases {
		var cdf CDF
		for _, v := range c.samples {
			cdf.Add(v)
		}
		got := cdf.Percentile(c.p)
		if math.IsNaN(c.want) {
			if !math.IsNaN(got) {
				t.Errorf("%s: got %v, want NaN", c.name, got)
			}
			continue
		}
		if math.Abs(got-c.want) > 1e-12 {
			t.Errorf("%s: got %v, want %v", c.name, got, c.want)
		}
	}
}

func TestLogBuckets(t *testing.T) {
	b := LogBuckets(1e-4, 4, 9)
	if len(b) != 9 {
		t.Fatalf("len = %d, want 9", len(b))
	}
	if b[0] != 1e-4 {
		t.Fatalf("b[0] = %v, want 1e-4", b[0])
	}
	// Four per decade: index 4 is one decade up, index 8 two.
	if math.Abs(b[4]-1e-3) > 1e-12 {
		t.Fatalf("b[4] = %v, want 1e-3", b[4])
	}
	if math.Abs(b[8]-1e-2) > 1e-10 {
		t.Fatalf("b[8] = %v, want 1e-2", b[8])
	}
	for i := 1; i < len(b); i++ {
		if b[i] <= b[i-1] {
			t.Fatalf("bounds not strictly ascending at %d: %v", i, b)
		}
	}
	// Degenerate arguments clamp instead of panicking.
	if got := LogBuckets(1, 0, 0); len(got) != 1 || got[0] != 1 {
		t.Fatalf("clamped LogBuckets = %v", got)
	}
}

func TestBucketCounts(t *testing.T) {
	var c CDF
	for _, v := range []float64{0.5, 1, 1.5, 10, 11, 1000} {
		c.Add(v)
	}
	got := c.BucketCounts([]float64{1, 10, 100})
	// le semantics: 0.5 and 1 in bucket 0; 1.5 and 10 in bucket 1; 11
	// in bucket 2; 1000 overflows.
	want := []int{2, 2, 1, 1}
	if len(got) != len(want) {
		t.Fatalf("len = %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("bucket %d = %d, want %d (%v)", i, got[i], want[i], got)
		}
	}
	var empty CDF
	if got := empty.BucketCounts([]float64{1}); got[0] != 0 || got[1] != 0 {
		t.Fatalf("empty BucketCounts = %v", got)
	}
}
