package metrics

import (
	"taq/internal/packet"
	"taq/internal/sim"
)

// Census tallies, per epoch (RTT), how many data packets each flow put
// through the bottleneck, building the empirical "k packets sent per
// epoch" distribution that Fig 6 compares against the Markov model's
// stationary distribution. Classes above MaxClass are clamped (the
// model is truncated at Wmax).
type Census struct {
	MaxClass int
	counts   map[packet.FlowID]int
	hist     map[int]uint64
	epochs   uint64
}

// NewCensus creates a census clamping classes at maxClass (the paper
// uses Wmax = 6, displaying classes 0..5).
func NewCensus(maxClass int) *Census {
	if maxClass < 1 {
		maxClass = 6
	}
	return &Census{
		MaxClass: maxClass,
		counts:   make(map[packet.FlowID]int),
		hist:     make(map[int]uint64),
	}
}

// Register declares a flow so that its silent epochs are counted.
func (c *Census) Register(f packet.FlowID) {
	if _, ok := c.counts[f]; !ok {
		c.counts[f] = 0
	}
}

// Observe records one data packet of flow f crossing the bottleneck.
func (c *Census) Observe(f packet.FlowID) {
	c.counts[f]++
}

// Roll closes the current epoch: every registered flow contributes one
// observation of its packet count class, and counters reset. The
// caller schedules Roll once per RTT.
func (c *Census) Roll() {
	for f, n := range c.counts {
		if n > c.MaxClass {
			n = c.MaxClass
		}
		c.hist[n]++
		c.counts[f] = 0
		c.epochs++
	}
}

// Epochs returns the total flow-epochs observed.
func (c *Census) Epochs() uint64 { return c.epochs }

// Distribution returns the empirical probability of each class 0..MaxClass.
func (c *Census) Distribution() map[int]float64 {
	out := make(map[int]float64, c.MaxClass+1)
	if c.epochs == 0 {
		return out
	}
	for k := 0; k <= c.MaxClass; k++ {
		out[k] = float64(c.hist[k]) / float64(c.epochs)
	}
	return out
}

// ScheduleRolls arranges for the census to roll every epoch until the
// runner stops (simulations end by RunUntil, so the self-rescheduling
// timer is harmless).
func (c *Census) ScheduleRolls(run sim.Runner, epoch sim.Time) {
	var tick func()
	tick = func() {
		c.Roll()
		sim.After(run, epoch, tick)
	}
	sim.After(run, epoch, tick)
}
