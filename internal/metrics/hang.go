package metrics

import (
	"taq/internal/packet"
	"taq/internal/sim"
)

// HangTracker measures user-perceived hangs (§2.3): for each user
// (flow pool), the longest interval during which none of the user's
// connections delivered any data.
type HangTracker struct {
	last map[packet.PoolID]sim.Time // time of last delivery (or start)
	max  map[packet.PoolID]sim.Time // longest silent gap so far
}

// NewHangTracker returns an empty tracker.
func NewHangTracker() *HangTracker {
	return &HangTracker{
		last: make(map[packet.PoolID]sim.Time),
		max:  make(map[packet.PoolID]sim.Time),
	}
}

// Start registers a user pool at its session start time; the gap until
// its first delivery counts as a hang.
func (h *HangTracker) Start(pool packet.PoolID, at sim.Time) {
	if _, ok := h.last[pool]; !ok {
		h.last[pool] = at
		h.max[pool] = 0
	}
}

// Touch records a delivery for the pool at time at.
func (h *HangTracker) Touch(pool packet.PoolID, at sim.Time) {
	prev, ok := h.last[pool]
	if !ok {
		h.Start(pool, at)
		return
	}
	if gap := at - prev; gap > h.max[pool] {
		h.max[pool] = gap
	}
	h.last[pool] = at
}

// Finish closes every pool's trailing gap at the experiment end time.
func (h *HangTracker) Finish(at sim.Time) {
	for pool, prev := range h.last {
		if gap := at - prev; gap > h.max[pool] {
			h.max[pool] = gap
		}
	}
}

// MaxHang returns the longest hang observed for the pool.
func (h *HangTracker) MaxHang(pool packet.PoolID) sim.Time { return h.max[pool] }

// NumPools returns the number of tracked user pools.
func (h *HangTracker) NumPools() int { return len(h.max) }

// FractionExceeding returns the fraction of pools whose longest hang
// is at least d.
func (h *HangTracker) FractionExceeding(d sim.Time) float64 {
	if len(h.max) == 0 {
		return 0
	}
	n := 0
	for _, m := range h.max {
		if m >= d {
			n++
		}
	}
	return float64(n) / float64(len(h.max))
}
