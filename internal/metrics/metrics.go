// Package metrics implements the measurement machinery the paper's
// evaluation is built on: the Jain Fairness Index over time slices
// (Figs 2, 8, 11), flow-evolution classification (Fig 9), user-
// perceived hang detection (§2.3), download-time CDFs (Fig 12),
// log-bucketed download-time statistics (Fig 1), and the per-epoch
// packets-sent census used to validate the Markov model (Fig 6).
package metrics

import (
	"math"
	"sort"
)

// JainIndex computes the Jain Fairness Index (Σx)²/(n·Σx²) of the
// allocations xs: 1 for exactly equal shares, 1/n when one member hogs
// everything. An empty or all-zero slice yields 0.
func JainIndex(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum, sumSq float64
	for _, x := range xs {
		sum += x
		sumSq += x * x
	}
	if sumSq == 0 {
		return 0
	}
	return sum * sum / (float64(len(xs)) * sumSq)
}

// CDF accumulates samples and answers percentile queries.
type CDF struct {
	vals   []float64
	sorted bool
}

// Add appends a sample.
func (c *CDF) Add(v float64) {
	c.vals = append(c.vals, v)
	c.sorted = false
}

// N returns the number of samples.
func (c *CDF) N() int { return len(c.vals) }

func (c *CDF) sort() {
	if !c.sorted {
		sort.Float64s(c.vals)
		c.sorted = true
	}
}

// Percentile returns the p-th percentile (p in [0,100]) by linear
// interpolation between the closest ranks (the numpy default): rank
// p/100*(n-1) is split into an integer part and a fraction, and the
// two neighboring sorted samples are blended by that fraction.
//
// Pinned edge behavior (see the regression table in metrics_test.go):
// no samples returns NaN; a single sample is returned for every p;
// p <= 0 and p >= 100 clamp to the smallest and largest sample.
func (c *CDF) Percentile(p float64) float64 {
	if len(c.vals) == 0 {
		return math.NaN()
	}
	c.sort()
	if p <= 0 {
		return c.vals[0]
	}
	if p >= 100 {
		return c.vals[len(c.vals)-1]
	}
	rank := p / 100 * float64(len(c.vals)-1)
	lo := int(rank)
	frac := rank - float64(lo)
	if lo+1 >= len(c.vals) {
		return c.vals[lo]
	}
	return c.vals[lo]*(1-frac) + c.vals[lo+1]*frac
}

// Median returns the 50th percentile.
func (c *CDF) Median() float64 { return c.Percentile(50) }

// Min returns the smallest sample (NaN when empty).
func (c *CDF) Min() float64 { return c.Percentile(0) }

// Max returns the largest sample (NaN when empty).
func (c *CDF) Max() float64 { return c.Percentile(100) }

// Mean returns the arithmetic mean (NaN when empty).
func (c *CDF) Mean() float64 {
	if len(c.vals) == 0 {
		return math.NaN()
	}
	s := 0.0
	for _, v := range c.vals {
		s += v
	}
	return s / float64(len(c.vals))
}

// Points returns up to n evenly spaced (value, cumulative-fraction)
// pairs suitable for plotting the CDF.
func (c *CDF) Points(n int) []CDFPoint {
	if len(c.vals) == 0 || n < 1 {
		return nil
	}
	c.sort()
	if n > len(c.vals) {
		n = len(c.vals)
	}
	out := make([]CDFPoint, 0, n)
	for i := 0; i < n; i++ {
		idx := i * (len(c.vals) - 1) / max(n-1, 1)
		out = append(out, CDFPoint{
			Value:    c.vals[idx],
			Fraction: float64(idx+1) / float64(len(c.vals)),
		})
	}
	return out
}

// CDFPoint is one point of a plotted CDF.
type CDFPoint struct {
	Value    float64 // sample value (e.g. download time in seconds)
	Fraction float64 // fraction of samples ≤ Value
}

// FractionBelow returns the fraction of samples ≤ v.
func (c *CDF) FractionBelow(v float64) float64 {
	if len(c.vals) == 0 {
		return math.NaN()
	}
	c.sort()
	i := sort.SearchFloat64s(c.vals, v)
	// Include equal values.
	for i < len(c.vals) && c.vals[i] <= v {
		i++
	}
	return float64(i) / float64(len(c.vals))
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
