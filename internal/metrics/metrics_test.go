package metrics

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"taq/internal/packet"
	"taq/internal/sim"
)

func TestJainIndexExtremes(t *testing.T) {
	if j := JainIndex([]float64{5, 5, 5, 5}); math.Abs(j-1) > 1e-12 {
		t.Errorf("equal shares JFI = %v, want 1", j)
	}
	if j := JainIndex([]float64{10, 0, 0, 0}); math.Abs(j-0.25) > 1e-12 {
		t.Errorf("hog JFI = %v, want 1/4", j)
	}
	if JainIndex(nil) != 0 || JainIndex([]float64{0, 0}) != 0 {
		t.Error("degenerate inputs should give 0")
	}
}

// Property: JFI is always in [1/n, 1] for non-negative non-zero inputs
// and is scale invariant.
func TestJainIndexProperty(t *testing.T) {
	f := func(raw []uint8) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		any := false
		for i, r := range raw {
			xs[i] = float64(r)
			if r > 0 {
				any = true
			}
		}
		if !any {
			return JainIndex(xs) == 0
		}
		j := JainIndex(xs)
		n := float64(len(xs))
		if j < 1/n-1e-12 || j > 1+1e-12 {
			return false
		}
		scaled := make([]float64, len(xs))
		for i := range xs {
			scaled[i] = xs[i] * 7.5
		}
		return math.Abs(JainIndex(scaled)-j) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(4))}); err != nil {
		t.Error(err)
	}
}

func TestCDFPercentiles(t *testing.T) {
	var c CDF
	for i := 1; i <= 100; i++ {
		c.Add(float64(i))
	}
	if got := c.Median(); math.Abs(got-50.5) > 1e-9 {
		t.Errorf("median = %v, want 50.5", got)
	}
	if c.Min() != 1 || c.Max() != 100 {
		t.Errorf("min/max = %v/%v", c.Min(), c.Max())
	}
	if got := c.Percentile(90); got < 89 || got > 92 {
		t.Errorf("p90 = %v", got)
	}
	if got := c.Mean(); math.Abs(got-50.5) > 1e-9 {
		t.Errorf("mean = %v", got)
	}
	if c.N() != 100 {
		t.Errorf("N = %d", c.N())
	}
}

func TestCDFEmpty(t *testing.T) {
	var c CDF
	if !math.IsNaN(c.Median()) || !math.IsNaN(c.Mean()) || !math.IsNaN(c.FractionBelow(1)) {
		t.Error("empty CDF should return NaN")
	}
	if c.Points(5) != nil {
		t.Error("empty CDF Points should be nil")
	}
}

func TestCDFFractionBelow(t *testing.T) {
	var c CDF
	for _, v := range []float64{1, 2, 2, 3} {
		c.Add(v)
	}
	if got := c.FractionBelow(2); math.Abs(got-0.75) > 1e-12 {
		t.Errorf("FractionBelow(2) = %v, want 0.75", got)
	}
	if got := c.FractionBelow(0.5); got != 0 {
		t.Errorf("FractionBelow(0.5) = %v, want 0", got)
	}
}

func TestCDFPointsMonotone(t *testing.T) {
	var c CDF
	for i := 0; i < 57; i++ {
		c.Add(float64((i * 37) % 100))
	}
	pts := c.Points(10)
	for i := 1; i < len(pts); i++ {
		if pts[i].Value < pts[i-1].Value || pts[i].Fraction < pts[i-1].Fraction {
			t.Fatalf("CDF points not monotone: %+v", pts)
		}
	}
}

func TestSlicerJFI(t *testing.T) {
	s := NewSlicer(20 * sim.Second)
	for f := packet.FlowID(0); f < 4; f++ {
		s.Register(f, 0)
	}
	// Slice 0: only flow 0 delivers. Slice 1: all deliver equally.
	s.Record(0, 5*sim.Second, 1000)
	for f := packet.FlowID(0); f < 4; f++ {
		s.Record(f, 25*sim.Second, 500)
	}
	if j := s.SliceJFI(0); math.Abs(j-0.25) > 1e-12 {
		t.Errorf("slice 0 JFI = %v, want 0.25", j)
	}
	if j := s.SliceJFI(1); math.Abs(j-1) > 1e-12 {
		t.Errorf("slice 1 JFI = %v, want 1", j)
	}
	mean := s.MeanSliceJFI(0, 2)
	if math.Abs(mean-0.625) > 1e-12 {
		t.Errorf("mean JFI = %v, want 0.625", mean)
	}
}

func TestSlicerLongTermVsShortTerm(t *testing.T) {
	// Two flows alternate slices: short-term unfair, long-term fair —
	// the paper's central §2.3 observation.
	s := NewSlicer(20 * sim.Second)
	s.Register(0, 0)
	s.Register(1, 0)
	for i := 0; i < 10; i++ {
		f := packet.FlowID(i % 2)
		s.Record(f, sim.Time(i)*20*sim.Second+sim.Second, 1000)
	}
	if st := s.MeanSliceJFI(0, 10); st > 0.6 {
		t.Errorf("short-term JFI = %v, want ≈0.5", st)
	}
	if lt := s.TotalJFI(0, 10); lt < 0.99 {
		t.Errorf("long-term JFI = %v, want ≈1", lt)
	}
}

func TestSlicerLifetimes(t *testing.T) {
	s := NewSlicer(10 * sim.Second)
	s.Register(0, 0)
	s.Register(1, 25*sim.Second) // starts in slice 2
	s.Record(0, 5*sim.Second, 100)
	// Slice 0 should only see flow 0.
	if n := len(s.SliceShares(0)); n != 1 {
		t.Errorf("slice 0 has %d flows, want 1", n)
	}
	s.Finish(0, 15*sim.Second)
	// Slice 2: flow 0 finished, flow 1 alive.
	if n := len(s.SliceShares(2)); n != 1 {
		t.Errorf("slice 2 has %d flows, want 1", n)
	}
	if s.NumFlows() != 2 {
		t.Errorf("NumFlows = %d", s.NumFlows())
	}
}

func TestSlicerImplicitRegister(t *testing.T) {
	s := NewSlicer(sim.Second)
	s.Record(7, 500*sim.Millisecond, 42)
	if s.FlowTotal(7) != 42 {
		t.Errorf("FlowTotal = %v", s.FlowTotal(7))
	}
	if s.FlowTotal(99) != 0 {
		t.Error("unknown flow should total 0")
	}
}

func TestEvolutionClassification(t *testing.T) {
	s := NewSlicer(10 * sim.Second)
	for f := packet.FlowID(0); f < 4; f++ {
		s.Register(f, 0)
	}
	// Slice 0: flows 0,1 deliver. Slice 1: flows 1,2 deliver.
	s.Record(0, sim.Second, 1)
	s.Record(1, sim.Second, 1)
	s.Record(1, 11*sim.Second, 1)
	s.Record(2, 11*sim.Second, 1)
	ev := s.Evolution(0, 2)
	if len(ev.Slices) != 1 {
		t.Fatalf("slices = %v", ev.Slices)
	}
	// flow 0: dropped; flow 1: maintained; flow 2: arriving; flow 3: stalled.
	if ev.Dropped[0] != 1 || ev.Maintained[0] != 1 || ev.Arriving[0] != 1 || ev.Stalled[0] != 1 {
		t.Errorf("evolution = %+v", ev)
	}
	if ev.MeanStalled() != 1 || ev.MeanMaintained() != 1 {
		t.Errorf("means = %v %v", ev.MeanStalled(), ev.MeanMaintained())
	}
}

func TestHangTracker(t *testing.T) {
	h := NewHangTracker()
	h.Start(1, 0)
	h.Touch(1, 5*sim.Second)
	h.Touch(1, 6*sim.Second)
	h.Touch(1, 30*sim.Second) // 24s gap
	h.Finish(40 * sim.Second) // trailing 10s gap
	if got := h.MaxHang(1); got != 24*sim.Second {
		t.Errorf("MaxHang = %v, want 24s", got)
	}
	h2 := NewHangTracker()
	h2.Start(1, 0)
	h2.Finish(60 * sim.Second)
	if got := h2.MaxHang(1); got != 60*sim.Second {
		t.Errorf("never-delivered pool hang = %v, want 60s", got)
	}
}

func TestHangFractionExceeding(t *testing.T) {
	h := NewHangTracker()
	h.Start(1, 0)
	h.Start(2, 0)
	// Pool 1 delivers every 5 s (max gap 5 s); pool 2 delivers once at
	// 30 s (max gap 30 s).
	for ts := 5 * sim.Second; ts <= 35*sim.Second; ts += 5 * sim.Second {
		h.Touch(1, ts)
	}
	h.Touch(2, 30*sim.Second)
	h.Finish(35 * sim.Second)
	if f := h.FractionExceeding(20 * sim.Second); f != 0.5 {
		t.Errorf("FractionExceeding(20s) = %v, want 0.5", f)
	}
	if f := h.FractionExceeding(5 * sim.Second); f != 1 {
		t.Errorf("FractionExceeding(5s) = %v, want 1", f)
	}
	if h.NumPools() != 2 {
		t.Errorf("NumPools = %d", h.NumPools())
	}
	// Touch on unknown pool auto-starts.
	h.Touch(3, 40*sim.Second)
	if h.NumPools() != 3 {
		t.Error("Touch should auto-start unknown pools")
	}
}

func TestBucketStats(t *testing.T) {
	samples := []SizeSample{
		{100, 1}, {150, 2}, {200, 3}, // ~100B bucket(s)
		{10000, 5}, {20000, 50}, // ~10KB
		{0, 99}, // ignored (size < 1)
	}
	stats := BucketStats(samples, 1)
	if len(stats) < 2 {
		t.Fatalf("stats = %+v", stats)
	}
	total := 0
	for _, b := range stats {
		total += b.N
		if b.Min > b.Avg || b.Avg > b.Max || b.P10 > b.P90 {
			t.Errorf("inconsistent bucket %+v", b)
		}
		if b.Lo >= b.Hi {
			t.Errorf("bucket bounds %v ≥ %v", b.Lo, b.Hi)
		}
	}
	if total != 5 {
		t.Errorf("bucketed %d samples, want 5", total)
	}
}

func TestBucketSpreadOrders(t *testing.T) {
	b := BucketStat{Min: 0.1, Max: 100}
	if got := b.SpreadOrders(); math.Abs(got-3) > 1e-12 {
		t.Errorf("SpreadOrders = %v, want 3", got)
	}
	if (BucketStat{}).SpreadOrders() != 0 {
		t.Error("zero bucket should have 0 spread")
	}
}

func TestCensus(t *testing.T) {
	c := NewCensus(6)
	c.Register(1)
	c.Register(2)
	// Epoch 1: flow 1 sends 2, flow 2 silent.
	c.Observe(1)
	c.Observe(1)
	c.Roll()
	// Epoch 2: flow 1 sends 9 (clamped to 6), flow 2 sends 1.
	for i := 0; i < 9; i++ {
		c.Observe(1)
	}
	c.Observe(2)
	c.Roll()
	d := c.Distribution()
	if c.Epochs() != 4 {
		t.Fatalf("epochs = %d, want 4", c.Epochs())
	}
	want := map[int]float64{0: 0.25, 1: 0.25, 2: 0.25, 6: 0.25}
	for k, v := range want {
		if math.Abs(d[k]-v) > 1e-12 {
			t.Errorf("class %d = %v, want %v", k, d[k], v)
		}
	}
}

func TestCensusScheduledRolls(t *testing.T) {
	e := sim.NewEngine(1)
	c := NewCensus(6)
	c.Register(1)
	c.ScheduleRolls(e, 100*sim.Millisecond)
	e.RunUntil(sim.Second)
	if c.Epochs() != 10 {
		t.Errorf("epochs = %d, want 10", c.Epochs())
	}
}

func TestCensusEmptyDistribution(t *testing.T) {
	c := NewCensus(6)
	if len(c.Distribution()) != 0 {
		t.Error("empty census should return empty distribution")
	}
}
