package link

import (
	"testing"

	"taq/internal/packet"
	"taq/internal/queue"
	"taq/internal/sim"
)

func TestTxTime(t *testing.T) {
	// 500 bytes at 1 Mbps = 4 ms.
	if got := (1 * Mbps).TxTime(500); got != 4*sim.Millisecond {
		t.Errorf("TxTime = %v, want 4ms", got)
	}
	if (Bps(0)).TxTime(500) != 0 {
		t.Error("zero rate should give zero tx time")
	}
}

func TestLinkSerialization(t *testing.T) {
	e := sim.NewEngine(1)
	var arrivals []sim.Time
	l := New(e, 1*Mbps, 10*sim.Millisecond, queue.NewDropTail(100), func(p *packet.Packet) {
		arrivals = append(arrivals, e.Now())
	})
	for i := 0; i < 3; i++ {
		l.Enqueue(&packet.Packet{Size: 500, Seq: i})
	}
	e.Run()
	// Packet i finishes serialization at (i+1)*4ms, arrives +10ms prop.
	want := []sim.Time{14 * sim.Millisecond, 18 * sim.Millisecond, 22 * sim.Millisecond}
	if len(arrivals) != 3 {
		t.Fatalf("arrivals = %v", arrivals)
	}
	for i := range want {
		if arrivals[i] != want[i] {
			t.Errorf("arrival %d = %v, want %v", i, arrivals[i], want[i])
		}
	}
	if l.SentPackets != 3 || l.SentBytes != 1500 {
		t.Errorf("stats: %d pkts %d bytes", l.SentPackets, l.SentBytes)
	}
}

func TestLinkUtilization(t *testing.T) {
	e := sim.NewEngine(1)
	l := New(e, 1*Mbps, 0, queue.NewDropTail(100), func(*packet.Packet) {})
	for i := 0; i < 25; i++ { // 25 * 4ms = 100ms busy
		l.Enqueue(&packet.Packet{Size: 500})
	}
	e.Run()
	u := l.Utilization(200 * sim.Millisecond)
	if u < 0.49 || u > 0.51 {
		t.Errorf("utilization = %f, want 0.5", u)
	}
	if l.Utilization(0) != 0 {
		t.Error("zero elapsed should give 0 utilization")
	}
}

func TestLinkDropsViaDiscipline(t *testing.T) {
	e := sim.NewEngine(1)
	q := queue.NewDropTail(2)
	drops := 0
	q.SetDropHook(func(*packet.Packet) { drops++ })
	l := New(e, 1*Mbps, 0, q, func(*packet.Packet) {})
	// Burst of 10 while one is in flight: 1 transmitting + 2 queued.
	for i := 0; i < 10; i++ {
		l.Enqueue(&packet.Packet{Size: 500})
	}
	e.Run()
	if drops != 7 {
		t.Errorf("drops = %d, want 7", drops)
	}
	if l.SentPackets != 3 {
		t.Errorf("sent = %d, want 3", l.SentPackets)
	}
}

func TestLinkResumesAfterIdle(t *testing.T) {
	e := sim.NewEngine(1)
	var n int
	l := New(e, 1*Mbps, 0, queue.NewDropTail(10), func(*packet.Packet) { n++ })
	l.Enqueue(&packet.Packet{Size: 500})
	e.Run()
	// Link went idle; enqueue again later.
	e.Schedule(time500ms, func() { l.Enqueue(&packet.Packet{Size: 500}) })
	e.Run()
	if n != 2 {
		t.Errorf("delivered = %d, want 2", n)
	}
}

const time500ms = 500 * sim.Millisecond

func TestPipeDelay(t *testing.T) {
	e := sim.NewEngine(1)
	var at sim.Time
	p := NewPipe(e, 25*sim.Millisecond, func(*packet.Packet) { at = e.Now() })
	p.Send(&packet.Packet{Size: 40})
	e.Run()
	if at != 25*sim.Millisecond {
		t.Errorf("pipe delivered at %v, want 25ms", at)
	}
}
